// Churn stress: side-by-side comparison of the PEPPER protocols against the
// naive baselines under identical aggressive churn — the paper's argument in
// one run.
//
// Two clusters process the same workload: continuous inserts and deletes
// (splits, merges, redistributions) plus concurrent range queries. The
// PEPPER cluster must end with zero correctness violations; the naive
// cluster demonstrates why the paper's protocols exist — it may miss live
// items (Section 4.2) and is checked only to show the contrast.
//
//	go run ./examples/churnstress
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/datastore"
	"repro/internal/keyspace"
)

func buildConfig(naive bool) core.Config {
	cfg := core.DefaultConfig()
	cfg.Ring.StabPeriod = 8 * time.Millisecond
	cfg.Ring.Naive = naive
	cfg.Store.CheckPeriod = 10 * time.Millisecond
	cfg.Replication.RefreshPeriod = 15 * time.Millisecond
	cfg.Replication.Naive = naive
	cfg.NaiveQueries = naive
	return cfg
}

func runWorkload(name string, naive bool) int {
	cluster := core.NewCluster(buildConfig(naive))
	defer cluster.Shutdown()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	if _, err := cluster.AddFirstPeer(); err != nil {
		log.Fatal(err)
	}
	if err := cluster.AddFreePeers(16); err != nil {
		log.Fatal(err)
	}
	for i := 1; i <= 40; i++ {
		if err := cluster.InsertItem(ctx, datastore.Item{Key: keyspace.Key(i * 100)}); err != nil {
			log.Fatal(err)
		}
	}
	time.Sleep(200 * time.Millisecond)

	stop := make(chan struct{})
	var mutator sync.WaitGroup
	for m := 0; m < 3; m++ {
		mutator.Add(1)
		go func(m int) {
			defer mutator.Done()
			rng := rand.New(rand.NewSource(int64(123 + m)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := keyspace.Key(uint64(rng.Intn(80)+1) * 100)
				if rng.Intn(2) == 0 {
					_, _ = cluster.DeleteItem(ctx, k)
				} else {
					_ = cluster.InsertItem(ctx, datastore.Item{Key: k})
				}
			}
		}(m)
	}

	queries := 0
	qrng := rand.New(rand.NewSource(321))
	for i := 0; i < 100; i++ {
		lb := uint64(qrng.Intn(40)+1) * 100
		span := uint64(qrng.Intn(40)+1) * 100
		if _, err := cluster.RangeQuery(ctx, keyspace.ClosedInterval(keyspace.Key(lb), keyspace.Key(lb+span))); err == nil {
			queries++
		}
	}
	close(stop)
	mutator.Wait()

	violations := cluster.Log().CheckAllQueries()
	fmt.Printf("%-8s %3d queries under churn, %d correctness violations\n", name, queries, len(violations))
	for i, v := range violations {
		if i >= 5 {
			fmt.Printf("         ... and %d more\n", len(violations)-5)
			break
		}
		fmt.Printf("         %v\n", v)
	}
	return len(violations)
}

func main() {
	fmt.Println("same aggressive churn workload against both stacks:")
	pepper := runWorkload("PEPPER", false)
	naive := runWorkload("naive", true)

	fmt.Println()
	switch {
	case pepper == 0 && naive > 0:
		fmt.Println("PEPPER returned only correct results; the naive baselines missed live items — the Section 4.2 anomalies are real and the protocols close them.")
	case pepper == 0:
		fmt.Println("PEPPER returned only correct results; the naive baselines happened to get lucky this run (the anomalies are races — rerun to see them).")
	default:
		fmt.Println("unexpected: PEPPER produced violations — this would be a bug.")
	}
}
