// Quickstart: boot a P2P range index, insert items, run range queries, and
// audit the run for correctness.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/datastore"
	"repro/internal/keyspace"
)

func main() {
	// The default configuration mirrors the paper's setup (Section 6.1):
	// successor list length 4, storage factor 5, replication factor 6 —
	// at millisecond scale.
	cfg := core.DefaultConfig()
	cfg.Ring.StabPeriod = 10 * time.Millisecond
	cfg.Store.CheckPeriod = 20 * time.Millisecond
	cfg.Replication.RefreshPeriod = 20 * time.Millisecond

	cluster := core.NewCluster(cfg)
	defer cluster.Shutdown()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// One peer bootstraps the ring and owns the whole key space; free peers
	// stand by for splits.
	if _, err := cluster.AddFirstPeer(); err != nil {
		log.Fatal(err)
	}
	if err := cluster.AddFreePeers(10); err != nil {
		log.Fatal(err)
	}

	// Insert (value, item) pairs. With storage factor 5, peers overflow past
	// 10 items and split: new peers join through the PEPPER insertSucc
	// protocol, so queries stay correct throughout.
	for i := 1; i <= 50; i++ {
		item := datastore.Item{Key: keyspace.Key(i * 100), Payload: fmt.Sprintf("document-%03d", i)}
		if err := cluster.InsertItem(ctx, item); err != nil {
			log.Fatal(err)
		}
	}
	time.Sleep(300 * time.Millisecond) // let splits settle
	fmt.Printf("ring has %d serving peers after load\n", len(cluster.LivePeers()))

	// Range queries: all and only the live items in [lb, ub].
	results, err := cluster.RangeQuery(ctx, keyspace.ClosedInterval(1200, 2500))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("items with keys in [1200, 2500]:\n")
	for _, it := range results {
		fmt.Printf("  %5d  %s\n", it.Key, it.Payload)
	}

	// Equality lookups are point ranges.
	one, err := cluster.RangeQuery(ctx, keyspace.Point(3000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("point lookup 3000 -> %v\n", one)

	// Every query in this run is journaled; audit them against the paper's
	// correctness definition (Definition 4).
	if v := cluster.Log().CheckAllQueries(); len(v) == 0 {
		fmt.Println("audit: all queries returned correct results")
	} else {
		fmt.Printf("audit: %d violations: %v\n", len(v), v)
	}
}
