// JBI battlespace tracker: the paper's motivating application (Section 1).
//
// The Joint Battlespace Infosphere tracks information objects — vehicles in
// the field — as (value, item) pairs where the value encodes geographic
// position. Region queries are range queries; objects must never be missed
// (query correctness) or lost (item availability), even while peers fail
// and the index reorganizes.
//
// This example stores vehicles on a 1-D strip (position in meters along a
// corridor, the 1-D projection of a lat/long region), moves them
// continuously, fires region queries the whole time, kills peers mid-run,
// and audits every query against Definition 4.
//
//	go run ./examples/jbi
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/datastore"
	"repro/internal/keyspace"
)

const (
	vehicles    = 60
	corridorLen = 1_000_000 // meters
	regionSpan  = 100_000   // query window
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Ring.StabPeriod = 10 * time.Millisecond
	cfg.Store.CheckPeriod = 20 * time.Millisecond
	cfg.Replication.RefreshPeriod = 15 * time.Millisecond
	cfg.Replication.Factor = 4

	cluster := core.NewCluster(cfg)
	defer cluster.Shutdown()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	if _, err := cluster.AddFirstPeer(); err != nil {
		log.Fatal(err)
	}
	if err := cluster.AddFreePeers(20); err != nil {
		log.Fatal(err)
	}

	// Deploy vehicles at unique positions along the corridor.
	rng := rand.New(rand.NewSource(42))
	positions := make(map[int]keyspace.Key, vehicles)
	taken := make(map[keyspace.Key]int)
	place := func() keyspace.Key {
		for {
			p := keyspace.Key(rng.Intn(corridorLen))
			if _, ok := taken[p]; !ok {
				return p
			}
		}
	}
	for id := 0; id < vehicles; id++ {
		pos := place()
		positions[id], taken[pos] = pos, id
		item := datastore.Item{Key: pos, Payload: fmt.Sprintf("vehicle-%02d", id)}
		if err := cluster.InsertItem(ctx, item); err != nil {
			log.Fatal(err)
		}
	}
	time.Sleep(300 * time.Millisecond)
	fmt.Printf("deployed %d vehicles across %d peers\n", vehicles, len(cluster.LivePeers()))

	// Movement: a vehicle's position update is a delete at the old value and
	// an insert at the new one (search key values identify items).
	var mu sync.Mutex
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		moveRng := rand.New(rand.NewSource(7))
		for {
			select {
			case <-stop:
				return
			default:
			}
			id := moveRng.Intn(vehicles)
			mu.Lock()
			old := positions[id]
			next := keyspace.Key(moveRng.Intn(corridorLen))
			if _, collision := taken[next]; collision {
				mu.Unlock()
				continue
			}
			delete(taken, old)
			positions[id], taken[next] = next, id
			mu.Unlock()
			if _, err := cluster.DeleteItem(ctx, old); err != nil {
				continue
			}
			_ = cluster.InsertItem(ctx, datastore.Item{Key: next, Payload: fmt.Sprintf("vehicle-%02d", id)})
		}
	}()

	// Region queries under movement and failures.
	queryRng := rand.New(rand.NewSource(99))
	for round := 0; round < 12; round++ {
		if round == 4 || round == 8 {
			live := cluster.LivePeers()
			if len(live) > 3 {
				victim := live[queryRng.Intn(len(live))]
				fmt.Printf("round %2d: peer %s fails (held %d objects)\n", round, victim.Addr, victim.Store.ItemCount())
				cluster.KillPeer(victim.Addr)
			}
		}
		lb := keyspace.Key(queryRng.Intn(corridorLen - regionSpan))
		region := keyspace.ClosedInterval(lb, lb+regionSpan)
		found, err := cluster.RangeQuery(ctx, region)
		if err != nil {
			log.Fatalf("round %d: region query failed: %v", round, err)
		}
		fmt.Printf("round %2d: region %v -> %d objects\n", round, region, len(found))
		time.Sleep(100 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// Military-grade requirements: audit the whole run.
	if v := cluster.Log().CheckAllQueries(); len(v) == 0 {
		fmt.Println("audit: no region query missed or fabricated an object (Definition 4)")
	} else {
		fmt.Printf("audit: %d violations:\n", len(v))
		for _, viol := range v {
			fmt.Printf("  %v\n", viol)
		}
	}
	// The ring heals from the injected failures within a few stabilization
	// rounds; give it a moment before auditing Definition 5.
	var ringErr error
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if ringErr = cluster.CheckRing(); ringErr == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if ringErr != nil {
		fmt.Printf("ring audit: %v\n", ringErr)
	} else {
		fmt.Println("ring audit: successor pointers consistent (Definition 5)")
	}
}
