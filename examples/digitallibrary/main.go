// Digital library: date-range search over a skewed publication archive
// (one of the paper's application classes, Section 1).
//
// Articles are indexed by publication date. Publication dates are heavily
// skewed toward the present — exactly the distribution that breaks
// hash-based indices and forces an order-preserving range index to keep
// rebalancing (splits and redistributions, Section 2.3). The example loads a
// Zipf-skewed archive, shows the resulting storage balance across peers,
// and runs date-range searches.
//
//	go run ./examples/digitallibrary
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/datastore"
	"repro/internal/keyspace"
	"repro/internal/workload"
)

// Dates are encoded as days since 1900-01-01; the archive spans ~120 years.
const (
	daysSpan  = 120 * 365
	articles  = 150
	epochYear = 1900
)

func dateOf(k keyspace.Key) string {
	days := int(k) / 1000 // keys carry a uniqueness suffix in the low digits
	return fmt.Sprintf("%d-doy%03d", epochYear+days/365, days%365+1)
}

func main() {
	cfg := core.DefaultConfig()
	cfg.Ring.StabPeriod = 10 * time.Millisecond
	cfg.Store.CheckPeriod = 20 * time.Millisecond
	cfg.Replication.RefreshPeriod = 25 * time.Millisecond

	cluster := core.NewCluster(cfg)
	defer cluster.Shutdown()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	if _, err := cluster.AddFirstPeer(); err != nil {
		log.Fatal(err)
	}
	if err := cluster.AddFreePeers(30); err != nil {
		log.Fatal(err)
	}

	// Zipf-skewed publication dates: recent decades dominate. The generator
	// yields hot buckets at the low end, so mirror it onto "days ago".
	gen := workload.NewZipfKeys(5, 0, daysSpan-1, 60, 1.4)
	seen := make(map[keyspace.Key]bool)
	for i := 0; i < articles; i++ {
		daysAgo := uint64(gen.Next())
		day := uint64(daysSpan-1) - daysAgo
		key := keyspace.Key(day*1000 + uint64(i)%1000) // unique per article
		if seen[key] {
			continue
		}
		seen[key] = true
		item := datastore.Item{Key: key, Payload: fmt.Sprintf("article-%04d (%s)", i, dateOf(key))}
		if err := cluster.InsertItem(ctx, item); err != nil {
			log.Fatal(err)
		}
	}
	time.Sleep(400 * time.Millisecond)

	// Storage balance: despite the skew, the split/merge/redistribute
	// machinery keeps every peer between sf and 2·sf items.
	type load struct {
		addr  string
		items int
		rng   keyspace.Range
	}
	var loads []load
	for _, p := range cluster.LivePeers() {
		r, _ := p.Store.Range()
		loads = append(loads, load{addr: string(p.Addr), items: p.Store.ItemCount(), rng: r})
	}
	sort.Slice(loads, func(i, j int) bool { return loads[i].rng.Hi < loads[j].rng.Hi })
	fmt.Printf("archive of %d articles over %d peers (storage factor 5):\n", len(seen), len(loads))
	for _, l := range loads {
		fmt.Printf("  %-9s %-32s %2d articles %s\n", l.addr, l.rng, l.items, bar(l.items))
	}

	// Date-range searches.
	searches := []struct {
		name   string
		lo, hi int // years
	}{
		{"the war years", 1939, 1945},
		{"the nineties", 1990, 2000},
		{"this decade", 2012, 2020},
	}
	for _, s := range searches {
		lb := keyspace.Key((s.lo - epochYear) * 365 * 1000)
		ub := keyspace.Key((s.hi - epochYear) * 365 * 1000)
		res, err := cluster.RangeQuery(ctx, keyspace.ClosedInterval(lb, ub))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("search %-16s [%d..%d] -> %d articles\n", s.name, s.lo, s.hi, len(res))
		for i, it := range res {
			if i >= 3 {
				fmt.Printf("  ... and %d more\n", len(res)-3)
				break
			}
			fmt.Printf("  %s\n", it.Payload)
		}
	}

	if v := cluster.Log().CheckAllQueries(); len(v) == 0 {
		fmt.Println("audit: every search returned exactly the live matching articles")
	} else {
		fmt.Printf("audit: %d violations: %v\n", len(v), v)
	}
}

func bar(n int) string {
	out := ""
	for i := 0; i < n; i++ {
		out += "#"
	}
	return out
}
