// Command loadgen drives an open-loop mixed workload against a running
// pepperd cluster through the smart client tier (internal/client).
//
// Open-loop means a fixed Poisson arrival rate, not fixed concurrency: each
// operation is dispatched at its scheduled arrival instant and its latency
// is measured FROM that instant, so a slow cluster shows up as queueing in
// the tail percentiles instead of silently slowing the arrival process (the
// coordinated-omission trap of closed-loop "N workers in a call loop"
// harnesses). The client's bounded in-flight window is where late responses
// queue.
//
//	loadgen -targets 127.0.0.1:7101,127.0.0.1:7102 -rate 200 -duration 10s
//
// Every completed query is checked for correctness (keys inside the queried
// interval, strictly ascending, and any payload this harness stamped must
// match its key); any violation fails the run. With -max-p99/-min-goodput
// the run additionally gates on tail latency and goodput, so CI can fail a
// regression. -json writes the machine-readable summary.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/datastore"
	"repro/internal/keyspace"
	"repro/internal/metrics"
	"repro/internal/transport"
	"repro/internal/workload"
)

func main() {
	var (
		targets    = flag.String("targets", "", "comma-separated pepperd addresses (seeds for the client's descent)")
		rate       = flag.Float64("rate", 100, "open-loop arrival rate, operations per second")
		duration   = flag.Duration("duration", 10*time.Second, "measured run length")
		warmup     = flag.Duration("warmup", 2*time.Second, "unrecorded warm-up phase before measuring")
		inserts    = flag.Int("inserts", 2, "relative weight of inserts in the mix")
		deletes    = flag.Int("deletes", 1, "relative weight of deletes in the mix")
		queries    = flag.Int("queries", 7, "relative weight of range queries in the mix")
		dist       = flag.String("dist", "uniform", "key distribution: uniform or zipf")
		zipfS      = flag.Float64("zipf-s", 1.5, "zipf skew parameter (with -dist zipf)")
		span       = flag.Uint64("span", 5_000, "range query span (key units)")
		keys       = flag.Uint64("keys", 200_000, "keys are drawn from [0, this bound]")
		seed       = flag.Int64("seed", 1, "workload seed (same seed, same arrivals and operations)")
		inflight   = flag.Int("inflight", 128, "client in-flight window (late responses queue here)")
		opTimeout  = flag.Duration("op-timeout", 10*time.Second, "per-operation deadline")
		connsPer   = flag.Int("conns-per-peer", 2, "pipelined connections per destination")
		cold       = flag.Bool("cold", false, "clear the client's route cache when the measured phase starts")
		jsonOut    = flag.String("json", "", "write the JSON summary to this file (\"-\" for stdout)")
		maxP99     = flag.Duration("max-p99", 0, "fail (exit 2) if overall p99 exceeds this (0 = no gate)")
		minGoodput = flag.Float64("min-goodput", 0, "fail (exit 2) if goodput falls below this fraction of arrivals (0 = no gate)")
	)
	flag.Parse()

	if *targets == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -targets is required")
		os.Exit(1)
	}
	var seeds []transport.Addr
	for _, t := range strings.Split(*targets, ",") {
		if t = strings.TrimSpace(t); t != "" {
			seeds = append(seeds, transport.Addr(t))
		}
	}

	c, err := client.Dial(client.DialConfig{
		Config: client.Config{
			Seeds:       seeds,
			ID:          "loadgen",
			OpTimeout:   *opTimeout,
			MaxInflight: *inflight,
		},
		CallTimeout:  *opTimeout,
		ConnsPerPeer: *connsPer,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	defer c.Close()

	r := &run{
		client:  c,
		mix:     workload.NewMix(*seed, *inserts, *deletes, *queries),
		arrive:  workload.NewPoisson(*seed+1, *rate),
		span:    *span,
		keyHi:   *keys,
		timeout: *opTimeout,
		stamps:  make(map[keyspace.Key]bool),
		recs: map[workload.OpKind]*metrics.Recorder{
			workload.OpInsert: metrics.NewRecorder("insert"),
			workload.OpDelete: metrics.NewRecorder("delete"),
			workload.OpQuery:  metrics.NewRecorder("query"),
		},
		all: metrics.NewRecorder("all"),
	}
	switch *dist {
	case "zipf":
		r.keys = workload.NewZipfKeys(*seed+2, 0, *keys, 100, *zipfS)
	case "uniform":
		r.keys = workload.NewUniformKeys(*seed+2, 0, *keys)
	default:
		fmt.Fprintf(os.Stderr, "loadgen: unknown -dist %q\n", *dist)
		os.Exit(1)
	}
	r.spans = workload.NewSpanGen(*seed+3, 0, *keys, *span)

	if *warmup > 0 {
		r.drive(*warmup, false)
	}
	if *cold {
		c.Cache().Clear()
	}
	start := time.Now()
	r.drive(*duration, true)
	elapsed := time.Since(start)

	sum := r.summarize(*rate, elapsed)
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, sum); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
	}
	render(sum)

	code := 0
	if sum.Incorrect > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: GATE FAILED: %d incorrect query results\n", sum.Incorrect)
		code = 2
	}
	if *maxP99 > 0 && time.Duration(sum.All.P99Ms*float64(time.Millisecond)) > *maxP99 {
		fmt.Fprintf(os.Stderr, "loadgen: GATE FAILED: p99 %.1fms exceeds %v\n", sum.All.P99Ms, *maxP99)
		code = 2
	}
	if *minGoodput > 0 && sum.Goodput < *minGoodput {
		fmt.Fprintf(os.Stderr, "loadgen: GATE FAILED: goodput %.3f below %.3f\n", sum.Goodput, *minGoodput)
		code = 2
	}
	os.Exit(code)
}

// run is the shared state of one loadgen invocation.
type run struct {
	client  *client.Client
	mix     *workload.Mix
	arrive  *workload.Poisson
	keys    workload.KeyGen
	spans   *workload.SpanGen
	span    uint64
	keyHi   uint64
	timeout time.Duration

	mu     sync.Mutex
	stamps map[keyspace.Key]bool // keys whose payload this harness last wrote

	recs      map[workload.OpKind]*metrics.Recorder
	all       *metrics.Recorder
	arrivals  metrics.Counter
	completed metrics.Counter
	failed    metrics.Counter
	incorrect metrics.Counter
}

// payloadFor is the deterministic stamp the correctness check validates.
func payloadFor(k keyspace.Key) string { return fmt.Sprintf("lg-%d", k) }

// drive runs the open-loop arrival process for d: the scheduler advances
// scheduled arrival instants by Poisson delays and dispatches each operation
// at its instant — never delayed by earlier operations still in flight.
// Latency is measured from the SCHEDULED instant, so time spent queueing for
// the in-flight window counts against the operation.
func (r *run) drive(d time.Duration, record bool) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	end := time.Now().Add(d)
	next := time.Now()
	for {
		next = next.Add(r.arrive.NextDelay())
		if next.After(end) {
			break
		}
		if wait := time.Until(next); wait > 0 {
			time.Sleep(wait)
		}
		if record {
			r.arrivals.Inc()
		}
		kind := r.mix.Next()
		scheduled := next
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.one(ctx, kind, scheduled, record)
		}()
	}
	// Let stragglers finish: every dispatched operation carries its own
	// deadline, so this wait is bounded.
	wg.Wait()
}

// one executes a single operation dispatched at its scheduled instant.
func (r *run) one(ctx context.Context, kind workload.OpKind, scheduled time.Time, record bool) {
	opCtx, cancel := context.WithDeadline(ctx, scheduled.Add(r.timeout))
	defer cancel()
	var err error
	switch kind {
	case workload.OpInsert:
		k := r.keys.Next()
		err = r.client.Insert(opCtx, datastore.Item{Key: k, Payload: payloadFor(k)})
		if err == nil {
			r.mu.Lock()
			r.stamps[k] = true
			r.mu.Unlock()
		}
	case workload.OpDelete:
		k := r.keys.Next()
		// Forget the stamp before the delete can land, so a query racing the
		// delete is never checked against a payload that may be gone.
		r.mu.Lock()
		delete(r.stamps, k)
		r.mu.Unlock()
		_, err = r.client.Delete(opCtx, k)
	case workload.OpQuery:
		var items []datastore.Item
		iv := r.spans.Next()
		items, err = r.client.Query(opCtx, iv)
		if err == nil && record && !r.checkQuery(iv, items) {
			r.incorrect.Inc()
		}
	}
	lat := time.Since(scheduled)
	if !record {
		return
	}
	if err != nil {
		r.failed.Inc()
		return
	}
	r.completed.Inc()
	r.recs[kind].Observe(lat)
	r.all.Observe(lat)
}

// checkQuery validates one query result: every key inside the queried
// interval, keys strictly ascending (sorted, deduplicated), and any payload
// this harness stamped ("lg-…") must match its own key — a mismatch means an
// item surfaced under the wrong key, which no amount of bounded replica
// staleness can excuse.
func (r *run) checkQuery(iv keyspace.Interval, items []datastore.Item) bool {
	prev := keyspace.Key(0)
	for i, it := range items {
		if !iv.Contains(it.Key) {
			return false
		}
		if i > 0 && it.Key <= prev {
			return false
		}
		prev = it.Key
		if strings.HasPrefix(it.Payload, "lg-") && it.Payload != payloadFor(it.Key) {
			return false
		}
	}
	return true
}

// opSummary is the JSON form of one recorder's summary, in milliseconds.
type opSummary struct {
	Count  int     `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
}

func toOpSummary(s metrics.Summary) opSummary {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return opSummary{
		Count:  s.Count,
		MeanMs: ms(s.Mean),
		P50Ms:  ms(s.P50),
		P99Ms:  ms(s.P99),
		P999Ms: ms(s.P999),
		MaxMs:  ms(s.Max),
	}
}

// summary is the machine-readable result of one run.
type summary struct {
	RateTarget float64              `json:"rate_target"`
	ElapsedSec float64              `json:"elapsed_sec"`
	Arrivals   uint64               `json:"arrivals"`
	Completed  uint64               `json:"completed"`
	Failed     uint64               `json:"failed"`
	Incorrect  uint64               `json:"incorrect"`
	Goodput    float64              `json:"goodput"` // completed-in-deadline / arrivals
	All        opSummary            `json:"all"`
	Ops        map[string]opSummary `json:"ops"`
	Client     client.Stats         `json:"client"`
}

func (r *run) summarize(rate float64, elapsed time.Duration) summary {
	s := summary{
		RateTarget: rate,
		ElapsedSec: elapsed.Seconds(),
		Arrivals:   r.arrivals.Value(),
		Completed:  r.completed.Value(),
		Failed:     r.failed.Value(),
		Incorrect:  r.incorrect.Value(),
		All:        toOpSummary(r.all.Summarize()),
		Ops:        map[string]opSummary{},
		Client:     r.client.Stats(),
	}
	if s.Arrivals > 0 {
		s.Goodput = float64(s.Completed) / float64(s.Arrivals)
	}
	for kind, rec := range r.recs {
		s.Ops[kind.String()] = toOpSummary(rec.Summarize())
	}
	return s
}

func writeJSON(path string, s summary) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func render(s summary) {
	fmt.Printf("loadgen: %.0f ops/s target, %.1fs measured: %d arrivals, %d completed, %d failed, %d incorrect (goodput %.3f)\n",
		s.RateTarget, s.ElapsedSec, s.Arrivals, s.Completed, s.Failed, s.Incorrect, s.Goodput)
	fmt.Printf("loadgen: all    p50=%.1fms p99=%.1fms p999=%.1fms max=%.1fms\n",
		s.All.P50Ms, s.All.P99Ms, s.All.P999Ms, s.All.MaxMs)
	for _, kind := range []string{"insert", "delete", "query"} {
		o := s.Ops[kind]
		fmt.Printf("loadgen: %-6s n=%-6d p50=%.1fms p99=%.1fms p999=%.1fms max=%.1fms\n",
			kind, o.Count, o.P50Ms, o.P99Ms, o.P999Ms, o.MaxMs)
	}
}
