// Command benchrunner regenerates the paper's evaluation figures
// (Section 6) and prints each as a text table: one row per x value, one
// column per series.
//
// Usage:
//
//	benchrunner [-fig N] [-scale ms] [-run paperS] [-quick] [-seed n]
//	            [-transport] [-readpath] [-tail] [-json FILE]
//
// With no -fig, every figure (19–23) runs in order. -quick shrinks the
// sweeps for a fast sanity pass. -transport appends the transport
// throughput sweep (pipelined calls vs in-flight depth over one TCP
// connection). -readpath appends the read-path figure (range query latency
// vs cluster size: cold descent / cached entry / replica fallback), gated
// by cmd/benchcheck. -tail appends the open-loop tail-latency figure (smart
// client query p50/p99/p999 vs fixed Poisson arrival rate over loopback TCP,
// warm route cache vs cold per-op descent), also gated by cmd/benchcheck.
// -json also writes every regenerated figure to FILE as a
// machine-readable report; CI's bench-smoke job uploads that file as the
// per-PR benchmark artifact (see README.md). Times are reported in "paper
// seconds": the workload runs with every period scaled down by -scale (real
// milliseconds per paper second) and measured durations are scaled back up,
// so series are directly comparable in shape with the paper's plots (see
// EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/metrics"
)

// report is the -json artifact: one entry per regenerated figure, plus
// enough run metadata to compare artifacts across PRs.
type report struct {
	GeneratedAt string            `json:"generated_at"`
	Quick       bool              `json:"quick"`
	ScaleMS     float64           `json:"scale_ms"`
	Seed        int64             `json:"seed"`
	Figures     []*metrics.Figure `json:"figures"`
}

func main() {
	figNum := flag.Int("fig", 0, "figure to regenerate (19..23); 0 = all")
	scaleMS := flag.Float64("scale", 5, "real milliseconds per paper second")
	runS := flag.Float64("run", 0, "measured run length in paper seconds (0 = default)")
	quick := flag.Bool("quick", false, "shrink sweeps for a fast pass")
	seed := flag.Int64("seed", 1, "workload seed")
	ablation := flag.Bool("ablation", true, "include the no-proactive-contact ablation in figure 20")
	transportBench := flag.Bool("transport", false, "append the transport pipelined-call throughput sweep")
	readPath := flag.Bool("readpath", false, "append the read-path figure (query latency vs cluster size: cold / cached / replica fallback)")
	tail := flag.Bool("tail", false, "append the open-loop tail-latency figure (client query p50/p99/p999 vs arrival rate, warm vs cold cache, TCP loopback)")
	jsonPath := flag.String("json", "", "also write the regenerated figures to this file as JSON")
	flag.Parse()

	p := bench.Params{
		Scale: time.Duration(*scaleMS * float64(time.Millisecond)),
		RunS:  *runS,
		Seed:  *seed,
	}

	lengths := []int{2, 3, 4, 5, 6, 7, 8}
	periods := []float64{2, 3, 4, 5, 6, 7, 8}
	rates := []float64{0, 2, 4, 6, 8, 10, 12}
	maxHops, queries := 12, 600
	depths, callsPerDepth := []int{1, 2, 4, 8, 16}, 3000
	rpSizes, rpQueries := []int{6, 12, 20, 28}, 40
	tailRates, tailPeers, tailItems, tailPerArm := []float64{100, 250}, 8, 78, 2*time.Second
	if *quick {
		lengths = []int{2, 4, 8}
		periods = []float64{2, 4, 8}
		rates = []float64{0, 6, 12}
		maxHops, queries = 8, 200
		depths, callsPerDepth = []int{1, 2, 4, 8}, 800
		rpSizes, rpQueries = []int{6, 12, 20}, 24
		tailRates, tailPeers, tailItems, tailPerArm = []float64{150}, 8, 78, time.Second
		if p.RunS == 0 {
			p.RunS = 40
		}
	}

	type job struct {
		num int
		run func() (*metrics.Figure, error)
	}
	jobs := []job{
		{19, func() (*metrics.Figure, error) { return bench.Fig19(p, lengths) }},
		{20, func() (*metrics.Figure, error) { return bench.Fig20(p, periods, *ablation) }},
		{21, func() (*metrics.Figure, error) { return bench.Fig21(p, maxHops, queries) }},
		{22, func() (*metrics.Figure, error) { return bench.Fig22(p, lengths) }},
		{23, func() (*metrics.Figure, error) { return bench.Fig23(p, rates) }},
	}

	rep := report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Quick:       *quick,
		ScaleMS:     *scaleMS,
		Seed:        *seed,
	}
	ran := 0
	for _, j := range jobs {
		if *figNum != 0 && j.num != *figNum {
			continue
		}
		start := time.Now()
		fig, err := j.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure %d failed: %v\n", j.num, err)
			os.Exit(1)
		}
		fmt.Println(fig.Render())
		fmt.Printf("# figure %d regenerated in %v\n\n", j.num, time.Since(start).Round(time.Millisecond))
		rep.Figures = append(rep.Figures, fig)
		ran++
	}
	if *transportBench {
		start := time.Now()
		fig, err := bench.TransportFigure(depths, callsPerDepth, 100*time.Microsecond)
		if err != nil {
			fmt.Fprintf(os.Stderr, "transport bench failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(fig.Render())
		fmt.Printf("# transport sweep ran in %v\n\n", time.Since(start).Round(time.Millisecond))
		rep.Figures = append(rep.Figures, fig)
		ran++
	}
	if *readPath {
		start := time.Now()
		fig, err := bench.ReadPathFigure(p, rpSizes, rpQueries)
		if err != nil {
			fmt.Fprintf(os.Stderr, "read-path bench failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(fig.Render())
		fmt.Printf("# read-path sweep ran in %v\n\n", time.Since(start).Round(time.Millisecond))
		rep.Figures = append(rep.Figures, fig)
		ran++
	}
	if *tail {
		start := time.Now()
		fig, err := bench.TailLatencyFigure(tailRates, tailPeers, tailItems, tailPerArm, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tail-latency bench failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(fig.Render())
		fmt.Printf("# open-loop tail sweep ran in %v\n\n", time.Since(start).Round(time.Millisecond))
		rep.Figures = append(rep.Figures, fig)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown figure %d (valid: 19..23)\n", *figNum)
		os.Exit(2)
	}
	if *jsonPath != "" {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "encoding %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		out = append(out, '\n')
		if err := os.WriteFile(*jsonPath, out, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("# wrote %d figures to %s\n", len(rep.Figures), *jsonPath)
	}
}
