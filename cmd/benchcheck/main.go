// Command benchcheck gates CI on performance: it compares the per-PR
// benchmark report (BENCH_pr.json, produced by cmd/benchrunner in the
// bench-smoke job) against the committed baseline (BENCH_main.json,
// refreshed on pushes to main) and exits non-zero when pipelined-call
// throughput regressed by more than the threshold.
//
// The gated transport metric is the pipelining speedup: peak pipelined
// throughput divided by the same run's depth-1 (sequential) throughput.
// Normalizing within one run makes the gate hardware-independent — a PR run
// on a slow CI machine is compared against what that machine could do
// sequentially, not against the absolute numbers of whatever host produced
// the baseline. Raw peak throughput is printed alongside for trend reading.
//
// With -readpath-min > 0 the read-path figure (benchrunner -readpath) is
// gated the same self-normalized way: at the largest benched cluster size,
// cached-entry range queries must be at least the given factor faster than
// cold-descent queries. The replica-fallback series is informational.
//
// Usage:
//
//	benchcheck -pr BENCH_pr.json -main BENCH_main.json [-threshold 0.25]
//	           [-readpath-min 2.0] [-allow-missing]
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"strings"

	"repro/internal/metrics"
)

// report mirrors cmd/benchrunner's -json artifact.
type report struct {
	GeneratedAt string            `json:"generated_at"`
	Figures     []*metrics.Figure `json:"figures"`
}

// transportMetrics is the gated slice of one report.
type transportMetrics struct {
	Peak    float64 // best pipelined throughput across depths (calls/sec)
	Depth1  float64 // sequential throughput (depth 1)
	Speedup float64 // Peak / Depth1
}

func main() {
	prPath := flag.String("pr", "BENCH_pr.json", "PR benchmark report")
	mainPath := flag.String("main", "BENCH_main.json", "baseline benchmark report")
	threshold := flag.Float64("threshold", 0.25, "fail when the pipelining speedup drops by more than this fraction")
	readPathMin := flag.Float64("readpath-min", 0, "when > 0: fail unless cached-entry queries are at least this factor faster than cold-descent queries at the largest benched cluster size")
	allowMissing := flag.Bool("allow-missing", false, "exit 0 (with a warning) when the baseline file does not exist")
	flag.Parse()

	prRep, err := loadReport(*prPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: PR report: %v\n", err)
		os.Exit(1)
	}
	pr, err := extractTransportMetrics(prRep, *prPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: PR report: %v\n", err)
		os.Exit(1)
	}
	if *readPathMin > 0 {
		if err := checkReadPath(prRep, *prPath, *readPathMin); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: FAIL: %v\n", err)
			os.Exit(1)
		}
	}
	base, err := loadTransportMetrics(*mainPath)
	if err != nil {
		if *allowMissing && errors.Is(err, fs.ErrNotExist) {
			fmt.Printf("benchcheck: no baseline at %s; skipping comparison\n", *mainPath)
			fmt.Printf("benchcheck: PR pipelining speedup %.2fx (peak %.0f calls/sec, depth-1 %.0f)\n", pr.Speedup, pr.Peak, pr.Depth1)
			return
		}
		fmt.Fprintf(os.Stderr, "benchcheck: baseline report: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("benchcheck: pipelining speedup: PR %.2fx vs baseline %.2fx (threshold -%.0f%%)\n",
		pr.Speedup, base.Speedup, *threshold*100)
	fmt.Printf("benchcheck: raw peak throughput: PR %.0f calls/sec vs baseline %.0f calls/sec (informational)\n",
		pr.Peak, base.Peak)
	if pr.Speedup < (1-*threshold)*base.Speedup {
		fmt.Fprintf(os.Stderr, "benchcheck: FAIL: pipelined-call throughput regressed %.0f%% (speedup %.2fx -> %.2fx)\n",
			(1-pr.Speedup/base.Speedup)*100, base.Speedup, pr.Speedup)
		os.Exit(1)
	}
	fmt.Println("benchcheck: OK")
}

// loadReport reads one benchmark report from disk.
func loadReport(path string) (*report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading: %w", err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &rep, nil
}

// loadTransportMetrics extracts the pipelined-call series from a report.
func loadTransportMetrics(path string) (transportMetrics, error) {
	rep, err := loadReport(path)
	if err != nil {
		return transportMetrics{}, err
	}
	return extractTransportMetrics(rep, path)
}

// checkReadPath gates the read-path figure: at the largest benched cluster
// size, the cached-entry series must be at least minSpeedup times faster
// than the cold-descent series. Like the transport gate, the comparison is
// within one run, so it is hardware-independent.
func checkReadPath(rep *report, path string, minSpeedup float64) error {
	for _, fig := range rep.Figures {
		if fig == nil || !strings.HasPrefix(fig.Title, "read path:") {
			continue
		}
		if len(fig.XOrder) == 0 {
			return fmt.Errorf("%s: read-path figure has no x points", path)
		}
		largest := fig.XOrder[len(fig.XOrder)-1]
		var cold, cached float64
		for _, s := range fig.Series {
			if s.Label == "cold descent" {
				cold = s.Points[largest]
			}
			if s.Label == "cached entry" {
				cached = s.Points[largest]
			}
		}
		if cold <= 0 || cached <= 0 {
			return fmt.Errorf("%s: read-path figure lacks cold/cached points at size %s", path, largest)
		}
		speedup := cold / cached
		fmt.Printf("benchcheck: read-path cache speedup at %s peers: %.2fx (cold %.4f vs cached %.4f paper-s; floor %.2fx)\n",
			largest, speedup, cold, cached, minSpeedup)
		if speedup < minSpeedup {
			return fmt.Errorf("cached-entry queries only %.2fx faster than cold descent at %s peers (floor %.2fx)", speedup, largest, minSpeedup)
		}
		return nil
	}
	return fmt.Errorf("%s: no read-path figure in the report (run benchrunner with -readpath)", path)
}

// extractTransportMetrics finds the transport figure and computes the gate.
func extractTransportMetrics(rep *report, path string) (transportMetrics, error) {
	for _, fig := range rep.Figures {
		if fig == nil || !strings.HasPrefix(fig.Title, "transport:") {
			continue
		}
		for _, s := range fig.Series {
			if s.Label != "pipelined" {
				continue
			}
			var m transportMetrics
			for x, y := range s.Points {
				if x == "1" {
					m.Depth1 = y
				}
				if y > m.Peak {
					m.Peak = y
				}
			}
			if m.Depth1 <= 0 || m.Peak <= 0 {
				return m, fmt.Errorf("%s: transport figure lacks a depth-1 baseline point", path)
			}
			m.Speedup = m.Peak / m.Depth1
			return m, nil
		}
	}
	return transportMetrics{}, fmt.Errorf("%s: no transport figure with a %q series (run benchrunner with -transport)", path, "pipelined")
}
