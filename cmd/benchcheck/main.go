// Command benchcheck gates CI on transport performance: it compares the
// per-PR benchmark report (BENCH_pr.json, produced by cmd/benchrunner in the
// bench-smoke job) against the committed baseline (BENCH_main.json,
// refreshed on pushes to main) and exits non-zero when pipelined-call
// throughput regressed by more than the threshold.
//
// The gated metric is the pipelining speedup: peak pipelined throughput
// divided by the same run's depth-1 (sequential) throughput. Normalizing
// within one run makes the gate hardware-independent — a PR run on a slow CI
// machine is compared against what that machine could do sequentially, not
// against the absolute numbers of whatever host produced the baseline. Raw
// peak throughput is printed alongside for trend reading.
//
// Usage:
//
//	benchcheck -pr BENCH_pr.json -main BENCH_main.json [-threshold 0.25]
//	           [-allow-missing]
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"strings"

	"repro/internal/metrics"
)

// report mirrors cmd/benchrunner's -json artifact.
type report struct {
	GeneratedAt string            `json:"generated_at"`
	Figures     []*metrics.Figure `json:"figures"`
}

// transportMetrics is the gated slice of one report.
type transportMetrics struct {
	Peak    float64 // best pipelined throughput across depths (calls/sec)
	Depth1  float64 // sequential throughput (depth 1)
	Speedup float64 // Peak / Depth1
}

func main() {
	prPath := flag.String("pr", "BENCH_pr.json", "PR benchmark report")
	mainPath := flag.String("main", "BENCH_main.json", "baseline benchmark report")
	threshold := flag.Float64("threshold", 0.25, "fail when the pipelining speedup drops by more than this fraction")
	allowMissing := flag.Bool("allow-missing", false, "exit 0 (with a warning) when the baseline file does not exist")
	flag.Parse()

	pr, err := loadTransportMetrics(*prPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: PR report: %v\n", err)
		os.Exit(1)
	}
	base, err := loadTransportMetrics(*mainPath)
	if err != nil {
		if *allowMissing && errors.Is(err, fs.ErrNotExist) {
			fmt.Printf("benchcheck: no baseline at %s; skipping comparison\n", *mainPath)
			fmt.Printf("benchcheck: PR pipelining speedup %.2fx (peak %.0f calls/sec, depth-1 %.0f)\n", pr.Speedup, pr.Peak, pr.Depth1)
			return
		}
		fmt.Fprintf(os.Stderr, "benchcheck: baseline report: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("benchcheck: pipelining speedup: PR %.2fx vs baseline %.2fx (threshold -%.0f%%)\n",
		pr.Speedup, base.Speedup, *threshold*100)
	fmt.Printf("benchcheck: raw peak throughput: PR %.0f calls/sec vs baseline %.0f calls/sec (informational)\n",
		pr.Peak, base.Peak)
	if pr.Speedup < (1-*threshold)*base.Speedup {
		fmt.Fprintf(os.Stderr, "benchcheck: FAIL: pipelined-call throughput regressed %.0f%% (speedup %.2fx -> %.2fx)\n",
			(1-pr.Speedup/base.Speedup)*100, base.Speedup, pr.Speedup)
		os.Exit(1)
	}
	fmt.Println("benchcheck: OK")
}

// loadTransportMetrics extracts the pipelined-call series from a report.
func loadTransportMetrics(path string) (transportMetrics, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return transportMetrics{}, fmt.Errorf("reading: %w", err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return transportMetrics{}, fmt.Errorf("parsing %s: %w", path, err)
	}
	return extractTransportMetrics(&rep, path)
}

// extractTransportMetrics finds the transport figure and computes the gate.
func extractTransportMetrics(rep *report, path string) (transportMetrics, error) {
	for _, fig := range rep.Figures {
		if fig == nil || !strings.HasPrefix(fig.Title, "transport:") {
			continue
		}
		for _, s := range fig.Series {
			if s.Label != "pipelined" {
				continue
			}
			var m transportMetrics
			for x, y := range s.Points {
				if x == "1" {
					m.Depth1 = y
				}
				if y > m.Peak {
					m.Peak = y
				}
			}
			if m.Depth1 <= 0 || m.Peak <= 0 {
				return m, fmt.Errorf("%s: transport figure lacks a depth-1 baseline point", path)
			}
			m.Speedup = m.Peak / m.Depth1
			return m, nil
		}
	}
	return transportMetrics{}, fmt.Errorf("%s: no transport figure with a %q series (run benchrunner with -transport)", path, "pipelined")
}
