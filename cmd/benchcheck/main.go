// Command benchcheck gates CI on performance: it compares the per-PR
// benchmark report (BENCH_pr.json, produced by cmd/benchrunner in the
// bench-smoke job) against the committed baseline (BENCH_main.json,
// refreshed on pushes to main) and exits non-zero when pipelined-call
// throughput regressed by more than the threshold.
//
// The gated transport metric is the pipelining speedup: peak pipelined
// throughput divided by the same run's depth-1 (sequential) throughput.
// Normalizing within one run makes the gate hardware-independent — a PR run
// on a slow CI machine is compared against what that machine could do
// sequentially, not against the absolute numbers of whatever host produced
// the baseline. Raw peak throughput is printed alongside for trend reading.
//
// With -readpath-min > 0 the read-path figure (benchrunner -readpath) is
// gated the same self-normalized way: at the largest benched cluster size,
// cached-entry range queries must be at least the given factor faster than
// cold-descent queries. The replica-fallback series is informational.
//
// With -tail-warm-min > 0 the open-loop tail-latency figure (benchrunner
// -tail) is gated within the PR run: at the highest benched arrival rate,
// the cold-cache (descent per op) p50 must be at least the given factor
// slower than the warm-cache p50 — i.e. the route cache must still be
// earning its keep. With -tail-max-ratio > 0 the PR's warm p95/p50 ratio
// (tail amplification, self-normalized so it is hardware-independent) is
// compared against the baseline's at the highest common arrival rate, and
// the gate fails when the PR amplification exceeds the baseline's by more
// than that factor.
//
// Usage:
//
//	benchcheck -pr BENCH_pr.json -main BENCH_main.json [-threshold 0.25]
//	           [-readpath-min 2.0] [-tail-warm-min 2.0] [-tail-max-ratio 3.0]
//	           [-allow-missing]
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"strings"

	"repro/internal/metrics"
)

// report mirrors cmd/benchrunner's -json artifact.
type report struct {
	GeneratedAt string            `json:"generated_at"`
	Figures     []*metrics.Figure `json:"figures"`
}

// transportMetrics is the gated slice of one report.
type transportMetrics struct {
	Peak    float64 // best pipelined throughput across depths (calls/sec)
	Depth1  float64 // sequential throughput (depth 1)
	Speedup float64 // Peak / Depth1
}

func main() {
	prPath := flag.String("pr", "BENCH_pr.json", "PR benchmark report")
	mainPath := flag.String("main", "BENCH_main.json", "baseline benchmark report")
	threshold := flag.Float64("threshold", 0.25, "fail when the pipelining speedup drops by more than this fraction")
	readPathMin := flag.Float64("readpath-min", 0, "when > 0: fail unless cached-entry queries are at least this factor faster than cold-descent queries at the largest benched cluster size")
	tailWarmMin := flag.Float64("tail-warm-min", 0, "when > 0: fail unless the cold-cache p50 is at least this factor above the warm-cache p50 at the highest benched arrival rate")
	tailMaxRatio := flag.Float64("tail-max-ratio", 0, "when > 0: fail when the PR's warm p95/p50 tail amplification exceeds the baseline's by more than this factor at the highest common arrival rate")
	allowMissing := flag.Bool("allow-missing", false, "exit 0 (with a warning) when the baseline file does not exist")
	flag.Parse()

	prRep, err := loadReport(*prPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: PR report: %v\n", err)
		os.Exit(1)
	}
	pr, err := extractTransportMetrics(prRep, *prPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: PR report: %v\n", err)
		os.Exit(1)
	}
	if *readPathMin > 0 {
		if err := checkReadPath(prRep, *prPath, *readPathMin); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: FAIL: %v\n", err)
			os.Exit(1)
		}
	}
	if *tailWarmMin > 0 {
		if err := checkTailWarm(prRep, *prPath, *tailWarmMin); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: FAIL: %v\n", err)
			os.Exit(1)
		}
	}
	baseRep, err := loadReport(*mainPath)
	if err != nil {
		if *allowMissing && errors.Is(err, fs.ErrNotExist) {
			fmt.Printf("benchcheck: no baseline at %s; skipping comparison\n", *mainPath)
			fmt.Printf("benchcheck: PR pipelining speedup %.2fx (peak %.0f calls/sec, depth-1 %.0f)\n", pr.Speedup, pr.Peak, pr.Depth1)
			return
		}
		fmt.Fprintf(os.Stderr, "benchcheck: baseline report: %v\n", err)
		os.Exit(1)
	}
	base, err := extractTransportMetrics(baseRep, *mainPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: baseline report: %v\n", err)
		os.Exit(1)
	}
	if *tailMaxRatio > 0 {
		if err := checkTailRatio(prRep, *prPath, baseRep, *mainPath, *tailMaxRatio, *allowMissing); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: FAIL: %v\n", err)
			os.Exit(1)
		}
	}

	fmt.Printf("benchcheck: pipelining speedup: PR %.2fx vs baseline %.2fx (threshold -%.0f%%)\n",
		pr.Speedup, base.Speedup, *threshold*100)
	fmt.Printf("benchcheck: raw peak throughput: PR %.0f calls/sec vs baseline %.0f calls/sec (informational)\n",
		pr.Peak, base.Peak)
	if pr.Speedup < (1-*threshold)*base.Speedup {
		fmt.Fprintf(os.Stderr, "benchcheck: FAIL: pipelined-call throughput regressed %.0f%% (speedup %.2fx -> %.2fx)\n",
			(1-pr.Speedup/base.Speedup)*100, base.Speedup, pr.Speedup)
		os.Exit(1)
	}
	fmt.Println("benchcheck: OK")
}

// loadReport reads one benchmark report from disk.
func loadReport(path string) (*report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading: %w", err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &rep, nil
}

// tailFigure finds the open-loop tail-latency figure in a report, or nil.
func tailFigure(rep *report) *metrics.Figure {
	for _, fig := range rep.Figures {
		if fig != nil && strings.HasPrefix(fig.Title, "open-loop:") {
			return fig
		}
	}
	return nil
}

// tailPoint reads one series value of the tail figure at x (0 if absent).
func tailPoint(fig *metrics.Figure, label, x string) float64 {
	for _, s := range fig.Series {
		if s.Label == label {
			return s.Points[x]
		}
	}
	return 0
}

// checkTailWarm gates the warm/cold split of the PR's tail figure: at the
// highest benched arrival rate, the cold-cache p50 (a full descent per
// operation) must be at least minFactor times the warm-cache p50, i.e. the
// client's route cache must still buy a real latency win. Within one run, so
// hardware-independent.
func checkTailWarm(rep *report, path string, minFactor float64) error {
	fig := tailFigure(rep)
	if fig == nil {
		return fmt.Errorf("%s: no open-loop tail figure in the report (run benchrunner with -tail)", path)
	}
	if len(fig.XOrder) == 0 {
		return fmt.Errorf("%s: tail figure has no x points", path)
	}
	highest := fig.XOrder[len(fig.XOrder)-1]
	warm := tailPoint(fig, "warm p50", highest)
	cold := tailPoint(fig, "cold p50", highest)
	if warm <= 0 || cold <= 0 {
		return fmt.Errorf("%s: tail figure lacks warm/cold p50 points at %s arrivals/s", path, highest)
	}
	factor := cold / warm
	fmt.Printf("benchcheck: tail warm-cache win at %s arrivals/s: %.2fx (cold p50 %.3fms vs warm p50 %.3fms; floor %.2fx)\n",
		highest, factor, cold, warm, minFactor)
	if factor < minFactor {
		return fmt.Errorf("warm-cache p50 only %.2fx better than cold descent at %s arrivals/s (floor %.2fx)", factor, highest, minFactor)
	}
	return nil
}

// checkTailRatio gates tail amplification against the baseline: the PR's
// warm p95/p50 ratio must not exceed the baseline's by more than maxRatio at
// the highest arrival rate both reports benched. Both sides are ratios
// within their own run, so the comparison survives CI machines of different
// speeds; p95 rather than p99 because at CI sample counts (a ~1s arm per
// slice) the p99 is within a sample or two of the maximum and gates on it
// flake. The figure still carries p99/p999 series for trend reading. A
// baseline that predates the tail figure is skipped (with a warning) when
// allowMissing is set.
func checkTailRatio(prRep *report, prPath string, baseRep *report, basePath string, maxRatio float64, allowMissing bool) error {
	prFig := tailFigure(prRep)
	if prFig == nil {
		return fmt.Errorf("%s: no open-loop tail figure in the report (run benchrunner with -tail)", prPath)
	}
	baseFig := tailFigure(baseRep)
	if baseFig == nil {
		if allowMissing {
			fmt.Printf("benchcheck: baseline %s has no tail figure yet; skipping tail-amplification comparison\n", basePath)
			return nil
		}
		return fmt.Errorf("%s: no open-loop tail figure in the baseline", basePath)
	}
	baseX := map[string]bool{}
	for _, x := range baseFig.XOrder {
		baseX[x] = true
	}
	common := ""
	for _, x := range prFig.XOrder {
		if baseX[x] {
			common = x
		}
	}
	if common == "" {
		if allowMissing {
			fmt.Printf("benchcheck: tail figures share no arrival rate (PR %v vs baseline %v); skipping comparison\n", prFig.XOrder, baseFig.XOrder)
			return nil
		}
		return fmt.Errorf("tail figures share no arrival rate (PR %v vs baseline %v)", prFig.XOrder, baseFig.XOrder)
	}
	ampOf := func(fig *metrics.Figure, path string) (float64, error) {
		p50 := tailPoint(fig, "warm p50", common)
		p95 := tailPoint(fig, "warm p95", common)
		if p50 <= 0 || p95 <= 0 {
			return 0, fmt.Errorf("%s: tail figure lacks warm p50/p95 points at %s arrivals/s", path, common)
		}
		return p95 / p50, nil
	}
	prAmp, err := ampOf(prFig, prPath)
	if err != nil {
		return err
	}
	baseAmp, err := ampOf(baseFig, basePath)
	if err != nil {
		return err
	}
	fmt.Printf("benchcheck: tail amplification (warm p95/p50) at %s arrivals/s: PR %.2fx vs baseline %.2fx (ceiling %.1fx baseline)\n",
		common, prAmp, baseAmp, maxRatio)
	if prAmp > maxRatio*baseAmp {
		return fmt.Errorf("tail amplification grew to %.2fx, over %.1fx the baseline's %.2fx at %s arrivals/s", prAmp, maxRatio, baseAmp, common)
	}
	return nil
}

// checkReadPath gates the read-path figure: at the largest benched cluster
// size, the cached-entry series must be at least minSpeedup times faster
// than the cold-descent series. Like the transport gate, the comparison is
// within one run, so it is hardware-independent.
func checkReadPath(rep *report, path string, minSpeedup float64) error {
	for _, fig := range rep.Figures {
		if fig == nil || !strings.HasPrefix(fig.Title, "read path:") {
			continue
		}
		if len(fig.XOrder) == 0 {
			return fmt.Errorf("%s: read-path figure has no x points", path)
		}
		largest := fig.XOrder[len(fig.XOrder)-1]
		var cold, cached float64
		for _, s := range fig.Series {
			if s.Label == "cold descent" {
				cold = s.Points[largest]
			}
			if s.Label == "cached entry" {
				cached = s.Points[largest]
			}
		}
		if cold <= 0 || cached <= 0 {
			return fmt.Errorf("%s: read-path figure lacks cold/cached points at size %s", path, largest)
		}
		speedup := cold / cached
		fmt.Printf("benchcheck: read-path cache speedup at %s peers: %.2fx (cold %.4f vs cached %.4f paper-s; floor %.2fx)\n",
			largest, speedup, cold, cached, minSpeedup)
		if speedup < minSpeedup {
			return fmt.Errorf("cached-entry queries only %.2fx faster than cold descent at %s peers (floor %.2fx)", speedup, largest, minSpeedup)
		}
		return nil
	}
	return fmt.Errorf("%s: no read-path figure in the report (run benchrunner with -readpath)", path)
}

// extractTransportMetrics finds the transport figure and computes the gate.
func extractTransportMetrics(rep *report, path string) (transportMetrics, error) {
	for _, fig := range rep.Figures {
		if fig == nil || !strings.HasPrefix(fig.Title, "transport:") {
			continue
		}
		for _, s := range fig.Series {
			if s.Label != "pipelined" {
				continue
			}
			var m transportMetrics
			for x, y := range s.Points {
				if x == "1" {
					m.Depth1 = y
				}
				if y > m.Peak {
					m.Peak = y
				}
			}
			if m.Depth1 <= 0 || m.Peak <= 0 {
				return m, fmt.Errorf("%s: transport figure lacks a depth-1 baseline point", path)
			}
			m.Speedup = m.Peak / m.Depth1
			return m, nil
		}
	}
	return transportMetrics{}, fmt.Errorf("%s: no transport figure with a %q series (run benchrunner with -transport)", path, "pipelined")
}
