// Command pepperd runs the paper's system end to end, in one of two modes.
//
// In-process demo (default): an in-process cluster over the simulated
// network executes a scripted demonstration — bootstrap, load, range
// queries, churn, a failure, and the correctness audit of the whole run
// against Definition 4:
//
//	pepperd [-peers n] [-items n] [-naive] [-seed n] [-v]
//
// Multi-process mode (-listen): this process hosts ONE peer over real TCP,
// so a cluster spans OS processes (and machines). The first process
// bootstraps the ring; every further process announces itself to it as a
// free peer and is drawn into the ring by a Data Store split once the
// bootstrap overflows:
//
//	pepperd -listen 127.0.0.1:7001 -items 40           # bootstrap + load
//	pepperd -listen 127.0.0.1:7002 -join 127.0.0.1:7001 # free peer
//
// -listen must be the dialable address other peers reach this process at
// (it is the peer's identity on the ring).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/datastore"
	"repro/internal/keyspace"
	"repro/internal/replication"
	"repro/internal/ring"
	"repro/internal/router"
	"repro/internal/simnet"
)

func main() {
	freePeers := flag.Int("peers", 24, "free peers available for splits")
	items := flag.Int("items", 120, "items to load")
	naive := flag.Bool("naive", false, "use the naive baselines (no correctness/availability guarantees)")
	seed := flag.Int64("seed", 1, "random seed")
	verbose := flag.Bool("v", false, "print per-peer state")
	listen := flag.String("listen", "", "serve one peer over TCP at this dialable host:port (multi-process mode)")
	join := flag.String("join", "", "announce to this bootstrap peer as a free peer (requires -listen)")
	payload := flag.Int("payload", 0, "payload bytes per loaded item (multi-process mode; forces chunked state transfers)")
	dataDir := flag.String("data-dir", "", "durable storage root (multi-process mode): WAL + snapshots per peer identity; restarting with the same -listen and -data-dir recovers the last claimed range, epoch and items")
	syncInterval := flag.Duration("sync-interval", 0, "with -data-dir: batch WAL fsyncs to at most one per interval (0 = fsync every append)")
	lease := flag.Duration("lease", 0, "range-claim lease duration (multi-process mode; 0 disables): a claim not renewed by the owner's replica refresh within this duration may be adopted by its ring successor at a higher epoch; set to several multiples of the refresh period")
	gossipInterval := flag.Duration("gossip-interval", 0, "anti-entropy round interval of the gossiped membership directory (multi-process mode; 0 disables): free peers, range adverts and liveness suspicions spread peer-to-peer so splits keep working after the bootstrap process dies")
	clusterKey := flag.String("cluster-key", "", "path to the shared cluster secret (multi-process mode and -probe): every connection performs a mutual challenge-response handshake proving both ends hold this secret, the peer signs its ownership adverts with an ed25519 identity (persisted in -data-dir, ephemeral otherwise), and received adverts are verified before they can depose anyone; empty disables authentication")
	chaosDropChunk := flag.Int("chaos-drop-chunk", 0, "fault injection (multi-process mode): kill the connection under the first bulk transfer that reaches this chunk sequence number, once per process, to force a stream resume on the real wire; 0 disables")
	probe := flag.String("probe", "", "probe the pepperd process at this address and exit (CI smoke / operators)")
	expect := flag.Int("expect", -1, "with -probe: require a range query to return exactly this many items")
	serving := flag.Bool("serving", false, "with -probe: require the peer to be JOINED and serving a range")
	minPool := flag.Int("min-pool", -1, "with -probe: require at least this many pooled free peers")
	minCacheHits := flag.Int64("min-cache-hits", -1, "with -probe: require the process's owner-lookup cache to report at least this many hits")
	minEpoch := flag.Int64("min-epoch", -1, "with -probe: require the peer's ownership epoch to be at least this (epochs are monotonic per range, so this asserts progress across churn)")
	minRecovered := flag.Int("min-recovered", -1, "with -probe: require the process to have restarted from durable state with at least this many recovered items")
	audit := flag.Bool("audit", false, "with -probe: journal the final query and require a clean Definition 4 audit")
	leaseAudit := flag.Bool("lease-audit", false, "with -probe: require a clean lease-exclusivity audit (no two unexpired leases ever overlapped a key in the process's journal)")
	minGossipFree := flag.Int("min-gossip-free", -1, "with -probe: require the process's gossiped directory to know at least this many free peers")
	minGossipMem := flag.Int("min-gossip-members", -1, "with -probe: require the process's gossiped directory to know at least this many members (membership only grows, so this gate is race-free)")
	minStreamResumes := flag.Int("min-stream-resumes", -1, "with -probe: require the process's transport to have resumed at least this many bulk transfers from the receiver's high-water chunk mark")
	minHandshakeRejects := flag.Int("min-handshake-rejects", -1, "with -probe: require the process's transport to have refused at least this many connections at the authentication handshake")
	probeLoad := flag.Int("probe-load", 0, "with -probe: once the other criteria hold, have the process insert this many fresh items into an item-free key gap of its own range; the JSON status reports the exact loaded interval (loaded_lo/loaded_hi)")
	wait := flag.Duration("wait", 0, "with -probe: keep retrying until satisfied or this timeout elapses")
	probeLB := flag.Uint64("probe-lb", 0, "with -probe -expect: lower bound of the probed query interval")
	probeUB := flag.Uint64("probe-ub", uint64(keyspace.MaxKey), "with -probe -expect: upper bound of the probed query interval")
	jsonOut := flag.Bool("json", false, "with -probe: print the final probe status as one JSON object on stdout (machine-readable; see core.ProbeStatus)")
	flag.Parse()

	if *probe != "" {
		os.Exit(probeMain(*probe, probeOpts{
			expect:              *expect,
			serving:             *serving,
			minPool:             *minPool,
			minCacheHits:        *minCacheHits,
			minEpoch:            *minEpoch,
			minRecovered:        *minRecovered,
			minGossipFree:       *minGossipFree,
			minGossipMem:        *minGossipMem,
			minStreamResumes:    *minStreamResumes,
			minHandshakeRejects: *minHandshakeRejects,
			audit:               *audit,
			leaseAudit:          *leaseAudit,
			wait:                *wait,
			lb:                  keyspace.Key(*probeLB),
			ub:                  keyspace.Key(*probeUB),
			load:                *probeLoad,
			jsonOut:             *jsonOut,
			clusterKey:          *clusterKey,
		}))
	}
	if *listen != "" {
		serveMain(*listen, *join, *items, *payload, *seed, *dataDir, *syncInterval, *lease, *gossipInterval, *clusterKey, *chaosDropChunk)
		return
	}
	if *join != "" {
		fmt.Fprintln(os.Stderr, "pepperd: -join requires -listen")
		os.Exit(1)
	}

	cfg := core.Config{
		Net: simnet.Config{
			MinLatency:    100 * time.Microsecond,
			MaxLatency:    400 * time.Microsecond,
			DeadCallDelay: 4 * time.Millisecond,
			Seed:          *seed,
		},
		Ring: ring.Config{
			SuccListLen: 4,
			StabPeriod:  10 * time.Millisecond,
			Naive:       *naive,
		},
		Store:               datastore.Config{StorageFactor: 5, CheckPeriod: 20 * time.Millisecond},
		Replication:         replication.Config{Factor: 4, RefreshPeriod: 20 * time.Millisecond, Naive: *naive},
		Router:              router.Config{},
		NaiveQueries:        *naive,
		QueryAttemptTimeout: 2 * time.Second,
		Seed:                *seed,
	}

	c := core.NewCluster(cfg)
	defer c.Shutdown()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "pepperd: %v\n", err)
		os.Exit(1)
	}

	fmt.Println("== bootstrap: first peer owns the whole key space")
	if _, err := c.AddFirstPeer(); err != nil {
		fail(err)
	}
	if err := c.AddFreePeers(*freePeers); err != nil {
		fail(err)
	}

	fmt.Printf("== load: inserting %d items (storage factor 5 forces splits)\n", *items)
	for i := 1; i <= *items; i++ {
		it := datastore.Item{Key: keyspace.Key(i * 1000), Payload: fmt.Sprintf("object-%d", i)}
		if err := c.InsertItem(ctx, it); err != nil {
			fail(fmt.Errorf("insert %d: %w", i, err))
		}
	}
	waitSettled(c)
	fmt.Printf("   ring grew to %d serving peers, %d free peers left\n", len(c.LivePeers()), c.FreeCount())
	if *verbose {
		dump(c)
	}

	fmt.Println("== query: range scans across the ring")
	for _, span := range []uint64{5, 20, 60} {
		iv := keyspace.ClosedInterval(10_000, keyspace.Key(10_000+span*1000))
		res, err := c.RangeQuery(ctx, iv)
		if err != nil {
			fail(err)
		}
		fmt.Printf("   query %v -> %d items\n", iv, len(res))
	}

	fmt.Println("== churn: deleting half the items (underflows force merges)")
	for i := 1; i <= *items/2; i++ {
		if _, err := c.DeleteItem(ctx, keyspace.Key(i*1000)); err != nil {
			fail(err)
		}
	}
	waitSettled(c)
	fmt.Printf("   ring shrank to %d serving peers\n", len(c.LivePeers()))

	fmt.Println("== failure: killing one serving peer; replication revives its items")
	live := c.LivePeers()
	if len(live) > 1 {
		victim := live[0]
		fmt.Printf("   killing %s (%d items)\n", victim.Addr, victim.Store.ItemCount())
		c.KillPeer(victim.Addr)
		deadline := time.Now().Add(15 * time.Second)
		want := *items - *items/2
		for time.Now().Before(deadline) {
			res, err := c.RangeQuery(ctx, keyspace.ClosedInterval(0, keyspace.Key((*items+1)*1000)))
			if err == nil && len(res) == want {
				fmt.Printf("   recovered: full query returns all %d surviving items\n", len(res))
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	fmt.Println("== audit: checking every query of this run against Definition 4")
	violations := c.Log().CheckAllQueries()
	if len(violations) == 0 {
		fmt.Println("   no correctness violations")
	} else {
		fmt.Printf("   %d violations (expected only with -naive):\n", len(violations))
		for i, v := range violations {
			if i >= 10 {
				fmt.Printf("   ... and %d more\n", len(violations)-10)
				break
			}
			fmt.Printf("   %v\n", v)
		}
	}
	if err := c.CheckRing(); err != nil {
		fmt.Printf("   ring consistency: %v\n", err)
	} else {
		fmt.Println("   successor pointers consistent (Definition 5)")
	}

	st := c.Stats()
	fmt.Println("== stats")
	fmt.Printf("   live peers %d, free peers %d, items %d\n", st.LivePeers, st.FreePeers, st.Items)
	fmt.Printf("   splits %d, merges %d, redistributes %d, scan aborts (retried) %d\n",
		st.Splits, st.Merges, st.Redistributes, st.ScanAborts)
	fmt.Printf("   stale-epoch rejects %d, step-downs %d\n",
		st.StaleEpochRejects, st.StepDowns)
}

func waitSettled(c *core.Cluster) {
	last := -1
	for i := 0; i < 100; i++ {
		time.Sleep(50 * time.Millisecond)
		n := len(c.LivePeers())
		if n == last {
			return
		}
		last = n
	}
}

func dump(c *core.Cluster) {
	for _, p := range c.LivePeers() {
		rng, _ := p.Store.Range()
		fmt.Printf("   %-10s val=%-12d range=%-28s items=%d\n",
			p.Addr, p.Ring.Self().Val, rng, p.Store.ItemCount())
	}
}
