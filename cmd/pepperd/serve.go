package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/datastore"
	"repro/internal/keyspace"
	"repro/internal/replication"
	"repro/internal/ring"
	"repro/internal/router"
	"repro/internal/transport"
	"repro/internal/transport/tcp"
)

// tcpPeerConfig tunes the component stack for real-network latencies (the
// paper's second-scale parameters compressed to LAN scale).
func tcpPeerConfig(seed int64) core.Config {
	return core.Config{
		Ring: ring.Config{
			SuccListLen: 4,
			StabPeriod:  250 * time.Millisecond,
			PingPeriod:  250 * time.Millisecond,
			CallTimeout: 2 * time.Second,
			AckTimeout:  20 * time.Second,
		},
		Store: datastore.Config{
			StorageFactor:      5,
			CheckPeriod:        300 * time.Millisecond,
			CallTimeout:        2 * time.Second,
			MaintenanceTimeout: 20 * time.Second,
		},
		Replication: replication.Config{
			Factor:        3,
			RefreshPeriod: 500 * time.Millisecond,
			CallTimeout:   2 * time.Second,
		},
		Router: router.Config{
			RefreshPeriod: 500 * time.Millisecond,
			CallTimeout:   2 * time.Second,
			MaxHops:       64,
		},
		QueryAttemptTimeout: 10 * time.Second,
		MaxQueryAttempts:    20,
		Seed:                seed,
	}
}

// serveMain runs one peer as its own OS process over TCP: the -listen mode.
func serveMain(listen, join string, items int, seed int64) {
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "pepperd: %v\n", err)
		os.Exit(1)
	}

	tr := tcp.New(tcp.Config{DialTimeout: 2 * time.Second, CallTimeout: 10 * time.Second})
	defer tr.Close()
	node, err := core.NewStandalone(tr, transport.Addr(listen), tcpPeerConfig(seed))
	if err != nil {
		fail(err)
	}
	defer node.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	if join == "" {
		if err := node.Bootstrap(); err != nil {
			fail(err)
		}
		fmt.Printf("pepperd: bootstrapped ring at %s (owns the full key space)\n", listen)
		if items > 0 {
			go loadItems(ctx, node, items, fail)
		}
	} else {
		if err := node.JoinAsFree(ctx, transport.Addr(join)); err != nil {
			fail(err)
		}
		fmt.Printf("pepperd: %s announced as free peer to %s; waiting to be drawn into the ring\n", listen, join)
	}

	ticker := time.NewTicker(2 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-sigCh:
			fmt.Println("pepperd: shutting down")
			return
		case <-ticker.C:
			printStatus(node)
		}
	}
}

// loadItems feeds the index from this process, forcing splits that pull
// announced free peers into the ring.
func loadItems(ctx context.Context, node *core.Standalone, items int, fail func(error)) {
	for i := 1; i <= items; i++ {
		it := datastore.Item{Key: keyspace.Key(i * 1000), Payload: fmt.Sprintf("object-%d", i)}
		if err := node.CurrentPeer().InsertItem(ctx, it); err != nil {
			if ctx.Err() != nil {
				return
			}
			fail(fmt.Errorf("insert %d: %w", i, err))
		}
	}
	fmt.Printf("pepperd: loaded %d items\n", items)
	iv := keyspace.ClosedInterval(0, keyspace.Key((items+1)*1000))
	res, stats, err := node.CurrentPeer().RangeQueryStats(ctx, iv)
	if err != nil {
		fmt.Printf("pepperd: full-range query failed: %v\n", err)
		return
	}
	fmt.Printf("pepperd: full-range query -> %d items in %v over %d hops\n", len(res), stats.ScanTime, stats.Hops)
}

func printStatus(node *core.Standalone) {
	p := node.CurrentPeer()
	state := p.Ring.State()
	if rng, ok := p.Store.Range(); ok {
		fmt.Printf("pepperd: state=%s val=%d range=%s items=%d replicas=%d free-pool=%d\n",
			state, p.Ring.Self().Val, rng, p.Store.ItemCount(), p.Rep.ReplicaCount(), node.Pool.Len())
	} else {
		fmt.Printf("pepperd: state=%s (no range assigned yet) free-pool=%d\n", state, node.Pool.Len())
	}
}
