package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/auth"
	"repro/internal/core"
	"repro/internal/datastore"
	"repro/internal/gossip"
	"repro/internal/keyspace"
	"repro/internal/replication"
	"repro/internal/ring"
	"repro/internal/router"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/transport/tcp"
)

// tcpPeerConfig tunes the component stack for real-network latencies (the
// paper's second-scale parameters compressed to LAN scale).
func tcpPeerConfig(seed int64) core.Config {
	return core.Config{
		Ring: ring.Config{
			SuccListLen: 4,
			StabPeriod:  250 * time.Millisecond,
			PingPeriod:  250 * time.Millisecond,
			CallTimeout: 2 * time.Second,
			AckTimeout:  20 * time.Second,
		},
		Store: datastore.Config{
			StorageFactor:      5,
			CheckPeriod:        300 * time.Millisecond,
			CallTimeout:        2 * time.Second,
			MaintenanceTimeout: 20 * time.Second,
		},
		Replication: replication.Config{
			Factor:        3,
			RefreshPeriod: 500 * time.Millisecond,
			CallTimeout:   2 * time.Second,
		},
		Router: router.Config{
			RefreshPeriod: 500 * time.Millisecond,
			CallTimeout:   2 * time.Second,
			MaxHops:       64,
		},
		QueryAttemptTimeout: 10 * time.Second,
		MaxQueryAttempts:    20,
		Seed:                seed,
	}
}

// serveMain runs one peer as its own OS process over TCP: the -listen mode.
func serveMain(listen, join string, items, payload int, seed int64, dataDir string, syncInterval, lease, gossipInterval time.Duration, clusterKey string, chaosDropChunk int) {
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "pepperd: %v\n", err)
		os.Exit(1)
	}

	cfg := tcpPeerConfig(seed)
	cfg.Store.LeaseDuration = lease
	if gossipInterval > 0 {
		cfg.Gossip = gossip.Config{
			Interval:    gossipInterval,
			Fanout:      2,
			CallTimeout: 2 * time.Second,
			Seed:        seed,
		}
	}
	tcpCfg := tcp.Config{DialTimeout: 2 * time.Second, CallTimeout: 10 * time.Second, ChaosChunkDrop: chaosDropChunk}
	if dataDir != "" {
		factory := storage.DiskFactory{Dir: dataDir, Opts: storage.Options{SyncInterval: syncInterval}}
		cfg.Storage = factory
		// Disk staging on both sides of the transport: inbound streamed
		// requests and dial-side chunked responses spill to files, so the
		// MaxStreamBytes RAM ceiling no longer bounds transfer size.
		tcpCfg.Stager = factory.NewStager
	}
	if clusterKey != "" {
		key, err := auth.LoadClusterKey(clusterKey)
		if err != nil {
			fail(err)
		}
		// One identity per process: persisted beside the WAL when -data-dir is
		// set (so a restart resumes the same identity and its advert
		// signatures keep verifying), ephemeral otherwise.
		var id *auth.Identity
		if dataDir != "" {
			id, err = auth.LoadOrCreate(dataDir)
		} else {
			id, err = auth.NewIdentity()
		}
		if err != nil {
			fail(err)
		}
		tcpCfg.ClusterKey = key
		tcpCfg.Identity = id
		cfg.Identities = func(transport.Addr) (*auth.Identity, error) { return id, nil }
		fmt.Printf("pepperd: wire authentication enabled (cluster key %s)\n", clusterKey)
	}
	tr := tcp.New(tcpCfg)
	defer tr.Close()
	node, err := core.NewStandalone(tr, transport.Addr(listen), cfg)
	if err != nil {
		fail(err)
	}
	defer node.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	resumed := false
	if dataDir != "" {
		resumed, err = node.Resume()
		if err != nil {
			fail(err)
		}
	}
	switch {
	case resumed:
		p := node.CurrentPeer()
		rng, epoch, _ := p.Store.RangeEpoch()
		_, n := node.Recovered()
		fmt.Printf("pepperd: recovered at %s: resuming range %s at epoch %d with %d items\n", listen, rng, epoch, n)
	case join == "":
		if err := node.Bootstrap(); err != nil {
			fail(err)
		}
		fmt.Printf("pepperd: bootstrapped ring at %s (owns the full key space)\n", listen)
		if items > 0 {
			go loadItems(ctx, node, items, payload, fail)
		}
	default:
		if err := node.JoinAsFree(ctx, transport.Addr(join)); err != nil {
			fail(err)
		}
		fmt.Printf("pepperd: %s announced as free peer to %s; waiting to be drawn into the ring\n", listen, join)
	}

	ticker := time.NewTicker(2 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-sigCh:
			fmt.Println("pepperd: shutting down")
			return
		case <-ticker.C:
			printStatus(node)
		}
	}
}

// loadItems feeds the index from this process, forcing splits that pull
// announced free peers into the ring. A non-zero payload size pads every
// item, so the resulting split hand-offs and replica pushes exercise the
// chunked streaming transfer on the real wire.
func loadItems(ctx context.Context, node *core.Standalone, items, payload int, fail func(error)) {
	pad := ""
	if payload > 0 {
		pad = strings.Repeat("x", payload)
	}
	for i := 1; i <= items; i++ {
		it := datastore.Item{Key: keyspace.Key(i * 1000), Payload: fmt.Sprintf("object-%d%s", i, pad)}
		if err := node.CurrentPeer().InsertItem(ctx, it); err != nil {
			if ctx.Err() != nil {
				return
			}
			fail(fmt.Errorf("insert %d: %w", i, err))
		}
	}
	fmt.Printf("pepperd: loaded %d items\n", items)
	iv := keyspace.ClosedInterval(0, keyspace.Key((items+1)*1000))
	res, stats, err := node.CurrentPeer().RangeQueryStats(ctx, iv)
	if err != nil {
		fmt.Printf("pepperd: full-range query failed: %v\n", err)
		return
	}
	fmt.Printf("pepperd: full-range query -> %d items in %v over %d hops\n", len(res), stats.ScanTime, stats.Hops)
}

// probeOpts are the success criteria of one pepperd -probe invocation.
type probeOpts struct {
	expect              int           // required query item count; <0 = no query
	serving             bool          // require JOINED with a range
	minPool             int           // required free-pool size; <0 = don't care
	minCacheHits        int64         // required owner-lookup cache hits; <0 = don't care
	minEpoch            int64         // required ownership epoch; <0 = don't care
	minRecovered        int           // required recovered-item count; <0 = don't care
	minGossipFree       int           // required gossiped free-directory entries; <0 = don't care
	minGossipMem        int           // required gossiped member count; <0 = don't care
	minStreamResumes    int           // required resumed bulk transfers; <0 = don't care
	minHandshakeRejects int           // required handshake refusals; <0 = don't care
	audit               bool          // final journaled query + Definition 4 audit
	leaseAudit          bool          // final lease-exclusivity audit (CheckLeases)
	wait                time.Duration // keep retrying until satisfied or this elapses
	lb                  keyspace.Key  // query interval lower bound
	ub                  keyspace.Key  // query interval upper bound
	load                int           // items to probe-load once criteria hold; 0 = none
	jsonOut             bool          // emit the final status as JSON on stdout
	clusterKey          string        // cluster-secret path; the probe's own dials handshake with it
}

// probeMain is the -probe mode: a thin RPC client that interrogates a
// running pepperd process and exits 0 only when the process satisfies the
// requested criteria. The CI cluster-smoke job drives the whole churn cycle
// with it. Polling probes run unjournaled queries; with -audit, once the
// criteria hold, one final journaled query runs and the process's
// Definition 4 checker must come back clean.
func probeMain(target string, o probeOpts) int {
	tcpCfg := tcp.Config{DialTimeout: 2 * time.Second, CallTimeout: 60 * time.Second}
	if o.clusterKey != "" {
		key, err := auth.LoadClusterKey(o.clusterKey)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pepperd: %v\n", err)
			return 1
		}
		tcpCfg.ClusterKey = key // ephemeral probe identity, minted by tcp.New
	}
	tr := tcp.New(tcpCfg)
	defer tr.Close()
	ctx := context.Background()
	deadline := time.Now().Add(o.wait)

	req := core.ProbeRequest{Query: o.expect >= 0, Lo: o.lb, Hi: o.ub}
	var st core.ProbeStatus
	var err error
	for {
		st, err = core.Probe(ctx, tr, "probe", transport.Addr(target), req)
		if err == nil && probeSatisfied(st, o) {
			break
		}
		if time.Now().After(deadline) {
			if err != nil {
				fmt.Fprintf(os.Stderr, "pepperd: probe %s failed: %v\n", target, err)
			} else {
				fmt.Fprintf(os.Stderr, "pepperd: probe %s unsatisfied: %s\n", target, renderStatus(st))
			}
			return 1
		}
		time.Sleep(time.Second)
	}

	if o.load > 0 {
		// One-shot (not retried: loads are not idempotent) once the polling
		// criteria hold. The reply carries the exact loaded interval.
		loadReq := req
		loadReq.LoadItems = o.load
		st, err = core.Probe(ctx, tr, "probe", transport.Addr(target), loadReq)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pepperd: load probe %s failed: %v\n", target, err)
			return 1
		}
	}

	if o.audit || o.leaseAudit {
		req.Journal, req.Audit, req.LeaseAudit = o.audit, o.audit, o.leaseAudit
		req.Query = req.Query && o.audit
		st, err = core.Probe(ctx, tr, "probe", transport.Addr(target), req)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pepperd: audit probe %s failed: %v\n", target, err)
			return 1
		}
		if o.audit && (!probeSatisfied(st, o) || st.Violations != 0) {
			fmt.Fprintf(os.Stderr, "pepperd: audit %s not clean: %s\n", target, renderStatus(st))
			return 1
		}
		if o.leaseAudit && st.LeaseViolations != 0 {
			fmt.Fprintf(os.Stderr, "pepperd: lease audit %s not clean: %s\n", target, renderStatus(st))
			return 1
		}
	}
	if o.jsonOut {
		// Machine-readable mode: the status object is the ONLY stdout output,
		// so scripts can pipe it straight into a JSON parser.
		out, err := json.Marshal(st)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pepperd: encoding probe status: %v\n", err)
			return 1
		}
		fmt.Println(string(out))
		return 0
	}
	fmt.Printf("pepperd: probe %s ok: %s\n", target, renderStatus(st))
	return 0
}

// probeSatisfied checks one status against the criteria (ignoring the audit
// verdict, which only the final journaled probe carries).
func probeSatisfied(st core.ProbeStatus, o probeOpts) bool {
	if o.expect >= 0 && (st.QueryErr != "" || st.QueryCount != o.expect) {
		return false
	}
	if o.serving && (st.State != "JOINED" || !st.HasRange) {
		return false
	}
	if o.minPool >= 0 && st.FreePool < o.minPool {
		return false
	}
	if o.minCacheHits >= 0 && st.CacheHits < uint64(o.minCacheHits) {
		return false
	}
	if o.minEpoch >= 0 && st.Epoch < uint64(o.minEpoch) {
		return false
	}
	if o.minRecovered >= 0 && (!st.Recovered || st.RecoveredItems < o.minRecovered) {
		return false
	}
	if o.minGossipFree >= 0 && st.GossipFree < o.minGossipFree {
		return false
	}
	// Membership is a monotone union across merges, so unlike the free count
	// this gate can never be satisfied and then un-satisfied by a racing
	// split: it is the race-free way to wait for directory spread.
	if o.minGossipMem >= 0 && st.GossipMembers < o.minGossipMem {
		return false
	}
	if o.minStreamResumes >= 0 && st.StreamResumes < uint64(o.minStreamResumes) {
		return false
	}
	if o.minHandshakeRejects >= 0 && st.HandshakeRejects < uint64(o.minHandshakeRejects) {
		return false
	}
	return st.RejoinErr == ""
}

// renderStatus formats a probe status for the job log.
func renderStatus(st core.ProbeStatus) string {
	out := fmt.Sprintf("state=%s val=%d epoch=%d items=%d replicas=%d free-pool=%d cache-hits=%d/%d (entries=%d) replica-reads=%d stale-epoch-rejects=%d stale-chain-refusals=%d step-downs=%d",
		st.State, st.Val, st.Epoch, st.Items, st.Replicas, st.FreePool, st.CacheHits, st.CacheHits+st.CacheMisses, st.CacheEntries, st.ReplicaReads, st.StaleEpochRejects, st.StaleChainRefusals, st.StepDowns)
	if st.QueryErr != "" {
		out += fmt.Sprintf(" query-err=%q", st.QueryErr)
	} else if st.QueryCount >= 0 {
		out += fmt.Sprintf(" query-items=%d", st.QueryCount)
	}
	if st.Violations >= 0 {
		out += fmt.Sprintf(" violations=%d", st.Violations)
	}
	if st.LeaseEnabled {
		out += fmt.Sprintf(" lease-age-ms=%d lease-expired=%t lease-adoptions=%d", st.LeaseAgeMs, st.LeaseExpired, st.LeaseAdoptions)
	}
	if st.LeaseViolations >= 0 {
		out += fmt.Sprintf(" lease-violations=%d", st.LeaseViolations)
	}
	if st.GossipMembers > 0 {
		out += fmt.Sprintf(" gossip-members=%d gossip-free=%d gossip-rounds=%d", st.GossipMembers, st.GossipFree, st.GossipRounds)
	}
	if st.AuthEnabled {
		out += fmt.Sprintf(" auth=on handshake-rejects=%d sig-rejects=%d", st.HandshakeRejects, st.SigRejects)
	}
	if st.StreamResumes > 0 {
		out += fmt.Sprintf(" stream-resumes=%d", st.StreamResumes)
	}
	if st.RejoinErr != "" {
		out += fmt.Sprintf(" rejoin-err=%q", st.RejoinErr)
	}
	return out
}

func printStatus(node *core.Standalone) {
	p := node.CurrentPeer()
	state := p.Ring.State()
	if rng, ok := p.Store.Range(); ok {
		fmt.Printf("pepperd: state=%s val=%d range=%s items=%d replicas=%d free-pool=%d\n",
			state, p.Ring.Self().Val, rng, p.Store.ItemCount(), p.Rep.ReplicaCount(), node.Pool.Len())
	} else {
		fmt.Printf("pepperd: state=%s (no range assigned yet) free-pool=%d\n", state, node.Pool.Len())
	}
}
