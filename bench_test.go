// Benchmarks regenerating the paper's evaluation (Section 6): one benchmark
// per figure, each running a reduced sweep of the same experiment the
// figure plots and logging the series, plus micro-benchmarks for the index
// operations themselves. The full sweeps run through cmd/benchrunner; see
// EXPERIMENTS.md for the paper-vs-measured comparison.
//
//	go test -bench=. -benchmem
package main

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/datastore"
	"repro/internal/keyspace"
	"repro/internal/metrics"
	"repro/internal/replication"
	"repro/internal/ring"
	"repro/internal/router"
	"repro/internal/simnet"
)

// benchParams keeps figure regeneration fast enough for `go test -bench`.
func benchParams() bench.Params {
	return bench.Params{
		Scale: 2 * time.Millisecond,
		RunS:  40,
		Seed:  1,
	}
}

// reportFigure logs the regenerated series and reports the mean of one
// reference series point as the benchmark metric (in paper milliseconds).
func reportFigure(b *testing.B, fig *metrics.Figure, refSeries string) {
	b.Helper()
	b.Log("\n" + fig.Render())
	for _, s := range fig.Series {
		if s.Label != refSeries {
			continue
		}
		var sum float64
		var n int
		for _, y := range s.Points {
			sum += y
			n++
		}
		if n > 0 {
			b.ReportMetric(sum/float64(n)*1000, "paper-ms/op")
		}
	}
}

// BenchmarkFig19InsertSucc regenerates Figure 19: insertSucc time vs
// successor list length, PEPPER vs naive.
func BenchmarkFig19InsertSucc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.Fig19(benchParams(), []int{2, 4, 6, 8})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportFigure(b, fig, "insertSuccessor")
		}
	}
}

// BenchmarkFig20InsertSucc regenerates Figure 20: insertSucc time vs ring
// stabilization period, with the no-proactive ablation.
func BenchmarkFig20InsertSucc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.Fig20(benchParams(), []float64{2, 4, 6, 8}, true)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportFigure(b, fig, "insertSuccessor")
		}
	}
}

// BenchmarkFig21ScanRange regenerates Figure 21: range search time vs hops,
// scanRange vs naive application search.
func BenchmarkFig21ScanRange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.Fig21(benchParams(), 8, 250)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportFigure(b, fig, "search using scanRange")
		}
	}
}

// BenchmarkFig22Leave regenerates Figure 22: leave and merge times vs
// successor list length, PEPPER vs naive leave.
func BenchmarkFig22Leave(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.Fig22(benchParams(), []int{2, 4, 6, 8})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportFigure(b, fig, "leaveRing+merge")
		}
	}
}

// BenchmarkFig23FailureMode regenerates Figure 23: insertSucc time vs peer
// failure rate.
func BenchmarkFig23FailureMode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := bench.Fig23(benchParams(), []float64{0, 6, 12})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportFigure(b, fig, "insertSuccessor")
		}
	}
}

// --- Micro-benchmarks on a steady cluster ---------------------------------

func steadyCluster(b *testing.B) *core.Cluster {
	b.Helper()
	cfg := core.Config{
		Net: simnet.Config{DeadCallDelay: 2 * time.Millisecond, Seed: 1},
		Ring: ring.Config{
			SuccListLen: 4,
			StabPeriod:  10 * time.Millisecond,
			CallTimeout: 50 * time.Millisecond,
		},
		Store:               datastore.Config{StorageFactor: 10, CheckPeriod: 20 * time.Millisecond},
		Replication:         replication.Config{Factor: 3, RefreshPeriod: 25 * time.Millisecond},
		Router:              router.Config{RefreshPeriod: 20 * time.Millisecond},
		QueryAttemptTimeout: 2 * time.Second,
		Seed:                1,
	}
	c := core.NewCluster(cfg)
	b.Cleanup(c.Shutdown)
	if _, err := c.AddFirstPeer(); err != nil {
		b.Fatal(err)
	}
	if err := c.AddFreePeers(16); err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for i := 1; i <= 120; i++ {
		it := datastore.Item{Key: keyspace.Key(i * 1000), Payload: fmt.Sprintf("seed-%d", i)}
		if err := c.InsertItem(ctx, it); err != nil {
			b.Fatal(err)
		}
	}
	time.Sleep(200 * time.Millisecond) // let splits and routing settle
	return c
}

// BenchmarkInsertItem measures routed item insertion on a steady ring.
func BenchmarkInsertItem(b *testing.B) {
	c := steadyCluster(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keyspace.Key(200_000 + i)
		if err := c.InsertItem(ctx, datastore.Item{Key: k, Payload: "bench"}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeleteItem measures routed item deletion on a steady ring.
func BenchmarkDeleteItem(b *testing.B) {
	c := steadyCluster(b)
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		k := keyspace.Key(300_000 + i)
		if err := c.InsertItem(ctx, datastore.Item{Key: k}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.DeleteItem(ctx, keyspace.Key(300_000+i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRangeQueryNarrow measures a short (single-peer) range query.
func BenchmarkRangeQueryNarrow(b *testing.B) {
	c := steadyCluster(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lb := keyspace.Key((i%100 + 1) * 1000)
		if _, err := c.RangeQuery(ctx, keyspace.ClosedInterval(lb, lb+2000)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRangeQueryWide measures a multi-hop range query across the ring.
func BenchmarkRangeQueryWide(b *testing.B) {
	c := steadyCluster(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.RangeQuery(ctx, keyspace.ClosedInterval(1000, 120_000)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRangeQuery measures routed range queries with the owner-lookup
// cache cold (cleared before every query, forcing the full router descent)
// versus warm (the pipelined scan enters at the cached owner and validates
// there), across query spans from single-peer to most-of-the-ring.
func BenchmarkRangeQuery(b *testing.B) {
	for _, span := range []uint64{2, 20, 60} {
		for _, mode := range []string{"cold", "warm"} {
			b.Run(fmt.Sprintf("%s/span=%dk", mode, span), func(b *testing.B) {
				c := steadyCluster(b)
				ctx := context.Background()
				origin := c.LivePeers()[0]
				width := keyspace.Key(span * 1000)
				ivFor := func(i int) keyspace.Interval {
					lb := keyspace.Key((i%50 + 1) * 1000)
					return keyspace.ClosedInterval(lb, lb+width)
				}
				if mode == "warm" {
					for i := 0; i < 50; i++ {
						if _, _, err := origin.RangeQueryUnjournaled(ctx, ivFor(i)); err != nil {
							b.Fatal(err)
						}
					}
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if mode == "cold" {
						origin.Router.Cache().Clear()
					}
					if _, _, err := origin.RangeQueryUnjournaled(ctx, ivFor(i)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFindOwner measures content routing to a key's owner.
func BenchmarkFindOwner(b *testing.B) {
	c := steadyCluster(b)
	ctx := context.Background()
	live := c.LivePeers()
	if len(live) == 0 {
		b.Fatal("no live peers")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		origin := live[i%len(live)]
		if _, _, err := origin.Router.FindOwner(ctx, keyspace.Key((i%120+1)*1000)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouterHierarchical and BenchmarkRouterLinear compare the content
// router's doubling-pointer descent against the linear successor walk (the
// ablation DESIGN.md calls out): hops per lookup are reported alongside
// time per lookup.
func BenchmarkRouterHierarchical(b *testing.B) { benchRouter(b, false) }

// BenchmarkRouterLinear is the linear-walk arm of the router ablation.
func BenchmarkRouterLinear(b *testing.B) { benchRouter(b, true) }

func benchRouter(b *testing.B, linear bool) {
	c := steadyCluster(b)
	ctx := context.Background()
	live := c.LivePeers()
	if len(live) == 0 {
		b.Fatal("no live peers")
	}
	origin := live[0]
	totalHops := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := keyspace.Key((i%120 + 1) * 1000)
		var hops int
		var err error
		if linear {
			_, hops, err = origin.Router.LinearFindOwner(ctx, key)
		} else {
			_, hops, err = origin.Router.FindOwner(ctx, key)
		}
		if err != nil {
			b.Fatal(err)
		}
		totalHops += hops
	}
	b.ReportMetric(float64(totalHops)/float64(b.N), "hops/op")
}
