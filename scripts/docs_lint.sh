#!/usr/bin/env bash
# docs_lint.sh — dependency-free markdown link check over the repo's *.md
# files: every relative link target must exist on disk. External links
# (http/https/mailto) and pure in-page anchors are skipped; a relative link
# with an anchor is checked for the file part only. Runs in CI's lint job so
# a doc rename or removal cannot silently strand references in the other
# documents.
#
# Usage: scripts/docs_lint.sh
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
while IFS= read -r -d '' md; do
  dir=$(dirname "$md")
  # Inline links and images: [text](target) / ![alt](target). The sed pulls
  # the parenthesized target; titles ("...") and anchors (#...) are stripped
  # before the existence check.
  while IFS= read -r target; do
    case "$target" in
      http://* | https://* | mailto:* | '#'*) continue ;;
    esac
    path=${target%%#*}
    path=${path%% *}
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ]; then
      echo "$md: broken link -> $target" >&2
      fail=1
    fi
  done < <(grep -o '!\?\[[^]]*\]([^)]*)' "$md" | sed 's/.*](\([^)]*\))/\1/')
done < <(find . -name '*.md' -not -path './.git/*' -print0)

if [ "$fail" -ne 0 ]; then
  echo "docs lint FAILED" >&2
  exit 1
fi
echo "docs lint OK"
