#!/usr/bin/env bash
# cluster_smoke.sh — the CI cluster gauntlet: build pepperd, run a real
# 3-process TCP cluster through a churn cycle (kill one serving peer, let
# replication revive its range, rejoin a fresh process that a split draws
# back into the ring) and fail unless the final Definition 4 audit at the
# bootstrap is clean. Then the decentralized-membership phase: SIGKILL the
# BOOTSTRAP itself, prove the full load survives (the range-claim lease
# expires and the successor adopts), and prove the cluster can still grow —
# a fresh free peer announces to an ordinary member, the gossiped directory
# spreads it, and a post-kill overflow split draws it in. The run ends with
# a clean Definition 4 audit AND a clean lease-exclusivity audit at a
# surviving peer.
#
# The item payloads are padded (-payload) so the split hand-offs and replica
# pushes exceed the streaming chunk size: the chunked state transfer has to
# survive the real wire, not just simnet.
#
# The whole cluster runs authenticated (-cluster-key): every process and
# every probe holds the shared secret, so the entire gauntlet exercises the
# handshake on each connection. A trust-boundary phase then starts one peer
# with the WRONG key and requires that it is refused at the handshake, that a
# good peer counts the reject, and that the gossiped membership never grows
# past the legitimate processes.
#
# Usage: scripts/cluster_smoke.sh [port-base]
#
# Without an argument the port base is derived from this shell's PID and
# probed for availability (scripts/lib_ports.sh), so concurrent runs on one
# machine don't collide.
set -euo pipefail

# shellcheck source=scripts/lib_ports.sh
. "$(dirname "$0")/lib_ports.sh"

PORT_BASE=${1:-$(pick_port_base 6)}
echo "== port base: $PORT_BASE"
P_BOOT="127.0.0.1:$PORT_BASE"
P_A="127.0.0.1:$((PORT_BASE + 1))"
P_B="127.0.0.1:$((PORT_BASE + 2))"
P_REJOIN="127.0.0.1:$((PORT_BASE + 3))"
P_NEW="127.0.0.1:$((PORT_BASE + 4))"
P_EVIL="127.0.0.1:$((PORT_BASE + 5))"
ITEMS=40
# Range-claim lease: 10× the 500 ms replica-refresh period, and well under
# the ring's 20 s ack timeout — the killed bootstrap's range below is
# adopted via lease expiry before the failure detector would get there.
LEASE=5s
GOSSIP=300ms
PAYLOAD=65536 # 64 KiB per item: hand-offs span multiple 256 KiB chunks
WAIT=120s
UB=$(( (ITEMS + 1) * 1000 ))
# The ProbeStatus JSON schema this script was written against (see
# internal/ops). A contract drift fails the version check loudly instead of
# this script silently reading zero values out of renamed fields.
SCHEMA=1

WORK=$(mktemp -d)
BIN="$WORK/pepperd"
# The shared cluster secret: every serve AND every probe below presents it,
# so each connection in the run crosses the authentication handshake.
KEY="$WORK/cluster.key"
od -An -tx1 -N32 /dev/urandom | tr -d ' \n' >"$KEY"
declare -a PIDS=()
STATUS=1

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  if [ "$STATUS" -ne 0 ]; then
    echo "=== cluster smoke FAILED; process logs follow ==="
    for log in "$WORK"/*.log; do
      echo "--- $log"
      tail -40 "$log" || true
    done
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build pepperd"
go build -o "$BIN" ./cmd/pepperd

# probe_epoch runs a probe in -json mode, echoes the status object, asserts
# the schema version, and extracts the target's current ownership epoch. The
# epoch is the range-ownership fencing token: it must only ever move forward
# at a given peer, and every membership change (split, merge, revival) bumps
# it.
probe_epoch() {
  local out
  out=$("$BIN" "$@" -json)
  echo "$out" >&2
  if ! echo "$out" | grep -q "\"schema_version\":$SCHEMA[,}]"; then
    echo "probe status schema_version is not $SCHEMA; this script no longer matches the ops contract" >&2
    return 1
  fi
  echo "$out" | sed -n 's/.*"epoch":\([0-9][0-9]*\).*/\1/p' | head -1
}

echo "== start bootstrap at $P_BOOT ($ITEMS items, $PAYLOAD-byte payloads, lease $LEASE, gossip $GOSSIP)"
"$BIN" -listen "$P_BOOT" -items "$ITEMS" -payload "$PAYLOAD" -lease "$LEASE" -gossip-interval "$GOSSIP" -cluster-key "$KEY" >"$WORK/boot.log" 2>&1 &
PID_BOOT=$!
PIDS+=("$PID_BOOT")
# Wait for the FULL load before any membership change: every insert must be
# journaled at the bootstrap while it still owns the whole key space, or the
# final Definition 4 audit is unsound (journals are per-process — an insert
# routed to another peer mid-split journals there, and the bootstrap's
# checker would flag the item as never-live; see ROADMAP on journal
# shipping).
"$BIN" -probe "$P_BOOT" -cluster-key "$KEY" -serving -wait 30s
EPOCH_LOADED=$(probe_epoch -probe "$P_BOOT" -cluster-key "$KEY" -expect "$ITEMS" -probe-ub "$UB" -wait "$WAIT")
echo "== bootstrap epoch after load: ${EPOCH_LOADED:?probe printed no epoch}"

echo "== start two free peers ($P_A, $P_B); splits draw them into the ring"
"$BIN" -listen "$P_A" -join "$P_BOOT" -lease "$LEASE" -gossip-interval "$GOSSIP" -cluster-key "$KEY" >"$WORK/peer-a.log" 2>&1 &
PID_A=$!
PIDS+=("$PID_A")
"$BIN" -listen "$P_B" -join "$P_BOOT" -lease "$LEASE" -gossip-interval "$GOSSIP" -cluster-key "$KEY" >"$WORK/peer-b.log" 2>&1 &
PID_B=$!
PIDS+=("$PID_B")

echo "== wait until both joiners serve a range and the full load is queryable"
"$BIN" -probe "$P_A" -cluster-key "$KEY" -serving -min-epoch 1 -wait "$WAIT"
"$BIN" -probe "$P_B" -cluster-key "$KEY" -serving -min-epoch 1 -wait "$WAIT"
# The splits that drew the joiners in are epoch bumps at the bootstrap:
# its epoch must have moved strictly past the post-load value.
EPOCH_SPLIT=$(probe_epoch -probe "$P_BOOT" -cluster-key "$KEY" -expect "$ITEMS" -probe-ub "$UB" -min-epoch $((EPOCH_LOADED + 1)) -wait "$WAIT")
echo "== bootstrap epoch after splits: ${EPOCH_SPLIT:?probe printed no epoch}"

echo "== churn: fail-stop one serving peer ($P_B)"
kill -9 "$PID_B"

echo "== query-heavy phase: range queries during churn (cold then cache-warmed)"
# Each probe runs a full range query at the bootstrap while the failure is
# being recovered: the first queries descend cold, later ones enter at the
# cached owners, and stale entries for the killed peer must be detected at
# the target and evicted — never returned as wrong results.
for i in $(seq 1 6); do
  "$BIN" -probe "$P_BOOT" -cluster-key "$KEY" -expect "$ITEMS" -probe-ub "$UB" -wait "$WAIT"
done

echo "== recovery: replication must revive the lost range"
"$BIN" -probe "$P_BOOT" -cluster-key "$KEY" -expect "$ITEMS" -probe-ub "$UB" -wait "$WAIT"

echo "== rejoin: a fresh process re-enters and the pending split draws it in"
"$BIN" -listen "$P_REJOIN" -join "$P_BOOT" -lease "$LEASE" -gossip-interval "$GOSSIP" -cluster-key "$KEY" >"$WORK/peer-rejoin.log" 2>&1 &
PIDS+=($!)
"$BIN" -probe "$P_REJOIN" -cluster-key "$KEY" -serving -min-epoch 1 -wait "$WAIT"

echo "== final audit: journaled full query + Definition 4 check at the bootstrap"
# -min-cache-hits gates the read path: the query-heavy phase above must have
# produced owner-lookup cache hits at the bootstrap (the counter travels in
# the probe status). -min-epoch gates the ownership-epoch fence: across the
# whole kill/recover/rejoin cycle the bootstrap's epoch must never have
# regressed below its post-split value (epochs are monotonic per range).
"$BIN" -probe "$P_BOOT" -cluster-key "$KEY" -expect "$ITEMS" -probe-ub "$UB" -min-cache-hits 1 -min-epoch "$EPOCH_SPLIT" -audit -wait "$WAIT"

echo "== decentralized membership: a fresh free peer announces to an ORDINARY member ($P_REJOIN)"
# The announce target is deliberately not the bootstrap: free-peer
# announcements work against any serving member, and the gossiped directory
# is what spreads the entry to whoever needs it for a split.
"$BIN" -listen "$P_NEW" -join "$P_REJOIN" -lease "$LEASE" -gossip-interval "$GOSSIP" -cluster-key "$KEY" >"$WORK/peer-new.log" 2>&1 &
PIDS+=($!)
# Wait for the directory to spread: $P_A (which never saw the announce) must
# learn of all 5 member processes via gossip. The member count is a monotone
# union, so this gate cannot be satisfied and then un-satisfied by a racing
# split consuming the free entry.
"$BIN" -probe "$P_A" -cluster-key "$KEY" -min-gossip-members 5 -wait "$WAIT"

echo "== trust boundary: a peer holding the WRONG cluster key must be refused"
EVIL_KEY="$WORK/evil.key"
od -An -tx1 -N32 /dev/urandom | tr -d ' \n' >"$EVIL_KEY"
# The impostor's announce to $P_A dies at the authentication handshake: the
# process must exit nonzero without ever entering the ring, and its own log
# must show the typed authentication failure (not a timeout or a crash).
if "$BIN" -listen "$P_EVIL" -join "$P_A" -lease "$LEASE" -gossip-interval "$GOSSIP" -cluster-key "$EVIL_KEY" >"$WORK/peer-evil.log" 2>&1; then
  echo "a peer holding the wrong cluster key joined the cluster" >&2
  exit 1
fi
if ! grep -qi "not authenticated" "$WORK/peer-evil.log"; then
  echo "the wrong-key peer failed for a reason other than authentication:" >&2
  tail -5 "$WORK/peer-evil.log" >&2
  exit 1
fi
# The refused handshake is visible in $P_A's wire counters, and the gossiped
# membership must NOT have grown past the 5 legitimate processes.
"$BIN" -probe "$P_A" -cluster-key "$KEY" -min-handshake-rejects 1 -wait "$WAIT"
MEMBERS_OUT=$("$BIN" -probe "$P_A" -cluster-key "$KEY" -json)
MEMBERS=$(echo "$MEMBERS_OUT" | sed -n 's/.*"gossip_members":\([0-9][0-9]*\).*/\1/p')
if [ "${MEMBERS:?probe printed no gossip_members}" -ne 5 ]; then
  echo "gossip_members = $MEMBERS after the wrong-key peer; the impostor entered the directory" >&2
  exit 1
fi

echo "== SIGKILL the bootstrap ($P_BOOT): its lease must expire and its successor adopt the range"
kill -9 "$PID_BOOT"

echo "== the full load survives without the bootstrap"
"$BIN" -probe "$P_A" -cluster-key "$KEY" -expect "$ITEMS" -probe-ub "$UB" -wait "$WAIT"

echo "== post-kill growth: probe-load overflows $P_A; the split must draw $P_NEW in"
# With the bootstrap dead there is no central pool to borrow from: the
# overflowed peer resolves the free peer from the gossiped directory (or the
# revival adopter already did — either way a split completes without the
# bootstrap). The load goes into an item-free gap of $P_A's own range and
# the JSON reply reports the exact loaded interval for the final audit.
LOAD_OUT=$("$BIN" -probe "$P_A" -cluster-key "$KEY" -serving -probe-load 12 -json -wait "$WAIT")
echo "$LOAD_OUT"
if ! echo "$LOAD_OUT" | grep -q "\"schema_version\":$SCHEMA[,}]"; then
  echo "probe status schema_version is not $SCHEMA; this script no longer matches the ops contract" >&2
  exit 1
fi
LOAD_LO=$(echo "$LOAD_OUT" | sed -n 's/.*"loaded_lo":\([0-9][0-9]*\).*/\1/p')
LOAD_HI=$(echo "$LOAD_OUT" | sed -n 's/.*"loaded_hi":\([0-9][0-9]*\).*/\1/p')
echo "== loaded interval: [${LOAD_LO:?probe printed no loaded_lo}, ${LOAD_HI:?probe printed no loaded_hi}]"
"$BIN" -probe "$P_NEW" -cluster-key "$KEY" -serving -min-epoch 1 -wait "$WAIT"

echo "== final: exact-count query over the loaded interval + Definition 4 + lease audit at $P_A"
# -expect over [loaded_lo, loaded_hi] must return exactly the probe-loaded
# items (the gap was item-free cluster-wide at load time); -audit journals
# the query and requires a clean Definition 4 check; -lease-audit requires
# that no two unexpired leases ever overlapped a key in $P_A's journal —
# including across the bootstrap kill and the adoption it forced.
"$BIN" -probe "$P_A" -cluster-key "$KEY" -expect 12 -probe-lb "$LOAD_LO" -probe-ub "$LOAD_HI" -audit -lease-audit -wait "$WAIT"

STATUS=0
echo "== cluster smoke PASSED"
