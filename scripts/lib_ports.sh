# lib_ports.sh — shared port selection for the multi-process smoke scripts.
#
# A fixed PORT_BASE makes concurrent CI jobs (or a developer's stray pepperd)
# collide; deriving the base from this shell's PID and probing each candidate
# port before use makes the scripts safe to run in parallel. Source this
# file, then:
#
#   PORT_BASE=$(pick_port_base 4)   # reserve a run of 4 consecutive ports

# port_free PORT — succeed iff nothing on 127.0.0.1 accepts on PORT. Uses
# bash's /dev/tcp connect test (in a subshell, so the fd closes immediately);
# no external tools needed.
port_free() {
  ! (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null
}

# pick_port_base COUNT — print the base of a run of COUNT consecutive free
# ports. The starting candidate is derived from $$ so two concurrent scripts
# start their search in different places; each candidate run is probed
# port-by-port before being handed out.
pick_port_base() {
  local count=${1:-4}
  local base try port attempt ok
  base=$((20000 + ($$ * 131) % 30000))
  for attempt in $(seq 0 49); do
    try=$((base + attempt * (count + 1)))
    if ((try + count >= 64000)); then
      try=$((20000 + (try % 30000)))
    fi
    ok=1
    for ((port = try; port < try + count; port++)); do
      if ! port_free "$port"; then
        ok=0
        break
      fi
    done
    if ((ok)); then
      echo "$try"
      return 0
    fi
  done
  echo "lib_ports: no run of $count free ports found" >&2
  return 1
}
