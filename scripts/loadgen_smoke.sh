#!/usr/bin/env bash
# loadgen_smoke.sh — the CI open-loop gauntlet: build pepperd and loadgen,
# stand up a real 3-process TCP cluster, then drive a fixed-rate open-loop
# mixed workload (inserts/deletes/range queries) through the smart client
# tier while one serving peer is fail-stopped mid-run. The run must sustain
# its goodput and p99 gates and return ZERO incorrect query results — the
# client has to absorb the stale routes and the dead primary (replica
# fallback for unjournaled reads), not surface them to the workload.
#
# A final journaled probe at the bootstrap runs the Definition 4 audit, so
# everything the harness wrote while churn was in flight is also checked for
# ring-level consistency.
#
# Usage: scripts/loadgen_smoke.sh [port-base]
set -euo pipefail

# shellcheck source=scripts/lib_ports.sh
. "$(dirname "$0")/lib_ports.sh"

PORT_BASE=${1:-$(pick_port_base 3)}
echo "== port base: $PORT_BASE"
P_BOOT="127.0.0.1:$PORT_BASE"
P_A="127.0.0.1:$((PORT_BASE + 1))"
P_B="127.0.0.1:$((PORT_BASE + 2))"
ITEMS=40
WAIT=120s
UB=$(( (ITEMS + 1) * 1000 ))

RATE=150
DURATION=10s
WARMUP=2s
KILL_AFTER=4   # seconds into the measured run before the fail-stop
MAX_P99=5000ms # generous: CI machines are slow and the run spans a failure
MIN_GOODPUT=0.80

WORK=$(mktemp -d)
PEPPERD="$WORK/pepperd"
LOADGEN="$WORK/loadgen"
declare -a PIDS=()
STATUS=1

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  if [ "$STATUS" -ne 0 ]; then
    echo "=== loadgen smoke FAILED; logs follow ==="
    for log in "$WORK"/*.log "$WORK"/summary.json; do
      [ -f "$log" ] || continue
      echo "--- $log"
      tail -40 "$log" || true
    done
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build pepperd and loadgen"
go build -o "$PEPPERD" ./cmd/pepperd
go build -o "$LOADGEN" ./cmd/loadgen

echo "== start bootstrap at $P_BOOT ($ITEMS items)"
"$PEPPERD" -listen "$P_BOOT" -items "$ITEMS" >"$WORK/boot.log" 2>&1 &
PIDS+=($!)
"$PEPPERD" -probe "$P_BOOT" -serving -wait 30s
"$PEPPERD" -probe "$P_BOOT" -expect "$ITEMS" -probe-ub "$UB" -wait "$WAIT"

echo "== start two free peers ($P_A, $P_B); splits draw them into the ring"
"$PEPPERD" -listen "$P_A" -join "$P_BOOT" >"$WORK/peer-a.log" 2>&1 &
PIDS+=($!)
"$PEPPERD" -listen "$P_B" -join "$P_BOOT" >"$WORK/peer-b.log" 2>&1 &
PID_B=$!
PIDS+=("$PID_B")
"$PEPPERD" -probe "$P_A" -serving -min-epoch 1 -wait "$WAIT"
"$PEPPERD" -probe "$P_B" -serving -min-epoch 1 -wait "$WAIT"
"$PEPPERD" -probe "$P_BOOT" -expect "$ITEMS" -probe-ub "$UB" -wait "$WAIT"

echo "== open-loop run: $RATE ops/s for $DURATION (warmup $WARMUP), kill $P_B at t+${KILL_AFTER}s"
# The workload's keys live above the preloaded items (still inside the
# cluster's split ranges is not required — inserts land wherever the ring
# owns them). Gates: p99 under a generous ceiling, goodput floor, and the
# loadgen's built-in zero-incorrect-results check (exit 2 on violation).
"$LOADGEN" -targets "$P_BOOT,$P_A,$P_B" \
  -rate "$RATE" -duration "$DURATION" -warmup "$WARMUP" \
  -keys $((UB * 4)) -span 4000 -seed 7 \
  -max-p99 "$MAX_P99" -min-goodput "$MIN_GOODPUT" \
  -json "$WORK/summary.json" >"$WORK/loadgen.log" 2>&1 &
LG_PID=$!

sleep $(( ${WARMUP%s} + KILL_AFTER ))
echo "== churn: fail-stop $P_B mid-run"
kill -9 "$PID_B"

if ! wait "$LG_PID"; then
  echo "loadgen smoke: open-loop run failed its gates" >&2
  cat "$WORK/loadgen.log" >&2
  exit 1
fi
cat "$WORK/loadgen.log"
echo "== loadgen summary"
cat "$WORK/summary.json"

echo "== final audit: journaled probe + Definition 4 check at the bootstrap"
# Churn plus the workload's own inserts/deletes change the item population;
# the audit probe checks journal consistency (Definition 4) rather than a
# fixed count, and -min-epoch 1 plus -serving confirm the bootstrap is still
# a fenced owner after the failure.
"$PEPPERD" -probe "$P_BOOT" -serving -min-epoch 1 -audit -wait "$WAIT" -json

STATUS=0
echo "== loadgen smoke PASSED"
