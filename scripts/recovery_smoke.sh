#!/usr/bin/env bash
# recovery_smoke.sh — the CI durability gauntlet: build pepperd, run peers
# with -data-dir over real TCP, SIGKILL them mid-service and restart each
# from its data directory. A restart must recover the last claimed
# (range, epoch) — the SAME epoch: it is the old incarnation with provable
# identity, not a new claimant — serve its recovered items, re-enter the
# ring, and the run must end with a clean Definition 4 audit.
#
# Two crash cycles are driven:
#
#   1. The bootstrap (sole ring member, all items loaded) is kill -9'd and
#      restarted. Nothing else can revive its range, so the recovered epoch
#      is asserted EQUAL to the pre-crash epoch, and the recovered item
#      count must cover the full load (-min-recovered gates on the probe's
#      recovered/recovered_items fields, so a silent fresh re-bootstrap
#      that reloads items cannot masquerade as recovery).
#
#   2. A joiner that a split drew into the ring is kill -9'd and restarted
#      promptly — inside the failure-detection window (AckTimeout 20s), the
#      operational window the recovery path exists for — and must resume
#      the same epoch and re-announce through its remembered bootstrap.
#
# The payloads are padded so split hand-offs exceed the streaming chunk
# size, and every process runs with -data-dir, so the chunked transfers are
# staged through storage.Disk spill files rather than RAM.
#
# The whole run is authenticated (-cluster-key). Identities live beside the
# WAL, so a restarted process resumes the SAME ed25519 identity and its
# signed ownership adverts keep verifying at its peers across the crash.
# The restarted bootstrap also runs with -chaos-drop-chunk: its first bulk
# send that reaches the chosen chunk has its connection torn down mid-
# transfer, and the run gates on -min-stream-resumes — the hand-off must
# have completed by resuming from the receiver's high-water chunk mark, not
# by luck.
#
# Usage: scripts/recovery_smoke.sh [port-base]
set -euo pipefail

# shellcheck source=scripts/lib_ports.sh
. "$(dirname "$0")/lib_ports.sh"

PORT_BASE=${1:-$(pick_port_base 2)}
echo "== port base: $PORT_BASE"
P_BOOT="127.0.0.1:$PORT_BASE"
P_JOIN="127.0.0.1:$((PORT_BASE + 1))"
ITEMS=24
PAYLOAD=65536 # 64 KiB per item: hand-offs span multiple chunks, staged on disk
WAIT=120s
UB=$(( (ITEMS + 1) * 1000 ))
# The ProbeStatus JSON schema this script was written against (see
# internal/ops). A contract drift fails the version check loudly instead of
# this script silently reading zero values out of renamed fields.
SCHEMA=1

WORK=$(mktemp -d)
BIN="$WORK/pepperd"
# The shared cluster secret: every serve and every probe presents it.
KEY="$WORK/cluster.key"
od -An -tx1 -N32 /dev/urandom | tr -d ' \n' >"$KEY"
DATA_BOOT="$WORK/boot-data"
DATA_JOIN="$WORK/join-data"
declare -a PIDS=()
STATUS=1

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  if [ "$STATUS" -ne 0 ]; then
    echo "=== recovery smoke FAILED; process logs follow ==="
    for log in "$WORK"/*.log; do
      echo "--- $log"
      tail -40 "$log" || true
    done
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build pepperd"
go build -o "$BIN" ./cmd/pepperd

# probe_json runs a probe in -json mode, echoes the status object to stderr,
# asserts the schema version, and prints the object on stdout for field
# extraction.
probe_json() {
  local out
  out=$("$BIN" "$@" -json)
  echo "$out" >&2
  if ! echo "$out" | grep -q "\"schema_version\":$SCHEMA[,}]"; then
    echo "probe status schema_version is not $SCHEMA; this script no longer matches the ops contract" >&2
    return 1
  fi
  echo "$out"
}

# json_uint OBJ FIELD — extract an unsigned integer field from a one-line
# JSON object (the probe status has no nested objects, so this is safe).
json_uint() {
  echo "$1" | sed -n "s/.*\"$2\":\([0-9][0-9]*\).*/\1/p" | head -1
}

echo "== start bootstrap at $P_BOOT with -data-dir ($ITEMS items, $PAYLOAD-byte payloads)"
"$BIN" -listen "$P_BOOT" -data-dir "$DATA_BOOT" -items "$ITEMS" -payload "$PAYLOAD" -cluster-key "$KEY" >"$WORK/boot.log" 2>&1 &
PID_BOOT=$!
PIDS+=("$PID_BOOT")
"$BIN" -probe "$P_BOOT" -cluster-key "$KEY" -serving -wait 30s
OUT=$(probe_json -probe "$P_BOOT" -cluster-key "$KEY" -expect "$ITEMS" -probe-ub "$UB" -wait "$WAIT")
EPOCH_LOADED=$(json_uint "$OUT" epoch)
echo "== bootstrap loaded; epoch ${EPOCH_LOADED:?probe printed no epoch}"

echo "== crash 1: kill -9 the bootstrap"
kill -9 "$PID_BOOT"
wait "$PID_BOOT" 2>/dev/null || true

echo "== restart the bootstrap from $DATA_BOOT (same command line, plus chunk chaos)"
# -chaos-drop-chunk arms one fault in the restarted process's transport: the
# first bulk send to reach chunk 2 has its connection killed mid-transfer.
# The split hand-off below is that send, so it must complete by resuming.
"$BIN" -listen "$P_BOOT" -data-dir "$DATA_BOOT" -items "$ITEMS" -payload "$PAYLOAD" -cluster-key "$KEY" -chaos-drop-chunk 2 >"$WORK/boot-restart.log" 2>&1 &
PIDS+=($!)
# -min-recovered gates on the durable restart itself: the process must report
# recovered=true with the full load recovered from WAL+snapshot, not a fresh
# bootstrap that happens to pass the item count by reloading.
OUT=$(probe_json -probe "$P_BOOT" -cluster-key "$KEY" -expect "$ITEMS" -probe-ub "$UB" -serving -min-recovered "$ITEMS" -wait "$WAIT")
EPOCH_RECOVERED=$(json_uint "$OUT" epoch)
if [ "$EPOCH_RECOVERED" != "$EPOCH_LOADED" ]; then
  echo "recovered epoch $EPOCH_RECOVERED != pre-crash epoch $EPOCH_LOADED (a restart is the same incarnation; the epoch must not move)" >&2
  exit 1
fi
echo "== bootstrap recovered at epoch $EPOCH_RECOVERED with all $ITEMS items"

echo "== start a free peer at $P_JOIN with -data-dir; the split draws it in"
"$BIN" -listen "$P_JOIN" -join "$P_BOOT" -data-dir "$DATA_JOIN" -cluster-key "$KEY" >"$WORK/join.log" 2>&1 &
PID_JOIN=$!
PIDS+=("$PID_JOIN")
OUT=$(probe_json -probe "$P_JOIN" -cluster-key "$KEY" -serving -min-epoch 1 -wait "$WAIT")
EPOCH_JOIN=$(json_uint "$OUT" epoch)
JOIN_ITEMS=$(json_uint "$OUT" items)
echo "== joiner serving ${JOIN_ITEMS:?} items at epoch ${EPOCH_JOIN:?}"
# The split bumped the bootstrap's epoch past its recovered value.
OUT=$(probe_json -probe "$P_BOOT" -cluster-key "$KEY" -expect "$ITEMS" -probe-ub "$UB" -min-epoch $((EPOCH_RECOVERED + 1)) -wait "$WAIT")
EPOCH_SPLIT=$(json_uint "$OUT" epoch)

echo "== the hand-off survived the injected connection loss by resuming"
# The chaos fault armed at restart tore down the connection under the
# split's chunked state transfer; the transfer nonetheless completed (the
# joiner serves, the bootstrap's count still audits), so the transport must
# report at least one stream resumed from the receiver's high-water mark.
probe_json -probe "$P_BOOT" -cluster-key "$KEY" -min-stream-resumes 1 -wait "$WAIT" >/dev/null

echo "== crash 2: kill -9 the joiner, restart it promptly from $DATA_JOIN"
kill -9 "$PID_JOIN"
wait "$PID_JOIN" 2>/dev/null || true
"$BIN" -listen "$P_JOIN" -join "$P_BOOT" -data-dir "$DATA_JOIN" -cluster-key "$KEY" >"$WORK/join-restart.log" 2>&1 &
PIDS+=($!)
OUT=$(probe_json -probe "$P_JOIN" -cluster-key "$KEY" -serving -min-recovered 1 -wait "$WAIT")
EPOCH_REJOIN=$(json_uint "$OUT" epoch)
if [ "$EPOCH_REJOIN" != "$EPOCH_JOIN" ]; then
  echo "joiner recovered epoch $EPOCH_REJOIN != pre-crash epoch $EPOCH_JOIN" >&2
  exit 1
fi
echo "== joiner recovered at epoch $EPOCH_REJOIN and re-announced"

echo "== final audit: journaled full query + Definition 4 check at the bootstrap"
# The bootstrap's journal witnessed every item's liveness: the load before
# any membership change, the recovery (journaled as a legal resumption of
# the same incarnation), and the split's outbound moves. -min-epoch asserts
# the epoch never regressed across both crash cycles.
probe_json -probe "$P_BOOT" -cluster-key "$KEY" -expect "$ITEMS" -probe-ub "$UB" -min-epoch "$EPOCH_SPLIT" -audit -wait "$WAIT" >/dev/null

STATUS=0
echo "== recovery smoke PASSED"
