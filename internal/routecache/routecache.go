// Package routecache implements the owner-lookup cache of the read path: a
// bounded LRU of entries mapping a peer's responsibility range to its
// address (plus the replica candidates advertised alongside it), learned
// from every successful lookup, scan hop and query reply.
//
// The cache is deliberately allowed to go stale. The paper's framework
// decides ownership by the target's Data Store range (Section 4.2 step (a)),
// so a cached address is only ever a hint: callers validate at the target —
// the router's nextHop ownership probe, or the scan-segment handler's cursor
// check — and call Invalidate when the hint turned out wrong. A stale entry
// therefore costs extra hops, never a wrong answer: the same stale-pointer
// tolerance the Content Router's doubling pointers already rely on, applied
// to cached routing state to shortcut the cold O(log n) descent.
//
// Entries carry the owner's ownership epoch (the fencing token of the range
// index): requests issued from a cached entry are stamped with it, so a
// deposed incarnation answers ErrStaleEpoch instead of serving, and Learn
// refuses to let an observation with a lower epoch clobber a fresher
// overlapping entry — "invalidate on any higher-epoch observation, never
// regress to a lower one".
//
// Counter semantics: a Hit is "the cache produced a candidate", counted at
// Lookup time; a candidate later proven stale additionally counts an
// Invalidation (and is evicted). The effective hit rate is therefore
// (Hits - Invalidations) / (Hits + Misses).
package routecache

import (
	"container/list"
	"sync"

	"repro/internal/keyspace"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// DefaultCapacity bounds the cache when the caller does not choose a size.
// Entries are one per peer, so this comfortably covers rings far larger than
// the benched clusters while keeping the linear candidate scan trivial.
const DefaultCapacity = 128

// Entry is one cached ownership fact: the peer at Addr was last seen serving
// Range at ownership Epoch, with Replicas holding copies of its items (its
// ring successors at learn time — the fallback targets for replica reads).
// Epoch 0 means the fact carried no epoch (hand-built tests); such entries
// are served but never shield against fresher observations.
type Entry struct {
	Range    keyspace.Range
	Addr     transport.Addr
	Epoch    uint64
	Replicas []transport.Addr
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	Invalidations uint64
	Size          int
}

// Cache is a bounded LRU of ownership entries, safe for concurrent use.
type Cache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // most recently used first; values are *Entry
	byAddr map[transport.Addr]*list.Element

	hits          metrics.Counter
	misses        metrics.Counter
	evictions     metrics.Counter
	invalidations metrics.Counter
}

// New returns an empty cache bounded to capacity entries (DefaultCapacity
// when capacity <= 0).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		cap:    capacity,
		ll:     list.New(),
		byAddr: make(map[transport.Addr]*list.Element),
	}
}

// Lookup returns the most recently used entry whose range contains key. The
// returned entry is a hint: the caller must validate ownership at the target
// and Invalidate on a stale answer. Overlapping stale entries are possible;
// preferring the most recently used one favours the freshest information.
func (c *Cache) Lookup(key keyspace.Key) (Entry, bool) {
	c.mu.Lock()
	for e := c.ll.Front(); e != nil; e = e.Next() {
		ent := e.Value.(*Entry)
		if ent.Range.Contains(key) {
			c.ll.MoveToFront(e)
			out := *ent
			// Snapshot the replica list: callers append to it (merging
			// fresher chain metadata) and must never alias the cached
			// backing array.
			out.Replicas = append([]transport.Addr(nil), ent.Replicas...)
			c.mu.Unlock()
			c.hits.Inc()
			return out, true
		}
	}
	c.mu.Unlock()
	c.misses.Inc()
	return Entry{}, false
}

// Learn records that addr currently serves rng at ownership epoch (0 = no
// epoch information), with replicas holding copies of its items. A peer owns
// exactly one range, so the entry keyed by addr is replaced; an empty addr
// is ignored. A nil replicas leaves any previously learned candidates in
// place (lookup paths that only confirm ownership do not erase the richer
// fact a scan reply taught us).
//
// Responsibility ranges partition the key space at any instant, so any OTHER
// cached entry overlapping the fact just learned is provably stale and is
// evicted: the cache converges toward a consistent partition approximation
// instead of accumulating shadowed garbage that Lookup would never surface
// (and therefore never get the chance to invalidate).
//
// Epochs order conflicting observations: a fact carrying a LOWER epoch than
// an overlapping cached entry is the one that is stale — an old observation
// arriving late, or a deposed incarnation still answering — and is dropped
// instead of clobbering the fresher entry. Any higher-epoch observation
// invalidates the overlapping lower-epoch entries as usual.
func (c *Cache) Learn(rng keyspace.Range, addr transport.Addr, epoch uint64, replicas []transport.Addr) {
	if addr == "" {
		return
	}
	c.mu.Lock()
	// Reject facts provably staler than what the cache already holds.
	if epoch != 0 {
		for e := c.ll.Front(); e != nil; e = e.Next() {
			ent := e.Value.(*Entry)
			if ent.Addr != addr && ent.Epoch > epoch && ent.Range.Overlaps(rng) {
				c.mu.Unlock()
				return
			}
		}
	}
	if e, ok := c.byAddr[addr]; ok && epoch != 0 && e.Value.(*Entry).Epoch > epoch {
		// A newer incarnation of the same peer is already cached.
		c.mu.Unlock()
		return
	}
	var evicted int
	for e := c.ll.Front(); e != nil; {
		next := e.Next()
		ent := e.Value.(*Entry)
		if ent.Addr != addr && ent.Range.Overlaps(rng) {
			delete(c.byAddr, ent.Addr)
			c.ll.Remove(e)
			evicted++
		}
		e = next
	}
	if e, ok := c.byAddr[addr]; ok {
		ent := e.Value.(*Entry)
		ent.Range = rng
		if epoch != 0 {
			ent.Epoch = epoch
		}
		if replicas != nil {
			ent.Replicas = append([]transport.Addr(nil), replicas...)
		}
		c.ll.MoveToFront(e)
	} else {
		ent := &Entry{Range: rng, Addr: addr, Epoch: epoch}
		if replicas != nil {
			ent.Replicas = append([]transport.Addr(nil), replicas...)
		}
		c.byAddr[addr] = c.ll.PushFront(ent)
		for c.ll.Len() > c.cap {
			back := c.ll.Back()
			delete(c.byAddr, back.Value.(*Entry).Addr)
			c.ll.Remove(back)
			evicted++
		}
	}
	c.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(uint64(evicted))
	}
}

// Invalidate drops the entry for addr — the target disclaimed ownership, or
// is unreachable. Unknown addresses are a no-op.
func (c *Cache) Invalidate(addr transport.Addr) {
	c.mu.Lock()
	e, ok := c.byAddr[addr]
	if ok {
		delete(c.byAddr, addr)
		c.ll.Remove(e)
	}
	c.mu.Unlock()
	if ok {
		c.invalidations.Inc()
	}
}

// Clear drops every entry, keeping the counters (the bench's cold arm resets
// state between queries without losing the run's statistics).
func (c *Cache) Clear() {
	c.mu.Lock()
	c.ll.Init()
	c.byAddr = make(map[transport.Addr]*list.Element)
	c.mu.Unlock()
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Entries returns a snapshot of the cached entries, most recently used
// first, for tests and operational introspection.
func (c *Cache) Entries() []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Entry, 0, c.ll.Len())
	for e := c.ll.Front(); e != nil; e = e.Next() {
		ent := *e.Value.(*Entry)
		ent.Replicas = append([]transport.Addr(nil), ent.Replicas...)
		out = append(out, ent)
	}
	return out
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	size := c.ll.Len()
	c.mu.Unlock()
	return Stats{
		Hits:          c.hits.Value(),
		Misses:        c.misses.Value(),
		Evictions:     c.evictions.Value(),
		Invalidations: c.invalidations.Value(),
		Size:          size,
	}
}
