package routecache

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/keyspace"
	"repro/internal/transport"
)

func TestLearnPrunesOverlappingStaleEntries(t *testing.T) {
	c := New(8)
	c.Learn(keyspace.NewRange(0, 100), "a", 0, nil)
	// Ranges partition the key space, so a fresher overlapping fact proves
	// the older entry stale: learning (0,50] -> b must evict (0,100] -> a.
	c.Learn(keyspace.NewRange(0, 50), "b", 0, nil)
	ent, ok := c.Lookup(40)
	if !ok || ent.Addr != "b" {
		t.Fatalf("Lookup(40) = %+v, %v; want fresh entry b", ent, ok)
	}
	if _, ok := c.Lookup(80); ok {
		t.Fatal("stale overlapping entry a survived a fresher Learn")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1 (the pruned stale entry)", st.Evictions)
	}
	// Disjoint facts coexist.
	c.Learn(keyspace.NewRange(50, 100), "a", 0, nil)
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2 disjoint entries", c.Len())
	}
}

func TestLearnReplacesPerAddr(t *testing.T) {
	c := New(8)
	c.Learn(keyspace.NewRange(0, 100), "a", 0, []transport.Addr{"r1"})
	c.Learn(keyspace.NewRange(0, 60), "a", 0, nil) // split shrank a's range
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (one entry per peer)", c.Len())
	}
	if _, ok := c.Lookup(80); ok {
		t.Fatal("Lookup(80) hit after a's range shrank to (0,60]")
	}
	ent, ok := c.Lookup(50)
	if !ok || ent.Addr != "a" {
		t.Fatalf("Lookup(50) = %+v, %v", ent, ok)
	}
	// nil replicas on relearn kept the previously learned candidates.
	if len(ent.Replicas) != 1 || ent.Replicas[0] != "r1" {
		t.Fatalf("Replicas = %v, want [r1] preserved", ent.Replicas)
	}
}

func TestEvictionIsLRUAndCounted(t *testing.T) {
	c := New(2)
	c.Learn(keyspace.NewRange(0, 10), "a", 0, nil)
	c.Learn(keyspace.NewRange(10, 20), "b", 0, nil)
	c.Lookup(5) // touch a: b becomes the LRU victim
	c.Learn(keyspace.NewRange(20, 30), "c", 0, nil)
	if _, ok := c.Lookup(15); ok {
		t.Fatal("entry b survived past capacity")
	}
	if _, ok := c.Lookup(5); !ok {
		t.Fatal("recently used entry a was evicted")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Size != 2 {
		t.Fatalf("Stats = %+v, want 1 eviction at size 2", st)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(8)
	c.Learn(keyspace.NewRange(0, 100), "a", 0, nil)
	c.Invalidate("a")
	c.Invalidate("unknown") // no-op, not counted
	if _, ok := c.Lookup(50); ok {
		t.Fatal("Lookup hit after Invalidate")
	}
	st := c.Stats()
	if st.Invalidations != 1 {
		t.Fatalf("Invalidations = %d, want 1", st.Invalidations)
	}
	if st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("Hits/Misses = %d/%d, want 0/1", st.Hits, st.Misses)
	}
}

func TestClearKeepsCounters(t *testing.T) {
	c := New(8)
	c.Learn(keyspace.NewRange(0, 100), "a", 0, nil)
	c.Lookup(50)
	c.Clear()
	if c.Len() != 0 {
		t.Fatalf("Len = %d after Clear", c.Len())
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("Clear dropped counters: %+v", st)
	}
}

func TestWrappedRangeLookup(t *testing.T) {
	c := New(8)
	c.Learn(keyspace.NewRange(keyspace.MaxKey-10, 10), "wrap", 0, nil)
	for _, k := range []keyspace.Key{keyspace.MaxKey, 0, 5} {
		if ent, ok := c.Lookup(k); !ok || ent.Addr != "wrap" {
			t.Fatalf("Lookup(%d) = %+v, %v", k, ent, ok)
		}
	}
	if _, ok := c.Lookup(500); ok {
		t.Fatal("Lookup(500) hit a wrapped range that excludes it")
	}
}

func TestConcurrentUse(t *testing.T) {
	c := New(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				lo := keyspace.Key((g*200 + i) % 1000)
				addr := transport.Addr(fmt.Sprintf("p%d", (g+i)%16))
				c.Learn(keyspace.NewRange(lo, lo+50), addr, 0, nil)
				c.Lookup(lo + 25)
				if i%17 == 0 {
					c.Invalidate(addr)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 32 {
		t.Fatalf("Len = %d exceeds capacity", c.Len())
	}
	c.Stats()
	c.Entries()
}

// Epoch rules: a higher-epoch observation invalidates overlapping
// lower-epoch entries, and a lower-epoch observation arriving late is
// dropped instead of clobbering the fresher entry — the cache never
// regresses to a deposed incarnation.
func TestLearnEpochOrdering(t *testing.T) {
	c := New(8)
	c.Learn(keyspace.NewRange(0, 100), "winner", 5, []transport.Addr{"r1"})

	// A deposed incarnation's observation arrives late: overlapping range,
	// lower epoch. It must not displace the fresher entry.
	c.Learn(keyspace.NewRange(0, 100), "loser", 3, nil)
	ent, ok := c.Lookup(50)
	if !ok || ent.Addr != "winner" || ent.Epoch != 5 {
		t.Fatalf("Lookup after stale learn = %+v, %v; want winner@5", ent, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after rejected stale learn, want 1", c.Len())
	}

	// A strictly higher epoch supersedes: the old entry is evicted.
	c.Learn(keyspace.NewRange(0, 100), "next", 6, nil)
	ent, ok = c.Lookup(50)
	if !ok || ent.Addr != "next" || ent.Epoch != 6 {
		t.Fatalf("Lookup after higher-epoch learn = %+v, %v; want next@6", ent, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after supersession, want 1 (winner evicted)", c.Len())
	}
}

// Same-peer epoch rules: an epoch-less confirmation keeps the known epoch,
// a stale self-observation is rejected, and a newer incarnation updates.
func TestLearnSameAddrEpochs(t *testing.T) {
	c := New(8)
	c.Learn(keyspace.NewRange(0, 100), "a", 4, []transport.Addr{"r1"})

	c.Learn(keyspace.NewRange(0, 100), "a", 0, nil) // ownership-only confirmation
	ent, _ := c.Lookup(50)
	if ent.Epoch != 4 || len(ent.Replicas) != 1 {
		t.Fatalf("epoch-less confirmation entry = %+v, want epoch 4 with replicas kept", ent)
	}

	c.Learn(keyspace.NewRange(0, 60), "a", 2, nil) // out-of-order stale observation
	ent, _ = c.Lookup(80)
	if ent.Addr != "a" || ent.Epoch != 4 {
		t.Fatalf("stale self-learn was applied: %+v", ent)
	}

	c.Learn(keyspace.NewRange(0, 60), "a", 7, nil) // genuine newer incarnation
	if _, ok := c.Lookup(80); ok {
		t.Fatal("key outside the newer incarnation's range still cached")
	}
	ent, _ = c.Lookup(50)
	if ent.Epoch != 7 {
		t.Fatalf("entry epoch = %d, want 7", ent.Epoch)
	}
}
