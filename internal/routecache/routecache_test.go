package routecache

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/keyspace"
	"repro/internal/transport"
)

func TestLearnPrunesOverlappingStaleEntries(t *testing.T) {
	c := New(8)
	c.Learn(keyspace.NewRange(0, 100), "a", nil)
	// Ranges partition the key space, so a fresher overlapping fact proves
	// the older entry stale: learning (0,50] -> b must evict (0,100] -> a.
	c.Learn(keyspace.NewRange(0, 50), "b", nil)
	ent, ok := c.Lookup(40)
	if !ok || ent.Addr != "b" {
		t.Fatalf("Lookup(40) = %+v, %v; want fresh entry b", ent, ok)
	}
	if _, ok := c.Lookup(80); ok {
		t.Fatal("stale overlapping entry a survived a fresher Learn")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1 (the pruned stale entry)", st.Evictions)
	}
	// Disjoint facts coexist.
	c.Learn(keyspace.NewRange(50, 100), "a", nil)
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2 disjoint entries", c.Len())
	}
}

func TestLearnReplacesPerAddr(t *testing.T) {
	c := New(8)
	c.Learn(keyspace.NewRange(0, 100), "a", []transport.Addr{"r1"})
	c.Learn(keyspace.NewRange(0, 60), "a", nil) // split shrank a's range
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (one entry per peer)", c.Len())
	}
	if _, ok := c.Lookup(80); ok {
		t.Fatal("Lookup(80) hit after a's range shrank to (0,60]")
	}
	ent, ok := c.Lookup(50)
	if !ok || ent.Addr != "a" {
		t.Fatalf("Lookup(50) = %+v, %v", ent, ok)
	}
	// nil replicas on relearn kept the previously learned candidates.
	if len(ent.Replicas) != 1 || ent.Replicas[0] != "r1" {
		t.Fatalf("Replicas = %v, want [r1] preserved", ent.Replicas)
	}
}

func TestEvictionIsLRUAndCounted(t *testing.T) {
	c := New(2)
	c.Learn(keyspace.NewRange(0, 10), "a", nil)
	c.Learn(keyspace.NewRange(10, 20), "b", nil)
	c.Lookup(5) // touch a: b becomes the LRU victim
	c.Learn(keyspace.NewRange(20, 30), "c", nil)
	if _, ok := c.Lookup(15); ok {
		t.Fatal("entry b survived past capacity")
	}
	if _, ok := c.Lookup(5); !ok {
		t.Fatal("recently used entry a was evicted")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Size != 2 {
		t.Fatalf("Stats = %+v, want 1 eviction at size 2", st)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(8)
	c.Learn(keyspace.NewRange(0, 100), "a", nil)
	c.Invalidate("a")
	c.Invalidate("unknown") // no-op, not counted
	if _, ok := c.Lookup(50); ok {
		t.Fatal("Lookup hit after Invalidate")
	}
	st := c.Stats()
	if st.Invalidations != 1 {
		t.Fatalf("Invalidations = %d, want 1", st.Invalidations)
	}
	if st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("Hits/Misses = %d/%d, want 0/1", st.Hits, st.Misses)
	}
}

func TestClearKeepsCounters(t *testing.T) {
	c := New(8)
	c.Learn(keyspace.NewRange(0, 100), "a", nil)
	c.Lookup(50)
	c.Clear()
	if c.Len() != 0 {
		t.Fatalf("Len = %d after Clear", c.Len())
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("Clear dropped counters: %+v", st)
	}
}

func TestWrappedRangeLookup(t *testing.T) {
	c := New(8)
	c.Learn(keyspace.NewRange(keyspace.MaxKey-10, 10), "wrap", nil)
	for _, k := range []keyspace.Key{keyspace.MaxKey, 0, 5} {
		if ent, ok := c.Lookup(k); !ok || ent.Addr != "wrap" {
			t.Fatalf("Lookup(%d) = %+v, %v", k, ent, ok)
		}
	}
	if _, ok := c.Lookup(500); ok {
		t.Fatal("Lookup(500) hit a wrapped range that excludes it")
	}
}

func TestConcurrentUse(t *testing.T) {
	c := New(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				lo := keyspace.Key((g*200 + i) % 1000)
				addr := transport.Addr(fmt.Sprintf("p%d", (g+i)%16))
				c.Learn(keyspace.NewRange(lo, lo+50), addr, nil)
				c.Lookup(lo + 25)
				if i%17 == 0 {
					c.Invalidate(addr)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 32 {
		t.Fatalf("Len = %d exceeds capacity", c.Len())
	}
	c.Stats()
	c.Entries()
}
