package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/datastore"
	"repro/internal/keyspace"
	"repro/internal/metrics"
	"repro/internal/replication"
	"repro/internal/ring"
	"repro/internal/router"
	"repro/internal/transport"
	"repro/internal/transport/tcp"
	"repro/internal/workload"
)

// TailFigureTitle prefixes the open-loop tail-latency figure so
// cmd/benchcheck can find it in a benchmark report.
const TailFigureTitle = "open-loop: client query latency vs arrival rate (TCP loopback)"

// TailLatencyFigure measures what a user of the smart client tier actually
// experiences: range-query latency percentiles (p50/p99/p999, in real
// milliseconds) under a fixed open-loop Poisson arrival rate, against a real
// multi-process-shaped cluster — every peer its own transport on its own
// loopback socket, the client a pure dial-side endpoint.
//
// Two arms per arrival rate:
//
//   - "warm": the client's route cache is primed, so a query validates at
//     the remembered owner in one round trip before its scan.
//   - "cold": the cache is cleared before every operation, so each query
//     pays the full greedy descent from a seed peer first.
//
// Arrivals are open-loop: each query is dispatched at its scheduled Poisson
// instant and its latency measured FROM that instant, so a slow cluster
// queues (visible in p99/p999) instead of slowing the arrival process.
// The warm/cold gap at p50 is the client-side value of cached routing state;
// the p999 line is what churny tails will move first.
func TailLatencyFigure(rates []float64, peers, items int, perArm time.Duration, seed int64) (*metrics.Figure, error) {
	if len(rates) == 0 {
		rates = []float64{100, 250}
	}
	if peers <= 0 {
		peers = 6
	}
	if items <= 0 {
		items = 58
	}
	if perArm <= 0 {
		perArm = 2 * time.Second
	}

	cl, err := bootTailCluster(peers, items)
	if err != nil {
		return nil, err
	}
	defer cl.close()

	fig := &metrics.Figure{
		Title:  TailFigureTitle,
		XLabel: "arrivals/s",
		YLabel: "query latency (ms)",
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	for _, rate := range rates {
		x := fmt.Sprintf("%.0f", rate)
		fig.XOrder = append(fig.XOrder, x)
		warm, cold, err := cl.runRate(rate, perArm, items, seed)
		if err != nil {
			return nil, fmt.Errorf("bench: tail point %s: %w", x, err)
		}
		for _, arm := range []struct {
			name string
			s    metrics.Summary
		}{{"warm", warm}, {"cold", cold}} {
			fig.AddPoint(arm.name+" p50", x, ms(arm.s.P50))
			fig.AddPoint(arm.name+" p95", x, ms(arm.s.P95))
			fig.AddPoint(arm.name+" p99", x, ms(arm.s.P99))
			fig.AddPoint(arm.name+" p999", x, ms(arm.s.P999))
		}
	}
	return fig, nil
}

// tailCluster is the booted TCP-loopback cluster of one tail run.
type tailCluster struct {
	nodes      []*core.Standalone
	transports []*tcp.Transport
	seedAddr   transport.Addr
}

func (c *tailCluster) close() {
	for _, n := range c.nodes {
		n.Close()
	}
	for _, tr := range c.transports {
		tr.Close()
	}
}

// tailPeerConfig tunes the peer stack for loopback TCP latencies.
func tailPeerConfig() core.Config {
	return core.Config{
		Ring: ring.Config{
			SuccListLen: 4,
			StabPeriod:  20 * time.Millisecond,
			PingPeriod:  20 * time.Millisecond,
			CallTimeout: 500 * time.Millisecond,
			AckTimeout:  5 * time.Second,
		},
		Store: datastore.Config{
			StorageFactor:      5,
			CheckPeriod:        25 * time.Millisecond,
			CallTimeout:        500 * time.Millisecond,
			MaintenanceTimeout: 5 * time.Second,
		},
		Replication: replication.Config{
			Factor:        3,
			RefreshPeriod: 50 * time.Millisecond,
			CallTimeout:   500 * time.Millisecond,
		},
		Router: router.Config{
			RefreshPeriod: 50 * time.Millisecond,
			CallTimeout:   500 * time.Millisecond,
			MaxHops:       64,
		},
		QueryAttemptTimeout: 3 * time.Second,
		MaxQueryAttempts:    30,
		Seed:                11,
	}
}

// bootTailCluster starts `peers` standalone stacks over loopback TCP,
// inserts `items` keys (spacing 1000) to force splits, and waits until every
// peer serves a range.
func bootTailCluster(peers, items int) (*tailCluster, error) {
	cl := &tailCluster{}
	cfg := tailPeerConfig()
	start := func() (*core.Standalone, error) {
		tr := tcp.New(tcp.Config{DialTimeout: time.Second, CallTimeout: 2 * time.Second})
		probe := tcp.New(tcp.Config{})
		bound, err := probe.Listen("127.0.0.1:0", func(transport.Addr, string, any) (any, error) { return nil, nil })
		if err != nil {
			tr.Close()
			return nil, err
		}
		probe.Close()
		s, err := core.NewStandalone(tr, bound, cfg)
		if err != nil {
			tr.Close()
			return nil, err
		}
		cl.nodes = append(cl.nodes, s)
		cl.transports = append(cl.transports, tr)
		return s, nil
	}

	boot, err := start()
	if err != nil {
		return nil, err
	}
	if err := boot.Bootstrap(); err != nil {
		cl.close()
		return nil, err
	}
	cl.seedAddr = boot.Peer.Addr
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i := 1; i < peers; i++ {
		n, err := start()
		if err != nil {
			cl.close()
			return nil, err
		}
		if err := n.JoinAsFree(ctx, cl.seedAddr); err != nil {
			cl.close()
			return nil, err
		}
	}
	for i := 1; i <= items; i++ {
		it := datastore.Item{Key: keyspace.Key(i * 1000), Payload: fmt.Sprintf("bench-%d", i)}
		if err := boot.CurrentPeer().InsertItem(ctx, it); err != nil {
			cl.close()
			return nil, fmt.Errorf("bench: tail seed insert %d: %w", i, err)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		serving := 0
		for _, n := range cl.nodes {
			if _, ok := n.CurrentPeer().Store.Range(); ok && n.CurrentPeer().Ring.State() == ring.StateJoined {
				serving++
			}
		}
		if serving == len(cl.nodes) {
			return cl, nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	cl.close()
	return nil, fmt.Errorf("bench: tail cluster never settled with all %d peers serving", peers)
}

// runRate measures one arrival-rate point: warm and cold arms INTERLEAVED as
// alternating time slices over one shared client, so a CPU noise burst on the
// host lands on both arms about equally instead of poisoning whichever arm it
// happened to coincide with. Each arm accumulates perArm of measured time in
// total. Cold slices clear the client's route cache before every operation
// (full descent per query); warm slices re-prime the cache with a few
// unrecorded queries first, then measure cache-validated operations.
func (c *tailCluster) runRate(rate float64, perArm time.Duration, items int, seed int64) (warm, cold metrics.Summary, err error) {
	tr := tcp.New(tcp.Config{DialTimeout: time.Second, CallTimeout: 2 * time.Second})
	defer tr.Close()
	cli, err := client.New(tr, client.Config{
		Seeds:     []transport.Addr{c.seedAddr},
		ID:        "bench-tail",
		OpTimeout: 5 * time.Second,
	})
	if err != nil {
		return metrics.Summary{}, metrics.Summary{}, err
	}

	ctx := context.Background()
	spans := workload.NewSpanGen(seed, 1000, uint64(items)*1000, 900)
	arrive := workload.NewPoisson(seed+1, rate)
	warmRec := metrics.NewRecorder("tail-warm")
	coldRec := metrics.NewRecorder("tail-cold")

	const slicesPerArm = 4
	sliceDur := perArm / slicesPerArm
	for s := 0; s < 2*slicesPerArm; s++ {
		coldSlice := s%2 == 1
		rec := warmRec
		if coldSlice {
			rec = coldRec
		} else {
			// Re-prime the route cache: the preceding cold slice left it in
			// whatever state its last descent produced.
			for q := 0; q < 5; q++ {
				if _, err := cli.Query(ctx, spans.Next()); err != nil {
					return metrics.Summary{}, metrics.Summary{}, fmt.Errorf("warm prime: %w", err)
				}
			}
		}
		if err := c.driveSlice(ctx, cli, coldSlice, sliceDur, arrive, spans, rec); err != nil {
			return metrics.Summary{}, metrics.Summary{}, err
		}
	}
	warm, cold = warmRec.Summarize(), coldRec.Summarize()
	if warm.Count == 0 || cold.Count == 0 {
		return warm, cold, fmt.Errorf("bench: an arm recorded no successful queries (warm %d, cold %d)", warm.Count, cold.Count)
	}
	return warm, cold, nil
}

// driveSlice runs one open-loop slice: queries dispatched at their scheduled
// Poisson arrival instants, latency measured FROM those instants. Queries are
// narrow (under the key spacing), so the arms isolate the owner-lookup
// strategy rather than the scan width.
func (c *tailCluster) driveSlice(ctx context.Context, cli *client.Client, cold bool, d time.Duration, arrive *workload.Poisson, spans *workload.SpanGen, rec *metrics.Recorder) error {
	done := make(chan error, 4096)
	inflight := 0
	end := time.Now().Add(d)
	next := time.Now()
	// Dispatch with a sleep-then-spin: time.Sleep overshoots by up to a
	// millisecond under load, and that overshoot lands as a common additive
	// constant on both arms, compressing the warm/cold ratio the figure
	// exists to show. Spinning the last fraction of a millisecond keeps the
	// dispatch instant honest for ~7% of one core at the benched rates.
	const spinSlack = 500 * time.Microsecond
	for {
		next = next.Add(arrive.NextDelay())
		if next.After(end) {
			break
		}
		if wait := time.Until(next); wait > spinSlack {
			time.Sleep(wait - spinSlack)
		}
		for time.Now().Before(next) {
		}
		if cold {
			cli.Cache().Clear()
		}
		scheduled := next
		iv := spans.Next()
		inflight++
		go func() {
			_, err := cli.Query(ctx, iv)
			if err == nil {
				rec.Observe(time.Since(scheduled))
			}
			done <- err
		}()
	}
	var firstErr error
	for ; inflight > 0; inflight-- {
		if err := <-done; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
