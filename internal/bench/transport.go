package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/transport"
	"repro/internal/transport/tcp"
)

// TransportFigure measures the multiplexed TCP transport directly: call
// throughput over one loopback connection as the number of in-flight calls
// grows. It is the benchrunner twin of BenchmarkPipelinedCalls in
// transport/tcp — the CI bench-smoke job runs it so the perf trajectory of
// the transport lands in BENCH_pr.json next to the paper figures. The
// handler holds each call for handlerDelay, standing in for protocol work;
// the sequential baseline (depth 1) pays one round trip plus that delay per
// call, while deeper pipelines overlap them on the same connection.
func TransportFigure(depths []int, callsPerDepth int, handlerDelay time.Duration) (*metrics.Figure, error) {
	fig := &metrics.Figure{
		Title:  "transport: pipelined call throughput vs in-flight depth (one TCP connection)",
		XLabel: "depth",
		YLabel: "calls/sec",
	}

	handler := func(_ transport.Addr, _ string, p any) (any, error) {
		time.Sleep(handlerDelay)
		return p, nil
	}
	tr := tcp.New(tcp.Config{DialTimeout: 2 * time.Second, CallTimeout: 30 * time.Second, ConnsPerPeer: 1})
	defer tr.Close()
	src, err := tr.Listen("127.0.0.1:0", handler)
	if err != nil {
		return nil, err
	}
	dst, err := tr.Listen("127.0.0.1:0", handler)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	if _, err := tr.Call(ctx, src, dst, "bench.echo", int64(0)); err != nil {
		return nil, fmt.Errorf("bench: transport warm-up call: %w", err)
	}

	for _, depth := range depths {
		start := time.Now()
		sem := make(chan struct{}, depth)
		var wg sync.WaitGroup
		var mu sync.Mutex
		var callErr error
		for i := 0; i < callsPerDepth; i++ {
			sem <- struct{}{}
			wg.Add(1)
			p := tr.CallAsync(ctx, src, dst, "bench.echo", int64(i))
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				if _, err := p.Result(); err != nil {
					mu.Lock()
					if callErr == nil {
						callErr = err
					}
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		if callErr != nil {
			return nil, fmt.Errorf("bench: transport call at depth %d: %w", depth, callErr)
		}
		x := fmt.Sprintf("%d", depth)
		fig.XOrder = append(fig.XOrder, x)
		fig.AddPoint("pipelined", x, float64(callsPerDepth)/time.Since(start).Seconds())
	}
	return fig, nil
}
