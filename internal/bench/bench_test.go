package bench

import (
	"strings"
	"testing"
	"time"
)

// quickParams shrinks every figure run so the harness is exercised in CI
// time; the real sweeps run through cmd/benchrunner and the root benchmarks.
func quickParams() Params {
	return Params{
		Scale: 2 * time.Millisecond,
		RunS:  40,
		Seed:  7,
	}
}

func requireSeries(t *testing.T, fig interface{ Render() string }, series ...string) {
	t.Helper()
	out := fig.Render()
	for _, s := range series {
		if !strings.Contains(out, s) {
			t.Errorf("figure missing series %q:\n%s", s, out)
		}
	}
}

func TestFig19Quick(t *testing.T) {
	fig, err := Fig19(quickParams(), []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	requireSeries(t, fig, "insertSuccessor", "naive insertSuccessor")
	// The PEPPER insert must cost at least as much as the naive one.
	for _, x := range fig.XOrder {
		var pepper, naive float64
		for _, s := range fig.Series {
			if s.Label == "insertSuccessor" {
				pepper = s.Points[x]
			}
			if s.Label == "naive insertSuccessor" {
				naive = s.Points[x]
			}
		}
		if pepper > 0 && naive > 0 && pepper < naive/4 {
			t.Errorf("x=%s: PEPPER insert (%f) implausibly cheaper than naive (%f)", x, pepper, naive)
		}
	}
	t.Log("\n" + fig.Render())
}

func TestFig20Quick(t *testing.T) {
	fig, err := Fig20(quickParams(), []float64{2, 6}, true)
	if err != nil {
		t.Fatal(err)
	}
	requireSeries(t, fig, "insertSuccessor", "naive insertSuccessor", "w/o proactive")
	t.Log("\n" + fig.Render())
}

func TestFig21Quick(t *testing.T) {
	fig, err := Fig21(quickParams(), 6, 120)
	if err != nil {
		t.Fatal(err)
	}
	requireSeries(t, fig, "search using scanRange", "naive application search")
	t.Log("\n" + fig.Render())
}

func TestFig22Quick(t *testing.T) {
	fig, err := Fig22(quickParams(), []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	requireSeries(t, fig, "leaveRing", "leaveRing+merge", "naive leave")
	t.Log("\n" + fig.Render())
}

func TestFig23Quick(t *testing.T) {
	fig, err := Fig23(quickParams(), []float64{0, 10})
	if err != nil {
		t.Fatal(err)
	}
	requireSeries(t, fig, "insertSuccessor")
	t.Log("\n" + fig.Render())
}

func TestReadPathFigureQuick(t *testing.T) {
	fig, err := ReadPathFigure(quickParams(), []int{6, 12, 20}, 24)
	if err != nil {
		t.Fatal(err)
	}
	requireSeries(t, fig, "cold descent", "cached entry")
	// The cache's whole point: cached-entry queries must beat the cold
	// descent, decisively at the larger size.
	largest := fig.XOrder[len(fig.XOrder)-1]
	var cold, cached float64
	for _, s := range fig.Series {
		if s.Label == "cold descent" {
			cold = s.Points[largest]
		}
		if s.Label == "cached entry" {
			cached = s.Points[largest]
		}
	}
	if cold == 0 || cached == 0 {
		t.Fatalf("missing points at size %s:\n%s", largest, fig.Render())
	}
	if cold < 1.5*cached {
		t.Errorf("cached entry not decisively faster at size %s: cold %.6f vs cached %.6f paper-s\n%s",
			largest, cold, cached, fig.Render())
	}
	t.Log("\n" + fig.Render())
}
