package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/keyspace"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// ReadPathFigureTitle prefixes the read-path figure so cmd/benchcheck can
// find it in a benchmark report.
const ReadPathFigureTitle = "read path: range query latency vs cluster size"

// ReadPathFigure measures the read path's scale levers: mean range-query
// latency against cluster size for three arms.
//
//   - "cold descent": the origin's owner-lookup cache is cleared before
//     every query, so each one pays the full O(log n) router descent before
//     the scan.
//   - "cached entry": the cache is warm, so the scan goes straight to the
//     remembered owner and validates there — one round trip replaces the
//     descent, and the gap widens with cluster size.
//   - "replica fallback": the primary owner of the queried range is
//     fail-stopped (with failure detection slowed so revival cannot race the
//     measurement) and queries are served through the replica-read fallback.
//
// Queries are narrow (about one peer's holding) so the owner lookup
// dominates and the arms isolate the lookup strategy rather than the scan
// width. All queries run unjournaled, like operational reads.
func ReadPathFigure(p Params, sizes []int, queriesPer int) (*metrics.Figure, error) {
	p = p.withDefaults()
	if len(sizes) == 0 {
		sizes = []int{6, 12, 20, 28}
	}
	if queriesPer <= 0 {
		queriesPer = 30
	}
	fig := &metrics.Figure{
		Title:  ReadPathFigureTitle,
		XLabel: "serving peers",
		YLabel: "range query latency (paper seconds)",
	}
	ctx := context.Background()
	for _, n := range sizes {
		x := fmt.Sprint(n)
		fig.XOrder = append(fig.XOrder, x)
		cold, cached, err := readPathColdCached(ctx, p, n, queriesPer)
		if err != nil {
			return nil, err
		}
		fig.AddPoint("cold descent", x, p.paperSeconds(cold))
		fig.AddPoint("cached entry", x, p.paperSeconds(cached))
		replica, err := readPathReplica(ctx, p, n, queriesPer)
		if err != nil {
			return nil, err
		}
		if replica > 0 {
			fig.AddPoint("replica fallback", x, p.paperSeconds(replica))
		}
	}
	return fig, nil
}

// readPathBoot boots a cluster grown to n serving peers and returns it with
// the keys inserted. Unlike the protocol-overhead figures, this one measures
// request latency, so the simulated network gets LAN-scale propagation
// delays that dominate scheduler noise: what the arms then compare is the
// number of round trips each lookup strategy pays, which is the quantity the
// cache actually changes.
func readPathBoot(ctx context.Context, p Params, n int, mutate func(*core.Config)) (*run, error) {
	r := &run{params: p, keys: workload.NewSequentialKeys(1000, 1000)}
	cfg := p.config()
	cfg.Net.MinLatency = p.scaled(0.05)
	cfg.Net.MaxLatency = p.scaled(0.1)
	if mutate != nil {
		mutate(&cfg)
	}
	r.cluster = core.NewCluster(cfg)
	if _, err := r.cluster.AddFirstPeer(); err != nil {
		r.cluster.Shutdown()
		return nil, err
	}
	if err := r.cluster.AddFreePeers(p.FreePeers); err != nil {
		r.cluster.Shutdown()
		return nil, err
	}
	if err := r.growTo(ctx, n); err != nil {
		r.cluster.Shutdown()
		return nil, err
	}
	// Quiesce: let stabilization, routing and replication settle.
	time.Sleep(p.scaled(3 * p.StabPeriodS))
	return r, nil
}

// queryIntervals derives queriesPer narrow intervals spread over the
// inserted keys (spacing 1000, from workload.SequentialKeys). The width is
// below the key spacing, so a query usually stays within one peer: the arms
// then measure the owner-lookup strategy, not the scan width.
func (r *run) queryIntervals(queriesPer int) []keyspace.Interval {
	out := make([]keyspace.Interval, 0, queriesPer)
	for q := 0; q < queriesPer; q++ {
		base := r.inserted[(q*7)%len(r.inserted)]
		out = append(out, keyspace.ClosedInterval(base, base+900))
	}
	return out
}

// readPathColdCached measures the cold-descent and cached-entry arms on one
// cluster: the same queries from the same origin, first with the origin's
// owner-lookup cache cleared before every query, then with it warm.
func readPathColdCached(ctx context.Context, p Params, n, queriesPer int) (cold, cached time.Duration, err error) {
	r, err := readPathBoot(ctx, p, n, nil)
	if err != nil {
		return 0, 0, err
	}
	defer r.cluster.Shutdown()
	lives := r.cluster.LivePeers()
	origin := lives[0]
	ivs := r.queryIntervals(queriesPer)

	coldRec := metrics.NewRecorder("cold")
	for _, iv := range ivs {
		origin.Router.Cache().Clear()
		start := time.Now()
		if _, _, err := origin.RangeQueryUnjournaled(ctx, iv); err != nil {
			continue // transient; the mean is over successful queries
		}
		coldRec.Observe(time.Since(start))
	}

	// Warm pass (unmeasured), then the measured cached pass over the same
	// intervals.
	for _, iv := range ivs {
		_, _, _ = origin.RangeQueryUnjournaled(ctx, iv)
	}
	cachedRec := metrics.NewRecorder("cached")
	for _, iv := range ivs {
		start := time.Now()
		if _, _, err := origin.RangeQueryUnjournaled(ctx, iv); err != nil {
			continue
		}
		cachedRec.Observe(time.Since(start))
	}
	// Medians: query latency has a heavy scheduler-noise tail that the mean
	// of a small sample inherits; the median is the honest central figure.
	cs, ws := coldRec.Summarize(), cachedRec.Summarize()
	if cs.Count == 0 || ws.Count == 0 {
		return 0, 0, fmt.Errorf("bench: read path arms recorded no successful queries (cold %d, cached %d)", cs.Count, ws.Count)
	}
	return cs.P50, ws.P50, nil
}

// readPathReplica measures the replica-fallback arm on a dedicated cluster:
// failure detection is slowed so the killed primary is not revived during
// the window, the cache is warmed (it learns the victim's replica
// candidates), the victim is killed, and the same queries over its range are
// served through replica reads.
func readPathReplica(ctx context.Context, p Params, n, queriesPer int) (time.Duration, error) {
	r, err := readPathBoot(ctx, p, n, func(cfg *core.Config) {
		cfg.Ring.PingPeriod = p.scaled(1000 * p.StabPeriodS) // effectively never during the run
	})
	if err != nil {
		return 0, err
	}
	defer r.cluster.Shutdown()

	lives := r.cluster.LivePeers()
	origin := lives[0]
	var victim *core.Peer
	maxKey := r.inserted[len(r.inserted)-1]
	for _, cand := range lives[1:] {
		if rng, ok := cand.Store.Range(); ok && !rng.IsFull() && rng.Lo >= 1000 && rng.Hi < maxKey {
			victim = cand
			break
		}
	}
	if victim == nil {
		return 0, nil // layout offered no mid-interval victim; skip the arm
	}
	vr, _ := victim.Store.Range()

	// Warm the origin's cache over the victim's region, then kill it.
	span := keyspace.Key(uint64(p.StorageFactor) * 1000)
	warmIv := keyspace.ClosedInterval(vr.Lo+1, vr.Hi)
	if _, _, err := origin.RangeQueryUnjournaled(ctx, warmIv); err != nil {
		return 0, nil
	}
	r.cluster.KillPeer(victim.Addr)

	rec := metrics.NewRecorder("replica")
	for q := 0; q < queriesPer; q++ {
		lo := vr.Lo + 1 + keyspace.Key(uint64(q)%1000)
		iv := keyspace.ClosedInterval(lo, lo+span)
		if iv.Ub > vr.Hi {
			iv.Ub = vr.Hi
		}
		if !iv.Valid() {
			continue
		}
		start := time.Now()
		if _, _, err := origin.RangeQueryUnjournaled(ctx, iv); err != nil {
			continue
		}
		rec.Observe(time.Since(start))
	}
	if origin.ReplicaReads.Load() == 0 {
		return 0, nil // fallback never fired (e.g. revival won); don't mislabel the series
	}
	s := rec.Summarize()
	if s.Count == 0 {
		return 0, nil
	}
	return s.P50, nil
}
