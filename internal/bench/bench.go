// Package bench regenerates every figure of the paper's evaluation
// (Section 6). The paper ran 30 peers on a LAN cluster with second-scale
// parameters; here the same workloads run in-process with every period
// scaled by Params.Scale (the real duration of one "paper second"), so the
// reported series are comparable in shape: who wins, by what factor, and how
// curves respond to the swept parameter. EXPERIMENTS.md records the
// paper-vs-measured comparison.
//
//	Figure 19 — insertSucc time vs successor list length (PEPPER vs naive)
//	Figure 20 — insertSucc time vs ring stabilization period (PEPPER vs
//	            naive, plus a no-proactive-contact ablation)
//	Figure 21 — range search time vs hops (scanRange vs naive application scan)
//	Figure 22 — leave/merge time vs successor list length (PEPPER leave,
//	            leave+merge, naive leave)
//	Figure 23 — insertSucc time vs peer failure rate (failure mode)
package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/datastore"
	"repro/internal/keyspace"
	"repro/internal/metrics"
	"repro/internal/replication"
	"repro/internal/ring"
	"repro/internal/router"
	"repro/internal/simnet"
	"repro/internal/workload"
)

// Params configures one experiment run; zero fields take the paper defaults
// (Section 6.1).
type Params struct {
	// Scale is the real duration of one paper second (default 5ms).
	Scale time.Duration
	// SuccListLen is the ring successor list length (paper default 4).
	SuccListLen int
	// StabPeriodS is the ring stabilization period in paper seconds (4).
	StabPeriodS float64
	// StorageFactor is the Data Store sf (5).
	StorageFactor int
	// ReplicationFactor is the Replication Manager k (6).
	ReplicationFactor int
	// ItemsPerS is the item insertion rate per paper second (2).
	ItemsPerS float64
	// RunS is the measured run length in paper seconds.
	RunS float64
	// FreePeers is the size of the free pool backing splits.
	FreePeers int
	// Naive switches the ring (insertSucc/leave) and replication to the
	// Section 6.2 baselines.
	Naive bool
	// NoProactive disables the proactive predecessor contact (ablation).
	NoProactive bool
	// FailuresPer100S is the failure-mode kill rate (Section 6.3.4).
	FailuresPer100S float64
	// Seed drives the workload generators.
	Seed int64
}

func (p Params) withDefaults() Params {
	if p.Scale <= 0 {
		p.Scale = 5 * time.Millisecond
	}
	if p.SuccListLen <= 0 {
		p.SuccListLen = 4
	}
	if p.StabPeriodS <= 0 {
		p.StabPeriodS = 4
	}
	if p.StorageFactor <= 0 {
		p.StorageFactor = 5
	}
	if p.ReplicationFactor <= 0 {
		p.ReplicationFactor = 6
	}
	if p.ItemsPerS <= 0 {
		p.ItemsPerS = 2
	}
	if p.RunS <= 0 {
		p.RunS = 90
	}
	if p.FreePeers <= 0 {
		p.FreePeers = 48
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// scaled converts paper seconds into real time under p.Scale.
func (p Params) scaled(paperSeconds float64) time.Duration {
	return time.Duration(paperSeconds * float64(p.Scale))
}

// paperSeconds converts a measured real duration into paper seconds.
func (p Params) paperSeconds(d time.Duration) float64 {
	return float64(d) / float64(p.Scale)
}

// run is a booted cluster plus its recorders.
type run struct {
	params   Params
	cluster  *core.Cluster
	insSucc  *metrics.Recorder
	leave    *metrics.Recorder
	merge    *metrics.Recorder
	keys     *workload.SequentialKeys
	inserted []keyspace.Key
}

// config derives the full component configuration from the parameters.
func (p Params) config() core.Config {
	stab := p.scaled(p.StabPeriodS)
	// LAN latency in the paper's cluster is sub-millisecond against 4 s
	// stabilization periods; keep the same three-orders-of-magnitude gap.
	lat := p.Scale / 200
	if lat <= 0 {
		lat = 10 * time.Microsecond
	}
	return core.Config{
		Net: simnet.Config{
			MinLatency:    lat / 2,
			MaxLatency:    lat,
			DeadCallDelay: stab / 4,
			Seed:          p.Seed,
		},
		Ring: ring.Config{
			SuccListLen: p.SuccListLen,
			StabPeriod:  stab,
			PingPeriod:  stab,
			CallTimeout: 4 * stab,
			AckTimeout:  100 * stab,
			Naive:       p.Naive,
			NoProactive: p.NoProactive,
		},
		Store: datastore.Config{
			StorageFactor:      p.StorageFactor,
			CheckPeriod:        stab / 2,
			CallTimeout:        4 * stab,
			MaintenanceTimeout: 100 * stab,
		},
		Replication: replication.Config{
			Factor:        p.ReplicationFactor,
			RefreshPeriod: stab,
			CallTimeout:   4 * stab,
			Naive:         p.Naive,
		},
		Router: router.Config{
			RefreshPeriod: 2 * stab,
			CallTimeout:   4 * stab,
			MaxHops:       256,
		},
		QueryAttemptTimeout: 40 * stab,
		MaxQueryAttempts:    40,
		Seed:                p.Seed,
	}
}

// boot starts a cluster and hooks the recorders into every peer's Data Store.
func boot(p Params) (*run, error) {
	r := &run{
		params:  p,
		insSucc: metrics.NewRecorder("insertSucc"),
		leave:   metrics.NewRecorder("leaveRing"),
		merge:   metrics.NewRecorder("leaveRing+merge"),
		keys:    workload.NewSequentialKeys(1000, 1000),
	}
	cfg := p.config()
	cfg.Store.InsertSuccRecorder = r.insSucc
	cfg.Store.LeaveRecorder = r.leave
	cfg.Store.MergeRecorder = r.merge
	r.cluster = core.NewCluster(cfg)
	if _, err := r.cluster.AddFirstPeer(); err != nil {
		return nil, err
	}
	if err := r.cluster.AddFreePeers(p.FreePeers); err != nil {
		return nil, err
	}
	return r, nil
}

// insertNext inserts the next sequential item, remembering its key.
func (r *run) insertNext(ctx context.Context) error {
	k := r.keys.Next()
	if err := r.cluster.InsertItem(ctx, datastore.Item{Key: k, Payload: "bench"}); err != nil {
		return err
	}
	r.inserted = append(r.inserted, k)
	return nil
}

// growTo inserts items until the ring has at least n serving peers.
func (r *run) growTo(ctx context.Context, n int) error {
	for i := 0; i < 100000; i++ {
		if len(r.cluster.LivePeers()) >= n {
			return nil
		}
		if err := r.insertNext(ctx); err != nil {
			return err
		}
	}
	return fmt.Errorf("bench: ring never reached %d peers", n)
}

// failFreeChurn runs the fail-free mode of Section 6.1 — items inserted at
// ItemsPerS (driving splits, hence insertSucc operations) — for RunS paper
// seconds.
func (r *run) failFreeChurn(ctx context.Context) error {
	pacer := workload.NewPacer(r.params.ItemsPerS, r.params.Scale)
	deadline := time.NewTimer(r.params.scaled(r.params.RunS))
	defer deadline.Stop()
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		<-deadline.C
		cancel()
	}()
	pacer.Run(runCtx, func() bool {
		_ = r.insertNext(ctx) // transient routing failures are fine
		return true
	})
	return nil
}

// Fig19 measures insertSucc time against the successor list length
// (Section 6.3.1, Figure 19): the PEPPER insertSucc must propagate the new
// pointer to as many predecessors as the list is long, while the naive
// insertSucc contacts only the successor.
func Fig19(p Params, lengths []int) (*metrics.Figure, error) {
	p = p.withDefaults()
	if len(lengths) == 0 {
		lengths = []int{2, 3, 4, 5, 6, 7, 8}
	}
	fig := &metrics.Figure{
		Title:  "Figure 19: overhead of insertSucc vs successor list length",
		XLabel: "succ list length",
		YLabel: "insertSucc time (paper seconds)",
	}
	ctx := context.Background()
	for _, d := range lengths {
		fig.XOrder = append(fig.XOrder, fmt.Sprint(d))
		for _, naive := range []bool{false, true} {
			pp := p
			pp.SuccListLen = d
			pp.Naive = naive
			r, err := boot(pp)
			if err != nil {
				return nil, err
			}
			if err := r.growTo(ctx, 12); err != nil {
				r.cluster.Shutdown()
				return nil, err
			}
			r.insSucc.Reset()
			if err := r.failFreeChurn(ctx); err != nil {
				r.cluster.Shutdown()
				return nil, err
			}
			s := r.insSucc.Summarize()
			r.cluster.Shutdown()
			label := "insertSuccessor"
			if naive {
				label = "naive insertSuccessor"
			}
			fig.AddPoint(label, fmt.Sprint(d), pp.paperSeconds(s.Mean))
		}
	}
	return fig, nil
}

// Fig20 measures insertSucc time against the ring stabilization period
// (Section 6.3.1, Figure 20). The proactive predecessor contact largely
// decouples PEPPER's latency from the period; the NoProactive ablation shows
// what the optimization buys.
func Fig20(p Params, periods []float64, withAblation bool) (*metrics.Figure, error) {
	p = p.withDefaults()
	if len(periods) == 0 {
		periods = []float64{2, 3, 4, 5, 6, 7, 8}
	}
	fig := &metrics.Figure{
		Title:  "Figure 20: overhead of insertSucc vs ring stabilization period",
		XLabel: "stabilization period (paper s)",
		YLabel: "insertSucc time (paper seconds)",
	}
	ctx := context.Background()
	type variant struct {
		label       string
		naive       bool
		noProactive bool
	}
	variants := []variant{
		{label: "insertSuccessor"},
		{label: "naive insertSuccessor", naive: true},
	}
	if withAblation {
		variants = append(variants, variant{label: "insertSuccessor w/o proactive", noProactive: true})
	}
	for _, period := range periods {
		x := fmt.Sprint(period)
		fig.XOrder = append(fig.XOrder, x)
		for _, v := range variants {
			pp := p
			pp.StabPeriodS = period
			pp.Naive = v.naive
			pp.NoProactive = v.noProactive
			r, err := boot(pp)
			if err != nil {
				return nil, err
			}
			if err := r.growTo(ctx, 12); err != nil {
				r.cluster.Shutdown()
				return nil, err
			}
			r.insSucc.Reset()
			if err := r.failFreeChurn(ctx); err != nil {
				r.cluster.Shutdown()
				return nil, err
			}
			s := r.insSucc.Summarize()
			r.cluster.Shutdown()
			fig.AddPoint(v.label, x, pp.paperSeconds(s.Mean))
		}
	}
	return fig, nil
}

// Fig21 measures range search time against the number of ring hops
// (Section 6.3.2, Figure 21), isolating the scan by starting the clock after
// the first peer is found — for scanRange and for the naive application
// scan. Queries of random span are issued from random peers and bucketed by
// the hop count they actually took, like the paper.
func Fig21(p Params, maxHops, queries int) (*metrics.Figure, error) {
	p = p.withDefaults()
	if maxHops <= 0 {
		maxHops = 12
	}
	if queries <= 0 {
		queries = 400
	}
	fig := &metrics.Figure{
		Title:  "Figure 21: overhead of scanRange vs hops along the ring",
		XLabel: "num hops along ring",
		YLabel: "range search time (paper seconds)",
	}
	for h := 0; h <= maxHops; h++ {
		fig.XOrder = append(fig.XOrder, fmt.Sprint(h))
	}
	ctx := context.Background()
	for _, naive := range []bool{false, true} {
		pp := p
		r, err := boot(pp)
		if err != nil {
			return nil, err
		}
		if err := r.growTo(ctx, maxHops+3); err != nil {
			r.cluster.Shutdown()
			return nil, err
		}
		// Quiesce: let stabilization, routing and replication settle.
		time.Sleep(pp.scaled(3 * pp.StabPeriodS))

		buckets := make([]*metrics.Recorder, maxHops+1)
		for h := range buckets {
			buckets[h] = metrics.NewRecorder(fmt.Sprint(h))
		}
		span := workload.NewSpanGen(pp.Seed, 1000, uint64(1000*(len(r.inserted))), 1)
		lives := r.cluster.LivePeers()
		for q := 0; q < queries; q++ {
			origin := lives[q%len(lives)]
			// Random width between 1 and the whole inserted span.
			width := uint64(q%len(r.inserted) + 1)
			base := span.Next()
			iv := keyspace.ClosedInterval(base.Lb, base.Lb+keyspace.Key(width*1000))
			var stats core.QueryStats
			var err error
			if naive {
				_, stats, err = r.cluster.NaiveQueryStatsFrom(ctx, origin, iv)
			} else {
				_, stats, err = r.cluster.RangeQueryStatsFrom(ctx, origin, iv)
			}
			if err != nil {
				continue
			}
			if stats.Hops >= 0 && stats.Hops <= maxHops {
				buckets[stats.Hops].Observe(stats.ScanTime)
			}
		}
		r.cluster.Shutdown()
		label := "search using scanRange"
		if naive {
			label = "naive application search"
		}
		for h, rec := range buckets {
			if s := rec.Summarize(); s.Count > 0 {
				fig.AddPoint(label, fmt.Sprint(h), pp.paperSeconds(s.Mean))
			}
		}
	}
	return fig, nil
}

// Fig22 measures the graceful-leave machinery against the successor list
// length (Section 6.3.3, Figure 22): the PEPPER leave (ring ack), the whole
// merge operation (leave + replicate-to-additional-hop + hand-off), and the
// naive leave that just departs.
func Fig22(p Params, lengths []int) (*metrics.Figure, error) {
	p = p.withDefaults()
	if len(lengths) == 0 {
		lengths = []int{2, 3, 4, 5, 6, 7, 8}
	}
	fig := &metrics.Figure{
		Title:  "Figure 22: overhead of leave vs successor list length",
		XLabel: "succ list length",
		YLabel: "time (paper seconds)",
	}
	ctx := context.Background()
	for _, d := range lengths {
		x := fmt.Sprint(d)
		fig.XOrder = append(fig.XOrder, x)
		for _, naive := range []bool{false, true} {
			pp := p
			pp.SuccListLen = d
			pp.Naive = naive
			r, err := boot(pp)
			if err != nil {
				return nil, err
			}
			if err := r.growTo(ctx, 10); err != nil {
				r.cluster.Shutdown()
				return nil, err
			}
			time.Sleep(pp.scaled(2 * pp.StabPeriodS))
			// Delete items to force underflows and merges (Section 6.3.3).
			for _, k := range r.inserted {
				_, _ = r.cluster.DeleteItem(ctx, k)
				if r.merge.Count() >= 6 {
					break
				}
			}
			// Allow in-flight merges to finish.
			time.Sleep(pp.scaled(4 * pp.StabPeriodS))
			leaveS := r.leave.Summarize()
			mergeS := r.merge.Summarize()
			r.cluster.Shutdown()
			if naive {
				if leaveS.Count > 0 {
					fig.AddPoint("naive leave", x, pp.paperSeconds(leaveS.Mean))
				}
				continue
			}
			if leaveS.Count > 0 {
				fig.AddPoint("leaveRing", x, pp.paperSeconds(leaveS.Mean))
			}
			if mergeS.Count > 0 {
				fig.AddPoint("leaveRing+merge", x, pp.paperSeconds(mergeS.Mean))
			}
		}
	}
	return fig, nil
}

// Fig23 measures insertSucc time against the peer failure rate
// (Section 6.3.4, Figure 23): the failure mode inserts items continuously
// while peers are killed at the given rate per 100 paper seconds.
func Fig23(p Params, rates []float64) (*metrics.Figure, error) {
	p = p.withDefaults()
	if len(rates) == 0 {
		rates = []float64{0, 2, 4, 6, 8, 10, 12}
	}
	fig := &metrics.Figure{
		Title:  "Figure 23: insertSucc in failure mode",
		XLabel: "failure rate (failures per 100 paper s)",
		YLabel: "insertSucc time (paper seconds)",
	}
	ctx := context.Background()
	for _, rate := range rates {
		x := fmt.Sprint(rate)
		fig.XOrder = append(fig.XOrder, x)
		pp := p
		pp.FailuresPer100S = rate
		r, err := boot(pp)
		if err != nil {
			return nil, err
		}
		if err := r.growTo(ctx, 10); err != nil {
			r.cluster.Shutdown()
			return nil, err
		}
		time.Sleep(pp.scaled(2 * pp.StabPeriodS))
		r.insSucc.Reset()

		runCtx, cancel := context.WithTimeout(ctx, pp.scaled(pp.RunS))
		inj := workload.NewFailureInjector(pp.Seed)
		done := make(chan struct{})
		go func() {
			defer close(done)
			if rate <= 0 {
				<-runCtx.Done()
				return
			}
			killer := workload.NewPacer(rate/100, pp.Scale)
			killer.Run(runCtx, func() bool {
				live := r.cluster.LivePeers()
				if len(live) > 4 {
					r.cluster.KillPeer(live[inj.Pick(len(live))].Addr)
				}
				return true
			})
		}()
		pacer := workload.NewPacer(pp.ItemsPerS, pp.Scale)
		pacer.Run(runCtx, func() bool {
			_ = r.insertNext(ctx)
			return true
		})
		cancel()
		<-done
		s := r.insSucc.Summarize()
		r.cluster.Shutdown()
		if s.Count > 0 {
			fig.AddPoint("insertSuccessor", x, pp.paperSeconds(s.Mean))
		}
	}
	return fig, nil
}
