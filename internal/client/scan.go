package client

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/datastore"
	"repro/internal/history"
	"repro/internal/keyspace"
	"repro/internal/ring"
	"repro/internal/routecache"
	"repro/internal/transport"
	"repro/internal/wireapi"
)

// The client's range query is the origin-driven pipelined scan of the
// in-cluster read path, run from outside the ring: resolve the owner of the
// interval's lower bound, ask it for its piece AND its successor chain, and
// keep up to ScanDepth speculative per-range segment scans in flight,
// reassembling validated pieces in key order. Every piece is validated and
// snapshotted atomically at its target under the range read lock, pieces
// must partition the interval (history.CheckScanCover), and any boundary
// movement surfaces as a NotOwner/StaleEpoch verdict that costs a probe and
// a re-resolve — the client inherits the cluster's correctness argument
// wholesale, because the serving side cannot tell a client scan from a peer
// scan.
//
// Client queries are unjournaled reads: a segment whose primary is
// unreachable is retried through the replica chain advertised alongside the
// route, at the price of bounded staleness (one replication refresh).

// maxScanSteps bounds one scan attempt against boundary thrash; see the
// in-cluster scan for the rationale.
const maxScanSteps = 1024

// segPlan describes one per-range segment scan the client intends to issue.
type segPlan struct {
	cursor   keyspace.Key     // first key of the segment
	addr     transport.Addr   // believed owner
	epoch    uint64           // believed ownership epoch (0 = unfenced speculation)
	end      keyspace.Key     // believed last key of the segment (clipped to the query)
	endKnown bool             // end derived from range metadata (replica fallback needs it)
	final    bool             // believed to reach the interval's end
	replicas []transport.Addr // believed replica holders (the owner's successors)
}

// segCall is an issued segment scan.
type segCall struct {
	segPlan
	pend   *wireapi.SegmentPending
	cancel context.CancelFunc
}

// planFromEntry builds the segment plan for cursor from a route-cache entry.
func planFromEntry(cursor, last keyspace.Key, ent routecache.Entry) segPlan {
	end, final := ent.Range.ContiguousEnd(cursor, last)
	return segPlan{cursor: cursor, addr: ent.Addr, epoch: ent.Epoch, end: end, endKnown: true, final: final, replicas: ent.Replicas}
}

// plansFromChain derives the segments following a peer whose range ends at
// prevHi from its successor chain: successor s_i owns (val(s_{i-1}),
// val(s_i)], so cursors and ends fall out of the advertised values. Query
// intervals never wrap, so a chain value that wraps numerically means that
// successor's range runs through the top of the key space and covers the
// interval's remainder.
func plansFromChain(prevHi, last keyspace.Key, chain []ring.Node) []segPlan {
	var out []segPlan
	prev := prevHi
	for i, n := range chain {
		if n.IsZero() || prev >= last {
			break
		}
		cursor := prev + 1
		pl := segPlan{cursor: cursor, addr: n.Addr, endKnown: true}
		if n.Val < cursor {
			pl.end, pl.final = last, true
		} else if n.Val >= last {
			pl.end, pl.final = last, true
		} else {
			pl.end = n.Val
		}
		for _, r := range chain[i+1:] {
			if !r.IsZero() && r.Addr != n.Addr {
				pl.replicas = append(pl.replicas, r.Addr)
			}
		}
		out = append(out, pl)
		if pl.final {
			break
		}
		prev = n.Val
	}
	return out
}

// Query evaluates a range predicate, returning the matching items sorted by
// key. It is an unjournaled read: when a primary dies mid-scan the affected
// segment is served from its replica chain (bounded staleness of one
// replication refresh) instead of failing the query.
func (c *Client) Query(ctx context.Context, iv keyspace.Interval) ([]datastore.Item, error) {
	if !iv.Valid() {
		return nil, fmt.Errorf("client: empty query interval %v", iv)
	}
	ctx, release, err := c.begin(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	var items []datastore.Item
	err = c.retry(ctx, func() error {
		var err error
		items, err = c.runScanAttempt(ctx, iv)
		return err
	})
	if err == nil {
		c.queries.Inc()
	}
	return items, err
}

// runScanAttempt performs one pipelined scan attempt.
func (c *Client) runScanAttempt(ctx context.Context, iv keyspace.Interval) ([]datastore.Item, error) {
	first := firstKeyOf(iv)
	last := lastKeyOf(iv)

	// Resolve the entry segment: the cache's unvalidated hint when present
	// (the segment handler validates at the target, so a warm query reaches
	// the owner in a single round trip), else a full descent.
	ent, err := c.resolve(ctx, first)
	if err != nil {
		return nil, fmt.Errorf("client: owner lookup failed: %w", err)
	}
	entry := planFromEntry(first, last, ent)

	var (
		pieces   []history.ScanPiece
		items    []datastore.Item
		inflight []*segCall
		plan     []segPlan
		expected = first
		complete bool
	)
	issue := func(pl segPlan) {
		cctx, cancel := context.WithCancel(ctx)
		inflight = append(inflight, &segCall{
			segPlan: pl,
			pend:    wireapi.ScanSegmentAsync(cctx, c.net, c.cfg.ID, pl.addr, iv, pl.cursor, pl.epoch),
			cancel:  cancel,
		})
	}
	discard := func() {
		for _, sc := range inflight {
			sc.cancel()
		}
		inflight = inflight[:0]
		plan = plan[:0]
	}
	defer discard()

	issue(entry)
	for steps := 0; !complete; steps++ {
		if steps > maxScanSteps {
			return nil, fmt.Errorf("client: scan exceeded %d steps at cursor %d", maxScanSteps, expected)
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("client: scan attempt timed out: %w", err)
		}

		// A frontier mismatch means a boundary moved under the speculative
		// plan: everything downstream is suspect.
		if len(inflight) > 0 && inflight[0].cursor != expected {
			discard()
		}
		for len(inflight) < c.cfg.ScanDepth && len(plan) > 0 {
			next := plan[0]
			plan = plan[1:]
			issue(next)
		}
		if len(inflight) == 0 {
			// No metadata to speculate from: resolve the frontier's owner
			// and continue.
			ent, err := c.resolve(ctx, expected)
			if err != nil {
				return nil, fmt.Errorf("client: frontier lookup at %d failed: %w", expected, err)
			}
			issue(planFromEntry(expected, last, ent))
			continue
		}

		head := inflight[0]
		inflight = inflight[1:]
		res, err := head.pend.Result()
		head.cancel()
		switch {
		case err != nil && !errors.Is(err, transport.ErrUnreachable):
			// A handler or stream error from a live primary (a busy range
			// lock, a torn-down oversized response resolving with
			// ErrStreamAborted). The peer is not dead and its route is not
			// stale: a bounded-stale replica read would be wrong and
			// invalidating the entry would evict a healthy route — fail the
			// attempt and let the retry ask the same primary again.
			return nil, fmt.Errorf("client: segment at %d via %s rejected: %w", head.cursor, head.addr, err)
		case err != nil:
			// Fail-stop signature: the primary is unreachable. Later
			// in-flight segments validate at their own targets, so only this
			// segment needs saving — serve it from the replica chain, else
			// fail the attempt.
			if cent, ok := c.cache.Lookup(head.cursor); ok && cent.Addr == head.addr {
				if !head.endKnown {
					pl := planFromEntry(head.cursor, last, cent)
					head.end, head.endKnown, head.final = pl.end, true, pl.final
				}
				if head.epoch == 0 {
					head.epoch = cent.Epoch
				}
				head.replicas = mergeAddrs(head.replicas, cent.Replicas)
			}
			if head.endKnown {
				if ritems, ok := c.replicaSegment(ctx, head, last); ok {
					// The entry naming the dead owner stays cached: it still
					// carries the replica candidates that just served this
					// segment, so follow-up queries pay one fast failed call
					// instead of a doomed full descent.
					seg := keyspace.Interval{Lb: head.cursor, Ub: minKey(head.end, last)}
					pieces = append(pieces, history.ScanPiece{Peer: string(head.addr), Interval: seg})
					items = append(items, ritems...)
					c.replicaReads.Inc()
					if head.final || seg.Ub >= last {
						complete = true
					} else {
						expected = seg.Ub + 1
					}
					continue
				}
			}
			c.cache.Invalidate(head.addr)
			return nil, fmt.Errorf("client: segment at %d via %s failed: %w", head.cursor, head.addr, err)
		case res.NotOwner:
			// The boundary moved: the believed owner disclaims the cursor.
			// Drop the stale route and every speculative segment derived from
			// the same metadata; the next iteration re-resolves.
			c.staleRoutes.Inc()
			c.cache.Invalidate(head.addr)
			discard()
			continue
		case res.StaleEpoch:
			// Right owner, wrong incarnation: one probe and a re-resolve,
			// never a wrong answer.
			c.staleRoutes.Inc()
			c.cache.Invalidate(head.addr)
			discard()
			continue
		}

		// One validated piece, served atomically under the target's range
		// read lock.
		if fk := firstKeyOf(res.Piece); fk != head.cursor {
			return nil, fmt.Errorf("client: segment at %d answered misaligned piece %v", head.cursor, res.Piece)
		}
		c.cache.Learn(res.Range, head.addr, res.Epoch, chainAddrs(head.addr, res.Chain))
		pieces = append(pieces, history.ScanPiece{Peer: string(head.addr), Interval: res.Piece})
		items = append(items, res.Items...)
		if res.Done {
			complete = true
			continue
		}
		pieceEnd := lastKeyOf(res.Piece)
		if pieceEnd >= last || pieceEnd == keyspace.MaxKey {
			complete = true
			continue
		}
		expected = pieceEnd + 1

		// This response carries the freshest view of what lies ahead:
		// refresh the in-flight segments' metadata and re-plan everything
		// beyond them.
		fresh := plansFromChain(res.Range.Hi, last, res.Chain)
		for _, sc := range inflight {
			for _, pl := range fresh {
				if pl.cursor == sc.cursor && pl.addr == sc.addr {
					sc.end, sc.endKnown, sc.final = pl.end, pl.endKnown, pl.final
					sc.replicas = mergeAddrs(sc.replicas, pl.replicas)
				}
			}
		}
		frontier := expected
		if n := len(inflight); n > 0 {
			if !inflight[n-1].endKnown {
				// An end-unknown probe is in flight; let it resolve before
				// speculating past it.
				plan = plan[:0]
				continue
			}
			frontier = inflight[n-1].end + 1
		}
		plan = plan[:0]
		for _, pl := range fresh {
			if pl.cursor == frontier || (len(plan) > 0 && pl.cursor == plan[len(plan)-1].end+1) {
				plan = append(plan, pl)
			}
		}
	}

	if err := history.CheckScanCover(iv, pieces); err != nil {
		return nil, fmt.Errorf("client: scan cover check failed: %w", err)
	}
	return dedupeItems(items), nil
}

// replicaSegment serves one segment from the believed replica holders of its
// dead primary, in order, reporting whether any answered. Requests carry the
// believed primary's ownership epoch: a holder refusing with ErrStaleEpoch
// has seen a higher epoch asserted over the segment — the whole chain
// belongs to a deposed incarnation, so the fallback is abandoned (and the
// route dropped) rather than tried against further holders of the same
// stale chain.
func (c *Client) replicaSegment(ctx context.Context, head *segCall, last keyspace.Key) ([]datastore.Item, bool) {
	seg := keyspace.ClosedInterval(head.cursor, minKey(head.end, last))
	for _, r := range head.replicas {
		if r == "" || r == head.addr {
			continue
		}
		items, err := wireapi.ReplicaItems(ctx, c.net, c.cfg.ID, r, seg, head.epoch)
		if err != nil {
			if errors.Is(err, datastore.ErrStaleEpoch) {
				c.staleRoutes.Inc()
				c.cache.Invalidate(head.addr)
				return nil, false
			}
			continue
		}
		return items, true
	}
	return nil, false
}

// firstKeyOf returns the smallest key satisfying iv.
func firstKeyOf(iv keyspace.Interval) keyspace.Key {
	if iv.LbOpen {
		return iv.Lb + 1
	}
	return iv.Lb
}

// lastKeyOf returns the largest key satisfying iv.
func lastKeyOf(iv keyspace.Interval) keyspace.Key {
	if iv.UbOpen {
		return iv.Ub - 1
	}
	return iv.Ub
}

// mergeAddrs appends the addresses of extra not already in base, preserving
// order (existing candidates are tried first).
func mergeAddrs(base, extra []transport.Addr) []transport.Addr {
	for _, a := range extra {
		dup := false
		for _, b := range base {
			if a == b {
				dup = true
				break
			}
		}
		if !dup && a != "" {
			base = append(base, a)
		}
	}
	return base
}

// minKey returns the smaller of two keys.
func minKey(a, b keyspace.Key) keyspace.Key {
	if a < b {
		return a
	}
	return b
}

// dedupeItems drops duplicate keys, keeping the first occurrence, and sorts
// by key.
func dedupeItems(items []datastore.Item) []datastore.Item {
	seen := make(map[keyspace.Key]bool, len(items))
	out := make([]datastore.Item, 0, len(items))
	for _, it := range items {
		if seen[it.Key] {
			continue
		}
		seen[it.Key] = true
		out = append(out, it)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
