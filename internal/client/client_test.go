package client

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datastore"
	"repro/internal/keyspace"
	"repro/internal/replication"
	"repro/internal/ring"
	"repro/internal/router"
	"repro/internal/transport"
	"repro/internal/transport/tcp"
)

// tcpPeerCfg tunes the peer stack for loopback TCP latencies (mirrors the
// core standalone tests).
func tcpPeerCfg() core.Config {
	return core.Config{
		Ring: ring.Config{
			SuccListLen: 4,
			StabPeriod:  20 * time.Millisecond,
			PingPeriod:  20 * time.Millisecond,
			CallTimeout: 500 * time.Millisecond,
			AckTimeout:  5 * time.Second,
		},
		Store: datastore.Config{
			StorageFactor:      5,
			CheckPeriod:        25 * time.Millisecond,
			CallTimeout:        500 * time.Millisecond,
			MaintenanceTimeout: 5 * time.Second,
		},
		Replication: replication.Config{
			Factor:        3,
			RefreshPeriod: 25 * time.Millisecond,
			CallTimeout:   500 * time.Millisecond,
		},
		Router: router.Config{
			RefreshPeriod: 30 * time.Millisecond,
			CallTimeout:   500 * time.Millisecond,
			MaxHops:       64,
		},
		QueryAttemptTimeout: 3 * time.Second,
		MaxQueryAttempts:    30,
		Seed:                7,
	}
}

// testPeer is one OS-process-shaped peer stack: a standalone node plus its
// own transport, so killing the transport fail-stops the whole "process"
// (the client-visible equivalent of kill -9 on a pepperd).
type testPeer struct {
	s  *core.Standalone
	tr *tcp.Transport
}

// kill fail-stops the peer: loops halted, listener closed, every future call
// to it resolving ErrUnreachable.
func (p *testPeer) kill() {
	p.s.Close()
	p.tr.Close()
}

// startPeer binds a fresh loopback endpoint and assembles a standalone peer
// stack on it, each with its own transport so all traffic crosses real
// sockets.
func startPeer(t *testing.T, cfg core.Config) *testPeer {
	t.Helper()
	tr := tcp.New(tcp.Config{DialTimeout: time.Second, CallTimeout: 2 * time.Second})
	t.Cleanup(func() { tr.Close() })
	probe := tcp.New(tcp.Config{})
	bound, err := probe.Listen("127.0.0.1:0", func(transport.Addr, string, any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	probe.Close()
	s, err := core.NewStandalone(tr, bound, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return &testPeer{s: s, tr: tr}
}

// startCluster bootstraps a ring and overflows it until extra peers serve
// ranges, returning the peer stacks (index 0 is the bootstrap) and the
// inserted keys.
func startCluster(t *testing.T, peers, items int) ([]*testPeer, []keyspace.Key) {
	t.Helper()
	cfg := tcpPeerCfg()
	boot := startPeer(t, cfg)
	if err := boot.s.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	nodes := []*testPeer{boot}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i := 1; i < peers; i++ {
		n := startPeer(t, cfg)
		if err := n.s.JoinAsFree(ctx, boot.s.Peer.Addr); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	var keys []keyspace.Key
	for i := 1; i <= items; i++ {
		k := keyspace.Key(i * 100)
		if err := boot.s.CurrentPeer().InsertItem(ctx, datastore.Item{Key: k, Payload: "seed"}); err != nil {
			t.Fatalf("seed insert %d: %v", i, err)
		}
		keys = append(keys, k)
	}
	// Wait until every joiner serves a range (items force the splits).
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		serving := 0
		for _, n := range nodes {
			if _, ok := n.s.CurrentPeer().Store.Range(); ok && n.s.CurrentPeer().Ring.State() == ring.StateJoined {
				serving++
			}
		}
		if serving == len(nodes) {
			return nodes, keys
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("cluster never settled with every peer serving")
	return nil, nil
}

// newTestClient returns a client with its own dial-side transport, seeded at
// the bootstrap peer.
func newTestClient(t *testing.T, seed transport.Addr) *Client {
	t.Helper()
	tr := tcp.New(tcp.Config{DialTimeout: time.Second, CallTimeout: 2 * time.Second})
	t.Cleanup(func() { tr.Close() })
	c, err := New(tr, Config{
		Seeds:     []transport.Addr{seed},
		ID:        "client-test",
		OpTimeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// A client outside the ring runs the full mixed workload over real sockets:
// inserts and deletes land on validated owners, range queries return exactly
// the surviving keys, and every reply primes the route cache so repeated
// operations stop paying descents.
func TestClientMixedWorkloadOverTCP(t *testing.T) {
	nodes, keys := startCluster(t, 2, 14)
	c := newTestClient(t, nodes[0].s.Peer.Addr)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	iv := keyspace.ClosedInterval(0, keys[len(keys)-1]+100)
	items, err := c.Query(ctx, iv)
	if err != nil {
		t.Fatalf("cold query: %v", err)
	}
	if len(items) != len(keys) {
		t.Fatalf("cold query returned %d items, want %d", len(items), len(keys))
	}

	// The cold query learned every serving range; repeated operations must
	// ride the cache without any further descent.
	base := c.Stats().Descents
	if err := c.Insert(ctx, datastore.Item{Key: 1450, Payload: "client"}); err != nil {
		t.Fatalf("insert: %v", err)
	}
	if found, err := c.Delete(ctx, keys[0]); err != nil || !found {
		t.Fatalf("delete = %v, %v; want found", found, err)
	}
	items, err = c.Query(ctx, iv)
	if err != nil {
		t.Fatalf("warm query: %v", err)
	}
	if len(items) != len(keys) {
		t.Fatalf("warm query returned %d items, want %d (one insert, one delete)", len(items), len(keys))
	}
	for _, it := range items {
		if it.Key == keys[0] {
			t.Fatalf("deleted key %d still in query result", keys[0])
		}
	}
	if got := c.Stats().Descents; got != base {
		t.Fatalf("warm operations paid %d extra descents, want 0", got-base)
	}
	if c.Stats().Cache.Hits == 0 {
		t.Fatal("route cache reports zero hits after a warm workload")
	}
}

// A write reply primes the cache: after one cold insert, further operations
// on the same region resolve from the cache with no descent.
func TestClientCachePrimedFromWriteReplies(t *testing.T) {
	nodes, _ := startCluster(t, 1, 4)
	c := newTestClient(t, nodes[0].s.Peer.Addr)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if err := c.Insert(ctx, datastore.Item{Key: 777, Payload: "a"}); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Descents; got != 1 {
		t.Fatalf("cold insert paid %d descents, want 1", got)
	}
	ent, ok := c.Cache().Lookup(778)
	if !ok {
		t.Fatal("insert reply did not prime the route cache")
	}
	if ent.Epoch == 0 {
		t.Fatal("primed entry carries no ownership epoch")
	}
	if err := c.Insert(ctx, datastore.Item{Key: 778, Payload: "b"}); err != nil {
		t.Fatal(err)
	}
	if found, err := c.Delete(ctx, 777); err != nil || !found {
		t.Fatalf("delete = %v, %v; want found", found, err)
	}
	if got := c.Stats().Descents; got != 1 {
		t.Fatalf("warm operations paid %d descents, want 1 (the cold one)", got)
	}
}

// Poisoned routing state never surfaces to the caller: a cache entry naming
// the wrong owner draws a typed ErrNotOwner, and one naming a wrong epoch a
// typed ErrStaleEpoch — each costs an invalidate and a re-resolve inside the
// retry loop, and the operation still succeeds.
func TestClientRecoversFromPoisonedRoutes(t *testing.T) {
	nodes, keys := startCluster(t, 2, 14)
	c := newTestClient(t, nodes[0].s.Peer.Addr)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Learn the real partition, then find two peers serving different keys.
	iv := keyspace.ClosedInterval(0, keys[len(keys)-1]+100)
	if _, err := c.Query(ctx, iv); err != nil {
		t.Fatal(err)
	}
	ents := c.Cache().Entries()
	if len(ents) < 2 {
		t.Fatalf("cache holds %d entries, want >= 2 serving peers", len(ents))
	}

	// Wrong owner: claim peer B serves peer A's range (same epoch, so the
	// poison is not rejected as stale). The target's ownership check must
	// answer ErrNotOwner and the client must recover transparently.
	a, b := ents[0], ents[1]
	c.Cache().Clear()
	c.Cache().Learn(a.Range, b.Addr, b.Epoch, nil)
	before := c.Stats().StaleRoutes
	key := a.Range.Hi // a key peer A serves
	if err := c.Insert(ctx, datastore.Item{Key: key, Payload: "poisoned-owner"}); err != nil {
		t.Fatalf("insert through wrong-owner poison: %v", err)
	}
	if got := c.Stats().StaleRoutes; got == before {
		t.Fatal("wrong-owner poison did not register a stale-route rejection")
	}

	// Wrong epoch: claim the right owner at a future incarnation. The fenced
	// mutation must draw ErrStaleEpoch, and the retry must re-learn the real
	// epoch and succeed.
	c.Cache().Clear()
	c.Cache().Learn(a.Range, a.Addr, a.Epoch+1000, nil)
	before = c.Stats().StaleRoutes
	if err := c.Insert(ctx, datastore.Item{Key: key, Payload: "poisoned-epoch"}); err != nil {
		t.Fatalf("insert through wrong-epoch poison: %v", err)
	}
	if got := c.Stats().StaleRoutes; got == before {
		t.Fatal("wrong-epoch poison did not register a stale-route rejection")
	}
	if ent, ok := c.Cache().Lookup(key); !ok || ent.Epoch != a.Epoch {
		t.Fatalf("cache entry after recovery = %+v, want the real epoch %d", ent, a.Epoch)
	}
}

// A dead primary mid-query never surfaces to the caller: the affected
// segment is served from the replica chain the cluster advertised (bounded
// staleness), and the result still covers the whole interval.
func TestClientReplicaFallbackOnDeadPrimary(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process kill cycle is slow")
	}
	nodes, keys := startCluster(t, 2, 14)
	c := newTestClient(t, nodes[0].s.Peer.Addr)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	iv := keyspace.ClosedInterval(0, keys[len(keys)-1]+100)
	if _, err := c.Query(ctx, iv); err != nil {
		t.Fatal(err)
	}
	// Let one replication refresh propagate the items to the successors.
	time.Sleep(300 * time.Millisecond)

	// Kill the joiner process outright (transport and all): its range stays
	// cached at the client, with the bootstrap advertised as replica holder.
	victim := nodes[1].s.CurrentPeer().Addr
	victimItems := nodes[1].s.CurrentPeer().Store.ItemCount()
	if victimItems == 0 {
		t.Fatal("victim serves no items; the fallback would be vacuous")
	}
	nodes[1].kill()

	items, err := c.Query(ctx, iv)
	if err != nil {
		t.Fatalf("query with dead primary: %v", err)
	}
	if len(items) != len(keys) {
		t.Fatalf("query with dead primary returned %d items, want %d", len(items), len(keys))
	}
	st := c.Stats()
	if st.ReplicaReads == 0 {
		t.Fatalf("no replica reads recorded; victim %s was not exercised", victim)
	}
}
