package client

import (
	"time"

	"repro/internal/transport/tcp"
)

// DialConfig extends Config with the TCP transport knobs a standalone client
// process (cmd/loadgen) needs.
type DialConfig struct {
	Config
	// DialTimeout bounds establishing a connection. Default 2s.
	DialTimeout time.Duration
	// CallTimeout is the per-RPC deadline applied when a call's context
	// carries none. Default 5s.
	CallTimeout time.Duration
	// ConnsPerPeer bounds the multiplexed connections per destination —
	// the "small pool of pipelined connections" user requests share.
	// Default 2.
	ConnsPerPeer int
}

// Dial returns a client owning its own TCP transport (Close tears it down).
// Many in-flight requests multiplex over ConnsPerPeer pipelined connections
// per destination; the client never listens — it is a pure dial-side
// endpoint.
func Dial(cfg DialConfig) (*Client, error) {
	tr := tcp.New(tcp.Config{
		DialTimeout:  cfg.DialTimeout,
		CallTimeout:  cfg.CallTimeout,
		ConnsPerPeer: cfg.ConnsPerPeer,
	})
	c, err := New(tr, cfg.Config)
	if err != nil {
		tr.Close()
		return nil, err
	}
	c.ownsT = true
	return c, nil
}
