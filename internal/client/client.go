// Package client is the smart client tier: a library that speaks the TCP
// transport directly to a running cluster, without being a peer — no ring
// membership, no handlers, just a dial-side endpoint with its own identity.
//
// The client owns a routecache.Cache, primed from every reply that carries
// ownership facts (mutation responses, scan segments, descent answers) and
// consulted before every operation. Exactly as inside the cluster, a cached
// entry is only ever a hint: ownership is validated at the target (the
// insert/delete handlers check the key against the serving range, the
// segment handler checks the cursor), so a stale entry costs the client one
// failed probe and a re-resolve — never a wrong answer — and the cache never
// regresses an entry to a lower ownership epoch. A warm cache turns an
// operation into one validated round trip; a cold one pays the greedy
// O(log n) descent from a seed peer, learning the owner for next time.
//
// Mutations are stamped with the cached ownership epoch, so a deposed
// incarnation of an owner rejects them with ErrStaleEpoch instead of
// accepting a write it no longer has the right to serve; mutations never
// fall back to replicas. Range queries are unjournaled reads: when a primary
// is unreachable mid-scan the client retries the segment through the replica
// chain the cluster advertised, accepting the bounded staleness of one
// replication refresh — the same contract the in-cluster unjournaled read
// path offers.
//
// Many user requests multiplex over a small pool of pipelined connections
// (the TCP transport's per-destination connection pool); a bounded in-flight
// window keeps a burst of arrivals from piling unbounded state on the
// sockets — late operations queue at the window, which an open-loop load
// harness observes as tail latency, not as a slowed arrival process.
package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/datastore"
	"repro/internal/keyspace"
	"repro/internal/metrics"
	"repro/internal/ring"
	"repro/internal/routecache"
	"repro/internal/transport"
	"repro/internal/wireapi"
)

// Config controls a Client.
type Config struct {
	// Seeds are the cluster addresses a cold descent may start from. At
	// least one is required; descents rotate through them so a dead seed
	// costs one failed probe, not every lookup.
	Seeds []transport.Addr
	// ID is the client's dial-side identity (the from-address its requests
	// carry). Defaults to "client".
	ID transport.Addr
	// OpTimeout bounds one public operation (resolution, retries and all)
	// when the caller's context carries no deadline. Default 15s.
	OpTimeout time.Duration
	// MaxHops bounds one greedy descent. Default 64.
	MaxHops int
	// MaxAttempts bounds the route-invalidate-and-retry loop of one
	// operation. Default 8.
	MaxAttempts int
	// CacheSize bounds the route cache (routecache.DefaultCapacity when 0).
	CacheSize int
	// ScanDepth is how many per-range segment scans a range query keeps in
	// flight. Default 3.
	ScanDepth int
	// MaxInflight bounds operations in flight across the whole client; a
	// full window queues callers. Default 128.
	MaxInflight int
	// RetryBackoff is the pause between operation attempts. Default 5ms.
	RetryBackoff time.Duration
}

func (c Config) withDefaults() Config {
	if c.ID == "" {
		c.ID = "client"
	}
	if c.OpTimeout <= 0 {
		c.OpTimeout = 15 * time.Second
	}
	if c.MaxHops <= 0 {
		c.MaxHops = 64
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.ScanDepth <= 0 {
		c.ScanDepth = 3
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 128
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 5 * time.Millisecond
	}
	return c
}

// Stats is a snapshot of a client's operation counters.
type Stats struct {
	Inserts  uint64 // successful inserts
	Deletes  uint64 // successful deletes
	Queries  uint64 // successful range queries
	Descents uint64 // cold owner lookups (cache misses or post-invalidate)
	Hops     uint64 // total greedy hops across all descents
	Retries  uint64 // operation attempts beyond the first
	// StaleRoutes counts typed rejections that proved a cached route wrong
	// (ErrNotOwner, ErrStaleEpoch, or their segment verdicts) — each cost
	// one probe and a re-resolve.
	StaleRoutes  uint64
	ReplicaReads uint64 // scan segments served by a replica holder
	Cache        routecache.Stats
}

// Client is a smart cluster client. Safe for concurrent use; many
// goroutines sharing one Client share its cache, its connection pool and its
// in-flight window.
type Client struct {
	net   transport.Transport
	ownsT bool // Close tears the transport down too
	cfg   Config
	cache *routecache.Cache

	window chan struct{}

	mu      sync.Mutex
	seedIdx int

	inserts      metrics.Counter
	deletes      metrics.Counter
	queries      metrics.Counter
	descents     metrics.Counter
	hops         metrics.Counter
	retries      metrics.Counter
	staleRoutes  metrics.Counter
	replicaReads metrics.Counter
	closed       atomic.Bool
}

// New returns a client speaking over the given transport, which must allow
// calls from unregistered addresses (the TCP transport does; pepperd -probe
// relies on the same property). The caller keeps ownership of the
// transport.
func New(net transport.Transport, cfg Config) (*Client, error) {
	if len(cfg.Seeds) == 0 {
		return nil, errors.New("client: at least one seed address required")
	}
	cfg = cfg.withDefaults()
	return &Client{
		net:    net,
		cfg:    cfg,
		cache:  routecache.New(cfg.CacheSize),
		window: make(chan struct{}, cfg.MaxInflight),
	}, nil
}

// Close releases the client. It closes the transport only when the client
// created it (Dial).
func (c *Client) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	if c.ownsT {
		return c.net.Close()
	}
	return nil
}

// Cache exposes the route cache for tests and operational introspection.
func (c *Client) Cache() *routecache.Cache { return c.cache }

// Stats returns a snapshot of the client's counters.
func (c *Client) Stats() Stats {
	return Stats{
		Inserts:      c.inserts.Value(),
		Deletes:      c.deletes.Value(),
		Queries:      c.queries.Value(),
		Descents:     c.descents.Value(),
		Hops:         c.hops.Value(),
		Retries:      c.retries.Value(),
		StaleRoutes:  c.staleRoutes.Value(),
		ReplicaReads: c.replicaReads.Value(),
		Cache:        c.cache.Stats(),
	}
}

// begin acquires an in-flight window slot and applies the default operation
// deadline when ctx carries none. The returned release func must be called
// when the operation completes.
func (c *Client) begin(ctx context.Context) (context.Context, func(), error) {
	select {
	case c.window <- struct{}{}:
	case <-ctx.Done():
		return ctx, nil, ctx.Err()
	}
	cancel := func() {}
	if _, has := ctx.Deadline(); !has {
		ctx, cancel = context.WithTimeout(ctx, c.cfg.OpTimeout)
	}
	var once sync.Once
	release := func() {
		once.Do(func() {
			cancel()
			<-c.window
		})
	}
	return ctx, release, nil
}

// nextSeed rotates through the configured seeds.
func (c *Client) nextSeed() transport.Addr {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.cfg.Seeds[c.seedIdx%len(c.cfg.Seeds)]
	c.seedIdx++
	return s
}

// chainAddrs projects a successor chain to replica-candidate addresses,
// excluding the owner itself.
func chainAddrs(owner transport.Addr, chain []ring.Node) []transport.Addr {
	out := make([]transport.Addr, 0, len(chain))
	for _, n := range chain {
		if !n.IsZero() && n.Addr != owner {
			out = append(out, n.Addr)
		}
	}
	return out
}

// resolve returns a routing entry for key: the cached hint when present,
// else a full greedy descent (which learns the owner into the cache). The
// entry is a hint either way — the target validates.
func (c *Client) resolve(ctx context.Context, key keyspace.Key) (routecache.Entry, error) {
	if ent, ok := c.cache.Lookup(key); ok {
		return ent, nil
	}
	return c.descend(ctx, key)
}

// descend runs one greedy owner lookup for key from a seed peer, hopping
// via the router's next-hop probe until a peer claims ownership. The
// owner's answer carries its range, epoch and successor chain, so the
// descent always yields a fully populated cache entry. Ownership is decided
// by each target's own range: a stale pointer along the way costs hops,
// never a wrong answer.
func (c *Client) descend(ctx context.Context, key keyspace.Key) (routecache.Entry, error) {
	c.descents.Inc()
	var lastErr error
	for s := 0; s < len(c.cfg.Seeds); s++ {
		cur := c.nextSeed()
		for hop := 0; hop < c.cfg.MaxHops; hop++ {
			if err := ctx.Err(); err != nil {
				return routecache.Entry{}, err
			}
			h, err := wireapi.NextHop(ctx, c.net, c.cfg.ID, cur, key)
			if err != nil {
				c.cache.Invalidate(cur)
				lastErr = err
				break // next seed
			}
			c.hops.Inc()
			if h.Owner {
				ent := routecache.Entry{
					Range:    h.Range,
					Addr:     cur,
					Epoch:    h.Epoch,
					Replicas: chainAddrs(cur, h.Chain),
				}
				c.cache.Learn(ent.Range, ent.Addr, ent.Epoch, ent.Replicas)
				return ent, nil
			}
			if !h.Valid {
				lastErr = fmt.Errorf("client: descent stalled at %s for key %d", cur, key)
				break
			}
			cur = h.Next.Addr
		}
		if lastErr == nil {
			lastErr = fmt.Errorf("client: descent exceeded %d hops for key %d", c.cfg.MaxHops, key)
		}
	}
	return routecache.Entry{}, lastErr
}

// learnMeta primes the cache from a mutation reply's ownership facts.
func (c *Client) learnMeta(owner transport.Addr, meta wireapi.OwnerMeta) {
	c.cache.Learn(meta.Range, owner, meta.Epoch, chainAddrs(owner, meta.Chain))
}

// routeRejected classifies err after an operation against owner: typed
// proof the route is wrong (wrong owner, deposed incarnation) or the
// fail-stop signature. Either way the cached route is dropped and the
// operation re-resolves; other errors come from a live peer whose route may
// well be right, so the route is kept and only the attempt retried.
func (c *Client) routeRejected(owner transport.Addr, err error) {
	switch {
	case errors.Is(err, datastore.ErrNotOwner), errors.Is(err, datastore.ErrStaleEpoch):
		c.staleRoutes.Inc()
		c.cache.Invalidate(owner)
	case errors.Is(err, transport.ErrUnreachable):
		c.cache.Invalidate(owner)
	}
}

// Insert stores item in the index. The write goes to the believed owner,
// stamped with the believed ownership epoch; typed rejections and dead
// primaries invalidate the route and retry through a fresh resolution.
// Mutations never touch replicas — only the validated primary may accept a
// write.
func (c *Client) Insert(ctx context.Context, item datastore.Item) error {
	ctx, release, err := c.begin(ctx)
	if err != nil {
		return err
	}
	defer release()
	err = c.retry(ctx, func() error {
		ent, err := c.resolve(ctx, item.Key)
		if err != nil {
			return err
		}
		meta, err := wireapi.Insert(ctx, c.net, c.cfg.ID, ent.Addr, item, ent.Epoch)
		if err != nil {
			c.routeRejected(ent.Addr, err)
			return err
		}
		c.learnMeta(ent.Addr, meta)
		return nil
	})
	if err == nil {
		c.inserts.Inc()
	}
	return err
}

// Delete removes key from the index, reporting whether it existed. Same
// routing contract as Insert.
func (c *Client) Delete(ctx context.Context, key keyspace.Key) (bool, error) {
	ctx, release, err := c.begin(ctx)
	if err != nil {
		return false, err
	}
	defer release()
	var found bool
	err = c.retry(ctx, func() error {
		ent, err := c.resolve(ctx, key)
		if err != nil {
			return err
		}
		f, meta, err := wireapi.Delete(ctx, c.net, c.cfg.ID, ent.Addr, key, ent.Epoch)
		if err != nil {
			c.routeRejected(ent.Addr, err)
			return err
		}
		c.learnMeta(ent.Addr, meta)
		found = f
		return nil
	})
	if err == nil {
		c.deletes.Inc()
	}
	return found, err
}

// retry drives one operation through the invalidate-and-re-resolve loop:
// each attempt resolves a (possibly fresh) route and applies the operation;
// attempts beyond the first back off briefly to let ownership movements
// settle.
func (c *Client) retry(ctx context.Context, op func() error) error {
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return fmt.Errorf("%w (last attempt: %v)", err, lastErr)
			}
			return err
		}
		if attempt > 0 {
			c.retries.Inc()
			time.Sleep(c.cfg.RetryBackoff)
		}
		if err := op(); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	return fmt.Errorf("client: operation failed after %d attempts: %w", c.cfg.MaxAttempts, lastErr)
}
