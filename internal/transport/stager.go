package transport

import (
	"errors"
	"fmt"
)

// ErrStageOverflow reports a chunked transfer that exceeded the in-memory
// staging cap (MaxStreamBytes) on a transport without disk spill. It is a
// typed, actionable condition: raise the cap, or configure a disk-backed
// storage backend (pepperd -data-dir), whose stagers spill to files and are
// not bounded by the cap at all.
var ErrStageOverflow = errors.New("transport: staged transfer exceeds the in-memory cap")

func init() {
	// A receiver that refuses a stream past its cap reports the overflow as
	// the stream failure reason; registering the sentinel keeps the sender's
	// error typed (errors.Is(err, ErrStageOverflow)) across the wire.
	RegisterWireError(ErrStageOverflow)
}

// ChunkStager accumulates the chunks of one inbound transfer — a streamed
// request on the receiver, or a chunked response on the dial side — until
// the transfer commits (Join) or dies (Discard). Implementations are used by
// one connection goroutine at a time.
//
// The default stager holds chunks in RAM and enforces the transport's
// MaxStreamBytes cap with ErrStageOverflow; the disk-backed storage engine
// supplies one that spills to files, so BOTH sides of the cap agree: a
// transport either caps in RAM everywhere or spills everywhere.
type ChunkStager interface {
	// Append stages the next chunk. An error poisons the transfer; the
	// caller discards the stager and aborts the stream.
	Append(chunk []byte) error
	// Chunks returns how many chunks are staged.
	Chunks() int
	// Bytes returns the staged byte count.
	Bytes() int64
	// Join validates the staged sequence against the committed chunk count,
	// returns the reassembled payload and releases the staging resources.
	Join(total int) ([]byte, error)
	// Discard drops all staged chunks and releases resources; idempotent,
	// and safe to call after Join.
	Discard()
}

// StagerFactory creates a fresh stager for one transfer. maxBytes is the
// transport's in-memory cap; disk-backed factories may ignore it.
type StagerFactory func(maxBytes int64) ChunkStager

// memStager is the default ChunkStager: RAM staging under a byte cap.
type memStager struct {
	chunks [][]byte
	bytes  int64
	max    int64
}

// NewMemStager returns the default in-memory stager. maxBytes <= 0 means
// uncapped.
func NewMemStager(maxBytes int64) ChunkStager { return &memStager{max: maxBytes} }

func (s *memStager) Append(chunk []byte) error {
	if s.max > 0 && s.bytes+int64(len(chunk)) > s.max {
		return fmt.Errorf("%w: %d staged + %d incoming bytes over the %d-byte cap (raise MaxStreamBytes or use disk staging via a durable storage backend)",
			ErrStageOverflow, s.bytes, len(chunk), s.max)
	}
	s.chunks = append(s.chunks, chunk)
	s.bytes += int64(len(chunk))
	return nil
}

func (s *memStager) Chunks() int  { return len(s.chunks) }
func (s *memStager) Bytes() int64 { return s.bytes }

func (s *memStager) Join(total int) ([]byte, error) {
	out, err := JoinChunks(s.chunks, total)
	s.Discard()
	return out, err
}

func (s *memStager) Discard() {
	s.chunks = nil
	s.bytes = 0
}
