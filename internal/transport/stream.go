package transport

import (
	"context"
	"errors"
	"fmt"
)

// Chunked streaming state transfer: the contract that lets bulk state —
// replica pushes, split/merge hand-offs, range pulls — cross the wire in
// sequence-numbered chunk frames instead of one frame bounded by
// MaxFrameSize.
//
// A logical transfer is opened with OpenStream, fed with Chunk (each chunk
// at most MaxChunk bytes, carrying a strictly increasing sequence number on
// the wire), and finished with Commit, which delivers the terminal frame and
// blocks for the receiver's typed acknowledgment: the handler's decoded
// response, or its error. The receiver stages chunks into a buffer and hands
// the reassembled payload to its handler only when the terminal frame
// arrives — a transfer that loses a chunk, is aborted, or whose connection
// dies mid-stream never reaches the handler, so the receiver's state is
// bit-for-bit unchanged (the atomic-commit property the availability
// protocols rely on: a peer can crash mid-hand-off without leaving its
// successor holding half a range).
//
// Transports implement the contract natively: on TCP the chunk frames
// interleave with ordinary multiplexed RPC frames on the pooled connection
// (ring stabilization keeps flowing beside a multi-second state transfer),
// and on simnet the reassembled payload round-trips the wire codec with
// per-chunk fault injection hooks. Protocol layers do not use Stream
// directly; they call CallBulk/CallBulkAsync, which have exactly Call's
// semantics with the frame-size bound removed.

// DefaultChunkBytes is the chunk size used when a transport's configuration
// does not set its own: large enough to amortize per-frame overhead, small
// enough that protocol chatter interleaving between chunks never waits long
// behind one frame.
const DefaultChunkBytes = 256 << 10

// ErrStreamAborted reports a transfer that was torn down — by an explicit
// Abort, a dropped chunk, or receiver-side staging limits — before its
// terminal frame committed. The receiver has discarded all staged chunks.
var ErrStreamAborted = errors.New("transport: stream aborted")

// Stream is the sender half of one chunked transfer. A Stream is used by a
// single goroutine: Chunk calls are ordered, and exactly one of Commit or
// Abort ends the transfer.
type Stream interface {
	// MaxChunk returns the transport's chunk size: the largest data slice
	// one Chunk call may carry.
	MaxChunk() int
	// Chunk sends the next sequence-numbered chunk. The context bounds this
	// chunk's hand-off to the transport (the per-chunk deadline); a chunk
	// that cannot be queued fails the whole transfer.
	Chunk(ctx context.Context, data []byte) error
	// Commit sends the terminal frame and blocks for the receiver's typed
	// acknowledgment: the handler's response value, or its error. The
	// receiver applies the transfer atomically before acknowledging.
	Commit(ctx context.Context) (any, error)
	// Abort tears the transfer down; the receiver discards staged chunks
	// without ever invoking its handler. Safe to call after a failure and
	// idempotent; Abort after Commit is a no-op.
	Abort(reason string)
}

// StreamOpener is implemented by transports with native chunked streaming.
// OpenStream starts one logical transfer to the handler registered at to for
// method; the receiver observes the reassembled payload as a single request,
// exactly as if it had arrived in one (unbounded) Call frame.
type StreamOpener interface {
	OpenStream(ctx context.Context, from, to Addr, method string) (Stream, error)
}

// Resumer is implemented by sender-side streams that can survive a
// connection loss. Resume re-establishes the transfer (re-dialing with
// bounded, jittered backoff) and asks the receiver for its high-water chunk
// mark — the count of chunks it has durably staged. It returns that mark:
// the sequence number the sender should continue from, so chunks the
// receiver already holds are never retransmitted. If the receiver has
// already committed the transfer (the terminal frame applied but its
// acknowledgment was lost), the mark equals the total staged count and the
// retried Commit returns the memoized response without re-running the
// handler.
type Resumer interface {
	Resume(ctx context.Context) (int, error)
}

// maxStreamResumes bounds how many connection losses one CallBulk rides out
// before reporting the failure. Each resume performs its own bounded
// redial-with-backoff, so this is a second-order bound on total retry work.
const maxStreamResumes = 5

// CallBulk performs a request/response whose payload and response may exceed
// MaxFrameSize. On a streaming transport the encoded payload travels as
// chunk frames and commits atomically at the receiver; on any other
// transport it degrades to a plain Call (bounded by the transport's frame
// limit, if it has one). Deadlines, fail-stop error identities and handler
// error propagation match Call.
//
// There is deliberately no small-payload fallback to a plain Call: deciding
// by request size would re-bound the response (the answer to a tiny pull
// request is a whole range), and measuring the payload costs a full encode
// that the call path would then repeat — more expensive than the one extra
// terminal frame a small stream costs on a batched writer.
func CallBulk(t Transport, ctx context.Context, from, to Addr, method string, payload any) (any, error) {
	so, ok := t.(StreamOpener)
	if !ok {
		return t.Call(ctx, from, to, method, payload)
	}
	body, err := Encode(payload)
	if err != nil {
		return nil, err
	}
	st, err := so.OpenStream(ctx, from, to, method)
	if err != nil {
		return nil, err
	}
	size := st.MaxChunk()
	if size <= 0 {
		size = DefaultChunkBytes
	}
	nchunks := (len(body) + size - 1) / size
	next, resumes := 0, 0
	for {
		var chunkErr error
		for ; next < nchunks; next++ {
			off := next * size
			end := off + size
			if end > len(body) {
				end = len(body)
			}
			if chunkErr = st.Chunk(ctx, body[off:end]); chunkErr != nil {
				break
			}
		}
		err := chunkErr
		if err == nil {
			var resp any
			if resp, err = st.Commit(ctx); err == nil {
				return resp, nil
			}
		}
		// A connection-level loss on a resumable stream is survivable: ask
		// the receiver how far it got and continue from there. Handler
		// errors, aborts, context expiry and exhausted retries are not.
		if r, ok := st.(Resumer); ok && resumes < maxStreamResumes && ctx.Err() == nil && errors.Is(err, ErrUnreachable) {
			if mark, rerr := r.Resume(ctx); rerr == nil {
				resumes++
				next = mark
				continue
			}
		}
		if chunkErr != nil {
			st.Abort(err.Error())
		}
		return nil, err
	}
}

// CallBulkAsync is CallBulk issued asynchronously, so bulk transfers can be
// pipelined exactly like CallAsync pipelines plain calls (replica refresh
// fans one push out to k successors as one burst).
func CallBulkAsync(t Transport, ctx context.Context, from, to Addr, method string, payload any) *Pending {
	p := NewPending()
	go func() { p.Resolve(CallBulk(t, ctx, from, to, method, payload)) }()
	return p
}

// JoinChunks validates a staged chunk sequence against the committed count
// and reassembles it. Shared by receiver-side implementations.
func JoinChunks(chunks [][]byte, total int) ([]byte, error) {
	if len(chunks) != total {
		return nil, fmt.Errorf("%w: committed %d chunks, staged %d", ErrStreamAborted, total, len(chunks))
	}
	n := 0
	for _, c := range chunks {
		n += len(c)
	}
	out := make([]byte, 0, n)
	for _, c := range chunks {
		out = append(out, c...)
	}
	return out, nil
}
