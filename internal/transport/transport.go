// Package transport defines the network substrate contract of the system:
// the Transport interface every protocol layer (ring, data store,
// replication, router, core) sends its messages through, plus the wire codec
// all RPC payloads are registered with.
//
// The paper assumes only "some underlying network protocol that can be used
// to send messages reliably from one peer to another with known bounded
// delay" with fail-stop peer failures (Section 2.1). Transport captures that
// assumption as an interface so the same protocol code runs unchanged over
// the in-process simulated network (package simnet, for deterministic tests
// and experiments) and over real TCP connections (package transport/tcp, for
// multi-process deployments):
//
//   - Register attaches a peer's request handler at an address;
//   - Call performs a synchronous request/response with per-call deadlines
//     carried by the context;
//   - Send delivers an asynchronous one-way message with silent failure;
//   - Close tears the whole substrate down.
//
// Implementations must present fail-stop semantics: a call to a dead or
// unknown peer blocks for a bounded time and then reports ErrUnreachable,
// exactly how a live peer observes a failed one ("no response" in
// Algorithm 14 of the paper).
package transport

import (
	"context"
	"errors"
	"sync"
)

// Addr identifies a peer on the network (the paper's "physical id"). For the
// simulated network it is an opaque label; for TCP it is a dialable
// host:port.
type Addr string

// Handler processes one incoming request at a peer and returns a response.
// Handlers run concurrently; implementations must be safe for concurrent use.
type Handler func(from Addr, method string, payload any) (any, error)

// Errors returned by transport operations. Implementations wrap these so
// callers can test with errors.Is regardless of the substrate in use.
var (
	// ErrUnreachable reports that the destination peer is dead, unknown, or
	// did not answer within the deadline — the observable signature of a
	// fail-stop failure.
	ErrUnreachable = errors.New("transport: peer unreachable")
	// ErrSenderDead reports that the sending peer itself has been fail-stopped
	// (a failed peer sends nothing).
	ErrSenderDead = errors.New("transport: sending peer is not alive")
	// ErrDuplicate reports a Register at an address that is already serving.
	ErrDuplicate = errors.New("transport: address already registered")
	// ErrClosed reports an operation on a transport after Close.
	ErrClosed = errors.New("transport: closed")
	// ErrFrameTooLarge reports a plain-call message whose encoded form
	// exceeds MaxFrameSize. Unlike ErrUnreachable it is a permanent,
	// payload-level failure: retrying the same message can never succeed.
	// Bulk state transfers never see it — they go through CallBulk, which
	// streams payloads of any size in chunk frames — so this error is
	// strictly a guard against un-chunked protocol messages outgrowing a
	// frame.
	ErrFrameTooLarge = errors.New("transport: message exceeds frame size limit")
	// ErrUnauthenticated reports a connection refused by the authentication
	// handshake: the remote end does not hold the cluster secret (or refused
	// ours). Unlike ErrUnreachable it is a policy failure — the peer is up,
	// it just will not talk to us — so callers should not treat it as a
	// fail-stop signal.
	ErrUnauthenticated = errors.New("transport: peer not authenticated")
	// ErrWriterStopped reports a frame that was queued on a connection whose
	// writer stopped before writing it. The frame never reached the wire;
	// pending calls carrying it are failed promptly with this error (wrapped
	// in ErrUnreachable semantics by the TCP transport) instead of waiting
	// out their deadlines.
	ErrWriterStopped = errors.New("transport: connection writer stopped")
)

func init() {
	// These sentinels can surface inside stream-failure notices and remote
	// error text; register them so errors.Is works across the wire.
	RegisterWireError(ErrUnauthenticated)
	RegisterWireError(ErrWriterStopped)
}

// Transport is the message substrate connecting peers. All methods are safe
// for concurrent use.
type Transport interface {
	// Register attaches a peer to the network at addr; incoming requests are
	// dispatched to h. Registering an address that is already live is an
	// error; re-registering a dead address revives it.
	Register(addr Addr, h Handler) error
	// Call performs a synchronous request/response from one peer to another.
	// A call to a dead destination reports ErrUnreachable after a bounded
	// delay. The context bounds the whole exchange.
	Call(ctx context.Context, from, to Addr, method string, payload any) (any, error)
	// Send delivers a one-way message asynchronously: it returns immediately
	// and delivery failures are silent, as on a real network.
	Send(from, to Addr, method string, payload any)
	// Close tears down the transport: all endpoints stop serving and
	// subsequent operations fail.
	Close() error
}

// Deregistrar is implemented by transports that can fail-stop a single
// endpoint: the peer stops being served and calls to it report
// ErrUnreachable, while the rest of the transport keeps running. simnet
// implements it as Kill (failure injection); TCP implements it by closing the
// peer's listener (graceful departure).
type Deregistrar interface {
	Deregister(addr Addr)
}

// Deregister fail-stops addr on t if the transport supports per-endpoint
// teardown, and is a no-op otherwise.
func Deregister(t Transport, addr Addr) {
	if d, ok := t.(Deregistrar); ok {
		d.Deregister(addr)
	}
}

// Pending is the future of one asynchronous call: issued now, resolved when
// the response (or failure) arrives. Callers hold many Pendings at once to
// pipeline independent RPCs — including several to the same peer, which
// multiplexing transports carry concurrently on one connection.
type Pending struct {
	done chan struct{}
	once sync.Once
	val  any
	err  error
}

// NewPending returns an unresolved Pending. Transport implementations
// resolve it exactly once with Resolve.
func NewPending() *Pending { return &Pending{done: make(chan struct{})} }

// Resolve completes the call. Later resolutions are ignored, so a response
// racing a timeout settles cleanly on whichever lands first.
func (p *Pending) Resolve(v any, err error) {
	p.once.Do(func() {
		p.val, p.err = v, err
		close(p.done)
	})
}

// Done is closed when the call has resolved.
func (p *Pending) Done() <-chan struct{} { return p.done }

// Result blocks until the call resolves and returns its outcome. The call's
// own context bounds the wait: every issued call resolves — with its
// response, its handler error, or a transport failure — within its deadline.
func (p *Pending) Result() (any, error) {
	<-p.done
	return p.val, p.err
}

// WireStats are a transport's authentication and resilience counters,
// surfaced through operator probes (ops.ProbeStatus).
type WireStats struct {
	// AuthEnabled reports whether the transport requires the cluster-secret
	// handshake on every connection.
	AuthEnabled bool
	// HandshakeRejects counts connections this transport failed at the
	// authentication handshake, on either side of the dial: inbound dialers
	// it refused (wrong cluster key, malformed hello, auth disabled on one
	// side, or a dialer that abandoned the handshake after seeing this
	// server's proof) and outbound dials it refused to complete.
	HandshakeRejects uint64
	// StreamResumes counts bulk transfers that survived a connection loss by
	// resuming from the receiver's high-water chunk mark.
	StreamResumes uint64
}

// WireStatsProvider is implemented by transports that track WireStats.
type WireStatsProvider interface {
	WireStats() WireStats
}

// AsyncCaller is implemented by transports with native asynchronous calls.
// CallAsync has exactly Call's semantics (deadlines, fail-stop reporting,
// error identities) but returns immediately; the exchange proceeds in the
// background and the Pending resolves when it completes.
type AsyncCaller interface {
	CallAsync(ctx context.Context, from, to Addr, method string, payload any) *Pending
}

// CallAsync issues an asynchronous call on any transport: natively when t
// implements AsyncCaller, otherwise by running the synchronous Call in a
// goroutine. Protocol code uses it to fan out independent RPCs — the
// semantics match Call either way, only the concurrency differs.
func CallAsync(t Transport, ctx context.Context, from, to Addr, method string, payload any) *Pending {
	if ac, ok := t.(AsyncCaller); ok {
		return ac.CallAsync(ctx, from, to, method, payload)
	}
	p := NewPending()
	go func() { p.Resolve(t.Call(ctx, from, to, method, payload)) }()
	return p
}
