// Package transport defines the network substrate contract of the system:
// the Transport interface every protocol layer (ring, data store,
// replication, router, core) sends its messages through, plus the wire codec
// all RPC payloads are registered with.
//
// The paper assumes only "some underlying network protocol that can be used
// to send messages reliably from one peer to another with known bounded
// delay" with fail-stop peer failures (Section 2.1). Transport captures that
// assumption as an interface so the same protocol code runs unchanged over
// the in-process simulated network (package simnet, for deterministic tests
// and experiments) and over real TCP connections (package transport/tcp, for
// multi-process deployments):
//
//   - Register attaches a peer's request handler at an address;
//   - Call performs a synchronous request/response with per-call deadlines
//     carried by the context;
//   - Send delivers an asynchronous one-way message with silent failure;
//   - Close tears the whole substrate down.
//
// Implementations must present fail-stop semantics: a call to a dead or
// unknown peer blocks for a bounded time and then reports ErrUnreachable,
// exactly how a live peer observes a failed one ("no response" in
// Algorithm 14 of the paper).
package transport

import (
	"context"
	"errors"
)

// Addr identifies a peer on the network (the paper's "physical id"). For the
// simulated network it is an opaque label; for TCP it is a dialable
// host:port.
type Addr string

// Handler processes one incoming request at a peer and returns a response.
// Handlers run concurrently; implementations must be safe for concurrent use.
type Handler func(from Addr, method string, payload any) (any, error)

// Errors returned by transport operations. Implementations wrap these so
// callers can test with errors.Is regardless of the substrate in use.
var (
	// ErrUnreachable reports that the destination peer is dead, unknown, or
	// did not answer within the deadline — the observable signature of a
	// fail-stop failure.
	ErrUnreachable = errors.New("transport: peer unreachable")
	// ErrSenderDead reports that the sending peer itself has been fail-stopped
	// (a failed peer sends nothing).
	ErrSenderDead = errors.New("transport: sending peer is not alive")
	// ErrDuplicate reports a Register at an address that is already serving.
	ErrDuplicate = errors.New("transport: address already registered")
	// ErrClosed reports an operation on a transport after Close.
	ErrClosed = errors.New("transport: closed")
)

// Transport is the message substrate connecting peers. All methods are safe
// for concurrent use.
type Transport interface {
	// Register attaches a peer to the network at addr; incoming requests are
	// dispatched to h. Registering an address that is already live is an
	// error; re-registering a dead address revives it.
	Register(addr Addr, h Handler) error
	// Call performs a synchronous request/response from one peer to another.
	// A call to a dead destination reports ErrUnreachable after a bounded
	// delay. The context bounds the whole exchange.
	Call(ctx context.Context, from, to Addr, method string, payload any) (any, error)
	// Send delivers a one-way message asynchronously: it returns immediately
	// and delivery failures are silent, as on a real network.
	Send(from, to Addr, method string, payload any)
	// Close tears down the transport: all endpoints stop serving and
	// subsequent operations fail.
	Close() error
}

// Deregistrar is implemented by transports that can fail-stop a single
// endpoint: the peer stops being served and calls to it report
// ErrUnreachable, while the rest of the transport keeps running. simnet
// implements it as Kill (failure injection); TCP implements it by closing the
// peer's listener (graceful departure).
type Deregistrar interface {
	Deregister(addr Addr)
}

// Deregister fail-stops addr on t if the transport supports per-endpoint
// teardown, and is a no-op otherwise.
func Deregister(t Transport, addr Addr) {
	if d, ok := t.(Deregistrar); ok {
		d.Deregister(addr)
	}
}
