package tcp

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/transport"
)

type echoMsg struct{ N int }
type echoResp struct{ N int }

func init() {
	transport.RegisterMessage(echoMsg{})
	transport.RegisterMessage(echoResp{})
}

// newPair starts two endpoints on loopback ephemeral ports and returns their
// bound addresses.
func newPair(t *testing.T, ha, hb transport.Handler) (*Transport, transport.Addr, transport.Addr) {
	t.Helper()
	tr := New(Config{DialTimeout: time.Second, CallTimeout: 2 * time.Second})
	t.Cleanup(func() { tr.Close() })
	a, err := tr.Listen("127.0.0.1:0", ha)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.Listen("127.0.0.1:0", hb)
	if err != nil {
		t.Fatal(err)
	}
	return tr, a, b
}

func TestLoopbackCall(t *testing.T) {
	echo := func(from transport.Addr, method string, p any) (any, error) {
		m, ok := p.(echoMsg)
		if !ok {
			return nil, fmt.Errorf("bad payload %T", p)
		}
		return echoResp{N: m.N + 1}, nil
	}
	tr, a, b := newPair(t, echo, echo)

	got, err := tr.Call(context.Background(), a, b, "echo", echoMsg{N: 41})
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := got.(echoResp); !ok || r.N != 42 {
		t.Fatalf("got %#v, want echoResp{42}", got)
	}

	// A nil payload and a bare bool response cross the wire too.
	ok := func(transport.Addr, string, any) (any, error) { return true, nil }
	c, err := tr.Listen("127.0.0.1:0", ok)
	if err != nil {
		t.Fatal(err)
	}
	got, err = tr.Call(context.Background(), a, c, "ack", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != true {
		t.Fatalf("ack = %#v, want true", got)
	}
}

func TestLoopbackCallConcurrent(t *testing.T) {
	echo := func(_ transport.Addr, _ string, p any) (any, error) {
		time.Sleep(time.Millisecond)
		return p, nil
	}
	tr, a, b := newPair(t, echo, echo)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := tr.Call(context.Background(), a, b, "echo", echoMsg{N: i})
			if err != nil {
				errs <- err
				return
			}
			if m, ok := got.(echoMsg); !ok || m.N != i {
				errs <- fmt.Errorf("call %d returned %#v", i, got)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestLoopbackSend(t *testing.T) {
	delivered := make(chan echoMsg, 1)
	sink := func(_ transport.Addr, _ string, p any) (any, error) {
		if m, ok := p.(echoMsg); ok {
			delivered <- m
		}
		return nil, nil
	}
	tr, a, b := newPair(t, sink, sink)
	tr.Send(a, b, "oneway", echoMsg{N: 7})
	select {
	case m := <-delivered:
		if m.N != 7 {
			t.Fatalf("delivered %#v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("one-way message never delivered")
	}
}

func TestCallToDeadPeerIsUnreachable(t *testing.T) {
	tr := New(Config{DialTimeout: 200 * time.Millisecond, CallTimeout: 500 * time.Millisecond})
	t.Cleanup(func() { tr.Close() })
	start := time.Now()
	_, err := tr.Call(context.Background(), "", "127.0.0.1:1", "m", echoMsg{})
	if !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("dead call took %v; the delay must stay bounded", elapsed)
	}
}

func TestCallTimeoutOnSlowHandler(t *testing.T) {
	slow := func(transport.Addr, string, any) (any, error) {
		time.Sleep(2 * time.Second)
		return true, nil
	}
	tr, a, b := newPair(t, slow, slow)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := tr.Call(ctx, a, b, "slow", echoMsg{})
	if !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable (per-call deadline)", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("timed-out call took %v, want ~100ms", elapsed)
	}
}

func TestHandlerErrorCrossesWire(t *testing.T) {
	failing := func(transport.Addr, string, any) (any, error) {
		return nil, errors.New("datastore: peer does not own the key")
	}
	tr, a, b := newPair(t, failing, failing)
	_, err := tr.Call(context.Background(), a, b, "m", echoMsg{})
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v (%T), want RemoteError", err, err)
	}
	if re.Msg != "datastore: peer does not own the key" {
		t.Fatalf("remote error message = %q", re.Msg)
	}
}

func TestDeregisterMatchesKillSemantics(t *testing.T) {
	okh := func(transport.Addr, string, any) (any, error) { return true, nil }
	tr, a, b := newPair(t, okh, okh)
	if _, err := tr.Call(context.Background(), a, b, "m", echoMsg{}); err != nil {
		t.Fatalf("pre-kill call failed: %v", err)
	}
	tr.Deregister(b)
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	// Pooled connections to the dead listener may survive one write; the
	// fail-stop must be observable within the deadline regardless.
	var err error
	for i := 0; i < 3; i++ {
		if _, err = tr.Call(ctx, a, b, "m", echoMsg{}); err != nil {
			break
		}
	}
	if !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("call to deregistered peer: err = %v, want ErrUnreachable", err)
	}
}

// connCount returns how many multiplexed connections tr holds to addr.
func connCount(tr *Transport, addr transport.Addr) int {
	tr.mu.Lock()
	pc := tr.peers[addr]
	tr.mu.Unlock()
	if pc == nil {
		return 0
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.pruneLocked()
	return len(pc.conns)
}

func TestConnectionPooling(t *testing.T) {
	okh := func(transport.Addr, string, any) (any, error) { return true, nil }
	tr, a, b := newPair(t, okh, okh)
	for i := 0; i < 20; i++ {
		if _, err := tr.Call(context.Background(), a, b, "m", echoMsg{N: i}); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if n := connCount(tr, b); n == 0 || n > tr.cfg.ConnsPerPeer {
		t.Fatalf("connection count %d, want 1..%d (sequential calls must reuse multiplexed connections)", n, tr.cfg.ConnsPerPeer)
	}
}

// Many concurrent calls to one peer must share a single multiplexed
// connection (ConnsPerPeer=1) and overlap at the handler: with 16 calls each
// holding the handler ~20ms, the pipelined batch must finish far faster than
// the serialized 16×20ms.
func TestPipelinedCallsShareOneConnection(t *testing.T) {
	const depth = 16
	var inflight, peak atomic.Int64
	slow := func(_ transport.Addr, _ string, p any) (any, error) {
		cur := inflight.Add(1)
		defer inflight.Add(-1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
		return p, nil
	}
	tr := New(Config{DialTimeout: time.Second, CallTimeout: 10 * time.Second, ConnsPerPeer: 1})
	t.Cleanup(func() { tr.Close() })
	a, err := tr.Listen("127.0.0.1:0", slow)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.Listen("127.0.0.1:0", slow)
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	pends := make([]*transport.Pending, depth)
	for i := range pends {
		pends[i] = tr.CallAsync(context.Background(), a, b, "slow", echoMsg{N: i})
	}
	for i, p := range pends {
		got, err := p.Result()
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if m, ok := got.(echoMsg); !ok || m.N != i {
			t.Fatalf("call %d returned %#v", i, got)
		}
	}
	elapsed := time.Since(start)

	if n := connCount(tr, b); n != 1 {
		t.Fatalf("pipelined calls used %d connections, want 1", n)
	}
	if peak.Load() < 2 {
		t.Fatalf("handler concurrency peak %d, want >= 2 (calls must overlap on one connection)", peak.Load())
	}
	if serialized := depth * 20 * time.Millisecond; elapsed > serialized/2 {
		t.Fatalf("pipelined batch took %v, want well under the serialized %v", elapsed, serialized)
	}
}

// Responses must be matched by request ID, not arrival order: a fast call
// issued after a slow one on the same connection returns first, with each
// caller seeing its own payload.
func TestOutOfOrderResponses(t *testing.T) {
	handler := func(_ transport.Addr, _ string, p any) (any, error) {
		m := p.(echoMsg)
		if m.N == 0 {
			time.Sleep(100 * time.Millisecond) // the slow state transfer
		}
		return m, nil
	}
	tr := New(Config{DialTimeout: time.Second, CallTimeout: 5 * time.Second, ConnsPerPeer: 1})
	t.Cleanup(func() { tr.Close() })
	a, _ := tr.Listen("127.0.0.1:0", handler)
	b, err := tr.Listen("127.0.0.1:0", handler)
	if err != nil {
		t.Fatal(err)
	}

	slow := tr.CallAsync(context.Background(), a, b, "m", echoMsg{N: 0})
	time.Sleep(5 * time.Millisecond) // ensure the slow call is on the wire first
	fastStart := time.Now()
	fast, err := tr.Call(context.Background(), a, b, "m", echoMsg{N: 7})
	if err != nil {
		t.Fatal(err)
	}
	if fastDur := time.Since(fastStart); fastDur > 80*time.Millisecond {
		t.Fatalf("fast call took %v: it was serialized behind the slow call", fastDur)
	}
	if m, ok := fast.(echoMsg); !ok || m.N != 7 {
		t.Fatalf("fast call returned %#v", fast)
	}
	got, err := slow.Result()
	if err != nil {
		t.Fatal(err)
	}
	if m, ok := got.(echoMsg); !ok || m.N != 0 {
		t.Fatalf("slow call returned %#v", got)
	}
}

// A per-call timeout abandons only that call: the connection survives and
// later calls on it succeed.
func TestCallTimeoutLeavesConnectionUsable(t *testing.T) {
	block := make(chan struct{})
	handler := func(_ transport.Addr, _ string, p any) (any, error) {
		m := p.(echoMsg)
		if m.N == 0 {
			<-block
		}
		return m, nil
	}
	tr := New(Config{DialTimeout: time.Second, CallTimeout: 5 * time.Second, ConnsPerPeer: 1})
	t.Cleanup(func() { tr.Close() })
	t.Cleanup(func() { close(block) })
	a, _ := tr.Listen("127.0.0.1:0", handler)
	b, err := tr.Listen("127.0.0.1:0", handler)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := tr.Call(ctx, a, b, "m", echoMsg{N: 0}); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("blocked call: err = %v, want ErrUnreachable", err)
	}
	got, err := tr.Call(context.Background(), a, b, "m", echoMsg{N: 1})
	if err != nil {
		t.Fatalf("call after timeout: %v (the connection must survive an abandoned call)", err)
	}
	if m, ok := got.(echoMsg); !ok || m.N != 1 {
		t.Fatalf("call after timeout returned %#v", got)
	}
	if n := connCount(tr, b); n != 1 {
		t.Fatalf("connection count %d after timeout, want 1 (no redial)", n)
	}
}

// Deregister must resolve calls already in flight to the dead peer promptly
// with ErrUnreachable — orderly cancellation, not a dangling wait for the
// full deadline.
func TestDeregisterCancelsInFlightCalls(t *testing.T) {
	block := make(chan struct{})
	handler := func(transport.Addr, string, any) (any, error) {
		<-block
		return true, nil
	}
	tr := New(Config{DialTimeout: time.Second, CallTimeout: 30 * time.Second, ConnsPerPeer: 1})
	t.Cleanup(func() { tr.Close() })
	t.Cleanup(func() { close(block) })
	a, _ := tr.Listen("127.0.0.1:0", handler)
	b, err := tr.Listen("127.0.0.1:0", handler)
	if err != nil {
		t.Fatal(err)
	}

	pends := make([]*transport.Pending, 4)
	for i := range pends {
		pends[i] = tr.CallAsync(context.Background(), a, b, "m", echoMsg{N: i})
	}
	time.Sleep(20 * time.Millisecond) // let the calls reach the wire
	start := time.Now()
	tr.Deregister(b)
	for i, p := range pends {
		if _, err := p.Result(); !errors.Is(err, transport.ErrUnreachable) {
			t.Fatalf("in-flight call %d after Deregister: err = %v, want ErrUnreachable", i, err)
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("in-flight calls took %v to cancel; Deregister must fail them promptly", elapsed)
	}
}

// Register must key the endpoint by the identity the caller gave, even when
// the OS resolves it differently (hostname vs IP) — otherwise a later
// Deregister with that same identity is a silent no-op and the departed
// peer keeps answering.
func TestRegisterKeepsGivenIdentity(t *testing.T) {
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := probe.Addr().(*net.TCPAddr).Port
	probe.Close()
	addr := transport.Addr(fmt.Sprintf("localhost:%d", port))

	tr := New(Config{DialTimeout: time.Second, CallTimeout: time.Second})
	t.Cleanup(func() { tr.Close() })
	okh := func(transport.Addr, string, any) (any, error) { return true, nil }
	if err := tr.Register(addr, okh); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Call(context.Background(), "", addr, "m", echoMsg{}); err != nil {
		t.Fatalf("call to hostname identity: %v", err)
	}
	tr.Deregister(addr)
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	var cerr error
	for i := 0; i < 3; i++ {
		if _, cerr = tr.Call(ctx, "", addr, "m", echoMsg{}); cerr != nil {
			break
		}
	}
	if !errors.Is(cerr, transport.ErrUnreachable) {
		t.Fatalf("call after Deregister(%s) = %v, want ErrUnreachable", addr, cerr)
	}
}

func TestClosedTransportRefusesWork(t *testing.T) {
	okh := func(transport.Addr, string, any) (any, error) { return true, nil }
	tr, a, b := newPair(t, okh, okh)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Call(context.Background(), a, b, "m", echoMsg{}); err == nil {
		t.Fatal("Call on closed transport succeeded")
	}
	if _, err := tr.Listen("127.0.0.1:0", okh); !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("Listen on closed transport: %v, want ErrClosed", err)
	}
}
