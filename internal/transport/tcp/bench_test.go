package tcp

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
)

// BenchmarkPipelinedCalls measures single-connection call throughput as the
// number of in-flight calls grows. The handler holds each request ~100µs
// (standing in for real protocol work), so the sequential baseline
// (depth=1) is bounded by one round trip plus handler latency per call,
// while pipelined depths overlap handler latencies on the same multiplexed
// connection: throughput must scale with depth (the acceptance bar is ≥2x
// at depth 8 over depth 1).
//
// Run with:
//
//	go test -run '^$' -bench BenchmarkPipelinedCalls ./internal/transport/tcp/
func BenchmarkPipelinedCalls(b *testing.B) {
	for _, depth := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			benchPipelined(b, depth)
		})
	}
}

func benchPipelined(b *testing.B, depth int) {
	handler := func(_ transport.Addr, _ string, p any) (any, error) {
		time.Sleep(100 * time.Microsecond)
		return p, nil
	}
	tr := New(Config{DialTimeout: time.Second, CallTimeout: 30 * time.Second, ConnsPerPeer: 1})
	defer tr.Close()
	a, err := tr.Listen("127.0.0.1:0", handler)
	if err != nil {
		b.Fatal(err)
	}
	dst, err := tr.Listen("127.0.0.1:0", handler)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	// Warm the connection so dialing stays out of the measurement.
	if _, err := tr.Call(ctx, a, dst, "echo", echoMsg{}); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	start := time.Now()
	sem := make(chan struct{}, depth)
	var wg sync.WaitGroup
	var failed sync.Once
	var benchErr error
	for i := 0; i < b.N; i++ {
		sem <- struct{}{}
		wg.Add(1)
		p := tr.CallAsync(ctx, a, dst, "echo", echoMsg{N: i})
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if _, err := p.Result(); err != nil {
				failed.Do(func() { benchErr = err })
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "calls/sec")
}
