package tcp

import (
	"bytes"
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/transport"
)

// countingStager wraps the default in-memory stager and counts every chunk
// staged at the receiver, so a resumed transfer can be audited for
// exactly-once chunk delivery: duplicates would inflate the count (and be
// refused as out-of-sequence), re-staging from zero would double it.
type countingStager struct {
	transport.ChunkStager
	appends *atomic.Int64
}

func (s countingStager) Append(chunk []byte) error {
	s.appends.Add(1)
	return s.ChunkStager.Append(chunk)
}

// Killing the carrying connection mid-transfer (the chaos-drop-chunk fault,
// the in-process stand-in for a mid-push process restart) does not lose the
// bulk call: the sender re-dials, asks the receiver for its high-water chunk
// mark, and continues from it. The committed payload is byte-exact, the
// handler runs exactly once, and no chunk the receiver already staged is
// transferred again.
func TestStreamResumesAfterMidTransferConnectionLoss(t *testing.T) {
	const chunkBytes = 4 << 10
	var appends atomic.Int64
	var handled atomic.Int64
	want := patterned(6 * chunkBytes)

	rcv := New(Config{
		DialTimeout: time.Second, CallTimeout: 5 * time.Second, ChunkBytes: chunkBytes,
		Stager: func(max int64) transport.ChunkStager {
			return countingStager{ChunkStager: transport.NewMemStager(max), appends: &appends}
		},
	})
	t.Cleanup(func() { rcv.Close() })
	b, err := rcv.Listen("127.0.0.1:0", func(_ transport.Addr, _ string, p any) (any, error) {
		handled.Add(1)
		m, ok := p.(streamMsg)
		if !ok {
			return nil, fmt.Errorf("payload type %T", p)
		}
		if !bytes.Equal(m.Data, want) {
			return nil, fmt.Errorf("payload corrupted: %d bytes", len(m.Data))
		}
		return int64(len(m.Data)), nil
	})
	if err != nil {
		t.Fatal(err)
	}

	snd := New(Config{
		DialTimeout: time.Second, CallTimeout: 5 * time.Second, ChunkBytes: chunkBytes,
		ChaosChunkDrop: 3, RedialBackoff: 5 * time.Millisecond,
	})
	t.Cleanup(func() { snd.Close() })
	a, err := snd.Listen("127.0.0.1:0", func(_ transport.Addr, _ string, p any) (any, error) { return p, nil })
	if err != nil {
		t.Fatal(err)
	}

	// The encoded body must span comfortably more chunks than the injected
	// kill point, so the loss lands mid-transfer with chunks on both sides.
	body, err := transport.Encode(streamMsg{Data: want})
	if err != nil {
		t.Fatal(err)
	}
	wantChunks := (len(body) + chunkBytes - 1) / chunkBytes
	if wantChunks < 5 {
		t.Fatalf("test payload spans %d chunks, need >= 5 for a mid-transfer kill", wantChunks)
	}

	resp, err := transport.CallBulk(snd, context.Background(), a, b, "rep.push", streamMsg{Data: want})
	if err != nil {
		t.Fatalf("bulk call across the injected connection loss: %v", err)
	}
	if got, ok := resp.(int64); !ok || got != int64(len(want)) {
		t.Fatalf("bulk response = %v, want %d", resp, len(want))
	}
	if got := handled.Load(); got != 1 {
		t.Fatalf("handler invocations = %d, want exactly 1", got)
	}
	if got := snd.WireStats().StreamResumes; got != 1 {
		t.Fatalf("sender StreamResumes = %d, want 1", got)
	}
	// Exactly-once accounting: every chunk of the transfer was staged exactly
	// once at the receiver, whether it arrived before or after the kill.
	if got := appends.Load(); got != int64(wantChunks) {
		t.Fatalf("receiver staged %d chunks, want %d (each exactly once)", got, wantChunks)
	}
}

// Without a fault the resume machinery stays cold: a clean bulk call reports
// zero resumes on both ends.
func TestCleanBulkCallReportsNoResumes(t *testing.T) {
	const chunkBytes = 4 << 10
	h := func(_ transport.Addr, _ string, p any) (any, error) { return int64(1), nil }
	tr := New(Config{DialTimeout: time.Second, CallTimeout: 5 * time.Second, ChunkBytes: chunkBytes})
	t.Cleanup(func() { tr.Close() })
	a, err := tr.Listen("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.Listen("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := transport.CallBulk(tr, context.Background(), a, b, "rep.push", streamMsg{Data: patterned(4 * chunkBytes)}); err != nil {
		t.Fatal(err)
	}
	if got := tr.WireStats().StreamResumes; got != 0 {
		t.Fatalf("StreamResumes = %d after a clean transfer, want 0", got)
	}
}
