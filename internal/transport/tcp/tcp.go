// Package tcp implements the transport.Transport contract over real TCP
// connections, so a PEPPER peer can run as its own OS process and clusters
// can span machines — the deployment model of the paper's evaluation, which
// ran 30 peer processes on a LAN cluster (Section 6.1).
//
// Wire format: every request and response is one length-prefixed frame
// (transport.WriteFrame) holding a gob-encoded header whose payload bytes
// are a codec envelope (transport.Encode), so only registered message types
// cross the wire. Each in-flight call borrows one pooled connection and runs
// a strict request/response exchange on it; concurrent calls to the same
// peer use distinct pooled connections, which keeps the protocol trivially
// correct (no stream multiplexing) while still amortizing dials.
//
// Failure semantics match simnet.Kill: a call to a dead, unknown or
// unresponsive peer fails with transport.ErrUnreachable after the per-call
// deadline, which is how a live peer observes a fail-stopped one
// (Algorithm 14's "no response"). Deregister closes a peer's listener, after
// which its address behaves exactly like a killed simnet peer.
package tcp

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/transport"
)

// Config controls the TCP transport.
type Config struct {
	// DialTimeout bounds establishing a connection. Default 2s.
	DialTimeout time.Duration
	// CallTimeout is the per-call deadline applied when the caller's context
	// carries none — the "known bounded delay" of Section 2.1. Default 5s.
	CallTimeout time.Duration
	// MaxIdlePerPeer bounds pooled idle connections per destination.
	// Default 4.
	MaxIdlePerPeer int
}

func (c Config) withDefaults() Config {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 5 * time.Second
	}
	if c.MaxIdlePerPeer <= 0 {
		c.MaxIdlePerPeer = 4
	}
	return c
}

// frame kinds.
const (
	kindCall = iota
	kindSend
	kindResp
)

// wireMsg is the header of every frame. Payload holds a codec envelope.
type wireMsg struct {
	Kind    int
	From    string
	Method  string
	Payload []byte
	Err     string // kindResp only: non-empty when the handler failed
}

// Transport is a TCP implementation of transport.Transport.
type Transport struct {
	cfg Config

	mu        sync.Mutex
	listeners map[transport.Addr]*listener
	pools     map[transport.Addr]*pool
	closed    bool
	wg        sync.WaitGroup
}

type listener struct {
	ln net.Listener
	h  transport.Handler

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	dead  bool
}

// track records an accepted connection so a Deregister can fail-stop it;
// it reports false when the listener is already dead.
func (l *listener) track(conn net.Conn) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.dead {
		return false
	}
	if l.conns == nil {
		l.conns = make(map[net.Conn]struct{})
	}
	l.conns[conn] = struct{}{}
	return true
}

func (l *listener) untrack(conn net.Conn) {
	l.mu.Lock()
	delete(l.conns, conn)
	l.mu.Unlock()
}

// kill closes the listener and every accepted connection: a fail-stop. The
// handler stops being invoked for new requests; in-flight responses are
// lost, exactly as when a simnet peer is killed mid-call.
func (l *listener) kill() {
	l.mu.Lock()
	l.dead = true
	conns := make([]net.Conn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.conns = nil
	l.mu.Unlock()
	l.ln.Close()
	for _, c := range conns {
		c.Close()
	}
}

// pool is a stack of idle connections to one destination.
type pool struct {
	mu    sync.Mutex
	conns []net.Conn
}

// New constructs a TCP transport.
func New(cfg Config) *Transport {
	return &Transport{
		cfg:       cfg.withDefaults(),
		listeners: make(map[transport.Addr]*listener),
		pools:     make(map[transport.Addr]*pool),
	}
}

// Register listens on addr (a host:port) and serves incoming requests with
// h. The endpoint is keyed by addr exactly as given — that is the peer's
// identity, and the address Deregister must be called with — even when the
// OS resolves it differently (e.g. a hostname). Use Listen to bind an
// ephemeral port.
func (t *Transport) Register(addr transport.Addr, h transport.Handler) error {
	_, err := t.listen(addr, h, false)
	return err
}

// Listen is Register for ephemeral ports: it binds addr (e.g.
// "127.0.0.1:0") and returns the actual bound address, which is the
// endpoint's key. The bound address is the peer's identity: hand it to
// other peers as this peer's Addr.
func (t *Transport) Listen(addr transport.Addr, h transport.Handler) (transport.Addr, error) {
	return t.listen(addr, h, true)
}

// listen binds addr and serves h. The endpoint is keyed by the resolved
// bound address when keyByBound is set, and by addr as given otherwise.
func (t *Transport) listen(addr transport.Addr, h transport.Handler, keyByBound bool) (transport.Addr, error) {
	if h == nil {
		return "", fmt.Errorf("tcp: nil handler for %s", addr)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return "", transport.ErrClosed
	}
	if _, ok := t.listeners[addr]; ok {
		t.mu.Unlock()
		return "", fmt.Errorf("%w: %s", transport.ErrDuplicate, addr)
	}
	t.mu.Unlock()

	ln, err := net.Listen("tcp", string(addr))
	if err != nil {
		return "", fmt.Errorf("tcp: listen %s: %w", addr, err)
	}
	key := addr
	if keyByBound {
		key = transport.Addr(ln.Addr().String())
	}

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		ln.Close()
		return "", transport.ErrClosed
	}
	if _, ok := t.listeners[key]; ok {
		t.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("%w: %s", transport.ErrDuplicate, key)
	}
	l := &listener{ln: ln, h: h}
	t.listeners[key] = l
	t.wg.Add(1)
	t.mu.Unlock()

	go t.acceptLoop(key, l)
	return key, nil
}

func (t *Transport) acceptLoop(addr transport.Addr, l *listener) {
	defer t.wg.Done()
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			return // listener closed (Deregister or Close)
		}
		t.wg.Add(1)
		go t.serveConn(conn, l)
	}
}

// serveConn answers request frames on one inbound connection until the peer
// hangs up or a protocol error occurs.
func (t *Transport) serveConn(conn net.Conn, l *listener) {
	defer t.wg.Done()
	defer conn.Close()
	if !l.track(conn) {
		return
	}
	defer l.untrack(conn)
	h := l.h
	for {
		raw, err := transport.ReadFrame(conn)
		if err != nil {
			return
		}
		var req wireMsg
		if err := decodeMsg(raw, &req); err != nil {
			return
		}
		payload, err := transport.Decode(req.Payload)
		if err != nil {
			if req.Kind == kindCall {
				_ = writeMsg(conn, wireMsg{Kind: kindResp, Err: err.Error()})
			}
			continue
		}
		resp, herr := h(transport.Addr(req.From), req.Method, payload)
		if req.Kind != kindCall {
			continue // one-way: no response frame
		}
		out := wireMsg{Kind: kindResp}
		if herr != nil {
			out.Err = herr.Error()
		} else if out.Payload, err = transport.Encode(resp); err != nil {
			out.Payload, out.Err = nil, err.Error()
		}
		if err := writeMsg(conn, out); err != nil {
			return
		}
	}
}

// RemoteError is a handler error that crossed the wire. The concrete error
// type cannot survive serialization, so callers get the message text;
// transport-level failures keep their sentinel identity (ErrUnreachable).
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return e.Msg }

// Call implements transport.Transport. The exchange is bounded by ctx, or by
// Config.CallTimeout when ctx carries no deadline.
func (t *Transport) Call(ctx context.Context, from, to transport.Addr, method string, payload any) (any, error) {
	body, err := transport.Encode(payload)
	if err != nil {
		return nil, err
	}
	deadline, ok := ctx.Deadline()
	if !ok {
		deadline = time.Now().Add(t.cfg.CallTimeout)
	}
	conn, err := t.checkout(to, deadline)
	if err != nil {
		return nil, unreachable(to, err)
	}
	ok = false
	defer func() {
		if ok {
			t.checkin(to, conn)
		} else {
			conn.Close()
		}
	}()

	_ = conn.SetDeadline(deadline)
	msg := wireMsg{Kind: kindCall, From: string(from), Method: method, Payload: body}
	if err := writeMsg(conn, msg); err != nil {
		return nil, unreachable(to, err)
	}
	raw, err := transport.ReadFrame(conn)
	if err != nil {
		return nil, unreachable(to, err)
	}
	var resp wireMsg
	if err := decodeMsg(raw, &resp); err != nil {
		return nil, unreachable(to, err)
	}
	_ = conn.SetDeadline(time.Time{})
	ok = true
	if resp.Err != "" {
		return nil, &RemoteError{Msg: resp.Err}
	}
	return transport.Decode(resp.Payload)
}

// Send implements transport.Transport: deliver asynchronously, dropping the
// message on any failure.
func (t *Transport) Send(from, to transport.Addr, method string, payload any) {
	body, err := transport.Encode(payload)
	if err != nil {
		return
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.wg.Add(1)
	t.mu.Unlock()
	go func() {
		defer t.wg.Done()
		deadline := time.Now().Add(t.cfg.CallTimeout)
		conn, err := t.checkout(to, deadline)
		if err != nil {
			return
		}
		_ = conn.SetDeadline(deadline)
		if err := writeMsg(conn, wireMsg{Kind: kindSend, From: string(from), Method: method, Payload: body}); err != nil {
			conn.Close()
			return
		}
		_ = conn.SetDeadline(time.Time{})
		t.checkin(to, conn)
	}()
}

// checkout returns a pooled idle connection to addr, dialing if none is
// available.
func (t *Transport) checkout(addr transport.Addr, deadline time.Time) (net.Conn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, transport.ErrClosed
	}
	p := t.pools[addr]
	if p == nil {
		p = &pool{}
		t.pools[addr] = p
	}
	t.mu.Unlock()

	p.mu.Lock()
	for len(p.conns) > 0 {
		conn := p.conns[len(p.conns)-1]
		p.conns = p.conns[:len(p.conns)-1]
		p.mu.Unlock()
		return conn, nil
	}
	p.mu.Unlock()

	timeout := t.cfg.DialTimeout
	if until := time.Until(deadline); until < timeout {
		timeout = until
	}
	if timeout <= 0 {
		return nil, context.DeadlineExceeded
	}
	return net.DialTimeout("tcp", string(addr), timeout)
}

// checkin returns a healthy connection to the pool, or closes it when the
// pool is full or the transport closed.
func (t *Transport) checkin(addr transport.Addr, conn net.Conn) {
	t.mu.Lock()
	p := t.pools[addr]
	closed := t.closed
	t.mu.Unlock()
	if closed || p == nil {
		conn.Close()
		return
	}
	p.mu.Lock()
	if len(p.conns) < t.cfg.MaxIdlePerPeer {
		p.conns = append(p.conns, conn)
		conn = nil
	}
	p.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// Deregister implements transport.Deregistrar: stop serving addr. Subsequent
// calls to it observe connection failures and report ErrUnreachable — the
// same fail-stop signature simnet.Kill produces.
func (t *Transport) Deregister(addr transport.Addr) {
	t.mu.Lock()
	l := t.listeners[addr]
	delete(t.listeners, addr)
	t.mu.Unlock()
	if l != nil {
		l.kill()
	}
}

// Close implements transport.Transport: stop all listeners, close pooled
// connections, and wait for serving goroutines to drain.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	ls := make([]*listener, 0, len(t.listeners))
	for _, l := range t.listeners {
		ls = append(ls, l)
	}
	t.listeners = make(map[transport.Addr]*listener)
	ps := make([]*pool, 0, len(t.pools))
	for _, p := range t.pools {
		ps = append(ps, p)
	}
	t.pools = make(map[transport.Addr]*pool)
	t.mu.Unlock()

	for _, l := range ls {
		l.kill()
	}
	for _, p := range ps {
		p.mu.Lock()
		for _, c := range p.conns {
			c.Close()
		}
		p.conns = nil
		p.mu.Unlock()
	}
	t.wg.Wait()
	return nil
}

// writeMsg frames and writes one gob-encoded wire message.
func writeMsg(w io.Writer, m wireMsg) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&m); err != nil {
		return err
	}
	return transport.WriteFrame(w, buf.Bytes())
}

// decodeMsg parses one frame body into a wire message.
func decodeMsg(b []byte, m *wireMsg) error {
	return gob.NewDecoder(bytes.NewReader(b)).Decode(m)
}

// unreachable wraps a transport-level failure as ErrUnreachable, preserving
// the caller-visible fail-stop semantics of the simulated network.
func unreachable(to transport.Addr, err error) error {
	if errors.Is(err, transport.ErrClosed) {
		return err
	}
	return fmt.Errorf("%w: %s (%v)", transport.ErrUnreachable, to, err)
}
