// Package tcp implements the transport.Transport contract over real TCP
// connections, so a PEPPER peer can run as its own OS process and clusters
// can span machines — the deployment model of the paper's evaluation, which
// ran 30 peer processes on a LAN cluster (Section 6.1).
//
// Wire format (multiplexed): every message is one length-prefixed frame
// (transport.WriteFrame) holding a gob-encoded header. Call frames carry a
// connection-scoped request ID; the matching response frame echoes it, so a
// single connection carries many concurrent in-flight calls and responses
// return in completion order, not issue order. Protocol chatter (ring
// stabilization, replica pushes) is therefore never serialized behind a slow
// state transfer sharing the connection — the availability protocols keep
// their maintenance traffic flowing under load.
//
// Outbound frames pass through a write-side batcher: queued frames are
// coalesced into one buffered write and flushed when the queue drains, when
// the buffered bytes reach Config.BatchBytes, or at the latest after
// Config.BatchDelay (Nagle with a knob; the default delay of zero adds no
// latency and still amortizes syscalls under pipelined load).
//
// Failure semantics match simnet.Kill: a call to a dead, unknown or
// unresponsive peer fails with transport.ErrUnreachable after the per-call
// deadline, which is how a live peer observes a fail-stopped one
// (Algorithm 14's "no response"). Deregister closes a peer's listener and
// its accepted connections; every call still in flight to that peer resolves
// promptly with ErrUnreachable instead of dangling until its deadline.
// Pooled connections left idle longer than Config.IdlePingAfter are
// health-checked with a ping frame before carrying a new call, so a dead
// idle connection costs one bounded ping instead of a caller's deadline.
package tcp

import (
	"bytes"
	"context"
	crand "crypto/rand"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	mrand "math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/auth"
	"repro/internal/transport"
)

// Config controls the TCP transport.
type Config struct {
	// DialTimeout bounds establishing a connection. Default 2s.
	DialTimeout time.Duration
	// CallTimeout is the per-call deadline applied when the caller's context
	// carries none — the "known bounded delay" of Section 2.1. Default 5s.
	CallTimeout time.Duration
	// ConnsPerPeer bounds multiplexed connections per destination; calls are
	// spread round-robin across them. Default 2.
	ConnsPerPeer int
	// BatchBytes flushes the write batcher once this many bytes are
	// buffered. Default 64 KiB.
	BatchBytes int
	// BatchDelay is the longest the batcher waits for more frames before
	// flushing a non-empty buffer. Zero (the default) flushes as soon as the
	// queue drains, adding no latency.
	BatchDelay time.Duration
	// IdlePingAfter health-checks a pooled connection with a ping frame
	// before reuse when nothing has been read from it for this long.
	// Default 30s.
	IdlePingAfter time.Duration
	// PingTimeout bounds one health-check exchange. Default 1s.
	PingTimeout time.Duration
	// ChunkBytes is the chunk size for streamed bulk transfers (OpenStream):
	// large enough to amortize framing, small enough that RPC frames
	// interleaving on the same connection never wait long behind one chunk.
	// Default transport.DefaultChunkBytes; clamped well under MaxFrameSize.
	ChunkBytes int
	// MaxStreamBytes caps the bytes a receiver stages for one in-flight
	// transfer before rejecting it (protection against runaway senders).
	// Default 512 MiB. The cap binds RAM staging only: a disk-spilling
	// Stager lifts it on both directions at once.
	MaxStreamBytes int
	// Stager creates the staging area used for each inbound chunked
	// transfer AND each chunked response on the dial side, so both
	// directions of the staging cap always agree. Default: in-memory
	// staging capped at MaxStreamBytes (transport.NewMemStager); a durable
	// storage backend supplies a disk-spilling factory instead.
	Stager transport.StagerFactory
	// ClusterKey is the shared cluster secret. When set, every connection —
	// inbound and outbound — runs a mutual challenge–response handshake
	// before carrying a single frame: both ends prove possession of the
	// secret (HMAC over a nonce transcript) and of their ed25519 identity
	// key (signature over the same transcript). A peer that fails either
	// proof is rejected with transport.ErrUnauthenticated. Empty disables
	// authentication entirely (the pre-auth wire format, frame for frame).
	ClusterKey []byte
	// Identity is this process's ed25519 keypair, presented during the
	// handshake. Only consulted when ClusterKey is set; generated
	// ephemerally by New when left nil.
	Identity *auth.Identity
	// HandshakeTimeout bounds the whole connection handshake. Default 3s.
	HandshakeTimeout time.Duration
	// RedialBackoff is the initial delay before re-dialing a destination
	// whose last dial failed; it doubles per consecutive failure (with
	// jitter) up to RedialBackoffMax, and resets on success. While the
	// backoff window is open, calls to the destination fail fast instead of
	// hot-looping dials under churn. Defaults 100ms / 2s.
	RedialBackoff    time.Duration
	RedialBackoffMax time.Duration
	// ChaosChunkDrop, when n > 0, injects exactly one connection loss per
	// process: the first outbound stream to reach chunk sequence n has its
	// carrying connection killed just before that chunk is queued, forcing
	// a real resume over the real wire. Fault injection for tests and smoke
	// scripts only.
	ChaosChunkDrop int
}

func (c Config) withDefaults() Config {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 5 * time.Second
	}
	if c.ConnsPerPeer <= 0 {
		c.ConnsPerPeer = 2
	}
	if c.BatchBytes <= 0 {
		c.BatchBytes = 64 << 10
	}
	if c.IdlePingAfter <= 0 {
		c.IdlePingAfter = 30 * time.Second
	}
	if c.PingTimeout <= 0 {
		c.PingTimeout = time.Second
	}
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = transport.DefaultChunkBytes
	}
	if max := transport.MaxFrameSize - (64 << 10); c.ChunkBytes > max {
		c.ChunkBytes = max // leave headroom for the frame header
	}
	if c.MaxStreamBytes <= 0 {
		c.MaxStreamBytes = 512 << 20
	}
	if c.Stager == nil {
		c.Stager = transport.NewMemStager
	}
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 3 * time.Second
	}
	if c.RedialBackoff <= 0 {
		c.RedialBackoff = 100 * time.Millisecond
	}
	if c.RedialBackoffMax <= 0 {
		c.RedialBackoffMax = 2 * time.Second
	}
	return c
}

// frame kinds.
const (
	kindCall = iota
	kindSend
	kindResp
	kindPing
	kindPong
	// Streamed bulk transfers (transport.Stream): a logical transfer is a
	// run of kindChunk frames closed by kindCommit (or torn down by
	// kindAbort); the terminal acknowledgment is a kindResp, whose payload
	// may itself travel as kindRespChunk frames when it exceeds the chunk
	// size. Stream frames share the connection, the request-ID space and the
	// batched writer with ordinary calls, so RPC chatter interleaves with a
	// long transfer instead of queueing behind it.
	kindChunk
	kindCommit
	kindAbort
	kindRespChunk
	// Stream resume: kindStreamResume asks the receiver for the high-water
	// chunk mark of a parked transfer (by stream ID); kindResumeMark is its
	// dedicated reply, so the chunked-response join logic keyed on kindResp
	// can never misread a mark. New kinds are appended here — the iota
	// values are the wire contract.
	kindStreamResume
	kindResumeMark
	// Authentication handshake frames, exchanged raw on a fresh connection
	// before the mux loops start: hello (pubkey + nonce), proof (transcript
	// MAC + signature), accept, reject.
	kindHsHello
	kindHsProof
	kindHsOK
	kindHsReject
)

// wireMsg is the header of every frame. Payload holds a codec envelope (or,
// for chunk frames, a raw slice of one). ID correlates a kindResp (or
// kindPong) with the kindCall/kindCommit (kindPing) that asked for it; IDs
// are scoped to one connection and direction.
type wireMsg struct {
	Kind    int
	ID      uint64
	Seq     int // chunk sequence number; on kindCommit/terminal kindResp: total chunk count; on kindResumeMark: the high-water mark
	From    string
	Method  string
	Payload []byte
	Err     string // kindResp only: non-empty when the handler or stream failed
	Fail    bool   // kindResp only: Err is a stream-protocol failure, not a handler error
	SID     string // stream frames: the transfer's resumable stream ID ("" = legacy, connection-scoped transfer)
}

// Transport is a TCP implementation of transport.Transport with stream
// multiplexing: one pooled connection carries many concurrent calls.
type Transport struct {
	cfg Config

	mu        sync.Mutex
	listeners map[transport.Addr]*listener
	peers     map[transport.Addr]*peerConns
	closed    bool
	wg        sync.WaitGroup

	// Resumable inbound transfers, keyed by (sender, stream ID). Entries
	// outlive the connection that carried their chunks: a sender that loses
	// its connection mid-transfer re-dials, asks for the high-water mark,
	// and continues — the staged chunks never cross the wire twice.
	rsMu     sync.Mutex
	rstreams map[string]*rstream

	handshakeRejects atomic.Uint64
	streamResumes    atomic.Uint64
	chaosFired       atomic.Bool
	sidSeq           atomic.Uint64
	sidBase          string
}

// Transport must satisfy the full substrate contract, including native
// asynchronous pipelining and chunked streaming.
var (
	_ transport.Transport         = (*Transport)(nil)
	_ transport.Deregistrar       = (*Transport)(nil)
	_ transport.AsyncCaller       = (*Transport)(nil)
	_ transport.StreamOpener      = (*Transport)(nil)
	_ transport.WireStatsProvider = (*Transport)(nil)
)

type listener struct {
	ln net.Listener
	h  transport.Handler

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	dead  bool
}

// track records an accepted connection so a Deregister can fail-stop it;
// it reports false when the listener is already dead.
func (l *listener) track(conn net.Conn) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.dead {
		return false
	}
	if l.conns == nil {
		l.conns = make(map[net.Conn]struct{})
	}
	l.conns[conn] = struct{}{}
	return true
}

func (l *listener) untrack(conn net.Conn) {
	l.mu.Lock()
	delete(l.conns, conn)
	l.mu.Unlock()
}

// kill closes the listener and every accepted connection: a fail-stop. The
// handler stops being invoked for new requests; in-flight responses are
// lost, exactly as when a simnet peer is killed mid-call.
func (l *listener) kill() {
	l.mu.Lock()
	l.dead = true
	conns := make([]net.Conn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.conns = nil
	l.mu.Unlock()
	l.ln.Close()
	for _, c := range conns {
		c.Close()
	}
}

// New constructs a TCP transport.
func New(cfg Config) *Transport {
	cfg = cfg.withDefaults()
	if len(cfg.ClusterKey) > 0 && cfg.Identity == nil {
		id, err := auth.NewIdentity()
		if err != nil {
			// crypto/rand failure is unrecoverable; an authenticated
			// transport without an identity cannot complete any handshake.
			panic(fmt.Sprintf("tcp: generating ephemeral identity: %v", err))
		}
		cfg.Identity = id
	}
	var base [6]byte
	_, _ = crand.Read(base[:])
	return &Transport{
		cfg:       cfg,
		listeners: make(map[transport.Addr]*listener),
		peers:     make(map[transport.Addr]*peerConns),
		rstreams:  make(map[string]*rstream),
		sidBase:   hex.EncodeToString(base[:]),
	}
}

// WireStats implements transport.WireStatsProvider.
func (t *Transport) WireStats() transport.WireStats {
	return transport.WireStats{
		AuthEnabled:      len(t.cfg.ClusterKey) > 0,
		HandshakeRejects: t.handshakeRejects.Load(),
		StreamResumes:    t.streamResumes.Load(),
	}
}

// Register listens on addr (a host:port) and serves incoming requests with
// h. The endpoint is keyed by addr exactly as given — that is the peer's
// identity, and the address Deregister must be called with — even when the
// OS resolves it differently (e.g. a hostname). Use Listen to bind an
// ephemeral port.
func (t *Transport) Register(addr transport.Addr, h transport.Handler) error {
	_, err := t.listen(addr, h, false)
	return err
}

// Listen is Register for ephemeral ports: it binds addr (e.g.
// "127.0.0.1:0") and returns the actual bound address, which is the
// endpoint's key. The bound address is the peer's identity: hand it to
// other peers as this peer's Addr.
func (t *Transport) Listen(addr transport.Addr, h transport.Handler) (transport.Addr, error) {
	return t.listen(addr, h, true)
}

// listen binds addr and serves h. The endpoint is keyed by the resolved
// bound address when keyByBound is set, and by addr as given otherwise.
func (t *Transport) listen(addr transport.Addr, h transport.Handler, keyByBound bool) (transport.Addr, error) {
	if h == nil {
		return "", fmt.Errorf("tcp: nil handler for %s", addr)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return "", transport.ErrClosed
	}
	if _, ok := t.listeners[addr]; ok {
		t.mu.Unlock()
		return "", fmt.Errorf("%w: %s", transport.ErrDuplicate, addr)
	}
	t.mu.Unlock()

	ln, err := net.Listen("tcp", string(addr))
	if err != nil {
		return "", fmt.Errorf("tcp: listen %s: %w", addr, err)
	}
	key := addr
	if keyByBound {
		key = transport.Addr(ln.Addr().String())
	}

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		ln.Close()
		return "", transport.ErrClosed
	}
	if _, ok := t.listeners[key]; ok {
		t.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("%w: %s", transport.ErrDuplicate, key)
	}
	l := &listener{ln: ln, h: h}
	t.listeners[key] = l
	t.wg.Add(1)
	t.mu.Unlock()

	go t.acceptLoop(l)
	return key, nil
}

func (t *Transport) acceptLoop(l *listener) {
	defer t.wg.Done()
	for {
		conn, err := l.ln.Accept()
		if err != nil {
			return // listener closed (Deregister or Close)
		}
		t.wg.Add(1)
		go t.serveConn(conn, l)
	}
}

// hsPayload is the body of a handshake frame (gob-encoded inside
// wireMsg.Payload): the hello carries PubKey+Nonce, the proofs carry
// MAC+Sig over the role-labelled transcript (the server's proof carries all
// four).
type hsPayload struct {
	PubKey []byte
	Nonce  []byte
	MAC    []byte
	Sig    []byte
}

// writeHs writes one handshake frame directly (the mux loops have not
// started yet, so the connection is exclusively ours).
func writeHs(conn net.Conn, m wireMsg) error {
	body, err := encodeMsg(m)
	if err != nil {
		return err
	}
	return transport.WriteFrame(conn, body)
}

// readHs reads one handshake frame.
func readHs(conn net.Conn) (wireMsg, error) {
	raw, err := transport.ReadFrame(conn)
	if err != nil {
		return wireMsg{}, err
	}
	var m wireMsg
	err = decodeMsg(raw, &m)
	return m, err
}

// hsResult is what the server side of the handshake yields: the
// authenticated remote public key (nil when authentication is disabled) and,
// in the disabled case, the first ordinary frame that was read while
// checking for a hello — the serve loop processes it before reading more.
type hsResult struct {
	remotePub []byte
	deferred  []byte
}

// serverHandshake authenticates one accepted connection. With a cluster key
// configured, the dialer must open with a hello and prove possession of both
// the cluster secret and its identity key before a single mux frame is
// exchanged; anything else is rejected with a kindHsReject and counted.
// Without a cluster key the first frame is inspected: a hello from an
// auth-expecting dialer is rejected loudly (so a misconfigured cluster fails
// with a typed error, not a hang) and any other frame is handed back for
// normal serving.
func (t *Transport) serverHandshake(conn net.Conn) (hsResult, error) {
	reject := func(reason string) (hsResult, error) {
		t.handshakeRejects.Add(1)
		_ = writeHs(conn, wireMsg{Kind: kindHsReject, Err: reason})
		return hsResult{}, fmt.Errorf("%w: %s", transport.ErrUnauthenticated, reason)
	}
	if len(t.cfg.ClusterKey) == 0 {
		raw, err := transport.ReadFrame(conn)
		if err != nil {
			return hsResult{}, err
		}
		var m wireMsg
		if err := decodeMsg(raw, &m); err != nil {
			return hsResult{}, err
		}
		if m.Kind == kindHsHello {
			return reject("tcp: peer requires authentication but this process has no cluster key")
		}
		return hsResult{deferred: raw}, nil
	}
	_ = conn.SetDeadline(time.Now().Add(t.cfg.HandshakeTimeout))
	defer conn.SetDeadline(time.Time{})
	m, err := readHs(conn)
	if err != nil {
		return hsResult{}, err
	}
	if m.Kind != kindHsHello {
		return reject("tcp: connection is not authenticated (no handshake hello)")
	}
	var hello hsPayload
	if err := gob.NewDecoder(bytes.NewReader(m.Payload)).Decode(&hello); err != nil {
		return reject("tcp: malformed handshake hello")
	}
	sNonce, err := auth.NewNonce()
	if err != nil {
		return hsResult{}, err
	}
	tr := auth.HandshakeTranscript(hello.Nonce, sNonce, hello.PubKey, t.cfg.Identity.Public())
	srvProof := hsPayload{
		PubKey: t.cfg.Identity.Public(),
		Nonce:  sNonce,
		MAC:    auth.HandshakeMAC(t.cfg.ClusterKey, "srv", tr),
		Sig:    t.cfg.Identity.SignTranscript("srv", tr),
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&srvProof); err != nil {
		return hsResult{}, err
	}
	if err := writeHs(conn, wireMsg{Kind: kindHsProof, Payload: buf.Bytes()}); err != nil {
		return hsResult{}, err
	}
	m, err = readHs(conn)
	if err != nil {
		// The dialer opened with a hello, saw this server's proof, and walked
		// away instead of answering: its check of our cluster-key MAC failed
		// (a wrong-key dialer refuses the server first). That is an
		// authentication failure of this connection, not network noise, so it
		// counts as a handshake reject on this side too.
		t.handshakeRejects.Add(1)
		return hsResult{}, fmt.Errorf("%w: tcp: dialer abandoned the handshake (%v)", transport.ErrUnauthenticated, err)
	}
	var proof hsPayload
	if m.Kind != kindHsProof || gob.NewDecoder(bytes.NewReader(m.Payload)).Decode(&proof) != nil {
		return reject("tcp: malformed handshake proof")
	}
	if !auth.CheckHandshakeMAC(t.cfg.ClusterKey, "cli", tr, proof.MAC) {
		return reject("tcp: cluster key mismatch")
	}
	if !auth.CheckTranscriptSig(hello.PubKey, "cli", tr, proof.Sig) {
		return reject("tcp: identity proof failed")
	}
	if err := writeHs(conn, wireMsg{Kind: kindHsOK}); err != nil {
		return hsResult{}, err
	}
	return hsResult{remotePub: hello.PubKey}, nil
}

// clientHandshake authenticates one dialed connection before the mux loops
// start. Failures carry the transport.ErrUnauthenticated identity so callers
// can tell a policy refusal from a fail-stopped peer.
func (t *Transport) clientHandshake(conn net.Conn) error {
	if len(t.cfg.ClusterKey) == 0 {
		return nil
	}
	unauthed := func(why string) error {
		return fmt.Errorf("%w: %s", transport.ErrUnauthenticated, why)
	}
	_ = conn.SetDeadline(time.Now().Add(t.cfg.HandshakeTimeout))
	defer conn.SetDeadline(time.Time{})
	dNonce, err := auth.NewNonce()
	if err != nil {
		return err
	}
	hello := hsPayload{PubKey: t.cfg.Identity.Public(), Nonce: dNonce}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&hello); err != nil {
		return err
	}
	if err := writeHs(conn, wireMsg{Kind: kindHsHello, Payload: buf.Bytes()}); err != nil {
		return err
	}
	m, err := readHs(conn)
	if err != nil {
		// An auth-disabled peer running an older loop just hangs up on the
		// unknown frame kind; surface that as the policy failure it is.
		return unauthed(fmt.Sprintf("tcp: connection closed during handshake (%v)", err))
	}
	if m.Kind == kindHsReject {
		return unauthed(m.Err)
	}
	var srvProof hsPayload
	if m.Kind != kindHsProof || gob.NewDecoder(bytes.NewReader(m.Payload)).Decode(&srvProof) != nil {
		return unauthed("tcp: malformed server handshake proof")
	}
	tr := auth.HandshakeTranscript(dNonce, srvProof.Nonce, hello.PubKey, srvProof.PubKey)
	if !auth.CheckHandshakeMAC(t.cfg.ClusterKey, "srv", tr, srvProof.MAC) {
		return unauthed("tcp: cluster key mismatch")
	}
	if !auth.CheckTranscriptSig(srvProof.PubKey, "srv", tr, srvProof.Sig) {
		return unauthed("tcp: server identity proof failed")
	}
	proof := hsPayload{
		MAC: auth.HandshakeMAC(t.cfg.ClusterKey, "cli", tr),
		Sig: t.cfg.Identity.SignTranscript("cli", tr),
	}
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(&proof); err != nil {
		return err
	}
	if err := writeHs(conn, wireMsg{Kind: kindHsProof, Payload: buf.Bytes()}); err != nil {
		return err
	}
	m, err = readHs(conn)
	if err != nil {
		return unauthed(fmt.Sprintf("tcp: connection closed awaiting handshake verdict (%v)", err))
	}
	switch m.Kind {
	case kindHsOK:
		return nil
	case kindHsReject:
		return unauthed(m.Err)
	default:
		return unauthed("tcp: unexpected handshake verdict frame")
	}
}

// resumeWindow is how long a receiver parks an interrupted (or committed but
// possibly unacknowledged) resumable transfer, waiting for its sender to
// come back. Senders bound their retries well under this.
const resumeWindow = 60 * time.Second

// rstream is one resumable inbound transfer. It lives in the transport-level
// registry, not the connection, so it survives the connection that carried
// its chunks. After commit the entry is kept (stager released, response
// memoized) until expiry, so a re-sent commit whose first acknowledgment was
// lost returns the same response without running the handler twice.
type rstream struct {
	mu        sync.Mutex
	from      string
	method    string
	stager    transport.ChunkStager
	committed bool
	total     int           // chunk count fixed at commit
	done      chan struct{} // closed when the handler has run
	resp      any
	herr      error
	expires   time.Time
}

func rsKey(from, sid string) string { return from + "\x00" + sid }

// rsGet returns the parked transfer for (from, sid), refreshing its expiry.
func (t *Transport) rsGet(from, sid string) *rstream {
	t.rsMu.Lock()
	defer t.rsMu.Unlock()
	e := t.rstreams[rsKey(from, sid)]
	if e != nil {
		e.mu.Lock()
		e.expires = time.Now().Add(resumeWindow)
		e.mu.Unlock()
	}
	return e
}

// rsCreate parks a new transfer, sweeping expired entries while it is here.
func (t *Transport) rsCreate(from, method, sid string) *rstream {
	e := &rstream{
		from:    from,
		method:  method,
		stager:  t.cfg.Stager(int64(t.cfg.MaxStreamBytes)),
		done:    make(chan struct{}),
		expires: time.Now().Add(resumeWindow),
	}
	now := time.Now()
	t.rsMu.Lock()
	for k, old := range t.rstreams {
		old.mu.Lock()
		expired := now.After(old.expires)
		var st transport.ChunkStager
		if expired {
			st, old.stager = old.stager, nil
		}
		old.mu.Unlock()
		if expired {
			delete(t.rstreams, k)
			if st != nil {
				st.Discard()
			}
		}
	}
	t.rstreams[rsKey(from, sid)] = e
	t.rsMu.Unlock()
	return e
}

// rsDrop discards a parked transfer (abort, protocol failure, expiry).
func (t *Transport) rsDrop(from, sid string) {
	t.rsMu.Lock()
	e := t.rstreams[rsKey(from, sid)]
	delete(t.rstreams, rsKey(from, sid))
	t.rsMu.Unlock()
	if e == nil {
		return
	}
	e.mu.Lock()
	st := e.stager
	e.stager = nil
	e.mu.Unlock()
	if st != nil {
		st.Discard()
	}
}

// resumeMark reports how far a parked transfer got: the count of staged
// chunks, the committed total when the transfer already applied, or 0 when
// nothing is parked (the sender restarts from the first chunk).
func (t *Transport) resumeMark(from, sid string) int {
	e := t.rsGet(from, sid)
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.committed {
		return e.total
	}
	return e.stager.Chunks()
}

// inboundStream is one transfer being staged at the receiver: chunks
// accumulate in the configured stager (RAM by default, spill files with a
// disk-backed storage engine) and nothing touches the handler until the
// commit frame arrives, so an interrupted transfer leaves the receiver
// bit-for-bit unchanged.
type inboundStream struct {
	from   string
	method string
	stager transport.ChunkStager
}

// serveConn answers request frames on one inbound connection until the peer
// hangs up or a protocol error occurs. Each request is dispatched in its own
// goroutine and its response re-enters the connection through the shared
// batched writer, so a slow handler never blocks the requests pipelined
// behind it. Stream chunks are staged per connection by this loop (single
// goroutine, no locking) and dispatched as one reassembled request on
// commit; a connection that dies mid-stream simply drops its staged state.
func (t *Transport) serveConn(conn net.Conn, l *listener) {
	defer t.wg.Done()
	defer conn.Close()
	if !l.track(conn) {
		return
	}
	defer l.untrack(conn)
	// Authenticate before the mux loops exist: with a cluster key set, not
	// one request frame is read — let alone dispatched — from a connection
	// that has not proven possession of the secret. The remote public key
	// is the connection's authenticated identity; per-owner authority over
	// range claims is proven separately by advert signatures.
	hs, err := t.serverHandshake(conn)
	if err != nil {
		return
	}
	w := newBatchWriter(conn, t.cfg)
	// A dead writer must take the whole connection down: otherwise this loop
	// would keep reading and dispatching pipelined requests whose responses
	// are silently dropped, leaving callers to burn their full deadlines.
	w.onError = func(error) { conn.Close() }
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		w.loop()
	}()
	defer w.stop()
	h := l.h
	streams := make(map[uint64]*inboundStream)
	// A connection that dies mid-stream drops its staged state; disk-spilled
	// stagers release their files. Resumable (SID-carrying) transfers live
	// in the transport registry instead and survive for the resume window.
	defer func() {
		for _, st := range streams {
			st.stager.Discard()
		}
	}()
	// failStream rejects a transfer with a typed stream failure; the sender's
	// Commit resolves with ErrStreamAborted instead of burning its deadline.
	failStream := func(id uint64, reason string) {
		if st := streams[id]; st != nil {
			st.stager.Discard()
		}
		delete(streams, id)
		_ = w.enqueueMsg(wireMsg{Kind: kindResp, ID: id, Fail: true, Err: reason})
	}
	// failResumable is failStream for a registry-parked transfer.
	failResumable := func(id uint64, from, sid, reason string) {
		t.rsDrop(from, sid)
		_ = w.enqueueMsg(wireMsg{Kind: kindResp, ID: id, Fail: true, Err: reason})
	}
	handle := func(raw []byte) bool {
		var req wireMsg
		if err := decodeMsg(raw, &req); err != nil {
			return false
		}
		switch req.Kind {
		case kindPing:
			_ = w.enqueueMsg(wireMsg{Kind: kindPong, ID: req.ID})
		case kindSend, kindCall:
			t.wg.Add(1)
			go func() {
				defer t.wg.Done()
				t.dispatch(h, w, req)
			}()
		case kindChunk:
			if req.SID != "" {
				e := t.rsGet(req.From, req.SID)
				if e == nil {
					if req.Seq != 0 {
						// Tail of a transfer whose parked state expired or was
						// rejected; tell the sender instead of staging a hole.
						failResumable(req.ID, req.From, req.SID, "tcp: no parked stream state for resumed chunk")
						return true
					}
					e = t.rsCreate(req.From, req.Method, req.SID)
				}
				e.mu.Lock()
				var apErr error
				reject := ""
				switch {
				case e.committed:
					if req.Seq >= e.total {
						reject = "tcp: chunk after commit"
					} // else: duplicate of an already-applied transfer; ignore
				case req.Seq < e.stager.Chunks():
					// Duplicate from a resend race; already staged.
				case req.Seq > e.stager.Chunks():
					reject = fmt.Sprintf("tcp: stream chunk %d out of sequence (want %d)", req.Seq, e.stager.Chunks())
				default:
					apErr = e.stager.Append(req.Payload)
				}
				e.mu.Unlock()
				if reject != "" {
					failResumable(req.ID, req.From, req.SID, reject)
				} else if apErr != nil {
					failResumable(req.ID, req.From, req.SID, apErr.Error())
				}
				return true
			}
			st := streams[req.ID]
			if st == nil {
				if req.Seq != 0 {
					return true // tail of a transfer already rejected; ignore
				}
				st = &inboundStream{from: req.From, method: req.Method, stager: t.cfg.Stager(int64(t.cfg.MaxStreamBytes))}
				streams[req.ID] = st
			}
			if req.Seq != st.stager.Chunks() {
				failStream(req.ID, fmt.Sprintf("tcp: stream chunk %d out of sequence (want %d)", req.Seq, st.stager.Chunks()))
				return true
			}
			if err := st.stager.Append(req.Payload); err != nil {
				// Staging refused the chunk — with the default stager this is
				// the typed ErrStageOverflow past MaxStreamBytes; the reason
				// crosses the wire so the sender's error stays actionable.
				failStream(req.ID, err.Error())
				return true
			}
		case kindCommit:
			if req.SID != "" {
				t.commitResumable(h, w, req, failResumable)
				return true
			}
			st := streams[req.ID]
			delete(streams, req.ID)
			from, method := req.From, req.Method
			var body []byte
			var err error
			if st != nil {
				from, method = st.from, st.method
				body, err = st.stager.Join(req.Seq)
			} else {
				body, err = transport.JoinChunks(nil, req.Seq)
			}
			if err != nil {
				failStream(req.ID, err.Error())
				return true
			}
			t.wg.Add(1)
			go func() {
				defer t.wg.Done()
				t.dispatchStream(h, w, req.ID, transport.Addr(from), method, body)
			}()
		case kindAbort:
			delete(streams, req.ID)
			if req.SID != "" {
				t.rsDrop(req.From, req.SID)
			}
		case kindStreamResume:
			_ = w.enqueueMsg(wireMsg{Kind: kindResumeMark, ID: req.ID, Seq: t.resumeMark(req.From, req.SID)})
		default:
			return false // protocol error: abandon the connection
		}
		return true
	}
	if hs.deferred != nil && !handle(hs.deferred) {
		return
	}
	for {
		raw, err := transport.ReadFrame(conn)
		if err != nil {
			return
		}
		if !handle(raw) {
			return
		}
	}
}

// commitResumable applies the terminal frame of a registry-parked transfer.
// The handler runs exactly once per stream ID: the first commit joins the
// staged chunks, dispatches, and memoizes the outcome; a re-sent commit
// (the first acknowledgment lost with its connection) waits for that
// dispatch and re-sends the memoized response through the new connection's
// writer.
func (t *Transport) commitResumable(h transport.Handler, w *batchWriter, req wireMsg, failResumable func(id uint64, from, sid, reason string)) {
	e := t.rsGet(req.From, req.SID)
	if e == nil {
		if req.Seq != 0 {
			failResumable(req.ID, req.From, req.SID, "tcp: no parked stream state for resumed commit")
			return
		}
		e = t.rsCreate(req.From, req.Method, req.SID)
	}
	e.mu.Lock()
	if e.committed {
		if req.Seq != e.total {
			e.mu.Unlock()
			failResumable(req.ID, req.From, req.SID, fmt.Sprintf("tcp: resumed commit count %d does not match committed %d", req.Seq, e.total))
			return
		}
		e.mu.Unlock()
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			<-e.done
			t.respond(w, req.ID, e.resp, e.herr)
		}()
		return
	}
	body, err := e.stager.Join(req.Seq)
	if err != nil {
		e.mu.Unlock()
		failResumable(req.ID, req.From, req.SID, err.Error())
		return
	}
	e.committed = true
	e.total = req.Seq
	from, method := e.from, e.method
	e.mu.Unlock()
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		var resp any
		var herr error
		payload, derr := transport.Decode(body)
		if derr != nil {
			herr = derr
		} else {
			resp, herr = h(transport.Addr(from), method, payload)
		}
		e.resp, e.herr = resp, herr
		close(e.done)
		t.respond(w, req.ID, resp, herr)
	}()
}

// dispatchStream runs one reassembled transfer through the handler and
// queues the terminal acknowledgment through the same (chunk-capable)
// response path ordinary calls use.
func (t *Transport) dispatchStream(h transport.Handler, w *batchWriter, id uint64, from transport.Addr, method string, body []byte) {
	payload, err := transport.Decode(body)
	if err != nil {
		_ = w.enqueueMsg(wireMsg{Kind: kindResp, ID: id, Err: err.Error()})
		return
	}
	resp, herr := h(from, method, payload)
	t.respond(w, id, resp, herr)
}

// dispatch runs one request through the handler and, for calls, queues the
// response — chunked when it outgrows the chunk size, exactly like a
// stream's acknowledgment, so a small request (a pull, a rebalance probe)
// can be answered with an arbitrarily large range.
func (t *Transport) dispatch(h transport.Handler, w *batchWriter, req wireMsg) {
	payload, err := transport.Decode(req.Payload)
	if err != nil {
		if req.Kind == kindCall {
			_ = w.enqueueMsg(wireMsg{Kind: kindResp, ID: req.ID, Err: err.Error()})
		}
		return
	}
	resp, herr := h(transport.Addr(req.From), req.Method, payload)
	if req.Kind != kindCall {
		return // one-way: no response frame
	}
	t.respond(w, req.ID, resp, herr)
}

// respond queues one call's (or committed stream's) terminal response,
// chunking the encoded payload as kindRespChunk frames when it exceeds the
// chunk size. The batched writer preserves enqueue order per connection, so
// the chunk run lands before its terminal frame.
func (t *Transport) respond(w *batchWriter, id uint64, resp any, herr error) {
	out := wireMsg{Kind: kindResp, ID: id}
	if herr != nil {
		out.Err = herr.Error()
		_ = w.enqueueMsg(out)
		return
	}
	respBody, err := transport.Encode(resp)
	if err != nil {
		out.Err = err.Error()
		_ = w.enqueueMsg(out)
		return
	}
	if len(respBody) <= t.cfg.ChunkBytes {
		out.Payload = respBody
		_ = w.enqueueMsg(out)
		return
	}
	n := 0
	for off := 0; off < len(respBody); off += t.cfg.ChunkBytes {
		end := off + t.cfg.ChunkBytes
		if end > len(respBody) {
			end = len(respBody)
		}
		if err := w.enqueueMsg(wireMsg{Kind: kindRespChunk, ID: id, Seq: n, Payload: respBody[off:end]}); err != nil {
			return // connection dying; the caller sees its failure
		}
		n++
	}
	out.Seq = n
	_ = w.enqueueMsg(out)
}

// RemoteError is a handler error that crossed the wire. The concrete error
// type cannot survive serialization, so callers get the message text;
// transport-level failures keep their sentinel identity (ErrUnreachable).
// Sentinels registered with transport.RegisterWireError are recovered from
// the text, so errors.Is(err, sentinel) works across the wire for typed
// protocol errors like the datastore's stale-epoch rejection.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return e.Msg }

// Is matches registered wire sentinels by their text, giving remote handler
// errors the same errors.Is identity they have on an in-process transport.
func (e *RemoteError) Is(target error) bool {
	return transport.MatchWireError(e.Msg, target)
}

// Call implements transport.Transport. The exchange is bounded by ctx, or by
// Config.CallTimeout when ctx carries no deadline.
func (t *Transport) Call(ctx context.Context, from, to transport.Addr, method string, payload any) (any, error) {
	return t.CallAsync(ctx, from, to, method, payload).Result()
}

// CallAsync implements transport.AsyncCaller: issue the call and return its
// Pending immediately. Many pendings to the same peer ride one multiplexed
// connection concurrently.
func (t *Transport) CallAsync(ctx context.Context, from, to transport.Addr, method string, payload any) *transport.Pending {
	p := transport.NewPending()
	body, err := transport.Encode(payload)
	if err != nil {
		p.Resolve(nil, err)
		return p
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		p.Resolve(nil, transport.ErrClosed)
		return p
	}
	t.wg.Add(1)
	t.mu.Unlock()
	go func() {
		defer t.wg.Done()
		p.Resolve(t.roundTrip(ctx, wireMsg{Kind: kindCall, From: string(from), Method: method, Payload: body}, to))
	}()
	return p
}

// roundTrip performs one call exchange against to, bounded by ctx (or the
// default call timeout).
func (t *Transport) roundTrip(ctx context.Context, msg wireMsg, to transport.Addr) (any, error) {
	deadline, ok := ctx.Deadline()
	if !ok {
		deadline = time.Now().Add(t.cfg.CallTimeout)
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}
	mc, err := t.grabConn(ctx, to, deadline)
	if err != nil {
		return nil, unreachable(to, err)
	}
	resp, err := mc.exchange(ctx, msg)
	if err != nil {
		if errors.Is(err, transport.ErrFrameTooLarge) {
			return nil, err // permanent payload failure, not a fail-stop signal
		}
		var se *stageError
		if errors.As(err, &se) {
			return nil, se.err // local staging failure on a healthy connection
		}
		return nil, unreachable(to, err)
	}
	if resp.Err != "" {
		return nil, &RemoteError{Msg: resp.Err}
	}
	return transport.Decode(resp.Payload)
}

// Send implements transport.Transport: deliver asynchronously, dropping the
// message on any failure. Send frames share the multiplexed connections and
// the write batcher with calls.
func (t *Transport) Send(from, to transport.Addr, method string, payload any) {
	body, err := transport.Encode(payload)
	if err != nil {
		return
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.wg.Add(1)
	t.mu.Unlock()
	go func() {
		defer t.wg.Done()
		deadline := time.Now().Add(t.cfg.CallTimeout)
		ctx, cancel := context.WithDeadline(context.Background(), deadline)
		defer cancel()
		mc, err := t.grabConn(ctx, to, deadline)
		if err != nil {
			return
		}
		_ = mc.enqueueMsg(wireMsg{Kind: kindSend, From: string(from), Method: method, Payload: body})
	}()
}

// OpenStream implements transport.StreamOpener: start one chunked transfer
// to the handler at to. The transfer's frames ride a pooled multiplexed
// connection, interleaving with concurrent RPC frames; its terminal
// acknowledgment is matched back by request ID exactly like a call response.
func (t *Transport) OpenStream(ctx context.Context, from, to transport.Addr, method string) (transport.Stream, error) {
	deadline, ok := ctx.Deadline()
	if !ok {
		deadline = time.Now().Add(t.cfg.CallTimeout)
	}
	mc, err := t.grabConn(ctx, to, deadline)
	if err != nil {
		return nil, unreachable(to, err)
	}
	id, ch, err := mc.register()
	if err != nil {
		return nil, unreachable(to, err)
	}
	return &tcpStream{
		t:      t,
		mc:     mc,
		to:     to,
		id:     id,
		ch:     ch,
		from:   string(from),
		method: method,
		// The stream ID names this transfer across connections: a random
		// per-process base plus a counter, so parked receiver state can
		// never be claimed by another process's stream.
		sid: fmt.Sprintf("%s-%d", t.sidBase, t.sidSeq.Add(1)),
	}, nil
}

// tcpStream is the sender half of one chunked transfer on a multiplexed
// connection.
type tcpStream struct {
	t      *Transport
	mc     *muxConn
	to     transport.Addr
	id     uint64
	ch     chan pendingResp
	from   string
	method string
	sid    string // resumable stream ID, constant across connections
	seq    int
	early  *pendingResp // receiver rejected the transfer before commit
	done   bool
}

// tcpStream survives connection loss: transport.CallBulk resumes it from the
// receiver's high-water mark instead of restarting from chunk 0.
var _ transport.Resumer = (*tcpStream)(nil)

func (s *tcpStream) MaxChunk() int { return s.t.cfg.ChunkBytes }

// Chunk queues the next sequence-numbered chunk frame, bounded by ctx (the
// per-chunk deadline). A receiver-side rejection that already arrived fails
// the transfer immediately instead of streaming the rest for nothing.
func (s *tcpStream) Chunk(ctx context.Context, data []byte) error {
	if s.done {
		return transport.ErrStreamAborted
	}
	if len(data) > s.t.cfg.ChunkBytes {
		return fmt.Errorf("tcp: stream chunk of %d bytes exceeds chunk size %d", len(data), s.t.cfg.ChunkBytes)
	}
	if s.early == nil {
		select {
		case r := <-s.ch:
			s.early = &r
		default:
		}
	}
	if s.early != nil {
		return s.earlyErr()
	}
	if n := s.t.cfg.ChaosChunkDrop; n > 0 && s.seq == n && s.t.chaosFired.CompareAndSwap(false, true) {
		// Fault injection: kill the carrying connection right before this
		// chunk, once per process. The enqueue below then fails and the
		// transfer must survive via a real resume on a fresh connection.
		s.mc.fail(errors.New("tcp: chaos-drop-chunk fault injected"))
	}
	msg := wireMsg{Kind: kindChunk, ID: s.id, Seq: s.seq, From: s.from, Method: s.method, Payload: data, SID: s.sid}
	if err := s.mc.w.enqueueMsgCtx(ctx, msg); err != nil {
		// A dead writer means the connection (and with it the peer, as far
		// as this transfer is concerned) is gone: keep the fail-stop error
		// identity callers test for, exactly as Commit and OpenStream do.
		return unreachable(s.to, err)
	}
	s.seq++
	return nil
}

// Commit sends the terminal frame and waits for the receiver's typed
// acknowledgment, applying the transport's default call timeout when ctx
// carries no deadline. A connection-level failure leaves the stream open
// (not done): the transfer is resumable, and a retried Commit after Resume
// reaches the receiver's memoized response without re-running its handler.
func (s *tcpStream) Commit(ctx context.Context) (any, error) {
	if s.done {
		return nil, transport.ErrStreamAborted
	}
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.t.cfg.CallTimeout)
		defer cancel()
	}
	if s.early != nil {
		s.mc.unregister(s.id)
		return nil, s.earlyErr()
	}
	msg := wireMsg{Kind: kindCommit, ID: s.id, Seq: s.seq, From: s.from, Method: s.method, SID: s.sid}
	if err := s.mc.w.enqueueMsgCtx(ctx, msg); err != nil {
		s.mc.unregister(s.id)
		return nil, unreachable(s.to, err)
	}
	select {
	case r := <-s.ch:
		resp, err := s.resolveAck(r)
		if err == nil || !errors.Is(err, transport.ErrUnreachable) {
			s.done = true // settled: success, handler error, or stream failure
		}
		return resp, err
	case <-ctx.Done():
		s.mc.unregister(s.id)
		return nil, unreachable(s.to, ctx.Err())
	}
}

// Abort tears the transfer down: the receiver discards its staged chunks.
func (s *tcpStream) Abort(reason string) {
	if s.done {
		return
	}
	s.done = true
	s.mc.unregister(s.id)
	_ = s.mc.enqueueMsg(wireMsg{Kind: kindAbort, ID: s.id, From: s.from, Err: reason, SID: s.sid})
}

// streamRedialAttempts bounds the re-dials one Resume call makes before
// reporting the destination unreachable.
const streamRedialAttempts = 4

// Resume implements transport.Resumer: after a connection loss, re-dial the
// destination (bounded attempts, jittered exponential backoff), ask it for
// the transfer's high-water chunk mark, and re-attach the stream to the new
// connection. Returns the mark — the chunk sequence to continue from.
func (s *tcpStream) Resume(ctx context.Context) (int, error) {
	if s.done {
		return 0, transport.ErrStreamAborted
	}
	s.mc.unregister(s.id)
	backoff := s.t.cfg.RedialBackoff
	var lastErr error = transport.ErrUnreachable
	for attempt := 0; attempt < streamRedialAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(jitter(backoff)):
			case <-ctx.Done():
				return 0, unreachable(s.to, ctx.Err())
			}
			if backoff *= 2; backoff > s.t.cfg.RedialBackoffMax {
				backoff = s.t.cfg.RedialBackoffMax
			}
		}
		actx, cancel := context.WithTimeout(ctx, s.t.cfg.CallTimeout)
		deadline, _ := actx.Deadline()
		mc, err := s.t.grabConn(actx, s.to, deadline)
		if err != nil {
			cancel()
			lastErr = err
			continue
		}
		mark, err := mc.exchange(actx, wireMsg{Kind: kindStreamResume, From: s.from, Method: s.method, SID: s.sid})
		if err == nil && mark.Kind != kindResumeMark {
			err = fmt.Errorf("tcp: unexpected resume-mark reply kind %d", mark.Kind)
		}
		if err != nil {
			cancel()
			lastErr = err
			continue
		}
		id, ch, err := mc.register()
		cancel()
		if err != nil {
			lastErr = err
			continue
		}
		s.mc, s.id, s.ch = mc, id, ch
		s.seq = mark.Seq
		s.early = nil
		s.t.streamResumes.Add(1)
		return mark.Seq, nil
	}
	return 0, unreachable(s.to, lastErr)
}

// earlyErr converts a pre-commit receiver rejection into the caller error. A
// connection-level failure (the rejection is the connection dying, not the
// receiver refusing) leaves the stream resumable.
func (s *tcpStream) earlyErr() error {
	if _, err := s.resolveAck(*s.early); err != nil {
		if !errors.Is(err, transport.ErrUnreachable) {
			s.done = true
		}
		return err
	}
	s.done = true
	return transport.ErrStreamAborted // a success ack before commit is a protocol bug
}

// resolveAck interprets the terminal acknowledgment frame.
func (s *tcpStream) resolveAck(r pendingResp) (any, error) {
	if r.err != nil {
		var se *stageError
		if errors.As(r.err, &se) {
			return nil, se.err // local staging failure, not a fail-stop signal
		}
		return nil, unreachable(s.to, r.err)
	}
	if r.msg.Fail {
		return nil, &streamFailError{msg: r.msg.Err}
	}
	if r.msg.Err != "" {
		return nil, &RemoteError{Msg: r.msg.Err}
	}
	return transport.Decode(r.msg.Payload)
}

// streamFailError is a stream-protocol failure the receiver reported (chunk
// out of sequence, staging refused, commit count mismatch). It carries the
// ErrStreamAborted identity, and — like RemoteError — recovers registered
// wire sentinels from the reason text, so a receiver's staging-cap refusal
// stays errors.Is(err, transport.ErrStageOverflow) at the sender.
type streamFailError struct{ msg string }

func (e *streamFailError) Error() string {
	return fmt.Sprintf("%v: %s", transport.ErrStreamAborted, e.msg)
}

func (e *streamFailError) Is(target error) bool {
	return target == transport.ErrStreamAborted || transport.MatchWireError(e.msg, target)
}

// stageError is a DIAL-SIDE staging failure: this process could not stage a
// chunked response (in-memory cap exceeded, spill file unavailable). The
// connection and the peer are healthy — only this call fails — so waiters
// must surface the underlying typed error instead of dressing it as
// ErrUnreachable and tripping fail-stop suspicion on a live peer.
type stageError struct{ err error }

func (e *stageError) Error() string { return e.err.Error() }
func (e *stageError) Unwrap() error { return e.err }

// peerConns is the set of multiplexed connections to one destination.
type peerConns struct {
	mu      sync.Mutex
	conns   []*muxConn
	rr      int
	dialing bool
	waiters []chan struct{}

	// Dial backoff: after a failed dial the destination is not re-dialed
	// before nextDial (jittered exponential in failCnt); attempts inside the
	// window fail fast with the last dial error instead of hot-looping
	// against a dead peer under churn.
	failCnt     int
	nextDial    time.Time
	lastDialErr error
}

// pruneLocked drops dead connections. Callers hold pc.mu.
func (pc *peerConns) pruneLocked() {
	live := pc.conns[:0]
	for _, mc := range pc.conns {
		if !mc.isDead() {
			live = append(live, mc)
		}
	}
	pc.conns = live
}

// notifyLocked wakes goroutines waiting for a dial to finish.
func (pc *peerConns) notifyLocked() {
	for _, ch := range pc.waiters {
		close(ch)
	}
	pc.waiters = nil
}

// peerEntry returns the connection set for addr, creating it if needed.
func (t *Transport) peerEntry(addr transport.Addr) (*peerConns, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, transport.ErrClosed
	}
	pc := t.peers[addr]
	if pc == nil {
		pc = &peerConns{}
		t.peers[addr] = pc
	}
	return pc, nil
}

// grabConn returns a healthy multiplexed connection to addr, dialing when
// the destination has fewer than ConnsPerPeer and reusing round-robin
// otherwise. A connection idle past IdlePingAfter is ping-checked first.
func (t *Transport) grabConn(ctx context.Context, addr transport.Addr, deadline time.Time) (*muxConn, error) {
	for {
		pc, err := t.peerEntry(addr)
		if err != nil {
			return nil, err
		}
		pc.mu.Lock()
		pc.pruneLocked()
		if len(pc.conns) > 0 && (len(pc.conns) >= t.cfg.ConnsPerPeer || pc.dialing) {
			mc := pc.conns[pc.rr%len(pc.conns)]
			pc.rr++
			pc.mu.Unlock()
			if err := t.ensureHealthy(mc, pc); err != nil {
				continue // conn was dead; dial or pick another
			}
			return mc, nil
		}
		if pc.dialing {
			// First connection is being dialed; wait for it rather than
			// racing a second dial.
			ch := make(chan struct{})
			pc.waiters = append(pc.waiters, ch)
			pc.mu.Unlock()
			select {
			case <-ch:
				continue
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if len(pc.conns) == 0 && pc.failCnt > 0 && time.Now().Before(pc.nextDial) {
			// Inside the backoff window after a failed dial: fail fast with
			// the remembered cause rather than re-dialing a dead peer on
			// every call.
			err := pc.lastDialErr
			pc.mu.Unlock()
			return nil, fmt.Errorf("tcp: dial backoff (%d consecutive failures): %w", pc.failCnt, err)
		}
		pc.dialing = true
		pc.mu.Unlock()

		mc, err := t.dialConn(addr, deadline)
		pc.mu.Lock()
		pc.dialing = false
		pc.notifyLocked()
		if err != nil {
			pc.failCnt++
			step := t.cfg.RedialBackoff << (pc.failCnt - 1)
			if step <= 0 || step > t.cfg.RedialBackoffMax {
				step = t.cfg.RedialBackoffMax
			}
			pc.nextDial = time.Now().Add(jitter(step))
			pc.lastDialErr = err
			pc.mu.Unlock()
			return nil, err
		}
		pc.failCnt = 0
		pc.lastDialErr = nil
		pc.conns = append(pc.conns, mc)
		pc.mu.Unlock()
		// Close may have drained pc.conns between the dial and the append
		// above; re-checking after the append guarantees one side sees the
		// other (Close sets closed before draining), so no live connection
		// can be orphaned where Close's wg.Wait would hang on its readLoop.
		t.mu.Lock()
		closed := t.closed
		t.mu.Unlock()
		if closed {
			mc.fail(transport.ErrClosed)
			return nil, transport.ErrClosed
		}
		return mc, nil
	}
}

// dialConn establishes one multiplexed connection and starts its loops.
func (t *Transport) dialConn(addr transport.Addr, deadline time.Time) (*muxConn, error) {
	timeout := t.cfg.DialTimeout
	if until := time.Until(deadline); until < timeout {
		timeout = until
	}
	if timeout <= 0 {
		return nil, context.DeadlineExceeded
	}
	conn, err := net.DialTimeout("tcp", string(addr), timeout)
	if err != nil {
		return nil, err
	}
	if err := t.clientHandshake(conn); err != nil {
		conn.Close()
		if errors.Is(err, transport.ErrUnauthenticated) {
			t.handshakeRejects.Add(1)
		}
		return nil, err
	}
	mc := &muxConn{
		conn:     conn,
		w:        newBatchWriter(conn, t.cfg),
		pending:  make(map[uint64]chan pendingResp),
		maxStage: t.cfg.MaxStreamBytes,
		stager:   t.cfg.Stager,
	}
	mc.lastRead.Store(time.Now().UnixNano())
	mc.w.onError = mc.fail
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		return nil, transport.ErrClosed
	}
	t.wg.Add(2)
	t.mu.Unlock()
	go func() {
		defer t.wg.Done()
		mc.w.loop()
	}()
	go func() {
		defer t.wg.Done()
		mc.readLoop()
	}()
	return mc, nil
}

// ensureHealthy ping-checks mc when it has been silent past IdlePingAfter,
// failing it (and reporting an error so the caller re-grabs) when the ping
// gets no pong in time.
func (t *Transport) ensureHealthy(mc *muxConn, pc *peerConns) error {
	if mc.isDead() {
		return errors.New("tcp: connection is dead")
	}
	idle := time.Since(time.Unix(0, mc.lastRead.Load()))
	if idle < t.cfg.IdlePingAfter {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), t.cfg.PingTimeout)
	defer cancel()
	if _, err := mc.exchange(ctx, wireMsg{Kind: kindPing}); err != nil {
		mc.fail(fmt.Errorf("tcp: idle health check failed: %w", err))
		pc.mu.Lock()
		pc.pruneLocked()
		pc.mu.Unlock()
		return err
	}
	return nil
}

// pendingResp carries one response (or the connection's death) to a waiter.
type pendingResp struct {
	msg wireMsg
	err error
}

// muxConn is one dialed connection multiplexing many in-flight calls:
// requests are tagged with connection-scoped IDs and responses are matched
// back by ID, in whatever order the peer finishes them.
type muxConn struct {
	conn net.Conn
	w    *batchWriter

	mu      sync.Mutex
	pending map[uint64]chan pendingResp
	respBuf map[uint64]transport.ChunkStager // staged kindRespChunk payloads by request ID
	nextID  uint64
	dead    bool
	deadErr error

	maxStage int                     // in-memory cap on staged chunked-response bytes per request
	stager   transport.StagerFactory // same factory as the receive path, so the caps agree
	lastRead atomic.Int64            // UnixNano of the last inbound frame
}

func (c *muxConn) isDead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

// exchange sends one request frame and waits for the matching response. A
// context expiry abandons the request — the connection stays usable and a
// late response is dropped — while a connection failure resolves every
// outstanding exchange at once.
func (c *muxConn) exchange(ctx context.Context, msg wireMsg) (wireMsg, error) {
	id, ch, err := c.register()
	if err != nil {
		return wireMsg{}, err
	}
	msg.ID = id

	if err := c.enqueueMsg(msg); err != nil {
		c.unregister(id)
		return wireMsg{}, err
	}
	select {
	case r := <-ch:
		return r.msg, r.err
	case <-ctx.Done():
		c.unregister(id)
		return wireMsg{}, ctx.Err()
	}
}

// register allocates a request ID and its response channel without sending
// anything: streams register at open time so a receiver-side rejection can
// resolve the transfer even before its commit frame is queued.
func (c *muxConn) register() (uint64, chan pendingResp, error) {
	ch := make(chan pendingResp, 1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return 0, nil, c.deadErr
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	return id, ch, nil
}

func (c *muxConn) unregister(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	st := c.respBuf[id]
	delete(c.respBuf, id)
	c.mu.Unlock()
	if st != nil {
		st.Discard()
	}
}

// enqueueMsg encodes and queues one frame for the batched writer.
func (c *muxConn) enqueueMsg(m wireMsg) error {
	return c.w.enqueueMsg(m)
}

// readLoop delivers response frames to their waiting exchanges until the
// connection fails, then resolves everything still pending.
func (c *muxConn) readLoop() {
	for {
		raw, err := transport.ReadFrame(c.conn)
		if err != nil {
			c.fail(err)
			return
		}
		c.lastRead.Store(time.Now().UnixNano())
		var m wireMsg
		if err := decodeMsg(raw, &m); err != nil {
			c.fail(err)
			return
		}
		if m.Kind == kindRespChunk {
			// Stage one piece of a chunked acknowledgment through the same
			// stager factory the receive path uses, so the caps of the two
			// directions always agree: the default stager bounds the dialer's
			// memory at MaxStreamBytes and refuses further chunks with the
			// typed ErrStageOverflow; a disk-spilling stager lifts the cap.
			c.mu.Lock()
			ch, live := c.pending[m.ID]
			var stageErr error
			if live {
				if c.respBuf == nil {
					c.respBuf = make(map[uint64]transport.ChunkStager)
				}
				st := c.respBuf[m.ID]
				if st == nil {
					st = c.stager(int64(c.maxStage))
					c.respBuf[m.ID] = st
				}
				if stageErr = st.Append(m.Payload); stageErr != nil {
					st.Discard()
					delete(c.pending, m.ID)
					delete(c.respBuf, m.ID)
				}
			}
			c.mu.Unlock()
			if stageErr != nil {
				ch <- pendingResp{err: &stageError{err: fmt.Errorf("tcp: staging chunked response: %w", stageErr)}}
			}
			continue
		}
		c.mu.Lock()
		ch := c.pending[m.ID]
		staged := c.respBuf[m.ID]
		delete(c.pending, m.ID)
		delete(c.respBuf, m.ID)
		c.mu.Unlock()
		if ch == nil {
			if staged != nil {
				staged.Discard()
			}
			continue
		}
		if m.Kind == kindResp && m.Seq > 0 && m.Err == "" {
			var body []byte
			var err error
			if staged != nil {
				body, err = staged.Join(m.Seq)
			} else {
				body, err = transport.JoinChunks(nil, m.Seq)
			}
			if err != nil {
				ch <- pendingResp{err: err}
				continue
			}
			m.Payload = body
		} else if staged != nil {
			staged.Discard()
		}
		ch <- pendingResp{msg: m}
	}
}

// fail marks the connection dead, closes it, and resolves every in-flight
// exchange with err — the orderly-cancellation path a peer's Deregister (or
// a network fault) triggers on the dial side.
func (c *muxConn) fail(err error) {
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return
	}
	c.dead = true
	c.deadErr = err
	pend := c.pending
	staged := c.respBuf
	c.pending = nil
	c.respBuf = nil
	c.mu.Unlock()
	c.conn.Close()
	c.w.stop()
	for _, st := range staged {
		st.Discard()
	}
	for _, ch := range pend {
		ch <- pendingResp{err: err}
	}
}

// Deregister implements transport.Deregistrar: stop serving addr. Its
// accepted connections close, so every caller's in-flight exchange to it
// resolves promptly with ErrUnreachable — the same fail-stop signature
// simnet.Kill produces.
func (t *Transport) Deregister(addr transport.Addr) {
	t.mu.Lock()
	l := t.listeners[addr]
	delete(t.listeners, addr)
	t.mu.Unlock()
	if l != nil {
		l.kill()
	}
}

// Close implements transport.Transport: stop all listeners, fail every
// multiplexed connection, and wait for serving goroutines to drain.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	ls := make([]*listener, 0, len(t.listeners))
	for _, l := range t.listeners {
		ls = append(ls, l)
	}
	t.listeners = make(map[transport.Addr]*listener)
	ps := make([]*peerConns, 0, len(t.peers))
	for _, p := range t.peers {
		ps = append(ps, p)
	}
	t.peers = make(map[transport.Addr]*peerConns)
	t.mu.Unlock()

	for _, l := range ls {
		l.kill()
	}
	for _, pc := range ps {
		pc.mu.Lock()
		conns := append([]*muxConn(nil), pc.conns...)
		pc.conns = nil
		pc.mu.Unlock()
		for _, mc := range conns {
			mc.fail(transport.ErrClosed)
		}
	}
	t.wg.Wait()
	t.rsMu.Lock()
	parked := t.rstreams
	t.rstreams = make(map[string]*rstream)
	t.rsMu.Unlock()
	for _, e := range parked {
		e.mu.Lock()
		st := e.stager
		e.stager = nil
		e.mu.Unlock()
		if st != nil {
			st.Discard()
		}
	}
	return nil
}

// batchWriter coalesces queued frames into as few syscalls as possible: it
// keeps writing while frames are queued and flushes when the queue drains,
// when BatchBytes are buffered, or after BatchDelay at the latest.
type batchWriter struct {
	conn       net.Conn
	ch         chan []byte
	done       chan struct{}
	stopOnce   sync.Once
	failed     atomic.Bool
	batchBytes int
	batchDelay time.Duration
	writeWait  time.Duration
	onError    func(error) // optional: invoked once when the writer stops (write failure or stop)
}

func newBatchWriter(conn net.Conn, cfg Config) *batchWriter {
	return &batchWriter{
		conn:       conn,
		ch:         make(chan []byte, 256),
		done:       make(chan struct{}),
		batchBytes: cfg.BatchBytes,
		batchDelay: cfg.BatchDelay,
		writeWait:  2 * cfg.CallTimeout,
	}
}

// enqueueMsg encodes m and queues its frame, rejecting oversized messages
// with transport.ErrFrameTooLarge before they reach the wire.
func (w *batchWriter) enqueueMsg(m wireMsg) error {
	body, err := encodeMsg(m)
	if err != nil {
		return err
	}
	select {
	case w.ch <- body:
		return nil
	case <-w.done:
		return transport.ErrWriterStopped
	}
}

// enqueueMsgCtx is enqueueMsg bounded by ctx: stream chunks apply their
// per-chunk deadline here, so a stalled receiver fails the transfer instead
// of blocking the sender forever once the write queue backs up.
func (w *batchWriter) enqueueMsgCtx(ctx context.Context, m wireMsg) error {
	body, err := encodeMsg(m)
	if err != nil {
		return err
	}
	select {
	case w.ch <- body:
		return nil
	case <-w.done:
		return transport.ErrWriterStopped
	case <-ctx.Done():
		return ctx.Err()
	}
}

// stop terminates the writer loop. Queued frames not yet written never reach
// the wire, so the connection's pending calls must not wait out their
// deadlines: stopping fires onError (once, with the typed
// transport.ErrWriterStopped) exactly like a write failure, and the dial
// side's onError — muxConn.fail — resolves every in-flight exchange
// promptly.
func (w *batchWriter) stop() {
	w.fail(transport.ErrWriterStopped)
}

// fail stops the writer and reports err to onError exactly once. The flag
// flips before onError runs, so the re-entrant stop() that muxConn.fail
// issues on its own writer terminates instead of deadlocking.
func (w *batchWriter) fail(err error) {
	w.stopOnce.Do(func() { close(w.done) })
	if w.failed.CompareAndSwap(false, true) {
		if w.onError != nil {
			w.onError(err)
		}
	}
}

func (w *batchWriter) loop() {
	buf := bytes.NewBuffer(make([]byte, 0, w.batchBytes))
	var delay *time.Timer
	defer func() {
		if delay != nil {
			delay.Stop()
		}
	}()
	for {
		select {
		case body := <-w.ch:
			buf.Reset()
			if err := transport.WriteFrame(buf, body); err != nil {
				continue // size-checked at enqueue; defensive only
			}
			// Coalesce: keep appending queued frames until the queue drains,
			// the size threshold is hit, or the batch window closes.
			var window <-chan time.Time
			if w.batchDelay > 0 {
				if delay == nil {
					delay = time.NewTimer(w.batchDelay)
				} else {
					delay.Reset(w.batchDelay)
				}
				window = delay.C
			}
		coalesce:
			for buf.Len() < w.batchBytes {
				select {
				case more := <-w.ch:
					if err := transport.WriteFrame(buf, more); err != nil {
						continue
					}
				case <-window:
					break coalesce
				case <-w.done:
					break coalesce
				default:
					if window == nil {
						break coalesce
					}
					select {
					case more := <-w.ch:
						if err := transport.WriteFrame(buf, more); err != nil {
							continue
						}
					case <-window:
						break coalesce
					case <-w.done:
						break coalesce
					}
				}
			}
			if delay != nil && !delay.Stop() {
				select {
				case <-delay.C:
				default:
				}
			}
			_ = w.conn.SetWriteDeadline(time.Now().Add(w.writeWait))
			if _, err := w.conn.Write(buf.Bytes()); err != nil {
				w.fail(err)
				return
			}
			_ = w.conn.SetWriteDeadline(time.Time{})
			if buf.Cap() > 4*w.batchBytes {
				// An outsized state transfer grew the buffer (up to a whole
				// 16 MiB frame); drop the capacity back so long-lived
				// connections are sized for their typical batch, not their
				// largest ever.
				buf = bytes.NewBuffer(make([]byte, 0, w.batchBytes))
			}
		case <-w.done:
			return
		}
	}
}

// encodeMsg gob-encodes one wire message, enforcing the frame size limit
// with a typed error so callers can tell an oversized state transfer from a
// fail-stopped peer.
func encodeMsg(m wireMsg) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&m); err != nil {
		return nil, err
	}
	if buf.Len() > transport.MaxFrameSize {
		return nil, fmt.Errorf("%w: %s message of %d bytes", transport.ErrFrameTooLarge, m.Method, buf.Len())
	}
	return buf.Bytes(), nil
}

// decodeMsg parses one frame body into a wire message.
func decodeMsg(b []byte, m *wireMsg) error {
	return gob.NewDecoder(bytes.NewReader(b)).Decode(m)
}

// unreachable wraps a transport-level failure as ErrUnreachable, preserving
// the caller-visible fail-stop semantics of the simulated network.
// Authentication refusals keep their ErrUnauthenticated identity — the peer
// is alive, it just refuses us — so callers never mistake a key mismatch for
// a fail-stopped peer.
func unreachable(to transport.Addr, err error) error {
	if errors.Is(err, transport.ErrClosed) || errors.Is(err, transport.ErrUnauthenticated) {
		return err
	}
	return fmt.Errorf("%w: %s (%v)", transport.ErrUnreachable, to, err)
}

// jitter spreads a backoff delay uniformly over [d/2, d), so peers backing
// off from the same failure do not re-dial in lockstep.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(mrand.Int63n(int64(d/2)))
}
