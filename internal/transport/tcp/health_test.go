package tcp

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/transport"
)

// fakeServer is a raw TCP acceptor speaking the mux wire format directly, so
// tests can misbehave in ways a real Transport endpoint never would (answer
// then go silent without closing — the shape of a half-dead NAT'd peer).
type fakeServer struct {
	ln    net.Listener
	conns atomic.Int64
}

// start runs a fake peer. Connection 1 answers exactly one call and then
// reads silently forever (never closing); later connections behave.
func startFakeServer(t *testing.T) (*fakeServer, transport.Addr) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := &fakeServer{ln: ln}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			n := fs.conns.Add(1)
			go fs.serve(conn, n == 1)
		}
	}()
	return fs, transport.Addr(ln.Addr().String())
}

func (fs *fakeServer) serve(conn net.Conn, goSilent bool) {
	defer conn.Close()
	answered := 0
	for {
		raw, err := transport.ReadFrame(conn)
		if err != nil {
			return
		}
		var m wireMsg
		if err := decodeMsg(raw, &m); err != nil {
			return
		}
		if goSilent && answered >= 1 {
			continue // read and drop: alive at the TCP level, dead at the protocol level
		}
		var out wireMsg
		switch m.Kind {
		case kindPing:
			out = wireMsg{Kind: kindPong, ID: m.ID}
		case kindCall:
			payload, _ := transport.Encode(true)
			out = wireMsg{Kind: kindResp, ID: m.ID, Payload: payload}
			answered++
		default:
			continue
		}
		body, err := encodeMsg(out)
		if err != nil {
			return
		}
		if err := transport.WriteFrame(conn, body); err != nil {
			return
		}
	}
}

// A pooled connection that went silent while idle must be detected by the
// checkout-time ping and replaced, so the next call succeeds on a fresh
// connection instead of burning its whole deadline on the dead one.
func TestIdleConnHealthCheckReplacesDeadConn(t *testing.T) {
	fs, addr := startFakeServer(t)
	tr := New(Config{
		DialTimeout:   time.Second,
		CallTimeout:   10 * time.Second,
		ConnsPerPeer:  1,
		IdlePingAfter: 50 * time.Millisecond,
		PingTimeout:   200 * time.Millisecond,
	})
	t.Cleanup(func() { tr.Close() })

	// First call succeeds on connection 1, which then plays dead.
	if _, err := tr.Call(context.Background(), "", addr, "m", echoMsg{N: 1}); err != nil {
		t.Fatalf("first call: %v", err)
	}
	time.Sleep(100 * time.Millisecond) // cross the idle threshold

	// The checkout ping must fail on the silent connection and redial; the
	// call then succeeds on connection 2 well within the ping budget plus a
	// round trip — nowhere near the 10s call deadline.
	start := time.Now()
	if _, err := tr.Call(context.Background(), "", addr, "m", echoMsg{N: 2}); err != nil {
		t.Fatalf("call after idle: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("call after idle took %v; the dead idle conn must cost one ping, not the deadline", elapsed)
	}
	if n := fs.conns.Load(); n != 2 {
		t.Fatalf("fake server saw %d connections, want 2 (dead conn replaced)", n)
	}
}

// A healthy idle connection passes the checkout ping and is reused — the
// health check must not churn connections that are merely quiet.
func TestIdleConnHealthCheckKeepsHealthyConn(t *testing.T) {
	okh := func(transport.Addr, string, any) (any, error) { return true, nil }
	tr := New(Config{
		DialTimeout:   time.Second,
		CallTimeout:   5 * time.Second,
		ConnsPerPeer:  1,
		IdlePingAfter: 30 * time.Millisecond,
		PingTimeout:   time.Second,
	})
	t.Cleanup(func() { tr.Close() })
	a, _ := tr.Listen("127.0.0.1:0", okh)
	b, err := tr.Listen("127.0.0.1:0", okh)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Call(context.Background(), a, b, "m", echoMsg{}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond) // idle past the threshold
	if _, err := tr.Call(context.Background(), a, b, "m", echoMsg{}); err != nil {
		t.Fatalf("call after idle: %v", err)
	}
	if n := connCount(tr, b); n != 1 {
		t.Fatalf("connection count %d, want 1 (healthy idle conn must be reused)", n)
	}
}

// bigMsg is a state-transfer-shaped payload for frame boundary tests.
type bigMsg struct{ Data []byte }

func init() { transport.RegisterMessage(bigMsg{}) }

// A state transfer whose encoding exceeds MaxFrameSize must fail with the
// typed ErrFrameTooLarge — a permanent payload error, distinct from the
// ErrUnreachable fail-stop signal that would trigger pointless retries.
func TestOversizedCallFailsTyped(t *testing.T) {
	okh := func(transport.Addr, string, any) (any, error) { return true, nil }
	tr, a, b := newPair(t, okh, okh)

	_, err := tr.Call(context.Background(), a, b, "ds.mergeIn", bigMsg{Data: make([]byte, transport.MaxFrameSize+1)})
	if !errors.Is(err, transport.ErrFrameTooLarge) {
		t.Fatalf("oversized call: err = %v, want ErrFrameTooLarge", err)
	}
	if errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("oversized call reported ErrUnreachable: a payload bug must not read as a peer failure")
	}

	// A payload at the boundary still crosses: the limit applies to the
	// whole encoded message, so leave headroom for the envelope and header.
	under := bigMsg{Data: make([]byte, transport.MaxFrameSize-4096)}
	if _, err := tr.Call(context.Background(), a, b, "ds.mergeIn", under); err != nil {
		t.Fatalf("near-limit call: %v", err)
	}
}

// An oversized handler *response* to a plain small call chunks back as
// kindRespChunk frames and arrives whole: the answer to a tiny pull request
// is a whole range, so the response direction must be as unbounded as the
// streamed request direction.
func TestOversizedResponseChunksBack(t *testing.T) {
	if testing.Short() {
		t.Skip("moves >16 MiB through gob; exercised in the full suite")
	}
	const size = transport.MaxFrameSize + (1 << 20)
	huge := func(transport.Addr, string, any) (any, error) {
		return bigMsg{Data: make([]byte, size)}, nil
	}
	tr := New(Config{DialTimeout: time.Second, CallTimeout: 60 * time.Second})
	t.Cleanup(func() { tr.Close() })
	a, err0 := tr.Listen("127.0.0.1:0", huge)
	if err0 != nil {
		t.Fatal(err0)
	}
	b, err0 := tr.Listen("127.0.0.1:0", huge)
	if err0 != nil {
		t.Fatal(err0)
	}
	resp, err := tr.Call(context.Background(), a, b, "rep.pull", echoMsg{})
	if err != nil {
		t.Fatalf("oversized response: %v", err)
	}
	got, ok := resp.(bigMsg)
	if !ok {
		t.Fatalf("oversized response type %T", resp)
	}
	if len(got.Data) != size {
		t.Fatalf("oversized response truncated to %d bytes, want %d", len(got.Data), size)
	}
}
