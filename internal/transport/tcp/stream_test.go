package tcp

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/transport"
)

// streamMsg is a bulk-transfer-shaped payload for streaming tests.
type streamMsg struct{ Data []byte }

func init() { transport.RegisterMessage(streamMsg{}) }

// patterned returns n bytes with a position-dependent pattern, so truncated
// or reordered chunks corrupt the payload detectably.
func patterned(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*7 + i>>11)
	}
	return b
}

// A payload larger than MaxFrameSize crosses the wire as a chunked stream
// and the handler's equally outsized echo returns as a chunked ack: both
// directions of a bulk call are unbounded by the frame limit.
func TestBulkCallRoundTripsOversizedPayload(t *testing.T) {
	if testing.Short() {
		t.Skip("moves >32 MiB through gob; exercised in the full suite")
	}
	echo := func(_ transport.Addr, _ string, p any) (any, error) { return p, nil }
	tr := New(Config{DialTimeout: time.Second, CallTimeout: 60 * time.Second, ConnsPerPeer: 1})
	t.Cleanup(func() { tr.Close() })
	a, err := tr.Listen("127.0.0.1:0", echo)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.Listen("127.0.0.1:0", echo)
	if err != nil {
		t.Fatal(err)
	}

	want := patterned(transport.MaxFrameSize + (1 << 20))
	resp, err := transport.CallBulk(tr, context.Background(), a, b, "rep.push", streamMsg{Data: want})
	if err != nil {
		t.Fatalf("bulk call: %v", err)
	}
	got, ok := resp.(streamMsg)
	if !ok {
		t.Fatalf("bulk response type %T", resp)
	}
	if !bytes.Equal(got.Data, want) {
		t.Fatal("bulk payload corrupted in flight")
	}
}

// Chunk frames interleave with ordinary RPC frames on the one pooled
// connection: a plain call issued while a stream is open (chunks sent,
// commit withheld) completes immediately instead of queueing behind the
// transfer.
func TestStreamInterleavesWithCalls(t *testing.T) {
	var calls atomic.Int64
	h := func(_ transport.Addr, _ string, p any) (any, error) {
		calls.Add(1)
		return p, nil
	}
	tr := New(Config{DialTimeout: time.Second, CallTimeout: 10 * time.Second, ConnsPerPeer: 1})
	t.Cleanup(func() { tr.Close() })
	a, err := tr.Listen("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.Listen("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	st, err := tr.OpenStream(ctx, a, b, "rep.push")
	if err != nil {
		t.Fatal(err)
	}
	body, err := transport.Encode(streamMsg{Data: patterned(3 * st.MaxChunk())})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Chunk(ctx, body[:st.MaxChunk()]); err != nil {
		t.Fatal(err)
	}
	// The stream is mid-flight; a plain call on the same transport (and, with
	// ConnsPerPeer=1, the same connection) must still get through.
	if _, err := tr.Call(ctx, a, b, "ring.ping", int64(7)); err != nil {
		t.Fatalf("interleaved call: %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("interleaved call did not reach the handler (calls=%d)", calls.Load())
	}
	for off := st.MaxChunk(); off < len(body); off += st.MaxChunk() {
		end := off + st.MaxChunk()
		if end > len(body) {
			end = len(body)
		}
		if err := st.Chunk(ctx, body[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Commit(ctx); err != nil {
		t.Fatalf("commit after interleaving: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("handler invocations = %d, want 2 (one call, one committed stream)", calls.Load())
	}
}

// An aborted transfer never reaches the handler: the receiver discards its
// staged chunks, and the connection stays healthy for subsequent traffic.
func TestStreamAbortLeavesReceiverUntouched(t *testing.T) {
	var handled atomic.Int64
	h := func(_ transport.Addr, _ string, p any) (any, error) {
		handled.Add(1)
		return p, nil
	}
	tr := New(Config{DialTimeout: time.Second, CallTimeout: 10 * time.Second, ConnsPerPeer: 1})
	t.Cleanup(func() { tr.Close() })
	a, err := tr.Listen("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.Listen("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	st, err := tr.OpenStream(ctx, a, b, "rep.push")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := st.Chunk(ctx, patterned(1024)); err != nil {
			t.Fatal(err)
		}
	}
	st.Abort("test abort")
	if _, err := st.Commit(ctx); !errors.Is(err, transport.ErrStreamAborted) {
		t.Fatalf("commit after abort: err = %v, want ErrStreamAborted", err)
	}

	// The handler never saw the aborted transfer, and the connection still
	// carries ordinary calls.
	if _, err := tr.Call(ctx, a, b, "ring.ping", int64(1)); err != nil {
		t.Fatalf("call after abort: %v", err)
	}
	if handled.Load() != 1 {
		t.Fatalf("handler invocations = %d, want 1 (the aborted stream must not dispatch)", handled.Load())
	}
}

// A handler error on a committed stream comes back as a RemoteError, exactly
// like a plain call's, and does not read as a fail-stop.
func TestStreamHandlerErrorPropagates(t *testing.T) {
	boom := func(_ transport.Addr, _ string, _ any) (any, error) {
		return nil, errors.New("handler rejected the transfer")
	}
	tr := New(Config{DialTimeout: time.Second, CallTimeout: 10 * time.Second})
	t.Cleanup(func() { tr.Close() })
	a, err := tr.Listen("127.0.0.1:0", boom)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.Listen("127.0.0.1:0", boom)
	if err != nil {
		t.Fatal(err)
	}

	// Two chunks' worth, so CallBulk takes the stream path rather than the
	// single-frame fast path for small payloads.
	_, err = transport.CallBulk(tr, context.Background(), a, b, "rep.push", streamMsg{Data: patterned(2 * transport.DefaultChunkBytes)})
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("stream handler error: err = %v (%T), want RemoteError", err, err)
	}
	if errors.Is(err, transport.ErrUnreachable) {
		t.Fatal("handler error read as ErrUnreachable")
	}
}

// Deregistering the receiver mid-stream fails the sender's commit with the
// fail-stop signature instead of leaving it to dangle.
func TestStreamToDeregisteredPeerFails(t *testing.T) {
	h := func(_ transport.Addr, _ string, p any) (any, error) { return p, nil }
	tr := New(Config{DialTimeout: time.Second, CallTimeout: 5 * time.Second, ConnsPerPeer: 1})
	t.Cleanup(func() { tr.Close() })
	a, err := tr.Listen("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.Listen("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	st, err := tr.OpenStream(ctx, a, b, "rep.push")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Chunk(ctx, patterned(1024)); err != nil {
		t.Fatal(err)
	}
	tr.Deregister(b)
	cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	// The kill races the in-flight chunk; whichever of the remaining steps
	// observes the dead connection must report unreachable.
	err = st.Chunk(cctx, patterned(1024))
	if err == nil {
		_, err = st.Commit(cctx)
	}
	if err == nil {
		t.Fatal("stream to a deregistered peer succeeded")
	}
	if errors.Is(err, transport.ErrStreamAborted) {
		t.Fatalf("deregister surfaced as ErrStreamAborted (%v), want a transport failure", err)
	}
}
