package tcp

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/transport"
)

// stagerConfig is a transport tuned so staging limits trip quickly: small
// chunks force the stream path, and a small MaxStreamBytes makes the RAM cap
// reachable without moving gigabytes in a unit test.
func stagerConfig() Config {
	return Config{
		DialTimeout:    time.Second,
		CallTimeout:    20 * time.Second,
		ConnsPerPeer:   1,
		ChunkBytes:     32 << 10,
		MaxStreamBytes: 128 << 10,
	}
}

// A streamed request past MaxStreamBytes is refused by the receiver with the
// typed ErrStageOverflow, and the sentinel survives the wire: the sender can
// errors.Is it and act (raise the cap or configure disk staging).
func TestStreamOverflowIsTypedAtSender(t *testing.T) {
	echo := func(_ transport.Addr, _ string, p any) (any, error) { return p, nil }
	tr := New(stagerConfig())
	t.Cleanup(func() { tr.Close() })
	a, err := tr.Listen("127.0.0.1:0", echo)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.Listen("127.0.0.1:0", echo)
	if err != nil {
		t.Fatal(err)
	}

	_, err = transport.CallBulk(tr, context.Background(), a, b, "rep.push", streamMsg{Data: patterned(512 << 10)})
	if !errors.Is(err, transport.ErrStageOverflow) {
		t.Fatalf("oversized stream: err = %v, want ErrStageOverflow", err)
	}
	// The refusal is per-transfer: the connection still serves traffic, and a
	// transfer under the cap goes through.
	resp, err := transport.CallBulk(tr, context.Background(), a, b, "rep.push", streamMsg{Data: patterned(64 << 10)})
	if err != nil {
		t.Fatalf("in-cap stream after refusal: %v", err)
	}
	if got := resp.(streamMsg); len(got.Data) != 64<<10 {
		t.Fatalf("in-cap stream corrupted: %d bytes", len(got.Data))
	}
}

// A chunked RESPONSE past MaxStreamBytes is refused on the dial side with the
// same typed error: both directions of the staging cap agree.
func TestDialSideResponseOverflowIsTyped(t *testing.T) {
	big := func(_ transport.Addr, _ string, p any) (any, error) {
		return streamMsg{Data: patterned(512 << 10)}, nil
	}
	tr := New(stagerConfig())
	t.Cleanup(func() { tr.Close() })
	a, err := tr.Listen("127.0.0.1:0", big)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.Listen("127.0.0.1:0", big)
	if err != nil {
		t.Fatal(err)
	}

	_, err = tr.Call(context.Background(), a, b, "store.scan", echoMsg{N: 1})
	if !errors.Is(err, transport.ErrStageOverflow) {
		t.Fatalf("oversized response: err = %v, want ErrStageOverflow", err)
	}
}

// A disk-spilling stager from the storage engine lifts the cap on both
// directions at once: a transfer several times MaxStreamBytes round-trips —
// outbound as a streamed request staged to disk at the receiver, inbound as a
// chunked response staged to disk at the dialer.
func TestDiskStagerLiftsStreamCap(t *testing.T) {
	echo := func(_ transport.Addr, _ string, p any) (any, error) { return p, nil }
	cfg := stagerConfig()
	cfg.Stager = storage.DiskFactory{Dir: t.TempDir()}.NewStager
	tr := New(cfg)
	t.Cleanup(func() { tr.Close() })
	a, err := tr.Listen("127.0.0.1:0", echo)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.Listen("127.0.0.1:0", echo)
	if err != nil {
		t.Fatal(err)
	}

	want := patterned(1 << 20) // 8x the RAM cap
	resp, err := transport.CallBulk(tr, context.Background(), a, b, "rep.push", streamMsg{Data: want})
	if err != nil {
		t.Fatalf("disk-staged bulk call: %v", err)
	}
	got, ok := resp.(streamMsg)
	if !ok {
		t.Fatalf("bulk response type %T", resp)
	}
	if !bytes.Equal(got.Data, want) {
		t.Fatal("disk-staged payload corrupted in flight")
	}
}
