package tcp

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/transport"
)

// authPair builds two independent transports — each with its own cluster key
// configuration, like two OS processes — and one listening endpoint on each.
func authPair(t *testing.T, srvKey, cliKey []byte) (srv, cli *Transport, a, b transport.Addr) {
	t.Helper()
	echo := func(_ transport.Addr, _ string, p any) (any, error) { return p, nil }
	srv = New(Config{DialTimeout: time.Second, CallTimeout: 2 * time.Second, ClusterKey: srvKey})
	t.Cleanup(func() { srv.Close() })
	cli = New(Config{DialTimeout: time.Second, CallTimeout: 2 * time.Second, ClusterKey: cliKey})
	t.Cleanup(func() { cli.Close() })
	var err error
	if a, err = srv.Listen("127.0.0.1:0", echo); err != nil {
		t.Fatal(err)
	}
	if b, err = cli.Listen("127.0.0.1:0", echo); err != nil {
		t.Fatal(err)
	}
	return srv, cli, a, b
}

// Two transports sharing the cluster secret handshake transparently: calls
// round-trip as if authentication were off, and both ends report it enabled
// with no rejects.
func TestAuthenticatedCallRoundTrip(t *testing.T) {
	key := []byte("correct horse battery staple")
	srv, cli, a, b := authPair(t, key, key)

	resp, err := cli.Call(context.Background(), b, a, "ring.ping", int64(7))
	if err != nil {
		t.Fatalf("authenticated call: %v", err)
	}
	if got, ok := resp.(int64); !ok || got != 7 {
		t.Fatalf("authenticated call response = %v, want 7", resp)
	}
	for name, tr := range map[string]*Transport{"server": srv, "client": cli} {
		ws := tr.WireStats()
		if !ws.AuthEnabled {
			t.Errorf("%s reports AuthEnabled = false", name)
		}
		if ws.HandshakeRejects != 0 {
			t.Errorf("%s HandshakeRejects = %d, want 0", name, ws.HandshakeRejects)
		}
	}
}

// A dialer holding a different cluster secret is refused at the handshake:
// the caller sees the typed ErrUnauthenticated (not a fail-stop), and the
// server counts the reject.
func TestWrongClusterKeyRejected(t *testing.T) {
	srv, cli, a, b := authPair(t, []byte("the real secret"), []byte("an impostor's guess"))

	_, err := cli.Call(context.Background(), b, a, "ring.ping", int64(1))
	if !errors.Is(err, transport.ErrUnauthenticated) {
		t.Fatalf("wrong-key call: err = %v, want ErrUnauthenticated", err)
	}
	if errors.Is(err, transport.ErrClosed) {
		t.Fatalf("wrong-key call read as ErrClosed: %v", err)
	}
	if got := cli.WireStats().HandshakeRejects; got < 1 {
		t.Fatalf("client HandshakeRejects = %d, want >= 1", got)
	}
	// The server observes the abandoned handshake on its own goroutine,
	// shortly after the dialer's error returns.
	deadline := time.Now().Add(2 * time.Second)
	for srv.WireStats().HandshakeRejects == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := srv.WireStats().HandshakeRejects; got < 1 {
		t.Fatalf("server HandshakeRejects = %d, want >= 1", got)
	}
}

// A dialer with no cluster key at all cannot exchange a single RPC with an
// authenticated server: its first frame is not a handshake hello, so the
// server rejects and hangs up before dispatching anything.
func TestPlainDialerRejectedByAuthenticatedServer(t *testing.T) {
	var served bool
	srv := New(Config{DialTimeout: time.Second, CallTimeout: 2 * time.Second, ClusterKey: []byte("secret")})
	t.Cleanup(func() { srv.Close() })
	a, err := srv.Listen("127.0.0.1:0", func(_ transport.Addr, _ string, p any) (any, error) {
		served = true
		return p, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	cli := New(Config{DialTimeout: time.Second, CallTimeout: 2 * time.Second})
	t.Cleanup(func() { cli.Close() })
	b, err := cli.Listen("127.0.0.1:0", func(_ transport.Addr, _ string, p any) (any, error) { return p, nil })
	if err != nil {
		t.Fatal(err)
	}

	if _, err := cli.Call(context.Background(), b, a, "ring.ping", int64(1)); err == nil {
		t.Fatal("unauthenticated call to an authenticated server succeeded")
	}
	if served {
		t.Fatal("handler ran for an unauthenticated connection")
	}
	if got := srv.WireStats().HandshakeRejects; got < 1 {
		t.Fatalf("server HandshakeRejects = %d, want >= 1", got)
	}
}

// The inverse misconfiguration — an auth-expecting dialer against a server
// with no cluster key — fails loudly with the typed error instead of hanging:
// the server recognizes the stray hello and answers with a reject.
func TestKeyedDialerRejectedByPlainServer(t *testing.T) {
	srv, cli, a, b := authPair(t, nil, []byte("secret"))

	_, err := cli.Call(context.Background(), b, a, "ring.ping", int64(1))
	if !errors.Is(err, transport.ErrUnauthenticated) {
		t.Fatalf("keyed call to plain server: err = %v, want ErrUnauthenticated", err)
	}
	if srv.WireStats().AuthEnabled {
		t.Fatal("plain server reports AuthEnabled = true")
	}
}
