package transport

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strings"
	"sync"
)

// The wire codec: a registry of every message type that crosses the
// transport boundary, and a self-describing envelope encoding built on gob.
//
// Every RPC payload and response type must be registered (each protocol
// package registers its wire types in an init function). The envelope holds
// the value in an interface field, so gob writes the concrete type name into
// the stream and decoding recovers the original dynamic type without the
// receiver knowing the method's schema — the codec is shared by every method
// of every layer.
//
// Encoding is also how by-reference sharing is flushed out: a payload that
// round-trips through Encode/Decode is a deep copy, exactly what crossing a
// process boundary produces. simnet's StrictSerialization mode forces every
// message through this round trip so in-process tests catch unregistered or
// unencodable payloads before they break the TCP transport.

// envelope wraps a payload so gob records its concrete type.
type envelope struct {
	V any
}

var (
	regMu      sync.Mutex
	registered []any // sample values, in registration order
)

// RegisterMessage registers the concrete type of sample with the wire codec.
// Call it from an init function once per payload/response type. Registering
// the same type twice is a no-op; registering two different types with the
// same name panics (inherited from gob).
func RegisterMessage(sample any) {
	gob.Register(sample)
	regMu.Lock()
	defer regMu.Unlock()
	for _, prev := range registered {
		if fmt.Sprintf("%T", prev) == fmt.Sprintf("%T", sample) {
			return
		}
	}
	registered = append(registered, sample)
}

// RegisteredMessages returns one sample value per registered message type,
// in registration order. Tests use it to round-trip every wire type.
func RegisteredMessages() []any {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]any, len(registered))
	copy(out, registered)
	return out
}

var (
	wireErrMu  sync.Mutex
	wireErrors []error // sentinel errors recoverable from remote error text
)

// RegisterWireError registers a sentinel error that protocol handlers return
// across the wire. A handler error cannot keep its concrete Go identity over
// a real network hop — it arrives as message text — so transports that carry
// handler errors as text (the TCP transport's RemoteError) consult this
// registry: a remote error whose text contains a registered sentinel's text
// matches that sentinel under errors.Is. Register only sentinels whose text
// is distinctive enough to act as an identity (the package-prefixed
// "datastore: ..." convention is).
func RegisterWireError(sentinel error) {
	if sentinel == nil || sentinel.Error() == "" {
		panic("transport: cannot register a nil or empty wire error")
	}
	wireErrMu.Lock()
	defer wireErrMu.Unlock()
	for _, prev := range wireErrors {
		if prev == sentinel {
			return
		}
	}
	wireErrors = append(wireErrors, sentinel)
}

// MatchWireError reports whether msg — the text of a handler error that
// crossed the wire — carries a registered sentinel, and target is that
// sentinel. Transports use it to implement errors.Is on their remote error
// types, so callers can errors.Is(err, sentinel) regardless of substrate.
func MatchWireError(msg string, target error) bool {
	if target == nil {
		return false
	}
	wireErrMu.Lock()
	defer wireErrMu.Unlock()
	for _, s := range wireErrors {
		if s == target {
			return strings.Contains(msg, s.Error())
		}
	}
	return false
}

// Encode serializes a payload (which may be nil) into a self-describing byte
// stream. It fails if the payload's concrete type is not registered or holds
// unencodable fields — the errors StrictSerialization exists to surface.
func Encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&envelope{V: v}); err != nil {
		return nil, fmt.Errorf("transport: encode %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

// Decode recovers the payload from an Encode stream.
func Decode(b []byte) (any, error) {
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&env); err != nil {
		return nil, fmt.Errorf("transport: decode: %w", err)
	}
	return env.V, nil
}

// RoundTrip encodes and immediately decodes a payload, returning the deep
// copy a real network hop would produce.
func RoundTrip(v any) (any, error) {
	b, err := Encode(v)
	if err != nil {
		return nil, err
	}
	return Decode(b)
}

func init() {
	// Predeclared types that travel as bare payloads or responses (e.g. the
	// `true` acknowledgments and integer level indices). Named protocol types
	// are registered by the packages that own them.
	RegisterMessage(false)
	RegisterMessage(int(0))
	RegisterMessage(int64(0))
	RegisterMessage(uint64(0))
	RegisterMessage("")
}
