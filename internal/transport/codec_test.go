package transport_test

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/transport"

	// Importing the protocol packages runs their wire-type registrations,
	// so RegisteredMessages covers every payload/response in the system.
	_ "repro/internal/core"
	_ "repro/internal/datastore"
	_ "repro/internal/replication"
	_ "repro/internal/ring"
	_ "repro/internal/router"
)

// Every registered message type must survive an encode/decode round trip
// with its concrete type and value intact — the contract the TCP transport
// and simnet's StrictSerialization mode rely on.
func TestRegistryRoundTripsEveryMessageType(t *testing.T) {
	msgs := transport.RegisteredMessages()
	if len(msgs) < 25 {
		t.Fatalf("only %d registered message types; expected the full protocol surface (ring, datastore, replication, router, core)", len(msgs))
	}
	for _, sample := range msgs {
		got, err := transport.RoundTrip(sample)
		if err != nil {
			t.Errorf("%T: round trip failed: %v", sample, err)
			continue
		}
		if reflect.TypeOf(got) != reflect.TypeOf(sample) {
			t.Errorf("%T: decoded as %T", sample, got)
			continue
		}
		if !reflect.DeepEqual(got, sample) {
			t.Errorf("%T: decoded value %#v != original %#v", sample, got, sample)
		}
	}
	t.Logf("round-tripped %d registered message types", len(msgs))
}

func TestRoundTripNilPayload(t *testing.T) {
	got, err := transport.RoundTrip(nil)
	if err != nil {
		t.Fatalf("nil payload: %v", err)
	}
	if got != nil {
		t.Fatalf("nil payload decoded as %#v", got)
	}
}

func TestRoundTripIsDeepCopy(t *testing.T) {
	type unreg struct{ Xs []int }
	// A registered type holding a slice must come back as a distinct copy.
	transport.RegisterMessage(unreg{})
	orig := unreg{Xs: []int{1, 2, 3}}
	got, err := transport.RoundTrip(orig)
	if err != nil {
		t.Fatal(err)
	}
	copy := got.(unreg)
	copy.Xs[0] = 99
	if orig.Xs[0] != 1 {
		t.Fatal("decoded value shares backing storage with the original")
	}
}

func TestEncodeRejectsUnregisteredType(t *testing.T) {
	type neverRegistered struct{ A int }
	if _, err := transport.Encode(neverRegistered{A: 1}); err == nil {
		t.Fatal("encoding an unregistered type succeeded; the codec must reject it")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("hello"), bytes.Repeat([]byte{0xAB}, 1<<16)}
	for _, p := range payloads {
		if err := transport.WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range payloads {
		got, err := transport.ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
}

func TestFrameRejectsOversizedLength(t *testing.T) {
	// A corrupt length prefix beyond MaxFrameSize must not allocate.
	buf := bytes.NewBuffer([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := transport.ReadFrame(buf); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestWireErrorRegistry(t *testing.T) {
	sentinel := errors.New("codectest: fenced off")
	other := errors.New("codectest: never registered")
	transport.RegisterWireError(sentinel)
	transport.RegisterWireError(sentinel) // duplicate registration is a no-op

	if !transport.MatchWireError("handler failed: codectest: fenced off (epoch 3)", sentinel) {
		t.Error("registered sentinel not matched in remote text")
	}
	if transport.MatchWireError("handler failed: codectest: fenced off", other) {
		t.Error("unregistered sentinel matched")
	}
	if transport.MatchWireError("some unrelated failure", sentinel) {
		t.Error("sentinel matched text that does not contain it")
	}
	if transport.MatchWireError("anything", nil) {
		t.Error("nil target matched")
	}
}
