package transport

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Length-prefixed framing for stream transports: each frame is a 4-byte
// big-endian length followed by that many payload bytes. Frames carry
// Encode'd envelopes, so the stream is a sequence of self-describing
// messages.

// MaxFrameSize bounds one frame (16 MiB); a peer sending a larger length
// prefix is corrupt or hostile and the connection is abandoned.
const MaxFrameSize = 16 << 20

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("%w: frame of %d bytes", ErrFrameTooLarge, len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("%w: frame length %d", ErrFrameTooLarge, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
