package transport

import (
	"fmt"
	"sync"
)

// Mux dispatches incoming requests for one peer to per-method handlers, so
// the ring, data store, replication and router layers of a peer can share a
// single transport endpoint, mirroring how the indexing framework stacks
// components on one process (Figure 1 of the paper).
type Mux struct {
	mu       sync.RWMutex
	handlers map[string]Handler
}

// NewMux returns an empty dispatcher.
func NewMux() *Mux {
	return &Mux{handlers: make(map[string]Handler)}
}

// Handle registers h for the exact method name. Handlers may be replaced; a
// nil h removes the registration.
func (m *Mux) Handle(method string, h Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if h == nil {
		delete(m.handlers, method)
		return
	}
	m.handlers[method] = h
}

// Dispatch is the transport Handler for the peer owning this mux.
func (m *Mux) Dispatch(from Addr, method string, payload any) (any, error) {
	m.mu.RLock()
	h := m.handlers[method]
	m.mu.RUnlock()
	if h == nil {
		return nil, fmt.Errorf("transport: no handler for method %q", method)
	}
	return h(from, method, payload)
}
