// Package auth provides the cryptographic identity layer: per-peer ed25519
// keypairs, signatures over range advertisements, and the primitives the TCP
// transport's connection handshake is built from.
//
// The trust model is deliberately small (see ARCHITECTURE.md, "Trust
// boundary"). A shared cluster secret gates membership: the connection
// handshake proves both ends hold it, so a process without the secret cannot
// exchange a single RPC with the cluster. Ed25519 keypairs give each peer a
// stable identity: range adverts are signed over (owner, range, epoch), and
// receivers pin the first key seen for an owner address
// (trust-on-first-use), so a peer that *is* in the cluster still cannot
// forge a higher-epoch advert in another owner's name and depose it.
package auth

import (
	"bytes"
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/keyspace"
	"repro/internal/transport"
)

// ErrBadSignature reports an advert whose signature is missing, invalid, or
// made with a key that does not match the one pinned for its claimed owner.
// Registered as a wire error so receivers can reject signed pushes with a
// typed error the sender recovers with errors.Is across TCP.
var ErrBadSignature = errors.New("auth: bad advert signature")

func init() {
	transport.RegisterWireError(ErrBadSignature)
}

// identityFile is the name of the persisted key seed under a peer's data
// directory. The 32-byte ed25519 seed is stored raw, mode 0600.
const identityFile = "identity.ed25519"

// Identity is one peer's ed25519 keypair. The zero value is unusable; create
// with NewIdentity (ephemeral) or LoadOrCreate (persisted in a data dir).
type Identity struct {
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// NewIdentity generates a fresh ephemeral keypair.
func NewIdentity() (*Identity, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("auth: generate identity: %w", err)
	}
	return &Identity{pub: pub, priv: priv}, nil
}

// LoadOrCreate returns the identity persisted under dir, generating and
// persisting one on first use. A peer restarted with the same -data-dir keeps
// its public key, so pins other peers hold for it stay valid across crashes.
func LoadOrCreate(dir string) (*Identity, error) {
	path := filepath.Join(dir, identityFile)
	seed, err := os.ReadFile(path)
	switch {
	case err == nil:
		if len(seed) != ed25519.SeedSize {
			return nil, fmt.Errorf("auth: %s: corrupt seed (%d bytes, want %d)", path, len(seed), ed25519.SeedSize)
		}
		priv := ed25519.NewKeyFromSeed(seed)
		return &Identity{pub: priv.Public().(ed25519.PublicKey), priv: priv}, nil
	case os.IsNotExist(err):
		id, err := NewIdentity()
		if err != nil {
			return nil, err
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("auth: persist identity: %w", err)
		}
		if err := os.WriteFile(path, id.priv.Seed(), 0o600); err != nil {
			return nil, fmt.Errorf("auth: persist identity: %w", err)
		}
		return id, nil
	default:
		return nil, fmt.Errorf("auth: load identity: %w", err)
	}
}

// Public returns the identity's public key.
func (id *Identity) Public() ed25519.PublicKey { return id.pub }

// Sign signs an arbitrary message with the identity's private key.
func (id *Identity) Sign(msg []byte) []byte { return ed25519.Sign(id.priv, msg) }

// AdvertSig is the detached signature carried by a range advertisement:
// the signer's public key and its ed25519 signature over the canonical
// advert bytes. The zero value means "unsigned".
type AdvertSig struct {
	Key []byte
	Sig []byte
}

// Present reports whether the advert carries a signature at all.
func (s AdvertSig) Present() bool { return len(s.Sig) > 0 }

// advertBytes is the canonical byte string an advert signature covers:
// a domain label, the claimed owner address, the range bounds, and the
// epoch. Length-prefixing the owner keeps the encoding injective.
func advertBytes(owner string, lo, hi keyspace.Key, epoch uint64) []byte {
	buf := make([]byte, 0, 16+len(owner)+8+24)
	buf = append(buf, "pepper-advert1\x00"...)
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(owner)))
	buf = append(buf, n[:]...)
	buf = append(buf, owner...)
	binary.BigEndian.PutUint64(n[:], uint64(lo))
	buf = append(buf, n[:]...)
	binary.BigEndian.PutUint64(n[:], uint64(hi))
	buf = append(buf, n[:]...)
	binary.BigEndian.PutUint64(n[:], epoch)
	buf = append(buf, n[:]...)
	return buf
}

// SignAdvert signs a range advertisement (owner, [lo, hi], epoch).
func (id *Identity) SignAdvert(owner string, lo, hi keyspace.Key, epoch uint64) AdvertSig {
	return AdvertSig{
		Key: append([]byte(nil), id.pub...),
		Sig: id.Sign(advertBytes(owner, lo, hi, epoch)),
	}
}

// Keyring verifies advert signatures and pins owner→key bindings on first
// use. Safe for concurrent use.
type Keyring struct {
	mu      sync.Mutex
	pins    map[string][]byte
	rejects uint64
}

// NewKeyring returns an empty keyring.
func NewKeyring() *Keyring {
	return &Keyring{pins: make(map[string][]byte)}
}

// VerifyAdvert checks sig over (owner, [lo, hi], epoch). A valid signature
// from a previously unseen owner pins that owner to the signing key; a valid
// signature under a DIFFERENT key than the pinned one is rejected — that is
// the forged-advert case: a cluster member signing a claim in another
// owner's name. Returns nil on success, ErrBadSignature (wrapped with
// detail) otherwise.
func (k *Keyring) VerifyAdvert(owner string, lo, hi keyspace.Key, epoch uint64, sig AdvertSig) error {
	fail := func(why string) error {
		k.mu.Lock()
		k.rejects++
		k.mu.Unlock()
		return fmt.Errorf("%w: %s (owner %s epoch %d)", ErrBadSignature, why, owner, epoch)
	}
	if !sig.Present() {
		return fail("unsigned advert")
	}
	if len(sig.Key) != ed25519.PublicKeySize {
		return fail("malformed public key")
	}
	if !ed25519.Verify(ed25519.PublicKey(sig.Key), advertBytes(owner, lo, hi, epoch), sig.Sig) {
		return fail("signature does not verify")
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if pinned, ok := k.pins[owner]; ok {
		if !bytes.Equal(pinned, sig.Key) {
			k.rejects++
			return fmt.Errorf("%w: key does not match the one pinned for owner %s (epoch %d)", ErrBadSignature, owner, epoch)
		}
		return nil
	}
	k.pins[owner] = append([]byte(nil), sig.Key...)
	return nil
}

// Pin records an owner→key binding directly (a peer pins its own identity so
// nobody else can claim its address first).
func (k *Keyring) Pin(owner string, key []byte) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if _, ok := k.pins[owner]; !ok {
		k.pins[owner] = append([]byte(nil), key...)
	}
}

// Rejects returns the number of adverts this keyring has rejected.
func (k *Keyring) Rejects() uint64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.rejects
}

// LoadClusterKey reads the shared cluster secret from a file. Surrounding
// whitespace is trimmed so shell-generated key files (trailing newline) work;
// the remaining bytes are the secret verbatim.
func LoadClusterKey(path string) ([]byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("auth: cluster key: %w", err)
	}
	key := []byte(strings.TrimSpace(string(b)))
	if len(key) == 0 {
		return nil, fmt.Errorf("auth: cluster key %s is empty", path)
	}
	return key, nil
}

// Handshake primitives. The TCP transport runs a two-round-trip mutual
// challenge–response on every new connection: each side contributes a fresh
// nonce and its public key, and each side proves (a) possession of the
// shared cluster secret with an HMAC over the transcript and (b) possession
// of its identity's private key with an ed25519 signature over the same
// transcript, role-labelled so a proof cannot be reflected back.

// NonceSize is the size of each side's handshake nonce.
const NonceSize = 32

// NewNonce returns a fresh random handshake nonce.
func NewNonce() ([]byte, error) {
	n := make([]byte, NonceSize)
	if _, err := rand.Read(n); err != nil {
		return nil, fmt.Errorf("auth: nonce: %w", err)
	}
	return n, nil
}

// HandshakeTranscript binds both nonces and both public keys into the byte
// string all handshake proofs cover.
func HandshakeTranscript(dialerNonce, serverNonce, dialerPub, serverPub []byte) []byte {
	buf := make([]byte, 0, 16+len(dialerNonce)+len(serverNonce)+len(dialerPub)+len(serverPub))
	buf = append(buf, "pepper-hs1\x00"...)
	buf = append(buf, dialerNonce...)
	buf = append(buf, serverNonce...)
	buf = append(buf, dialerPub...)
	buf = append(buf, serverPub...)
	return buf
}

// HandshakeMAC proves possession of the cluster secret over a transcript,
// labelled by role ("cli" or "srv") so the two directions are distinct.
func HandshakeMAC(clusterKey []byte, role string, transcript []byte) []byte {
	m := hmac.New(sha256.New, clusterKey)
	m.Write([]byte(role))
	m.Write([]byte{0})
	m.Write(transcript)
	return m.Sum(nil)
}

// CheckHandshakeMAC verifies a role-labelled transcript MAC in constant
// time.
func CheckHandshakeMAC(clusterKey []byte, role string, transcript, mac []byte) bool {
	return hmac.Equal(HandshakeMAC(clusterKey, role, transcript), mac)
}

// SignTranscript proves possession of the identity key over a transcript,
// role-labelled like the MAC.
func (id *Identity) SignTranscript(role string, transcript []byte) []byte {
	return id.Sign(append([]byte(role+"\x00"), transcript...))
}

// CheckTranscriptSig verifies a role-labelled transcript signature.
func CheckTranscriptSig(pub []byte, role string, transcript, sig []byte) bool {
	if len(pub) != ed25519.PublicKeySize {
		return false
	}
	return ed25519.Verify(ed25519.PublicKey(pub), append([]byte(role+"\x00"), transcript...), sig)
}
