package auth

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestSignVerifyAdvert(t *testing.T) {
	id, err := NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	kr := NewKeyring()
	sig := id.SignAdvert("peer-1", 100, 200, 7)
	if err := kr.VerifyAdvert("peer-1", 100, 200, 7, sig); err != nil {
		t.Fatalf("valid advert rejected: %v", err)
	}
	// Any field change invalidates the signature.
	if err := kr.VerifyAdvert("peer-1", 100, 200, 8, sig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered epoch accepted: %v", err)
	}
	if err := kr.VerifyAdvert("peer-1", 100, 201, 7, sig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered range accepted: %v", err)
	}
	if err := kr.VerifyAdvert("peer-2", 100, 200, 7, sig); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered owner accepted: %v", err)
	}
	if err := kr.VerifyAdvert("peer-1", 100, 200, 7, AdvertSig{}); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("unsigned advert accepted: %v", err)
	}
	if kr.Rejects() != 4 {
		t.Fatalf("rejects = %d, want 4", kr.Rejects())
	}
}

func TestKeyringPinsFirstKey(t *testing.T) {
	honest, _ := NewIdentity()
	forger, _ := NewIdentity()
	kr := NewKeyring()
	if err := kr.VerifyAdvert("victim", 0, 500, 3, honest.SignAdvert("victim", 0, 500, 3)); err != nil {
		t.Fatal(err)
	}
	// A correctly-signed advert in the victim's name under a different key —
	// the forged higher-epoch advert — must be rejected.
	err := kr.VerifyAdvert("victim", 0, 500, 99, forger.SignAdvert("victim", 0, 500, 99))
	if !errors.Is(err, ErrBadSignature) {
		t.Fatalf("forged advert accepted: %v", err)
	}
	// The honest owner keeps working.
	if err := kr.VerifyAdvert("victim", 0, 500, 4, honest.SignAdvert("victim", 0, 500, 4)); err != nil {
		t.Fatalf("honest advert rejected after forgery attempt: %v", err)
	}
}

func TestLoadOrCreatePersists(t *testing.T) {
	dir := t.TempDir()
	a, err := LoadOrCreate(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadOrCreate(dir)
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Public()) != string(b.Public()) {
		t.Fatal("reloaded identity has a different public key")
	}
	info, err := os.Stat(filepath.Join(dir, identityFile))
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o600 {
		t.Fatalf("identity file mode = %v, want 0600", info.Mode().Perm())
	}
}

func TestHandshakePrimitives(t *testing.T) {
	cli, _ := NewIdentity()
	srv, _ := NewIdentity()
	dn, _ := NewNonce()
	sn, _ := NewNonce()
	key := []byte("cluster-secret")
	tr := HandshakeTranscript(dn, sn, cli.Public(), srv.Public())

	mac := HandshakeMAC(key, "srv", tr)
	if !CheckHandshakeMAC(key, "srv", tr, mac) {
		t.Fatal("valid MAC rejected")
	}
	if CheckHandshakeMAC([]byte("wrong"), "srv", tr, mac) {
		t.Fatal("MAC verified under the wrong cluster key")
	}
	if CheckHandshakeMAC(key, "cli", tr, mac) {
		t.Fatal("MAC verified under the wrong role label (reflection)")
	}

	sig := srv.SignTranscript("srv", tr)
	if !CheckTranscriptSig(srv.Public(), "srv", tr, sig) {
		t.Fatal("valid transcript signature rejected")
	}
	if CheckTranscriptSig(srv.Public(), "cli", tr, sig) {
		t.Fatal("transcript signature verified under the wrong role (reflection)")
	}
	if CheckTranscriptSig(cli.Public(), "srv", tr, sig) {
		t.Fatal("transcript signature verified under the wrong key")
	}
}

func TestLoadClusterKey(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cluster.key")
	if err := os.WriteFile(path, []byte("  s3cret\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	key, err := LoadClusterKey(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(key) != "s3cret" {
		t.Fatalf("key = %q, want trimmed %q", key, "s3cret")
	}
	if err := os.WriteFile(path, []byte("\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadClusterKey(path); err == nil {
		t.Fatal("empty key file accepted")
	}
}
