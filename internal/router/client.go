package router

import (
	"context"
	"fmt"

	"repro/internal/keyspace"
	"repro/internal/ring"
	"repro/internal/transport"
)

// Hop is the exported form of one greedy routing step, for dial-side callers
// outside the cluster (internal/client). It mirrors nextHopResp: when the
// answering peer owns the key it reports the ownership facts a route cache
// needs (range, epoch, successor chain); otherwise it names the farthest
// known peer that does not pass the key.
type Hop struct {
	Owner bool           // the answering peer owns the key
	Range keyspace.Range // when Owner: its responsibility range
	Epoch uint64         // when Owner: the range's ownership epoch
	Chain []ring.Node    // when Owner: its ring successors (replica holders)
	Next  ring.Node      // otherwise: where the descent continues
	Valid bool           // Next holds a usable peer
}

// ClientNextHop asks the peer at to for its next-hop answer for key, sent
// from an arbitrary dial-side address. The answering peer runs the same
// handler a peer-issued descent does — ownership is decided by the target's
// own range, so a stale cache entry costs the client extra hops, never a
// wrong answer.
func ClientNextHop(ctx context.Context, net transport.Transport, from, to transport.Addr, key keyspace.Key) (Hop, error) {
	resp, err := net.Call(ctx, from, to, methodNextHop, key)
	if err != nil {
		return Hop{}, err
	}
	nh, ok := resp.(nextHopResp)
	if !ok {
		return Hop{}, fmt.Errorf("router: bad next-hop response %T", resp)
	}
	return Hop{Owner: nh.Owner, Range: nh.Range, Epoch: nh.Epoch, Chain: nh.Chain, Next: nh.Next, Valid: nh.Valid}, nil
}
