package router

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/keyspace"
	"repro/internal/transport"
)

// waitStabilized blocks until every ring peer reports a stabilized successor.
func (h *rtHarness) waitStabilized(t *testing.T) {
	t.Helper()
	rtWait(t, 5*time.Second, "stabilized successors", func() bool {
		for _, rp := range h.rings {
			if _, ok := rp.FirstStabilizedSuccessor(); !ok {
				return false
			}
		}
		return true
	})
}

func TestFindOwnerCachedEntryResolvesInOneHop(t *testing.T) {
	h := newRTHarness(t, 12, Config{DisableAutoRefresh: true, CallTimeout: 40 * time.Millisecond, MaxHops: 64})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	h.waitStabilized(t)
	h.refreshAll(5)

	const key = keyspace.Key(750)
	owner, coldHops, err := h.routers[0].FindOwner(ctx, key)
	if err != nil {
		t.Fatalf("cold FindOwner: %v", err)
	}
	if want := h.expectOwner(key); owner != want {
		t.Fatalf("cold FindOwner = %s, want %s", owner, want)
	}
	if coldHops < 1 {
		t.Fatalf("cold lookup took %d hops; expected a descent", coldHops)
	}

	owner, warmHops, err := h.routers[0].FindOwner(ctx, key)
	if err != nil {
		t.Fatalf("warm FindOwner: %v", err)
	}
	if want := h.expectOwner(key); owner != want {
		t.Fatalf("warm FindOwner = %s, want %s", owner, want)
	}
	if warmHops != 1 {
		t.Errorf("warm lookup took %d hops, want exactly 1 (the validation probe)", warmHops)
	}
	st := h.routers[0].Cache().Stats()
	if st.Hits == 0 {
		t.Errorf("cache stats report no hits: %+v", st)
	}
	// The learned entry carries the owner's successor chain (its replica
	// candidates) for the scan path's fallback.
	ent, ok := h.routers[0].CachedEntry(key)
	if !ok {
		t.Fatal("CachedEntry miss after a validated hit")
	}
	if len(ent.Replicas) == 0 {
		t.Errorf("cached entry has no replica candidates: %+v", ent)
	}
}

func TestStaleCacheEntryIsEvictedNotTrusted(t *testing.T) {
	h := newRTHarness(t, 8, Config{DisableAutoRefresh: true, CallTimeout: 40 * time.Millisecond, MaxHops: 64})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	h.waitStabilized(t)
	h.refreshAll(4)

	// Warm the cache for a key owned by peer 5.
	if _, _, err := h.routers[0].FindOwner(ctx, 580); err != nil {
		t.Fatalf("warming lookup: %v", err)
	}
	if ent, ok := h.routers[0].CachedEntry(580); !ok || ent.Addr != h.addrs[5] {
		t.Fatalf("cache entry for 580 = %+v, %v; want %s", ent, ok, h.addrs[5])
	}

	// Move the boundary under the cache: peer 5 shrinks (as a split would),
	// peer 6 absorbs the orphaned segment.
	h.rings[5].SetVal(540)
	r5, _ := h.stores[5].Range()
	h.stores[5].SetRangeForTesting(keyspace.NewRange(r5.Lo, 540))
	r6, _ := h.stores[6].Range()
	h.stores[6].SetRangeForTesting(r6.ExtendDown(540))

	owner, _, err := h.routers[0].FindOwner(ctx, 580)
	if err != nil {
		t.Fatalf("FindOwner with stale cache entry: %v", err)
	}
	if owner != h.addrs[6] {
		t.Errorf("FindOwner(580) = %s, want %s (boundary moved)", owner, h.addrs[6])
	}
	if st := h.routers[0].Cache().Stats(); st.Invalidations == 0 {
		t.Errorf("stale entry was not invalidated: %+v", st)
	}
	if ent, ok := h.routers[0].CachedEntry(580); ok && ent.Addr == h.addrs[5] {
		t.Errorf("stale entry for peer 5 still cached: %+v", ent)
	}
}

// slowLevelNet delays the pointer-maintenance RPC (rt.levelAt) only, so a
// refresh round trip is slow while lookups stay fast.
type slowLevelNet struct {
	transport.Transport
	delay time.Duration
}

func (s *slowLevelNet) Call(ctx context.Context, from, to transport.Addr, method string, payload any) (any, error) {
	if method == methodLevelAt {
		time.Sleep(s.delay)
	}
	return s.Transport.Call(ctx, from, to, method, payload)
}

// TestRefreshDoesNotBlockLookups pins the narrowed critical sections: a
// refresh stuck in a slow pointer RPC must not stall concurrent lookups,
// because the router's mutex is only ever held around in-memory pointer
// access, never across the wire. Run under -race this also exercises the
// reader/writer interleavings.
func TestRefreshDoesNotBlockLookups(t *testing.T) {
	const refreshDelay = 500 * time.Millisecond
	h := newRTHarnessNet(t, 8, Config{DisableAutoRefresh: true, CallTimeout: 2 * time.Second, MaxHops: 64},
		func(tr transport.Transport) transport.Transport {
			return &slowLevelNet{Transport: tr, delay: refreshDelay}
		})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	h.waitStabilized(t)

	var refreshDone atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h.routers[0].RefreshOnce() // >= refreshDelay per level round trip
		refreshDone.Store(true)
	}()

	// While the refresh is parked inside its first slow RPC, lookups from
	// the same router must keep completing.
	for i := 0; i < 24; i++ {
		key := keyspace.Key((i%8)*100 + 50)
		owner, _, err := h.routers[0].FindOwner(ctx, key)
		if err != nil {
			t.Fatalf("lookup %d during refresh: %v", i, err)
		}
		if want := h.expectOwner(key); owner != want {
			t.Fatalf("lookup %d = %s, want %s", key, owner, want)
		}
	}
	if refreshDone.Load() {
		t.Fatal("refresh finished before the lookups; the slow-RPC window was not exercised")
	}
	wg.Wait()
}
