// Package router implements the Content Router of the indexing framework.
//
// P-Ring's Content Router builds "a hierarchy of rings that can index skewed
// data distributions" (Section 2.3); the paper explicitly leaves its details
// out of scope, because query evaluation only needs step (a) of Section 4.2:
// find the peer responsible for the lower bound of the query range. This
// router provides that with an order-preserving hierarchy of doubling
// pointers: level 0 is the ring successor, and level l+1 is (approximately)
// the peer 2^(l+1) positions ahead, refreshed lazily by asking the level-l
// pointer for its own level-l pointer. Lookups descend greedily — jump to
// the farthest pointer that does not overshoot the key, never passing it —
// giving O(log n) hops on a stable ring.
//
// Pointer values can be stale (splits lower values, peers come and go), so
// ownership is always decided by the target's Data Store range, and a failed
// or non-progressing hop falls back to the plain ring successor; in the
// worst case the lookup degrades to the linear scan the paper's framework
// always supports. LinearFindOwner exposes that baseline directly.
//
// On top of the descent sits the owner-lookup cache (internal/routecache):
// every successful lookup learns the owner's range, and FindOwner consults
// the cache before descending. Because ownership is validated at the target,
// a cached entry is only a hint — a stale one costs a probe (which doubles
// as the first descent hop), never a wrong answer — so warm lookups resolve
// in one validated hop instead of the cold O(log n) descent.
package router

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/datastore"
	"repro/internal/keyspace"
	"repro/internal/ring"
	"repro/internal/routecache"
	"repro/internal/transport"
)

// RPC method names.
const (
	methodNextHop = "rt.nextHop"
	methodLevelAt = "rt.levelAt"
	methodSucc    = "rt.succ"
)

// Config controls router behaviour.
type Config struct {
	// MaxLevels bounds the pointer hierarchy (2^MaxLevels positions).
	MaxLevels int
	// RefreshPeriod is the pointer maintenance interval.
	RefreshPeriod time.Duration
	// CallTimeout bounds individual routing RPCs.
	CallTimeout time.Duration
	// MaxHops bounds one lookup before it reports failure.
	MaxHops int
	// DisableAutoRefresh turns the maintenance loop off for tests.
	DisableAutoRefresh bool
	// CacheSize bounds the owner-lookup cache in entries; 0 selects
	// routecache.DefaultCapacity and a negative value disables the cache.
	CacheSize int
}

func (c Config) withDefaults() Config {
	if c.MaxLevels <= 0 {
		c.MaxLevels = 10
	}
	if c.RefreshPeriod <= 0 {
		c.RefreshPeriod = 60 * time.Millisecond
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 50 * time.Millisecond
	}
	if c.MaxHops <= 0 {
		c.MaxHops = 64
	}
	return c
}

// Errors reported by lookups.
var (
	ErrNoProgress  = errors.New("router: lookup made no progress")
	ErrTooManyHops = errors.New("router: exceeded hop budget")
)

// Router is one peer's Content Router.
type Router struct {
	cfg   Config
	net   transport.Transport
	ring  *ring.Peer
	ds    *datastore.Store
	cache *routecache.Cache // nil when disabled

	// mu guards levels only. It is a read/write lock held strictly around
	// in-memory pointer access — never across an RPC — so a slow refresh
	// round trip can never stall the concurrent lookups and nextHop handlers
	// that read the hierarchy.
	mu     sync.RWMutex
	levels []ring.Node // levels[l] ≈ peer 2^l positions ahead; zero = unset

	lifeMu  sync.Mutex // guards started/stopped transitions vs wg
	started bool
	stopped bool
	stopCh  chan struct{}
	wg      sync.WaitGroup
}

// New constructs a Router and registers its handlers on the peer's mux.
func New(net transport.Transport, mux *transport.Mux, rp *ring.Peer, ds *datastore.Store, cfg Config) *Router {
	r := &Router{
		cfg:    cfg.withDefaults(),
		net:    net,
		ring:   rp,
		ds:     ds,
		stopCh: make(chan struct{}),
	}
	if r.cfg.CacheSize >= 0 {
		r.cache = routecache.New(r.cfg.CacheSize)
	}
	r.levels = make([]ring.Node, r.cfg.MaxLevels)
	mux.Handle(methodNextHop, r.handleNextHop)
	mux.Handle(methodLevelAt, r.handleLevelAt)
	mux.Handle(methodSucc, r.handleSucc)
	return r
}

// handleSucc returns this peer's current ring successor.
func (r *Router) handleSucc(_ transport.Addr, _ string, _ any) (any, error) {
	if succ, ok := r.ring.FirstStabilizedSuccessor(); ok {
		return succ, nil
	}
	if succs := r.ring.Successors(); len(succs) > 0 {
		return succs[0], nil
	}
	return ring.Node{}, nil
}

// Start launches the pointer maintenance loop (idempotent; no-op after Stop).
func (r *Router) Start() {
	if r.cfg.DisableAutoRefresh {
		return
	}
	r.lifeMu.Lock()
	defer r.lifeMu.Unlock()
	if r.started || r.stopped {
		return
	}
	r.started = true
	r.wg.Add(1)
	go r.refreshLoop()
}

// Stop halts background work.
func (r *Router) Stop() {
	r.lifeMu.Lock()
	if !r.stopped {
		r.stopped = true
		close(r.stopCh)
	}
	r.lifeMu.Unlock()
	r.wg.Wait()
}

func (r *Router) refreshLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.RefreshPeriod)
	defer t.Stop()
	for {
		select {
		case <-r.stopCh:
			return
		case <-t.C:
			r.RefreshOnce()
		}
	}
}

// RefreshOnce rebuilds the pointer hierarchy bottom-up: level 0 from the
// ring successor, and level l+1 by asking the level-l pointer for its own
// level-l pointer (the doubling construction).
func (r *Router) RefreshOnce() {
	self := r.ring.Self()
	succ, ok := r.ring.FirstStabilizedSuccessor()
	if !ok {
		if succs := r.ring.Successors(); len(succs) > 0 {
			succ, ok = succs[0], true
		}
	}
	r.mu.Lock()
	if ok {
		r.levels[0] = succ
	}
	r.mu.Unlock()
	if !ok {
		return
	}
	for l := 0; l+1 < r.cfg.MaxLevels; l++ {
		r.mu.RLock()
		cur := r.levels[l]
		r.mu.RUnlock()
		if cur.IsZero() || cur.Addr == self.Addr {
			// The hierarchy has wrapped the whole ring; clear higher levels.
			r.mu.Lock()
			for h := l + 1; h < r.cfg.MaxLevels; h++ {
				r.levels[h] = ring.Node{}
			}
			r.mu.Unlock()
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), r.cfg.CallTimeout)
		resp, err := r.net.Call(ctx, self.Addr, cur.Addr, methodLevelAt, l)
		cancel()
		if err != nil {
			return
		}
		next, ok := resp.(ring.Node)
		if !ok || next.IsZero() {
			r.mu.Lock()
			r.levels[l+1] = ring.Node{}
			r.mu.Unlock()
			continue
		}
		// Guard against wrapping past ourselves: a pointer that lands on or
		// beyond us is useless.
		if next.Addr == self.Addr {
			r.mu.Lock()
			for h := l + 1; h < r.cfg.MaxLevels; h++ {
				r.levels[h] = ring.Node{}
			}
			r.mu.Unlock()
			return
		}
		r.mu.Lock()
		r.levels[l+1] = next
		r.mu.Unlock()
	}
}

// handleLevelAt returns this peer's pointer at the requested level.
func (r *Router) handleLevelAt(_ transport.Addr, _ string, payload any) (any, error) {
	l, ok := payload.(int)
	if !ok {
		return nil, fmt.Errorf("router: bad level payload %T", payload)
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if l < 0 || l >= len(r.levels) {
		return ring.Node{}, nil
	}
	return r.levels[l], nil
}

// nextHopResp is the answer to "where should a lookup for key go next?".
// When the answering peer owns the key it also reports its responsibility
// range, its ownership epoch (the fencing token mutations and scans are
// stamped with) and its successor chain, so the caller can prime the
// owner-lookup cache (the successors are where the owner's replicas live —
// the fallback targets for replica reads).
type nextHopResp struct {
	Owner bool           // this peer owns the key
	Range keyspace.Range // when Owner: the peer's responsibility range
	Epoch uint64         // when Owner: the range's ownership epoch
	Chain []ring.Node    // when Owner: the peer's ring successors
	Next  ring.Node      // otherwise: the farthest known peer not passing the key
	Valid bool
}

// handleNextHop implements one greedy routing step at this peer.
func (r *Router) handleNextHop(_ transport.Addr, _ string, payload any) (any, error) {
	key, ok := payload.(keyspace.Key)
	if !ok {
		return nil, fmt.Errorf("router: bad key payload %T", payload)
	}
	if rng, epoch, has := r.ds.RangeEpoch(); has && rng.Contains(key) {
		return nextHopResp{Owner: true, Range: rng, Epoch: epoch, Chain: r.ring.Successors()}, nil
	}
	self := r.ring.Self()
	best := ring.Node{}
	consider := func(n ring.Node) {
		if n.IsZero() || n.Addr == self.Addr {
			return
		}
		// Candidate must lie strictly between us and the key (clockwise,
		// never passing the key) and be farther than the current best.
		if !keyspace.Between(n.Val, self.Val, key) {
			return
		}
		if best.IsZero() || keyspace.Dist(self.Val, n.Val) > keyspace.Dist(self.Val, best.Val) {
			best = n
		}
	}
	r.mu.RLock()
	for _, n := range r.levels {
		consider(n)
	}
	r.mu.RUnlock()
	for _, n := range r.ring.Successors() {
		consider(n)
	}
	if best.IsZero() {
		// Fall back to the plain successor: it either owns the key (its
		// range starts just past our value) or the lookup continues there.
		if succ, ok := r.ring.FirstStabilizedSuccessor(); ok {
			return nextHopResp{Next: succ, Valid: true}, nil
		}
		if succs := r.ring.Successors(); len(succs) > 0 {
			return nextHopResp{Next: succs[0], Valid: true}, nil
		}
		return nextHopResp{}, nil
	}
	return nextHopResp{Next: best, Valid: true}, nil
}

// FindOwner locates the peer whose Data Store range contains key, driving
// the greedy descent from this peer. Ownership is decided by the target's
// own range, so stale pointer values cost extra hops, never wrong answers.
// It returns the owner's address and the number of hops taken.
//
// The owner-lookup cache is consulted first: a cached candidate is probed
// directly, and because the probe is the same nextHop ownership test the
// descent uses, a stale entry's answer seeds the descent instead of being
// wasted — the cache can only save hops, never change the result.
func (r *Router) FindOwner(ctx context.Context, key keyspace.Key) (transport.Addr, int, error) {
	self := r.ring.Self()
	if rng, has := r.ds.Range(); has && rng.Contains(key) {
		return self.Addr, 0, nil
	}
	cur := self.Addr
	hops := 0
	if r.cache != nil {
		if ent, ok := r.cache.Lookup(key); ok && ent.Addr != self.Addr {
			callCtx, cancel := context.WithTimeout(ctx, r.cfg.CallTimeout)
			resp, err := r.net.Call(callCtx, self.Addr, ent.Addr, methodNextHop, key)
			cancel()
			hops++
			if nh, ok := resp.(nextHopResp); err == nil && ok {
				if nh.Owner {
					r.cache.Learn(nh.Range, ent.Addr, nh.Epoch, nodeAddrs(nh.Chain))
					return ent.Addr, hops, nil
				}
				r.cache.Invalidate(ent.Addr)
				if nh.Valid {
					// Stale hint, but its greedy suggestion is still toward
					// the key: continue the descent from there.
					cur = nh.Next.Addr
				}
			} else {
				r.cache.Invalidate(ent.Addr)
			}
		}
	}
	for hops < r.cfg.MaxHops {
		callCtx, cancel := context.WithTimeout(ctx, r.cfg.CallTimeout)
		resp, err := r.net.Call(callCtx, self.Addr, cur, methodNextHop, key)
		cancel()
		if err != nil {
			if cur == self.Addr {
				return "", hops, err
			}
			// Restart from ourselves; the ring will have healed around the
			// failed hop by the time we get back there.
			cur = self.Addr
			hops++
			continue
		}
		nh, ok := resp.(nextHopResp)
		if !ok {
			return "", hops, fmt.Errorf("router: bad nextHop response %T", resp)
		}
		if nh.Owner {
			if r.cache != nil && cur != self.Addr {
				r.cache.Learn(nh.Range, cur, nh.Epoch, nodeAddrs(nh.Chain))
			}
			return cur, hops, nil
		}
		if !nh.Valid {
			// A peer with no usable successor: transient during a split
			// hand-off (the splitter has already ceded the upper half but
			// the new peer is not serving yet). Back off briefly and restart
			// from ourselves; the hop budget bounds the wait.
			if cur == self.Addr {
				return "", hops, ErrNoProgress
			}
			time.Sleep(r.cfg.CallTimeout / 4)
			cur = self.Addr
			hops++
			continue
		}
		cur = nh.Next.Addr
		hops++
		if err := ctx.Err(); err != nil {
			return "", hops, err
		}
	}
	return "", hops, ErrTooManyHops
}

// LinearFindOwner walks plain ring successors from this peer until it finds
// the owner — the baseline the framework always supports, and the fallback
// behaviour the hierarchy degrades to under heavy staleness. At each visited
// peer the ownership probe (nextHop) and the successor fetch (succ) are
// independent questions to the same peer, so they are pipelined on one
// connection: a non-owning hop costs one round trip instead of two, and the
// speculative successor answer is simply discarded at the owner.
func (r *Router) LinearFindOwner(ctx context.Context, key keyspace.Key) (transport.Addr, int, error) {
	self := r.ring.Self()
	cur := self.Addr
	hops := 0
	for hops < r.cfg.MaxHops {
		callCtx, cancel := context.WithTimeout(ctx, r.cfg.CallTimeout)
		probe := transport.CallAsync(r.net, callCtx, self.Addr, cur, methodNextHop, key)
		var succPend *transport.Pending
		if cur != self.Addr {
			succPend = transport.CallAsync(r.net, callCtx, self.Addr, cur, methodSucc, nil)
		}
		resp, err := probe.Result()
		if err != nil {
			cancel()
			return "", hops, err
		}
		nh, ok := resp.(nextHopResp)
		if !ok {
			cancel()
			return "", hops, fmt.Errorf("router: bad nextHop response %T", resp)
		}
		if nh.Owner {
			cancel()
			if r.cache != nil && cur != self.Addr {
				r.cache.Learn(nh.Range, cur, nh.Epoch, nodeAddrs(nh.Chain))
			}
			return cur, hops, nil
		}
		// Ignore the greedy suggestion; step to the successor. We reuse the
		// nextHop handler only for the ownership test.
		succ, err := r.succAnswer(succPend)
		cancel()
		if err != nil {
			return "", hops, err
		}
		cur = succ
		hops++
	}
	return "", hops, ErrTooManyHops
}

// Cache exposes the owner-lookup cache for stats and operational probes; it
// is nil when the cache is disabled (Config.CacheSize < 0).
func (r *Router) Cache() *routecache.Cache { return r.cache }

// CachedEntry returns the unvalidated cached ownership entry covering key.
// It is the fast path for callers that validate ownership at the target
// themselves — the pipelined scan's segment handler rejects a cursor it does
// not own, so the scan can skip FindOwner's probe entirely and go straight
// to the hinted peer.
func (r *Router) CachedEntry(key keyspace.Key) (routecache.Entry, bool) {
	if r.cache == nil {
		return routecache.Entry{}, false
	}
	return r.cache.Lookup(key)
}

// Learn records an ownership fact observed outside the router — a scan hop
// or a query reply — in the owner-lookup cache. epoch is the fact's
// ownership epoch (0 = unknown); the cache refuses to regress an overlapping
// entry to a lower epoch. chain is the owner's successor list (its replica
// holders); nil leaves previously learned candidates in place.
func (r *Router) Learn(rng keyspace.Range, addr transport.Addr, epoch uint64, chain []ring.Node) {
	if r.cache == nil || addr == r.ring.Self().Addr {
		return
	}
	r.cache.Learn(rng, addr, epoch, nodeAddrs(chain))
}

// InvalidateOwner drops addr's cached ownership entry — the peer disclaimed
// ownership or stopped answering.
func (r *Router) InvalidateOwner(addr transport.Addr) {
	if r.cache != nil {
		r.cache.Invalidate(addr)
	}
}

// nodeAddrs projects ring nodes to their addresses (nil in, nil out, so the
// cache's "preserve previous replicas" rule still applies).
func nodeAddrs(nodes []ring.Node) []transport.Addr {
	if nodes == nil {
		return nil
	}
	out := make([]transport.Addr, 0, len(nodes))
	for _, n := range nodes {
		if !n.IsZero() {
			out = append(out, n.Addr)
		}
	}
	return out
}

// succAnswer resolves a pipelined successor fetch; a nil pending means the
// question was about this peer itself and is answered locally.
func (r *Router) succAnswer(p *transport.Pending) (transport.Addr, error) {
	if p == nil {
		if succ, ok := r.ring.FirstStabilizedSuccessor(); ok {
			return succ.Addr, nil
		}
		if succs := r.ring.Successors(); len(succs) > 0 {
			return succs[0].Addr, nil
		}
		return "", ErrNoProgress
	}
	resp, err := p.Result()
	if err != nil {
		return "", err
	}
	n, ok := resp.(ring.Node)
	if !ok || n.IsZero() {
		return "", ErrNoProgress
	}
	return n.Addr, nil
}
