package router

import (
	"repro/internal/keyspace"
	"repro/internal/transport"
)

// Content Router wire types. Lookup keys travel as bare keyspace.Key values
// and level indices as bare ints (registered by the transport package).
func init() {
	transport.RegisterMessage(keyspace.Key(0))
	transport.RegisterMessage(nextHopResp{})
}
