package router

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/datastore"
	"repro/internal/history"
	"repro/internal/keyspace"
	"repro/internal/ring"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// rtHarness builds an n-peer ring with evenly spaced ranges and routers.
type rtHarness struct {
	t       *testing.T
	net     *simnet.Network
	routers []*Router
	stores  []*datastore.Store
	rings   []*ring.Peer
	addrs   []simnet.Addr
}

func newRTHarness(t *testing.T, n int, cfg Config) *rtHarness {
	return newRTHarnessNet(t, n, cfg, nil)
}

// newRTHarnessNet builds the harness with the routers talking through
// wrap(simnet) when wrap is non-nil (the other components stay on the raw
// network), so tests can intercept router RPCs.
func newRTHarnessNet(t *testing.T, n int, cfg Config, wrap func(transport.Transport) transport.Transport) *rtHarness {
	t.Helper()
	h := &rtHarness{t: t, net: simnet.New(simnet.Config{DeadCallDelay: time.Millisecond, Seed: 11})}
	log := history.NewLog()
	rCfg := ring.Config{
		SuccListLen: 4,
		StabPeriod:  5 * time.Millisecond,
		PingPeriod:  5 * time.Millisecond,
		CallTimeout: 100 * time.Millisecond,
		// Generous: test packages run in parallel and can starve the
		// stabilization goroutines that carry the ack.
		AckTimeout: 30 * time.Second,
	}
	for i := 0; i < n; i++ {
		addr := simnet.Addr(fmt.Sprintf("rt%d", i))
		mux := simnet.NewMux()
		var st *datastore.Store
		cb := ring.Callbacks{
			PrepareJoinData: func(j ring.Node) any { return st.PrepareJoinData(j) },
			OnJoined:        func(self, pred ring.Node, data any) { st.OnJoined(self, pred, data) },
		}
		rp := ring.NewPeer(h.net, mux, rCfg, ring.Node{Addr: addr}, cb)
		st = datastore.New(h.net, mux, rp, log, datastore.Config{
			StorageFactor:      1000,
			DisableMaintenance: true,
			CallTimeout:        40 * time.Millisecond,
		})
		var rtNet transport.Transport = h.net
		if wrap != nil {
			rtNet = wrap(h.net)
		}
		rt := New(rtNet, mux, rp, st, cfg)
		if err := h.net.Register(addr, mux.Dispatch); err != nil {
			t.Fatal(err)
		}
		h.routers = append(h.routers, rt)
		h.stores = append(h.stores, st)
		h.rings = append(h.rings, rp)
		h.addrs = append(h.addrs, addr)
		t.Cleanup(func() { rp.Stop(); st.Stop(); rt.Stop() })
	}
	// Build the ring: peer i owns (i*100, (i+1)*100] except the last, which
	// wraps to 0... we assign values so peer i has val (i+1)*100, with the
	// last peer holding the wrap anchor val 0.
	if err := h.rings[0].InitRing(); err != nil {
		t.Fatal(err)
	}
	h.stores[0].InitFirstPeer()
	ctx, cancel := context.WithTimeout(context.Background(), 180*time.Second)
	defer cancel()
	for i := 1; i < n; i++ {
		prev := h.rings[i-1]
		oldVal := prev.Self().Val
		prev.SetVal(keyspace.Key(uint64(i) * 100))
		// A join can time out under heavy machine load (the ack rides on
		// stabilization); the abort rolls back cleanly, so retry.
		var err error
		for attempt := 0; attempt < 5; attempt++ {
			err = prev.InsertSucc(ctx, ring.Node{Addr: h.addrs[i], Val: oldVal})
			if err == nil {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}
	return h
}

func rtWait(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	// Generous floor: the race detector slows stabilization by an order of
	// magnitude.
	if timeout < 15*time.Second {
		timeout = 15 * time.Second
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(3 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// expectOwner returns the address that owns key under the even layout.
func (h *rtHarness) expectOwner(key keyspace.Key) simnet.Addr {
	for i, st := range h.stores {
		if rng, ok := st.Range(); ok && rng.Contains(key) {
			return h.addrs[i]
		}
	}
	return ""
}

func (h *rtHarness) refreshAll(rounds int) {
	for r := 0; r < rounds; r++ {
		for _, rt := range h.routers {
			rt.RefreshOnce()
		}
	}
}

func TestFindOwnerLinearFallbackOnly(t *testing.T) {
	// Without any refresh, lookups still succeed via successor stepping.
	h := newRTHarness(t, 6, Config{DisableAutoRefresh: true, CallTimeout: 40 * time.Millisecond, MaxHops: 32})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rtWait(t, 5*time.Second, "stabilized successors", func() bool {
		for _, rp := range h.rings {
			if _, ok := rp.FirstStabilizedSuccessor(); !ok {
				return false
			}
		}
		return true
	})
	for _, key := range []keyspace.Key{50, 150, 250, 350, 450, 550} {
		owner, _, err := h.routers[0].FindOwner(ctx, key)
		if err != nil {
			t.Fatalf("FindOwner(%d): %v", key, err)
		}
		if want := h.expectOwner(key); owner != want {
			t.Errorf("FindOwner(%d) = %s, want %s", key, owner, want)
		}
	}
}

func TestFindOwnerWithHierarchy(t *testing.T) {
	h := newRTHarness(t, 16, Config{DisableAutoRefresh: true, CallTimeout: 40 * time.Millisecond, MaxHops: 64})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	rtWait(t, 5*time.Second, "stabilized successors", func() bool {
		for _, rp := range h.rings {
			if _, ok := rp.FirstStabilizedSuccessor(); !ok {
				return false
			}
		}
		return true
	})
	h.refreshAll(6)

	rng := rand.New(rand.NewSource(2))
	maxHops := 0
	for trial := 0; trial < 50; trial++ {
		src := rng.Intn(16)
		key := keyspace.Key(rng.Intn(1600))
		owner, hops, err := h.routers[src].FindOwner(ctx, key)
		if err != nil {
			t.Fatalf("FindOwner(%d) from %d: %v", key, src, err)
		}
		if want := h.expectOwner(key); owner != want {
			t.Errorf("FindOwner(%d) = %s, want %s", key, owner, want)
		}
		if hops > maxHops {
			maxHops = hops
		}
	}
	// With doubling pointers over 16 peers, lookups must be clearly
	// sub-linear: allow generous slack but far less than n.
	if maxHops > 10 {
		t.Errorf("max hops = %d; hierarchy is not being used", maxHops)
	}
}

func TestFindOwnerSelf(t *testing.T) {
	h := newRTHarness(t, 3, Config{DisableAutoRefresh: true, CallTimeout: 40 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	rng, _ := h.stores[0].Range()
	owner, hops, err := h.routers[0].FindOwner(ctx, rng.Hi)
	if err != nil {
		t.Fatal(err)
	}
	if owner != h.addrs[0] || hops != 0 {
		t.Errorf("self lookup = %s/%d hops", owner, hops)
	}
}

func TestLinearFindOwner(t *testing.T) {
	h := newRTHarness(t, 8, Config{DisableAutoRefresh: true, CallTimeout: 40 * time.Millisecond, MaxHops: 32})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rtWait(t, 5*time.Second, "stabilized successors", func() bool {
		for _, rp := range h.rings {
			if _, ok := rp.FirstStabilizedSuccessor(); !ok {
				return false
			}
		}
		return true
	})
	owner, hops, err := h.routers[0].LinearFindOwner(ctx, 750)
	if err != nil {
		t.Fatal(err)
	}
	if want := h.expectOwner(750); owner != want {
		t.Errorf("LinearFindOwner = %s, want %s", owner, want)
	}
	if hops < 5 {
		t.Errorf("linear lookup took %d hops; expected to walk most of the ring", hops)
	}
}

func TestFindOwnerSurvivesFailure(t *testing.T) {
	h := newRTHarness(t, 8, Config{DisableAutoRefresh: true, CallTimeout: 40 * time.Millisecond, MaxHops: 64})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	rtWait(t, 5*time.Second, "stabilized successors", func() bool {
		for _, rp := range h.rings {
			if _, ok := rp.FirstStabilizedSuccessor(); !ok {
				return false
			}
		}
		return true
	})
	h.refreshAll(4)

	// Kill a mid-ring peer; lookups for other peers' keys must still work
	// after the ring heals (routing falls back around the corpse).
	h.net.Kill(h.addrs[4])
	h.rings[4].Stop()
	rtWait(t, 5*time.Second, "ring heal", func() bool {
		s := h.rings[3].Successors()
		return len(s) > 0 && s[0].Addr == h.addrs[5]
	})
	owner, _, err := h.routers[0].FindOwner(ctx, 750)
	if err != nil {
		t.Fatalf("FindOwner after failure: %v", err)
	}
	if want := h.expectOwner(750); owner != want {
		t.Errorf("FindOwner after failure = %s, want %s", owner, want)
	}
}

func TestFindOwnerStaleValuesCostHopsNotCorrectness(t *testing.T) {
	h := newRTHarness(t, 8, Config{DisableAutoRefresh: true, CallTimeout: 40 * time.Millisecond, MaxHops: 64})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	rtWait(t, 5*time.Second, "stabilized successors", func() bool {
		for _, rp := range h.rings {
			if _, ok := rp.FirstStabilizedSuccessor(); !ok {
				return false
			}
		}
		return true
	})
	h.refreshAll(4)

	// Shrink peer 5's value (as a split would) WITHOUT telling the routers:
	// its datastore range shrinks accordingly; lookups for the orphaned
	// upper part now resolve to... nobody owns it, so give it to peer 6 by
	// extending its range down, then verify lookups still land correctly.
	h.rings[5].SetVal(540)
	r5, _ := h.stores[5].Range()
	h.stores[5].SetRangeForTesting(keyspace.NewRange(r5.Lo, 540))
	r6, _ := h.stores[6].Range()
	h.stores[6].SetRangeForTesting(r6.ExtendDown(540))

	owner, _, err := h.routers[0].FindOwner(ctx, 580)
	if err != nil {
		t.Fatalf("FindOwner with stale pointers: %v", err)
	}
	if owner != h.addrs[6] {
		t.Errorf("FindOwner(580) = %s, want %s (range moved)", owner, h.addrs[6])
	}
}

func TestConcurrentLookups(t *testing.T) {
	h := newRTHarness(t, 12, Config{DisableAutoRefresh: true, CallTimeout: 40 * time.Millisecond, MaxHops: 64})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rtWait(t, 5*time.Second, "stabilized successors", func() bool {
		for _, rp := range h.rings {
			if _, ok := rp.FirstStabilizedSuccessor(); !ok {
				return false
			}
		}
		return true
	})
	h.refreshAll(5)

	var wg sync.WaitGroup
	errs := make(chan error, 128)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 30; i++ {
				key := keyspace.Key(rng.Intn(1200))
				owner, _, err := h.routers[g%len(h.routers)].FindOwner(ctx, key)
				if err != nil {
					errs <- err
					return
				}
				if want := h.expectOwner(key); owner != want {
					errs <- fmt.Errorf("lookup %d: got %s want %s", key, owner, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
