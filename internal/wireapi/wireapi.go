// Package wireapi is the consolidated dial-side API of the cluster: every
// RPC a NON-PEER endpoint — a smart client (internal/client), an operator
// tool, a test harness — may issue against a running peer, gathered behind
// one documented surface instead of three per-package seams.
//
// The dial-side contract, shared by every call here:
//
//   - Unregistered origin. The caller sends from an arbitrary transport
//     address that is not registered on the ring. The serving peer cannot
//     tell a client from a peer — every request runs the same validated
//     handler — so nothing a client does can corrupt protocol state.
//
//   - Epoch stamping. Fenced calls carry the ownership epoch the caller
//     believes current for the target's range (0 = unfenced). The target
//     validates ownership and epoch itself; client-held routing state is
//     therefore always a HINT, never an authority. A stale hint costs a
//     retry, never a wrong answer.
//
//   - Typed wire errors. Sentinel errors registered with the transport
//     (datastore.ErrNotOwner, datastore.ErrStaleEpoch,
//     transport.ErrStageOverflow) keep their errors.Is identity across TCP,
//     so callers can distinguish "re-resolve the route" (ownership moved),
//     "refresh the epoch" (incarnation superseded) and "transfer too large
//     for RAM staging" (configure disk staging) from transient transport
//     failures.
//
//   - Unbounded responses. Replies that outgrow a transport frame stream
//     back in chunks and are reassembled (or disk-staged) by the transport;
//     callers never see partial payloads.
//
// The functions delegate to the per-package wire bridges, which own the
// unexported message types; this package is the surface tools build against.
package wireapi

import (
	"context"

	"repro/internal/datastore"
	"repro/internal/keyspace"
	"repro/internal/replication"
	"repro/internal/router"
	"repro/internal/transport"
)

// OwnerMeta is the ownership fact a mutation reply carries back: the serving
// peer's range, its epoch at serve time, and its successor chain (where its
// replicas live). Prime route caches from it.
type OwnerMeta = datastore.OwnerMeta

// Hop is one greedy routing step: either the answering peer owns the key and
// reports its ownership facts, or it names the farthest peer it knows that
// does not pass the key.
type Hop = router.Hop

// SegmentPending is an in-flight scan-segment call; Result blocks for the
// segment.
type SegmentPending = datastore.SegmentPending

// Insert asks the peer at owner to store item under the believed epoch.
// Returns the owner's metadata on success; ErrNotOwner / ErrStaleEpoch
// signal that the hint was stale.
func Insert(ctx context.Context, net transport.Transport, from, owner transport.Addr, item datastore.Item, epoch uint64) (OwnerMeta, error) {
	return datastore.ClientInsert(ctx, net, from, owner, item, epoch)
}

// Delete asks the peer at owner to delete key under the believed epoch. It
// reports whether the key existed, plus the owner's metadata.
func Delete(ctx context.Context, net transport.Transport, from, owner transport.Addr, key keyspace.Key, epoch uint64) (bool, OwnerMeta, error) {
	return datastore.ClientDelete(ctx, net, from, owner, key, epoch)
}

// ScanSegmentAsync asks the peer at owner for its piece of iv starting at
// cursor, without blocking — pipelined scans keep several in flight. The
// target validates cursor ownership under its range read lock exactly as for
// a peer-issued scan.
func ScanSegmentAsync(ctx context.Context, net transport.Transport, from, owner transport.Addr, iv keyspace.Interval, cursor keyspace.Key, epoch uint64) *SegmentPending {
	return datastore.ClientScanSegmentAsync(ctx, net, from, owner, iv, cursor, epoch)
}

// NextHop asks the peer at to for its next-hop answer for key — the routing
// descent primitive. Ownership is decided by the target's own range, so a
// stale route costs extra hops, never a wrong answer.
func NextHop(ctx context.Context, net transport.Transport, from, to transport.Addr, key keyspace.Key) (Hop, error) {
	return router.ClientNextHop(ctx, net, from, to, key)
}

// ReplicaItems fetches the items in iv visible at the replica holder addr —
// the read path's availability fallback. epoch stamps the believed primary's
// epoch; a holder that saw a higher epoch asserted over the interval refuses
// with ErrStaleEpoch rather than serve a deposed chain's view. Replica reads
// may lag the primary by up to one replication refresh; that bounded
// staleness is part of the contract.
func ReplicaItems(ctx context.Context, net transport.Transport, from, holder transport.Addr, iv keyspace.Interval, epoch uint64) ([]datastore.Item, error) {
	return replication.ClientReplicaItems(ctx, net, from, holder, iv, epoch)
}
