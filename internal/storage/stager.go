package storage

import (
	"fmt"
	"io"
	"os"

	"repro/internal/transport"
)

// diskStager stages one chunked transfer's frames in a spill file instead of
// RAM: the receive path of a range hand-off larger than the transport's
// MaxStreamBytes cap flows through here. Chunk boundaries are retained (as
// lengths) so Join can validate the committed chunk count exactly like the
// in-memory stager does. The reassembled payload is read back once at commit
// time for decoding; only the decode, not the staging, occupies memory.
type diskStager struct {
	dir   string
	f     *os.File
	sizes []int
	bytes int64
	err   error
}

func newDiskStager(dir string) *diskStager { return &diskStager{dir: dir} }

// Append spills one chunk to the stage file (created lazily, so aborted
// transfers that never stage a chunk touch no disk).
func (s *diskStager) Append(chunk []byte) error {
	if s.err != nil {
		return s.err
	}
	if s.f == nil {
		f, err := os.CreateTemp(s.dir, "stream-*.stage")
		if err != nil {
			s.err = fmt.Errorf("storage: creating stream spill file: %w", err)
			return s.err
		}
		s.f = f
	}
	if _, err := s.f.Write(chunk); err != nil {
		s.err = fmt.Errorf("storage: staging stream chunk: %w", err)
		return s.err
	}
	s.sizes = append(s.sizes, len(chunk))
	s.bytes += int64(len(chunk))
	return nil
}

// Chunks returns the number of staged chunks.
func (s *diskStager) Chunks() int { return len(s.sizes) }

// Bytes returns the staged byte count.
func (s *diskStager) Bytes() int64 { return s.bytes }

// Join validates the committed chunk count, reads the payload back and
// removes the spill file.
func (s *diskStager) Join(total int) ([]byte, error) {
	defer s.Discard()
	if s.err != nil {
		return nil, s.err
	}
	if len(s.sizes) != total {
		return nil, fmt.Errorf("%w: committed %d chunks, staged %d", transport.ErrStreamAborted, total, len(s.sizes))
	}
	if s.f == nil { // zero-chunk transfer
		return nil, nil
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("storage: rewinding stream spill file: %w", err)
	}
	out := make([]byte, s.bytes)
	if _, err := io.ReadFull(s.f, out); err != nil {
		return nil, fmt.Errorf("storage: reading staged stream back: %w", err)
	}
	return out, nil
}

// Discard removes the spill file; idempotent.
func (s *diskStager) Discard() {
	if s.f != nil {
		name := s.f.Name()
		s.f.Close()
		os.Remove(name)
		s.f = nil
	}
}
