package storage

import (
	"sync/atomic"

	"repro/internal/transport"
)

// Memory is the default backend: the pre-existing in-process behavior with
// no durability. Appends are counted and dropped, Load recovers nothing, and
// stream chunks stage in RAM bounded by the transport's MaxStreamBytes. It
// exists so every protocol layer can journal unconditionally — the simnet
// clusters and unit tests pay one atomic increment per mutation, nothing
// more.
type Memory struct {
	records atomic.Uint64
}

// NewMemory returns a fresh in-memory backend.
func NewMemory() *Memory { return &Memory{} }

// Append counts and drops the record.
func (m *Memory) Append(Record) error {
	m.records.Add(1)
	return nil
}

// Sync is a no-op.
func (m *Memory) Sync() error { return nil }

// Load recovers nothing: a memory-backed peer that restarts is a new peer.
func (m *Memory) Load() (State, error) { return newState(), nil }

// NewStager stages chunks in RAM, capped at maxBytes.
func (m *Memory) NewStager(maxBytes int64) transport.ChunkStager {
	return transport.NewMemStager(maxBytes)
}

// Stats reports the append counter.
func (m *Memory) Stats() Stats {
	return Stats{Name: "memory", Records: m.records.Load()}
}

// Close is a no-op.
func (m *Memory) Close() error { return nil }

// MemoryFactory opens a fresh Memory backend per peer.
type MemoryFactory struct{}

// Open returns a new Memory backend.
func (MemoryFactory) Open(transport.Addr) (Backend, error) { return NewMemory(), nil }
