// Package storage is the pluggable per-peer storage engine behind the Data
// Store, the replication manager and the transport's stream staging.
//
// Every durable fact a peer holds — its ownership claim (range, epoch), the
// items it serves, the replicas it keeps for its predecessors, its own
// identity and remembered bootstrap — flows through one Backend as a stream
// of write-ahead Records. Two implementations exist:
//
//   - Memory: the pre-existing in-process behavior. Appends are dropped, Load
//     recovers nothing, stream chunks stage in RAM. Simnet clusters and unit
//     tests keep their speed; a crash loses the peer, exactly as before.
//   - Disk: an append-only, CRC-checked write-ahead log plus periodic
//     snapshots that truncate it. Every record is stamped with the ownership
//     epoch it was performed under, so recovery replays only the live
//     incarnation (see the replay rules on apply). Stream transfers stage
//     through spill files instead of RAM, lifting the MaxStreamBytes ceiling
//     on the receive path.
//
// The write-ahead contract: protocol layers append the record for a mutation
// while still holding the lock that serializes the mutation (the Data
// Store's critical section), so the WAL order is the journal order is the
// scan-observed order. Appends may be batched to stable storage on a sync
// interval (the everysec-style durability knob); Sync forces the batch out.
package storage

import (
	"fmt"

	"repro/internal/keyspace"
	"repro/internal/transport"
)

// RecordKind discriminates write-ahead records.
type RecordKind uint8

// Write-ahead record kinds. The zero value is invalid so a zeroed read can
// never masquerade as a record.
const (
	// RecIdentity stamps the peer's dialable address (Payload) and, when
	// non-empty, its remembered bootstrap address (Aux). Recovery refuses a
	// directory whose identity is some other peer's.
	RecIdentity RecordKind = iota + 1
	// RecClaim is an ownership incarnation: the peer claimed Range(Lo,Hi] at
	// Epoch. On replay a claim prunes items outside the claimed range —
	// splits, redistributes and merges move items away exactly by shrinking
	// the range, so no per-item deletes are journaled for hand-offs.
	RecClaim
	// RecRelease drops ownership entirely (step-down after deposition, or a
	// voluntary merge into the successor). Replay clears the range, the
	// epoch and every owned item; held replicas survive.
	RecRelease
	// RecPut upserts one owned item, stamped with the epoch it was accepted
	// under. Replay skips a put whose epoch is not the live incarnation's.
	RecPut
	// RecDelete removes one owned item; same epoch stamp and replay rule as
	// RecPut.
	RecDelete
	// RecReplicaPut upserts one held replica (no epoch gate: replicas are
	// owned by other peers' incarnations and reconciled by range pushes).
	RecReplicaPut
	// RecReplicaDelete removes one held replica.
	RecReplicaDelete
	// RecLease journals a lease renewal for the live incarnation: Key carries
	// the renewal wall-clock time as unix nanoseconds (reusing the fixed
	// layout's key slot — leases have no key of their own), Epoch the
	// incarnation it renews. Replay keeps only a renewal matching the live
	// epoch, so a recovered peer resumes its lease clock from the LAST renewal
	// it durably made — never from "now" — and a claim that lapsed while the
	// process was down comes back already expired, exactly as conservative
	// lease semantics require.
	RecLease
)

func (k RecordKind) String() string {
	switch k {
	case RecIdentity:
		return "identity"
	case RecClaim:
		return "claim"
	case RecRelease:
		return "release"
	case RecPut:
		return "put"
	case RecDelete:
		return "delete"
	case RecReplicaPut:
		return "replica-put"
	case RecReplicaDelete:
		return "replica-delete"
	case RecLease:
		return "lease"
	default:
		return fmt.Sprintf("RecordKind(%d)", uint8(k))
	}
}

// Record is one write-ahead entry. Field use depends on Kind; unused fields
// are zero. Records are value types and never retained by the backend.
type Record struct {
	Kind  RecordKind
	Epoch uint64       // ownership epoch the record was performed under
	Lo    keyspace.Key // RecClaim: claimed range lower bound (exclusive)
	Hi    keyspace.Key // RecClaim: claimed range upper bound (inclusive)
	Key   keyspace.Key // item / replica key
	// Payload is the item payload (RecPut/RecReplicaPut) or the peer's
	// address (RecIdentity).
	Payload string
	// Aux is the bootstrap address (RecIdentity).
	Aux string
}

// State is a peer's recovered durable state: the result of loading the last
// snapshot and replaying the write-ahead log over it.
type State struct {
	// Addr is the identity the directory belongs to; recovery refuses to
	// adopt a directory stamped with another peer's address.
	Addr string
	// Bootstrap is the remembered bootstrap address (empty for the first
	// peer); recovery re-announces to it instead of rejoining empty.
	Bootstrap string
	HasRange  bool
	Range     keyspace.Range
	Epoch     uint64
	// LeaseRenewedAt is the unix-nanosecond time of the last durably journaled
	// lease renewal for the live incarnation; 0 when the claim was never
	// renewed (or leases are disabled). Recovery hands it to the Data Store so
	// the resumed lease clock starts at the last renewal the WAL proves, not
	// at the restart time.
	LeaseRenewedAt int64
	Items          map[keyspace.Key]string // owned items: key -> payload
	Replicas       map[keyspace.Key]string // held replicas: key -> payload
}

// clone returns a deep copy (maps included) safe to hand outside the lock.
func (st State) clone() State {
	out := st
	out.Items = make(map[keyspace.Key]string, len(st.Items))
	for k, v := range st.Items {
		out.Items[k] = v
	}
	out.Replicas = make(map[keyspace.Key]string, len(st.Replicas))
	for k, v := range st.Replicas {
		out.Replicas[k] = v
	}
	return out
}

// apply folds one record into the state. This is the single replay function:
// the Disk backend uses it both to maintain its shadow state on every append
// and to replay the log on recovery, so what recovery rebuilds is by
// construction what the appends described.
//
// Epoch replay rule: an item mutation applies only when its epoch stamp
// equals the live incarnation's epoch. Mutations are appended inside the
// store's critical section, interleaved with the claims that bump the epoch,
// so every well-formed log satisfies the rule; a record that violates it is
// a torn or reordered tail and is dropped rather than resurrected into the
// wrong incarnation.
func (st *State) apply(rec Record) {
	switch rec.Kind {
	case RecIdentity:
		if rec.Payload != "" {
			st.Addr = rec.Payload
		}
		if rec.Aux != "" {
			st.Bootstrap = rec.Aux
		}
	case RecClaim:
		st.HasRange = true
		st.Range = keyspace.Range{Lo: rec.Lo, Hi: rec.Hi}
		st.Epoch = rec.Epoch
		// A new incarnation starts with a fresh lease clock; the grant-time
		// RecLease that claim sites append right after re-stamps it.
		st.LeaseRenewedAt = 0
		for k := range st.Items {
			if !st.Range.Contains(k) {
				delete(st.Items, k)
			}
		}
	case RecRelease:
		st.HasRange = false
		st.Range = keyspace.Range{}
		st.Epoch = 0
		st.LeaseRenewedAt = 0
		st.Items = make(map[keyspace.Key]string)
	case RecPut:
		if st.HasRange && rec.Epoch == st.Epoch {
			st.Items[rec.Key] = rec.Payload
		}
	case RecDelete:
		if st.HasRange && rec.Epoch == st.Epoch {
			delete(st.Items, rec.Key)
		}
	case RecReplicaPut:
		st.Replicas[rec.Key] = rec.Payload
	case RecReplicaDelete:
		delete(st.Replicas, rec.Key)
	case RecLease:
		if st.HasRange && rec.Epoch == st.Epoch {
			st.LeaseRenewedAt = int64(rec.Key)
		}
	}
}

// newState returns an empty state with allocated maps.
func newState() State {
	return State{Items: make(map[keyspace.Key]string), Replicas: make(map[keyspace.Key]string)}
}

// Stats describes a backend for operators (the probe status carries it).
type Stats struct {
	// Name identifies the implementation: "memory" or "disk".
	Name string
	// Records is the number of records appended since open (memory: since
	// construction; appends are counted even though they are dropped).
	Records uint64
	// Snapshots is the number of snapshots written since open.
	Snapshots uint64
	// WALBytes is the current size of the write-ahead log (disk only).
	WALBytes int64
}

// Backend is the pluggable storage engine. Implementations must be safe for
// concurrent use: the Data Store and the replication manager append from
// their own critical sections.
type Backend interface {
	// Append journals one record. The caller appends while holding the lock
	// that serializes the mutation, so implementations must return quickly:
	// Disk buffers the encoded record and batches fsyncs on the configured
	// sync interval (interval zero = fsync every append).
	Append(rec Record) error
	// Sync forces every appended record to stable storage.
	Sync() error
	// Load returns the recovered state: last snapshot plus WAL replay. A
	// backend with no durable history returns the empty state.
	Load() (State, error)
	// NewStager returns a staging area for one inbound chunked transfer.
	// maxBytes caps RAM staging (Memory); Disk spills to files and ignores
	// the cap. The transport discards or joins every stager it creates.
	NewStager(maxBytes int64) transport.ChunkStager
	// Stats reports the backend's identity and counters.
	Stats() Stats
	// Close flushes and releases the backend. A crash is modeled by NOT
	// calling Close: anything past the last fsync is legitimately lost.
	Close() error
}

// Factory opens one Backend per peer identity. The core layer calls Open
// once per assembled peer; standalone processes reuse the same directory
// across restarts by listening on the same address.
type Factory interface {
	Open(addr transport.Addr) (Backend, error)
}
