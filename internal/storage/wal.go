package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/keyspace"
)

// Write-ahead log framing: each record is
//
//	u32 body length | u32 CRC-32C of body | body
//
// with a fixed-layout little-endian body
//
//	u8 kind | u64 epoch | u64 lo | u64 hi | u64 key |
//	u32 payload length | payload | u32 aux length | aux
//
// The CRC covers the body only; the length prefix is validated by bounds
// (maxWALRecord) and by the CRC of the bytes it delimits. A record whose
// length runs past the file, or whose CRC does not match, is a torn tail:
// the replayer drops it AND everything after it — bytes past a torn record
// are garbage by definition, since the log is append-only and fsynced in
// order.

// maxWALRecord bounds one record's body so a corrupt length prefix cannot
// force a multi-gigabyte allocation. Item payloads are bounded well below
// this by the transport's frame limit.
const maxWALRecord = 64 << 20

// walCRC is CRC-32C (Castagnoli), the checksum used by the WAL and the
// snapshot file.
var walCRC = crc32.MakeTable(crc32.Castagnoli)

const walHeaderLen = 8 // u32 length + u32 crc

// appendRecord encodes rec framed for the log onto buf and returns the
// extended slice.
func appendRecord(buf []byte, rec Record) []byte {
	bodyLen := 1 + 8*4 + 4 + len(rec.Payload) + 4 + len(rec.Aux)
	start := len(buf)
	buf = append(buf, make([]byte, walHeaderLen)...)
	buf = append(buf, byte(rec.Kind))
	buf = binary.LittleEndian.AppendUint64(buf, rec.Epoch)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(rec.Lo))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(rec.Hi))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(rec.Key))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.Payload)))
	buf = append(buf, rec.Payload...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.Aux)))
	buf = append(buf, rec.Aux...)
	body := buf[start+walHeaderLen:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(bodyLen))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(body, walCRC))
	return buf
}

// decodeRecordBody decodes one CRC-validated body.
func decodeRecordBody(body []byte) (Record, error) {
	if len(body) < 1+8*4+4 {
		return Record{}, fmt.Errorf("storage: record body too short (%d bytes)", len(body))
	}
	var rec Record
	rec.Kind = RecordKind(body[0])
	rec.Epoch = binary.LittleEndian.Uint64(body[1:])
	rec.Lo = keyspace.Key(binary.LittleEndian.Uint64(body[9:]))
	rec.Hi = keyspace.Key(binary.LittleEndian.Uint64(body[17:]))
	rec.Key = keyspace.Key(binary.LittleEndian.Uint64(body[25:]))
	off := 33
	plen := int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	if plen < 0 || off+plen+4 > len(body) {
		return Record{}, fmt.Errorf("storage: payload length %d overruns record body", plen)
	}
	rec.Payload = string(body[off : off+plen])
	off += plen
	alen := int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	if alen < 0 || off+alen != len(body) {
		return Record{}, fmt.Errorf("storage: aux length %d does not close record body", alen)
	}
	rec.Aux = string(body[off : off+alen])
	return rec, nil
}

// replayWAL scans the raw log bytes, applies every intact record to st, and
// returns the byte offset of the first torn or corrupt record (== len(data)
// for a clean log) plus the number of records applied. It never fails: a
// torn tail is expected after a crash and is simply where replay stops.
func replayWAL(data []byte, st *State) (validLen int64, records uint64) {
	off := 0
	for {
		if off+walHeaderLen > len(data) {
			return int64(off), records
		}
		bodyLen := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if bodyLen <= 0 || bodyLen > maxWALRecord || off+walHeaderLen+bodyLen > len(data) {
			return int64(off), records
		}
		body := data[off+walHeaderLen : off+walHeaderLen+bodyLen]
		if crc32.Checksum(body, walCRC) != crc {
			return int64(off), records
		}
		rec, err := decodeRecordBody(body)
		if err != nil {
			return int64(off), records
		}
		st.apply(rec)
		records++
		off += walHeaderLen + bodyLen
	}
}
