package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/keyspace"
	"repro/internal/transport"
)

// TestRecordRoundtrip frames a representative set of records and decodes them
// back through the replay path.
func TestRecordRoundtrip(t *testing.T) {
	recs := []Record{
		{Kind: RecIdentity, Payload: "127.0.0.1:7001", Aux: "127.0.0.1:7000"},
		{Kind: RecClaim, Epoch: 7, Lo: 100, Hi: 5000},
		{Kind: RecPut, Epoch: 7, Key: 4000, Payload: strings.Repeat("x", 4096)},
		{Kind: RecDelete, Epoch: 7, Key: 4000},
		{Kind: RecReplicaPut, Key: 9000, Payload: ""},
		{Kind: RecReplicaDelete, Key: 9000},
		{Kind: RecRelease},
	}
	var buf []byte
	for _, r := range recs {
		buf = appendRecord(buf, r)
	}
	off := 0
	for i, want := range recs {
		bodyLen := int(uint32(buf[off]) | uint32(buf[off+1])<<8 | uint32(buf[off+2])<<16 | uint32(buf[off+3])<<24)
		body := buf[off+walHeaderLen : off+walHeaderLen+bodyLen]
		got, err := decodeRecordBody(body)
		if err != nil {
			t.Fatalf("record %d: decode: %v", i, err)
		}
		if got != want {
			t.Fatalf("record %d: roundtrip mismatch:\n got %+v\nwant %+v", i, got, want)
		}
		off += walHeaderLen + bodyLen
	}
	if off != len(buf) {
		t.Fatalf("decoded %d bytes of %d", off, len(buf))
	}
}

// TestReplayClaimPrunesItems: a claim narrows the range; items outside it are
// pruned on replay (hand-offs journal no per-item deletes).
func TestReplayClaimPrunesItems(t *testing.T) {
	st := newState()
	st.apply(Record{Kind: RecClaim, Epoch: 1, Lo: 0, Hi: 10_000})
	st.apply(Record{Kind: RecPut, Epoch: 1, Key: 2000, Payload: "a"})
	st.apply(Record{Kind: RecPut, Epoch: 1, Key: 8000, Payload: "b"})
	// Split hand-off: the peer re-claims the lower half at a new epoch.
	st.apply(Record{Kind: RecClaim, Epoch: 2, Lo: 0, Hi: 5000})
	if len(st.Items) != 1 || st.Items[2000] != "a" {
		t.Fatalf("claim should prune items outside the new range, got %v", st.Items)
	}
	if st.Epoch != 2 || st.Range.Hi != 5000 {
		t.Fatalf("claim not applied: epoch=%d range=%v", st.Epoch, st.Range)
	}
}

// TestReplayEpochGate: item mutations stamped with a non-live epoch are
// dropped rather than resurrected into the wrong incarnation.
func TestReplayEpochGate(t *testing.T) {
	st := newState()
	st.apply(Record{Kind: RecClaim, Epoch: 3, Lo: 0, Hi: 10_000})
	st.apply(Record{Kind: RecPut, Epoch: 2, Key: 1000, Payload: "stale"})
	if len(st.Items) != 0 {
		t.Fatalf("stale-epoch put must be skipped, got %v", st.Items)
	}
	st.apply(Record{Kind: RecPut, Epoch: 3, Key: 1000, Payload: "live"})
	st.apply(Record{Kind: RecDelete, Epoch: 2, Key: 1000})
	if st.Items[1000] != "live" {
		t.Fatalf("stale-epoch delete must be skipped, got %v", st.Items)
	}
	// Without a range at all, no epoch is live.
	empty := newState()
	empty.apply(Record{Kind: RecPut, Epoch: 0, Key: 1, Payload: "x"})
	if len(empty.Items) != 0 {
		t.Fatalf("put without a claim must be skipped, got %v", empty.Items)
	}
}

// TestReplayRelease: release clears ownership and owned items but keeps held
// replicas (they belong to other peers' incarnations).
func TestReplayRelease(t *testing.T) {
	st := newState()
	st.apply(Record{Kind: RecClaim, Epoch: 1, Lo: 0, Hi: 10_000})
	st.apply(Record{Kind: RecPut, Epoch: 1, Key: 1000, Payload: "a"})
	st.apply(Record{Kind: RecReplicaPut, Key: 9999, Payload: "r"})
	st.apply(Record{Kind: RecRelease})
	if st.HasRange || st.Epoch != 0 || len(st.Items) != 0 {
		t.Fatalf("release must clear ownership: %+v", st)
	}
	if st.Replicas[9999] != "r" {
		t.Fatalf("release must keep held replicas, got %v", st.Replicas)
	}
}

func openTestDisk(t *testing.T, dir string, opts Options) *Disk {
	t.Helper()
	d, err := OpenDisk(dir, opts)
	if err != nil {
		t.Fatalf("OpenDisk(%s): %v", dir, err)
	}
	return d
}

// TestDiskRecovery: append a history, close cleanly, reopen, and get the same
// state back.
func TestDiskRecovery(t *testing.T) {
	dir := t.TempDir()
	d := openTestDisk(t, dir, Options{})
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(d.Append(Record{Kind: RecIdentity, Payload: "peer-1", Aux: "boot"}))
	must(d.Append(Record{Kind: RecClaim, Epoch: 4, Lo: 100, Hi: 9000}))
	must(d.Append(Record{Kind: RecPut, Epoch: 4, Key: 500, Payload: "a"}))
	must(d.Append(Record{Kind: RecPut, Epoch: 4, Key: 700, Payload: "b"}))
	must(d.Append(Record{Kind: RecDelete, Epoch: 4, Key: 500}))
	must(d.Append(Record{Kind: RecReplicaPut, Key: 42, Payload: "rep"}))
	must(d.Close())

	d2 := openTestDisk(t, dir, Options{})
	defer d2.Close()
	st, err := d2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if st.Addr != "peer-1" || st.Bootstrap != "boot" {
		t.Fatalf("identity not recovered: %+v", st)
	}
	if !st.HasRange || st.Epoch != 4 || st.Range.Lo != 100 || st.Range.Hi != 9000 {
		t.Fatalf("claim not recovered: %+v", st)
	}
	if len(st.Items) != 1 || st.Items[700] != "b" {
		t.Fatalf("items not recovered: %v", st.Items)
	}
	if st.Replicas[42] != "rep" {
		t.Fatalf("replicas not recovered: %v", st.Replicas)
	}
	if s := d2.Stats(); s.Name != "disk" || s.Records != 6 {
		t.Fatalf("stats after replay: %+v", s)
	}
}

// TestDiskCrashRecovery: a crash is modeled by NOT calling Close. With
// SyncInterval zero every append is fsynced, so a reopen recovers everything.
func TestDiskCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	d := openTestDisk(t, dir, Options{})
	if err := d.Append(Record{Kind: RecClaim, Epoch: 2, Lo: 0, Hi: 1000}); err != nil {
		t.Fatal(err)
	}
	if err := d.Append(Record{Kind: RecPut, Epoch: 2, Key: 10, Payload: "survives"}); err != nil {
		t.Fatal(err)
	}
	// No Close: the process died here.
	d2 := openTestDisk(t, dir, Options{})
	defer d2.Close()
	st, _ := d2.Load()
	if !st.HasRange || st.Epoch != 2 || st.Items[10] != "survives" {
		t.Fatalf("crash recovery lost fsynced state: %+v", st)
	}
}

// TestDiskSnapshotTruncatesWAL: a snapshot absorbs the log; recovery afterward
// comes from the snapshot alone plus any post-snapshot suffix.
func TestDiskSnapshotTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	d := openTestDisk(t, dir, Options{})
	if err := d.Append(Record{Kind: RecClaim, Epoch: 1, Lo: 0, Hi: 100}); err != nil {
		t.Fatal(err)
	}
	if err := d.Append(Record{Kind: RecPut, Epoch: 1, Key: 50, Payload: "snapped"}); err != nil {
		t.Fatal(err)
	}
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(filepath.Join(dir, "wal.log")); err != nil || fi.Size() != 0 {
		t.Fatalf("snapshot must truncate the WAL, size=%v err=%v", fi, err)
	}
	// A post-snapshot append lands in the fresh log suffix.
	if err := d.Append(Record{Kind: RecPut, Epoch: 1, Key: 60, Payload: "suffix"}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := openTestDisk(t, dir, Options{})
	defer d2.Close()
	st, _ := d2.Load()
	if st.Items[50] != "snapped" || st.Items[60] != "suffix" {
		t.Fatalf("snapshot+suffix recovery wrong: %v", st.Items)
	}
	if s := d2.Stats(); s.Records != 1 {
		t.Fatalf("only the suffix should replay as WAL records, got %d", s.Records)
	}
}

// TestDiskAutoSnapshot: SnapshotEvery triggers without an explicit call.
func TestDiskAutoSnapshot(t *testing.T) {
	dir := t.TempDir()
	d := openTestDisk(t, dir, Options{SnapshotEvery: 4})
	if err := d.Append(Record{Kind: RecClaim, Epoch: 1, Lo: 0, Hi: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := d.Append(Record{Kind: RecPut, Epoch: 1, Key: keyspace.Key(i), Payload: "v"}); err != nil {
			t.Fatal(err)
		}
	}
	if s := d.Stats(); s.Snapshots != 2 {
		t.Fatalf("8 appends at SnapshotEvery=4 should snapshot twice, got %d", s.Snapshots)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2 := openTestDisk(t, dir, Options{})
	defer d2.Close()
	st, _ := d2.Load()
	if len(st.Items) != 7 {
		t.Fatalf("auto-snapshot recovery lost items: %v", st.Items)
	}
}

// TestDiskTornTail: garbage after the last intact record (a crash mid-append)
// is dropped and physically truncated on reopen.
func TestDiskTornTail(t *testing.T) {
	dir := t.TempDir()
	d := openTestDisk(t, dir, Options{})
	if err := d.Append(Record{Kind: RecClaim, Epoch: 1, Lo: 0, Hi: 1000}); err != nil {
		t.Fatal(err)
	}
	if err := d.Append(Record{Kind: RecPut, Epoch: 1, Key: 5, Payload: "kept"}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	walPath := filepath.Join(dir, "wal.log")
	intact, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// A torn append: a plausible header whose body never made it to disk.
	torn := appendRecord(nil, Record{Kind: RecPut, Epoch: 1, Key: 6, Payload: "lost"})
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)-3]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	d2 := openTestDisk(t, dir, Options{})
	defer d2.Close()
	st, _ := d2.Load()
	if st.Items[5] != "kept" || len(st.Items) != 1 {
		t.Fatalf("torn-tail recovery wrong: %v", st.Items)
	}
	if data, _ := os.ReadFile(walPath); !bytes.Equal(data, intact) {
		t.Fatalf("torn tail must be truncated: got %d bytes, want %d", len(data), len(intact))
	}
}

// TestDiskCRCCorruption: a bit flip in a record's body stops replay at that
// record — it and everything after it are dropped.
func TestDiskCRCCorruption(t *testing.T) {
	dir := t.TempDir()
	d := openTestDisk(t, dir, Options{})
	if err := d.Append(Record{Kind: RecClaim, Epoch: 1, Lo: 0, Hi: 1000}); err != nil {
		t.Fatal(err)
	}
	first := appendRecord(nil, Record{Kind: RecClaim, Epoch: 1, Lo: 0, Hi: 1000})
	if err := d.Append(Record{Kind: RecPut, Epoch: 1, Key: 5, Payload: "corrupted"}); err != nil {
		t.Fatal(err)
	}
	if err := d.Append(Record{Kind: RecPut, Epoch: 1, Key: 6, Payload: "after"}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	walPath := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(first)+walHeaderLen+10] ^= 0xFF // flip a byte inside record 2's body
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	d2 := openTestDisk(t, dir, Options{})
	defer d2.Close()
	st, _ := d2.Load()
	if !st.HasRange || len(st.Items) != 0 {
		t.Fatalf("replay must stop at the corrupt record, got %+v", st)
	}
	if s := d2.Stats(); s.Records != 1 {
		t.Fatalf("only the intact prefix should replay, got %d records", s.Records)
	}
}

// TestDiskBatchedSync: with a sync interval, appends are buffered but visible
// in the shadow state immediately, and Sync forces them to the file.
func TestDiskBatchedSync(t *testing.T) {
	dir := t.TempDir()
	d := openTestDisk(t, dir, Options{SyncInterval: time.Hour})
	defer d.Close()
	if err := d.Append(Record{Kind: RecClaim, Epoch: 1, Lo: 0, Hi: 1000}); err != nil {
		t.Fatal(err)
	}
	st, _ := d.Load()
	if !st.HasRange {
		t.Fatalf("shadow state must reflect buffered appends")
	}
	if fi, err := os.Stat(filepath.Join(dir, "wal.log")); err != nil || fi.Size() != 0 {
		t.Fatalf("append should still be buffered, wal size=%v err=%v", fi, err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(filepath.Join(dir, "wal.log")); err != nil || fi.Size() == 0 {
		t.Fatalf("Sync must flush the batch, wal size=%v err=%v", fi, err)
	}
}

// TestDiskStager: chunks spill to a file, Join validates the committed count
// and returns the reassembled payload, and the spill file is removed.
func TestDiskStager(t *testing.T) {
	dir := t.TempDir()
	s := newDiskStager(dir)
	chunks := [][]byte{[]byte("alpha-"), []byte("beta-"), []byte("gamma")}
	for _, c := range chunks {
		if err := s.Append(c); err != nil {
			t.Fatal(err)
		}
	}
	if s.Chunks() != 3 || s.Bytes() != int64(len("alpha-beta-gamma")) {
		t.Fatalf("staging counters wrong: chunks=%d bytes=%d", s.Chunks(), s.Bytes())
	}
	got, err := s.Join(3)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "alpha-beta-gamma" {
		t.Fatalf("joined payload wrong: %q", got)
	}
	if ents, _ := os.ReadDir(dir); len(ents) != 0 {
		t.Fatalf("Join must remove the spill file, left %d entries", len(ents))
	}

	// Chunk-count mismatch is the transport's stream-abort condition.
	s2 := newDiskStager(dir)
	if err := s2.Append([]byte("only")); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Join(2); !errors.Is(err, transport.ErrStreamAborted) {
		t.Fatalf("count mismatch must be ErrStreamAborted, got %v", err)
	}

	// Discard is idempotent and removes a half-staged file.
	s3 := newDiskStager(dir)
	if err := s3.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	s3.Discard()
	s3.Discard()
	if ents, _ := os.ReadDir(dir); len(ents) != 0 {
		t.Fatalf("Discard must remove the spill file, left %d entries", len(ents))
	}

	// Zero-chunk transfers never touch disk.
	s4 := newDiskStager(dir)
	if out, err := s4.Join(0); err != nil || out != nil {
		t.Fatalf("zero-chunk join: out=%v err=%v", out, err)
	}
}

// TestMemoryBackend: the default backend drops appends, loads nothing, and
// stages in RAM under the cap.
func TestMemoryBackend(t *testing.T) {
	m := NewMemory()
	if err := m.Append(Record{Kind: RecClaim, Epoch: 1, Lo: 0, Hi: 10}); err != nil {
		t.Fatal(err)
	}
	st, err := m.Load()
	if err != nil {
		t.Fatal(err)
	}
	if st.HasRange {
		t.Fatalf("memory backend must recover nothing, got %+v", st)
	}
	if s := m.Stats(); s.Name != "memory" || s.Records != 1 {
		t.Fatalf("memory stats wrong: %+v", s)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDiskFactoryPerAddr: two addresses get disjoint directories; the same
// address reopens its own history.
func TestDiskFactoryPerAddr(t *testing.T) {
	f := DiskFactory{Dir: t.TempDir()}
	b1, err := f.Open("127.0.0.1:7001")
	if err != nil {
		t.Fatal(err)
	}
	if err := b1.Append(Record{Kind: RecClaim, Epoch: 9, Lo: 0, Hi: 77}); err != nil {
		t.Fatal(err)
	}
	if err := b1.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := f.Open("127.0.0.1:7002")
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if st, _ := b2.Load(); st.HasRange {
		t.Fatalf("other address must start empty, got %+v", st)
	}
	b1again, err := f.Open("127.0.0.1:7001")
	if err != nil {
		t.Fatal(err)
	}
	defer b1again.Close()
	if st, _ := b1again.Load(); !st.HasRange || st.Epoch != 9 {
		t.Fatalf("same address must reopen its history, got %+v", st)
	}
}

// BenchmarkWALAppend measures the hot append path. The fsync-batched variant
// is the configuration the recovery smoke and production-style runs use; the
// fsync-every-append variant is the full-durability floor.
func BenchmarkWALAppend(b *testing.B) {
	rec := Record{Kind: RecPut, Epoch: 1, Key: 42, Payload: strings.Repeat("x", 256)}
	b.Run("batched", func(b *testing.B) {
		d, err := OpenDisk(b.TempDir(), Options{SyncInterval: 100 * time.Millisecond, SnapshotEvery: -1})
		if err != nil {
			b.Fatal(err)
		}
		defer d.Close()
		if err := d.Append(Record{Kind: RecClaim, Epoch: 1, Lo: 0, Hi: 1 << 30}); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(walHeaderLen + 1 + 8*4 + 4 + len(rec.Payload) + 4))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := d.Append(rec); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fsync-every", func(b *testing.B) {
		if testing.Short() {
			b.Skip("fsync-per-append benchmark skipped in -short mode")
		}
		d, err := OpenDisk(b.TempDir(), Options{SnapshotEvery: -1})
		if err != nil {
			b.Fatal(err)
		}
		defer d.Close()
		if err := d.Append(Record{Kind: RecClaim, Epoch: 1, Lo: 0, Hi: 1 << 30}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := d.Append(rec); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("memory", func(b *testing.B) {
		m := NewMemory()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := m.Append(rec); err != nil {
				b.Fatal(err)
			}
		}
	})
}
