package storage

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/keyspace"
	"repro/internal/transport"
)

// Disk file layout inside one peer's directory:
//
//	wal.log       append-only write-ahead log (see wal.go for framing)
//	snapshot.pep  last full-state snapshot (magic + CRC + gob)
//	stage/        spill files for in-flight chunked stream transfers
//
// Snapshot/truncate protocol: the shadow state (maintained record by record
// by the same apply function recovery uses) is written to snapshot.tmp,
// fsynced, renamed over snapshot.pep, and only then is the WAL truncated to
// empty — a crash between any two steps recovers either the old snapshot
// plus the full log or the new snapshot plus a (possibly empty) log suffix,
// never a torn combination.

// snapMagic identifies a snapshot file and its format version.
const snapMagic = "PEPSNAP1"

// Options tunes a Disk backend.
type Options struct {
	// SyncInterval batches WAL fsyncs: appends are buffered and flushed to
	// stable storage at most this often by a background flusher. Zero means
	// fsync on every append (full durability, the recovery smoke's setting);
	// a positive interval bounds the data a crash can lose to that window.
	SyncInterval time.Duration
	// SnapshotEvery writes a snapshot and truncates the WAL after this many
	// appended records (default 8192, <0 disables automatic snapshots).
	SnapshotEvery int
}

func (o Options) withDefaults() Options {
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 8192
	}
	return o
}

// Disk is the durable backend: WAL + snapshots + disk-staged streams.
type Disk struct {
	dir  string
	opts Options

	mu        sync.Mutex
	wal       *os.File
	pending   []byte // encoded records not yet written+fsynced
	state     State  // shadow state: snapshot ∘ log ∘ pending
	walBytes  int64
	sinceSnap int    // records appended since the last snapshot
	records   uint64 // total records appended since open
	snapshots uint64
	closed    bool

	stopCh  chan struct{}
	flushWG sync.WaitGroup
}

// OpenDisk opens (creating if needed) the peer directory at dir, recovers
// the snapshot and write-ahead log, truncates any torn WAL tail, and returns
// the backend ready for appends.
func OpenDisk(dir string, opts Options) (*Disk, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(filepath.Join(dir, "stage"), 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating %s: %w", dir, err)
	}
	d := &Disk{dir: dir, opts: opts, state: newState(), stopCh: make(chan struct{})}

	if err := d.loadSnapshot(); err != nil {
		return nil, err
	}
	walPath := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(walPath)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("storage: reading WAL: %w", err)
	}
	valid, recs := replayWAL(data, &d.state)
	d.records = recs
	d.walBytes = valid
	if int64(len(data)) > valid {
		// Torn tail from a crash mid-append: drop it so new records are not
		// appended after garbage.
		if err := os.Truncate(walPath, valid); err != nil {
			return nil, fmt.Errorf("storage: truncating torn WAL tail: %w", err)
		}
	}
	d.wal, err = os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: opening WAL: %w", err)
	}
	// Orphaned spill files from a previous incarnation's in-flight transfers
	// are dead weight: the transfers they staged never committed.
	if ents, err := os.ReadDir(filepath.Join(dir, "stage")); err == nil {
		for _, e := range ents {
			os.Remove(filepath.Join(dir, "stage", e.Name()))
		}
	}
	if opts.SyncInterval > 0 {
		d.flushWG.Add(1)
		go d.flushLoop()
	}
	return d, nil
}

func (d *Disk) flushLoop() {
	defer d.flushWG.Done()
	t := time.NewTicker(d.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			d.mu.Lock()
			if !d.closed {
				d.flushLocked()
			}
			d.mu.Unlock()
		case <-d.stopCh:
			return
		}
	}
}

// Append encodes the record, applies it to the shadow state, and either
// fsyncs immediately (SyncInterval zero) or leaves it for the flusher.
func (d *Disk) Append(rec Record) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("storage: append on closed backend")
	}
	d.pending = appendRecord(d.pending, rec)
	d.state.apply(rec)
	d.records++
	d.sinceSnap++
	if d.opts.SyncInterval <= 0 {
		if err := d.flushLocked(); err != nil {
			return err
		}
	}
	if d.opts.SnapshotEvery > 0 && d.sinceSnap >= d.opts.SnapshotEvery {
		return d.snapshotLocked()
	}
	return nil
}

// flushLocked writes and fsyncs the pending batch. Callers hold d.mu.
func (d *Disk) flushLocked() error {
	if len(d.pending) == 0 {
		return nil
	}
	n, err := d.wal.Write(d.pending)
	d.walBytes += int64(n)
	if err != nil {
		return fmt.Errorf("storage: WAL write: %w", err)
	}
	d.pending = d.pending[:0]
	if err := d.wal.Sync(); err != nil {
		return fmt.Errorf("storage: WAL fsync: %w", err)
	}
	return nil
}

// Sync forces every appended record to stable storage.
func (d *Disk) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	return d.flushLocked()
}

// Load returns a deep copy of the recovered (and since maintained) state.
func (d *Disk) Load() (State, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state.clone(), nil
}

// NewStager spills this transfer's chunks to a file under stage/; maxBytes
// is ignored (disk staging is what lifts the RAM cap).
func (d *Disk) NewStager(maxBytes int64) transport.ChunkStager {
	return newDiskStager(filepath.Join(d.dir, "stage"))
}

// Stats reports the disk backend's counters.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Stats{Name: "disk", Records: d.records, Snapshots: d.snapshots, WALBytes: d.walBytes + int64(len(d.pending))}
}

// Snapshot writes the current shadow state and truncates the WAL.
func (d *Disk) Snapshot() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("storage: snapshot on closed backend")
	}
	return d.snapshotLocked()
}

func (d *Disk) snapshotLocked() error {
	// The pending batch is part of the state being snapshotted; make the log
	// consistent with it first so a failed snapshot leaves full recovery.
	if err := d.flushLocked(); err != nil {
		return err
	}
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(d.state); err != nil {
		return fmt.Errorf("storage: encoding snapshot: %w", err)
	}
	var head [len(snapMagic) + 8]byte
	copy(head[:], snapMagic)
	binary.LittleEndian.PutUint32(head[len(snapMagic):], uint32(body.Len()))
	binary.LittleEndian.PutUint32(head[len(snapMagic)+4:], crc32.Checksum(body.Bytes(), walCRC))
	tmp := filepath.Join(d.dir, "snapshot.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: creating snapshot: %w", err)
	}
	if _, err := f.Write(head[:]); err == nil {
		_, err = f.Write(body.Bytes())
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("storage: writing snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(d.dir, "snapshot.pep")); err != nil {
		return fmt.Errorf("storage: installing snapshot: %w", err)
	}
	// The snapshot now carries everything the log described: truncate it.
	if err := d.wal.Truncate(0); err != nil {
		return fmt.Errorf("storage: truncating WAL after snapshot: %w", err)
	}
	if _, err := d.wal.Seek(0, 0); err != nil {
		return fmt.Errorf("storage: rewinding WAL after snapshot: %w", err)
	}
	d.walBytes = 0
	d.sinceSnap = 0
	d.snapshots++
	return nil
}

func (d *Disk) loadSnapshot() error {
	data, err := os.ReadFile(filepath.Join(d.dir, "snapshot.pep"))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: reading snapshot: %w", err)
	}
	if len(data) < len(snapMagic)+8 || string(data[:len(snapMagic)]) != snapMagic {
		return fmt.Errorf("storage: snapshot file is not a %s snapshot", snapMagic)
	}
	bodyLen := int(binary.LittleEndian.Uint32(data[len(snapMagic):]))
	crc := binary.LittleEndian.Uint32(data[len(snapMagic)+4:])
	body := data[len(snapMagic)+8:]
	if bodyLen != len(body) || crc32.Checksum(body, walCRC) != crc {
		return fmt.Errorf("storage: snapshot is corrupt (length or CRC mismatch)")
	}
	st := newState()
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&st); err != nil {
		return fmt.Errorf("storage: decoding snapshot: %w", err)
	}
	if st.Items == nil {
		st.Items = make(map[keyspace.Key]string)
	}
	if st.Replicas == nil {
		st.Replicas = make(map[keyspace.Key]string)
	}
	d.state = st
	return nil
}

// Close flushes pending records and releases the WAL file. Crash simulation
// in tests skips Close entirely.
func (d *Disk) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	err := d.flushLocked()
	cerr := d.wal.Close()
	d.mu.Unlock()
	close(d.stopCh)
	d.flushWG.Wait()
	if err != nil {
		return err
	}
	return cerr
}

// DiskFactory opens one durable backend per peer under Dir, in a
// subdirectory derived from the peer's address. A process that restarts
// listening on the same address therefore reopens its own history; a
// rejoined peer under a fresh identity starts an empty one.
type DiskFactory struct {
	Dir  string
	Opts Options
}

// Open opens (or creates) the backend directory for addr.
func (f DiskFactory) Open(addr transport.Addr) (Backend, error) {
	return OpenDisk(filepath.Join(f.Dir, sanitizeAddr(string(addr))), f.Opts)
}

// NewStager is a transport.StagerFactory spilling to a process-wide staging
// area under Dir. The transport needs its stager before any per-peer backend
// exists, so this hook lives on the factory: wiring it into the transport's
// config makes BOTH sides — inbound streamed requests and dial-side chunked
// responses — spill to disk, lifting the MaxStreamBytes RAM ceiling
// everywhere at once (maxBytes is ignored by design).
func (f DiskFactory) NewStager(maxBytes int64) transport.ChunkStager {
	dir := filepath.Join(f.Dir, "stage")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		// Fall back to RAM staging under the cap rather than poisoning every
		// transfer: a missing spill directory degrades capacity, not safety.
		return transport.NewMemStager(maxBytes)
	}
	return newDiskStager(dir)
}

// sanitizeAddr maps an address to a filesystem-safe directory name.
func sanitizeAddr(addr string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '-':
			return r
		default:
			return '_'
		}
	}, addr)
}
