package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/datastore"
	"repro/internal/keyspace"
	"repro/internal/replication"
	"repro/internal/ring"
	"repro/internal/router"
	"repro/internal/simnet"
)

// fastConfig runs the paper's defaults at aggressive millisecond scale so
// integration tests finish quickly.
func fastConfig() Config {
	return Config{
		Net: simnet.Config{
			MinLatency:    50 * time.Microsecond,
			MaxLatency:    200 * time.Microsecond,
			DeadCallDelay: 2 * time.Millisecond,
			Seed:          7,
			// Every protocol message is forced through the wire codec, so the
			// whole suite doubles as proof that the system survives a real
			// network boundary (no by-reference sharing, no unregistered or
			// unencodable payloads).
			StrictSerialization: true,
		},
		Ring: ring.Config{
			SuccListLen: 4,
			StabPeriod:  5 * time.Millisecond,
			PingPeriod:  5 * time.Millisecond,
			CallTimeout: 40 * time.Millisecond,
			AckTimeout:  3 * time.Second,
		},
		Store: datastore.Config{
			StorageFactor:      5,
			CheckPeriod:        10 * time.Millisecond,
			CallTimeout:        40 * time.Millisecond,
			MaintenanceTimeout: 3 * time.Second,
		},
		Replication: replication.Config{
			Factor:        3,
			RefreshPeriod: 10 * time.Millisecond,
			CallTimeout:   40 * time.Millisecond,
		},
		Router: router.Config{
			RefreshPeriod: 15 * time.Millisecond,
			CallTimeout:   40 * time.Millisecond,
			MaxHops:       128,
		},
		QueryAttemptTimeout: 2 * time.Second,
		MaxQueryAttempts:    30,
		Seed:                7,
	}
}

func mkItem(k uint64) datastore.Item {
	return datastore.Item{Key: keyspace.Key(k), Payload: fmt.Sprintf("item-%d", k)}
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func bootCluster(t *testing.T, cfg Config, freePeers int) *Cluster {
	t.Helper()
	c := NewCluster(cfg)
	t.Cleanup(c.Shutdown)
	// Send failures are silent (as on a real network), so a codec rejection
	// of a one-way message would otherwise go unnoticed.
	t.Cleanup(func() {
		if err := c.Net().StrictErr(); err != nil {
			t.Errorf("strict serialization violation: %v", err)
		}
	})
	if _, err := c.AddFirstPeer(); err != nil {
		t.Fatal(err)
	}
	if err := c.AddFreePeers(freePeers); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBootstrapInsertAndQuery(t *testing.T) {
	c := bootCluster(t, fastConfig(), 8)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Insert 40 items: with sf=5 the single first peer must split repeatedly.
	for i := 1; i <= 40; i++ {
		if err := c.InsertItem(ctx, mkItem(uint64(i)*1000)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	waitFor(t, 10*time.Second, "splits to spread the load", func() bool {
		return len(c.LivePeers()) >= 4
	})

	// A full-range query must return everything.
	items, err := c.RangeQuery(ctx, keyspace.ClosedInterval(0, 41*1000))
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 40 {
		t.Fatalf("full query returned %d items, want 40", len(items))
	}
	// A sub-range query returns exactly the contained keys.
	items, err = c.RangeQuery(ctx, keyspace.ClosedInterval(10*1000, 20*1000))
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 11 {
		t.Fatalf("sub-range query returned %d items, want 11", len(items))
	}
	for _, it := range items {
		if it.Key < 10*1000 || it.Key > 20*1000 {
			t.Errorf("item %d outside the queried range", it.Key)
		}
	}

	if err := c.CheckRing(); err != nil {
		t.Errorf("ring inconsistent: %v", err)
	}
	if v := c.Log().CheckAllQueries(); len(v) != 0 {
		t.Errorf("journal violations: %v", v)
	}
}

func TestDeleteAndMerge(t *testing.T) {
	c := bootCluster(t, fastConfig(), 8)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	for i := 1; i <= 40; i++ {
		if err := c.InsertItem(ctx, mkItem(uint64(i)*1000)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "splits", func() bool { return len(c.LivePeers()) >= 4 })

	// Delete most items: peers underflow and merge away.
	for i := 1; i <= 34; i++ {
		found, err := c.DeleteItem(ctx, keyspace.Key(uint64(i)*1000))
		if err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
		if !found {
			t.Errorf("delete %d: item not found", i)
		}
	}
	waitFor(t, 20*time.Second, "merges to shrink the ring", func() bool {
		return len(c.LivePeers()) <= 2
	})

	items, err := c.RangeQuery(ctx, keyspace.ClosedInterval(0, 41*1000))
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 6 {
		t.Fatalf("query after merges returned %d items, want 6", len(items))
	}
	if err := c.CheckRing(); err != nil {
		t.Errorf("ring inconsistent after merges: %v", err)
	}
	if v := c.Log().CheckAllQueries(); len(v) != 0 {
		t.Errorf("journal violations: %v", v)
	}
}

// Theorem 3 end to end: concurrent inserts, deletes and range queries with
// splits/merges/redistributions in flight never produce an incorrect result.
func TestQueryCorrectnessUnderChurn(t *testing.T) {
	c := bootCluster(t, fastConfig(), 12)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Seed the index.
	for i := 1; i <= 30; i++ {
		if err := c.InsertItem(ctx, mkItem(uint64(i)*100)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "initial splits", func() bool { return len(c.LivePeers()) >= 3 })

	stop := make(chan struct{})

	// Mutator: inserts and deletes items to force splits/merges/redistributes.
	var mutator sync.WaitGroup
	mutator.Add(1)
	go func() {
		defer mutator.Done()
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := uint64(rng.Intn(60)+1) * 100
			if rng.Intn(3) == 0 {
				_, _ = c.DeleteItem(ctx, keyspace.Key(k))
			} else {
				_ = c.InsertItem(ctx, mkItem(k))
			}
		}
	}()

	// Queriers: concurrent range queries of varying span.
	var queriers sync.WaitGroup
	errCh := make(chan error, 64)
	for q := 0; q < 3; q++ {
		queriers.Add(1)
		go func(q int) {
			defer queriers.Done()
			rng := rand.New(rand.NewSource(int64(q + 1)))
			for i := 0; i < 25; i++ {
				lb := uint64(rng.Intn(40)+1) * 100
				span := uint64(rng.Intn(20)+1) * 100
				_, err := c.RangeQuery(ctx, keyspace.ClosedInterval(keyspace.Key(lb), keyspace.Key(lb+span)))
				if err != nil {
					errCh <- fmt.Errorf("query %d/%d: %w", q, i, err)
					return
				}
			}
		}(q)
	}
	queriers.Wait()
	close(stop)
	mutator.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	if v := c.Log().CheckAllQueries(); len(v) != 0 {
		for _, viol := range v {
			t.Errorf("correctness violation: %v", viol)
		}
	}
	if err := c.CheckRing(); err != nil {
		t.Errorf("ring inconsistent after churn: %v", err)
	}
}

// Item availability across failures: with replication factor k, killing a
// serving peer must not lose items — its successor revives them.
func TestFailureRevival(t *testing.T) {
	cfg := fastConfig()
	cfg.Replication.Factor = 3
	c := bootCluster(t, cfg, 8)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	for i := 1; i <= 40; i++ {
		if err := c.InsertItem(ctx, mkItem(uint64(i)*1000)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "splits", func() bool { return len(c.LivePeers()) >= 4 })
	// Let replication settle.
	time.Sleep(100 * time.Millisecond)

	// Kill a serving peer that holds items.
	var victim *Peer
	for _, p := range c.LivePeers() {
		if p.Store.ItemCount() > 0 {
			victim = p
			break
		}
	}
	if victim == nil {
		t.Fatal("no victim found")
	}
	lost := victim.Store.ItemCount()
	t.Logf("killing %s holding %d items", victim.Addr, lost)
	c.KillPeer(victim.Addr)

	// All 40 items must eventually be queryable again.
	waitFor(t, 20*time.Second, "revival of lost items", func() bool {
		items, err := c.RangeQuery(ctx, keyspace.ClosedInterval(0, 41*1000))
		return err == nil && len(items) == 40
	})
	if v := c.Log().CheckAllQueries(); len(v) != 0 {
		t.Errorf("journal violations: %v", v)
	}
}

// System keeps operating while peers are killed at a steady rate (the
// paper's failure mode, Section 6.3.4).
func TestOperationUnderSteadyFailures(t *testing.T) {
	cfg := fastConfig()
	cfg.Replication.Factor = 4
	c := bootCluster(t, cfg, 16)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	for i := 1; i <= 60; i++ {
		if err := c.InsertItem(ctx, mkItem(uint64(i)*500)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "splits", func() bool { return len(c.LivePeers()) >= 5 })
	time.Sleep(100 * time.Millisecond)

	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 3; round++ {
		live := c.LivePeers()
		if len(live) < 4 {
			break
		}
		victim := live[rng.Intn(len(live))]
		c.KillPeer(victim.Addr)
		time.Sleep(150 * time.Millisecond)

		// The index must still answer queries (items on the failed peer may
		// be mid-revival, so just require success, not cardinality).
		if _, err := c.RangeQuery(ctx, keyspace.ClosedInterval(0, 61*500)); err != nil {
			t.Fatalf("round %d: query failed: %v", round, err)
		}
	}
	// After the dust settles, everything must be back.
	waitFor(t, 20*time.Second, "full recovery", func() bool {
		items, err := c.RangeQuery(ctx, keyspace.ClosedInterval(0, 61*500))
		return err == nil && len(items) == 60
	})
	if v := c.Log().CheckAllQueries(); len(v) != 0 {
		t.Errorf("journal violations: %v", v)
	}
}

func TestEqualityQueryIsPointRange(t *testing.T) {
	c := bootCluster(t, fastConfig(), 4)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 1; i <= 12; i++ {
		if err := c.InsertItem(ctx, mkItem(uint64(i)*10)); err != nil {
			t.Fatal(err)
		}
	}
	items, err := c.RangeQuery(ctx, keyspace.Point(70))
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || items[0].Key != 70 {
		t.Fatalf("point query = %v, want exactly key 70", items)
	}
	items, err = c.RangeQuery(ctx, keyspace.Point(75))
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 0 {
		t.Fatalf("point query for absent key = %v, want empty", items)
	}
}

func TestOpenClosedBounds(t *testing.T) {
	c := bootCluster(t, fastConfig(), 4)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 1; i <= 10; i++ {
		if err := c.InsertItem(ctx, mkItem(uint64(i)*10)); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		iv   keyspace.Interval
		want int
	}{
		{keyspace.ClosedInterval(20, 50), 4},
		{keyspace.Interval{Lb: 20, Ub: 50, LbOpen: true}, 3},
		{keyspace.Interval{Lb: 20, Ub: 50, UbOpen: true}, 3},
		{keyspace.Interval{Lb: 20, Ub: 50, LbOpen: true, UbOpen: true}, 2},
	}
	for _, tc := range cases {
		items, err := c.RangeQuery(ctx, tc.iv)
		if err != nil {
			t.Fatalf("%v: %v", tc.iv, err)
		}
		if len(items) != tc.want {
			t.Errorf("%v returned %d items, want %d", tc.iv, len(items), tc.want)
		}
	}
}

func TestInsertOverwriteSameKey(t *testing.T) {
	c := bootCluster(t, fastConfig(), 2)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := c.InsertItem(ctx, datastore.Item{Key: 5, Payload: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := c.InsertItem(ctx, datastore.Item{Key: 5, Payload: "b"}); err != nil {
		t.Fatal(err)
	}
	items, err := c.RangeQuery(ctx, keyspace.Point(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || items[0].Payload != "b" {
		t.Fatalf("overwrite result = %v", items)
	}
}

func TestDeleteMissingKey(t *testing.T) {
	c := bootCluster(t, fastConfig(), 2)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	found, err := c.DeleteItem(ctx, 12345)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Error("deleting a missing key reported found")
	}
}

func TestFreePoolRecycling(t *testing.T) {
	c := bootCluster(t, fastConfig(), 6)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	before := c.FreeCount()
	for i := 1; i <= 40; i++ {
		if err := c.InsertItem(ctx, mkItem(uint64(i)*1000)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "splits to consume free peers", func() bool {
		return c.FreeCount() < before
	})
	// Delete down to trigger merges; merged peers must be replaced in the pool.
	for i := 1; i <= 36; i++ {
		_, _ = c.DeleteItem(ctx, keyspace.Key(uint64(i)*1000))
	}
	waitFor(t, 20*time.Second, "merges to refill the pool", func() bool {
		return len(c.LivePeers()) <= 2
	})
	if c.FreeCount() == 0 {
		t.Error("free pool empty after merges; merged peers were not recycled")
	}
}
