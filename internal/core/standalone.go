package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/history"
	"repro/internal/transport"
)

// Standalone support: one OS process hosting a single peer stack over a real
// transport (cmd/pepperd -listen), the first step toward multi-machine
// clusters. The bootstrap process owns an AddrPool — the free-peer pool of
// the P-Ring Data Store, populated by remote processes announcing
// themselves — and splits draw remote peers from it: every protocol message
// of the resulting membership change crosses the real wire.

// methodAnnounceFree registers a remote process's peer in the bootstrap
// node's free pool.
const methodAnnounceFree = "core.announceFree"

// announceMsg announces a free peer's dialable address.
type announceMsg struct {
	Addr transport.Addr
}

// AddrPool is a datastore.FreePool over announced remote peer addresses.
type AddrPool struct {
	mu    sync.Mutex
	addrs []transport.Addr
}

// Add parks a free peer's address in the pool.
func (ap *AddrPool) Add(addr transport.Addr) {
	ap.mu.Lock()
	defer ap.mu.Unlock()
	for _, a := range ap.addrs {
		if a == addr {
			return
		}
	}
	ap.addrs = append(ap.addrs, addr)
}

// Acquire pops a free peer for a split.
func (ap *AddrPool) Acquire() (transport.Addr, bool) {
	ap.mu.Lock()
	defer ap.mu.Unlock()
	if len(ap.addrs) == 0 {
		return "", false
	}
	addr := ap.addrs[0]
	ap.addrs = ap.addrs[1:]
	return addr, true
}

// Release drops a merged-away peer. The remote stack is defunct (the paper's
// model forbids re-entering with the same identifier); the operator restarts
// the process to rejoin, which announces a fresh peer.
func (ap *AddrPool) Release(transport.Addr) {}

// Len returns the number of pooled free peers.
func (ap *AddrPool) Len() int {
	ap.mu.Lock()
	defer ap.mu.Unlock()
	return len(ap.addrs)
}

// Standalone is a single peer stack bound to a real transport endpoint,
// running in its own OS process.
type Standalone struct {
	Peer *Peer
	Log  *history.Log
	Pool *AddrPool

	tr transport.Transport
}

// NewStandalone assembles a peer stack on tr at addr, which must be the
// dialable address other processes reach this one at (the transport is
// registered with exactly this address as the peer's identity). The journal
// records this process's operations only; cross-process auditing would need
// journal shipping, which is out of scope here.
func NewStandalone(tr transport.Transport, addr transport.Addr, cfg Config) (*Standalone, error) {
	cfg = cfg.withDefaults()
	s := &Standalone{Log: history.NewLog(), Pool: &AddrPool{}, tr: tr}
	p, err := assemblePeer(tr, addr, cfg, s.Log, s.Pool)
	if err != nil {
		return nil, err
	}
	s.Peer = p
	// Accept free-peer announcements from joining processes. Installed
	// before Activate so no announce can arrive at a mux that lacks the
	// handler.
	p.Mux.Handle(methodAnnounceFree, func(_ transport.Addr, _ string, payload any) (any, error) {
		msg, ok := payload.(announceMsg)
		if !ok {
			return nil, fmt.Errorf("core: bad announce payload %T", payload)
		}
		s.Pool.Add(msg.Addr)
		return true, nil
	})
	if err := p.Activate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Bootstrap makes this process the ring's first member, owning the whole
// key space.
func (s *Standalone) Bootstrap() error {
	if err := s.Peer.Ring.InitRing(); err != nil {
		return err
	}
	s.Peer.Store.InitFirstPeer()
	s.Peer.Store.Start()
	s.Peer.Rep.Start()
	s.Peer.Router.Start()
	return nil
}

// JoinAsFree announces this process's peer to the bootstrap node as a free
// peer. The peer stays FREE until a split on the bootstrap side draws it
// from the pool and inserts it into the ring, at which point the ring's
// joined event starts the local component loops.
func (s *Standalone) JoinAsFree(ctx context.Context, bootstrap transport.Addr) error {
	resp, err := s.tr.Call(ctx, s.Peer.Addr, bootstrap, methodAnnounceFree, announceMsg{Addr: s.Peer.Addr})
	if err != nil {
		return fmt.Errorf("core: announce to %s failed: %w", bootstrap, err)
	}
	if ok, _ := resp.(bool); !ok {
		return fmt.Errorf("core: announce to %s rejected: %v", bootstrap, resp)
	}
	return nil
}

// Close stops the peer stack's background work. The transport is the
// caller's to close.
func (s *Standalone) Close() {
	s.Peer.Stop()
}
