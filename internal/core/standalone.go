package core

import (
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/datastore"
	"repro/internal/history"
	"repro/internal/keyspace"
	"repro/internal/ops"
	"repro/internal/ring"
	"repro/internal/storage"
	"repro/internal/transport"
)

// Standalone support: one OS process hosting a single peer stack over a real
// transport (cmd/pepperd -listen), the first step toward multi-machine
// clusters. The bootstrap process owns an AddrPool — the free-peer pool of
// the P-Ring Data Store, populated by remote processes announcing
// themselves — and splits draw remote peers from it: every protocol message
// of the resulting membership change crosses the real wire.

// methodAnnounceFree registers a remote process's peer in the bootstrap
// node's free pool.
const methodAnnounceFree = "core.announceFree"

// methodProbe serves operational probes: a thin RPC client (pepperd -probe,
// the CI cluster smoke) asks a running process for its state and optionally
// has it execute a range query and a journal audit on the prober's behalf.
const methodProbe = "core.probe"

// methodAcquireFree lends a pooled free peer to a remote process's split.
// Free peers announce only to the bootstrap, so without this an overflowed
// non-bootstrap peer could never split: its local pool is always empty.
const methodAcquireFree = "core.acquireFree"

// announceMsg announces a free peer's dialable address.
type announceMsg struct {
	Addr transport.Addr
}

// ProbeRequest and ProbeStatus are the versioned ops contract; the types
// live in internal/ops (the documented stable JSON schema) and are aliased
// here so existing callers keep working.
type (
	ProbeRequest = ops.ProbeRequest
	ProbeStatus  = ops.ProbeStatus
)

// Probe asks the standalone process at addr for its status; any process (or
// a bare transport client like pepperd -probe) can issue it.
func Probe(ctx context.Context, tr transport.Transport, from, addr transport.Addr, req ProbeRequest) (ProbeStatus, error) {
	resp, err := tr.Call(ctx, from, addr, methodProbe, req)
	if err != nil {
		return ProbeStatus{}, err
	}
	st, ok := resp.(ProbeStatus)
	if !ok {
		return ProbeStatus{}, fmt.Errorf("core: bad probe response %T", resp)
	}
	return st, nil
}

// handleProbe serves methodProbe against the current peer stack.
func (s *Standalone) handleProbe(_ transport.Addr, _ string, payload any) (any, error) {
	req, ok := payload.(ProbeRequest)
	if !ok {
		return nil, fmt.Errorf("core: bad probe payload %T", payload)
	}
	p := s.CurrentPeer()
	resp := ProbeStatus{
		SchemaVersion: ops.SchemaVersion,
		State:         p.Ring.State().String(),
		Val:           p.Ring.Self().Val,
		Items:         p.Store.ItemCount(),
		Replicas:      p.Rep.ReplicaCount(),
		FreePool:      s.Pool.Len(),
		QueryCount:    -1,
		Violations:    -1,
	}
	if p.Backend != nil {
		bs := p.Backend.Stats()
		resp.Backend = bs.Name
		resp.WALRecords = bs.Records
		resp.WALBytes = bs.WALBytes
		resp.Snapshots = bs.Snapshots
	}
	resp.Recovered, resp.RecoveredItems = s.Recovered()
	if rng, epoch, has := p.Store.RangeEpoch(); has {
		resp.HasRange, resp.RangeLo, resp.RangeHi = true, rng.Lo, rng.Hi
		resp.Epoch = epoch
	}
	resp.LeaseViolations = -1
	resp.LeaseAgeMs = -1
	if enabled, age, expired := p.Store.LeaseInfo(); enabled {
		resp.LeaseEnabled, resp.LeaseExpired = true, expired
		if resp.HasRange {
			resp.LeaseAgeMs = age.Milliseconds()
		}
	}
	resp.LeaseAdoptions = p.Store.LeaseAdoptions.Load()
	if req.LeaseAudit {
		resp.LeaseViolations = len(s.Log.CheckLeases())
	}
	if g := p.Gossip; g != nil {
		resp.GossipMembers = g.MemberCount()
		resp.GossipFree = g.FreeCount()
		resp.GossipRounds = g.Rounds()
		resp.SigRejects += g.SigRejects()
	}
	resp.SigRejects += p.Rep.SigRejects.Load()
	if wsp, ok := s.tr.(transport.WireStatsProvider); ok {
		ws := wsp.WireStats()
		resp.AuthEnabled = ws.AuthEnabled
		resp.HandshakeRejects = ws.HandshakeRejects
		resp.StreamResumes = ws.StreamResumes
	}
	if req.LoadItems > 0 {
		lo, hi, err := s.probeLoad(p, req.LoadItems)
		if err != nil {
			return nil, err
		}
		resp.LoadedLo, resp.LoadedHi = lo, hi
		resp.Items = p.Store.ItemCount()
	}
	resp.StaleEpochRejects = p.Store.StaleEpochRejects.Load()
	resp.StaleChainRefusals = p.Rep.StaleChainRefusals.Load()
	resp.StepDowns = p.Store.StepDowns.Load()
	if cache := p.Router.Cache(); cache != nil {
		st := cache.Stats()
		resp.CacheHits = st.Hits
		resp.CacheMisses = st.Misses
		resp.CacheEvictions = st.Evictions
		resp.CacheInvalidations = st.Invalidations
		resp.CacheEntries = st.Size
	}
	resp.ReplicaReads = p.ReplicaReads.Load()
	if err := s.RejoinErr(); err != nil {
		resp.RejoinErr = err.Error()
	}
	if req.Query {
		ctx, cancel := context.WithTimeout(context.Background(), 45*time.Second)
		iv := keyspace.ClosedInterval(req.Lo, req.Hi)
		var err error
		var n int
		if req.Journal {
			var items []datastore.Item
			items, _, err = p.RangeQueryStats(ctx, iv)
			n = len(items)
		} else {
			var items []datastore.Item
			items, _, err = p.RangeQueryUnjournaled(ctx, iv)
			n = len(items)
		}
		cancel()
		if err != nil {
			resp.QueryErr = err.Error()
		} else {
			resp.QueryCount = n
		}
	}
	if req.Audit {
		resp.Violations = len(s.Log.CheckAllQueries())
	}
	return resp, nil
}

// probeLoad serves a ProbeRequest.LoadItems: insert n fresh items through
// the normal insert path, placed evenly inside the largest item-free key gap
// of this peer's own range. Because a range's items are stored only by its
// owner, a gap in the owner's local items is item-free cluster-wide, so the
// returned closed interval [lo, hi] contains exactly the n loaded items —
// an exact-count audit target that needs no knowledge of what the rest of
// the cluster holds. The inserts route normally and may overflow the range,
// which is the point: the CI smoke uses probeLoad after killing the
// bootstrap to force a split that must resolve its free peer without it.
func (s *Standalone) probeLoad(p *Peer, n int) (keyspace.Key, keyspace.Key, error) {
	rng, ok := p.Store.Range()
	if !ok {
		return 0, 0, fmt.Errorf("core: probe load at %s: peer serves no range", p.Addr)
	}
	var keys []keyspace.Key
	for _, it := range p.Store.LocalItems() {
		if rng.Contains(it.Key) {
			keys = append(keys, it.Key)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	// Walk the range's linear (non-wrapping) segments and track the widest
	// item-free gap [bestA, bestB]; queries use non-wrapping intervals, so a
	// wrapped range contributes two candidate segments rather than one.
	type seg struct{ a, b keyspace.Key }
	var segs []seg
	if rng.Lo < rng.Hi {
		segs = []seg{{rng.Lo + 1, rng.Hi}}
	} else {
		if rng.Lo < keyspace.MaxKey {
			segs = append(segs, seg{rng.Lo + 1, keyspace.MaxKey})
		}
		segs = append(segs, seg{0, rng.Hi})
	}
	var bestA keyspace.Key
	var bestW uint64
	found := false
	consider := func(a, b keyspace.Key) {
		if a > b {
			return
		}
		if w := uint64(b - a); !found || w > bestW {
			bestA, bestW = a, w
			found = true
		}
	}
	for _, sg := range segs {
		cursor, open := sg.a, true
		for _, k := range keys {
			if k < sg.a || k > sg.b {
				continue
			}
			if k > cursor {
				consider(cursor, k-1)
			}
			if k == keyspace.MaxKey {
				open = false // cursor would wrap; no tail gap in this segment
				break
			}
			cursor = k + 1
		}
		if open && cursor <= sg.b {
			consider(cursor, sg.b)
		}
	}
	if !found || bestW < uint64(n) {
		return 0, 0, fmt.Errorf("core: probe load at %s: no key gap wide enough for %d items in range %s", p.Addr, n, rng)
	}

	step := bestW / uint64(n)
	if step == 0 {
		step = 1
	}
	ctx, cancel := context.WithTimeout(context.Background(), 45*time.Second)
	defer cancel()
	first := bestA
	last := first
	for i := 0; i < n; i++ {
		k := bestA + keyspace.Key(uint64(i)*step)
		if err := p.InsertItem(ctx, datastore.Item{Key: k, Payload: fmt.Sprintf("probe-object-%d", i)}); err != nil {
			return 0, 0, fmt.Errorf("core: probe load at %s: insert %d: %w", p.Addr, i, err)
		}
		last = k
	}
	return first, last, nil
}

// AddrPool is a datastore.FreePool over announced remote peer addresses.
//
// Release distinguishes two cases by whether the address was handed out by
// Acquire. A lent address being released means a split's insert failed
// before the peer ever joined: its identity is unused, so it returns to the
// pool intact. Any other address is this process's own peer reporting that
// it merged away: the departed stack is defunct (the paper's model forbids
// re-entering with the same identifier), so the release is forwarded to
// OnMergedAway — Standalone uses it to assemble a fresh peer and re-announce
// instead of requiring an operator restart.
type AddrPool struct {
	mu    sync.Mutex
	addrs []transport.Addr
	lent  map[transport.Addr]time.Time // when the addr was handed to a split

	// OnMergedAway, when set, observes Release of an address this pool never
	// lent out — a local peer that merged away. Set before the pool is
	// shared; called without the pool lock held.
	OnMergedAway func(addr transport.Addr)
}

// lentTTL bounds how long a lent address stays recognized for the
// failed-split Release path. A failed insert releases within the
// maintenance timeout (seconds); a successfully joined peer never releases
// back to its lender, so entries older than this are joined peers and are
// purged to keep the map bounded under sustained churn.
const lentTTL = 5 * time.Minute

// purgeLentLocked drops lent entries old enough to have joined. Callers
// hold ap.mu.
func (ap *AddrPool) purgeLentLocked() {
	cutoff := time.Now().Add(-lentTTL)
	for a, at := range ap.lent {
		if at.Before(cutoff) {
			delete(ap.lent, a)
		}
	}
}

// Add parks a free peer's address in the pool.
func (ap *AddrPool) Add(addr transport.Addr) {
	ap.mu.Lock()
	defer ap.mu.Unlock()
	for _, a := range ap.addrs {
		if a == addr {
			return
		}
	}
	ap.addrs = append(ap.addrs, addr)
}

// Acquire pops a free peer for a split, or reports ErrNoFreePeer when the
// pool is empty.
func (ap *AddrPool) Acquire() (transport.Addr, error) {
	ap.mu.Lock()
	defer ap.mu.Unlock()
	if len(ap.addrs) == 0 {
		return "", ErrNoFreePeer
	}
	addr := ap.addrs[0]
	ap.addrs = ap.addrs[1:]
	if ap.lent == nil {
		ap.lent = make(map[transport.Addr]time.Time)
	}
	ap.purgeLentLocked()
	ap.lent[addr] = time.Now()
	return addr, nil
}

// MarkLent records addr as lent out by this pool even though Acquire never
// handed it out locally — a split that borrowed the address from a remote
// pool uses it so a failed insert's Release re-pools the peer here instead
// of dropping it.
func (ap *AddrPool) MarkLent(addr transport.Addr) {
	ap.mu.Lock()
	defer ap.mu.Unlock()
	if ap.lent == nil {
		ap.lent = make(map[transport.Addr]time.Time)
	}
	ap.purgeLentLocked()
	ap.lent[addr] = time.Now()
}

// Release implements datastore.FreePool: a never-joined lent peer returns to
// the pool; a merged-away local peer is reported to OnMergedAway so the
// process can re-enter with a fresh identity.
func (ap *AddrPool) Release(addr transport.Addr) {
	ap.mu.Lock()
	ap.purgeLentLocked()
	if _, ok := ap.lent[addr]; ok {
		delete(ap.lent, addr)
		ap.addrs = append(ap.addrs, addr)
		ap.mu.Unlock()
		return
	}
	cb := ap.OnMergedAway
	ap.mu.Unlock()
	if cb != nil {
		cb(addr)
	}
}

// Len returns the number of pooled free peers.
func (ap *AddrPool) Len() int {
	ap.mu.Lock()
	defer ap.mu.Unlock()
	return len(ap.addrs)
}

// Standalone is a single peer stack bound to a real transport endpoint,
// running in its own OS process. When its peer merges away, the stack
// rebuilds itself under a fresh identity and re-announces to the bootstrap
// it originally joined (see Rejoin), so the process stays in the free pool's
// rotation instead of requiring a restart.
type Standalone struct {
	Log  *history.Log
	Pool *AddrPool

	tr  transport.Transport
	cfg Config

	mu        sync.Mutex
	peer      *Peer
	bootstrap transport.Addr // where JoinAsFree announced; "" for the bootstrap process itself
	rejoinSeq int
	rejoinErr error         // last rejoin failure, nil after a success
	rejoins   chan struct{} // signalled after each completed rejoin (buffered)

	// Recovery outcome of Resume: whether this process restarted into a
	// previously claimed incarnation, and how many items it recovered.
	recovered      bool
	recoveredItems int

	// Peer is the current peer stack. It is replaced on rejoin; concurrent
	// readers should prefer CurrentPeer.
	Peer *Peer
}

// NewStandalone assembles a peer stack on tr at addr, which must be the
// dialable address other processes reach this one at (the transport is
// registered with exactly this address as the peer's identity). The journal
// records this process's operations only; cross-process auditing would need
// journal shipping, which is out of scope here.
func NewStandalone(tr transport.Transport, addr transport.Addr, cfg Config) (*Standalone, error) {
	cfg = cfg.withDefaults()
	s := &Standalone{
		Log:     history.NewLog(),
		Pool:    &AddrPool{},
		tr:      tr,
		cfg:     cfg,
		rejoins: make(chan struct{}, 16),
	}
	s.Pool.OnMergedAway = s.mergedAway
	p, err := s.buildPeer(addr)
	if err != nil {
		return nil, err
	}
	s.peer, s.Peer = p, p
	return s, nil
}

// buildPeer assembles and activates one peer stack at addr, with the
// free-peer announce handler installed (before Activate, so no announce can
// arrive at a mux that lacks the handler). The stack's free pool is the
// Standalone itself: local pool first, bootstrap's pool as the fallback.
func (s *Standalone) buildPeer(addr transport.Addr) (*Peer, error) {
	p, err := assemblePeer(s.tr, addr, s.cfg, s.Log, s)
	if err != nil {
		return nil, err
	}
	p.Mux.Handle(methodAnnounceFree, func(_ transport.Addr, _ string, payload any) (any, error) {
		msg, ok := payload.(announceMsg)
		if !ok {
			return nil, fmt.Errorf("core: bad announce payload %T", payload)
		}
		s.Pool.Add(msg.Addr)
		if p.Gossip != nil {
			p.Gossip.MarkFree(msg.Addr)
		}
		return true, nil
	})
	p.Mux.Handle(methodProbe, s.handleProbe)
	p.Mux.Handle(methodAcquireFree, func(_ transport.Addr, _ string, _ any) (any, error) {
		addr, err := s.acquireLocal(p)
		if err != nil {
			return announceMsg{}, nil
		}
		if p.Gossip != nil {
			p.Gossip.MarkTaken(addr)
		}
		return announceMsg{Addr: addr}, nil
	})
	if err := p.Activate(); err != nil {
		return nil, err
	}
	return p, nil
}

// acquireLocal pops from the locally announced pool, discarding any address
// the gossiped directory has seen advertise a range. Such an identity is
// spent: the peer joined the ring (a merged-away process re-announces under
// a fresh identity, never the old address), so handing it out again can only
// produce a doomed insert. The discard matters after two members race for
// the same gossiped free entry — the loser's failed split Releases the
// already-joined address back into its local pool, and without this filter
// every retry would re-acquire it first and wedge the split loop for good.
func (s *Standalone) acquireLocal(cur *Peer) (transport.Addr, error) {
	for {
		addr, err := s.Pool.Acquire()
		if err != nil {
			return "", err
		}
		if cur != nil && cur.Gossip != nil && cur.Gossip.OwnsRange(addr) {
			continue
		}
		return addr, nil
	}
}

// Acquire implements datastore.FreePool for this process's splits, trying
// three sources in order:
//
//  1. the locally announced pool (free peers that announced to this process);
//  2. the gossiped free-peer directory (any peer in the cluster can resolve
//     a free peer this way, with no process being a required intermediary —
//     the cluster keeps growing after the bootstrap dies);
//  3. the legacy bootstrap acquire RPC (the pre-gossip path, still the only
//     remote source when gossip is disabled).
//
// Errors from the remote path carry the contacted bootstrap's address, so an
// operator reading a failed split knows which process's pool was asked.
func (s *Standalone) Acquire() (transport.Addr, error) {
	s.mu.Lock()
	bootstrap := s.bootstrap
	cur := s.peer
	s.mu.Unlock()
	if addr, err := s.acquireLocal(cur); err == nil {
		if cur != nil && cur.Gossip != nil {
			cur.Gossip.MarkTaken(addr)
		}
		return addr, nil
	}
	if cur != nil && cur.Gossip != nil {
		if addr, ok := cur.Gossip.TakeFree(func(a transport.Addr) bool { return a == cur.Addr }); ok {
			// Track the address as lent locally, so a failed split's Release
			// re-pools it here instead of dropping it on the floor.
			s.Pool.MarkLent(addr)
			return addr, nil
		}
	}
	if bootstrap == "" || cur == nil {
		return "", ErrNoFreePeer
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	resp, err := s.tr.Call(ctx, cur.Addr, bootstrap, methodAcquireFree, nil)
	if err != nil {
		return "", fmt.Errorf("core: acquiring free peer from %s: %w", bootstrap, err)
	}
	msg, ok := resp.(announceMsg)
	if !ok || msg.Addr == "" {
		return "", fmt.Errorf("core: free-peer pool at %s: %w", bootstrap, ErrNoFreePeer)
	}
	s.Pool.MarkLent(msg.Addr)
	return msg.Addr, nil
}

// Release implements datastore.FreePool; see AddrPool.Release.
func (s *Standalone) Release(addr transport.Addr) { s.Pool.Release(addr) }

// CurrentPeer returns the live peer stack (which changes across rejoins).
func (s *Standalone) CurrentPeer() *Peer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peer
}

// Rejoins exposes a signal channel that receives after each completed
// rejoin; tests use it to wait for the fresh announce deterministically.
func (s *Standalone) Rejoins() <-chan struct{} { return s.rejoins }

// Bootstrap makes this process the ring's first member, owning the whole
// key space.
func (s *Standalone) Bootstrap() error {
	p := s.CurrentPeer()
	// Persist the identity first: a recovery from this directory knows the
	// address it served under and that it had no bootstrap to re-announce to.
	_ = p.Backend.Append(storage.Record{Kind: storage.RecIdentity, Payload: string(p.Addr)})
	if err := p.Ring.InitRing(); err != nil {
		return err
	}
	p.Store.InitFirstPeer()
	p.Store.Start()
	p.Rep.Start()
	p.Router.Start()
	return nil
}

// Resume restarts this process into the ownership incarnation its storage
// backend recovered: the last claimed (range, epoch) — the SAME epoch, since
// a restart is the old incarnation resuming with provable identity, not a
// new one — plus the items and held replicas that survived in the
// WAL+snapshot. It returns false (and does nothing) when the backend holds
// no claim, in which case the caller proceeds with Bootstrap or JoinAsFree
// as usual.
//
// A recovered peer that had announced to a bootstrap re-enters the ring by
// seeding that contact as its successor (ring.AdoptSuccessor) and lets the
// first replication push re-announce its claim: if a successor revived the
// range while the process was down, the push conflict deposes the recovered
// incarnation through the normal fencing path; otherwise stabilization
// re-integrates it. A recovered bootstrap (or one whose contact is
// unreachable) resumes as a single-member ring, which churning joiners then
// grow as usual.
func (s *Standalone) Resume() (bool, error) {
	p := s.CurrentPeer()
	st, err := p.Backend.Load()
	if err != nil {
		return false, fmt.Errorf("core: loading recovered state: %w", err)
	}
	if !st.HasRange {
		return false, nil
	}
	items := make([]datastore.Item, 0, len(st.Items))
	for k, v := range st.Items {
		items = append(items, datastore.Item{Key: k, Payload: v})
	}
	reps := make([]datastore.Item, 0, len(st.Replicas))
	for k, v := range st.Replicas {
		reps = append(reps, datastore.Item{Key: k, Payload: v})
	}
	// Install the recovered state BEFORE entering the ring: the ring's joined
	// event funnels into InitFirstPeer, which must see the recovered claim
	// and no-op instead of minting a fresh full-range one.
	p.Ring.SetVal(st.Range.Hi)
	p.Store.Recover(st.Range, st.Epoch, items)
	// Resume the lease clock conservatively: only the persisted renewal
	// counts, so a long-dead process restarts locally-expired and must earn
	// a successful refresh before treating its lease as live again.
	p.Store.RestoreLeaseClock(st.LeaseRenewedAt)
	p.Rep.RestoreReplicas(reps)
	bootstrap := transport.Addr(st.Bootstrap)
	s.mu.Lock()
	s.recovered = true
	s.recoveredItems = len(items)
	if bootstrap != "" && bootstrap != p.Addr {
		s.bootstrap = bootstrap
	}
	s.mu.Unlock()
	if bootstrap != "" && bootstrap != p.Addr && p.Gossip != nil {
		p.Gossip.AddMember(bootstrap)
	}
	if bootstrap != "" && bootstrap != p.Addr {
		// Learn the contact's current ring value so the seeded successor
		// entry is well-formed; an unreachable contact degrades to a
		// single-member resume rather than blocking recovery.
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		ps, perr := Probe(ctx, s.tr, p.Addr, bootstrap, ProbeRequest{})
		cancel()
		if perr == nil {
			return true, p.Ring.AdoptSuccessor(ring.Node{Addr: bootstrap, Val: ps.Val})
		}
	}
	return true, p.Ring.InitRing()
}

// Recovered reports whether Resume restarted this process into a previously
// claimed incarnation, and how many items it recovered.
func (s *Standalone) Recovered() (bool, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovered, s.recoveredItems
}

// JoinAsFree announces this process's peer to the bootstrap node as a free
// peer. The peer stays FREE until a split on the bootstrap side draws it
// from the pool and inserts it into the ring, at which point the ring's
// joined event starts the local component loops. The bootstrap address is
// remembered: if this peer later merges away, the process re-announces a
// fresh peer there on its own.
func (s *Standalone) JoinAsFree(ctx context.Context, bootstrap transport.Addr) error {
	p := s.CurrentPeer()
	resp, err := s.tr.Call(ctx, p.Addr, bootstrap, methodAnnounceFree, announceMsg{Addr: p.Addr})
	if err != nil {
		return fmt.Errorf("core: announce to %s failed: %w", bootstrap, err)
	}
	if ok, _ := resp.(bool); !ok {
		return fmt.Errorf("core: announce to %s rejected: %v", bootstrap, resp)
	}
	s.mu.Lock()
	s.bootstrap = bootstrap
	s.mu.Unlock()
	if p.Gossip != nil {
		// The bootstrap seeds this agent's membership, and the peer
		// advertises itself as free in its own directory — gossip spreads
		// that fact cluster-wide, so the availability of this free peer no
		// longer dies with the process it announced to.
		p.Gossip.AddMember(bootstrap)
		p.Gossip.MarkFree(p.Addr)
	}
	// Persist the identity and bootstrap contact: a recovery from this
	// directory re-announces to the same bootstrap on its own.
	_ = p.Backend.Append(storage.Record{Kind: storage.RecIdentity, Payload: string(p.Addr), Aux: string(bootstrap)})
	return nil
}

// mergedAway is the AddrPool's OnMergedAway hook: the local peer finished a
// merge and departed the ring. Its identity is spent, so rebuild under a
// fresh one off the maintenance goroutine that is reporting the merge. The
// outcome — success or the final error — is recorded in RejoinErr and
// signalled on Rejoins either way, so a process stuck out of the cluster is
// observable instead of silently idle.
func (s *Standalone) mergedAway(addr transport.Addr) {
	s.mu.Lock()
	cur := s.peer
	s.mu.Unlock()
	if cur == nil || cur.Addr != addr {
		return // not ours (e.g. a foreign release); nothing to rebuild
	}
	go func() {
		err := s.Rejoin()
		s.mu.Lock()
		s.rejoinErr = err
		s.mu.Unlock()
		select {
		case s.rejoins <- struct{}{}:
		default:
		}
	}()
}

// RejoinErr reports the outcome of the most recent automatic rejoin: nil
// after a success, the final announce error when the bootstrap stayed
// unreachable through every retry (the fresh peer is assembled either way
// and can be re-announced manually via JoinAsFree).
func (s *Standalone) RejoinErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rejoinErr
}

// Rejoin tears down the departed peer stack, assembles a fresh one under a
// new identity, and re-announces it to the remembered bootstrap. The old
// endpoint was already deregistered by the ring's departure. A bootstrap
// process (which never announced anywhere) rebuilds as a free peer but
// stays unannounced.
func (s *Standalone) Rejoin() error {
	s.mu.Lock()
	old := s.peer
	bootstrap := s.bootstrap
	s.mu.Unlock()
	if old != nil {
		old.Stop()
	}

	addr := s.freshAddr(old.Addr)
	p, err := s.buildPeer(addr)
	if err != nil {
		return fmt.Errorf("core: rejoin assembly at %s failed: %w", addr, err)
	}
	s.mu.Lock()
	s.peer, s.Peer = p, p
	s.mu.Unlock()

	if bootstrap == "" || bootstrap == old.Addr {
		return nil // nowhere to announce; the fresh peer waits for operators
	}
	// The bootstrap may itself be mid-churn (it just absorbed our range);
	// retry the announce with backoff — roughly half a minute of patience —
	// before reporting failure through RejoinErr.
	var lastErr error
	backoff := 100 * time.Millisecond
	for attempt := 0; attempt < 8; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		err := s.JoinAsFree(ctx, bootstrap)
		cancel()
		if err == nil {
			return nil
		}
		lastErr = err
		time.Sleep(backoff)
		if backoff *= 2; backoff > 5*time.Second {
			backoff = 5 * time.Second
		}
	}
	return fmt.Errorf("core: re-announce after merge failed: %w", lastErr)
}

// freshAddr derives a new, never-used identity for a rejoining peer. For
// host:port identities it probes the old host for a free port (which the
// transport's Register then binds); otherwise it appends a rejoin suffix,
// which label-addressed transports (simnet) accept as a new endpoint.
func (s *Standalone) freshAddr(old transport.Addr) transport.Addr {
	s.mu.Lock()
	s.rejoinSeq++
	seq := s.rejoinSeq
	s.mu.Unlock()
	if host, _, err := net.SplitHostPort(string(old)); err == nil {
		if ln, err := net.Listen("tcp", net.JoinHostPort(host, "0")); err == nil {
			addr := ln.Addr().String()
			ln.Close()
			return transport.Addr(addr)
		}
	}
	return transport.Addr(fmt.Sprintf("%s+r%d", old, seq))
}

// Close stops the peer stack's background work. The transport is the
// caller's to close.
func (s *Standalone) Close() {
	s.CurrentPeer().Stop()
}
