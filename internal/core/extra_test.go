package core

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/datastore"
	"repro/internal/keyspace"
)

// Items at the top of the key space live in the wrap-around range of the
// anchor peer; queries there must work like anywhere else.
func TestKeysNearMaxKey(t *testing.T) {
	c := bootCluster(t, fastConfig(), 6)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	top := keyspace.MaxKey
	keys := []keyspace.Key{top, top - 1, top - 100, top - 10_000, 5, 500}
	for _, k := range keys {
		if err := c.InsertItem(ctx, datastore.Item{Key: k, Payload: "edge"}); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	items, err := c.RangeQuery(ctx, keyspace.ClosedInterval(top-10_000, top))
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 4 {
		t.Fatalf("high-end query returned %d items, want 4", len(items))
	}
	items, err = c.RangeQuery(ctx, keyspace.Point(top))
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || items[0].Key != top {
		t.Fatalf("MaxKey point query = %v", items)
	}
	if v := c.Log().CheckAllQueries(); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
}

// A query spanning the split boundary while many splits are in flight must
// be complete — the continuation validation forces retries, never holes.
func TestWideQueriesDuringSplitStorm(t *testing.T) {
	c := bootCluster(t, fastConfig(), 16)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	wg.Add(1)
	insertErrs := make(chan error, 1)
	go func() {
		defer wg.Done()
		for i := 1; i <= 120; i++ {
			if err := c.InsertItem(ctx, mkItem(uint64(i)*100)); err != nil {
				select {
				case insertErrs <- err:
				default:
				}
				return
			}
		}
	}()

	for q := 0; q < 20; q++ {
		if _, err := c.RangeQuery(ctx, keyspace.ClosedInterval(0, 130*100)); err != nil {
			t.Fatalf("query %d during split storm: %v", q, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	wg.Wait()
	select {
	case err := <-insertErrs:
		t.Fatal(err)
	default:
	}
	if v := c.Log().CheckAllQueries(); len(v) != 0 {
		for _, viol := range v {
			t.Errorf("violation: %v", viol)
		}
	}
}

// Stats aggregates maintenance counters across the cluster.
func TestClusterStats(t *testing.T) {
	c := bootCluster(t, fastConfig(), 8)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i := 1; i <= 40; i++ {
		if err := c.InsertItem(ctx, mkItem(uint64(i)*1000)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "splits", func() bool { return c.Stats().Splits >= 3 })
	for i := 1; i <= 34; i++ {
		_, _ = c.DeleteItem(ctx, keyspace.Key(uint64(i)*1000))
	}
	waitFor(t, 20*time.Second, "merges", func() bool { return c.Stats().Merges >= 1 })
	st := c.Stats()
	if st.LivePeers == 0 || st.Items == 0 {
		t.Errorf("stats = %+v", st)
	}
}

// Soak: sustained mixed workload with periodic audits — queries, churn and
// failures interleaved for several seconds of wall time.
//
// This test used to flake with a Definition 4 "item live throughout the
// query is missing from the result" violation, from three distinct causes,
// all since fixed:
//
//  1. Data Store mutations were journaled after releasing the store mutex,
//     while scan piece snapshots are taken under it. A delete could be
//     physically applied, observed (correctly) as absent by a scan that
//     then completed, and only afterwards journaled — sequencing the
//     removal after the query's end, so the checker believed the item was
//     live throughout the query. Fixed by journaling inside the store's
//     critical section (datastore.go/maintain.go).
//  2. A handler mid-flight on a peer being killed could journal its Added
//     after the killer journaled PeerFailed, leaving a phantom item held by
//     a dead peer "live" forever. Fixed in history.BuildLiveness: a failed
//     peer is failed permanently (fail-stop, identifiers never reused), so
//     later events attributing items to it are void.
//  3. Under heavy load the ring's failure detector could false-positive on
//     a live peer: its successor revived the range while the original
//     owner kept serving, the two claims overlapped indefinitely, and a
//     mutation landing on only one side left a permanent phantom journal
//     holder. Fixed by ownership epochs: the revival claims the range at a
//     strictly higher epoch, the deposed incarnation's next replication
//     push meets that claim and it steps down (journaled), so the overlap
//     lasts at most one replication refresh and the journal stays a
//     faithful physical record. TestEpochFencesFalsePositiveSuspicion
//     reproduces that scenario deterministically via simnet's SuspectFault.
func TestSoakMixedWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	cfg := fastConfig()
	cfg.Replication.Factor = 4
	c := bootCluster(t, cfg, 20)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	for i := 1; i <= 50; i++ {
		if err := c.InsertItem(ctx, mkItem(uint64(i)*200)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "initial splits", func() bool { return len(c.LivePeers()) >= 4 })

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // mutator
		defer wg.Done()
		rng := rand.New(rand.NewSource(11))
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := uint64(rng.Intn(100)+1) * 200
			if rng.Intn(3) == 0 {
				_, _ = c.DeleteItem(ctx, keyspace.Key(k))
			} else {
				_ = c.InsertItem(ctx, mkItem(k))
			}
		}
	}()
	wg.Add(1)
	go func() { // killer: one failure roughly every 600ms, bounded
		defer wg.Done()
		rng := rand.New(rand.NewSource(13))
		t := time.NewTicker(600 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				live := c.LivePeers()
				if len(live) > 5 {
					c.KillPeer(live[rng.Intn(len(live))].Addr)
				}
			}
		}
	}()

	qrng := rand.New(rand.NewSource(17))
	okQueries := 0
	for i := 0; i < 40; i++ {
		lb := uint64(qrng.Intn(80)+1) * 200
		span := uint64(qrng.Intn(15)+1) * 200
		if _, err := c.RangeQuery(ctx, keyspace.ClosedInterval(keyspace.Key(lb), keyspace.Key(lb+span))); err == nil {
			okQueries++
		}
		time.Sleep(50 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if okQueries < 35 {
		t.Errorf("only %d/40 queries succeeded under soak", okQueries)
	}
	if v := c.Log().CheckAllQueries(); len(v) != 0 {
		for _, viol := range v {
			t.Errorf("soak violation: %v", viol)
		}
	}
}
