package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/datastore"
	"repro/internal/history"
	"repro/internal/keyspace"
	"repro/internal/transport"
	"repro/internal/transport/tcp"
)

// The deterministic regression for the old TestSoakMixedWorkload flake: the
// ring's failure detector false-positives on a live peer (injected via
// simnet's SuspectFault aimed at ring.ping), its successor revives the range
// while the original owner keeps serving — the dual-claim window — and a
// concurrent insert straddles the overlap. With ownership epochs the revived
// claim fences the deposed incarnation: mutations stamped with the deposed
// epoch fail with ErrStaleEpoch, the deposed peer resigns within one
// replication refresh (its own push meets the higher-epoch claim), and the
// whole run's Definition 4 audit and epoch-claim audit come back clean.
func TestEpochFencesFalsePositiveSuspicion(t *testing.T) {
	var armed atomic.Bool
	var victimAddr atomic.Value // transport.Addr
	victimAddr.Store(transport.Addr(""))

	cfg := fastConfig()
	cfg.Replication.Factor = 3
	cfg.Net.SuspectFault = func(from, to transport.Addr, method string) bool {
		if !armed.Load() || method != "ring.ping" {
			return false
		}
		va, _ := victimAddr.Load().(transport.Addr)
		return va != "" && to == va
	}
	c := bootCluster(t, cfg, 12)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var keys []keyspace.Key
	for i := 1; i <= 40; i++ {
		k := keyspace.Key(uint64(i) * 100)
		if err := c.InsertItem(ctx, datastore.Item{Key: k, Payload: "stable"}); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	waitFor(t, 15*time.Second, "splits", func() bool { return len(c.LivePeers()) >= 4 })
	// Let storage balancing settle before staging the scenario, so the only
	// epoch movement on the victim's lineage during the window is the
	// revival itself (keeps the claim audit below deterministic).
	waitFor(t, 20*time.Second, "maintenance quiescence", func() bool {
		before := c.Stats()
		time.Sleep(150 * time.Millisecond)
		return c.Stats() == before
	})

	// Pick a victim whose first ring successor is also serving, and find the
	// successor's peer stack: that successor is who will falsely revive the
	// victim's range. The victim must have headroom below the split
	// threshold so the mid-window insert cannot trigger a split at it.
	var victim, succPeer *Peer
	waitFor(t, 10*time.Second, "a victim with a serving successor", func() bool {
		for _, p := range c.LivePeers() {
			succs := p.Ring.Successors()
			if len(succs) == 0 || p.Store.ItemCount() >= 2*cfg.Store.StorageFactor {
				continue
			}
			for _, q := range c.LivePeers() {
				if q.Addr == succs[0].Addr {
					victim, succPeer = p, q
					return true
				}
			}
		}
		return false
	})
	vrng, vepoch, ok := victim.Store.RangeEpoch()
	if !ok || vepoch == 0 {
		t.Fatalf("victim %s range/epoch = %v/%d", victim.Addr, vrng, vepoch)
	}
	// Wait until the victim's current incarnation has advertised itself (and
	// its items) to the successor: the revival epoch builds on this advert,
	// and the revived range rebuilds from these replicas.
	waitFor(t, 10*time.Second, "victim's advert at the successor", func() bool {
		return succPeer.Rep.MaxAdvertisedEpoch(vrng) >= vepoch
	})

	// Inject the false positive: every ring.ping aimed at the victim now
	// fails while the victim's datastore keeps serving. Mid-insert, exactly
	// the straddle of the old flake: a key owned by the victim is inserted
	// while the suspicion is live.
	victimAddr.Store(victim.Addr)
	armed.Store(true)
	midKey := vrng.Hi - 1
	if !vrng.Contains(midKey) {
		midKey = vrng.Hi
	}
	insertDone := make(chan error, 1)
	go func() {
		insertDone <- c.InsertItem(ctx, datastore.Item{Key: midKey, Payload: "mid"})
	}()

	// The successor must revive the victim's range at a strictly higher
	// epoch: the dual-claim window is now open (the victim still serves).
	waitFor(t, 15*time.Second, "false-positive revival at the successor", func() bool {
		rng, epoch, ok := succPeer.Store.RangeEpoch()
		return ok && epoch > vepoch && rng.Contains(vrng.Hi)
	})
	if err := <-insertDone; err != nil {
		t.Fatalf("mid-suspicion insert: %v", err)
	}

	// Fencing: a mutation addressed to the deposed incarnation's epoch is
	// rejected with the typed error — on whichever side currently claims the
	// key, the deposed epoch is provably not current.
	err := succPeer.Store.InsertAtFenced(ctx, succPeer.Addr, datastore.Item{Key: vrng.Hi, Payload: "x"}, vepoch)
	if !errors.Is(err, datastore.ErrStaleEpoch) {
		t.Fatalf("deposed-epoch insert = %v, want ErrStaleEpoch", err)
	}

	// The deposed incarnation resigns on its own: its next replication push
	// meets the higher-epoch claim and answers Deposed. This works while the
	// suspicion is still armed — pushes flow victim→successor.
	waitFor(t, 15*time.Second, "victim steps down", func() bool {
		return victim.Store.StepDowns.Load() >= 1
	})
	armed.Store(false)
	if _, serving := victim.Store.Range(); serving {
		t.Fatal("deposed victim still serves a range")
	}

	// Convergence: re-assert the mid key (it may have died with the deposed
	// incarnation, like any unreplicated write on a crashed peer), then the
	// full range must be intact and every audit clean.
	if err := c.InsertItem(ctx, datastore.Item{Key: midKey, Payload: "mid"}); err != nil {
		t.Fatalf("post-convergence insert: %v", err)
	}
	want := map[keyspace.Key]bool{midKey: true}
	for _, k := range keys {
		want[k] = true
	}
	var items []datastore.Item
	waitFor(t, 15*time.Second, "full query returns every stable key", func() bool {
		var err error
		items, err = c.RangeQuery(ctx, keyspace.ClosedInterval(0, keyspace.MaxKey))
		if err != nil {
			return false
		}
		got := make(map[keyspace.Key]bool, len(items))
		for _, it := range items {
			got[it.Key] = true
		}
		for k := range want {
			if !got[k] {
				return false
			}
		}
		return true
	})

	if st := c.Stats(); st.StepDowns == 0 {
		t.Errorf("cluster stats StepDowns = 0, want >= 1")
	}
	if v := c.Log().CheckAllQueries(); len(v) != 0 {
		for _, viol := range v {
			t.Errorf("Definition 4 violation: %v", viol)
		}
	}
	// The claim history must order every overlapping incarnation: in
	// particular the revived claim strictly superseded the deposed one.
	// (The add-attribution half of the epoch audit is deliberately not
	// asserted here: a mutation that races into the dual-claim window is
	// exactly what it exists to flag, and whether the mid-insert lands
	// before or after the revival claim is timing-dependent.)
	if v := history.CheckClaims(c.Log().Events()); len(v) != 0 {
		for _, viol := range v {
			t.Errorf("claim audit: %v", viol)
		}
	}
	if err := c.CheckRing(); err != nil {
		t.Errorf("ring consistency after deposition: %v", err)
	}
}

// Mutations addressed to a deposed epoch fail with the typed ErrStaleEpoch
// across the real TCP transport too: the sentinel is registered as a wire
// error, so errors.Is recognizes the rejection after the text-only hop.
func TestStaleEpochTypedOverTCP(t *testing.T) {
	cfg := tcpConfig()
	boot := startStandalone(t, cfg)
	if err := boot.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	p := boot.CurrentPeer()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	if err := p.InsertItem(ctx, mkItem(1000)); err != nil {
		t.Fatal(err)
	}
	epoch := p.Store.Epoch()
	if epoch == 0 {
		t.Fatal("bootstrap peer has epoch 0")
	}

	err := p.Store.InsertAtFenced(ctx, p.Addr, mkItem(2000), epoch+3)
	if !errors.Is(err, datastore.ErrStaleEpoch) {
		t.Fatalf("stale insert over TCP = %v, want ErrStaleEpoch", err)
	}
	var remote *tcp.RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("stale insert error %T did not cross the wire as a RemoteError", err)
	}
	if _, err := p.Store.DeleteAtFenced(ctx, p.Addr, 1000, epoch+3); !errors.Is(err, datastore.ErrStaleEpoch) {
		t.Fatalf("stale delete over TCP = %v, want ErrStaleEpoch", err)
	}
	if err := p.Store.InsertAtFenced(ctx, p.Addr, mkItem(2000), epoch); err != nil {
		t.Fatalf("current-epoch insert over TCP: %v", err)
	}
}

// A cached route whose epoch went stale costs exactly one probe and a
// re-resolve — never a wrong answer: the fenced segment scan answers
// StaleEpoch, the poisoned entry is invalidated, and the query completes
// correctly against the freshly learned incarnation.
func TestStaleEpochHintCostsOneProbe(t *testing.T) {
	c := bootCluster(t, fastConfig(), 8)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	for i := 1; i <= 30; i++ {
		if err := c.InsertItem(ctx, mkItem(uint64(i)*100)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 15*time.Second, "splits", func() bool { return len(c.LivePeers()) >= 3 })

	// Pick a query origin and a target serving a range the query starts in.
	live := c.LivePeers()
	var origin, target *Peer
	for _, p := range live {
		if rng, _ := p.Store.Range(); !rng.IsFull() && rng.Contains(rng.Hi) && p != live[0] {
			origin, target = live[0], p
			break
		}
	}
	if origin == nil || origin == target {
		t.Skip("layout did not produce a distinct origin/target pair")
	}
	rng, epoch, _ := target.Store.RangeEpoch()
	iv := keyspace.ClosedInterval(rng.Hi, rng.Hi) // point query inside the target's range

	// Poison the origin's route cache: right owner, wrong (future) epoch —
	// the shape a route goes stale in after a hand-off or revival.
	origin.Router.Learn(rng, target.Addr, epoch+10, nil)

	items, stats, err := origin.RangeQueryStats(ctx, iv)
	if err != nil {
		t.Fatalf("query with poisoned epoch: %v", err)
	}
	if stats.StaleEpochHints < 1 {
		t.Errorf("StaleEpochHints = %d, want >= 1 (the poisoned entry must cost a probe)", stats.StaleEpochHints)
	}
	wantItems := 0
	if iv.Contains(rng.Hi) {
		for i := 1; i <= 30; i++ {
			if keyspace.Key(uint64(i)*100) == rng.Hi {
				wantItems = 1
			}
		}
	}
	if len(items) != wantItems {
		t.Errorf("poisoned-route query returned %d items, want %d", len(items), wantItems)
	}

	// The poisoned entry was invalidated and replaced by the real epoch: a
	// follow-up query pays no stale-epoch probe.
	_, stats, err = origin.RangeQueryStats(ctx, iv)
	if err != nil {
		t.Fatal(err)
	}
	if stats.StaleEpochHints != 0 {
		t.Errorf("follow-up StaleEpochHints = %d, want 0 (cache healed)", stats.StaleEpochHints)
	}
	if ent, ok := origin.Router.CachedEntry(rng.Hi); ok && ent.Addr == target.Addr && ent.Epoch != epoch {
		t.Errorf("healed cache entry epoch = %d, want %d", ent.Epoch, epoch)
	}
	if v := c.Log().CheckAllQueries(); len(v) != 0 {
		t.Errorf("violations: %v", v)
	}
}
