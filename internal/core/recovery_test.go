package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/datastore"
	"repro/internal/keyspace"
	"repro/internal/ring"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/transport/tcp"
)

// durableStandalone assembles a standalone peer whose storage factory is
// rooted at dir, bound to addr ("" = fresh ephemeral loopback port). It
// returns the node, its address, and the transport (which the CALLER closes —
// crash simulation needs to close it without stopping the peer cleanly).
func durableStandalone(t *testing.T, dir string, addr transport.Addr, cfg Config) (*Standalone, transport.Addr, *tcp.Transport) {
	t.Helper()
	cfg.Storage = storage.DiskFactory{Dir: dir}
	tr := tcp.New(tcp.Config{DialTimeout: time.Second, CallTimeout: 2 * time.Second})
	if addr == "" {
		probe := tcp.New(tcp.Config{})
		bound, err := probe.Listen("127.0.0.1:0", func(transport.Addr, string, any) (any, error) { return nil, nil })
		if err != nil {
			t.Fatal(err)
		}
		probe.Close()
		addr = bound
	}
	s, err := NewStandalone(tr, addr, cfg)
	if err != nil {
		tr.Close()
		t.Fatal(err)
	}
	return s, addr, tr
}

// A SIGKILLed bootstrap process restarted on the same data directory resumes
// its last claimed (range, epoch) — the same epoch, it is the old incarnation
// with provable identity — serves its recovered items, keeps accepting
// writes, and passes both the Definition 4 query audit and the epoch claim
// audit.
func TestStandaloneCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := tcpConfig()
	s1, addr, tr1 := durableStandalone(t, dir, "", cfg)
	if err := s1.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	// Stay under the split threshold (sf=5): this test is about recovery, not
	// membership change, and there are no free peers to split to anyway.
	const n = 9
	for i := 1; i <= n; i++ {
		if err := s1.Peer.InsertItem(ctx, datastore.Item{Key: keyspace.Key(i * 100), Payload: "durable"}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if _, err := s1.Peer.DeleteItem(ctx, keyspace.Key(100)); err != nil {
		t.Fatal(err)
	}
	rngBefore, epochBefore, has := s1.Peer.Store.RangeEpoch()
	if !has {
		t.Fatal("bootstrap peer has no range")
	}
	itemsBefore := s1.Peer.Store.ItemCount()

	// The crash: background work halts, the backend is NOT closed (nothing
	// flushes), the socket drops. Anything fsynced must survive; with sync
	// interval zero that is every append.
	s1.Peer.Abandon()
	tr1.Close()

	s2, _, tr2 := durableStandalone(t, dir, addr, cfg)
	t.Cleanup(func() { tr2.Close() })
	t.Cleanup(s2.Close)
	resumed, err := s2.Resume()
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if !resumed {
		t.Fatal("Resume found no durable claim to restart into")
	}
	rng, epoch, has := s2.Peer.Store.RangeEpoch()
	if !has || rng != rngBefore || epoch != epochBefore {
		t.Fatalf("recovered (range, epoch) = (%v, %d), want (%v, %d)", rng, epoch, rngBefore, epochBefore)
	}
	if got := s2.Peer.Store.ItemCount(); got != itemsBefore {
		t.Fatalf("recovered %d items, want %d", got, itemsBefore)
	}
	if rec, cnt := s2.Recovered(); !rec || cnt != itemsBefore {
		t.Fatalf("Recovered() = (%v, %d), want (true, %d)", rec, cnt, itemsBefore)
	}

	// The recovered incarnation serves: journaled reads see every surviving
	// item (the deleted one stays deleted), and writes land.
	items, _, err := s2.Peer.RangeQueryStats(ctx, keyspace.ClosedInterval(0, (n+1)*100))
	if err != nil {
		t.Fatalf("post-recovery query: %v", err)
	}
	if len(items) != itemsBefore {
		t.Fatalf("post-recovery query returned %d items, want %d", len(items), itemsBefore)
	}
	for _, it := range items {
		if it.Key == 100 {
			t.Fatal("pre-crash delete resurrected by recovery")
		}
	}
	if err := s2.Peer.InsertItem(ctx, datastore.Item{Key: 950, Payload: "post-crash"}); err != nil {
		t.Fatalf("post-recovery insert: %v", err)
	}

	// Both audits must be clean: queries against Definition 4, and the claim
	// journal — where the recovery shows up as a legal resumption of the last
	// incarnation, not an illegal duplicate claim.
	if v := s2.Log.CheckAllQueries(); len(v) != 0 {
		t.Fatalf("query audit after recovery: %v", v)
	}
	if v := s2.Log.CheckEpochAudit(); len(v) != 0 {
		t.Fatalf("epoch audit after recovery: %v", v)
	}
}

// A second crash-restart cycle on the same directory must also resume — the
// recovered claim is re-journaled to the WAL, so recovery is idempotent
// across repeated failures.
func TestStandaloneCrashRecoveryTwice(t *testing.T) {
	dir := t.TempDir()
	cfg := tcpConfig()
	s1, addr, tr1 := durableStandalone(t, dir, "", cfg)
	if err := s1.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s1.Peer.InsertItem(ctx, datastore.Item{Key: 500, Payload: "v"}); err != nil {
		t.Fatal(err)
	}
	_, epoch0, _ := s1.Peer.Store.RangeEpoch()
	s1.Peer.Abandon()
	tr1.Close()

	s2, _, tr2 := durableStandalone(t, dir, addr, cfg)
	if resumed, err := s2.Resume(); err != nil || !resumed {
		t.Fatalf("first Resume = (%v, %v)", resumed, err)
	}
	if err := s2.Peer.InsertItem(ctx, datastore.Item{Key: 600, Payload: "between-crashes"}); err != nil {
		t.Fatal(err)
	}
	s2.Peer.Abandon()
	tr2.Close()

	s3, _, tr3 := durableStandalone(t, dir, addr, cfg)
	t.Cleanup(func() { tr3.Close() })
	t.Cleanup(s3.Close)
	if resumed, err := s3.Resume(); err != nil || !resumed {
		t.Fatalf("second Resume = (%v, %v)", resumed, err)
	}
	_, epoch2, _ := s3.Peer.Store.RangeEpoch()
	if epoch2 != epoch0 {
		t.Fatalf("epoch drifted across restarts: %d -> %d (a restart is the same incarnation)", epoch0, epoch2)
	}
	if got := s3.Peer.Store.ItemCount(); got != 2 {
		t.Fatalf("second recovery has %d items, want 2 (both crash generations)", got)
	}
	if v := s3.Log.CheckEpochAudit(); len(v) != 0 {
		t.Fatalf("epoch audit after double recovery: %v", v)
	}
}

// The multi-process shape the CI recovery smoke drives, in-repo: a joiner is
// split into the ring, crashes, restarts from its directory, re-enters the
// ring through its remembered bootstrap contact, and the whole key space is
// servable again with clean audits on both processes.
func TestStandaloneJoinerCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process crash cycle is slow")
	}
	cfg := tcpConfig()
	bootDir, joinDir := t.TempDir(), t.TempDir()
	boot, bootAddr, btr := durableStandalone(t, bootDir, "", cfg)
	t.Cleanup(func() { btr.Close() })
	t.Cleanup(boot.Close)
	if err := boot.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Load the FULL item set before the joiner exists, so every insert is
	// journaled at the bootstrap: journals are per-process, and the final
	// Definition 4 audit is sound only at a process whose journal saw every
	// item's liveness (the same ordering the CI smoke scripts use).
	const n = 14
	for i := 1; i <= n; i++ {
		if err := boot.Peer.InsertItem(ctx, datastore.Item{Key: keyspace.Key(i * 100), Payload: "x"}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}

	// The overflowed bootstrap splits as soon as a free peer announces.
	joiner, joinAddr, jtr := durableStandalone(t, joinDir, "", cfg)
	if err := joiner.JoinAsFree(ctx, bootAddr); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := joiner.Peer.Store.Range(); ok && joiner.Peer.Ring.State() == ring.StateJoined {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	jrng, jepoch, has := joiner.Peer.Store.RangeEpoch()
	if !has {
		t.Fatal("joiner never received a range")
	}
	jitems := joiner.Peer.Store.ItemCount()
	if jitems == 0 {
		t.Fatal("joiner joined with no items")
	}

	// Crash the joiner and restart it promptly from the same directory —
	// before failure detection declares it dead and revives the range
	// elsewhere, the operational window the recovery path is for.
	joiner.Peer.Abandon()
	jtr.Close()
	revived, _, jtr2 := durableStandalone(t, joinDir, joinAddr, cfg)
	t.Cleanup(func() { jtr2.Close() })
	t.Cleanup(revived.Close)
	resumed, err := revived.Resume()
	if err != nil {
		t.Fatalf("joiner Resume: %v", err)
	}
	if !resumed {
		t.Fatal("joiner Resume found no durable claim")
	}
	rng2, epoch2, _ := revived.Peer.Store.RangeEpoch()
	if rng2 != jrng || epoch2 != jepoch {
		t.Fatalf("joiner recovered (%v, %d), want (%v, %d)", rng2, epoch2, jrng, jepoch)
	}
	if got := revived.Peer.Store.ItemCount(); got != jitems {
		t.Fatalf("joiner recovered %d items, want %d", got, jitems)
	}

	// The full key space must be servable again from either process. These
	// availability polls stay unjournaled: the joiner's fresh journal never
	// saw the bootstrap-held items' liveness, so journaling a full-range
	// query there would read as a phantom violation (journals are
	// per-process; see the ROADMAP note on journal shipping).
	queryAll := func(s *Standalone, what string) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for {
			items, _, err := s.Peer.RangeQueryUnjournaled(ctx, keyspace.ClosedInterval(0, (n+1)*100))
			if err == nil && len(items) == n {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("full query from %s after recovery: %d items, err=%v (want %d)", what, len(items), err, n)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	queryAll(boot, "bootstrap")
	queryAll(revived, "recovered joiner")

	// The audited journaled query runs at the bootstrap — the one journal
	// that witnessed every item's full liveness history.
	if items, _, err := boot.Peer.RangeQueryStats(ctx, keyspace.ClosedInterval(0, (n+1)*100)); err != nil || len(items) != n {
		t.Fatalf("journaled audit query at bootstrap: %d items, err=%v", len(items), err)
	}
	if v := boot.Log.CheckAllQueries(); len(v) != 0 {
		t.Fatalf("bootstrap query audit: %v", v)
	}
	for name, s := range map[string]*Standalone{"bootstrap": boot, "joiner": revived} {
		if v := s.Log.CheckEpochAudit(); len(v) != 0 {
			t.Fatalf("%s epoch audit: %v", name, v)
		}
	}
}
