package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/keyspace"
	"repro/internal/transport"
)

// loadSpread inserts n spaced items and waits for the ring to spread them
// over at least minPeers serving peers.
func loadSpread(t *testing.T, c *Cluster, ctx context.Context, n, minPeers int) {
	t.Helper()
	for i := 1; i <= n; i++ {
		if err := c.InsertItem(ctx, mkItem(uint64(i)*1000)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	waitFor(t, 15*time.Second, "splits to spread the load", func() bool {
		return len(c.LivePeers()) >= minPeers
	})
}

// queryAll runs one journaled full-load query from origin and checks the
// result count.
func queryAll(t *testing.T, ctx context.Context, origin *Peer, n int) QueryStats {
	t.Helper()
	items, stats, err := origin.RangeQueryStats(ctx, keyspace.ClosedInterval(0, keyspace.Key((n+1)*1000)))
	if err != nil {
		t.Fatalf("full query: %v", err)
	}
	if len(items) != n {
		t.Fatalf("full query returned %d items, want %d", len(items), n)
	}
	return stats
}

// TestWarmCacheSpeedsRepeatQueries pins the core read-path win: a repeated
// query enters at the cached owner in a single validated round trip, and the
// result is identical to the cold run.
func TestWarmCacheSpeedsRepeatQueries(t *testing.T) {
	c := bootCluster(t, fastConfig(), 12)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	loadSpread(t, c, ctx, 40, 4)
	time.Sleep(50 * time.Millisecond) // let routing and replication settle

	origin := c.LivePeers()[0]
	queryAll(t, ctx, origin, 40)
	st := origin.Router.Cache().Stats()
	if st.Size == 0 {
		t.Fatalf("query warmed nothing: %+v", st)
	}

	// The cache only ever serves lookups for REMOTE owners (a key the origin
	// itself owns short-circuits before the cache), so aim the repeat query
	// at another peer's range.
	var lb keyspace.Key
	for _, p := range c.LivePeers() {
		if p.Addr == origin.Addr {
			continue
		}
		if rng, ok := p.Store.Range(); ok && !rng.IsFull() {
			lb = rng.Lo + 1
			break
		}
	}
	iv := keyspace.ClosedInterval(lb, lb+500)
	if _, _, err := origin.RangeQueryStats(ctx, iv); err != nil {
		t.Fatalf("warming query %v: %v", iv, err)
	}
	hitsBefore := origin.Router.Cache().Stats().Hits
	if _, _, err := origin.RangeQueryStats(ctx, iv); err != nil {
		t.Fatalf("repeat query %v: %v", iv, err)
	}
	if after := origin.Router.Cache().Stats(); after.Hits <= hitsBefore {
		t.Errorf("repeat query did not hit the cache: hits %d -> %d (%+v)", hitsBefore, after.Hits, after)
	}
}

// TestRouteCacheChurnEvictsStaleEntries drives the cache through splits,
// merges and a failure, then probes every surviving cache entry with a
// query: each stale entry must be evicted (replaced by the validated truth),
// every query must return the correct Definition 4 result, and the journal
// audit must stay clean.
func TestRouteCacheChurnEvictsStaleEntries(t *testing.T) {
	c := bootCluster(t, fastConfig(), 24)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	loadSpread(t, c, ctx, 60, 5)

	// A merged-away peer departs the transport; transient rebalance states
	// (LEAVING, INSERTING) keep the endpoint alive, so this is the honest
	// "has the peer really gone" test.
	alive := func(a transport.Addr) bool { return c.Net().Alive(a) }

	// Warm the caches of every serving peer over the whole key space: the
	// churn below merges peers away unpredictably, and the validation pass
	// needs an origin whose cache lived through it — any peer that survives
	// the merges existed (and was warmed) before them.
	origins := c.LivePeers()
	for _, o := range origins {
		queryAll(t, ctx, o, 60)
		if o.Router.Cache().Stats().Size == 0 {
			t.Fatal("cache did not warm")
		}
	}
	survivor := func() *Peer {
		for _, o := range origins {
			if alive(o.Addr) {
				return o
			}
		}
		return nil
	}

	// Churn: delete most items (forcing merges away from under the cache),
	// kill one serving peer that is not the origin, then add items back
	// (forcing splits that shrink cached ranges).
	for i := 1; i <= 40; i++ {
		if _, err := c.DeleteItem(ctx, keyspace.Key(uint64(i)*1000)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	warmed := make(map[transport.Addr]bool)
	for _, o := range origins {
		warmed[o.Addr] = true
	}
	for _, p := range c.LivePeers() {
		if !warmed[p.Addr] {
			c.KillPeer(p.Addr)
			break
		}
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		origin := survivor()
		if origin == nil {
			t.Skip("every warmed origin merged away during churn; cache lifetime not observable")
		}
		items, _, err := origin.RangeQueryUnjournaled(ctx, keyspace.ClosedInterval(0, 61*1000))
		if err == nil && len(items) == 20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("revival after the kill timed out (err=%v, items=%d)", err, len(items))
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i := 41; i <= 60; i++ {
		if err := c.InsertItem(ctx, mkItem(uint64(i)*1000+500)); err != nil {
			t.Fatalf("re-insert %d: %v", i, err)
		}
	}
	origin := survivor()
	if origin == nil {
		t.Skip("every warmed origin merged away during churn; cache lifetime not observable")
	}

	// Let the re-insert-triggered maintenance finish before validating: an
	// entry learned from a peer that splits a moment later is fresh
	// information overtaken by events, not a cache defect.
	waitFor(t, 30*time.Second, "maintenance to settle", func() bool {
		before := c.Stats()
		time.Sleep(100 * time.Millisecond)
		after := c.Stats()
		return before.Splits == after.Splits && before.Merges == after.Merges &&
			before.Redistributes == after.Redistributes
	})

	// Probe every cached entry: a query whose lower bound lands inside the
	// entry's believed range forces validation at its target. Stale entries
	// must be evicted or corrected, never trusted.
	// A kill can land mid-split or mid-merge and leave the ring converging
	// for several ack timeouts; journaled queries are allowed to fail while
	// membership is in flux (availability is bounded, not instantaneous), so
	// each probe retries until the ring lets it through.
	invBefore := origin.Router.Cache().Stats().Invalidations
	for _, ent := range origin.Router.Cache().Entries() {
		lb := ent.Range.Hi // always inside a non-full believed range
		iv := keyspace.ClosedInterval(lb, lb+1)
		if lb == keyspace.MaxKey {
			iv = keyspace.Point(lb)
		}
		var qerr error
		waitFor(t, 30*time.Second, fmt.Sprintf("probe query %v to succeed", iv), func() bool {
			_, _, qerr = origin.RangeQueryStats(ctx, iv)
			return qerr == nil
		})
	}
	// After probing, every surviving entry must describe a live serving peer
	// whose current range really contains the entry's anchor.
	for _, ent := range origin.Router.Cache().Entries() {
		if !alive(ent.Addr) {
			t.Errorf("cache entry %v -> %s survives probing but the peer is not a live ring member", ent.Range, ent.Addr)
			continue
		}
		c.mu.Lock()
		p := c.peers[ent.Addr]
		c.mu.Unlock()
		if rng, ok := p.Store.Range(); !ok || !rng.Contains(ent.Range.Hi) {
			t.Errorf("cache entry %v -> %s is stale after probing (peer now owns %v)", ent.Range, ent.Addr, rng)
		}
	}
	if churned := origin.Router.Cache().Stats().Invalidations; churned == invBefore {
		t.Logf("note: churn produced no invalidations (hits stayed fresh); entries=%d", origin.Router.Cache().Stats().Size)
	}

	// The decisive check: every journaled query of the run satisfies
	// Definition 4 despite the stale cache hints along the way.
	if v := c.Log().CheckAllQueries(); len(v) != 0 {
		t.Fatalf("correctness violations under cached routing: %v", v[:min(len(v), 5)])
	}
}

// TestReplicaFallbackServesKilledPrimary kills the primary owner of a
// mid-interval segment after the route cache has learned the layout, then
// runs an unjournaled query across that segment: the scan must fall back to
// the dead peer's replicas and still return the complete, correct result —
// with ring failure detection slowed so revival cannot beat the fallback.
func TestReplicaFallbackServesKilledPrimary(t *testing.T) {
	cfg := fastConfig()
	// Slow the failure detector so the killed range is NOT revived during
	// the test window: any complete answer must come through replica reads.
	cfg.Ring.PingPeriod = 10 * time.Second
	cfg.Replication.RefreshPeriod = 5 * time.Millisecond
	c := bootCluster(t, cfg, 12)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	loadSpread(t, c, ctx, 40, 4)
	time.Sleep(100 * time.Millisecond) // several replica refresh periods

	// Pick an origin and a victim that owns a strict mid-interval segment.
	lives := c.LivePeers()
	origin := lives[0]
	var victim *Peer
	for _, p := range lives[1:] {
		if rng, ok := p.Store.Range(); ok && !rng.IsFull() && rng.Lo >= 1000 && rng.Hi < 41*1000 {
			victim = p
			break
		}
	}
	if victim == nil {
		t.Skip("no mid-interval victim in this layout")
	}

	// Warm the origin's cache (it learns the victim's range AND its replica
	// candidates from the successor chain metadata), then kill the victim.
	queryAll(t, ctx, origin, 40)
	c.KillPeer(victim.Addr)

	items, stats, err := origin.RangeQueryUnjournaled(ctx, keyspace.ClosedInterval(0, 41*1000))
	if err != nil {
		t.Fatalf("query with dead primary: %v", err)
	}
	if len(items) != 40 {
		t.Fatalf("query with dead primary returned %d items, want all 40", len(items))
	}
	for i, it := range items {
		if want := keyspace.Key(uint64(i+1) * 1000); it.Key != want {
			t.Fatalf("item %d has key %d, want %d", i, it.Key, want)
		}
	}
	if stats.ReplicaPieces == 0 || origin.ReplicaReads.Load() == 0 {
		t.Errorf("no replica reads recorded (pieces=%d counter=%d); fallback path not exercised",
			stats.ReplicaPieces, origin.ReplicaReads.Load())
	}

	// The journaled path must NOT use replicas: with the primary dead and no
	// revival, a journaled query is allowed to fail or to return the post-
	// failure truth, but it must never silently read stale replicas. We
	// assert the audit stays clean whatever it observed.
	shortCtx, cancelShort := context.WithTimeout(ctx, 2*time.Second)
	_, _, _ = origin.RangeQueryStats(shortCtx, keyspace.ClosedInterval(0, 41*1000))
	cancelShort()
	if v := c.Log().CheckAllQueries(); len(v) != 0 {
		t.Fatalf("journal audit not clean: %v", v[:min(len(v), 5)])
	}
}
