package core

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gossip"
	"repro/internal/keyspace"
	"repro/internal/transport"
)

// The lease-expiry adoption path, end to end: a wedged owner — alive on the
// ring (pings answered, gossip flowing) but unable to land a replication
// push — stops renewing its range-claim lease, and its ring successor adopts
// the range at a strictly higher epoch within 2×LeaseDuration, without any
// failure verdict from the ring. The adoption happens exactly once, the
// wedged owner is deposed through the gossip advert it can still receive,
// every item stays queryable, and the whole run passes both the Definition 4
// audit and the lease-exclusivity audit.
func TestLeaseExpiryAdoptsWedgedOwnersRange(t *testing.T) {
	const leaseDuration = time.Second

	var armed atomic.Bool
	var victimAddr atomic.Value // transport.Addr
	victimAddr.Store(transport.Addr(""))

	cfg := fastConfig()
	cfg.Store.LeaseDuration = leaseDuration
	cfg.Gossip = gossip.Config{
		Interval:    20 * time.Millisecond,
		Fanout:      2,
		CallTimeout: 40 * time.Millisecond,
		Seed:        7,
	}
	// The wedge: the victim's replication pushes vanish in the network while
	// every other method of its keeps working. No push lands, so no refresh
	// is acknowledged, so the lease is never renewed — the failure mode the
	// ring's detector cannot see.
	cfg.Net.SuspectFault = func(from, _ transport.Addr, method string) bool {
		if !armed.Load() || method != "rep.push" {
			return false
		}
		va, _ := victimAddr.Load().(transport.Addr)
		return va != "" && from == va
	}
	c := bootCluster(t, cfg, 10)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	for i := 1; i <= 40; i++ {
		if err := c.InsertItem(ctx, mkItem(uint64(i)*100)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 15*time.Second, "splits", func() bool { return len(c.LivePeers()) >= 4 })
	waitFor(t, 20*time.Second, "maintenance quiescence", func() bool {
		before := c.Stats()
		time.Sleep(150 * time.Millisecond)
		return c.Stats() == before
	})

	// Pick a victim whose first ring successor is serving (that successor
	// holds the victim's replicas and adjacency evidence, so it is the
	// adopter) with split headroom, and wait until the victim's current
	// incarnation has advertised itself there.
	var victim, succPeer *Peer
	waitFor(t, 10*time.Second, "a victim with a serving successor", func() bool {
		for _, p := range c.LivePeers() {
			succs := p.Ring.Successors()
			if len(succs) == 0 || p.Store.ItemCount() >= 2*cfg.Store.StorageFactor {
				continue
			}
			for _, q := range c.LivePeers() {
				if q.Addr == succs[0].Addr {
					victim, succPeer = p, q
					return true
				}
			}
		}
		return false
	})
	vrng, vepoch, ok := victim.Store.RangeEpoch()
	if !ok || vepoch == 0 {
		t.Fatalf("victim %s range/epoch = %v/%d", victim.Addr, vrng, vepoch)
	}
	waitFor(t, 10*time.Second, "victim's advert at the successor", func() bool {
		return succPeer.Rep.MaxAdvertisedEpoch(vrng) >= vepoch
	})

	victimAddr.Store(victim.Addr)
	armed.Store(true)
	wedged := time.Now()

	// The acceptance bound: the orphaned range must be adopted within
	// 2×LeaseDuration of the wedge.
	waitFor(t, 2*leaseDuration, "lease-expiry adoption at the successor", func() bool {
		return succPeer.Store.LeaseAdoptions.Load() >= 1
	})
	if took := time.Since(wedged); took > 2*leaseDuration {
		t.Fatalf("adoption took %v, want within %v", took, 2*leaseDuration)
	}
	rng, epoch, ok := succPeer.Store.RangeEpoch()
	if !ok || epoch <= vepoch || !rng.Contains(vrng.Hi) {
		t.Fatalf("adopter range/epoch = %v/%d, want > %d covering %v", rng, epoch, vepoch, vrng)
	}

	// Exactly once: no other peer adopted, and the adopter did so once.
	var adoptions uint64
	for _, p := range c.Peers() {
		adoptions += p.Store.LeaseAdoptions.Load()
	}
	if adoptions != 1 {
		t.Fatalf("adoptions across the cluster = %d, want exactly 1", adoptions)
	}

	// The wedged owner still cannot land a push (the reply-deposition path
	// is closed to it), but it keeps gossiping: the adopter's higher-epoch
	// advert reaches it through the directory and it steps down.
	waitFor(t, 10*time.Second, "wedged owner deposed via gossip", func() bool {
		r, _, has := victim.Store.RangeEpoch()
		return !has || !r.Overlaps(vrng)
	})

	// Heal the wedge; every item must be queryable from the adopted range.
	armed.Store(false)
	waitFor(t, 15*time.Second, "all items queryable after adoption", func() bool {
		items, err := c.RangeQuery(ctx, keyspace.ClosedInterval(0, 41*100))
		return err == nil && len(items) == 40
	})

	if vs := c.Log().CheckAllQueries(); len(vs) != 0 {
		t.Fatalf("Definition 4 violations: %v", vs)
	}
	if vs := c.Log().CheckLeases(); len(vs) != 0 {
		t.Fatalf("lease-exclusivity violations: %v", vs)
	}
}
