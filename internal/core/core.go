// Package core assembles the full P2P index of the paper: the indexing
// framework of Figure 1 instantiated as P-Ring (Section 2.3) with the PEPPER
// correctness and availability protocols embedded in the Fault Tolerant Ring
// and Data Store (Sections 4 and 5).
//
// A peer is a stack of ring, Data Store, Replication Manager and Content
// Router components sharing one transport endpoint, with its own goroutines
// for stabilization, failure detection, storage balancing and replica
// refresh. The stack is assembled against the transport.Transport interface,
// so the same protocol code runs over the simulated in-process network (a
// Cluster, for deterministic tests and experiments) and over real TCP (a
// Standalone peer in its own OS process; see cmd/pepperd -listen).
//
// A Cluster runs every peer in-process over simnet and owns the free-peer
// pool of the P-Ring Data Store: splits draw peers from it, merges return
// them to it.
//
// The P2P Index API of the paper (insertItem, deleteItem, findItems as a
// range query) is exposed on both Peer and Cluster; queries run the
// scanRange protocol with abort/retry and are journaled for correctness
// checking against Definition 4.
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/auth"
	"repro/internal/datastore"
	"repro/internal/gossip"
	"repro/internal/history"
	"repro/internal/keyspace"
	"repro/internal/replication"
	"repro/internal/ring"
	"repro/internal/routecache"
	"repro/internal/router"
	"repro/internal/simnet"
	"repro/internal/storage"
	"repro/internal/transport"
)

// Config aggregates the component configurations.
type Config struct {
	Net         simnet.Config
	Ring        ring.Config
	Store       datastore.Config
	Replication replication.Config
	Router      router.Config
	// Gossip configures the decentralized membership directory every peer
	// runs (package gossip): free-peer entries, range adverts and liveness
	// suspicions spread by periodic anti-entropy. A zero Interval disables
	// the agent entirely — free peers then resolve only through the local
	// pool and the bootstrap's legacy acquire RPC, the seed behaviour.
	Gossip gossip.Config
	// QueryAttemptTimeout bounds one scan attempt before the query retries.
	QueryAttemptTimeout time.Duration
	// MaxQueryAttempts bounds retries within the caller's context.
	MaxQueryAttempts int
	// ScanDepth bounds how many per-range segment scans a range query keeps
	// in flight at once (the pipelined read path); 1 degenerates to a
	// sequential origin-driven walk. The effective depth is additionally
	// limited by the successor chain advertised with each piece (the ring's
	// successor list length plus one). Default 4.
	ScanDepth int
	// NaiveQueries evaluates range queries with the unlocked application
	// scan instead of scanRange (the Section 6.2 baseline).
	NaiveQueries bool
	// Storage opens each peer's durable backend (WAL + snapshots). nil keeps
	// the in-memory default, which journals nothing and is what every simnet
	// test and benchmark runs on; pepperd -data-dir supplies a
	// storage.DiskFactory.
	Storage storage.Factory
	// Identities, when set, gives each assembled peer an ed25519 identity:
	// its ownership adverts (replication pushes and gossiped range adverts)
	// are signed, and adverts it receives are verified against a per-peer
	// trust-on-first-use keyring before they may depose anyone. nil disables
	// advert authentication (the pre-identity behaviour). pepperd supplies
	// the identity persisted in -data-dir (or an ephemeral one).
	Identities func(addr transport.Addr) (*auth.Identity, error)
	// Seed drives entry-peer selection.
	Seed int64
}

// DefaultConfig mirrors the paper's experimental defaults (Section 6.1) at
// millisecond scale: successor list length 4, stabilization period 4 time
// units, storage factor 5, replication factor 6.
func DefaultConfig() Config {
	return Config{
		Net: simnet.DefaultConfig(),
		Ring: ring.Config{
			SuccListLen: 4,
			StabPeriod:  40 * time.Millisecond,
		},
		Store: datastore.Config{
			StorageFactor: 5,
		},
		Replication: replication.Config{
			Factor: 6,
		},
		Router:              router.Config{},
		QueryAttemptTimeout: time.Second,
		MaxQueryAttempts:    20,
		Seed:                1,
	}
}

func (c Config) withDefaults() Config {
	if c.QueryAttemptTimeout <= 0 {
		c.QueryAttemptTimeout = time.Second
	}
	if c.MaxQueryAttempts <= 0 {
		c.MaxQueryAttempts = 20
	}
	if c.ScanDepth <= 0 {
		c.ScanDepth = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Peer is one fully assembled peer stack, bound to a transport endpoint.
type Peer struct {
	Addr   transport.Addr
	Mux    *transport.Mux
	Ring   *ring.Peer
	Store  *datastore.Store
	Rep    *replication.Manager
	Router *router.Router
	// Gossip is the peer's membership agent; nil when gossip is disabled
	// (Config.Gossip.Interval == 0).
	Gossip *gossip.Agent
	// Backend is the peer's storage engine; the Data Store and Replication
	// Manager write ahead to it, and Stop closes it.
	Backend storage.Backend
	// Identity and Keyring carry the peer's advert-signing state; both nil
	// when Config.Identities is unset.
	Identity *auth.Identity
	Keyring  *auth.Keyring

	tr  transport.Transport
	log *history.Log
	cfg Config

	// ReplicaReads counts scan segments this peer answered from a replica
	// instead of the primary owner (the read path's availability fallback).
	ReplicaReads atomic.Uint64
}

// Errors surfaced by index operations.
var (
	ErrNoLivePeer  = errors.New("core: no live peer in the ring")
	ErrQueryFailed = errors.New("core: range query exhausted its retries")
	ErrNoFreePeer  = errors.New("core: free-peer pool is empty")
)

func init() {
	transport.RegisterMessage(announceMsg{})
}

// assemblePeer constructs a full peer stack in the FREE state and wires the
// cross-layer callbacks. It is the single assembly path shared by in-process
// Clusters and standalone OS processes. The caller must finish installing
// any extra handlers on p.Mux and then activate the endpoint with
// p.Activate — registering only after every handler is in place closes the
// window where a remote request could arrive at a half-assembled peer.
func assemblePeer(tr transport.Transport, addr transport.Addr, cfg Config, log *history.Log, pool datastore.FreePool) (*Peer, error) {
	mux := transport.NewMux()
	p := &Peer{
		Addr: addr,
		Mux:  mux,
		tr:   tr,
		log:  log,
		cfg:  cfg,
	}

	// The ring callbacks close over the peer struct; the components are
	// created right after and the callbacks only fire once the peer joins.
	cb := ring.Callbacks{
		PrepareJoinData: func(j ring.Node) any { return p.Store.PrepareJoinData(j) },
		OnJoined: func(self, pred ring.Node, data any) {
			p.Store.OnJoined(self, pred, data)
			p.Rep.Start()
			p.Router.Start()
			if p.Gossip != nil {
				// Joining consumes this peer's free-peer entry; the taken
				// mark out-gossips any stale free observation.
				p.Gossip.MarkTaken(p.Addr)
			}
		},
		OnPredChanged: func(newPred, prev ring.Node, predFailed bool) {
			p.Store.OnPredChanged(newPred, prev, predFailed)
		},
		OnNewSuccessor: func(ring.Node) { p.Rep.ItemsChanged() },
	}
	p.Ring = ring.NewPeer(tr, mux, cfg.Ring, ring.Node{Addr: addr}, cb)
	p.Store = datastore.New(tr, mux, p.Ring, log, cfg.Store)
	p.Rep = replication.New(tr, mux, p.Ring, p.Store, cfg.Replication)
	p.Router = router.New(tr, mux, p.Ring, p.Store, cfg.Router)
	p.Store.SetDeps(p.Rep, pool)
	if cfg.Gossip.Interval > 0 {
		g := gossip.New(tr, mux, addr, cfg.Gossip)
		// Each round republishes this peer's own claim into the directory…
		g.SelfAdvert = func() (keyspace.Range, uint64, bool) { return p.Store.RangeEpoch() }
		// …and every foreign advert that enters the directory is checked
		// against the local claim: a strictly newer overlapping epoch
		// deposes this peer through the normal step-down path.
		g.ObserveAdvert = func(owner transport.Addr, rng keyspace.Range, epoch uint64) {
			if owner != addr {
				p.Store.ObserveRemoteClaim(rng, epoch)
			}
		}
		p.Gossip = g
	}

	if cfg.Identities != nil {
		id, err := cfg.Identities(addr)
		if err != nil {
			return nil, fmt.Errorf("core: obtaining identity for %s: %w", addr, err)
		}
		kr := auth.NewKeyring()
		// Pin our own key first: a forged advert in this peer's name can then
		// never be the first key the keyring sees for it.
		kr.Pin(string(addr), id.Public())
		p.Identity, p.Keyring = id, kr
		sign := func(rng keyspace.Range, epoch uint64) auth.AdvertSig {
			return id.SignAdvert(string(addr), rng.Lo, rng.Hi, epoch)
		}
		p.Rep.SignAdvert = sign
		p.Rep.VerifyAdvert = func(owner transport.Addr, rng keyspace.Range, epoch uint64, sig auth.AdvertSig) error {
			return kr.VerifyAdvert(string(owner), rng.Lo, rng.Hi, epoch, sig)
		}
		p.Rep.OnSigReject = func(owner transport.Addr, rng keyspace.Range, epoch uint64) {
			log.SigRejected(string(addr), string(owner), rng, epoch)
		}
		if p.Gossip != nil {
			p.Gossip.SignAdvert = sign
			p.Gossip.VerifyAd = func(owner transport.Addr, ad gossip.RangeAd) error {
				return kr.VerifyAdvert(string(owner), ad.Range.Lo, ad.Range.Hi, ad.Epoch, ad.Sig)
			}
			p.Gossip.OnSigReject = func(owner transport.Addr, ad gossip.RangeAd) {
				log.SigRejected(string(addr), string(owner), ad.Range, ad.Epoch)
			}
		}
	}

	// One backend per peer identity: the Data Store and Replication Manager
	// share it, so a peer's items and held replicas recover together.
	factory := cfg.Storage
	if factory == nil {
		factory = storage.MemoryFactory{}
	}
	b, err := factory.Open(addr)
	if err != nil {
		return nil, fmt.Errorf("core: opening storage backend for %s: %w", addr, err)
	}
	p.Backend = b
	p.Store.SetBackend(b)
	p.Rep.SetBackend(b)

	return p, nil
}

// Activate registers the peer's endpoint on the transport, making it
// reachable, and starts the gossip agent's rounds (free peers gossip too —
// that is how their availability outlives the process they announced to).
// Call it once, after all mux handlers are installed.
func (p *Peer) Activate() error {
	if err := p.tr.Register(p.Addr, p.Mux.Dispatch); err != nil {
		return err
	}
	if p.Gossip != nil {
		p.Gossip.Start()
	}
	return nil
}

// Stop halts the peer stack's background work and closes the storage
// backend (flushing any batched WAL records).
func (p *Peer) Stop() {
	p.Abandon()
	if p.Backend != nil {
		_ = p.Backend.Close()
	}
}

// Abandon halts background work WITHOUT flushing or closing the storage
// backend — the crash-simulation hook: recovery tests abandon a peer and
// reopen its data directory as if the process had been SIGKILLed.
func (p *Peer) Abandon() {
	p.Ring.Stop()
	p.Store.Stop()
	p.Rep.Stop()
	p.Router.Stop()
	if p.Gossip != nil {
		p.Gossip.Stop()
	}
}

// Cluster is the whole P2P system run in-process: all peers plus the free
// pool, over the simulated network.
type Cluster struct {
	cfg Config
	net *simnet.Network
	log *history.Log
	// qcache remembers which peer last served the first piece of a range
	// query, so follow-up queries enter the ring at the owner of their lower
	// bound instead of at a random peer (zero-hop owner lookup when fresh;
	// validated at the target when stale). nil when caching is disabled
	// (Router.CacheSize < 0), so ablation runs are genuinely cache-free.
	qcache *routecache.Cache

	mu     sync.Mutex
	peers  map[transport.Addr]*Peer
	free   []transport.Addr
	nextID int
	// Counters carried over from departed (merged-away) peers, whose stacks
	// leave the peer map.
	departedStats Stats

	rngMu sync.Mutex
	rng   *rand.Rand
}

// NewCluster creates an empty cluster.
func NewCluster(cfg Config) *Cluster {
	cfg = cfg.withDefaults()
	c := &Cluster{
		cfg:   cfg,
		net:   simnet.New(cfg.Net),
		log:   history.NewLog(),
		peers: make(map[transport.Addr]*Peer),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.Router.CacheSize >= 0 {
		c.qcache = routecache.New(cfg.Router.CacheSize)
	}
	return c
}

// Net exposes the network for failure injection and stats.
func (c *Cluster) Net() *simnet.Network { return c.net }

// Log exposes the correctness journal.
func (c *Cluster) Log() *history.Log { return c.log }

// newPeer constructs and registers a full peer stack in the FREE state.
func (c *Cluster) newPeer() (*Peer, error) {
	c.mu.Lock()
	c.nextID++
	addr := transport.Addr(fmt.Sprintf("peer-%d", c.nextID))
	c.mu.Unlock()

	p, err := assemblePeer(c.net, addr, c.cfg, c.log, (*freePool)(c))
	if err != nil {
		return nil, err
	}
	if p.Gossip != nil {
		// Seed membership with any existing peer so the new agent's first
		// rounds have someone to exchange with; gossip brings in the rest.
		c.mu.Lock()
		for other := range c.peers {
			p.Gossip.AddMember(other)
			break
		}
		c.mu.Unlock()
	}
	if err := p.Activate(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.peers[addr] = p
	c.mu.Unlock()
	return p, nil
}

// AddFirstPeer bootstraps the ring with its first member, which owns the
// whole key space.
func (c *Cluster) AddFirstPeer() (*Peer, error) {
	p, err := c.newPeer()
	if err != nil {
		return nil, err
	}
	if err := p.Ring.InitRing(); err != nil {
		return nil, err
	}
	p.Store.InitFirstPeer()
	p.Store.Start()
	p.Rep.Start()
	p.Router.Start()
	return p, nil
}

// AddFreePeer constructs a peer and parks it in the free pool, from which
// Data Store splits draw new ring members (Section 2.3).
func (c *Cluster) AddFreePeer() (*Peer, error) {
	p, err := c.newPeer()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.free = append(c.free, p.Addr)
	c.mu.Unlock()
	if p.Gossip != nil {
		p.Gossip.MarkFree(p.Addr)
	}
	return p, nil
}

// AddFreePeers adds n free peers.
func (c *Cluster) AddFreePeers(n int) error {
	for i := 0; i < n; i++ {
		if _, err := c.AddFreePeer(); err != nil {
			return err
		}
	}
	return nil
}

// freePool adapts Cluster to datastore.FreePool.
type freePool Cluster

// Acquire pops a free peer.
func (fp *freePool) Acquire() (transport.Addr, error) {
	c := (*Cluster)(fp)
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.free) == 0 {
		return "", ErrNoFreePeer
	}
	addr := c.free[0]
	c.free = c.free[1:]
	return addr, nil
}

// Release recycles a merged-away peer: the departed stack is defunct (the
// paper's model forbids re-entering with the same identifier), so a fresh
// peer replaces it in the pool.
func (fp *freePool) Release(addr transport.Addr) {
	c := (*Cluster)(fp)
	c.mu.Lock()
	old := c.peers[addr]
	delete(c.peers, addr)
	if old != nil {
		c.departedStats.Splits += old.Store.Splits.Load()
		c.departedStats.Merges += old.Store.Merges.Load()
		c.departedStats.Redistributes += old.Store.Redistributes.Load()
		c.departedStats.ScanAborts += old.Store.ScanAborts.Load()
		c.departedStats.StaleEpochRejects += old.Store.StaleEpochRejects.Load()
		c.departedStats.StepDowns += old.Store.StepDowns.Load()
	}
	c.mu.Unlock()
	if old != nil {
		go old.Stop()
	}
	_, _ = c.AddFreePeer()
}

// FreeCount returns the number of free peers available for splits.
func (c *Cluster) FreeCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.free)
}

// Peers returns all constructed peers (live and free).
func (c *Cluster) Peers() []*Peer {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Peer, 0, len(c.peers))
	for _, p := range c.peers {
		out = append(out, p)
	}
	return out
}

// LivePeers returns the peers currently serving a ring range.
func (c *Cluster) LivePeers() []*Peer {
	var out []*Peer
	for _, p := range c.Peers() {
		if !c.net.Alive(p.Addr) {
			continue
		}
		if _, ok := p.Store.Range(); ok && p.Ring.State() == ring.StateJoined {
			out = append(out, p)
		}
	}
	return out
}

// RingPeers returns the underlying ring.Peer objects of all peers still
// alive on the network, for the Definition 5 checker (a fail-stopped peer's
// local object never learns of its own death, so liveness is the network's
// to decide).
func (c *Cluster) RingPeers() []*ring.Peer {
	var out []*ring.Peer
	for _, p := range c.Peers() {
		if c.net.Alive(p.Addr) {
			out = append(out, p.Ring)
		}
	}
	return out
}

// CheckRing verifies consistent successor pointers (Definition 5).
func (c *Cluster) CheckRing() error { return ring.CheckConsistency(c.RingPeers()) }

// KillPeer fail-stops a peer (failure injection). Items it was serving stop
// being live until replication revives them. The failure is journaled
// unconditionally: a peer killed mid-merge has already dropped its range
// while the journal may still attribute in-flight items to it, and those
// must read as dead (Failed is a no-op for peers holding nothing).
func (c *Cluster) KillPeer(addr transport.Addr) {
	c.mu.Lock()
	p := c.peers[addr]
	c.mu.Unlock()
	c.net.Kill(addr)
	c.log.Failed(string(addr))
	if p != nil {
		go p.Stop()
	}
}

// Shutdown stops every peer's background work.
func (c *Cluster) Shutdown() {
	for _, p := range c.Peers() {
		p.Stop()
	}
}

// Stats aggregates system-wide state and maintenance counters.
type Stats struct {
	LivePeers         int    // peers currently serving a range
	FreePeers         int    // peers parked in the free pool
	Items             int    // items across all live Data Stores
	Splits            uint64 // Data Store splits executed
	Merges            uint64 // merges executed (peers that departed)
	Redistributes     uint64 // boundary redistributions executed
	ScanAborts        uint64 // scan attempts aborted (retried transparently)
	StaleEpochRejects uint64 // requests rejected by the ownership-epoch fence
	StepDowns         uint64 // deposed peers that resigned their range
}

// Stats returns a snapshot of the aggregate counters.
func (c *Cluster) Stats() Stats {
	c.mu.Lock()
	st := c.departedStats
	st.FreePeers = len(c.free)
	c.mu.Unlock()
	for _, p := range c.Peers() {
		st.Splits += p.Store.Splits.Load()
		st.Merges += p.Store.Merges.Load()
		st.Redistributes += p.Store.Redistributes.Load()
		st.ScanAborts += p.Store.ScanAborts.Load()
		st.StaleEpochRejects += p.Store.StaleEpochRejects.Load()
		st.StepDowns += p.Store.StepDowns.Load()
	}
	for _, p := range c.LivePeers() {
		st.LivePeers++
		st.Items += p.Store.ItemCount()
	}
	return st
}

// randomLive picks a random live entry peer for an API call.
func (c *Cluster) randomLive() (*Peer, error) {
	live := c.LivePeers()
	if len(live) == 0 {
		return nil, ErrNoLivePeer
	}
	c.rngMu.Lock()
	p := live[c.rng.Intn(len(live))]
	c.rngMu.Unlock()
	return p, nil
}
