package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/datastore"
	"repro/internal/history"
	"repro/internal/keyspace"
	"repro/internal/ring"
	"repro/internal/transport"
)

// The P2P Index API (insertItem, deleteItem, findItems as a range query) is
// implemented on Peer — every operation routes from that peer, exactly what
// a standalone process does — and re-exposed on Cluster, which picks an
// entry peer per attempt (the last-known owner of the query's lower bound
// when the entry cache has one, else a random live peer), modelling clients
// spread across the system.

// InsertItem stores an item in the index (the P2P Index insertItem API).
// It routes from a random live entry peer to the owner of the item's search
// key value and retries through ownership movements until ctx expires.
func (c *Cluster) InsertItem(ctx context.Context, item datastore.Item) error {
	return c.retryRouted(ctx, func(entry *Peer) error {
		return entry.insertAttempt(ctx, item)
	})
}

// DeleteItem removes an item from the index, reporting whether it existed.
func (c *Cluster) DeleteItem(ctx context.Context, key keyspace.Key) (bool, error) {
	var found bool
	err := c.retryRouted(ctx, func(entry *Peer) error {
		var err error
		found, err = entry.deleteAttempt(ctx, key)
		return err
	})
	return found, err
}

// retryRouted applies one routed attempt from a fresh random entry peer,
// retrying while ownership is moving (splits, merges, failures).
func (c *Cluster) retryRouted(ctx context.Context, op func(entry *Peer) error) error {
	return retryRouted(ctx, c.cfg.MaxQueryAttempts, func() error {
		entry, err := c.randomLive()
		if err != nil {
			return err
		}
		return op(entry)
	})
}

// InsertItem stores an item in the index, routing from this peer and
// retrying through ownership movements.
func (p *Peer) InsertItem(ctx context.Context, item datastore.Item) error {
	return p.retryRouted(ctx, func() error { return p.insertAttempt(ctx, item) })
}

// DeleteItem removes an item from the index, reporting whether it existed.
func (p *Peer) DeleteItem(ctx context.Context, key keyspace.Key) (bool, error) {
	var found bool
	err := p.retryRouted(ctx, func() error {
		var err error
		found, err = p.deleteAttempt(ctx, key)
		return err
	})
	return found, err
}

func (p *Peer) retryRouted(ctx context.Context, op func() error) error {
	return retryRouted(ctx, p.cfg.MaxQueryAttempts, op)
}

// retryRouted retries op through ownership movements with a short backoff.
func retryRouted(ctx context.Context, attempts int, op func() error) error {
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := op(); err != nil {
			lastErr = err
			time.Sleep(5 * time.Millisecond)
			continue
		}
		return nil
	}
	return fmt.Errorf("core: routed operation failed after retries: %w", lastErr)
}

// ownerEpoch returns the ownership epoch the route cache attributes to
// owner for key, or 0 (unfenced) when the cache has no matching entry.
// Mutations are stamped with it so a deposed incarnation of the owner
// rejects them with ErrStaleEpoch instead of accepting a write it no longer
// has the right to serve.
func (p *Peer) ownerEpoch(key keyspace.Key, owner transport.Addr) uint64 {
	if ent, ok := p.Router.CachedEntry(key); ok && ent.Addr == owner {
		return ent.Epoch
	}
	return 0
}

// insertAttempt performs one locate-and-insert from this peer.
func (p *Peer) insertAttempt(ctx context.Context, item datastore.Item) error {
	owner, _, err := p.Router.FindOwner(ctx, item.Key)
	if err != nil {
		return err
	}
	if err := p.Store.InsertAtFenced(ctx, owner, item, p.ownerEpoch(item.Key, owner)); err != nil {
		p.invalidateIfStale(owner, err)
		return err
	}
	return nil
}

// deleteAttempt performs one locate-and-delete from this peer.
func (p *Peer) deleteAttempt(ctx context.Context, key keyspace.Key) (bool, error) {
	owner, _, err := p.Router.FindOwner(ctx, key)
	if err != nil {
		return false, err
	}
	found, err := p.Store.DeleteAtFenced(ctx, owner, key, p.ownerEpoch(key, owner))
	if err != nil {
		p.invalidateIfStale(owner, err)
		return false, err
	}
	return found, nil
}

// invalidateIfStale drops a peer's cached route on the fail-stop signature
// or on an epoch-fence rejection (the route's incarnation is provably
// wrong). Other handler errors — a busy range lock, a boundary that moved
// between lookup and operation — come from a live peer whose route may well
// still be right; the retry's FindOwner re-validates the cached entry at the
// target and evicts it there if it really went stale.
func (p *Peer) invalidateIfStale(owner transport.Addr, err error) {
	if errors.Is(err, transport.ErrUnreachable) || errors.Is(err, datastore.ErrStaleEpoch) {
		p.Router.InvalidateOwner(owner)
	}
}

// RangeQuery evaluates a range predicate from an entry peer: the last-known
// owner of the query's lower bound when the cluster's entry cache has one
// (so the owner lookup starts zero hops away), else a random live peer. An
// entry peer can merge away while the query is in flight — its departed
// transport endpoint then refuses to send, so no retry from that peer can
// ever succeed — in which case the query re-enters from a fresh live peer,
// modelling a client reconnecting elsewhere.
func (c *Cluster) RangeQuery(ctx context.Context, iv keyspace.Interval) ([]datastore.Item, error) {
	if !iv.Valid() {
		return nil, fmt.Errorf("core: empty query interval %v", iv)
	}
	var lastErr error
	for entries := 0; entries < 3; entries++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		entry, cached, err := c.entryPeer(iv)
		if err != nil {
			return nil, err
		}
		items, stats, err := entry.RangeQueryStats(ctx, iv)
		if err == nil {
			c.learnEntry(stats)
			return items, nil
		}
		if cached && c.qcache != nil {
			c.qcache.Invalidate(entry.Addr)
		}
		lastErr = err
	}
	return nil, lastErr
}

// entryPeer picks the peer a cluster-level query enters from: the cached
// owner of the query's lower bound when it is still a live ring member, else
// a random live peer. cached reports which path was taken so a failed query
// can invalidate the entry.
func (c *Cluster) entryPeer(iv keyspace.Interval) (entry *Peer, cached bool, err error) {
	if c.qcache == nil {
		p, err := c.randomLive()
		return p, false, err
	}
	if ent, ok := c.qcache.Lookup(firstKeyOf(iv)); ok {
		c.mu.Lock()
		p := c.peers[ent.Addr]
		c.mu.Unlock()
		if p != nil && c.net.Alive(p.Addr) {
			if _, serving := p.Store.Range(); serving {
				return p, true, nil
			}
		}
		c.qcache.Invalidate(ent.Addr)
	}
	p, err := c.randomLive()
	return p, false, err
}

// learnEntry records the peer that served the query's first piece as the
// future entry point for queries over the same region.
func (c *Cluster) learnEntry(stats QueryStats) {
	if c.qcache != nil && stats.FirstOwner != "" {
		c.qcache.Learn(stats.FirstOwnerRange, stats.FirstOwner, stats.FirstOwnerEpoch, nil)
	}
}

// QueryStats reports how a range query executed.
type QueryStats struct {
	Hops     int           // ring hops of the successful scan (pieces visited - 1)
	Attempts int           // scan attempts including the successful one
	ScanTime time.Duration // duration of the successful scan, excluding the owner lookup (the Figure 21 metric)

	// FirstOwner identifies the peer that served the interval's first piece,
	// with FirstOwnerRange its responsibility range and FirstOwnerEpoch its
	// ownership epoch at serve time — the cluster's entry cache feeds on
	// these.
	FirstOwner      transport.Addr
	FirstOwnerRange keyspace.Range
	FirstOwnerEpoch uint64
	// ReplicaPieces counts pieces served by a replica instead of the primary
	// owner (bounded staleness; only unjournaled queries ever fall back).
	ReplicaPieces int
	// StaleEpochHints counts segments answered with a stale-epoch verdict
	// (the hint cost one probe and was re-resolved — never a wrong answer).
	StaleEpochHints int
}

// RangeQueryFrom evaluates a range predicate issued at the given peer,
// returning the matching items and the number of ring hops the final
// (successful) scan took.
func (c *Cluster) RangeQueryFrom(ctx context.Context, origin *Peer, iv keyspace.Interval) ([]datastore.Item, int, error) {
	items, stats, err := origin.RangeQueryStats(ctx, iv)
	return items, stats.Hops, err
}

// RangeQueryStatsFrom is RangeQueryFrom with execution statistics.
func (c *Cluster) RangeQueryStatsFrom(ctx context.Context, origin *Peer, iv keyspace.Interval) ([]datastore.Item, QueryStats, error) {
	return origin.RangeQueryStats(ctx, iv)
}

// RangeQueryStats evaluates a range predicate issued at this peer. With
// NaiveQueries configured it uses the unlocked application-level scan of
// Section 6.2 instead of the pipelined scan.
func (p *Peer) RangeQueryStats(ctx context.Context, iv keyspace.Interval) ([]datastore.Item, QueryStats, error) {
	return p.rangeQueryStats(ctx, iv, true)
}

// RangeQueryUnjournaled is RangeQueryStats without recording the query in
// the correctness journal. Operational probes (the CI cluster smoke) poll
// with it while a failure is being recovered: this process's journal never
// learns of a remote peer's death, so a journaled poll that observes the
// transient gap would read as a phantom Definition 4 violation. Unjournaled
// queries are also the only ones allowed to fall back to replica reads —
// the journaled path answers to the Definition 4 audit and therefore always
// reads primaries.
func (p *Peer) RangeQueryUnjournaled(ctx context.Context, iv keyspace.Interval) ([]datastore.Item, QueryStats, error) {
	return p.rangeQueryStats(ctx, iv, false)
}

func (p *Peer) rangeQueryStats(ctx context.Context, iv keyspace.Interval, journal bool) ([]datastore.Item, QueryStats, error) {
	if !iv.Valid() {
		return nil, QueryStats{}, fmt.Errorf("core: empty query interval %v", iv)
	}
	if p.cfg.NaiveQueries {
		return p.naiveRangeQuery(ctx, iv)
	}

	var logID int
	var start history.Seq
	if journal {
		logID, start = p.log.BeginQuery(iv)
	}
	var lastErr error = ErrQueryFailed
	for attempt := 1; attempt <= p.cfg.MaxQueryAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, QueryStats{}, err
		}
		items, stats, err := p.runScanAttempt(ctx, iv, !journal)
		if err == nil {
			stats.Attempts = attempt
			if journal {
				p.log.EndQuery(logID, iv, start, keysOf(items))
			}
			return items, stats, nil
		}
		lastErr = err
		time.Sleep(2 * time.Millisecond)
	}
	return nil, QueryStats{}, fmt.Errorf("%w: %v", ErrQueryFailed, lastErr)
}

// --- Pipelined scan ---------------------------------------------------------

// The read path's scan is origin-driven: instead of the hand-over-hand
// forwarding of Algorithm 4 (one hop at a time, results pushed back to the
// origin), the origin asks the owner of the lower bound for its piece AND
// its successor chain, then keeps up to ScanDepth per-range segment scans in
// flight via CallAsync, reassembling pieces in key order.
//
// Correctness rests on the same rule as the hand-over-hand scan: every
// segment is validated and snapshotted atomically at its target under the
// range read lock, so a piece is exactly the target's items for the piece
// interval at serve time. Pieces must then partition the query interval
// (checked with history.CheckScanCover, Definition 6); any boundary movement
// between speculation and service surfaces as a NotOwner rejection or a
// continuity break, and the scan re-resolves the frontier. An item that is
// live throughout the query is, at the moment its key's piece is served,
// stored at the validated owner of that piece — so it is in the result, and
// Definition 4 holds without a continuous lock chain across peers.

// maxScanSteps bounds one scan attempt against boundary thrash: each step
// either serves a piece or rebuilds the frontier, so a run this long means
// the ring is churning faster than the scan can advance and the attempt
// should fail (and be retried) rather than spin.
const maxScanSteps = 1024

// segPlan describes one per-range segment scan the origin intends to issue:
// derived from the owner-lookup cache (the entry segment) or from successor
// chain metadata (all following segments).
type segPlan struct {
	cursor   keyspace.Key     // first key of the segment
	addr     transport.Addr   // believed owner
	epoch    uint64           // believed ownership epoch (0 = unfenced speculation)
	end      keyspace.Key     // believed last key of the segment (clipped to the query)
	endKnown bool             // end derived from range metadata (replica fallback needs it)
	final    bool             // believed to reach the interval's end
	replicas []transport.Addr // believed replica holders (the owner's successors)
}

// segCall is an issued segment scan.
type segCall struct {
	segPlan
	pend   *datastore.SegmentPending
	cancel context.CancelFunc
}

// planFromRange builds the segment plan for cursor given the believed owner
// range and epoch (from the owner-lookup cache).
func planFromRange(cursor, last keyspace.Key, rng keyspace.Range, addr transport.Addr, epoch uint64, replicas []transport.Addr) segPlan {
	end, final := rng.ContiguousEnd(cursor, last)
	return segPlan{cursor: cursor, addr: addr, epoch: epoch, end: end, endKnown: true, final: final, replicas: replicas}
}

// plansFromChain derives the segments that follow a peer whose range ends at
// prevHi, from its successor chain: successor s_i owns (val(s_{i-1}),
// val(s_i)], so cursors and ends fall out of the advertised values. The
// replica candidates for each segment are the nodes after its owner in the
// same chain (a range's replicas live on its successors). Query intervals
// never wrap, so a chain value that wraps numerically means that successor's
// range runs through the top of the key space and must cover the rest of
// the interval.
func plansFromChain(prevHi, last keyspace.Key, chain []ring.Node) []segPlan {
	var out []segPlan
	prev := prevHi
	for i, n := range chain {
		if n.IsZero() || prev >= last {
			break
		}
		cursor := prev + 1
		pl := segPlan{cursor: cursor, addr: n.Addr, endKnown: true}
		if n.Val < cursor {
			// Wrapped successor: owns (prev, MaxKey] at least, which covers
			// the linear interval's remainder.
			pl.end, pl.final = last, true
		} else if n.Val >= last {
			pl.end, pl.final = last, true
		} else {
			pl.end = n.Val
		}
		for _, r := range chain[i+1:] {
			if !r.IsZero() && r.Addr != n.Addr {
				pl.replicas = append(pl.replicas, r.Addr)
			}
		}
		out = append(out, pl)
		if pl.final {
			break
		}
		prev = n.Val
	}
	return out
}

// runScanAttempt performs one pipelined scan attempt of a range query.
// allowReplica enables the per-segment replica-read fallback (unjournaled
// queries only; see RangeQueryUnjournaled).
func (p *Peer) runScanAttempt(ctx context.Context, iv keyspace.Interval, allowReplica bool) ([]datastore.Item, QueryStats, error) {
	first := firstKeyOf(iv)
	last := lastKeyOf(iv)

	scanCtx, cancelScan := context.WithTimeout(ctx, p.cfg.QueryAttemptTimeout)
	defer cancelScan()

	// Resolve the entry segment: the owner-lookup cache's unvalidated hint
	// when present — the segment handler validates ownership at the target,
	// so a warm query goes straight to the owner in a single round trip —
	// else a full routed lookup (which itself consults and feeds the cache).
	var entry segPlan
	if ent, ok := p.Router.CachedEntry(first); ok {
		entry = planFromRange(first, last, ent.Range, ent.Addr, ent.Epoch, ent.Replicas)
	} else {
		owner, _, err := p.Router.FindOwner(scanCtx, first)
		if err != nil {
			return nil, QueryStats{}, fmt.Errorf("core: owner lookup failed: %w", err)
		}
		if ent, ok := p.Router.CachedEntry(first); ok && ent.Addr == owner {
			// FindOwner just validated the owner and learned its range.
			entry = planFromRange(first, last, ent.Range, ent.Addr, ent.Epoch, ent.Replicas)
		} else {
			entry = segPlan{cursor: first, addr: owner}
		}
	}

	// The scan-time metric starts after the owner lookup, matching the
	// paper's Figure 21 methodology ("once the first peer with items in the
	// search range was found").
	scanStart := time.Now()

	var (
		stats    QueryStats
		pieces   []history.ScanPiece
		items    []datastore.Item
		inflight []*segCall
		plan     []segPlan
		expected = first
		complete bool
	)
	issue := func(pl segPlan) {
		cctx, cancel := context.WithCancel(scanCtx)
		inflight = append(inflight, &segCall{
			segPlan: pl,
			pend:    p.Store.ScanSegmentAsync(cctx, pl.addr, iv, pl.cursor, pl.epoch),
			cancel:  cancel,
		})
	}
	discard := func() {
		for _, c := range inflight {
			c.cancel()
		}
		inflight = inflight[:0]
		plan = plan[:0]
	}
	defer discard()

	issue(entry)
	for steps := 0; !complete; steps++ {
		if steps > maxScanSteps {
			return nil, QueryStats{}, fmt.Errorf("core: scan exceeded %d steps at cursor %d", maxScanSteps, expected)
		}
		if err := scanCtx.Err(); err != nil {
			return nil, QueryStats{}, fmt.Errorf("core: scan attempt timed out: %w", err)
		}

		// A frontier mismatch means a boundary moved under the speculative
		// plan (the last piece ended short of — or past — the next issued
		// cursor): everything downstream is suspect.
		if len(inflight) > 0 && inflight[0].cursor != expected {
			discard()
		}
		// Keep up to ScanDepth segments in flight.
		for len(inflight) < p.cfg.ScanDepth && len(plan) > 0 {
			next := plan[0]
			plan = plan[1:]
			issue(next)
		}
		if len(inflight) == 0 {
			// No metadata to speculate from: resolve the frontier's owner
			// and continue (the post-lookup cache entry restores end/replica
			// metadata when available).
			owner, _, err := p.Router.FindOwner(scanCtx, expected)
			if err != nil {
				return nil, QueryStats{}, fmt.Errorf("core: frontier lookup at %d failed: %w", expected, err)
			}
			if ent, ok := p.Router.CachedEntry(expected); ok && ent.Addr == owner {
				issue(planFromRange(expected, last, ent.Range, ent.Addr, ent.Epoch, ent.Replicas))
			} else {
				issue(segPlan{cursor: expected, addr: owner})
			}
			continue
		}

		head := inflight[0]
		inflight = inflight[1:]
		res, err := head.pend.Result()
		head.cancel()
		switch {
		case err != nil && !errors.Is(err, transport.ErrUnreachable):
			// A handler error from a live primary — typically ErrLockBusy
			// while maintenance holds the range write lock. The peer is not
			// dead and its route is not stale: a bounded-stale replica read
			// would be wrong here and invalidating the entry would evict a
			// healthy route, so just fail the attempt and let the retry ask
			// the same (live) primary again.
			return nil, QueryStats{}, fmt.Errorf("core: segment at %d via %s rejected: %w", head.cursor, head.addr, err)
		case err != nil:
			// The target is unreachable — the fail-stop signature (a dead
			// peer, or one that stopped answering within the deadline).
			// Later in-flight segments validate at their own targets, so
			// only this segment needs saving: try its replica holders
			// (unjournaled queries only), else fail the attempt.
			// The owner-lookup cache may know this owner's segment extent
			// and replica candidates even when the plan did not (an entry
			// probe, or a chain too short to name successors): consult it
			// before deciding the entry's fate.
			if ent, ok := p.Router.CachedEntry(head.cursor); ok && ent.Addr == head.addr {
				if !head.endKnown {
					pl := planFromRange(head.cursor, last, ent.Range, ent.Addr, ent.Epoch, nil)
					head.end, head.endKnown, head.final = pl.end, true, pl.final
				}
				if head.epoch == 0 {
					head.epoch = ent.Epoch
				}
				head.replicas = mergeAddrs(head.replicas, ent.Replicas)
			}
			if allowReplica && head.endKnown {
				if ritems, ok := p.replicaSegment(scanCtx, head, last); ok {
					// The entry that named the dead owner stays cached: it
					// still carries the replica candidates that just served
					// this segment, so follow-up queries pay one fast failed
					// call instead of a doomed full descent. Revival or
					// rebalance re-learns the region and prunes it.
					seg := keyspace.Interval{Lb: head.cursor, Ub: minKey(head.end, last)}
					pieces = append(pieces, history.ScanPiece{Peer: string(head.addr), Interval: seg})
					items = append(items, ritems...)
					stats.ReplicaPieces++
					p.ReplicaReads.Add(1)
					if head.final || seg.Ub >= last {
						complete = true
					} else {
						expected = seg.Ub + 1
					}
					continue
				}
			}
			p.Router.InvalidateOwner(head.addr)
			return nil, QueryStats{}, fmt.Errorf("core: segment at %d via %s failed: %w", head.cursor, head.addr, err)
		case res.NotOwner:
			// The boundary moved: the believed owner disclaims the cursor.
			// Drop the stale route and every speculative segment derived
			// from the same metadata; the next iteration re-resolves.
			p.Router.InvalidateOwner(head.addr)
			discard()
			continue
		case res.StaleEpoch:
			// The owner is right but the incarnation is not: our cached
			// epoch does not match the serving one (a hand-off or revival
			// happened since we learned it). Exactly like a stale route,
			// this costs one probe and a re-resolve — never a wrong answer.
			stats.StaleEpochHints++
			p.Router.InvalidateOwner(head.addr)
			discard()
			continue
		}

		// One validated piece, served atomically under the target's range
		// read lock.
		if fk := firstKeyOf(res.Piece); fk != head.cursor {
			return nil, QueryStats{}, fmt.Errorf("core: segment at %d answered misaligned piece %v", head.cursor, res.Piece)
		}
		p.Router.Learn(res.Range, head.addr, res.Epoch, res.Chain)
		if len(pieces) == 0 {
			stats.FirstOwner = head.addr
			stats.FirstOwnerRange = res.Range
			stats.FirstOwnerEpoch = res.Epoch
		}
		pieces = append(pieces, history.ScanPiece{Peer: string(head.addr), Interval: res.Piece})
		items = append(items, res.Items...)
		if res.Done {
			complete = true
			continue
		}
		pieceEnd := lastKeyOf(res.Piece)
		if pieceEnd >= last || pieceEnd == keyspace.MaxKey {
			complete = true
			continue
		}
		expected = pieceEnd + 1

		// This response carries the freshest view of what lies ahead:
		// re-plan everything beyond the segments already in flight, and
		// refresh the metadata of the segments already issued — an earlier,
		// shorter chain may have left them without an end or without replica
		// candidates (a segment planned at the tail of a chain has no
		// successors after it to name).
		fresh := plansFromChain(res.Range.Hi, last, res.Chain)
		for _, c := range inflight {
			for _, pl := range fresh {
				if pl.cursor == c.cursor && pl.addr == c.addr {
					c.end, c.endKnown, c.final = pl.end, pl.endKnown, pl.final
					c.replicas = mergeAddrs(c.replicas, pl.replicas)
				}
			}
		}
		frontier := expected
		if n := len(inflight); n > 0 {
			if !inflight[n-1].endKnown {
				// An end-unknown probe is in flight; let it resolve before
				// speculating past it.
				plan = plan[:0]
				continue
			}
			frontier = inflight[n-1].end + 1
		}
		plan = plan[:0]
		for _, pl := range fresh {
			if pl.cursor == frontier || (len(plan) > 0 && pl.cursor == plan[len(plan)-1].end+1) {
				plan = append(plan, pl)
			}
		}
	}

	if err := history.CheckScanCover(iv, pieces); err != nil {
		return nil, QueryStats{}, fmt.Errorf("core: scan cover check failed: %w", err)
	}
	items = dedupeItems(items)
	stats.Hops = len(pieces) - 1
	stats.ScanTime = time.Since(scanStart)
	return items, stats, nil
}

// replicaSegment serves one segment from the believed replica holders of its
// dead primary, in order, reporting whether any of them answered. The
// answer is bounded-staleness: a replica lags its origin by at most one
// replication refresh. Requests carry the believed primary's ownership
// epoch: a holder that refuses with ErrStaleEpoch has seen a higher epoch
// asserted over the segment — the whole chain we are consulting belongs to a
// deposed incarnation, so the fallback is abandoned (and the route dropped)
// rather than tried against further holders of the same stale chain.
func (p *Peer) replicaSegment(ctx context.Context, head *segCall, last keyspace.Key) ([]datastore.Item, bool) {
	seg := keyspace.ClosedInterval(head.cursor, minKey(head.end, last))
	for _, r := range head.replicas {
		if r == "" || r == head.addr {
			continue
		}
		items, err := p.Rep.ReplicaItems(ctx, r, seg, head.epoch)
		if err != nil {
			if errors.Is(err, datastore.ErrStaleEpoch) {
				p.Router.InvalidateOwner(head.addr)
				return nil, false
			}
			continue
		}
		return items, true
	}
	return nil, false
}

// NaiveQueryStatsFrom evaluates a range predicate with the Section 6.2
// naive application-level scan regardless of the cluster configuration —
// the comparison arm of Figure 21 and of the incorrectness demonstrations.
func (c *Cluster) NaiveQueryStatsFrom(ctx context.Context, origin *Peer, iv keyspace.Interval) ([]datastore.Item, QueryStats, error) {
	if !iv.Valid() {
		return nil, QueryStats{}, fmt.Errorf("core: empty query interval %v", iv)
	}
	return origin.naiveRangeQuery(ctx, iv)
}

// naiveRangeQuery is the Section 6.2 baseline: locate the first peer and
// walk the ring without locks or continuation validation.
func (p *Peer) naiveRangeQuery(ctx context.Context, iv keyspace.Interval) ([]datastore.Item, QueryStats, error) {
	logID, start := p.log.BeginQuery(iv)
	var lastErr error
	for attempt := 1; attempt <= p.cfg.MaxQueryAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, QueryStats{}, err
		}
		first, _, err := p.Router.FindOwner(ctx, firstKeyOf(iv))
		if err != nil {
			lastErr = err
			time.Sleep(2 * time.Millisecond)
			continue
		}
		scanStart := time.Now()
		items, hops, err := p.Store.NaiveScan(ctx, first, iv, 4096)
		if err != nil {
			lastErr = err
			time.Sleep(2 * time.Millisecond)
			continue
		}
		items = dedupeItems(items)
		p.log.EndQuery(logID, iv, start, keysOf(items))
		return items, QueryStats{Hops: hops, Attempts: attempt, ScanTime: time.Since(scanStart)}, nil
	}
	return nil, QueryStats{}, fmt.Errorf("%w: %v", ErrQueryFailed, lastErr)
}

// firstKeyOf returns the smallest key satisfying iv.
func firstKeyOf(iv keyspace.Interval) keyspace.Key {
	if iv.LbOpen {
		return iv.Lb + 1
	}
	return iv.Lb
}

// lastKeyOf returns the largest key satisfying iv.
func lastKeyOf(iv keyspace.Interval) keyspace.Key {
	if iv.UbOpen {
		return iv.Ub - 1
	}
	return iv.Ub
}

// mergeAddrs appends the addresses of extra not already present in base,
// preserving order (existing candidates are tried first).
func mergeAddrs(base, extra []transport.Addr) []transport.Addr {
	for _, a := range extra {
		dup := false
		for _, b := range base {
			if a == b {
				dup = true
				break
			}
		}
		if !dup && a != "" {
			base = append(base, a)
		}
	}
	return base
}

// minKey returns the smaller of two keys.
func minKey(a, b keyspace.Key) keyspace.Key {
	if a < b {
		return a
	}
	return b
}

// keysOf projects items to their keys.
func keysOf(items []datastore.Item) []keyspace.Key {
	out := make([]keyspace.Key, len(items))
	for i, it := range items {
		out[i] = it.Key
	}
	return out
}

// dedupeItems drops duplicate keys, keeping the first occurrence, and sorts
// by key.
func dedupeItems(items []datastore.Item) []datastore.Item {
	seen := make(map[keyspace.Key]bool, len(items))
	out := make([]datastore.Item, 0, len(items))
	for _, it := range items {
		if seen[it.Key] {
			continue
		}
		seen[it.Key] = true
		out = append(out, it)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
