package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/datastore"
	"repro/internal/history"
	"repro/internal/keyspace"
)

// The P2P Index API (insertItem, deleteItem, findItems as a range query) is
// implemented on Peer — every operation routes from that peer, exactly what
// a standalone process does — and re-exposed on Cluster, which picks a
// random live entry peer per attempt, modelling clients spread across the
// system.

// InsertItem stores an item in the index (the P2P Index insertItem API).
// It routes from a random live entry peer to the owner of the item's search
// key value and retries through ownership movements until ctx expires.
func (c *Cluster) InsertItem(ctx context.Context, item datastore.Item) error {
	return c.retryRouted(ctx, func(entry *Peer) error {
		return entry.insertAttempt(ctx, item)
	})
}

// DeleteItem removes an item from the index, reporting whether it existed.
func (c *Cluster) DeleteItem(ctx context.Context, key keyspace.Key) (bool, error) {
	var found bool
	err := c.retryRouted(ctx, func(entry *Peer) error {
		var err error
		found, err = entry.deleteAttempt(ctx, key)
		return err
	})
	return found, err
}

// retryRouted applies one routed attempt from a fresh random entry peer,
// retrying while ownership is moving (splits, merges, failures).
func (c *Cluster) retryRouted(ctx context.Context, op func(entry *Peer) error) error {
	return retryRouted(ctx, c.cfg.MaxQueryAttempts, func() error {
		entry, err := c.randomLive()
		if err != nil {
			return err
		}
		return op(entry)
	})
}

// InsertItem stores an item in the index, routing from this peer and
// retrying through ownership movements.
func (p *Peer) InsertItem(ctx context.Context, item datastore.Item) error {
	return p.retryRouted(ctx, func() error { return p.insertAttempt(ctx, item) })
}

// DeleteItem removes an item from the index, reporting whether it existed.
func (p *Peer) DeleteItem(ctx context.Context, key keyspace.Key) (bool, error) {
	var found bool
	err := p.retryRouted(ctx, func() error {
		var err error
		found, err = p.deleteAttempt(ctx, key)
		return err
	})
	return found, err
}

func (p *Peer) retryRouted(ctx context.Context, op func() error) error {
	return retryRouted(ctx, p.cfg.MaxQueryAttempts, op)
}

// retryRouted retries op through ownership movements with a short backoff.
func retryRouted(ctx context.Context, attempts int, op func() error) error {
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := op(); err != nil {
			lastErr = err
			time.Sleep(5 * time.Millisecond)
			continue
		}
		return nil
	}
	return fmt.Errorf("core: routed operation failed after retries: %w", lastErr)
}

// insertAttempt performs one locate-and-insert from this peer.
func (p *Peer) insertAttempt(ctx context.Context, item datastore.Item) error {
	owner, _, err := p.Router.FindOwner(ctx, item.Key)
	if err != nil {
		return err
	}
	return p.Store.InsertAt(ctx, owner, item)
}

// deleteAttempt performs one locate-and-delete from this peer.
func (p *Peer) deleteAttempt(ctx context.Context, key keyspace.Key) (bool, error) {
	owner, _, err := p.Router.FindOwner(ctx, key)
	if err != nil {
		return false, err
	}
	return p.Store.DeleteAt(ctx, owner, key)
}

// collector assembles the pieces of one range query attempt.
type collector struct {
	mu      sync.Mutex
	iv      keyspace.Interval
	attempt int
	pieces  []history.ScanPiece
	items   []datastore.Item
	done    chan struct{}
	aborted bool
	closed  bool
}

func newCollector(iv keyspace.Interval, attempt int) *collector {
	return &collector{iv: iv, attempt: attempt, done: make(chan struct{})}
}

// add merges one piece; it signals completion when the pieces cover iv.
func (col *collector) add(msg queryResultMsg) {
	col.mu.Lock()
	defer col.mu.Unlock()
	if col.closed || msg.Attempt != col.attempt {
		return
	}
	col.pieces = append(col.pieces, history.ScanPiece{Interval: msg.Piece})
	col.items = append(col.items, msg.Items...)
	if history.CheckScanCover(col.iv, col.pieces) == nil {
		col.closed = true
		close(col.done)
	}
}

// abort fails the attempt.
func (col *collector) abort(attempt int) {
	col.mu.Lock()
	defer col.mu.Unlock()
	if col.closed || attempt != col.attempt {
		return
	}
	col.aborted = true
	col.closed = true
	close(col.done)
}

// deliverResult routes a result piece to the matching collector at the
// origin peer.
func (p *Peer) deliverResult(msg queryResultMsg) {
	p.collMu.Lock()
	col := p.collectors[msg.QueryID]
	p.collMu.Unlock()
	if col != nil {
		col.add(msg)
	}
}

// abortCollector fails the matching collector's current attempt.
func (p *Peer) abortCollector(queryID uint64, attempt int) {
	p.collMu.Lock()
	col := p.collectors[queryID]
	p.collMu.Unlock()
	if col != nil {
		col.abort(attempt)
	}
}

// RangeQuery evaluates a range predicate from a random live entry peer. An
// entry peer can merge away while the query is in flight — its departed
// transport endpoint then refuses to send, so no retry from that peer can
// ever succeed — in which case the query re-enters from a fresh live peer,
// modelling a client reconnecting elsewhere.
func (c *Cluster) RangeQuery(ctx context.Context, iv keyspace.Interval) ([]datastore.Item, error) {
	var lastErr error
	for entries := 0; entries < 3; entries++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		entry, err := c.randomLive()
		if err != nil {
			return nil, err
		}
		items, _, err := c.RangeQueryFrom(ctx, entry, iv)
		if err == nil {
			return items, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// QueryStats reports how a range query executed.
type QueryStats struct {
	Hops     int           // ring hops of the successful scan (peers visited - 1)
	Attempts int           // scan attempts including the successful one
	ScanTime time.Duration // duration of the successful scan, excluding the owner lookup (the Figure 21 metric)
}

// RangeQueryFrom evaluates a range predicate issued at the given peer,
// returning the matching items and the number of ring hops the final
// (successful) scan took.
func (c *Cluster) RangeQueryFrom(ctx context.Context, origin *Peer, iv keyspace.Interval) ([]datastore.Item, int, error) {
	items, stats, err := origin.RangeQueryStats(ctx, iv)
	return items, stats.Hops, err
}

// RangeQueryStatsFrom is RangeQueryFrom with execution statistics.
func (c *Cluster) RangeQueryStatsFrom(ctx context.Context, origin *Peer, iv keyspace.Interval) ([]datastore.Item, QueryStats, error) {
	return origin.RangeQueryStats(ctx, iv)
}

// RangeQueryStats evaluates a range predicate issued at this peer. With
// NaiveQueries configured it uses the unlocked application-level scan of
// Section 6.2 instead of scanRange.
func (p *Peer) RangeQueryStats(ctx context.Context, iv keyspace.Interval) ([]datastore.Item, QueryStats, error) {
	return p.rangeQueryStats(ctx, iv, true)
}

// RangeQueryUnjournaled is RangeQueryStats without recording the query in
// the correctness journal. Operational probes (the CI cluster smoke) poll
// with it while a failure is being recovered: this process's journal never
// learns of a remote peer's death, so a journaled poll that observes the
// transient gap would read as a phantom Definition 4 violation.
func (p *Peer) RangeQueryUnjournaled(ctx context.Context, iv keyspace.Interval) ([]datastore.Item, QueryStats, error) {
	return p.rangeQueryStats(ctx, iv, false)
}

func (p *Peer) rangeQueryStats(ctx context.Context, iv keyspace.Interval, journal bool) ([]datastore.Item, QueryStats, error) {
	if !iv.Valid() {
		return nil, QueryStats{}, fmt.Errorf("core: empty query interval %v", iv)
	}
	if p.cfg.NaiveQueries {
		return p.naiveRangeQuery(ctx, iv)
	}

	qid := p.querySeq.Add(1)
	var logID int
	var start history.Seq
	if journal {
		logID, start = p.log.BeginQuery(iv)
	}
	var lastErr error = ErrQueryFailed
	for attempt := 1; attempt <= p.cfg.MaxQueryAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, QueryStats{}, err
		}
		items, stats, err := p.runScanAttempt(ctx, iv, qid, attempt)
		if err == nil {
			stats.Attempts = attempt
			if journal {
				p.log.EndQuery(logID, iv, start, keysOf(items))
			}
			return items, stats, nil
		}
		lastErr = err
	}
	return nil, QueryStats{}, fmt.Errorf("%w: %v", ErrQueryFailed, lastErr)
}

// runScanAttempt performs one scanRange attempt of a range query.
func (p *Peer) runScanAttempt(ctx context.Context, iv keyspace.Interval, qid uint64, attempt int) ([]datastore.Item, QueryStats, error) {
	first, _, err := p.Router.FindOwner(ctx, firstKeyOf(iv))
	if err != nil {
		time.Sleep(2 * time.Millisecond)
		return nil, QueryStats{}, fmt.Errorf("core: owner lookup failed: %w", err)
	}

	col := newCollector(iv, attempt)
	p.collMu.Lock()
	p.collectors[qid] = col
	p.collMu.Unlock()
	defer func() {
		p.collMu.Lock()
		if p.collectors[qid] == col {
			delete(p.collectors, qid)
		}
		p.collMu.Unlock()
	}()

	// The scan-time metric starts after the owner lookup, matching the
	// paper's Figure 21 methodology ("once the first peer with items in the
	// search range was found").
	scanStart := time.Now()
	scanCtx, cancel := context.WithTimeout(ctx, p.cfg.QueryAttemptTimeout)
	defer cancel()
	err = p.Store.StartScan(scanCtx, first, iv, handlerRangeQuery, queryParam{
		Origin: p.Addr, QueryID: qid, Attempt: attempt,
	})
	if err != nil {
		time.Sleep(2 * time.Millisecond)
		return nil, QueryStats{}, fmt.Errorf("core: scan start rejected: %w", err)
	}

	select {
	case <-col.done:
		col.mu.Lock()
		defer col.mu.Unlock()
		if col.aborted {
			return nil, QueryStats{}, errors.New("core: scan aborted mid-flight")
		}
		items := dedupeItems(col.items)
		return items, QueryStats{Hops: len(col.pieces) - 1, ScanTime: time.Since(scanStart)}, nil
	case <-scanCtx.Done():
		col.abort(attempt)
		return nil, QueryStats{}, fmt.Errorf("core: scan attempt timed out")
	}
}

// NaiveQueryStatsFrom evaluates a range predicate with the Section 6.2
// naive application-level scan regardless of the cluster configuration —
// the comparison arm of Figure 21 and of the incorrectness demonstrations.
func (c *Cluster) NaiveQueryStatsFrom(ctx context.Context, origin *Peer, iv keyspace.Interval) ([]datastore.Item, QueryStats, error) {
	if !iv.Valid() {
		return nil, QueryStats{}, fmt.Errorf("core: empty query interval %v", iv)
	}
	return origin.naiveRangeQuery(ctx, iv)
}

// naiveRangeQuery is the Section 6.2 baseline: locate the first peer and
// walk the ring without locks or continuation validation.
func (p *Peer) naiveRangeQuery(ctx context.Context, iv keyspace.Interval) ([]datastore.Item, QueryStats, error) {
	logID, start := p.log.BeginQuery(iv)
	var lastErr error
	for attempt := 1; attempt <= p.cfg.MaxQueryAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, QueryStats{}, err
		}
		first, _, err := p.Router.FindOwner(ctx, firstKeyOf(iv))
		if err != nil {
			lastErr = err
			time.Sleep(2 * time.Millisecond)
			continue
		}
		scanStart := time.Now()
		items, hops, err := p.Store.NaiveScan(ctx, first, iv, 4096)
		if err != nil {
			lastErr = err
			time.Sleep(2 * time.Millisecond)
			continue
		}
		items = dedupeItems(items)
		p.log.EndQuery(logID, iv, start, keysOf(items))
		return items, QueryStats{Hops: hops, Attempts: attempt, ScanTime: time.Since(scanStart)}, nil
	}
	return nil, QueryStats{}, fmt.Errorf("%w: %v", ErrQueryFailed, lastErr)
}

// firstKeyOf returns the smallest key satisfying iv.
func firstKeyOf(iv keyspace.Interval) keyspace.Key {
	if iv.LbOpen {
		return iv.Lb + 1
	}
	return iv.Lb
}

// keysOf projects items to their keys.
func keysOf(items []datastore.Item) []keyspace.Key {
	out := make([]keyspace.Key, len(items))
	for i, it := range items {
		out[i] = it.Key
	}
	return out
}

// dedupeItems drops duplicate keys, keeping the first occurrence, and sorts
// by key.
func dedupeItems(items []datastore.Item) []datastore.Item {
	seen := make(map[keyspace.Key]bool, len(items))
	out := make([]datastore.Item, 0, len(items))
	for _, it := range items {
		if seen[it.Key] {
			continue
		}
		seen[it.Key] = true
		out = append(out, it)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
