package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/datastore"
	"repro/internal/keyspace"
	"repro/internal/replication"
	"repro/internal/ring"
	"repro/internal/router"
	"repro/internal/transport"
	"repro/internal/transport/tcp"
)

// tcpConfig tunes the stack for loopback TCP latencies.
func tcpConfig() Config {
	cfg := Config{
		Ring: ring.Config{
			SuccListLen: 4,
			StabPeriod:  20 * time.Millisecond,
			PingPeriod:  20 * time.Millisecond,
			CallTimeout: 500 * time.Millisecond,
			AckTimeout:  5 * time.Second,
		},
		Store: datastore.Config{
			StorageFactor:      5,
			CheckPeriod:        25 * time.Millisecond,
			CallTimeout:        500 * time.Millisecond,
			MaintenanceTimeout: 5 * time.Second,
		},
		Replication: replication.Config{
			Factor:        3,
			RefreshPeriod: 25 * time.Millisecond,
			CallTimeout:   500 * time.Millisecond,
		},
		Router: router.Config{
			RefreshPeriod: 30 * time.Millisecond,
			CallTimeout:   500 * time.Millisecond,
			MaxHops:       64,
		},
		QueryAttemptTimeout: 3 * time.Second,
		MaxQueryAttempts:    30,
		Seed:                5,
	}
	return cfg
}

// startStandalone binds a fresh loopback endpoint and assembles a peer
// stack on it, the way one pepperd -listen process does. Each node gets its
// own Transport instance, so all inter-peer traffic crosses real sockets.
func startStandalone(t *testing.T, cfg Config) *Standalone {
	t.Helper()
	tr := tcp.New(tcp.Config{DialTimeout: time.Second, CallTimeout: 2 * time.Second})
	t.Cleanup(func() { tr.Close() })
	// Bind an ephemeral port first so the stack can be assembled with its
	// final dialable identity.
	probe := tcp.New(tcp.Config{})
	bound, err := probe.Listen("127.0.0.1:0", func(transport.Addr, string, any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	probe.Close()
	s, err := NewStandalone(tr, bound, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// Two OS-process-shaped peer stacks — separate transports, real loopback
// sockets — form a ring: the second process announces itself as a free peer,
// an overflow split on the first draws it in, and range queries span both.
// This is the multi-process deployment path of cmd/pepperd -listen/-join,
// exercised end to end.
func TestStandaloneClusterOverTCP(t *testing.T) {
	cfg := tcpConfig()
	boot := startStandalone(t, cfg)
	if err := boot.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	joiner := startStandalone(t, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := joiner.JoinAsFree(ctx, boot.Peer.Addr); err != nil {
		t.Fatal(err)
	}
	if boot.Pool.Len() != 1 {
		t.Fatalf("bootstrap pool has %d peers, want 1", boot.Pool.Len())
	}

	// Overflow the bootstrap peer (sf=5, so >10 items force a split); the
	// split must draw the remote process into the ring over TCP.
	for i := 1; i <= 14; i++ {
		if err := boot.Peer.InsertItem(ctx, datastore.Item{Key: keyspace.Key(i * 100), Payload: "x"}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := joiner.Peer.Store.Range(); ok && joiner.Peer.Ring.State() == ring.StateJoined {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if _, ok := joiner.Peer.Store.Range(); !ok {
		t.Fatal("remote peer never joined the ring (split did not reach it over TCP)")
	}
	if joiner.Peer.Store.ItemCount() == 0 {
		t.Fatal("remote peer joined but received no items")
	}

	// Range queries issued at either process must see the full item set.
	for name, origin := range map[string]*Peer{"bootstrap": boot.Peer, "joiner": joiner.Peer} {
		items, _, err := origin.RangeQueryStats(ctx, keyspace.ClosedInterval(0, 15*100))
		if err != nil {
			t.Fatalf("query from %s: %v", name, err)
		}
		if len(items) != 14 {
			t.Fatalf("query from %s returned %d items, want 14", name, len(items))
		}
	}

	// Inserts routed from the joiner land on whichever process owns the key.
	if err := joiner.Peer.InsertItem(ctx, datastore.Item{Key: 50, Payload: "late"}); err != nil {
		t.Fatal(err)
	}
	items, _, err := boot.Peer.RangeQueryStats(ctx, keyspace.Point(50))
	if err != nil || len(items) != 1 {
		t.Fatalf("point query for cross-process insert = %v, %v", items, err)
	}
}
