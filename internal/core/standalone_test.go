package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/datastore"
	"repro/internal/gossip"
	"repro/internal/keyspace"
	"repro/internal/replication"
	"repro/internal/ring"
	"repro/internal/router"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/transport/tcp"
)

// tcpConfig tunes the stack for loopback TCP latencies.
func tcpConfig() Config {
	cfg := Config{
		Ring: ring.Config{
			SuccListLen: 4,
			StabPeriod:  20 * time.Millisecond,
			PingPeriod:  20 * time.Millisecond,
			CallTimeout: 500 * time.Millisecond,
			AckTimeout:  5 * time.Second,
		},
		Store: datastore.Config{
			StorageFactor:      5,
			CheckPeriod:        25 * time.Millisecond,
			CallTimeout:        500 * time.Millisecond,
			MaintenanceTimeout: 5 * time.Second,
		},
		Replication: replication.Config{
			Factor:        3,
			RefreshPeriod: 25 * time.Millisecond,
			CallTimeout:   500 * time.Millisecond,
		},
		Router: router.Config{
			RefreshPeriod: 30 * time.Millisecond,
			CallTimeout:   500 * time.Millisecond,
			MaxHops:       64,
		},
		QueryAttemptTimeout: 3 * time.Second,
		MaxQueryAttempts:    30,
		Seed:                5,
	}
	return cfg
}

// startStandalone binds a fresh loopback endpoint and assembles a peer
// stack on it, the way one pepperd -listen process does. Each node gets its
// own Transport instance, so all inter-peer traffic crosses real sockets.
func startStandalone(t *testing.T, cfg Config) *Standalone {
	t.Helper()
	tr := tcp.New(tcp.Config{DialTimeout: time.Second, CallTimeout: 2 * time.Second})
	t.Cleanup(func() { tr.Close() })
	// Bind an ephemeral port first so the stack can be assembled with its
	// final dialable identity.
	probe := tcp.New(tcp.Config{})
	bound, err := probe.Listen("127.0.0.1:0", func(transport.Addr, string, any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	probe.Close()
	s, err := NewStandalone(tr, bound, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// Two OS-process-shaped peer stacks — separate transports, real loopback
// sockets — form a ring: the second process announces itself as a free peer,
// an overflow split on the first draws it in, and range queries span both.
// This is the multi-process deployment path of cmd/pepperd -listen/-join,
// exercised end to end.
func TestStandaloneClusterOverTCP(t *testing.T) {
	cfg := tcpConfig()
	boot := startStandalone(t, cfg)
	if err := boot.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	joiner := startStandalone(t, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := joiner.JoinAsFree(ctx, boot.Peer.Addr); err != nil {
		t.Fatal(err)
	}
	if boot.Pool.Len() != 1 {
		t.Fatalf("bootstrap pool has %d peers, want 1", boot.Pool.Len())
	}

	// Overflow the bootstrap peer (sf=5, so >10 items force a split); the
	// split must draw the remote process into the ring over TCP.
	for i := 1; i <= 14; i++ {
		if err := boot.Peer.InsertItem(ctx, datastore.Item{Key: keyspace.Key(i * 100), Payload: "x"}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := joiner.Peer.Store.Range(); ok && joiner.Peer.Ring.State() == ring.StateJoined {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if _, ok := joiner.Peer.Store.Range(); !ok {
		t.Fatal("remote peer never joined the ring (split did not reach it over TCP)")
	}
	if joiner.Peer.Store.ItemCount() == 0 {
		t.Fatal("remote peer joined but received no items")
	}

	// Range queries issued at either process must see the full item set.
	for name, origin := range map[string]*Peer{"bootstrap": boot.Peer, "joiner": joiner.Peer} {
		items, _, err := origin.RangeQueryStats(ctx, keyspace.ClosedInterval(0, 15*100))
		if err != nil {
			t.Fatalf("query from %s: %v", name, err)
		}
		if len(items) != 14 {
			t.Fatalf("query from %s returned %d items, want 14", name, len(items))
		}
	}

	// Inserts routed from the joiner land on whichever process owns the key.
	if err := joiner.Peer.InsertItem(ctx, datastore.Item{Key: 50, Payload: "late"}); err != nil {
		t.Fatal(err)
	}
	items, _, err := boot.Peer.RangeQueryStats(ctx, keyspace.Point(50))
	if err != nil || len(items) != 1 {
		t.Fatalf("point query for cross-process insert = %v, %v", items, err)
	}
}

// AddrPool.Release semantics: a lent-but-never-joined peer returns to the
// pool (a split whose insert failed), while a foreign address — the local
// peer reporting its own merge-away — is forwarded to OnMergedAway.
func TestAddrPoolReleaseSemantics(t *testing.T) {
	pool := &AddrPool{}
	var merged []transport.Addr
	pool.OnMergedAway = func(a transport.Addr) { merged = append(merged, a) }

	pool.Add("peer-a")
	pool.Add("peer-b")
	addr, err := pool.Acquire()
	if err != nil || addr != "peer-a" {
		t.Fatalf("Acquire = %v, %v", addr, err)
	}
	pool.Release(addr) // failed split insert: identity unused, back to the pool
	if pool.Len() != 2 {
		t.Fatalf("pool has %d peers after lent release, want 2", pool.Len())
	}
	if len(merged) != 0 {
		t.Fatalf("lent release reached OnMergedAway: %v", merged)
	}

	pool.Release("self-addr") // our own peer merged away
	if len(merged) != 1 || merged[0] != "self-addr" {
		t.Fatalf("merged-away release = %v, want [self-addr]", merged)
	}
	if pool.Len() != 2 {
		t.Fatalf("pool has %d peers after merged-away release, want 2 (defunct identity must not re-enter)", pool.Len())
	}
}

// A standalone process whose peer merges away must re-announce a fresh peer
// to its bootstrap on its own — no operator restart — and be drawable into
// the ring again by a later split. Full cycle over real TCP: join, split in,
// merge out, rejoin, split in again.
func TestStandaloneRejoinAfterMerge(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process churn cycle is slow")
	}
	cfg := tcpConfig()
	boot := startStandalone(t, cfg)
	if err := boot.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	joiner := startStandalone(t, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := joiner.JoinAsFree(ctx, boot.Peer.Addr); err != nil {
		t.Fatal(err)
	}

	// Overflow the bootstrap so a split draws the joiner into the ring.
	for i := 1; i <= 14; i++ {
		if err := boot.CurrentPeer().InsertItem(ctx, datastore.Item{Key: keyspace.Key(i * 100), Payload: "x"}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	waitJoined := func(s *Standalone, what string) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			p := s.CurrentPeer()
			if _, ok := p.Store.Range(); ok && p.Ring.State() == ring.StateJoined {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Fatalf("%s never joined the ring", what)
	}
	waitJoined(joiner, "joiner")
	oldAddr := joiner.CurrentPeer().Addr

	// Drain the joiner's range: the underflow eventually merges it into the
	// bootstrap, its identity is spent, and the process must rebuild and
	// re-announce a fresh peer by itself.
	drainDeadline := time.Now().Add(60 * time.Second)
	for {
		items := joiner.CurrentPeer().Store.LocalItems()
		if len(items) == 0 || joiner.CurrentPeer().Addr != oldAddr {
			break
		}
		if time.Now().After(drainDeadline) {
			t.Fatal("joiner never drained")
		}
		if _, err := boot.CurrentPeer().DeleteItem(ctx, items[0].Key); err != nil {
			time.Sleep(50 * time.Millisecond) // mid-merge churn; retry
		}
	}
	select {
	case <-joiner.Rejoins():
	case <-time.After(60 * time.Second):
		t.Fatal("joiner never rejoined after merging away")
	}
	if err := joiner.RejoinErr(); err != nil {
		t.Fatalf("rejoin reported failure: %v", err)
	}
	fresh := joiner.CurrentPeer()
	if fresh.Addr == oldAddr {
		t.Fatalf("rejoined peer reused identity %s (the paper's model forbids re-entering with the same identifier)", oldAddr)
	}
	if fresh.Ring.State() != ring.StateFree {
		t.Fatalf("rejoined peer state = %v, want FREE", fresh.Ring.State())
	}
	if boot.Pool.Len() != 1 {
		t.Fatalf("bootstrap pool has %d peers after rejoin, want 1 (the fresh announce)", boot.Pool.Len())
	}

	// The fresh peer must be fully functional: another overflow split has to
	// draw it back into the ring.
	for i := 1; i <= 14; i++ {
		if err := boot.CurrentPeer().InsertItem(ctx, datastore.Item{Key: keyspace.Key(i*100 + 50), Payload: "y"}); err != nil {
			t.Fatalf("reinsert %d: %v", i, err)
		}
	}
	waitJoined(joiner, "rejoined peer")
	if joiner.CurrentPeer().Store.ItemCount() == 0 {
		t.Fatal("rejoined peer joined but received no items")
	}
}

// A split at a non-bootstrap process must be able to borrow a free peer
// from the bootstrap's pool: free peers announce only to the bootstrap, so
// without the remote-acquire path an overflowed non-bootstrap peer could
// never split (the cluster-smoke churn cycle hits exactly this after a
// failure revival re-homes a range away from the bootstrap).
func TestAcquireBorrowsFreePeerFromBootstrap(t *testing.T) {
	cfg := tcpConfig()
	cfg.Store.DisableMaintenance = true
	boot := startStandalone(t, cfg)
	if err := boot.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	member := startStandalone(t, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := member.JoinAsFree(ctx, boot.CurrentPeer().Addr); err != nil {
		t.Fatal(err)
	}

	// The member's own pool is empty, so Acquire must reach across to the
	// bootstrap's pool (which holds the member's own announced address).
	addr, err := member.Acquire()
	if err != nil {
		t.Fatalf("Acquire found no free peer despite one pooled at the bootstrap: %v", err)
	}
	if addr != member.CurrentPeer().Addr {
		t.Fatalf("Acquire returned %s, want the announced %s", addr, member.CurrentPeer().Addr)
	}
	if boot.Pool.Len() != 0 {
		t.Fatalf("bootstrap pool still holds %d peers after the remote acquire", boot.Pool.Len())
	}
	// A failed split releases the borrowed address: it must re-pool locally
	// (the lent bookkeeping), not vanish or be mistaken for a merge-away.
	member.Release(addr)
	if member.Pool.Len() != 1 {
		t.Fatalf("released borrowed peer not re-pooled locally (len=%d)", member.Pool.Len())
	}
}

// A locally pooled address that the gossip directory has since seen
// advertise a range is a spent identity and must never be handed to a
// split. Regression for a livelock: two members race for the same gossiped
// free entry, the loser's failed insert Releases the already-joined address
// back into its local pool, and every subsequent split would re-acquire it
// first and wedge in INSERTING forever (the joined node never acks a second
// join). A merged-away peer re-announces under a fresh identity, so
// dropping the spent address loses nothing.
func TestAcquireSkipsPooledPeerThatJoinedElsewhere(t *testing.T) {
	net := simnet.New(simnet.DefaultConfig())
	defer net.Close()

	cfg := tcpConfig()
	cfg.Gossip = gossip.Config{Interval: time.Hour, Fanout: 2, CallTimeout: 200 * time.Millisecond, Seed: 1}
	s, err := NewStandalone(net, "node-0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// "stale-owner" once announced to this process, then joined the ring
	// through someone else; its signedless range advert arrives via gossip.
	mux := simnet.NewMux()
	owner := gossip.New(net, mux, "stale-owner", gossip.Config{Fanout: 2, CallTimeout: 200 * time.Millisecond, Seed: 7})
	if err := net.Register("stale-owner", mux.Dispatch); err != nil {
		t.Fatal(err)
	}
	owner.SelfAdvert = func() (keyspace.Range, uint64, bool) {
		return keyspace.Range{Lo: 0, Hi: 100}, 2, true
	}
	owner.AddMember("node-0")

	s.Pool.Add("stale-owner")
	s.Pool.Add("fresh-peer")

	deadline := time.Now().Add(5 * time.Second)
	for !s.CurrentPeer().Gossip.OwnsRange("stale-owner") {
		if time.Now().After(deadline) {
			t.Fatal("range advert never reached the local directory")
		}
		owner.RunRound(context.Background())
		time.Sleep(5 * time.Millisecond)
	}

	addr, err := s.Acquire()
	if err != nil || addr != "fresh-peer" {
		t.Fatalf("Acquire = %v, %v; want fresh-peer (stale-owner's identity is spent)", addr, err)
	}
	if addr, err := s.Acquire(); err == nil {
		t.Fatalf("Acquire handed out %s; the spent identity must not re-enter circulation", addr)
	}
}
