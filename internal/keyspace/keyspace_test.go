package keyspace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBetweenLinear(t *testing.T) {
	cases := []struct {
		k, lo, hi Key
		want      bool
	}{
		{k: 5, lo: 3, hi: 8, want: true},
		{k: 3, lo: 3, hi: 8, want: false}, // lower bound exclusive
		{k: 8, lo: 3, hi: 8, want: true},  // upper bound inclusive
		{k: 9, lo: 3, hi: 8, want: false},
		{k: 2, lo: 3, hi: 8, want: false},
	}
	for _, c := range cases {
		if got := Between(c.k, c.lo, c.hi); got != c.want {
			t.Errorf("Between(%d, %d, %d) = %v, want %v", c.k, c.lo, c.hi, got, c.want)
		}
	}
}

func TestBetweenWrapped(t *testing.T) {
	// (20, 5] wraps through MaxKey.
	cases := []struct {
		k    Key
		want bool
	}{
		{k: 25, want: true},
		{k: MaxKey, want: true},
		{k: 0, want: true},
		{k: 5, want: true},
		{k: 6, want: false},
		{k: 20, want: false},
		{k: 10, want: false},
	}
	for _, c := range cases {
		if got := Between(c.k, 20, 5); got != c.want {
			t.Errorf("Between(%d, 20, 5) = %v, want %v", c.k, got, c.want)
		}
	}
}

func TestBetweenFullRing(t *testing.T) {
	for _, k := range []Key{0, 7, MaxKey} {
		if !Between(k, 7, 7) {
			t.Errorf("full ring (7,7] should contain %d", k)
		}
	}
}

func TestDist(t *testing.T) {
	if d := Dist(3, 10); d != 7 {
		t.Errorf("Dist(3,10) = %d, want 7", d)
	}
	if d := Dist(10, 3); d != ^uint64(0)-6 {
		t.Errorf("Dist(10,3) = %d, want wrap distance", d)
	}
	if d := Dist(5, 5); d != 0 {
		t.Errorf("Dist(5,5) = %d, want 0", d)
	}
}

func TestRangeContains(t *testing.T) {
	r := NewRange(10, 20)
	if r.Contains(10) {
		t.Error("(10,20] must not contain 10")
	}
	if !r.Contains(20) || !r.Contains(11) {
		t.Error("(10,20] must contain 11 and 20")
	}
	if r.Contains(21) {
		t.Error("(10,20] must not contain 21")
	}
}

func TestRangeSplitAt(t *testing.T) {
	r := NewRange(10, 20)
	low, high, ok := r.SplitAt(15)
	if !ok {
		t.Fatal("split at interior point must succeed")
	}
	if low != NewRange(10, 15) || high != NewRange(15, 20) {
		t.Errorf("split = %v / %v", low, high)
	}
	if _, _, ok := r.SplitAt(20); ok {
		t.Error("split at Hi must fail")
	}
	if _, _, ok := r.SplitAt(10); ok {
		t.Error("split at Lo (not contained) must fail")
	}
	if _, _, ok := r.SplitAt(25); ok {
		t.Error("split outside range must fail")
	}
}

func TestRangeSplitWrapped(t *testing.T) {
	r := NewRange(MaxKey-5, 5) // wraps
	low, high, ok := r.SplitAt(MaxKey - 1)
	if !ok {
		t.Fatal("wrapped split must succeed")
	}
	if low != NewRange(MaxKey-5, MaxKey-1) || high != NewRange(MaxKey-1, 5) {
		t.Errorf("wrapped split = %v / %v", low, high)
	}
	low2, high2, ok := r.SplitAt(2)
	if !ok {
		t.Fatal("wrapped split past zero must succeed")
	}
	if low2 != NewRange(MaxKey-5, 2) || high2 != NewRange(2, 5) {
		t.Errorf("wrapped split past zero = %v / %v", low2, high2)
	}
}

func TestFullRangeBehaviour(t *testing.T) {
	r := FullRange(42)
	if !r.IsFull() {
		t.Fatal("FullRange must report IsFull")
	}
	if !r.Contains(0) || !r.Contains(42) || !r.Contains(MaxKey) {
		t.Error("full range must contain everything")
	}
	low, high, ok := r.SplitAt(100)
	if !ok {
		t.Fatal("splitting a full range must succeed at any non-Hi point")
	}
	if low != NewRange(42, 100) || high != NewRange(100, 42) {
		t.Errorf("full range split = %v / %v", low, high)
	}
}

func TestExtendDown(t *testing.T) {
	r := NewRange(10, 20).ExtendDown(5)
	if r != NewRange(5, 20) {
		t.Errorf("ExtendDown = %v", r)
	}
}

func TestIntervalContains(t *testing.T) {
	cases := []struct {
		iv   Interval
		k    Key
		want bool
	}{
		{ClosedInterval(3, 8), 3, true},
		{ClosedInterval(3, 8), 8, true},
		{Interval{Lb: 3, Ub: 8, LbOpen: true}, 3, false},
		{Interval{Lb: 3, Ub: 8, UbOpen: true}, 8, false},
		{Interval{Lb: 3, Ub: 8, LbOpen: true, UbOpen: true}, 5, true},
		{ClosedInterval(3, 8), 2, false},
		{ClosedInterval(3, 8), 9, false},
		{Point(7), 7, true},
		{Point(7), 6, false},
	}
	for _, c := range cases {
		if got := c.iv.Contains(c.k); got != c.want {
			t.Errorf("%v.Contains(%d) = %v, want %v", c.iv, c.k, got, c.want)
		}
	}
}

func TestIntervalValid(t *testing.T) {
	if !ClosedInterval(3, 3).Valid() {
		t.Error("[3,3] is valid")
	}
	if (Interval{Lb: 3, Ub: 3, LbOpen: true}).Valid() {
		t.Error("(3,3] is empty")
	}
	if (Interval{Lb: 5, Ub: 3}).Valid() {
		t.Error("[5,3] is empty")
	}
	if !(Interval{Lb: 3, Ub: 4, LbOpen: true, UbOpen: true}).Valid() {
		t.Error("(3,4) is technically empty over integers but Valid is bound-based; (3,4] nonempty check")
	}
}

func TestClipToRangeBasic(t *testing.T) {
	iv := ClosedInterval(5, 15)
	got, ok := iv.ClipToRange(NewRange(8, 20))
	if !ok {
		t.Fatal("expected non-empty clip")
	}
	want := Interval{Lb: 8, Ub: 15, LbOpen: true}
	if got != want {
		t.Errorf("clip = %v, want %v", got, want)
	}

	got, ok = iv.ClipToRange(NewRange(0, 10))
	if !ok {
		t.Fatal("expected non-empty clip")
	}
	want = Interval{Lb: 5, Ub: 10}
	if got != want {
		t.Errorf("clip = %v, want %v", got, want)
	}

	if _, ok := iv.ClipToRange(NewRange(20, 30)); ok {
		t.Error("disjoint clip must be empty")
	}
	// Range (15, 30]: only touches at nothing (iv ends at 15 which is Lo,
	// exclusive), so empty.
	if _, ok := iv.ClipToRange(NewRange(15, 30)); ok {
		t.Error("clip touching only the exclusive bound must be empty")
	}
}

func TestClipToRangeFull(t *testing.T) {
	iv := ClosedInterval(5, 15)
	got, ok := iv.ClipToRange(FullRange(99))
	if !ok || got != iv {
		t.Errorf("clip to full ring = %v, %v", got, ok)
	}
}

func TestClipToRangeWrapped(t *testing.T) {
	// Range wraps: (MaxKey-10, 10].
	r := NewRange(MaxKey-10, 10)
	// Interval entirely in the low piece near the top of the key space.
	iv := ClosedInterval(MaxKey-5, MaxKey-2)
	got, ok := iv.ClipToRange(r)
	if !ok || got != iv {
		t.Errorf("high-side clip = %v, %v", got, ok)
	}
	// Interval entirely in the [0,10] piece.
	iv = ClosedInterval(2, 8)
	got, ok = iv.ClipToRange(r)
	if !ok || got != iv {
		t.Errorf("low-side clip = %v, %v", got, ok)
	}
	// Interval outside both pieces.
	iv = ClosedInterval(100, 200)
	if _, ok := iv.ClipToRange(r); ok {
		t.Error("clip outside wrapped range must be empty")
	}
}

// Property: every key the clipped interval contains is contained by both the
// original interval and the range, and every key in a sampled set that both
// contain is in the clip (when the clip is the frontier-adjacent piece, keys
// below the frontier piece may be deferred — so we only assert for
// non-wrapping ranges where the clip is exact).
func TestClipToRangeProperty(t *testing.T) {
	f := func(lbRaw, ubRaw, loRaw, hiRaw uint64, probes [12]uint64) bool {
		lb, ub := Key(lbRaw%1000), Key(ubRaw%1000)
		if lb > ub {
			lb, ub = ub, lb
		}
		lo, hi := Key(loRaw%1000), Key(hiRaw%1000)
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo == hi {
			hi++ // avoid accidental full range in the linear case
		}
		iv := ClosedInterval(lb, ub)
		r := NewRange(lo, hi)
		clip, ok := iv.ClipToRange(r)
		for _, pRaw := range probes {
			k := Key(pRaw % 1100)
			inBoth := iv.Contains(k) && r.Contains(k)
			inClip := ok && clip.Contains(k)
			if inBoth != inClip {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Between is equivalent to walking the ring clockwise from lo.
func TestBetweenDistProperty(t *testing.T) {
	f := func(k, lo, hi Key) bool {
		if lo == hi {
			return Between(k, lo, hi)
		}
		want := Dist(lo, k) <= Dist(lo, hi) && k != lo
		return Between(k, lo, hi) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// Property: SplitAt partitions the range: every key is in exactly one half,
// and the halves rejoin to the original.
func TestSplitPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		lo, hi := Key(rng.Uint64()), Key(rng.Uint64())
		r := NewRange(lo, hi)
		m := Key(rng.Uint64())
		low, high, ok := r.SplitAt(m)
		if !ok {
			if r.Contains(m) && m != r.Hi {
				t.Fatalf("SplitAt(%d) of %v refused a valid point", m, r)
			}
			continue
		}
		for j := 0; j < 8; j++ {
			k := Key(rng.Uint64())
			inR := r.Contains(k)
			inLow, inHigh := low.Contains(k), high.Contains(k)
			if inLow && inHigh {
				t.Fatalf("key %d in both halves of %v split at %d", k, r, m)
			}
			if inR != (inLow || inHigh) {
				t.Fatalf("key %d: partition mismatch for %v split at %d (low=%v high=%v)", k, r, m, low, high)
			}
		}
	}
}

func TestRangeString(t *testing.T) {
	if s := NewRange(3, 9).String(); s != "(3, 9]" {
		t.Errorf("String = %q", s)
	}
	if s := FullRange(3).String(); s == "" {
		t.Error("full range String must be non-empty")
	}
}

func TestIntervalString(t *testing.T) {
	cases := []struct {
		iv   Interval
		want string
	}{
		{ClosedInterval(1, 2), "[1, 2]"},
		{Interval{Lb: 1, Ub: 2, LbOpen: true}, "(1, 2]"},
		{Interval{Lb: 1, Ub: 2, UbOpen: true}, "[1, 2)"},
		{Interval{Lb: 1, Ub: 2, LbOpen: true, UbOpen: true}, "(1, 2)"},
	}
	for _, c := range cases {
		if got := c.iv.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestRangeOverlaps(t *testing.T) {
	cases := []struct {
		a, b Range
		want bool
	}{
		{NewRange(0, 100), NewRange(50, 150), true},               // partial overlap
		{NewRange(0, 100), NewRange(100, 200), false},             // adjacent: (100, 200] excludes 100
		{NewRange(0, 100), NewRange(200, 300), false},             // disjoint
		{NewRange(0, 100), NewRange(0, 100), true},                // identical
		{NewRange(0, 100), NewRange(20, 80), true},                // containment
		{FullRange(0), NewRange(5, 10), true},                     // full ring overlaps all
		{NewRange(MaxKey-10, 10), NewRange(5, 20), true},          // wrap vs low segment
		{NewRange(MaxKey-10, 10), NewRange(20, MaxKey-20), false}, // wrap vs middle
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(c.a); got != c.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}
