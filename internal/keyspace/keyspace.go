// Package keyspace defines the totally ordered search-key domain K, the
// peer-value domain PV, and circular ranges over PV.
//
// The paper (Section 2.1) assumes items expose a search key value from a
// totally ordered domain, and peers carry a value from a totally ordered
// domain PV that increases clockwise around the ring, wrapping at the top.
// A range index uses an order-preserving map M from K to PV; we use the
// identity map, so Key serves both roles.
//
// A peer p owns the circular range (pred(p).val, p.val]: lower bound
// exclusive, upper bound inclusive, wrapping past the maximum Key back to
// zero. Query predicates are intervals [lb,ub], (lb,ub], [lb,ub) or (lb,ub)
// over K and never wrap.
package keyspace

import "fmt"

// Key is a value in the search-key domain K and, via the identity mapping M,
// also a position in the peer-value domain PV. Keys are totally ordered by <.
type Key uint64

// MaxKey is the largest value in the domain; the ring wraps from MaxKey to 0.
const MaxKey = Key(^uint64(0))

// Dist returns the clockwise distance from a to b on the ring, i.e. how far
// one must travel in increasing-key direction (wrapping) to reach b from a.
func Dist(a, b Key) uint64 {
	return uint64(b - a) // uint64 arithmetic wraps exactly like the ring
}

// Between reports whether k lies in the circular open-closed interval (lo, hi].
// When lo == hi the interval denotes the full ring, so Between is always true;
// this matches a single-peer system owning everything.
func Between(k, lo, hi Key) bool {
	if lo == hi {
		return true
	}
	if lo < hi {
		return lo < k && k <= hi
	}
	// wrapped interval
	return k > lo || k <= hi
}

// Range is a circular open-closed interval (Lo, Hi] over the peer-value
// domain: the half-open responsibility range of a peer. Lo == Hi denotes the
// full ring (the first peer's range). The zero Range is not valid; use
// FullRange or NewRange.
type Range struct {
	Lo Key // exclusive
	Hi Key // inclusive
}

// FullRange returns the range covering the entire ring, anchored at hi: the
// range (hi, hi] which by convention contains every key.
func FullRange(hi Key) Range { return Range{Lo: hi, Hi: hi} }

// NewRange returns the circular range (lo, hi].
func NewRange(lo, hi Key) Range { return Range{Lo: lo, Hi: hi} }

// Contains reports whether k is in the circular interval (r.Lo, r.Hi].
func (r Range) Contains(k Key) bool { return Between(k, r.Lo, r.Hi) }

// IsFull reports whether the range covers the whole ring.
func (r Range) IsFull() bool { return r.Lo == r.Hi }

// Size returns the number of keys in the range. A full range reports the
// maximum uint64 value (one short of the true 2^64 cardinality, which does
// not fit); callers only use Size for ordering and splitting decisions.
func (r Range) Size() uint64 {
	if r.IsFull() {
		return ^uint64(0)
	}
	return uint64(r.Hi - r.Lo)
}

// Overlaps reports whether two circular ranges share any key. A range
// contains its own Hi, so two ranges overlap exactly when either contains the
// other's upper bound (full ranges contain everything).
func (r Range) Overlaps(o Range) bool {
	return r.Contains(o.Hi) || o.Contains(r.Hi)
}

// SplitAt divides r at key m into low = (Lo, m] and high = (m, Hi].
// m must lie strictly inside the range (Contains(m) and m != Hi); otherwise
// SplitAt reports ok == false.
func (r Range) SplitAt(m Key) (low, high Range, ok bool) {
	if !r.Contains(m) || m == r.Hi {
		return Range{}, Range{}, false
	}
	return Range{Lo: r.Lo, Hi: m}, Range{Lo: m, Hi: r.Hi}, true
}

// ExtendDown returns the range (newLo, r.Hi], the result of absorbing a
// departing predecessor whose range began at newLo (a merge, Section 2.3).
func (r Range) ExtendDown(newLo Key) Range { return Range{Lo: newLo, Hi: r.Hi} }

// ContiguousEnd returns the last key of the contiguous segment of r that
// starts at cursor, clipped to last (the end of a linear, non-wrapping query
// interval), and whether the query is fully covered by that segment. cursor
// must be contained in r. Scans use it to compute the piece a peer serves;
// the read path uses it to plan speculative segments from cached or
// advertised range metadata.
func (r Range) ContiguousEnd(cursor, last Key) (Key, bool) {
	if r.IsFull() {
		return last, true
	}
	if r.Lo < r.Hi || cursor <= r.Hi {
		// Non-wrapped range, or the cursor sits in the low segment [0, hi]
		// of a wrapped one: ownership is contiguous up to r.Hi.
		if last <= r.Hi {
			return last, true
		}
		return r.Hi, false
	}
	// Wrapped range with the cursor in the high segment (lo, MaxKey]: every
	// key from cursor through MaxKey is owned, and the query is linear, so
	// it ends within this segment.
	return last, true
}

// String renders the range in the paper's (lo, hi] notation.
func (r Range) String() string {
	if r.IsFull() {
		return fmt.Sprintf("(%d, %d] (full ring)", r.Lo, r.Hi)
	}
	return fmt.Sprintf("(%d, %d]", r.Lo, r.Hi)
}

// Interval is a (possibly open or closed at either end) non-wrapping query
// predicate over the search-key domain: one of [Lb,Ub], (Lb,Ub], [Lb,Ub) or
// (Lb,Ub) as in Section 2.1 of the paper.
type Interval struct {
	Lb, Ub         Key
	LbOpen, UbOpen bool
}

// ClosedInterval returns the closed interval [lb, ub].
func ClosedInterval(lb, ub Key) Interval { return Interval{Lb: lb, Ub: ub} }

// Point returns the degenerate interval [k, k], i.e. an equality predicate.
// The paper notes equality queries are a special case of range queries.
func Point(k Key) Interval { return Interval{Lb: k, Ub: k} }

// Valid reports whether the interval denotes a non-empty set of keys.
func (iv Interval) Valid() bool {
	if iv.Lb < iv.Ub {
		return true
	}
	if iv.Lb > iv.Ub {
		return false
	}
	return !iv.LbOpen && !iv.UbOpen
}

// Contains reports whether k satisfies the interval predicate.
func (iv Interval) Contains(k Key) bool {
	if k < iv.Lb || k > iv.Ub {
		return false
	}
	if k == iv.Lb && iv.LbOpen {
		return false
	}
	if k == iv.Ub && iv.UbOpen {
		return false
	}
	return true
}

// String renders the interval in mathematical notation.
func (iv Interval) String() string {
	l, r := "[", "]"
	if iv.LbOpen {
		l = "("
	}
	if iv.UbOpen {
		r = ")"
	}
	return fmt.Sprintf("%s%d, %d%s", l, iv.Lb, iv.Ub, r)
}

// ClipToRange intersects the interval with a peer's circular range, returning
// the sub-interval of iv whose keys fall inside r, as scanRange does when
// computing "r = [lb, ub] ∩ p.range" (Algorithm 4). ok is false when the
// intersection is empty.
//
// Because query intervals never wrap, the intersection with a circular range
// can in principle be two disjoint pieces (when the range wraps through the
// top of the key space and the interval spans the wrap neighbourhood on both
// sides). ClipToRange returns the piece that contains the interval's lower
// continuation point if any, else the other piece; WrapSplit callers in the
// datastore only ever need the piece adjacent to the scan frontier, and the
// scan revisits the remainder on the next peer.
func (iv Interval) ClipToRange(r Range) (Interval, bool) {
	if r.IsFull() {
		return iv, iv.Valid()
	}
	// Non-wrapping range: intersect with the linear segment (r.Lo, r.Hi].
	if r.Lo < r.Hi {
		return clipSegment(iv, r.Lo, true, r.Hi)
	}
	// Wrapping range = (r.Lo, MaxKey] ∪ [0, r.Hi]. The scan proceeds in
	// increasing key order, so prefer the piece adjacent to the interval's
	// first key; the scan revisits any remainder on a later peer.
	lowPiece, lowOK := clipSegment(iv, r.Lo, true, MaxKey)
	if lowOK && lowPiece.Contains(firstKeyOf(iv)) {
		return lowPiece, true
	}
	if hiPiece, ok := clipSegment(iv, 0, false, r.Hi); ok {
		return hiPiece, true
	}
	return lowPiece, lowOK
}

// firstKeyOf returns the smallest key satisfying iv (assuming Valid).
func firstKeyOf(iv Interval) Key {
	if iv.LbOpen {
		return iv.Lb + 1
	}
	return iv.Lb
}

// clipSegment intersects iv with the linear segment whose lower bound is lo
// (exclusive when loOpen) and whose upper bound is hi (always inclusive,
// matching the (lo, hi] convention of peer ranges).
func clipSegment(iv Interval, lo Key, loOpen bool, hi Key) (Interval, bool) {
	out := iv
	if lo > out.Lb {
		out.Lb, out.LbOpen = lo, loOpen
	} else if lo == out.Lb && loOpen {
		out.LbOpen = true
	}
	if hi < out.Ub {
		out.Ub, out.UbOpen = hi, false
	}
	if !out.Valid() {
		return Interval{}, false
	}
	return out, true
}
