// Package datastore implements the Data Store component of the indexing
// framework (Section 2.2) in its P-Ring form (Section 2.3), extended with
// the paper's correctness primitives:
//
//   - items are assigned to peers by the order-preserving identity map M, so
//     a peer p stores exactly the items whose search key value falls in
//     p.range = (pred(p).val, p.val];
//   - storage balance is maintained with a storage factor sf: a peer
//     overflowing past 2·sf splits its range with a free peer, a peer
//     underflowing below sf redistributes with or merges into its successor
//     (Section 2.3);
//   - scanRange (Section 4.3.2, Algorithms 3–5) walks the ring under
//     hand-over-hand range read-locks, invoking a registered handler on
//     every peer whose range intersects the scan, and aborts whenever it
//     lands on a peer that no longer owns the continuation point — the
//     query layer retries, so results are never silently wrong
//     (Theorems 2 and 3);
//   - the naive unlocked scan of Section 6.2 is provided as the baseline; it
//     exhibits the missed-results anomaly of Section 4.2.2.
//
// Every item mutation is journaled to the shared history log so tests can
// check executions against Definitions 3 and 4.
package datastore

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/history"
	"repro/internal/keyspace"
	"repro/internal/metrics"
	"repro/internal/ring"
	"repro/internal/storage"
	"repro/internal/transport"
)

// Item is a (search key value, payload) pair stored in the index. The paper
// makes no distinction between items and pointers to items (Section 2.1).
type Item struct {
	Key     keyspace.Key
	Payload string
}

// Handler is a scan handler invoked at each peer the scan visits, with the
// items of this peer falling in the visited sub-interval (sorted by key),
// the sub-interval itself, and the scan parameter. The returned value
// replaces the parameter for downstream peers (Algorithm 4 line 3).
type Handler func(items []Item, piece keyspace.Interval, param any) any

// Replicator is the Data Store's view of the Replication Manager.
type Replicator interface {
	// ItemsChanged signals that local items changed and replicas should be
	// refreshed soon.
	ItemsChanged()
	// BeforeLeave pushes this peer's items and held replicas one additional
	// hop before a merge departure (Section 5.2).
	BeforeLeave(ctx context.Context) error
	// Revive returns locally held replicas whose keys fall in r, used when
	// this peer absorbs a failed predecessor's range.
	Revive(r keyspace.Range) []Item
	// PullRange fetches replicas in r from ring successors, used when this
	// peer was adopted as an orphan and holds nothing locally. The second
	// result is the highest ownership epoch any contacted holder had seen
	// advertised for r, so the adopter can claim the range above it.
	PullRange(ctx context.Context, r keyspace.Range) ([]Item, uint64)
	// MaxAdvertisedEpoch reports the highest ownership epoch this peer has
	// seen advertised (via replication pushes) for any range overlapping r;
	// 0 when none. Failure revival claims the revived range above it, so the
	// revived incarnation provably fences the one it replaces.
	MaxAdvertisedEpoch(r keyspace.Range) uint64
	// AdvertInfo reports the latest ownership advert received from the
	// origin at addr — its range, epoch, and the local time the advert
	// arrived (the origin's last observed lease renewal). ok is false when
	// no advert from addr was ever received. The lease-expiry check in the
	// maintenance loop reads it for this peer's ring predecessor.
	AdvertInfo(addr transport.Addr) (keyspace.Range, uint64, time.Time, bool)
}

// FreePool hands out free peers for splits and takes back merged peers
// (the P-Ring free-peer model, Section 2.3).
type FreePool interface {
	// Acquire reserves a free peer — fully constructed, registered on the
	// network and ready to receive a ring join — returning its address. The
	// error explains WHERE acquisition failed (the local pool, the gossiped
	// directory, a contacted remote pool) so a failed split in a smoke run
	// is attributable to a peer instead of a bare "no free peer".
	Acquire() (transport.Addr, error)
	// Release returns a peer to the free pool after it merged away.
	Release(addr transport.Addr)
}

// Config controls Data Store behaviour.
type Config struct {
	// StorageFactor is sf: each peer aims to hold between sf and 2·sf items
	// (paper default 5, Section 6.1).
	StorageFactor int
	// CheckPeriod is how often the balance maintenance loop wakes up in
	// addition to explicit triggers.
	CheckPeriod time.Duration
	// CallTimeout bounds scan lock acquisition and protocol RPCs.
	CallTimeout time.Duration
	// MaintenanceTimeout bounds one split/merge/redistribute execution.
	MaintenanceTimeout time.Duration
	// DisableMaintenance turns off automatic balancing (tests drive it).
	DisableMaintenance bool
	// LeaseDuration enables time-bound leases on range claims when positive.
	// A claim whose lease is not renewed within this duration (renewals ride
	// the owner's replication refresh — see replication.Manager.RefreshOnce)
	// is treated as orphaned: the owner's ring successor adopts the range at
	// a strictly higher epoch, bounding the stale-claim window that epochs
	// alone cannot close (a wedged-but-alive owner otherwise keeps its claim
	// until one of its own pushes happens to be deposed). Must be several
	// times the replication RefreshPeriod, or healthy owners expire between
	// renewals. Zero disables leases entirely: claims never expire and no
	// lease events are journaled — the pre-lease behaviour.
	LeaseDuration time.Duration

	// Optional recorders for the benchmark harness (Section 6 metrics); nil
	// recorders are skipped.
	InsertSuccRecorder *metrics.Recorder // duration of each ring insertSucc during splits (Figs. 19, 20, 23)
	LeaveRecorder      *metrics.Recorder // duration of each ring leave during merges (Fig. 22)
	MergeRecorder      *metrics.Recorder // duration of each full merge operation (Fig. 22)
}

func (c Config) withDefaults() Config {
	if c.StorageFactor <= 0 {
		c.StorageFactor = 5
	}
	if c.CheckPeriod <= 0 {
		c.CheckPeriod = 50 * time.Millisecond
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 50 * time.Millisecond
	}
	if c.MaintenanceTimeout <= 0 {
		c.MaintenanceTimeout = 5 * time.Second
	}
	return c
}

// RPC method names.
const (
	methodScan        = "ds.scan"
	methodScanSegment = "ds.scanSegment"
	methodScanAbort   = "ds.scanAbort"
	methodInsert      = "ds.insertItem"
	methodDelete      = "ds.deleteItem"
	methodLocalItems  = "ds.localItems"
	methodNaiveStep   = "ds.naiveStep"
	methodRebalance   = "ds.rebalance"
	methodMergeIn     = "ds.mergeIn"
)

// Errors surfaced by Data Store operations.
var (
	ErrNotOwner   = errors.New("datastore: peer does not own the key")
	ErrNoRange    = errors.New("datastore: peer has no assigned range")
	ErrLockBusy   = errors.New("datastore: range lock acquisition timed out")
	ErrNoSucc     = errors.New("datastore: no stabilized successor to forward to")
	ErrMaintBusy  = errors.New("datastore: maintenance already in progress")
	ErrNotInRing  = errors.New("datastore: peer is not serving a ring range")
	ErrWrongState = errors.New("datastore: unexpected rebalance state")
	// ErrStaleEpoch rejects a request stamped with an ownership epoch other
	// than the serving peer's current one: the requester's view of who owns
	// the range (or which incarnation of the owner) is stale. It is
	// registered as a wire error, so errors.Is recognizes it across the TCP
	// transport as well as in-process.
	ErrStaleEpoch = errors.New("datastore: stale ownership epoch")
)

// Store is one peer's Data Store.
type Store struct {
	cfg     Config
	net     transport.Transport
	ring    *ring.Peer
	log     *history.Log
	rep     Replicator
	pool    FreePool
	backend storage.Backend // write-ahead engine; never nil (Memory default)

	rangeLock RangeLock // guards range ownership during scans/maintenance

	mu       sync.Mutex // guards the fields below
	hasRange bool
	rng      keyspace.Range
	epoch    uint64 // ownership epoch of rng; bumped on every range change
	// leaseRenewedAt is the unix-nanosecond time of the current claim's last
	// lease renewal (grant time when never renewed); 0 when no claim is held
	// or leases are disabled. After a recovery it is restored from the WAL
	// (RestoreLeaseClock), never from the restart time.
	leaseRenewedAt int64
	items          map[keyspace.Key]Item

	handlersMu sync.Mutex
	handlers   map[string]Handler
	onAbort    func(param any)

	maintMu   sync.Mutex // serializes split/merge/redistribute on this peer
	maintKick chan struct{}
	lifeMu    sync.Mutex // guards started/stopped transitions vs wg
	started   bool
	stopped   bool
	stopCh    chan struct{}
	wg        sync.WaitGroup

	scanSeq atomic.Uint64

	// Counters for tests and benches.
	Splits        atomic.Uint64
	Merges        atomic.Uint64
	Redistributes atomic.Uint64
	ScanAborts    atomic.Uint64
	// StaleEpochRejects counts requests rejected with ErrStaleEpoch (or the
	// segment scan's StaleEpoch verdict): fencing doing its job.
	StaleEpochRejects atomic.Uint64
	// StepDowns counts depositions: this peer learned a higher-epoch owner
	// had claimed its range and resigned (see StepDown).
	StepDowns atomic.Uint64
	// LeaseAdoptions counts expired-lease adoptions performed by this peer:
	// its ring predecessor stopped renewing and this peer absorbed the
	// orphaned range at a strictly higher epoch (see checkPredLease).
	LeaseAdoptions atomic.Uint64
}

// New constructs a Data Store for one peer and registers its RPC handlers on
// the peer's mux. The replicator and free pool may be set later (SetDeps)
// since construction order is circular in practice.
func New(net transport.Transport, mux *transport.Mux, rp *ring.Peer, log *history.Log, cfg Config) *Store {
	s := &Store{
		cfg:       cfg.withDefaults(),
		net:       net,
		ring:      rp,
		log:       log,
		backend:   storage.NewMemory(),
		items:     make(map[keyspace.Key]Item),
		handlers:  make(map[string]Handler),
		maintKick: make(chan struct{}, 1),
		stopCh:    make(chan struct{}),
	}
	mux.Handle(methodScan, s.handleScan)
	mux.Handle(methodScanSegment, s.handleScanSegment)
	mux.Handle(methodScanAbort, s.handleScanAbort)
	mux.Handle(methodInsert, s.handleInsert)
	mux.Handle(methodDelete, s.handleDelete)
	mux.Handle(methodLocalItems, s.handleLocalItems)
	mux.Handle(methodNaiveStep, s.handleNaiveStep)
	mux.Handle(methodRebalance, s.handleRebalance)
	mux.Handle(methodMergeIn, s.handleMergeIn)
	return s
}

// SetDeps wires the replication manager and free pool.
func (s *Store) SetDeps(rep Replicator, pool FreePool) {
	s.rep = rep
	s.pool = pool
}

// SetBackend replaces the storage engine (default: a fresh storage.Memory).
// Must be called before the peer starts serving; the core assembly path
// calls it right after construction.
func (s *Store) SetBackend(b storage.Backend) {
	if b != nil {
		s.backend = b
	}
}

// Start launches the balance maintenance loop (idempotent; a no-op after
// Stop, so late joins cannot race a cluster shutdown).
func (s *Store) Start() {
	if s.cfg.DisableMaintenance {
		return
	}
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	if s.started || s.stopped {
		return
	}
	s.started = true
	s.wg.Add(1)
	go s.maintainLoop()
}

// signalStop requests loop termination without waiting (safe from the
// maintenance loop itself).
func (s *Store) signalStop() {
	s.lifeMu.Lock()
	if !s.stopped {
		s.stopped = true
		close(s.stopCh)
	}
	s.lifeMu.Unlock()
}

// Stop halts background work and waits for it.
func (s *Store) Stop() {
	s.signalStop()
	s.wg.Wait()
}

// Addr returns this peer's network address.
func (s *Store) Addr() transport.Addr { return s.ring.Self().Addr }

// RegisterHandler installs a scan handler under id.
func (s *Store) RegisterHandler(id string, h Handler) {
	s.handlersMu.Lock()
	defer s.handlersMu.Unlock()
	s.handlers[id] = h
}

// OnScanAbort installs the listener invoked at the scan origin when a scan
// aborts; param is the opaque parameter the scan was started with.
func (s *Store) OnScanAbort(fn func(param any)) {
	s.handlersMu.Lock()
	defer s.handlersMu.Unlock()
	s.onAbort = fn
}

func (s *Store) handler(id string) Handler {
	s.handlersMu.Lock()
	defer s.handlersMu.Unlock()
	return s.handlers[id]
}

// Range returns the peer's current responsibility range.
func (s *Store) Range() (keyspace.Range, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rng, s.hasRange
}

// RangeEpoch returns the peer's responsibility range together with its
// ownership epoch, read atomically: the pair is what routing layers cache
// and what fenced requests are validated against.
func (s *Store) RangeEpoch() (keyspace.Range, uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rng, s.epoch, s.hasRange
}

// Epoch returns the current ownership epoch (0 before the peer ever claimed
// a range, or after it stepped down).
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// claimLocked installs a new ownership incarnation — range plus bumped
// epoch — and journals the transition. Callers hold s.mu and must have
// computed epoch according to the fencing rule (strictly above every claim
// the new one overlaps).
func (s *Store) claimLocked(rng keyspace.Range, epoch uint64) {
	s.hasRange = true
	s.rng = rng
	s.epoch = epoch
	// Write-ahead before the history journal so the WAL order matches the
	// journal order. A claim's replay prunes items outside the claimed range
	// (that is how hand-offs move items away durably; see storage.RecClaim).
	// An append error here degrades durability, not serving: membership
	// protocols cannot abort halfway through a claim.
	_ = s.backend.Append(storage.Record{Kind: storage.RecClaim, Epoch: epoch, Lo: rng.Lo, Hi: rng.Hi})
	if s.log != nil {
		s.log.Claimed(string(s.ring.Self().Addr), rng, epoch)
	}
	if s.cfg.LeaseDuration > 0 {
		// Every leased claim starts with a fresh lease: grant time = claim
		// time. The RecLease append re-stamps the clock durably (the claim's
		// replay reset it) and the grant event pairs with the Claimed one in
		// the journal for the CheckLeases audit.
		now := time.Now().UnixNano()
		s.leaseRenewedAt = now
		_ = s.backend.Append(storage.Record{Kind: storage.RecLease, Epoch: epoch, Key: keyspace.Key(now)})
		if s.log != nil {
			s.log.LeaseGranted(string(s.ring.Self().Addr), rng, epoch)
		}
	}
}

// releaseLocked drops ownership durably: the write-ahead release clears the
// incarnation (and its items) on replay, so a restart after a step-down or
// merge-away recovers a free peer, not a resurrected claim. Callers hold
// s.mu and update the in-memory fields themselves — but must call this
// BEFORE zeroing s.rng/s.epoch, so the lease release is journaled against
// the incarnation actually being given up.
func (s *Store) releaseLocked() {
	_ = s.backend.Append(storage.Record{Kind: storage.RecRelease})
	if s.cfg.LeaseDuration > 0 {
		s.leaseRenewedAt = 0
		if s.log != nil {
			s.log.LeaseReleased(string(s.ring.Self().Addr), s.rng, s.epoch)
		}
	}
}

// walPutAllLocked write-ahead journals every current item under the current
// incarnation's epoch: the bulk-install sites (join hand-off, orphan
// adoption, merge absorption, revival) call it right after claimLocked so
// replay rebuilds the installed items. Callers hold s.mu.
func (s *Store) walPutAllLocked() {
	for _, it := range s.items {
		_ = s.backend.Append(storage.Record{Kind: storage.RecPut, Epoch: s.epoch, Key: it.Key, Payload: it.Payload})
	}
}

// ReclaimAbove re-claims this peer's current range at an epoch strictly
// above the given conflicting one, returning the resulting epoch (0 when the
// peer serves no range). It resolves an epoch collision the normal bump
// rule cannot order: a failure revival derives its fencing epoch from
// best-effort replication adverts, so a suspect whose latest bump never
// reached the revivor can survive at an epoch equal to (or above) the
// revived claim — two live incarnations the comparison alone cannot rank.
// The observer of the conflict (the revivor answering the suspect's push)
// re-claims above the conflicting epoch, restoring a strict order so the
// other side's StepDown guard accepts the deposition.
func (s *Store) ReclaimAbove(conflict uint64) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.hasRange {
		return 0
	}
	if s.epoch > conflict {
		return s.epoch // already strictly ahead (a concurrent bump won)
	}
	s.claimLocked(s.rng, conflict+1)
	return s.epoch
}

// --- Leases -----------------------------------------------------------------

// RenewLease advances the current claim's lease clock to now, journaling the
// renewal durably (WAL) and to the history log. The replication manager
// calls it from RefreshOnce after at least one successor acknowledged the
// refresh without deposing this peer — the renewal is evidence the owner is
// still observably serving, not a self-certification. No-op when leases are
// disabled or no range is held.
func (s *Store) RenewLease() {
	if s.cfg.LeaseDuration <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.hasRange {
		return
	}
	now := time.Now().UnixNano()
	s.leaseRenewedAt = now
	_ = s.backend.Append(storage.Record{Kind: storage.RecLease, Epoch: s.epoch, Key: keyspace.Key(now)})
	if s.log != nil {
		s.log.LeaseRenewed(string(s.ring.Self().Addr), s.rng, s.epoch)
	}
}

// RestoreLeaseClock installs the lease-renewal time a durable backend
// recovered (unix nanoseconds; see storage.State.LeaseRenewedAt). Called
// once after Recover, before the peer starts serving. The persisted value is
// used as-is — never the restart time — so a claim whose lease lapsed while
// the process was down comes back already expired and the peer's neighbors
// remain free to adopt: the conservative resumption a crash demands. A zero
// value (no renewal ever journaled) leaves the lease locally expired until
// the first successful refresh renews it.
func (s *Store) RestoreLeaseClock(renewedAt int64) {
	if s.cfg.LeaseDuration <= 0 || renewedAt == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.hasRange {
		return
	}
	s.leaseRenewedAt = renewedAt
	// Re-stamp into the new run's WAL (the recovery claim's replay zeroed
	// the shadow state's clock).
	_ = s.backend.Append(storage.Record{Kind: storage.RecLease, Epoch: s.epoch, Key: keyspace.Key(renewedAt)})
}

// LeaseInfo reports the lease state for operators (the ops probe): whether
// leases are enabled, the age of the current claim's lease (time since last
// renewal; 0 when no claim is held), and whether that lease is expired from
// this peer's own local view — the owner-side symptom of a wedged peer,
// visible before any neighbor acts on it.
func (s *Store) LeaseInfo() (enabled bool, age time.Duration, expired bool) {
	if s.cfg.LeaseDuration <= 0 {
		return false, 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.hasRange {
		return true, 0, false
	}
	if s.leaseRenewedAt == 0 {
		// Claimed but never durably renewed (a conservative recovery):
		// locally treated as expired until the first successful refresh.
		return true, 0, true
	}
	age = time.Duration(time.Now().UnixNano() - s.leaseRenewedAt)
	return true, age, age > s.cfg.LeaseDuration
}

// ObserveRemoteClaim feeds an ownership assertion learned out-of-band (the
// gossip directory) into the fencing machinery: a strictly higher-epoch
// claim overlapping this peer's range deposes it, exactly as a Deposed push
// reply would. This is how a wedged owner — whose own pushes no longer land
// anywhere, so the push-reply deposition path is closed to it — still
// converges after its range was adopted: the adoption's higher epoch reaches
// it through gossip and it steps down instead of serving a dead incarnation
// forever.
func (s *Store) ObserveRemoteClaim(rng keyspace.Range, epoch uint64) {
	s.mu.Lock()
	conflict := s.hasRange && s.rng.Overlaps(rng) && epoch > s.epoch
	s.mu.Unlock()
	if conflict {
		go s.StepDown(epoch)
	}
}

// LocalItems returns a sorted snapshot of the peer's items (getLocalItems).
func (s *Store) LocalItems() []Item {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sortedItemsLocked()
}

// ItemCount returns the number of locally stored items.
func (s *Store) ItemCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}

// sortedItemsLocked returns items sorted clockwise from the range start.
func (s *Store) sortedItemsLocked() []Item {
	out := make([]Item, 0, len(s.items))
	for _, it := range s.items {
		out = append(out, it)
	}
	lo := s.rng.Lo
	sort.Slice(out, func(i, j int) bool {
		return keyspace.Dist(lo, out[i].Key) < keyspace.Dist(lo, out[j].Key)
	})
	return out
}

// SetRangeForTesting overrides the peer's responsibility range. Only tests
// (including other packages' tests that need a hand-crafted layout) may use
// this; production range changes go through splits, merges, redistributions
// and failure revival. The epoch is left untouched (0 unless the test also
// calls SetEpochForTesting), so hand-built layouts serve unfenced.
func (s *Store) SetRangeForTesting(r keyspace.Range) {
	s.mu.Lock()
	s.hasRange = true
	s.rng = r
	s.mu.Unlock()
}

// SetEpochForTesting overrides the ownership epoch; tests use it to stage
// fencing scenarios without running the full membership protocols.
func (s *Store) SetEpochForTesting(epoch uint64) {
	s.mu.Lock()
	s.epoch = epoch
	s.mu.Unlock()
}

// InitFirstPeer assigns this peer the full key space at epoch 1; it must be
// the ring's first member (initFirstPeer in the appendix Data Store API).
// Idempotent: the ring's joined callback and the explicit bootstrap path
// both call it, and only the first claims (a duplicate claim at the same
// epoch would read as a fencing failure in the journal's epoch audit).
func (s *Store) InitFirstPeer() {
	self := s.ring.Self()
	s.mu.Lock()
	if !s.hasRange {
		s.claimLocked(keyspace.FullRange(self.Val), 1)
	}
	s.mu.Unlock()
}

// Recover re-enters the incarnation a durable backend recovered: the last
// claimed (range, epoch) and the items that survived in its WAL+snapshot.
// Unlike every other claim site the epoch is NOT bumped — a restart is the
// same incarnation resuming with provable identity, not a new one — and the
// claim plus every recovered item is journaled (as a recovery) in this
// process's fresh history log, so the Definition 4 and epoch audits treat
// the restart as a legal continuation rather than a phantom. If a successor
// revived the range while this peer was down, its higher-epoch claim wins
// the first push conflict and this peer steps down through the normal
// fencing path. No-op if the peer already serves a range.
func (s *Store) Recover(rng keyspace.Range, epoch uint64, items []Item) {
	self := string(s.ring.Self().Addr)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hasRange {
		return
	}
	s.hasRange = true
	s.rng = rng
	s.epoch = epoch
	// Re-stamp the recovered state into the new run's log (idempotent on
	// replay) so the log is self-contained from the recovery point onward.
	_ = s.backend.Append(storage.Record{Kind: storage.RecClaim, Epoch: epoch, Lo: rng.Lo, Hi: rng.Hi})
	if s.log != nil {
		s.log.RecoveredClaim(self, rng, epoch)
	}
	for _, it := range items {
		if !rng.Contains(it.Key) {
			continue
		}
		_ = s.backend.Append(storage.Record{Kind: storage.RecPut, Epoch: epoch, Key: it.Key, Payload: it.Payload})
		s.items[it.Key] = it
		if s.log != nil {
			s.log.Added(self, it.Key)
		}
	}
}

// owns reports whether key is in this peer's range.
func (s *Store) owns(key keyspace.Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hasRange && s.rng.Contains(key)
}

// kickMaintenance nudges the balance loop.
func (s *Store) kickMaintenance() {
	select {
	case s.maintKick <- struct{}{}:
	default:
	}
}

// --- Item operations -------------------------------------------------------

// Mutation requests carry the ownership epoch the requester believes current
// (from the owner-lookup cache); 0 means unfenced — the requester has no
// epoch information and relies on the owns-check alone. A non-zero epoch
// other than the serving peer's current one is rejected with ErrStaleEpoch:
// either the requester's route is stale (lower epoch — refetch), or the
// serving peer itself has been deposed by a higher incarnation the requester
// already knows about (higher epoch — this peer must not accept writes for a
// range it provably no longer owns).
type insertReq struct {
	Item  Item
	Epoch uint64
}
type deleteReq struct {
	Key   keyspace.Key
	Epoch uint64
}

// Mutation replies carry the serving peer's ownership metadata so a dial-side
// client can prime its route cache from every write, not just from lookups
// and scans (peers ignore the extra fields).
type insertResp struct{ OwnerMeta }
type deleteResp struct {
	Found bool
	OwnerMeta
}

// checkEpochLocked applies the fencing rule. Callers hold s.mu.
func (s *Store) checkEpochLocked(reqEpoch uint64) error {
	if reqEpoch != 0 && reqEpoch != s.epoch {
		s.StaleEpochRejects.Add(1)
		return fmt.Errorf("%w: request epoch %d, serving epoch %d", ErrStaleEpoch, reqEpoch, s.epoch)
	}
	return nil
}

// handleInsert stores an item this peer owns (the owner side of insertItem).
func (s *Store) handleInsert(_ transport.Addr, _ string, payload any) (any, error) {
	req, ok := payload.(insertReq)
	if !ok {
		return nil, fmt.Errorf("datastore: bad insert payload %T", payload)
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.CallTimeout)
	defer cancel()
	// The range read lock keeps the boundary stable while we decide
	// ownership; concurrent scans are fine (shared mode).
	if err := s.rangeLock.RLock(ctx); err != nil {
		return nil, ErrLockBusy
	}
	defer s.rangeLock.RUnlock()
	s.mu.Lock()
	if !s.hasRange || !s.rng.Contains(req.Item.Key) {
		s.mu.Unlock()
		return nil, ErrNotOwner
	}
	if err := s.checkEpochLocked(req.Epoch); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	// Write-ahead before the in-memory mutation, still inside the critical
	// section: a mutation the requester sees acknowledged is in the log (up
	// to the backend's sync-interval batching), and the WAL order matches
	// the journal order below. A refused append refuses the insert.
	if err := s.backend.Append(storage.Record{Kind: storage.RecPut, Epoch: s.epoch, Key: req.Item.Key, Payload: req.Item.Payload}); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.items[req.Item.Key] = req.Item
	// Journal before releasing s.mu: scan piece snapshots are taken under
	// s.mu, so journaling inside the critical section keeps the journal's
	// sequence order consistent with the order scans observe state. A
	// mutation journaled after the unlock could be sequenced after a query
	// that already saw its effect, and the Definition 4 checker would then
	// flag a phantom violation (the TestSoakMixedWorkload flake).
	if s.log != nil {
		s.log.Added(string(s.ring.Self().Addr), req.Item.Key)
	}
	meta := OwnerMeta{Range: s.rng, Epoch: s.epoch}
	s.mu.Unlock()
	meta.Chain = s.ring.Successors()
	if s.rep != nil {
		s.rep.ItemsChanged()
	}
	s.kickMaintenance()
	return insertResp{OwnerMeta: meta}, nil
}

// handleDelete removes an item this peer owns.
func (s *Store) handleDelete(_ transport.Addr, _ string, payload any) (any, error) {
	req, ok := payload.(deleteReq)
	if !ok {
		return nil, fmt.Errorf("datastore: bad delete payload %T", payload)
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.CallTimeout)
	defer cancel()
	if err := s.rangeLock.RLock(ctx); err != nil {
		return nil, ErrLockBusy
	}
	defer s.rangeLock.RUnlock()
	s.mu.Lock()
	if !s.hasRange || !s.rng.Contains(req.Key) {
		s.mu.Unlock()
		return nil, ErrNotOwner
	}
	if err := s.checkEpochLocked(req.Epoch); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	_, found := s.items[req.Key]
	if found {
		// Write-ahead, then mutate, then journal — see handleInsert.
		if err := s.backend.Append(storage.Record{Kind: storage.RecDelete, Epoch: s.epoch, Key: req.Key}); err != nil {
			s.mu.Unlock()
			return nil, err
		}
		delete(s.items, req.Key)
		// Journal under s.mu; see handleInsert for why.
		if s.log != nil {
			s.log.Removed(string(s.ring.Self().Addr), req.Key)
		}
	}
	meta := OwnerMeta{Range: s.rng, Epoch: s.epoch}
	s.mu.Unlock()
	meta.Chain = s.ring.Successors()
	if found {
		if s.rep != nil {
			s.rep.ItemsChanged()
		}
		s.kickMaintenance()
	}
	return deleteResp{Found: found, OwnerMeta: meta}, nil
}

// handleLocalItems returns this peer's items (getLocalItems over the wire).
func (s *Store) handleLocalItems(_ transport.Addr, _ string, _ any) (any, error) {
	return s.LocalItems(), nil
}

// InsertAt asks the peer at addr to store item, returning ErrNotOwner if it
// does not own the key (the caller re-routes). The request is unfenced; use
// InsertAtFenced when the believed ownership epoch is known.
func (s *Store) InsertAt(ctx context.Context, addr transport.Addr, item Item) error {
	return s.InsertAtFenced(ctx, addr, item, 0)
}

// InsertAtFenced is InsertAt with the request stamped with the ownership
// epoch the caller believes current (0 = unfenced). A mismatch fails with
// ErrStaleEpoch and the caller must refetch its route.
func (s *Store) InsertAtFenced(ctx context.Context, addr transport.Addr, item Item, epoch uint64) error {
	_, err := s.net.Call(ctx, s.Addr(), addr, methodInsert, insertReq{Item: item, Epoch: epoch})
	return err
}

// DeleteAt asks the peer at addr to delete key (unfenced; see DeleteAtFenced).
func (s *Store) DeleteAt(ctx context.Context, addr transport.Addr, key keyspace.Key) (bool, error) {
	return s.DeleteAtFenced(ctx, addr, key, 0)
}

// DeleteAtFenced is DeleteAt stamped with the believed ownership epoch.
func (s *Store) DeleteAtFenced(ctx context.Context, addr transport.Addr, key keyspace.Key, epoch uint64) (bool, error) {
	resp, err := s.net.Call(ctx, s.Addr(), addr, methodDelete, deleteReq{Key: key, Epoch: epoch})
	if err != nil {
		return false, err
	}
	dr, ok := resp.(deleteResp)
	if !ok {
		return false, fmt.Errorf("datastore: bad delete response %T", resp)
	}
	return dr.Found, nil
}

// --- scanRange --------------------------------------------------------------
//
// The hand-over-hand scan below is the paper's protocol verbatim (Section
// 4.3.2, Algorithms 3–5) and the reference implementation its correctness
// theorems are stated against; the datastore test suite exercises it
// directly. The production query path in package core uses the pipelined
// segment scan further down (handleScanSegment), which trades the continuous
// lock chain for per-segment validation plus an origin-side cover check —
// see the "Read path" section of ARCHITECTURE.md for the argument.

// scanMsg drives one scan along the ring.
type scanMsg struct {
	ID        uint64
	Origin    transport.Addr
	Iv        keyspace.Interval
	Cursor    keyspace.Key // first key not yet covered
	HandlerID string
	Param     any
	Hops      int
}

type abortMsg struct {
	ID     uint64
	Param  any
	Reason string
}

// StartScan initiates a scanRange at the remote peer that owns the interval's
// lower bound (located by the caller). It returns once the first peer has
// accepted the scan; progress flows peer to peer, results flow through the
// registered handler, and aborts arrive at the OnScanAbort listener.
func (s *Store) StartScan(ctx context.Context, firstPeer transport.Addr, iv keyspace.Interval, handlerID string, param any) error {
	if !iv.Valid() {
		return fmt.Errorf("datastore: empty scan interval %v", iv)
	}
	msg := scanMsg{
		ID:        s.scanSeq.Add(1),
		Origin:    s.Addr(),
		Iv:        iv,
		Cursor:    firstKey(iv),
		HandlerID: handlerID,
		Param:     param,
	}
	_, err := s.net.Call(ctx, s.Addr(), firstPeer, methodScan, msg)
	return err
}

// handleScan is processScan (Algorithm 5): acquire the range read lock,
// validate the continuation point, then run the handler and forwarding
// asynchronously so the predecessor can release its own lock.
func (s *Store) handleScan(_ transport.Addr, _ string, payload any) (any, error) {
	msg, ok := payload.(scanMsg)
	if !ok {
		return nil, fmt.Errorf("datastore: bad scan payload %T", payload)
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.CallTimeout)
	defer cancel()
	if err := s.rangeLock.RLock(ctx); err != nil {
		s.ScanAborts.Add(1)
		return nil, ErrLockBusy
	}
	s.mu.Lock()
	owns := s.hasRange && s.rng.Contains(msg.Cursor)
	s.mu.Unlock()
	if !owns {
		s.rangeLock.RUnlock()
		s.ScanAborts.Add(1)
		return nil, ErrNotOwner
	}
	// Lock is held; continue asynchronously (the predecessor may now release
	// its own lock) and release inside.
	go s.runScanStep(msg)
	return true, nil
}

// runScanStep executes the handler for this peer's piece of the scan and
// forwards the scan to the successor if the interval extends past our range.
// The caller has acquired the range read lock; runScanStep releases it.
func (s *Store) runScanStep(msg scanMsg) {
	defer s.rangeLock.RUnlock()

	s.mu.Lock()
	rng := s.rng
	// The piece served here is the contiguous segment we own starting at the
	// cursor: up to the interval's end, or up to rng.Hi when the cursor sits
	// in a segment bounded by it. A wrapped range (lo > hi) owns two linear
	// segments — (lo, MaxKey] and [0, hi] — and only the one holding the
	// cursor may be served now; the scan revisits this peer for the other
	// segment if the interval reaches it.
	pieceEnd, finished := contiguousEnd(rng, msg.Cursor, lastKey(msg.Iv))
	piece := keyspace.Interval{Lb: msg.Cursor, Ub: pieceEnd}
	var pieceItems []Item
	for k, it := range s.items {
		if piece.Contains(k) {
			pieceItems = append(pieceItems, it)
		}
	}
	s.mu.Unlock()
	sort.Slice(pieceItems, func(i, j int) bool { return pieceItems[i].Key < pieceItems[j].Key })

	newParam := msg.Param
	if h := s.handler(msg.HandlerID); h != nil {
		newParam = h(pieceItems, piece, msg.Param)
	}
	if finished {
		return
	}

	// Forward to the successor (Algorithm 4 lines 4–8) while still holding
	// our lock: the forward call returns only after the successor holds its
	// own lock, guaranteeing no range change slips between us.
	next := msg
	next.Cursor = pieceEnd + 1
	next.Param = newParam
	next.Hops++
	if err := s.forwardScan(next); err != nil {
		s.ScanAborts.Add(1)
		s.net.Send(s.Addr(), msg.Origin, methodScanAbort, abortMsg{ID: msg.ID, Param: msg.Param, Reason: err.Error()})
	}
}

// forwardScan delivers the scan to our first stabilized successor, retrying
// briefly while stabilization catches up after a membership change.
func (s *Store) forwardScan(msg scanMsg) error {
	deadline := time.Now().Add(4 * s.cfg.CallTimeout)
	var lastErr error = ErrNoSucc
	for time.Now().Before(deadline) {
		succ, ok := s.ring.FirstStabilizedSuccessor()
		if !ok {
			time.Sleep(s.cfg.CallTimeout / 8)
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*s.cfg.CallTimeout)
		_, err := s.net.Call(ctx, s.Addr(), succ.Addr, methodScan, msg)
		cancel()
		if err == nil {
			return nil
		}
		lastErr = err
		if errors.Is(err, transport.ErrUnreachable) {
			// Successor failed or departed; wait for the ring to heal.
			time.Sleep(s.cfg.CallTimeout / 8)
			continue
		}
		return err
	}
	return lastErr
}

// handleScanAbort runs at the scan origin.
func (s *Store) handleScanAbort(_ transport.Addr, _ string, payload any) (any, error) {
	msg, ok := payload.(abortMsg)
	if !ok {
		return nil, fmt.Errorf("datastore: bad abort payload %T", payload)
	}
	s.handlersMu.Lock()
	fn := s.onAbort
	s.handlersMu.Unlock()
	if fn != nil {
		fn(msg.Param)
	}
	return true, nil
}

// --- Pipelined segment scan (read path) -------------------------------------

// segmentReq asks the peer owning Cursor for its contiguous piece of the
// query interval: one origin-driven step of the pipelined scan. Unlike the
// hand-over-hand scanMsg, the origin drives every step itself and keeps
// several segments in flight; correctness still rests on the same rule as
// Algorithm 5 — the target validates that it owns the continuation point
// under its range read lock, so a stale route hint is rejected here instead
// of producing a wrong piece.
type segmentReq struct {
	Iv     keyspace.Interval
	Cursor keyspace.Key
	// Epoch is the ownership epoch the origin believes current for the
	// cursor's owner (from its route cache); 0 = unfenced. A mismatch is
	// answered with StaleEpoch instead of a wrong-incarnation piece.
	Epoch uint64
}

// SegmentResult is one served piece plus the metadata the origin needs to
// keep its pipeline full: the serving peer's responsibility range (for the
// owner-lookup cache) and its successor chain — the owners of the following
// segments, which double as the replica candidates for this peer's items
// (replicas live on a range's ring successors).
type SegmentResult struct {
	NotOwner   bool              // cursor not in this peer's range; nothing served
	StaleEpoch bool              // request epoch does not match the serving epoch; nothing served
	Piece      keyspace.Interval // the contiguous sub-interval served, starting at the cursor
	Items      []Item            // this peer's items in Piece, sorted by key
	Done       bool              // Piece reaches the interval's end
	Range      keyspace.Range    // the serving peer's responsibility range
	Epoch      uint64            // ownership epoch of Range at serve time
	Chain      []ring.Node       // the serving peer's ring successors
}

// handleScanSegment serves one piece of a pipelined scan. The piece is
// assembled atomically under the range read lock — ownership of the cursor
// is validated and the items snapshotted before any boundary can move — so
// every piece is internally consistent and the origin's cover check
// (Definition 6) composes them into a correct result.
func (s *Store) handleScanSegment(_ transport.Addr, _ string, payload any) (any, error) {
	req, ok := payload.(segmentReq)
	if !ok {
		return nil, fmt.Errorf("datastore: bad segment payload %T", payload)
	}
	if !req.Iv.Valid() || !req.Iv.Contains(req.Cursor) {
		return nil, fmt.Errorf("datastore: bad segment cursor %d for %v", req.Cursor, req.Iv)
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.CallTimeout)
	defer cancel()
	if err := s.rangeLock.RLock(ctx); err != nil {
		s.ScanAborts.Add(1)
		return nil, ErrLockBusy
	}
	s.mu.Lock()
	if !s.hasRange || !s.rng.Contains(req.Cursor) {
		s.mu.Unlock()
		s.rangeLock.RUnlock()
		s.ScanAborts.Add(1)
		return SegmentResult{NotOwner: true}, nil
	}
	if req.Epoch != 0 && req.Epoch != s.epoch {
		epoch := s.epoch
		s.mu.Unlock()
		s.rangeLock.RUnlock()
		s.StaleEpochRejects.Add(1)
		return SegmentResult{StaleEpoch: true, Epoch: epoch}, nil
	}
	rng := s.rng
	epoch := s.epoch
	pieceEnd, done := contiguousEnd(rng, req.Cursor, lastKey(req.Iv))
	piece := keyspace.Interval{Lb: req.Cursor, Ub: pieceEnd}
	var pieceItems []Item
	for k, it := range s.items {
		if piece.Contains(k) {
			pieceItems = append(pieceItems, it)
		}
	}
	s.mu.Unlock()
	s.rangeLock.RUnlock()
	sort.Slice(pieceItems, func(i, j int) bool { return pieceItems[i].Key < pieceItems[j].Key })
	return SegmentResult{
		Piece: piece,
		Items: pieceItems,
		Done:  done,
		Range: rng,
		Epoch: epoch,
		Chain: s.ring.Successors(),
	}, nil
}

// SegmentPending is the future of one in-flight segment scan.
type SegmentPending struct{ p *transport.Pending }

// Result blocks for the segment's outcome.
func (sp *SegmentPending) Result() (SegmentResult, error) {
	resp, err := sp.p.Result()
	if err != nil {
		return SegmentResult{}, err
	}
	res, ok := resp.(SegmentResult)
	if !ok {
		return SegmentResult{}, fmt.Errorf("datastore: bad segment response %T", resp)
	}
	return res, nil
}

// ScanSegmentAsync asks the peer at addr for its piece of iv starting at
// cursor, without blocking: the read path keeps several of these in flight.
// epoch stamps the request with the believed ownership epoch (0 = unfenced).
// Responses are unbounded on every transport (they chunk when oversized), so
// a large piece streams back without caller involvement.
func (s *Store) ScanSegmentAsync(ctx context.Context, addr transport.Addr, iv keyspace.Interval, cursor keyspace.Key, epoch uint64) *SegmentPending {
	return &SegmentPending{p: transport.CallAsync(s.net, ctx, s.Addr(), addr, methodScanSegment, segmentReq{Iv: iv, Cursor: cursor, Epoch: epoch})}
}

// --- Naive application-level scan (Section 6.2 baseline) -------------------

// naiveStepReq asks a peer for its items in the interval plus its view of
// where to go next — no locks and no continuation validation anywhere,
// exactly the application-level scan the paper compares against. The cursor
// only tracks walk progress for termination; it is deliberately NOT checked
// against the peer's range, which is what lets this baseline miss items
// (Section 4.2.2).
type naiveStepReq struct {
	Iv     keyspace.Interval
	Cursor keyspace.Key
}

type naiveStepResp struct {
	Items      []Item
	HasRange   bool
	Covered    bool // this peer's contiguous segment reaches the interval's end
	NextCursor keyspace.Key
	Succ       ring.Node
	HasSucc    bool
}

func (s *Store) handleNaiveStep(_ transport.Addr, _ string, payload any) (any, error) {
	req, ok := payload.(naiveStepReq)
	if !ok {
		return nil, fmt.Errorf("datastore: bad naive step payload %T", payload)
	}
	resp := naiveStepResp{NextCursor: req.Cursor}
	s.mu.Lock()
	resp.HasRange = s.hasRange
	if s.hasRange {
		for k, it := range s.items {
			if req.Iv.Contains(k) {
				resp.Items = append(resp.Items, it)
			}
		}
		if s.rng.Contains(req.Cursor) {
			end, covered := contiguousEnd(s.rng, req.Cursor, lastKey(req.Iv))
			resp.Covered = covered
			if !covered {
				resp.NextCursor = end + 1
			}
		}
	}
	s.mu.Unlock()
	if succ, ok := s.ring.FirstStabilizedSuccessor(); ok {
		resp.Succ, resp.HasSucc = succ, true
	} else if succs := s.ring.Successors(); len(succs) > 0 {
		resp.Succ, resp.HasSucc = succs[0], true
	}
	sort.Slice(resp.Items, func(i, j int) bool { return resp.Items[i].Key < resp.Items[j].Key })
	return resp, nil
}

// NaiveScan walks the ring collecting items in iv starting from firstPeer,
// with no locking or continuation validation: the Section 4.2 baseline that
// can miss live items during concurrent maintenance.
func (s *Store) NaiveScan(ctx context.Context, firstPeer transport.Addr, iv keyspace.Interval, maxHops int) ([]Item, int, error) {
	var out []Item
	cur := firstPeer
	cursor := firstKey(iv)
	hops := 0
	for {
		resp, err := s.net.Call(ctx, s.Addr(), cur, methodNaiveStep, naiveStepReq{Iv: iv, Cursor: cursor})
		if err != nil {
			return out, hops, err
		}
		step, ok := resp.(naiveStepResp)
		if !ok {
			return out, hops, fmt.Errorf("datastore: bad naive step response %T", resp)
		}
		out = append(out, step.Items...)
		if step.Covered {
			return out, hops, nil
		}
		cursor = step.NextCursor
		if !step.HasSucc {
			return out, hops, ErrNoSucc
		}
		cur = step.Succ.Addr
		hops++
		if hops > maxHops {
			return out, hops, fmt.Errorf("datastore: naive scan exceeded %d hops", maxHops)
		}
	}
}

// contiguousEnd is keyspace.Range.ContiguousEnd, kept as a local name for
// the scan call sites.
func contiguousEnd(rng keyspace.Range, cursor, last keyspace.Key) (keyspace.Key, bool) {
	return rng.ContiguousEnd(cursor, last)
}

// firstKey returns the smallest key satisfying iv (which must be valid).
func firstKey(iv keyspace.Interval) keyspace.Key {
	if iv.LbOpen {
		return iv.Lb + 1
	}
	return iv.Lb
}

// lastKey returns the largest key satisfying iv.
func lastKey(iv keyspace.Interval) keyspace.Key {
	if iv.UbOpen {
		return iv.Ub - 1
	}
	return iv.Ub
}
