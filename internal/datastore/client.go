package datastore

import (
	"context"
	"fmt"

	"repro/internal/keyspace"
	"repro/internal/ring"
	"repro/internal/transport"
)

// Dial-side entry points: the Data Store's fenced item operations, issued by
// a bare transport endpoint that is NOT a peer — a smart client outside the
// cluster (internal/client). A Store method like InsertAtFenced sends from
// the peer's own ring address; these package-level functions take the sender
// address explicitly, so anything that can dial the transport can reach the
// same validated, epoch-fenced handlers a peer does. The serving side cannot
// tell the difference — ownership is validated and epochs are checked at the
// target either way, which is exactly what makes client-held routing state
// safe to trust as a hint.

// OwnerMeta is the ownership fact a mutation reply carries back to its
// sender: the serving peer's responsibility range, its ownership epoch at
// serve time, and its ring successors (where its replicas live). Clients
// prime their route caches from it, so the first write to a region makes the
// next operation there a single validated hop.
type OwnerMeta struct {
	Range keyspace.Range
	Epoch uint64
	Chain []ring.Node
}

// ChainAddrs projects the successor chain to its addresses (the replica
// candidates a route cache stores).
func (m OwnerMeta) ChainAddrs() []transport.Addr {
	if m.Chain == nil {
		return nil
	}
	out := make([]transport.Addr, 0, len(m.Chain))
	for _, n := range m.Chain {
		if !n.IsZero() {
			out = append(out, n.Addr)
		}
	}
	return out
}

// ClientInsert asks the peer at owner to store item, stamped with the
// ownership epoch the caller believes current (0 = unfenced). It returns the
// owner's metadata on success; ErrNotOwner and ErrStaleEpoch keep their
// errors.Is identity across the TCP transport, so the caller can distinguish
// "re-resolve the route" from transient failures.
func ClientInsert(ctx context.Context, net transport.Transport, from, owner transport.Addr, item Item, epoch uint64) (OwnerMeta, error) {
	resp, err := net.Call(ctx, from, owner, methodInsert, insertReq{Item: item, Epoch: epoch})
	if err != nil {
		return OwnerMeta{}, err
	}
	ir, ok := resp.(insertResp)
	if !ok {
		return OwnerMeta{}, fmt.Errorf("datastore: bad insert response %T", resp)
	}
	return ir.OwnerMeta, nil
}

// ClientDelete asks the peer at owner to delete key, stamped with the
// believed ownership epoch. It reports whether the key existed, plus the
// owner's metadata.
func ClientDelete(ctx context.Context, net transport.Transport, from, owner transport.Addr, key keyspace.Key, epoch uint64) (bool, OwnerMeta, error) {
	resp, err := net.Call(ctx, from, owner, methodDelete, deleteReq{Key: key, Epoch: epoch})
	if err != nil {
		return false, OwnerMeta{}, err
	}
	dr, ok := resp.(deleteResp)
	if !ok {
		return false, OwnerMeta{}, fmt.Errorf("datastore: bad delete response %T", resp)
	}
	return dr.Found, dr.OwnerMeta, nil
}

// ClientScanSegmentAsync asks the peer at owner for its piece of iv starting
// at cursor, without blocking — the client-side pipelined scan keeps several
// of these in flight over the pooled connections. epoch stamps the request
// with the believed ownership epoch (0 = unfenced); the target validates
// cursor ownership under its range read lock exactly as for a peer-issued
// scan.
func ClientScanSegmentAsync(ctx context.Context, net transport.Transport, from, owner transport.Addr, iv keyspace.Interval, cursor keyspace.Key, epoch uint64) *SegmentPending {
	return &SegmentPending{p: transport.CallAsync(net, ctx, from, owner, methodScanSegment, segmentReq{Iv: iv, Cursor: cursor, Epoch: epoch})}
}
