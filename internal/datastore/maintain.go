package datastore

import (
	"context"
	"fmt"
	"time"

	"repro/internal/keyspace"
	"repro/internal/ring"
	"repro/internal/storage"
	"repro/internal/transport"
)

// joinData is the payload carried by the ring's INSERT/INSERTED events
// during a split: the carved-off range and items for the new peer, plus the
// ownership epoch the new peer claims it at (strictly above the splitter's
// pre-split epoch, so the hand-off fences the old incarnation). Ok
// distinguishes a real hand-off from a failed carve (a zero Range would
// otherwise read as the full ring).
type joinData struct {
	Ok    bool
	Range keyspace.Range
	Epoch uint64
	Items []Item
}

// maintainLoop watches storage balance (overflow > 2·sf, underflow < sf) and
// runs splits, merges and redistributions (Section 2.3).
func (s *Store) maintainLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.CheckPeriod)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-t.C:
		case <-s.maintKick:
		}
		s.checkPredLease()
		s.CheckBalance()
	}
}

// checkPredLease is the lease-expiry adoption check, run on every
// maintenance wakeup when leases are enabled: if this peer's ring
// predecessor — whose range is adjacent below ours — has not renewed its
// lease within LeaseDuration (its replication pushes carry the renewals; see
// Replicator.AdvertInfo), its range is orphaned and this peer adopts it at a
// strictly higher epoch, exactly as failure revival would. Unlike the
// suspicion-driven revival in OnPredChanged, this path needs no failure
// verdict from the ring: a wedged-but-alive owner that keeps answering pings
// but cannot land a replication push stops renewing, and the lease bounds
// how long its stale claim can linger.
//
// Exactly-once: the adjacency guard (the advert's Hi must equal our Lo)
// breaks as soon as the adoption extends our range down, so a second pass —
// or a concurrent racer serialized behind maintMu/rangeLock — finds no
// adjacent lapsed advert and does nothing. A predecessor that never pushed
// to us has no advert and cannot be adopted from here; its own successor is
// us, so in a stabilized ring the advert exists after one refresh.
func (s *Store) checkPredLease() {
	if s.cfg.LeaseDuration <= 0 || s.rep == nil || s.ring.State() != ring.StateJoined {
		return
	}
	pred := s.ring.Pred()
	self := s.ring.Self()
	if pred.Addr == "" || pred.Addr == self.Addr {
		return
	}
	s.mu.Lock()
	hasRange, lo := s.hasRange, s.rng.Lo
	s.mu.Unlock()
	if !hasRange {
		return
	}
	adv, advEpoch, renewedAt, ok := s.rep.AdvertInfo(pred.Addr)
	if !ok || adv.Hi != lo {
		return // no evidence, or not (any longer) adjacent below us
	}
	if renewedAt.IsZero() || time.Since(renewedAt) <= s.cfg.LeaseDuration {
		return // lease still current
	}
	if !s.maintMu.TryLock() {
		return // mid-split/merge; retry on the next wakeup
	}
	defer s.maintMu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.MaintenanceTimeout)
	defer cancel()
	if err := s.rangeLock.Lock(ctx); err != nil {
		return
	}
	// The adopted incarnation must fence both the lapsed holder's last
	// advertised epoch and anything else ever advertised over the region.
	fence := advEpoch
	if m := s.rep.MaxAdvertisedEpoch(adv); m > fence {
		fence = m
	}
	s.mu.Lock()
	// Re-validate adjacency under the lock: a racing hand-off may have moved
	// our boundary since the check above.
	if !s.hasRange || adv.Hi != s.rng.Lo {
		s.mu.Unlock()
		s.rangeLock.Unlock()
		return
	}
	epoch := s.epoch
	if fence > epoch {
		epoch = fence
	}
	if s.log != nil {
		// Journal the expiry BEFORE the overlapping claim lands, so the
		// lease audit sees the holder's lease voided first.
		s.log.LeaseExpired(string(pred.Addr), string(self.Addr), adv, advEpoch)
	}
	s.claimLocked(s.rng.ExtendDown(adv.Lo), epoch+1)
	s.mu.Unlock()
	s.rangeLock.Unlock()
	s.LeaseAdoptions.Add(1)

	// Revive the adopted region from held replicas (we are the lapsed
	// owner's first successor, so we hold its pushes' replicas).
	items := s.rep.Revive(adv)
	s.adoptRevived(adv, items)
}

// CheckBalance runs one balancing decision; exported so tests and the bench
// harness can drive maintenance deterministically.
func (s *Store) CheckBalance() {
	if s.ring.State() != ring.StateJoined {
		return
	}
	s.mu.Lock()
	if !s.hasRange {
		s.mu.Unlock()
		return
	}
	n := len(s.items)
	full := s.rng.IsFull()
	s.mu.Unlock()

	sf := s.cfg.StorageFactor
	switch {
	case n > 2*sf:
		if err := s.split(); err != nil {
			// No free peer or ring busy; try again on the next wakeup.
			return
		}
	case n < sf && !full:
		_ = s.underflow()
	}
}

// split carves the upper half of this peer's range off to a free peer: the
// splitting peer lowers its own ring value to the split point and inserts
// the free peer — carrying the old value and the upper half of the items —
// as its immediate successor via the PEPPER insertSucc protocol
// (Sections 2.3 and 4.3.1).
func (s *Store) split() error {
	if !s.maintMu.TryLock() {
		return ErrMaintBusy
	}
	defer s.maintMu.Unlock()
	if s.pool == nil {
		return fmt.Errorf("datastore: no free pool configured")
	}

	s.mu.Lock()
	if !s.hasRange || len(s.items) < 2 {
		s.mu.Unlock()
		return nil
	}
	sorted := s.sortedItemsLocked()
	oldHi := s.rng.Hi
	s.mu.Unlock()

	// Split point: the key of the median item; this peer keeps the lower
	// half (lo, m], the new peer takes (m, oldHi]. If the median item sits
	// exactly on the boundary (keys are unique, so at most one does), step
	// one item down.
	mid := (len(sorted) - 1) / 2
	m := sorted[mid].Key
	if m == oldHi {
		if mid == 0 {
			return nil
		}
		m = sorted[mid-1].Key
	}

	addr, err := s.pool.Acquire()
	if err != nil {
		return fmt.Errorf("datastore: no free peer available: %w", err)
	}
	newNode := ring.Node{Addr: addr, Val: oldHi}

	// Lower our own ring value to the split point, then run the insert; the
	// actual data hand-off happens in PrepareJoinData once the PEPPER ack
	// arrives, so we keep serving the full range until then.
	s.ring.SetVal(m)
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.MaintenanceTimeout)
	defer cancel()
	start := time.Now()
	if err := s.ring.InsertSucc(ctx, newNode); err != nil {
		s.ring.SetVal(oldHi)
		s.pool.Release(newNode.Addr)
		return fmt.Errorf("datastore: split insert failed: %w", err)
	}
	if s.cfg.InsertSuccRecorder != nil {
		s.cfg.InsertSuccRecorder.Observe(time.Since(start))
	}
	s.Splits.Add(1)
	return nil
}

// PrepareJoinData is the ring INSERT event (Algorithm 10): carve the upper
// half of the range and items for the joining peer, under the range write
// lock so no scan is in flight across the moving boundary.
func (s *Store) PrepareJoinData(joining ring.Node) any {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.MaintenanceTimeout)
	defer cancel()
	if err := s.rangeLock.Lock(ctx); err != nil {
		// Hand over an empty payload; the joining peer will abort scans and
		// the balance loop will rebalance later. This should effectively not
		// happen: scans release locks quickly.
		return joinData{}
	}
	defer s.rangeLock.Unlock()

	self := s.ring.Self() // value already lowered to the split point m
	s.mu.Lock()
	if !s.hasRange {
		s.mu.Unlock()
		return joinData{}
	}
	low, high, ok := s.rng.SplitAt(self.Val)
	if !ok {
		s.mu.Unlock()
		return joinData{}
	}
	// Both halves are new ownership incarnations at epoch+1: each strictly
	// supersedes the pre-split claim over the keys it keeps, so requests
	// fenced with the old epoch fail fast instead of racing the boundary.
	newEpoch := s.epoch + 1
	var moved []Item
	for k, it := range s.items {
		if high.Contains(k) {
			moved = append(moved, it)
			delete(s.items, k)
			if s.log != nil {
				s.log.Moved(string(self.Addr), string(joining.Addr), it.Key)
			}
		}
	}
	s.claimLocked(low, newEpoch)
	s.mu.Unlock()

	if s.rep != nil {
		s.rep.ItemsChanged()
	}
	return joinData{Ok: true, Range: high, Epoch: newEpoch, Items: moved}
}

// OnJoined is the ring INSERTED event at the joining peer: install the
// received range and items and begin serving. A nil payload means this peer
// was adopted as an orphan after its inserter failed; it reconstructs its
// state from the predecessor value and pulls replicas from its successors.
func (s *Store) OnJoined(self ring.Node, pred ring.Node, data any) {
	if jd, ok := data.(joinData); ok && jd.Ok {
		s.mu.Lock()
		s.claimLocked(jd.Range, jd.Epoch)
		for _, it := range jd.Items {
			s.items[it.Key] = it
		}
		// Write-ahead the installed hand-off under the claimed epoch so a
		// crash right after the join recovers the received items.
		s.walPutAllLocked()
		s.mu.Unlock()
		if s.rep != nil && len(jd.Items) > 0 {
			s.rep.ItemsChanged()
		}
		s.Start()
		return
	}
	if data == nil && pred.Addr != "" && pred.Addr != self.Addr {
		// Orphan adoption: we own (pred.val, self.val] but hold nothing.
		// Revive the range from our successors' replica stores. The epoch
		// stays 0 (unfenced) until the pull reports the highest epoch any
		// replica holder saw advertised for the range; only then can we
		// claim an incarnation that provably supersedes the lost one.
		r := keyspace.NewRange(pred.Val, self.Val)
		s.mu.Lock()
		s.hasRange = true
		s.rng = r
		s.mu.Unlock()
		if s.rep != nil {
			go func() {
				ctx, cancel := context.WithTimeout(context.Background(), s.cfg.MaintenanceTimeout)
				defer cancel()
				items, maxAdv := s.rep.PullRange(ctx, r)
				s.mu.Lock()
				if s.hasRange && s.rng == r && s.epoch == 0 {
					s.claimLocked(r, maxAdv+1)
				}
				s.mu.Unlock()
				s.adoptRevived(r, items)
			}()
		}
		s.Start()
		return
	}
	// First peer of the ring.
	if pred.Addr == self.Addr {
		s.InitFirstPeer()
		s.Start()
	}
}

// adoptRevived inserts revived items that fall into the given range and are
// still owned by this peer.
func (s *Store) adoptRevived(r keyspace.Range, items []Item) {
	if len(items) == 0 {
		return
	}
	var added []keyspace.Key
	s.mu.Lock()
	self := string(s.ring.Self().Addr)
	for _, it := range items {
		if !s.hasRange || !s.rng.Contains(it.Key) || !r.Contains(it.Key) {
			continue
		}
		if _, dup := s.items[it.Key]; dup {
			continue
		}
		s.items[it.Key] = it
		added = append(added, it.Key)
		_ = s.backend.Append(storage.Record{Kind: storage.RecPut, Epoch: s.epoch, Key: it.Key, Payload: it.Payload})
		// Journal under s.mu so the journal order matches the order scans
		// observe state (see handleInsert).
		if s.log != nil {
			s.log.Added(self, it.Key)
		}
	}
	s.mu.Unlock()
	if s.rep != nil && len(added) > 0 {
		s.rep.ItemsChanged()
	}
	s.kickMaintenance()
}

// OnPredChanged is raised by the ring when stabilization accepts a new
// predecessor. When the previous predecessor failed, this peer absorbs the
// failed peer's range — growing downward to the new predecessor's value —
// and revives the lost items from its local replica store (the failure
// recovery of Section 2.3's Replication Manager, Figure 9's correct flow).
func (s *Store) OnPredChanged(newPred, prev ring.Node, predFailed bool) {
	if !predFailed {
		return
	}
	s.mu.Lock()
	// Only a genuine downward growth triggers revival: the new predecessor's
	// value must lie strictly behind our current lower bound. Equal values
	// (a split handover racing a spurious failure verdict) and values inside
	// our range (stale contacts) change nothing — and the (lo, lo) range in
	// particular would read as the full ring.
	if !s.hasRange || newPred.Val == s.rng.Lo || !keyspace.Between(s.rng.Lo, newPred.Val, s.rng.Hi) {
		s.mu.Unlock()
		return
	}
	revive := keyspace.NewRange(newPred.Val, s.rng.Lo)
	s.mu.Unlock()

	// Fence the incarnation we replace: the revived claim's epoch must
	// strictly exceed both our own and anything the failed predecessor ever
	// advertised for the revived region (its replication pushes carried its
	// epoch). If the failure verdict was a false positive — the predecessor
	// is alive and still serving — this is what deposes it: its next push
	// meets a higher-epoch claim and it steps down instead of splitting the
	// range's history in two (the dual-claim window).
	var adv uint64
	if s.rep != nil {
		adv = s.rep.MaxAdvertisedEpoch(revive)
	}

	s.mu.Lock()
	// Re-validate under the lock: a racing hand-off may have moved the
	// boundary while we consulted the replica store.
	if !s.hasRange || newPred.Val == s.rng.Lo || !keyspace.Between(s.rng.Lo, newPred.Val, s.rng.Hi) {
		s.mu.Unlock()
		return
	}
	revive = keyspace.NewRange(newPred.Val, s.rng.Lo)
	epoch := s.epoch
	if adv > epoch {
		epoch = adv
	}
	if s.cfg.LeaseDuration > 0 && s.log != nil && prev.Addr != "" {
		// With leases on, a suspicion-driven revival is an adoption of the
		// failed predecessor's lease: journal the expiry before the
		// overlapping claim so the lease audit sees its lease voided first.
		// (A false-positive suspicion makes this an early expiry — the epoch
		// fence, not the lease, is what deposes the live suspect, and the
		// journal records the adoption that actually happened.)
		s.log.LeaseExpired(string(prev.Addr), string(s.ring.Self().Addr), revive, adv)
	}
	s.claimLocked(s.rng.ExtendDown(newPred.Val), epoch+1)
	s.mu.Unlock()

	if s.rep != nil {
		items := s.rep.Revive(revive)
		s.adoptRevived(revive, items)
	}
}

// --- Underflow: redistribute or merge ---------------------------------------

type rebalanceReq struct {
	From      ring.Node // the underflowing peer (our predecessor)
	FromCount int
}

type rebalanceResp struct {
	Redistribute bool
	Items        []Item       // for redistribute: the successor's lowest items
	NewBoundary  keyspace.Key // the underflowing peer's new upper bound / value
	Epoch        uint64       // for redistribute: the successor's post-shrink epoch
	Merge        bool         // the underflowing peer should merge into us
}

type mergeInReq struct {
	From  ring.Node
	Range keyspace.Range
	Epoch uint64 // the merging peer's ownership epoch at hand-off
	Items []Item
}

// underflow handles len(items) < sf: ask the successor to redistribute; if
// the combined load would still underflow one of us, merge into it instead
// (Section 2.3).
func (s *Store) underflow() error {
	if !s.maintMu.TryLock() {
		return ErrMaintBusy
	}
	defer s.maintMu.Unlock()

	succ, ok := s.ring.FirstStabilizedSuccessor()
	if !ok || succ.Addr == s.Addr() {
		return ErrNoSucc
	}
	self := s.ring.Self()
	s.mu.Lock()
	count := len(s.items)
	s.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.MaintenanceTimeout)
	defer cancel()
	// Bulk call: a redistribution answer carries half the successor's items,
	// which may not fit one transport frame.
	resp, err := transport.CallBulk(s.net, ctx, self.Addr, succ.Addr, methodRebalance, rebalanceReq{From: self, FromCount: count})
	if err != nil {
		return err
	}
	rb, ok := resp.(rebalanceResp)
	if !ok {
		return fmt.Errorf("datastore: bad rebalance response %T", resp)
	}
	switch {
	case rb.Redistribute:
		return s.applyRedistribute(ctx, rb)
	case rb.Merge:
		return s.mergeIntoSuccessor(ctx, succ)
	default:
		return nil // successor declined (busy); retry later
	}
}

// handleRebalance runs at the successor of an underflowing peer and decides
// between redistribution (we can spare items) and merge (combined load fits
// in one peer). For a redistribution it carves its lowest items under the
// range write lock and shrinks its range upward before replying, so there is
// never a moment where both peers claim the boundary region.
func (s *Store) handleRebalance(from transport.Addr, _ string, payload any) (any, error) {
	req, ok := payload.(rebalanceReq)
	if !ok {
		return nil, fmt.Errorf("datastore: bad rebalance payload %T", payload)
	}
	if !s.maintMu.TryLock() {
		return rebalanceResp{}, nil // busy: caller retries later
	}
	defer s.maintMu.Unlock()
	if s.ring.State() != ring.StateJoined {
		return rebalanceResp{}, nil
	}

	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.CallTimeout*4)
	defer cancel()

	s.mu.Lock()
	mine := len(s.items)
	prLo := s.rng.Lo
	s.mu.Unlock()
	total := mine + req.FromCount
	sf := s.cfg.StorageFactor

	// Sanity: the requester must be our direct predecessor (its value is our
	// range's lower bound). A stale requester gets declined.
	if req.From.Val != prLo {
		return rebalanceResp{}, nil
	}

	if total <= 2*sf {
		// Combined load fits in one peer: the predecessor merges into us.
		return rebalanceResp{Merge: true}, nil
	}

	// Redistribute: give the predecessor our lowest items so both end up
	// with at least sf.
	give := total/2 - req.FromCount
	if give <= 0 {
		return rebalanceResp{}, nil
	}
	if err := s.rangeLock.Lock(ctx); err != nil {
		return rebalanceResp{}, nil
	}
	defer s.rangeLock.Unlock()

	s.mu.Lock()
	if !s.hasRange || s.rng.Lo != req.From.Val {
		s.mu.Unlock()
		return rebalanceResp{}, nil
	}
	sorted := s.sortedItemsLocked()
	if give >= len(sorted) {
		give = len(sorted) - 1
	}
	if give <= 0 {
		s.mu.Unlock()
		return rebalanceResp{}, nil
	}
	moved := sorted[:give]
	boundary := moved[len(moved)-1].Key
	selfAddr := string(s.ring.Self().Addr)
	for _, it := range moved {
		delete(s.items, it.Key)
		if s.log != nil {
			s.log.Moved(selfAddr, string(from), it.Key)
		}
	}
	// The shrunken range is a new incarnation; the predecessor claims the
	// carved region above our new epoch (applyRedistribute), so the moved
	// keys' epoch history stays strictly increasing.
	newEpoch := s.epoch + 1
	s.claimLocked(keyspace.NewRange(boundary, s.rng.Hi), newEpoch)
	s.mu.Unlock()

	if s.rep != nil {
		s.rep.ItemsChanged()
	}
	s.Redistributes.Add(1)
	out := make([]Item, len(moved))
	copy(out, moved)
	return rebalanceResp{Redistribute: true, Items: out, NewBoundary: boundary, Epoch: newEpoch}, nil
}

// applyRedistribute extends this peer's range and value up to the new
// boundary and adopts the received items.
func (s *Store) applyRedistribute(ctx context.Context, rb rebalanceResp) error {
	if err := s.rangeLock.Lock(ctx); err != nil {
		return ErrLockBusy
	}
	defer s.rangeLock.Unlock()
	s.mu.Lock()
	if !s.hasRange {
		s.mu.Unlock()
		return ErrNoRange
	}
	// Claim the extended range strictly above both our own epoch and the
	// successor's post-shrink one: the carved keys' history stays monotonic.
	epoch := s.epoch
	if rb.Epoch > epoch {
		epoch = rb.Epoch
	}
	s.claimLocked(keyspace.NewRange(s.rng.Lo, rb.NewBoundary), epoch+1)
	for _, it := range rb.Items {
		s.items[it.Key] = it
		_ = s.backend.Append(storage.Record{Kind: storage.RecPut, Epoch: s.epoch, Key: it.Key, Payload: it.Payload})
	}
	s.mu.Unlock()
	s.ring.SetVal(rb.NewBoundary)
	if s.rep != nil {
		s.rep.ItemsChanged()
	}
	return nil
}

// mergeIntoSuccessor executes the merge side of an underflow: replicate one
// additional hop (Section 5.2), leave the ring gracefully (Section 5.1),
// transfer the Data Store state to the successor, and depart to the free
// pool. The ordering follows Figure 17/18's corrected flow.
func (s *Store) mergeIntoSuccessor(ctx context.Context, succ ring.Node) error {
	mergeStart := time.Now()
	// 1. Replicate to one additional hop so the departure does not lower
	//    the replica count of anything we hold.
	if s.rep != nil {
		if err := s.rep.BeforeLeave(ctx); err != nil {
			return fmt.Errorf("datastore: pre-leave replication failed: %w", err)
		}
	}
	// 2. PEPPER leave: wait until every predecessor pointing at us has
	//    lengthened its successor list.
	leaveStart := time.Now()
	if err := s.ring.Leave(ctx); err != nil {
		return fmt.Errorf("datastore: leave failed: %w", err)
	}
	if s.cfg.LeaveRecorder != nil {
		s.cfg.LeaveRecorder.Observe(time.Since(leaveStart))
	}
	// 3. Hand the Data Store state to the successor under our write lock
	//    (scans in flight drain first; later scans abort here and retry).
	if err := s.rangeLock.Lock(ctx); err != nil {
		return ErrLockBusy
	}
	s.mu.Lock()
	rng := s.rng
	epoch := s.epoch
	items := make([]Item, 0, len(s.items))
	for _, it := range s.items {
		items = append(items, it)
	}
	s.items = make(map[keyspace.Key]Item)
	s.hasRange = false
	self := s.ring.Self()
	if s.cfg.LeaseDuration > 0 && s.log != nil {
		// Announce the lease transfer BEFORE the successor's absorbing claim
		// can land: in journal order its extended grant would otherwise
		// overlap our still-live lease (our release below is journaled only
		// after the hand-off commits — a failed transfer restores our state,
		// so the lease must not be voided in advance). The pending handoff
		// justifies exactly that one overlapping grant for the audit.
		s.log.LeaseHandoff(string(self.Addr), string(succ.Addr), rng, epoch)
	}
	s.mu.Unlock()
	s.rangeLock.Unlock()

	// The receiver journals the item moves as it applies them: if we die
	// mid-call, the journal then matches wherever the items physically are.
	// The hand-off is a bulk call: an arbitrarily large range streams across
	// in chunks and the successor applies it atomically at commit, so a
	// transfer interrupted mid-stream leaves the successor unchanged and the
	// items safely back here via the error path below.
	_, err := transport.CallBulk(s.net, ctx, self.Addr, succ.Addr, methodMergeIn, mergeInReq{From: self, Range: rng, Epoch: epoch, Items: items})
	if err != nil {
		// The successor is gone; put the state back and let the ring heal.
		s.mu.Lock()
		s.hasRange = true
		s.rng = rng
		for _, it := range items {
			s.items[it.Key] = it
		}
		s.mu.Unlock()
		return fmt.Errorf("datastore: merge transfer failed: %w", err)
	}
	// The hand-off committed: release ownership durably. This deliberately
	// happens only now — a failed transfer restores the in-memory state
	// above, which must keep matching the WAL's claim. A crash between the
	// commit and this release recovers a stale claim that the successor's
	// higher-epoch one then deposes through the normal fencing path.
	s.mu.Lock()
	s.releaseLocked()
	s.mu.Unlock()
	// 4. Depart; the peer returns to the free pool. Shut down our own loops
	//    asynchronously — this code may be running on the maintenance loop
	//    itself, so it must not wait for it.
	if s.cfg.MergeRecorder != nil {
		s.cfg.MergeRecorder.Observe(time.Since(mergeStart))
	}
	s.Merges.Add(1)
	s.ring.Depart()
	s.signalStop()
	if s.pool != nil {
		s.pool.Release(self.Addr)
	}
	return nil
}

// --- Deposition --------------------------------------------------------------

// StepDown resigns this peer's range ownership: a peer holding a claim over
// our range with the strictly higher epoch winnerEpoch has been observed (a
// replication push answered "deposed"), which proves the ring's failure
// detector declared us dead and a successor revived our range while we were
// still serving — the dual-claim window. The epoch orders the two
// incarnations, and the lower one must yield: we drain in-flight scans under
// the range write lock, drop the range and items (journaled as removals —
// exactly the effect a real fail-stop would have had; anything we held is
// already replicated up to the usual replication lag, and our unreplicated
// window mutations die with us, as they would in a genuine crash), and
// depart to the free pool under a spent identity, the same recycling path a
// merged-away peer takes. The process re-enters as a fresh free peer.
func (s *Store) StepDown(winnerEpoch uint64) {
	if !s.maintMu.TryLock() {
		return // mid-split/merge; the next deposed push reply retries
	}
	defer s.maintMu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.MaintenanceTimeout)
	defer cancel()
	if err := s.rangeLock.Lock(ctx); err != nil {
		return
	}
	s.mu.Lock()
	if !s.hasRange || winnerEpoch <= s.epoch {
		// Raced a legitimate hand-off, or the verdict is stale: only a
		// strictly higher incarnation can depose us.
		s.mu.Unlock()
		s.rangeLock.Unlock()
		return
	}
	self := string(s.ring.Self().Addr)
	for k := range s.items {
		if s.log != nil {
			s.log.Removed(self, k)
		}
	}
	s.items = make(map[keyspace.Key]Item)
	s.hasRange = false
	// Release durably: a restart from this identity's data directory must
	// come back as a free peer, not resurrect the deposed incarnation. The
	// release precedes the epoch zeroing so the lease release it journals
	// names the incarnation being resigned.
	s.releaseLocked()
	s.epoch = 0
	s.mu.Unlock()
	s.rangeLock.Unlock()
	s.StepDowns.Add(1)

	// Identity spent: depart without any leave protocol — the suspicion that
	// deposed us already excised this peer from every successor list, so
	// there is no predecessor left to acknowledge a graceful leave.
	addr := s.Addr()
	s.ring.Depart()
	s.signalStop()
	if s.pool != nil {
		s.pool.Release(addr)
	}
}

// handleMergeIn absorbs a merging predecessor's range and items.
func (s *Store) handleMergeIn(_ transport.Addr, _ string, payload any) (any, error) {
	req, ok := payload.(mergeInReq)
	if !ok {
		return nil, fmt.Errorf("datastore: bad mergeIn payload %T", payload)
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.CallTimeout*4)
	defer cancel()
	if err := s.rangeLock.Lock(ctx); err != nil {
		return nil, ErrLockBusy
	}
	defer s.rangeLock.Unlock()
	s.mu.Lock()
	if !s.hasRange || s.rng.Lo != req.Range.Hi {
		s.mu.Unlock()
		return nil, ErrWrongState
	}
	// Claim the absorbed range strictly above both incarnations it unifies.
	epoch := s.epoch
	if req.Epoch > epoch {
		epoch = req.Epoch
	}
	s.claimLocked(s.rng.ExtendDown(req.Range.Lo), epoch+1)
	self := string(s.ring.Self().Addr)
	for _, it := range req.Items {
		s.items[it.Key] = it
		_ = s.backend.Append(storage.Record{Kind: storage.RecPut, Epoch: s.epoch, Key: it.Key, Payload: it.Payload})
		if s.log != nil {
			s.log.Moved(string(req.From.Addr), self, it.Key)
		}
	}
	s.mu.Unlock()
	if s.rep != nil {
		s.rep.ItemsChanged()
	}
	s.kickMaintenance()
	return true, nil
}
