package datastore

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/history"
	"repro/internal/keyspace"
	"repro/internal/ring"
	"repro/internal/simnet"
)

// harness wires N datastore peers over a real ring for package-level tests.
type harness struct {
	t      *testing.T
	net    *simnet.Network
	log    *history.Log
	mu     sync.Mutex
	stores map[simnet.Addr]*Store
	rings  map[simnet.Addr]*ring.Peer
	free   []simnet.Addr
	nextID int
	dsCfg  Config
	rCfg   ring.Config
}

// fakeRep is a no-op Replicator for tests that do not exercise replication.
type fakeRep struct {
	mu      sync.Mutex
	revive  []Item
	leaves  int
	changed int
}

func (f *fakeRep) ItemsChanged() {
	f.mu.Lock()
	f.changed++
	f.mu.Unlock()
}
func (f *fakeRep) BeforeLeave(context.Context) error {
	f.mu.Lock()
	f.leaves++
	f.mu.Unlock()
	return nil
}
func (f *fakeRep) Revive(r keyspace.Range) []Item {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []Item
	for _, it := range f.revive {
		if r.Contains(it.Key) {
			out = append(out, it)
		}
	}
	return out
}
func (f *fakeRep) PullRange(context.Context, keyspace.Range) ([]Item, uint64) { return nil, 0 }
func (f *fakeRep) MaxAdvertisedEpoch(keyspace.Range) uint64                   { return 0 }
func (f *fakeRep) AdvertInfo(simnet.Addr) (keyspace.Range, uint64, time.Time, bool) {
	return keyspace.Range{}, 0, time.Time{}, false
}

func newHarness(t *testing.T, dsCfg Config, rCfg ring.Config) *harness {
	t.Helper()
	if rCfg.SuccListLen == 0 {
		rCfg = ring.Config{
			SuccListLen: 4,
			StabPeriod:  5 * time.Millisecond,
			PingPeriod:  5 * time.Millisecond,
			CallTimeout: 40 * time.Millisecond,
			AckTimeout:  3 * time.Second,
		}
	}
	if dsCfg.StorageFactor == 0 {
		dsCfg = Config{
			StorageFactor:      5,
			CheckPeriod:        10 * time.Millisecond,
			CallTimeout:        40 * time.Millisecond,
			MaintenanceTimeout: 3 * time.Second,
			DisableMaintenance: dsCfg.DisableMaintenance,
		}
	}
	return &harness{
		t:      t,
		net:    simnet.New(simnet.Config{DeadCallDelay: time.Millisecond, Seed: 3}),
		log:    history.NewLog(),
		stores: make(map[simnet.Addr]*Store),
		rings:  make(map[simnet.Addr]*ring.Peer),
		dsCfg:  dsCfg,
		rCfg:   rCfg,
	}
}

// pool implements FreePool over the harness.
type pool harness

func (pl *pool) Acquire() (simnet.Addr, error) {
	h := (*harness)(pl)
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.free) == 0 {
		return "", errors.New("pool empty")
	}
	a := h.free[0]
	h.free = h.free[1:]
	return a, nil
}

// Release returns a never-joined peer to the pool (a join that timed out);
// departed peers are not reusable (the paper's model forbids re-entering
// with the same identifier).
func (pl *pool) Release(addr simnet.Addr) {
	h := (*harness)(pl)
	h.mu.Lock()
	defer h.mu.Unlock()
	rp := h.rings[addr]
	if rp != nil && rp.State() == ring.StateFree && h.net.Alive(addr) {
		h.free = append(h.free, addr)
	}
}

// addPeer constructs a full ring+store stack.
func (h *harness) addPeer() (*Store, *ring.Peer) {
	h.t.Helper()
	h.mu.Lock()
	h.nextID++
	addr := simnet.Addr(fmt.Sprintf("d%d", h.nextID))
	h.mu.Unlock()
	mux := simnet.NewMux()
	var st *Store
	cb := ring.Callbacks{
		PrepareJoinData: func(j ring.Node) any { return st.PrepareJoinData(j) },
		OnJoined: func(self, pred ring.Node, data any) {
			st.OnJoined(self, pred, data)
		},
		OnPredChanged: func(newPred, prev ring.Node, failed bool) {
			st.OnPredChanged(newPred, prev, failed)
		},
	}
	rp := ring.NewPeer(h.net, mux, h.rCfg, ring.Node{Addr: addr}, cb)
	st = New(h.net, mux, rp, h.log, h.dsCfg)
	st.SetDeps(&fakeRep{}, (*pool)(h))
	if err := h.net.Register(addr, mux.Dispatch); err != nil {
		h.t.Fatal(err)
	}
	h.mu.Lock()
	h.stores[addr] = st
	h.rings[addr] = rp
	h.mu.Unlock()
	h.t.Cleanup(func() { rp.Stop(); st.Stop() })
	return st, rp
}

// boot starts a ring with one serving peer and n-1 free peers.
func (h *harness) boot(n int) *Store {
	h.t.Helper()
	first, rp := h.addPeer()
	if err := rp.InitRing(); err != nil {
		h.t.Fatal(err)
	}
	first.InitFirstPeer()
	first.Start()
	for i := 1; i < n; i++ {
		st, _ := h.addPeer()
		h.mu.Lock()
		h.free = append(h.free, st.Addr())
		h.mu.Unlock()
	}
	return first
}

func hWaitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(3 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// serving returns stores that currently own a range. LEAVING and INSERTING
// peers still serve their range (a leave keeps serving until the Data Store
// hand-off), so they count.
func (h *harness) serving() []*Store {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []*Store
	for addr, st := range h.stores {
		if !h.net.Alive(addr) {
			continue
		}
		switch h.rings[addr].State() {
		case ring.StateJoined, ring.StateLeaving, ring.StateInserting:
		default:
			continue
		}
		if _, ok := st.Range(); ok {
			out = append(out, st)
		}
	}
	return out
}

func TestInsertDeleteLocal(t *testing.T) {
	h := newHarness(t, Config{DisableMaintenance: true}, ring.Config{})
	first := h.boot(1)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	if err := first.InsertAt(ctx, first.Addr(), Item{Key: 10, Payload: "x"}); err != nil {
		t.Fatal(err)
	}
	if got := first.ItemCount(); got != 1 {
		t.Fatalf("ItemCount = %d", got)
	}
	found, err := first.DeleteAt(ctx, first.Addr(), 10)
	if err != nil || !found {
		t.Fatalf("delete = %v, %v", found, err)
	}
	found, err = first.DeleteAt(ctx, first.Addr(), 10)
	if err != nil || found {
		t.Fatalf("double delete = %v, %v", found, err)
	}
}

func TestInsertRejectedByNonOwner(t *testing.T) {
	h := newHarness(t, Config{DisableMaintenance: true}, ring.Config{})
	first := h.boot(2)
	// Manually give the first peer a bounded range so a key outside it is
	// rejected.
	first.mu.Lock()
	first.rng = keyspace.NewRange(0, 100)
	first.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := first.InsertAt(ctx, first.Addr(), Item{Key: 500})
	if !errors.Is(err, ErrNotOwner) {
		t.Fatalf("err = %v, want ErrNotOwner", err)
	}
}

func TestSplitOnOverflow(t *testing.T) {
	h := newHarness(t, Config{}, ring.Config{})
	first := h.boot(3)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// sf = 5: the 11th item overflows the peer and triggers a split.
	for i := 1; i <= 12; i++ {
		if err := first.InsertAt(ctx, first.Addr(), Item{Key: keyspace.Key(i * 10)}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	hWaitUntil(t, 5*time.Second, "split", func() bool { return len(h.serving()) == 2 })

	total := 0
	for _, st := range h.serving() {
		n := st.ItemCount()
		if n < 1 {
			t.Errorf("peer %s holds %d items after split", st.Addr(), n)
		}
		total += n
	}
	if total != 12 {
		t.Errorf("items after split = %d, want 12", total)
	}
	// Ranges must partition: ring consistency implies ranges chain; verify
	// every key is owned by exactly one serving peer.
	for i := 1; i <= 12; i++ {
		owners := 0
		for _, st := range h.serving() {
			if rng, ok := st.Range(); ok && rng.Contains(keyspace.Key(i*10)) {
				owners++
			}
		}
		if owners != 1 {
			t.Errorf("key %d owned by %d peers", i*10, owners)
		}
	}
}

func TestRedistributeOnUnderflow(t *testing.T) {
	h := newHarness(t, Config{}, ring.Config{})
	first := h.boot(3)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	for i := 1; i <= 24; i++ {
		if err := insertRetry(ctx, h, first, keyspace.Key(i*10)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	hWaitUntil(t, 10*time.Second, "splits", func() bool { return len(h.serving()) >= 2 })

	// Delete items from the lowest-range peer until it underflows while its
	// successor stays rich: a redistribute (not a merge) must follow.
	stores := h.serving()
	var low *Store
	for _, st := range stores {
		if rng, _ := st.Range(); rng.Contains(10) {
			low = st
		}
	}
	if low == nil {
		t.Fatal("no owner of key 10")
	}
	before := low.Redistributes.Load() + totalRedis(h)
	items := low.LocalItems()
	for i := 0; i < len(items)-1; i++ {
		if _, err := low.DeleteAt(ctx, low.Addr(), items[i].Key); err != nil {
			t.Fatalf("delete: %v", err)
		}
	}
	hWaitUntil(t, 5*time.Second, "redistribute or merge", func() bool {
		return totalRedis(h) > before || totalMerges(h) > 0
	})
}

func totalRedis(h *harness) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var n uint64
	for _, st := range h.stores {
		n += st.Redistributes.Load()
	}
	return n
}

func totalMerges(h *harness) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var n uint64
	for _, st := range h.stores {
		n += st.Merges.Load()
	}
	return n
}

// ownerOf finds the serving peer owning key (test-side routing).
func ownerOf(h *harness, key keyspace.Key) simnet.Addr {
	for _, st := range h.serving() {
		if rng, ok := st.Range(); ok && rng.Contains(key) {
			return st.Addr()
		}
	}
	return ""
}

// insertRetry inserts through test-side routing, retrying while ownership is
// in flight between peers. The RPC is issued from the owner's own stack so a
// departed entry peer cannot poison the retries.
func insertRetry(ctx context.Context, h *harness, _ *Store, key keyspace.Key) error {
	var lastErr error = ErrNoRange
	for attempt := 0; attempt < 200; attempt++ {
		addr := ownerOf(h, key)
		if addr == "" {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		h.mu.Lock()
		via := h.stores[addr]
		h.mu.Unlock()
		if err := via.InsertAt(ctx, addr, Item{Key: key}); err == nil {
			return nil
		} else {
			lastErr = err
		}
		time.Sleep(5 * time.Millisecond)
	}
	return lastErr
}

func TestScanRangeSinglePeer(t *testing.T) {
	h := newHarness(t, Config{DisableMaintenance: true}, ring.Config{})
	first := h.boot(1)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 1; i <= 5; i++ {
		if err := first.InsertAt(ctx, first.Addr(), Item{Key: keyspace.Key(i * 10)}); err != nil {
			t.Fatal(err)
		}
	}
	var mu sync.Mutex
	var got []Item
	var pieces []keyspace.Interval
	first.RegisterHandler("collect", func(items []Item, piece keyspace.Interval, param any) any {
		mu.Lock()
		got = append(got, items...)
		pieces = append(pieces, piece)
		mu.Unlock()
		return param
	})
	if err := first.StartScan(ctx, first.Addr(), keyspace.ClosedInterval(15, 45), "collect", nil); err != nil {
		t.Fatal(err)
	}
	hWaitUntil(t, 2*time.Second, "handler run", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(pieces) == 1
	})
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 {
		t.Errorf("scan found %d items, want 3 (20,30,40)", len(got))
	}
}

// The scan must abort (not silently return wrong data) when started at a
// peer that does not own the lower bound.
func TestScanRejectsWrongFirstPeer(t *testing.T) {
	h := newHarness(t, Config{DisableMaintenance: true}, ring.Config{})
	first := h.boot(1)
	first.mu.Lock()
	first.rng = keyspace.NewRange(100, 200)
	first.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := first.StartScan(ctx, first.Addr(), keyspace.ClosedInterval(300, 400), "none", nil)
	if !errors.Is(err, ErrNotOwner) {
		t.Fatalf("err = %v, want ErrNotOwner", err)
	}
	if first.ScanAborts.Load() == 0 {
		t.Error("abort not counted")
	}
}

// Section 4.2.2, deterministic: a redistribution between two naive-scan
// steps moves an item from the not-yet-visited peer to the already-visited
// peer, so the naive scan misses it even though it was live throughout.
func TestNaiveScanMissesDuringRedistribute(t *testing.T) {
	h := newHarness(t, Config{DisableMaintenance: true}, ring.Config{})
	first := h.boot(3)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Manually split so we control the boundary: A owns (0,100], B owns
	// (100,0]; items 50 at A; 120, 180 at B... we need a redistribution
	// moving 120 from B to A between the scan's two steps. Build via real
	// maintenance: temporarily enable balancing by inserting past overflow.
	// Simpler: drive the split by hand using the maintenance entry points.
	for i := 1; i <= 11; i++ {
		if err := first.InsertAt(ctx, first.Addr(), Item{Key: keyspace.Key(i * 20)}); err != nil {
			t.Fatal(err)
		}
	}
	// Manual split (maintenance disabled): call the balance check directly.
	first.CheckBalance()
	hWaitUntil(t, 5*time.Second, "split", func() bool { return len(h.serving()) == 2 })

	var a, b *Store // a = low range, b = high range (a's successor)
	for _, st := range h.serving() {
		rng, _ := st.Range()
		if rng.Contains(20) {
			a = st
		} else {
			b = st
		}
	}
	if a == nil || b == nil {
		t.Fatal("split did not produce two owners")
	}
	hWaitUntil(t, 2*time.Second, "stabilized successor at a", func() bool {
		_, ok := a.ring.FirstStabilizedSuccessor()
		return ok
	})
	// Enrich b so the underflow at a resolves by redistribution rather than
	// merge: the combined load must exceed 2·sf.
	for i := 0; i < 7; i++ {
		if err := first.InsertAt(ctx, b.Addr(), Item{Key: keyspace.Key(300 + i*20)}); err != nil {
			t.Fatal(err)
		}
	}
	aRange, _ := a.Range()
	bItems := b.LocalItems()
	if len(bItems) == 0 {
		t.Fatal("successor holds nothing")
	}
	target := bItems[0] // the lowest item of b: a redistribute moves it to a

	iv := keyspace.ClosedInterval(20, 220)
	logID, start := h.log.BeginQuery(iv)

	// Naive scan step 1: read a.
	resp1, err := h.net.Call(ctx, a.Addr(), a.Addr(), methodNaiveStep, naiveStepReq{Iv: iv, Cursor: 20})
	if err != nil {
		t.Fatal(err)
	}
	step1 := resp1.(naiveStepResp)

	// Concurrently: a redistribution moves b's lowest items down to a.
	// Delete a's items until underflow, then run its balance check once.
	for _, it := range a.LocalItems()[1:] {
		if _, err := a.DeleteAt(ctx, a.Addr(), it.Key); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.underflow(); err != nil {
		t.Fatalf("underflow handling: %v", err)
	}
	newARange, _ := a.Range()
	if newARange == aRange {
		t.Fatal("redistribution did not move the boundary")
	}
	moved := false
	for _, it := range a.LocalItems() {
		if it.Key == target.Key {
			moved = true
		}
	}
	if !moved {
		t.Fatalf("item %d did not move to a during redistribution", target.Key)
	}

	// Naive scan step 2: continue at b — the moved item is gone from b.
	resp2, err := h.net.Call(ctx, a.Addr(), b.Addr(), methodNaiveStep, naiveStepReq{Iv: iv, Cursor: step1.NextCursor})
	if err != nil {
		t.Fatal(err)
	}
	step2 := resp2.(naiveStepResp)

	var keys []keyspace.Key
	for _, it := range append(step1.Items, step2.Items...) {
		keys = append(keys, it.Key)
	}
	h.log.EndQuery(logID, iv, start, keys)

	violations := h.log.CheckAllQueries()
	found := false
	for _, v := range violations {
		if v.Key == target.Key {
			found = true
		}
	}
	if !found {
		t.Errorf("naive scan should have missed item %d (violations: %v)", target.Key, violations)
	}
}

// The PEPPER counterpart: the same interleaving cannot occur, because the
// scan holds the range read lock until the hand-off — the redistribution
// blocks until the scan has moved past, and the result is complete.
func TestScanRangeBlocksRedistribute(t *testing.T) {
	h := newHarness(t, Config{DisableMaintenance: true}, ring.Config{})
	first := h.boot(3)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	for i := 1; i <= 11; i++ {
		if err := first.InsertAt(ctx, first.Addr(), Item{Key: keyspace.Key(i * 20)}); err != nil {
			t.Fatal(err)
		}
	}
	first.CheckBalance()
	hWaitUntil(t, 5*time.Second, "split", func() bool { return len(h.serving()) == 2 })

	var a, b *Store
	for _, st := range h.serving() {
		rng, _ := st.Range()
		if rng.Contains(20) {
			a = st
		} else {
			b = st
		}
	}
	if a == nil || b == nil {
		t.Fatal("split did not produce two owners")
	}
	hWaitUntil(t, 2*time.Second, "stabilized successor at a", func() bool {
		_, ok := a.ring.FirstStabilizedSuccessor()
		return ok
	})

	// Slow handler at a: while it runs, a's range lock is held, so the
	// redistribution must wait; once the scan reaches b, b's lock blocks the
	// carve there too. Either way no item can cross the scan frontier.
	gate := make(chan struct{})
	var mu sync.Mutex
	var got []Item
	handler := func(items []Item, piece keyspace.Interval, param any) any {
		mu.Lock()
		got = append(got, items...)
		mu.Unlock()
		if piece.Contains(20) { // only the first peer stalls
			<-gate
		}
		return param
	}
	a.RegisterHandler("slow", handler)
	b.RegisterHandler("slow", handler)

	iv := keyspace.ClosedInterval(20, 220)
	if err := a.StartScan(ctx, a.Addr(), iv, "slow", nil); err != nil {
		t.Fatal(err)
	}

	// While the scan handler stalls at a, make a underflow and try to
	// redistribute: it must not complete until the scan moves on.
	for _, it := range a.LocalItems()[1:] {
		if _, err := a.DeleteAt(ctx, a.Addr(), it.Key); err != nil {
			t.Fatal(err)
		}
	}
	redisDone := make(chan error, 1)
	go func() { redisDone <- a.underflow() }()
	select {
	case err := <-redisDone:
		t.Fatalf("redistribution completed while the scan held the lock: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(gate) // scan proceeds to b, locks released in order

	select {
	case <-redisDone:
	case <-time.After(5 * time.Second):
		t.Fatal("redistribution never completed after the scan moved on")
	}
	// The scan must have seen every item that existed when it passed:
	// 1 item left at a (key 20) plus all of b's items.
	hWaitUntil(t, 2*time.Second, "scan completion", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) >= 6
	})
}

func TestScanAbortNotifiesOrigin(t *testing.T) {
	h := newHarness(t, Config{DisableMaintenance: true}, ring.Config{})
	first := h.boot(1)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	aborts := make(chan any, 1)
	first.OnScanAbort(func(param any) { aborts <- param })

	// Scan an interval extending past the peer's range with no successor to
	// forward to (solo "ring" with a bounded range): the forward fails and
	// the origin must be notified.
	first.mu.Lock()
	first.rng = keyspace.NewRange(0, 100)
	first.mu.Unlock()
	if err := first.StartScan(ctx, first.Addr(), keyspace.ClosedInterval(50, 500), "none", "tag"); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-aborts:
		if p != "tag" {
			t.Errorf("abort param = %v, want tag", p)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("abort never delivered")
	}
}

func TestContiguousEnd(t *testing.T) {
	cases := []struct {
		rng          keyspace.Range
		cursor, last keyspace.Key
		wantEnd      keyspace.Key
		wantFinished bool
	}{
		// Non-wrapped range, query ends inside.
		{keyspace.NewRange(10, 100), 20, 50, 50, true},
		// Non-wrapped range, query extends past.
		{keyspace.NewRange(10, 100), 20, 500, 100, false},
		// Full ring: always finished.
		{keyspace.FullRange(7), 20, 500, 500, true},
		// Wrapped range, cursor in low segment, query extends past hi.
		{keyspace.NewRange(900, 100), 20, 500, 100, false},
		// Wrapped range, cursor in low segment, query ends inside.
		{keyspace.NewRange(900, 100), 20, 90, 90, true},
		// Wrapped range, cursor in high segment: linear query always ends here.
		{keyspace.NewRange(900, 100), 950, 980, 980, true},
	}
	for _, c := range cases {
		end, fin := contiguousEnd(c.rng, c.cursor, c.last)
		if end != c.wantEnd || fin != c.wantFinished {
			t.Errorf("contiguousEnd(%v, %d, %d) = %d,%v want %d,%v",
				c.rng, c.cursor, c.last, end, fin, c.wantEnd, c.wantFinished)
		}
	}
}

func TestMergeTransfersEverything(t *testing.T) {
	h := newHarness(t, Config{}, ring.Config{})
	first := h.boot(3)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	for i := 1; i <= 14; i++ {
		if err := insertRetry(ctx, h, first, keyspace.Key(i*10)); err != nil {
			t.Fatal(err)
		}
	}
	hWaitUntil(t, 5*time.Second, "split", func() bool { return len(h.serving()) == 2 })
	// Delete down to 4 total: one peer must merge away. Ownership can be in
	// flight while balancing runs, so resolve-and-delete with retry.
	for i := 1; i <= 10; i++ {
		key := keyspace.Key(i * 10)
		deleted := false
		for attempt := 0; attempt < 400 && !deleted; attempt++ {
			addr := ownerOf(h, key)
			if addr == "" {
				if attempt%100 == 99 {
					t.Logf("delete %d attempt %d: no owner", key, attempt)
				}
				time.Sleep(10 * time.Millisecond)
				continue
			}
			// Issue the delete from the owner's own stack: the original
			// entry peer may itself have merged away by now.
			h.mu.Lock()
			via := h.stores[addr]
			h.mu.Unlock()
			if _, err := via.DeleteAt(ctx, addr, key); err == nil {
				deleted = true
			} else {
				if attempt%100 == 99 {
					t.Logf("delete %d attempt %d at %s: %v", key, attempt, addr, err)
				}
				time.Sleep(10 * time.Millisecond)
			}
		}
		if !deleted {
			h.mu.Lock()
			for addr, st := range h.stores {
				rng, ok := st.Range()
				t.Logf("%s alive=%v state=%s range=%v(%v) items=%d",
					addr, h.net.Alive(addr), h.rings[addr].State(), rng, ok, st.ItemCount())
			}
			h.mu.Unlock()
			t.Fatalf("could not delete %d", key)
		}
	}
	hWaitUntil(t, 8*time.Second, "merge", func() bool { return len(h.serving()) == 1 })
	// The final range extension can still be applying when the peer count
	// drops; wait for the survivor to own everything.
	hWaitUntil(t, 8*time.Second, "survivor owning the full ring", func() bool {
		s := h.serving()
		if len(s) != 1 {
			return false
		}
		rng, ok := s[0].Range()
		return ok && rng.IsFull() && s[0].ItemCount() == 4
	})
}

func TestRangeLockContextTimeout(t *testing.T) {
	var l RangeLock
	ctx := context.Background()
	if err := l.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	short, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if err := l.RLock(short); err == nil {
		t.Fatal("RLock should time out while writer holds the lock")
	}
	l.Unlock()
	if err := l.RLock(ctx); err != nil {
		t.Fatal(err)
	}
	short2, cancel2 := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel2()
	if err := l.Lock(short2); err == nil {
		t.Fatal("Lock should time out while a reader holds the lock")
	}
	l.RUnlock()
}

func TestRangeLockSharedReaders(t *testing.T) {
	var l RangeLock
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if err := l.RLock(ctx); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() {
		lockCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		done <- l.Lock(lockCtx)
	}()
	for i := 0; i < 5; i++ {
		time.Sleep(time.Millisecond)
		l.RUnlock()
	}
	if err := <-done; err != nil {
		t.Fatalf("writer never acquired after readers released: %v", err)
	}
	l.Unlock()
}

func TestRangeLockPanicsOnBadUnlock(t *testing.T) {
	var l RangeLock
	defer func() {
		if recover() == nil {
			t.Error("RUnlock without RLock must panic")
		}
	}()
	l.RUnlock()
}
