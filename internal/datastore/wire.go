package datastore

import "repro/internal/transport"

// Every Data Store payload and response is registered with the wire codec,
// so the messages survive a real network hop (and simnet's
// StrictSerialization round trip).
func init() {
	transport.RegisterMessage(Item{})
	transport.RegisterMessage([]Item(nil))
	transport.RegisterMessage(insertReq{})
	transport.RegisterMessage(insertResp{})
	transport.RegisterMessage(deleteReq{})
	transport.RegisterMessage(deleteResp{})
	transport.RegisterMessage(scanMsg{})
	transport.RegisterMessage(segmentReq{})
	transport.RegisterMessage(SegmentResult{})
	transport.RegisterMessage(abortMsg{})
	transport.RegisterMessage(naiveStepReq{})
	transport.RegisterMessage(naiveStepResp{})
	transport.RegisterMessage(rebalanceReq{})
	transport.RegisterMessage(rebalanceResp{})
	transport.RegisterMessage(mergeInReq{})
	transport.RegisterMessage(joinData{})
	// The stale-epoch and wrong-owner rejections must keep their errors.Is
	// identity across a real network hop (their text is matched on the dial
	// side): a smart client distinguishes "re-resolve the route" from
	// transient failures by exactly these sentinels.
	transport.RegisterWireError(ErrStaleEpoch)
	transport.RegisterWireError(ErrNotOwner)
}
