package datastore

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/keyspace"
	"repro/internal/ring"
)

// CheckStorageBalance verifies the P-Ring Data Store invariant (Section 2.3)
// on a quiescent system: every serving peer holds between sf and 2·sf items,
// except a lone peer or a peer whose neighbours cannot absorb more.
func checkStorageBalance(h *harness, sf int) (under, over int) {
	serving := h.serving()
	if len(serving) <= 1 {
		return 0, 0
	}
	for _, st := range serving {
		n := st.ItemCount()
		if n < sf {
			under++
		}
		if n > 2*sf {
			over++
		}
	}
	return under, over
}

// After a large load the balancer must settle with no overfull peer and at
// most transiently underfull ones.
func TestStorageBalanceAfterLoad(t *testing.T) {
	h := newHarness(t, Config{}, ring.Config{})
	// Worst case: 80 items at storage factor 5 can occupy up to 16 peers
	// (a peer splits past 2·sf = 10 items); with fewer free peers the pool
	// can drain, leaving an overfull peer legitimately unable to split.
	first := h.boot(20)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	for i := 1; i <= 80; i++ {
		key := keyspace.Key(i * 50)
		inserted := false
		for attempt := 0; attempt < 400 && !inserted; attempt++ {
			addr := ownerOf(h, key)
			if addr == "" {
				time.Sleep(10 * time.Millisecond)
				continue
			}
			if err := first.InsertAt(ctx, addr, Item{Key: key}); err == nil {
				inserted = true
			} else {
				time.Sleep(10 * time.Millisecond)
			}
		}
		if !inserted {
			t.Fatalf("could not insert %d", key)
		}
	}
	settled := false
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		// Nudge: drive the balance check directly on overfull peers, so a
		// lost kick or a backed-off retry cannot stall the test.
		for _, st := range h.serving() {
			if st.ItemCount() > 10 {
				st.CheckBalance()
			}
		}
		_, over := checkStorageBalance(h, 5)
		if over == 0 && len(h.serving()) >= 5 {
			settled = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !settled {
		dumpBalance(t, h)
		t.Fatal("balance never settled")
	}
	if under, _ := checkStorageBalance(h, 5); under > 1 {
		t.Errorf("%d peers underfull after settling", under)
	}
}

// dumpBalance logs every peer's state, for wedge diagnostics.
func dumpBalance(t *testing.T, h *harness) {
	t.Helper()
	h.mu.Lock()
	defer h.mu.Unlock()
	for addr, st := range h.stores {
		rng, ok := st.Range()
		t.Logf("%s alive=%v state=%s range=%v(%v) items=%d free=%d",
			addr, h.net.Alive(addr), h.rings[addr].State(), rng, ok, st.ItemCount(), len(h.free))
	}
}

// A split must wait for an in-flight scan: the PrepareJoinData carve takes
// the range write lock, so a scan holding the read lock delays the hand-off
// and no item can vanish from under the scan (the split-side counterpart of
// TestScanRangeBlocksRedistribute).
func TestScanRangeBlocksSplitCarve(t *testing.T) {
	h := newHarness(t, Config{DisableMaintenance: true}, ring.Config{})
	first := h.boot(2)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	for i := 1; i <= 11; i++ {
		if err := first.InsertAt(ctx, first.Addr(), Item{Key: keyspace.Key(i * 10)}); err != nil {
			t.Fatal(err)
		}
	}

	// Slow scan over the full range.
	gate := make(chan struct{})
	var mu sync.Mutex
	var got []Item
	first.RegisterHandler("slow", func(items []Item, piece keyspace.Interval, param any) any {
		mu.Lock()
		got = append(got, items...)
		mu.Unlock()
		<-gate
		return param
	})
	if err := first.StartScan(ctx, first.Addr(), keyspace.ClosedInterval(10, 110), "slow", nil); err != nil {
		t.Fatal(err)
	}

	// Trigger the split while the scan handler is stalled: the ring insert
	// completes (PEPPER ack does not need the range lock), but the data
	// carve in PrepareJoinData must block until the scan releases.
	splitDone := make(chan error, 1)
	go func() { splitDone <- first.split() }()

	time.Sleep(100 * time.Millisecond)
	mu.Lock()
	n := len(got)
	mu.Unlock()
	if n != 11 {
		t.Fatalf("scan saw %d items before the split, want all 11", n)
	}
	select {
	case err := <-splitDone:
		// The split may legitimately finish only if the carve happened after
		// the handler ran — but the handler is still gated, so finishing now
		// means the carve did not wait.
		t.Fatalf("split completed while the scan held the range lock: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	select {
	case err := <-splitDone:
		if err != nil {
			t.Fatalf("split failed after scan release: %v", err)
		}
	case <-time.After(8 * time.Second):
		t.Fatal("split never completed")
	}
	if len(h.serving()) != 2 {
		t.Fatalf("serving peers = %d, want 2", len(h.serving()))
	}
}

// Concurrent scans in shared mode do not block each other.
func TestConcurrentScansShareLock(t *testing.T) {
	h := newHarness(t, Config{DisableMaintenance: true}, ring.Config{})
	first := h.boot(1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 1; i <= 5; i++ {
		if err := first.InsertAt(ctx, first.Addr(), Item{Key: keyspace.Key(i * 10)}); err != nil {
			t.Fatal(err)
		}
	}
	const scans = 6
	started := make(chan struct{}, scans)
	release := make(chan struct{})
	first.RegisterHandler("hold", func(items []Item, piece keyspace.Interval, param any) any {
		started <- struct{}{}
		<-release
		return param
	})
	for s := 0; s < scans; s++ {
		if err := first.StartScan(ctx, first.Addr(), keyspace.ClosedInterval(10, 50), "hold", s); err != nil {
			t.Fatal(err)
		}
	}
	// All handlers must be running simultaneously (shared read lock).
	deadline := time.After(5 * time.Second)
	for s := 0; s < scans; s++ {
		select {
		case <-started:
		case <-deadline:
			t.Fatalf("only %d of %d scans started concurrently", s, scans)
		}
	}
	close(release)
}
