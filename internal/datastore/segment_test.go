package datastore

import (
	"context"
	"testing"
	"time"

	"repro/internal/keyspace"
	"repro/internal/ring"
)

func TestScanSegmentServesValidatedPiece(t *testing.T) {
	h := newHarness(t, Config{DisableMaintenance: true}, ring.Config{})
	first := h.boot(1)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 1; i <= 5; i++ {
		if err := first.InsertAt(ctx, first.Addr(), Item{Key: keyspace.Key(i * 10)}); err != nil {
			t.Fatal(err)
		}
	}
	iv := keyspace.ClosedInterval(15, 45)
	res, err := first.ScanSegmentAsync(ctx, first.Addr(), iv, 15, 0).Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.NotOwner {
		t.Fatal("owner disclaimed its own cursor")
	}
	if !res.Done {
		t.Errorf("full-range owner did not finish the interval: %+v", res)
	}
	if res.Piece.Lb != 15 || res.Piece.Ub != 45 {
		t.Errorf("piece = %v, want [15, 45]", res.Piece)
	}
	if len(res.Items) != 3 {
		t.Errorf("segment found %d items, want 3 (20,30,40)", len(res.Items))
	}
	for i := 1; i < len(res.Items); i++ {
		if res.Items[i-1].Key >= res.Items[i].Key {
			t.Errorf("segment items not sorted: %v", res.Items)
		}
	}
	if !res.Range.IsFull() {
		t.Errorf("reported range = %v, want the full ring", res.Range)
	}
}

// A segment request whose cursor the target does not own must be rejected —
// the stale-route-hint case — not served with wrong data. The rejection is
// validated at the target exactly like Algorithm 5's continuation check.
func TestScanSegmentRejectsForeignCursor(t *testing.T) {
	h := newHarness(t, Config{DisableMaintenance: true}, ring.Config{})
	first := h.boot(1)
	first.mu.Lock()
	first.rng = keyspace.NewRange(100, 200)
	first.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	before := first.ScanAborts.Load()
	res, err := first.ScanSegmentAsync(ctx, first.Addr(), keyspace.ClosedInterval(300, 400), 300, 0).Result()
	if err != nil {
		t.Fatal(err)
	}
	if !res.NotOwner {
		t.Fatalf("foreign cursor was served: %+v", res)
	}
	if first.ScanAborts.Load() == before {
		t.Error("rejected segment not counted as a scan abort")
	}
}

// A piece must stop at the serving peer's range boundary and report the
// successor chain so the origin can pipeline the rest.
func TestScanSegmentClipsToRangeAndReportsChain(t *testing.T) {
	h := newHarness(t, Config{DisableMaintenance: true}, ring.Config{})
	first := h.boot(1)
	first.mu.Lock()
	first.rng = keyspace.NewRange(900, 50) // wrapped: owns (900, max] and [0, 50]
	first.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := first.ScanSegmentAsync(ctx, first.Addr(), keyspace.ClosedInterval(10, 400), 10, 0).Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.NotOwner {
		t.Fatal("owner disclaimed cursor 10")
	}
	if res.Done {
		t.Error("segment claimed to finish an interval extending past its range")
	}
	if res.Piece.Lb != 10 || res.Piece.Ub != 50 {
		t.Errorf("piece = %v, want [10, 50] (clipped at range end)", res.Piece)
	}
	// The single ring member's successor is itself; what matters is that the
	// chain metadata travels at all.
	if res.Chain == nil {
		t.Log("note: single-peer ring reported no successors (acceptable)")
	}
}
