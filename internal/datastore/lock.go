package datastore

import (
	"context"
	"sync"
)

// RangeLock is the read/write lock protecting a peer's Data Store range, the
// concurrency primitive behind scanRange (Section 4.3.2): scans hold the
// read lock while their handler runs and release it only after the next peer
// has locked its own range (hand-over-hand), while splits, merges and
// redistributions take the write lock.
//
// Unlike sync.RWMutex it supports context-bounded acquisition, which the
// scan path needs to convert a lock conflict that lasts too long into a scan
// abort (the query layer retries) instead of a potential distributed
// deadlock: a scan crossing a two-peer ring in one direction can otherwise
// cycle with a merge crossing it in the other.
type RangeLock struct {
	mu      sync.Mutex
	readers int
	writer  bool
	notify  chan struct{}
}

// notifyLocked returns the channel closed at the next state change.
func (l *RangeLock) notifyLocked() chan struct{} {
	if l.notify == nil {
		l.notify = make(chan struct{})
	}
	return l.notify
}

// wakeLocked broadcasts a state change to all waiters.
func (l *RangeLock) wakeLocked() {
	if l.notify != nil {
		close(l.notify)
		l.notify = nil
	}
}

// RLock acquires the lock in shared mode, failing if ctx expires first.
func (l *RangeLock) RLock(ctx context.Context) error {
	l.mu.Lock()
	for l.writer {
		ch := l.notifyLocked()
		l.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
		l.mu.Lock()
	}
	l.readers++
	l.mu.Unlock()
	return nil
}

// RUnlock releases a shared hold.
func (l *RangeLock) RUnlock() {
	l.mu.Lock()
	if l.readers <= 0 {
		l.mu.Unlock()
		panic("datastore: RUnlock without RLock")
	}
	l.readers--
	if l.readers == 0 {
		l.wakeLocked()
	}
	l.mu.Unlock()
}

// Lock acquires the lock exclusively, failing if ctx expires first.
func (l *RangeLock) Lock(ctx context.Context) error {
	l.mu.Lock()
	for l.writer || l.readers > 0 {
		ch := l.notifyLocked()
		l.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
		l.mu.Lock()
	}
	l.writer = true
	l.mu.Unlock()
	return nil
}

// Unlock releases an exclusive hold.
func (l *RangeLock) Unlock() {
	l.mu.Lock()
	if !l.writer {
		l.mu.Unlock()
		panic("datastore: Unlock without Lock")
	}
	l.writer = false
	l.wakeLocked()
	l.mu.Unlock()
}
