package datastore

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/keyspace"
	"repro/internal/ring"
)

// Fencing at the mutation handlers: a request stamped with any epoch other
// than the serving peer's current one fails with the typed ErrStaleEpoch and
// leaves the store untouched; epoch 0 (unfenced) and the current epoch are
// accepted.
func TestMutationEpochFencing(t *testing.T) {
	h := newHarness(t, Config{}, ring.Config{})
	first := h.boot(1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	epoch := first.Epoch()
	if epoch == 0 {
		t.Fatalf("first peer has epoch 0, want a claimed epoch")
	}

	if err := first.InsertAtFenced(ctx, first.Addr(), Item{Key: 10}, epoch); err != nil {
		t.Fatalf("current-epoch insert: %v", err)
	}
	if err := first.InsertAtFenced(ctx, first.Addr(), Item{Key: 20}, 0); err != nil {
		t.Fatalf("unfenced insert: %v", err)
	}
	if err := first.InsertAtFenced(ctx, first.Addr(), Item{Key: 30}, epoch+7); err == nil {
		t.Fatal("higher-epoch insert accepted, want ErrStaleEpoch")
	} else if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("higher-epoch insert error = %v, want ErrStaleEpoch", err)
	}
	if epoch > 1 {
		if err := first.InsertAtFenced(ctx, first.Addr(), Item{Key: 30}, epoch-1); !errors.Is(err, ErrStaleEpoch) {
			t.Fatalf("lower-epoch insert error = %v, want ErrStaleEpoch", err)
		}
	}
	if first.ItemCount() != 2 {
		t.Fatalf("item count = %d after fenced rejections, want 2", first.ItemCount())
	}

	if _, err := first.DeleteAtFenced(ctx, first.Addr(), 10, epoch+1); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale delete error = %v, want ErrStaleEpoch", err)
	}
	if found, err := first.DeleteAtFenced(ctx, first.Addr(), 10, epoch); err != nil || !found {
		t.Fatalf("current-epoch delete = (%v, %v), want (true, nil)", found, err)
	}
	if got := first.StaleEpochRejects.Load(); got < 2 {
		t.Fatalf("StaleEpochRejects = %d, want >= 2", got)
	}
}

// A fenced segment scan is answered with a StaleEpoch verdict (one probe,
// never a wrong piece) when the epoch mismatches, and reports the serving
// epoch so the caller can re-learn.
func TestScanSegmentEpochFencing(t *testing.T) {
	h := newHarness(t, Config{}, ring.Config{})
	first := h.boot(1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	for i := 1; i <= 3; i++ {
		if err := first.InsertAt(ctx, first.Addr(), Item{Key: keyspace.Key(i * 10)}); err != nil {
			t.Fatal(err)
		}
	}
	epoch := first.Epoch()
	iv := keyspace.ClosedInterval(0, 100)

	res, err := first.ScanSegmentAsync(ctx, first.Addr(), iv, 0, epoch).Result()
	if err != nil || res.NotOwner || res.StaleEpoch {
		t.Fatalf("current-epoch segment = %+v, %v", res, err)
	}
	if res.Epoch != epoch {
		t.Fatalf("segment epoch = %d, want %d", res.Epoch, epoch)
	}
	if len(res.Items) != 3 {
		t.Fatalf("segment items = %d, want 3", len(res.Items))
	}

	res, err = first.ScanSegmentAsync(ctx, first.Addr(), iv, 0, epoch+3).Result()
	if err != nil {
		t.Fatalf("stale-epoch segment errored: %v", err)
	}
	if !res.StaleEpoch || len(res.Items) != 0 {
		t.Fatalf("stale-epoch segment = %+v, want StaleEpoch verdict with no items", res)
	}
	if res.Epoch != epoch {
		t.Fatalf("stale verdict reports epoch %d, want serving epoch %d", res.Epoch, epoch)
	}
}

// Epochs advance across the maintenance protocols: a split hands the new
// peer a strictly higher epoch than the pre-split claim and bumps the
// splitter too, and the journal's claim audit holds throughout.
func TestSplitBumpsEpochs(t *testing.T) {
	h := newHarness(t, Config{}, ring.Config{})
	first := h.boot(2)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	before := first.Epoch()
	for i := 1; i <= 12; i++ {
		if err := first.InsertAt(ctx, first.Addr(), Item{Key: keyspace.Key(i * 10)}); err != nil {
			t.Fatal(err)
		}
	}
	hWaitUntil(t, 10*time.Second, "split", func() bool { return len(h.serving()) == 2 })

	for _, st := range h.serving() {
		if st.Epoch() <= before {
			t.Errorf("peer %s epoch = %d after split, want > %d", st.Addr(), st.Epoch(), before)
		}
	}
	if v := h.log.CheckEpochAudit(); len(v) != 0 {
		for _, viol := range v {
			t.Errorf("epoch audit: %v", viol)
		}
	}
}

// StepDown resigns a deposed incarnation: the range and items drop (journaled
// as removals), the peer departs, and only a strictly higher epoch can force
// it.
func TestStepDownResignsRange(t *testing.T) {
	h := newHarness(t, Config{}, ring.Config{})
	first := h.boot(1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	if err := first.InsertAt(ctx, first.Addr(), Item{Key: 50}); err != nil {
		t.Fatal(err)
	}
	epoch := first.Epoch()

	first.StepDown(epoch) // not strictly higher: must refuse
	if _, ok := first.Range(); !ok {
		t.Fatal("StepDown at own epoch resigned the range")
	}

	first.StepDown(epoch + 1)
	if _, ok := first.Range(); ok {
		t.Fatal("StepDown with a higher epoch left the range in place")
	}
	if first.ItemCount() != 0 {
		t.Fatalf("deposed peer still holds %d items", first.ItemCount())
	}
	if got := first.StepDowns.Load(); got != 1 {
		t.Fatalf("StepDowns = %d, want 1", got)
	}
	if h.rings[first.Addr()].State() != ring.StateFree {
		t.Fatalf("deposed peer ring state = %s, want FREE (departed)", h.rings[first.Addr()].State())
	}
}
