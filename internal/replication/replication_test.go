package replication

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/datastore"
	"repro/internal/history"
	"repro/internal/keyspace"
	"repro/internal/ring"
	"repro/internal/simnet"
)

// repHarness wires ring + datastore + replication manager stacks.
type repHarness struct {
	t      *testing.T
	net    *simnet.Network
	log    *history.Log
	mu     sync.Mutex
	nextID int
	mgrs   map[simnet.Addr]*Manager
	stores map[simnet.Addr]*datastore.Store
	rings  map[simnet.Addr]*ring.Peer
}

func newRepHarness(t *testing.T) *repHarness {
	return newRepHarnessNet(t, simnet.Config{DeadCallDelay: time.Millisecond, Seed: 5})
}

// newRepHarnessNet is newRepHarness over a custom network configuration
// (strict serialization, chunk sizing, fault injection).
func newRepHarnessNet(t *testing.T, netCfg simnet.Config) *repHarness {
	return &repHarness{
		t:      t,
		net:    simnet.New(netCfg),
		log:    history.NewLog(),
		mgrs:   make(map[simnet.Addr]*Manager),
		stores: make(map[simnet.Addr]*datastore.Store),
		rings:  make(map[simnet.Addr]*ring.Peer),
	}
}

type noPool struct{}

func (noPool) Acquire() (simnet.Addr, error) { return "", fmt.Errorf("no pool") }
func (noPool) Release(simnet.Addr)           {}

func (h *repHarness) addPeer(repCfg Config) (*Manager, *datastore.Store, *ring.Peer) {
	h.t.Helper()
	h.mu.Lock()
	h.nextID++
	addr := simnet.Addr(fmt.Sprintf("r%d", h.nextID))
	h.mu.Unlock()
	mux := simnet.NewMux()
	var st *datastore.Store
	cb := ring.Callbacks{
		PrepareJoinData: func(j ring.Node) any { return st.PrepareJoinData(j) },
		OnJoined:        func(self, pred ring.Node, data any) { st.OnJoined(self, pred, data) },
		OnPredChanged:   func(n, p ring.Node, f bool) { st.OnPredChanged(n, p, f) },
	}
	rCfg := ring.Config{
		SuccListLen: 4,
		StabPeriod:  5 * time.Millisecond,
		PingPeriod:  5 * time.Millisecond,
		CallTimeout: 40 * time.Millisecond,
		AckTimeout:  3 * time.Second,
	}
	rp := ring.NewPeer(h.net, mux, rCfg, ring.Node{Addr: addr}, cb)
	st = datastore.New(h.net, mux, rp, h.log, datastore.Config{
		StorageFactor:      100, // no automatic splits in these tests
		CheckPeriod:        20 * time.Millisecond,
		CallTimeout:        40 * time.Millisecond,
		MaintenanceTimeout: 3 * time.Second,
		DisableMaintenance: true,
	})
	m := New(h.net, mux, rp, st, repCfg)
	st.SetDeps(m, noPool{})
	if err := h.net.Register(addr, mux.Dispatch); err != nil {
		h.t.Fatal(err)
	}
	h.mu.Lock()
	h.mgrs[addr] = m
	h.stores[addr] = st
	h.rings[addr] = rp
	h.mu.Unlock()
	h.t.Cleanup(func() { rp.Stop(); st.Stop(); m.Stop() })
	return m, st, rp
}

// bootRing builds an n-peer ring with evenly assigned ranges by driving the
// ring join protocol directly, assigning each peer an explicit value.
func (h *repHarness) bootRing(n int, repCfg Config) ([]*Manager, []*datastore.Store, []*ring.Peer) {
	h.t.Helper()
	mgrs := make([]*Manager, n)
	stores := make([]*datastore.Store, n)
	rings := make([]*ring.Peer, n)
	for i := 0; i < n; i++ {
		mgrs[i], stores[i], rings[i] = h.addPeer(repCfg)
	}
	if err := rings[0].InitRing(); err != nil {
		h.t.Fatal(err)
	}
	stores[0].InitFirstPeer()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	// Join each next peer by splitting the previous one's range: insert items
	// is overkill here; instead use the ring join with explicit values by
	// lowering the splitter's value manually via the datastore split payload.
	// Simplest: give every peer items through the first peer and split by
	// hand is complex — instead we drive InsertSucc directly and install
	// ranges through the join payload produced by PrepareJoinData after
	// setting values. For an even ring over [0, n*100):
	for i := 1; i < n; i++ {
		// peer i-1 currently owns up to its value; lower it and hand the top
		// to peer i, exactly like a split.
		prev := rings[i-1]
		oldVal := prev.Self().Val
		newVal := keyspace.Key(uint64(i) * 100)
		_ = oldVal
		prev.SetVal(newVal)
		if err := prev.InsertSucc(ctx, ring.Node{Addr: rings[i].Self().Addr, Val: oldVal}); err != nil {
			h.t.Fatalf("join %d: %v", i, err)
		}
	}
	return mgrs, stores, rings
}

func waitRep(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(3 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestRefreshPlacesKReplicas(t *testing.T) {
	h := newRepHarness(t)
	cfg := Config{Factor: 2, RefreshPeriod: 5 * time.Millisecond, CallTimeout: 40 * time.Millisecond, DisableAutoRefresh: true}
	mgrs, stores, rings := h.bootRing(5, cfg)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Give peer 0 some items (its range after the joins is (400, 100] —
	// the wrap; use keys 50, 60 inside it).
	for _, k := range []uint64{50, 60} {
		if err := stores[0].InsertAt(ctx, stores[0].Addr(), datastore.Item{Key: keyspace.Key(k)}); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for full stabilization so successors are known.
	waitRep(t, 5*time.Second, "successors", func() bool {
		return len(rings[0].Successors()) >= 2
	})
	mgrs[0].RefreshOnce()

	// The 2 successors of peer 0 must now hold replicas of both items.
	succs := rings[0].Successors()[:2]
	for _, s := range succs {
		m := h.mgrs[s.Addr]
		if got := m.ReplicaCount(); got != 2 {
			t.Errorf("replica count at %s = %d, want 2", s.Addr, got)
		}
	}
	// A peer further along must hold nothing.
	if len(rings[0].Successors()) > 2 {
		far := rings[0].Successors()[2]
		if got := h.mgrs[far.Addr].ReplicaCount(); got != 0 {
			t.Errorf("replica count beyond k = %d, want 0", got)
		}
	}
}

func TestRefreshReconcilesDeletions(t *testing.T) {
	h := newRepHarness(t)
	cfg := Config{Factor: 2, DisableAutoRefresh: true, CallTimeout: 40 * time.Millisecond}
	mgrs, stores, rings := h.bootRing(3, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	for _, k := range []uint64{50, 60} {
		if err := stores[0].InsertAt(ctx, stores[0].Addr(), datastore.Item{Key: keyspace.Key(k)}); err != nil {
			t.Fatal(err)
		}
	}
	waitRep(t, 5*time.Second, "successors", func() bool { return len(rings[0].Successors()) >= 2 })
	mgrs[0].RefreshOnce()
	succ := rings[0].Successors()[0]
	if got := h.mgrs[succ.Addr].ReplicaCount(); got != 2 {
		t.Fatalf("replicas = %d, want 2", got)
	}

	if _, err := stores[0].DeleteAt(ctx, stores[0].Addr(), 50); err != nil {
		t.Fatal(err)
	}
	mgrs[0].RefreshOnce()
	if got := h.mgrs[succ.Addr].ReplicaCount(); got != 1 {
		t.Errorf("replicas after delete+refresh = %d, want 1", got)
	}
}

func TestReviveReturnsRangeSubset(t *testing.T) {
	h := newRepHarness(t)
	m, _, _ := h.addPeer(Config{Factor: 2, DisableAutoRefresh: true})
	m.mu.Lock()
	m.replicas[10] = datastore.Item{Key: 10}
	m.replicas[20] = datastore.Item{Key: 20}
	m.replicas[30] = datastore.Item{Key: 30}
	m.mu.Unlock()
	got := m.Revive(keyspace.NewRange(10, 25))
	if len(got) != 1 || got[0].Key != 20 {
		t.Errorf("Revive = %v, want just key 20", got)
	}
}

// Section 5.2 / Figures 17–18: with the naive replication manager, a merge
// departure followed by one failure loses an item; with the
// replicate-to-additional-hop rule the item survives.
func TestExtraHopPreservesItemAvailability(t *testing.T) {
	run := func(naive bool) int {
		h := newRepHarness(t)
		cfg := Config{Factor: 1, Naive: naive, DisableAutoRefresh: true, CallTimeout: 40 * time.Millisecond}
		mgrs, stores, rings := h.bootRing(4, cfg)
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()

		// Peer 1 holds one item; its only replica sits at peer 2 (k = 1).
		if err := stores[1].InsertAt(ctx, stores[1].Addr(), datastore.Item{Key: 150}); err != nil {
			t.Fatal(err)
		}
		waitRep(t, 5*time.Second, "successors", func() bool {
			return len(rings[1].Successors()) >= 2 && len(rings[2].Successors()) >= 2
		})
		mgrs[1].RefreshOnce()

		// Peer 1 merges away: pre-departure replication, graceful leave,
		// Data Store hand-off to peer 2 (mirroring mergeIntoSuccessor).
		if err := mgrs[1].BeforeLeave(ctx); err != nil {
			t.Fatal(err)
		}
		if err := rings[1].Leave(ctx); err != nil {
			t.Fatal(err)
		}
		// Hand items to peer 2 out of band (the datastore would do this).
		items := stores[1].LocalItems()
		rings[1].Depart()
		for _, it := range items {
			h.mu.Lock()
			m2 := h.mgrs[stores[2].Addr()]
			h.mu.Unlock()
			_ = m2 // peer 2 now serves the item (simulate by direct insert)
			if err := stores[2].InsertAt(ctx, stores[2].Addr(), datastore.Item{Key: it.Key}); err != nil {
				// Peer 2 may not own the key's range in this hand-driven
				// setup; store it as a replica instead.
				m2.mu.Lock()
				m2.replicas[it.Key] = it
				m2.mu.Unlock()
			}
		}

		// The single failure: peer 2 dies, taking the merged item (and with
		// the naive manager, its only remaining copy).
		h.net.Kill(stores[2].Addr())

		// Count surviving copies of key 150 anywhere.
		copies := 0
		h.mu.Lock()
		defer h.mu.Unlock()
		for addr, m := range h.mgrs {
			if !h.net.Alive(addr) {
				continue
			}
			for _, it := range m.HeldReplicas() {
				if it.Key == 150 {
					copies++
				}
			}
			for _, it := range h.stores[addr].LocalItems() {
				if it.Key == 150 {
					copies++
				}
			}
		}
		return copies
	}

	if got := run(true); got != 0 {
		t.Errorf("naive merge+failure left %d copies; the Figure 17 scenario expects total loss", got)
	}
	if got := run(false); got == 0 {
		t.Error("extra-hop replication lost the item; Figure 18 expects survival")
	}
}

func TestPullRangeCollectsFromSuccessors(t *testing.T) {
	h := newRepHarness(t)
	cfg := Config{Factor: 2, DisableAutoRefresh: true, CallTimeout: 40 * time.Millisecond}
	mgrs, stores, rings := h.bootRing(4, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Put replicas of range (100, 200] items at peers 2 and 3 (successors of
	// peer 1).
	for _, idx := range []int{2, 3} {
		m := mgrs[idx]
		m.mu.Lock()
		m.replicas[150] = datastore.Item{Key: 150, Payload: "x"}
		m.mu.Unlock()
	}
	// Also a live item at peer 2 inside the range — PullRange includes local
	// items of successors.
	_ = stores
	waitRep(t, 5*time.Second, "successors", func() bool { return len(rings[1].Successors()) >= 2 })

	got, _ := mgrs[1].PullRange(ctx, keyspace.NewRange(100, 200))
	if len(got) != 1 || got[0].Key != 150 {
		t.Errorf("PullRange = %v, want one item with key 150", got)
	}
}

func TestItemsChangedKicksRefresh(t *testing.T) {
	h := newRepHarness(t)
	cfg := Config{Factor: 1, RefreshPeriod: time.Hour, CallTimeout: 40 * time.Millisecond} // only kicks trigger refresh
	mgrs, stores, rings := h.bootRing(2, cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	mgrs[0].Start()

	waitRep(t, 5*time.Second, "successors", func() bool { return len(rings[0].Successors()) >= 1 })
	if err := stores[0].InsertAt(ctx, stores[0].Addr(), datastore.Item{Key: 50}); err != nil {
		t.Fatal(err)
	}
	// InsertAt triggers ItemsChanged via the datastore; the kick must cause a
	// refresh despite the hour-long period.
	succ := rings[0].Successors()[0]
	waitRep(t, 5*time.Second, "kicked refresh", func() bool {
		return h.mgrs[succ.Addr].ReplicaCount() == 1
	})
}
