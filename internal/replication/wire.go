package replication

import "repro/internal/transport"

// Replication Manager wire types; item and range types are registered by the
// datastore and keyspace owners.
func init() {
	transport.RegisterMessage(pushMsg{})
	transport.RegisterMessage(pushResp{})
	transport.RegisterMessage(pullReq{})
	transport.RegisterMessage(pullResp{})
	transport.RegisterMessage(replicaScanReq{})
}
