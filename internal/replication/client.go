package replication

import (
	"context"
	"fmt"

	"repro/internal/datastore"
	"repro/internal/keyspace"
	"repro/internal/transport"
)

// ClientReplicaItems is the dial-side form of the replica-read fallback: it
// fetches the items in iv visible at the replica holder addr, sent from an
// arbitrary client address instead of a peer's ring address. epoch stamps
// the request with the believed primary's ownership epoch (0 = unfenced); a
// holder that has seen a higher epoch asserted over the interval refuses
// with ErrStaleEpoch rather than serve for a deposed chain. Replica reads
// are unjournaled — they may lag the primary by up to one replication
// refresh, and that bounded staleness is part of the client contract.
func ClientReplicaItems(ctx context.Context, net transport.Transport, from, holder transport.Addr, iv keyspace.Interval, epoch uint64) ([]datastore.Item, error) {
	resp, err := net.Call(ctx, from, holder, methodScan, replicaScanReq{Iv: iv, Epoch: epoch})
	if err != nil {
		return nil, err
	}
	items, ok := resp.([]datastore.Item)
	if !ok {
		return nil, fmt.Errorf("replication: bad replica scan response %T", resp)
	}
	return items, nil
}
