package replication

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/datastore"
	"repro/internal/history"
	"repro/internal/keyspace"
	"repro/internal/ring"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/transport/tcp"
)

// The chunked streaming transfer under the replication protocol itself:
// ranges bigger than one transport frame replicate correctly, and a transfer
// that loses a chunk mid-stream leaves the receiving replica store provably
// unchanged (the atomic-commit property of ISSUE 3 / acceptance criteria).

// TestPushStreamsOversizedRangeStrict replicates a range whose encoding
// exceeds transport.MaxFrameSize under strict serialization: before chunked
// streaming this exact push died with ErrFrameTooLarge at the frame boundary.
func TestPushStreamsOversizedRangeStrict(t *testing.T) {
	if testing.Short() {
		t.Skip("replicates >17 MiB per push; exercised in the full suite")
	}
	h := newRepHarnessNet(t, simnet.Config{DeadCallDelay: time.Millisecond, Seed: 5, StrictSerialization: true})
	cfg := Config{Factor: 1, DisableAutoRefresh: true, CallTimeout: 30 * time.Second}
	mgrs, stores, rings := h.bootRing(2, cfg)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	// 18 items of 1 MiB each: the push message encodes past the 16 MiB frame
	// limit, so it must travel as a chunked stream.
	payload := strings.Repeat("s", 1<<20)
	const items = 18
	for i := 0; i < items; i++ {
		it := datastore.Item{Key: keyspace.Key(10 + uint64(i)), Payload: payload}
		if err := stores[0].InsertAt(ctx, stores[0].Addr(), it); err != nil {
			t.Fatal(err)
		}
	}
	waitRep(t, 5*time.Second, "successors", func() bool { return len(rings[0].Successors()) >= 1 })
	mgrs[0].RefreshOnce()

	succ := rings[0].Successors()[0]
	if got := h.mgrs[succ.Addr].ReplicaCount(); got != items {
		t.Fatalf("replica count after oversized push = %d, want %d", got, items)
	}
	for _, it := range h.mgrs[succ.Addr].HeldReplicas() {
		if len(it.Payload) != len(payload) {
			t.Fatalf("replica %d payload truncated to %d bytes", it.Key, len(it.Payload))
		}
	}
	if serr := h.net.StrictErr(); serr != nil {
		t.Fatalf("StrictErr = %v", serr)
	}
	if st := h.net.Stats(); st.Chunks < items {
		t.Fatalf("Chunks = %d, want a chunked transfer (>= %d)", st.Chunks, items)
	}

	// The pull direction: a tiny pull request answered with the same
	// oversized range must cross strict simnet too (the response is not
	// frame-bounded — real transports chunk it back).
	ctx2, cancel2 := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel2()
	resp, err := transport.CallBulk(h.net, ctx2, stores[0].Addr(), succ.Addr, methodPull, pullReq{Range: keyspace.NewRange(0, 100)})
	if err != nil {
		t.Fatalf("oversized pull: %v", err)
	}
	pulled, ok := resp.(pullResp)
	if !ok {
		t.Fatalf("pull response type %T", resp)
	}
	if len(pulled.Items) != items {
		t.Fatalf("pulled %d items, want %d", len(pulled.Items), items)
	}
}

// TestChunkDropLeavesReplicaRangeUnchanged injects a fault that drops the
// Nth chunk of every push and proves the receiver's replica store is
// bit-for-bit unchanged: no pushed item appears, and a stale replica that a
// successful push would have reconciled away is still there. Disarming the
// fault lets the identical refresh commit.
func TestChunkDropLeavesReplicaRangeUnchanged(t *testing.T) {
	var arm atomic.Bool
	netCfg := simnet.Config{
		DeadCallDelay: time.Millisecond,
		Seed:          5,
		ChunkBytes:    4 << 10,
		ChunkFault: func(_ simnet.Addr, method string, seq int) bool {
			return arm.Load() && method == methodPush && seq == 3
		},
	}
	h := newRepHarnessNet(t, netCfg)
	cfg := Config{Factor: 1, DisableAutoRefresh: true, CallTimeout: 10 * time.Second}
	mgrs, stores, rings := h.bootRing(2, cfg)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	payload := strings.Repeat("p", 3<<10) // ~3 KiB items, ~4 KiB chunks: several chunks per push
	const items = 8
	for i := 0; i < items; i++ {
		it := datastore.Item{Key: keyspace.Key(10 + uint64(i)), Payload: payload}
		if err := stores[0].InsertAt(ctx, stores[0].Addr(), it); err != nil {
			t.Fatal(err)
		}
	}
	waitRep(t, 5*time.Second, "successors", func() bool { return len(rings[0].Successors()) >= 1 })
	succ := rings[0].Successors()[0]
	rcv := h.mgrs[succ.Addr]

	// Seed a stale replica inside the origin's range (0, 100], attributed to
	// the origin: a push that commits reconciles it away (the origin holds no
	// item at key 90). If the dropped-chunk transfer were applied at all,
	// this replica would vanish.
	staleMsg := pushMsg{
		From:  rings[0].Self(),
		Range: keyspace.NewRange(0, 100),
		Items: []datastore.Item{{Key: 90, Payload: "stale"}},
	}
	if _, err := rcv.handlePush(rings[0].Self().Addr, methodPush, staleMsg); err != nil {
		t.Fatal(err)
	}
	if rcv.ReplicaCount() != 1 {
		t.Fatalf("seeded replica count = %d, want 1", rcv.ReplicaCount())
	}

	arm.Store(true)
	mgrs[0].RefreshOnce() // every push loses its 4th chunk

	if got := rcv.ReplicaCount(); got != 1 {
		t.Fatalf("replica count after dropped transfer = %d, want 1 (unchanged)", got)
	}
	if reps := rcv.HeldReplicas(); len(reps) != 1 || reps[0].Key != 90 || reps[0].Payload != "stale" {
		t.Fatalf("stale replica mutated by a dropped transfer: %+v", reps)
	}
	if st := h.net.Stats(); st.ChunkDrops == 0 {
		t.Fatal("fault injection never fired; the test proved nothing")
	}

	// Disarm: the identical refresh now commits atomically — all items land
	// and the stale replica reconciles away in the same commit.
	arm.Store(false)
	mgrs[0].RefreshOnce()
	if got := rcv.ReplicaCount(); got != items {
		t.Fatalf("replica count after committed refresh = %d, want %d", got, items)
	}
	for _, it := range rcv.HeldReplicas() {
		if it.Key == 90 {
			t.Fatal("stale replica survived a committed reconciling push")
		}
	}
}

// TestPushOversizedRangeOverTCP pushes a >16 MiB replica range end to end
// over real TCP loopback: the wire-level proof that the chunked stream, not
// a single bounded frame, carries bulk state between OS processes.
func TestPushOversizedRangeOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("moves >17 MiB over loopback TCP; exercised in the full suite")
	}
	tr := tcp.New(tcp.Config{DialTimeout: 2 * time.Second, CallTimeout: 60 * time.Second})
	t.Cleanup(func() { tr.Close() })

	// Receiver: a full replication stack on a TCP endpoint.
	log := history.NewLog()
	mux := transport.NewMux()
	rCfg := ring.Config{SuccListLen: 4, StabPeriod: time.Hour, PingPeriod: time.Hour, CallTimeout: 2 * time.Second, AckTimeout: 10 * time.Second}
	rp := ring.NewPeer(tr, mux, rCfg, ring.Node{Addr: "rcv"}, ring.Callbacks{})
	st := datastore.New(tr, mux, rp, log, datastore.Config{DisableMaintenance: true})
	rcv := New(tr, mux, rp, st, Config{DisableAutoRefresh: true})
	t.Cleanup(func() { rp.Stop(); st.Stop(); rcv.Stop() })
	rcvAddr, err := tr.Listen("127.0.0.1:0", mux.Dispatch)
	if err != nil {
		t.Fatal(err)
	}
	sndAddr, err := tr.Listen("127.0.0.1:0", func(transport.Addr, string, any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}

	payload := strings.Repeat("t", 1<<20)
	const items = 18 // ~18 MiB encoded: over the 16 MiB frame limit
	msg := pushMsg{From: ring.Node{Addr: sndAddr, Val: 100}, Range: keyspace.NewRange(100, 300)}
	for i := 0; i < items; i++ {
		msg.Items = append(msg.Items, datastore.Item{Key: keyspace.Key(110 + uint64(i)), Payload: payload})
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	resp, err := transport.CallBulk(tr, ctx, sndAddr, rcvAddr, methodPush, msg)
	if err != nil {
		t.Fatalf("oversized push over TCP: %v", err)
	}
	if pr, ok := resp.(pushResp); !ok || pr.Deposed {
		t.Fatalf("push response = %v, want an accepting pushResp", resp)
	}
	if got := rcv.ReplicaCount(); got != items {
		t.Fatalf("replica count = %d, want %d", got, items)
	}
	for _, it := range rcv.HeldReplicas() {
		if len(it.Payload) != len(payload) {
			t.Fatalf("replica %d payload truncated to %d bytes", it.Key, len(it.Payload))
		}
	}

	// Pull the same >16 MiB range back with a tiny request: the response
	// chunks over the wire (kindRespChunk) — the revival path an orphaned
	// peer depends on.
	resp, err = transport.CallBulk(tr, ctx, sndAddr, rcvAddr, methodPull, pullReq{Range: keyspace.NewRange(100, 300)})
	if err != nil {
		t.Fatalf("oversized pull over TCP: %v", err)
	}
	pulled, ok := resp.(pullResp)
	if !ok {
		t.Fatalf("pull response type %T", resp)
	}
	if len(pulled.Items) != items {
		t.Fatalf("pulled %d items, want %d", len(pulled.Items), items)
	}
	for _, it := range pulled.Items {
		if len(it.Payload) != len(payload) {
			t.Fatalf("pulled item %d truncated to %d bytes", it.Key, len(it.Payload))
		}
	}
}
