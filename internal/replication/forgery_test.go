package replication

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/datastore"
	"repro/internal/history"
	"repro/internal/keyspace"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// wireAuth gives every manager in the harness a real identity and a keyring
// pre-pinned with every peer's genuine public key (what a converged TOFU
// cluster looks like), journaling rejects into the harness log. It returns
// the per-peer identities so a test can sign genuine and forged adverts.
func wireAuth(t *testing.T, h *repHarness) map[simnet.Addr]*auth.Identity {
	t.Helper()
	ids := make(map[simnet.Addr]*auth.Identity)
	kr := auth.NewKeyring()
	for addr := range h.mgrs {
		id, err := auth.NewIdentity()
		if err != nil {
			t.Fatal(err)
		}
		ids[addr] = id
		kr.Pin(string(addr), id.Public())
	}
	for addr, m := range h.mgrs {
		addr, id := addr, ids[addr]
		m.SignAdvert = func(rng keyspace.Range, epoch uint64) auth.AdvertSig {
			return id.SignAdvert(string(addr), rng.Lo, rng.Hi, epoch)
		}
		m.VerifyAdvert = func(owner transport.Addr, rng keyspace.Range, epoch uint64, sig auth.AdvertSig) error {
			return kr.VerifyAdvert(string(owner), rng.Lo, rng.Hi, epoch, sig)
		}
		m.OnSigReject = func(owner transport.Addr, rng keyspace.Range, epoch uint64) {
			h.log.SigRejected(string(addr), string(owner), rng, epoch)
		}
	}
	return ids
}

// A forged higher-epoch push advert — correctly signed, but with a key other
// than the one pinned for its claimed owner — cannot depose the real owner:
// the receiver refuses it before any epoch bookkeeping, journals the refusal,
// and the claim and lease audits stay clean.
func TestForgedPushAdvertCannotDepose(t *testing.T) {
	h := newRepHarness(t)
	mgrs, stores, rings := h.bootRing(3, Config{Factor: 2, DisableAutoRefresh: true})
	wireAuth(t, h)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	waitRep(t, 5*time.Second, "successors", func() bool { return len(rings[0].Successors()) >= 2 })
	if err := stores[0].InsertAt(ctx, stores[0].Addr(), datastore.Item{Key: 50}); err != nil {
		t.Fatal(err)
	}
	mgrs[0].RefreshOnce() // genuine signed push: must still pass verification

	rng0, epoch0, _ := stores[0].RangeEpoch()
	holder := rings[0].Successors()[0].Addr
	holderMgr := h.mgrs[holder]
	iv := keyspace.ClosedInterval(40, 60)
	if items, err := mgrs[0].ReplicaItems(ctx, holder, iv, epoch0); err != nil || len(items) != 1 {
		t.Fatalf("signed refresh did not install replicas: (%v, %v)", items, err)
	}

	// The forgery: an advert claiming the victim's range at a higher epoch in
	// an established member's name — the deposition attack the signature
	// exists to stop. It is validly signed, just not by the key pinned for
	// the claimed owner.
	claimant := rings[0].Successors()[1] // the peer whose name the forger abuses
	forger, err := auth.NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	forged := pushMsg{
		From:  claimant,
		Range: rng0,
		Epoch: epoch0 + 1,
		Sig:   forger.SignAdvert(string(claimant.Addr), rng0.Lo, rng0.Hi, epoch0+1),
	}
	if _, err := h.net.Call(ctx, claimant.Addr, holder, methodPush, forged); err == nil {
		t.Fatal("forged higher-epoch push was accepted")
	} else if !errors.Is(err, auth.ErrBadSignature) {
		t.Fatalf("forged push: err = %v, want ErrBadSignature", err)
	}

	// An unsigned higher-epoch push is refused the same way on an
	// authenticated cluster.
	unsigned := pushMsg{From: claimant, Range: rng0, Epoch: epoch0 + 2}
	if _, err := h.net.Call(ctx, claimant.Addr, holder, methodPush, unsigned); !errors.Is(err, auth.ErrBadSignature) {
		t.Fatalf("unsigned push: err = %v, want ErrBadSignature", err)
	}

	if got := holderMgr.SigRejects.Load(); got != 2 {
		t.Fatalf("holder SigRejects = %d, want 2", got)
	}

	// The real owner was not deposed: its chain still serves replica reads at
	// its current epoch, and its store still owns the range.
	if _, err := mgrs[0].ReplicaItems(ctx, holder, iv, epoch0); err != nil {
		t.Fatalf("replica read at the real owner's epoch after the forgery: %v", err)
	}
	if got := stores[0].Epoch(); got != epoch0 {
		t.Fatalf("owner epoch = %d after forgery, want %d (undeposed)", got, epoch0)
	}
	if got := stores[0].StepDowns.Load(); got != 0 {
		t.Fatalf("owner StepDowns = %d, want 0", got)
	}

	// Both refusals are journaled, attributed to the holder and the abused
	// owner name, and neither perturbs the claim or lease audits.
	var rejects int
	for _, e := range h.log.Events() {
		if e.Kind == history.SigRejected {
			rejects++
			if e.Peer != string(holder) || e.From != string(claimant.Addr) {
				t.Fatalf("SigRejected journaled as (verifier %s, owner %s), want (%s, %s)",
					e.Peer, e.From, holder, claimant.Addr)
			}
		}
	}
	if rejects != 2 {
		t.Fatalf("journaled SigRejected events = %d, want 2", rejects)
	}
	if v := history.CheckClaims(h.log.Events()); len(v) != 0 {
		t.Fatalf("claim audit after forgery: %v", v)
	}
	if v := h.log.CheckLeases(); len(v) != 0 {
		t.Fatalf("lease audit after forgery: %v", v)
	}

	// The genuine owner's next signed refresh still verifies: the rejects did
	// not poison the keyring.
	mgrs[0].RefreshOnce()
	if got := holderMgr.SigRejects.Load(); got != 2 {
		t.Fatalf("holder SigRejects = %d after a genuine refresh, want still 2", got)
	}
}
