package replication

import (
	"context"
	"testing"
	"time"

	"repro/internal/datastore"
	"repro/internal/keyspace"
)

// A replica holder must answer interval reads from its replica store plus
// its own items — the availability fallback of the pipelined read path.
func TestReplicaItemsServesHeldReplicasAndOwnItems(t *testing.T) {
	h := newRepHarness(t)
	cfg := Config{Factor: 2, RefreshPeriod: 5 * time.Millisecond, CallTimeout: 40 * time.Millisecond, DisableAutoRefresh: true}
	mgrs, stores, rings := h.bootRing(4, cfg)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Peer 0 owns the wrap range (300, 100]; give it items and replicate.
	for _, k := range []uint64{20, 40, 60} {
		if err := stores[0].InsertAt(ctx, stores[0].Addr(), datastore.Item{Key: keyspace.Key(k)}); err != nil {
			t.Fatal(err)
		}
	}
	waitRep(t, 5*time.Second, "successors", func() bool {
		return len(rings[0].Successors()) >= 2
	})
	mgrs[0].RefreshOnce()
	succ := rings[0].Successors()[0]

	// Read peer 0's segment from its first successor, as the scan path does
	// when the primary is dead. The successor holds replicas of 20/40/60 and
	// owns none of those keys itself.
	items, err := mgrs[0].ReplicaItems(ctx, succ.Addr, keyspace.ClosedInterval(30, 70), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 || items[0].Key != 40 || items[1].Key != 60 {
		t.Fatalf("replica read returned %v, want keys 40, 60 sorted", items)
	}
	h.mu.Lock()
	served := h.mgrs[succ.Addr].ReplicaServes.Load()
	h.mu.Unlock()
	if served == 0 {
		t.Error("replica serve not counted")
	}

	// The holder's own items are part of the answer too: ask the successor
	// for an interval inside its own range.
	if err := stores[1].InsertAt(ctx, stores[1].Addr(), datastore.Item{Key: 150}); err != nil {
		t.Fatal(err)
	}
	items, err = mgrs[0].ReplicaItems(ctx, stores[1].Addr(), keyspace.ClosedInterval(140, 160), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || items[0].Key != 150 {
		t.Fatalf("replica read of own-range interval returned %v, want key 150", items)
	}
}
