package replication

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/datastore"
	"repro/internal/keyspace"
	"repro/internal/ring"
)

// A replication push advertises the origin's ownership epoch, and the
// receiver remembers the latest advert per origin: the revival epoch source.
func TestPushRecordsAdvertisedEpochs(t *testing.T) {
	h := newRepHarness(t)
	mgrs, stores, rings := h.bootRing(2, Config{Factor: 1, DisableAutoRefresh: true})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	waitRep(t, 5*time.Second, "successor", func() bool { return len(rings[0].Successors()) >= 1 })
	if err := stores[0].InsertAt(ctx, stores[0].Addr(), datastore.Item{Key: 50}); err != nil {
		t.Fatal(err)
	}
	mgrs[0].RefreshOnce()

	rng, epoch, ok := stores[0].RangeEpoch()
	if !ok || epoch == 0 {
		t.Fatalf("origin range/epoch = %v/%d", rng, epoch)
	}
	if got := mgrs[1].MaxAdvertisedEpoch(rng); got != epoch {
		t.Fatalf("MaxAdvertisedEpoch = %d, want the origin's advertised %d", got, epoch)
	}
	if got := mgrs[1].MaxAdvertisedEpoch(keyspace.NewRange(rng.Hi+1, rng.Hi+2)); got != 0 {
		t.Fatalf("MaxAdvertisedEpoch outside the advert = %d, want 0", got)
	}
}

// The deposition channel: a push from an incarnation whose range a receiver
// now claims at a strictly higher epoch is answered Deposed, and the pusher
// steps down — its range drops and it departs. This is the runtime half of
// the dual-claim fix: the loser of a false-positive revival resigns within
// one replication refresh.
func TestDeposedPushTriggersStepDown(t *testing.T) {
	h := newRepHarness(t)
	mgrs, stores, rings := h.bootRing(2, Config{Factor: 1, DisableAutoRefresh: true})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	waitRep(t, 5*time.Second, "successor", func() bool { return len(rings[0].Successors()) >= 1 })
	if err := stores[0].InsertAt(ctx, stores[0].Addr(), datastore.Item{Key: 50}); err != nil {
		t.Fatal(err)
	}

	// Simulate the successor having revived peer 0's range at a higher
	// epoch (what a false-positive failure verdict produces).
	rng0, epoch0, _ := stores[0].RangeEpoch()
	rng1, _ := stores[1].Range()
	stores[1].SetRangeForTesting(keyspace.NewRange(rng0.Lo, rng1.Hi))
	stores[1].SetEpochForTesting(epoch0 + 1)

	mgrs[0].RefreshOnce() // push meets the higher-epoch claim → Deposed → StepDown

	if _, ok := stores[0].Range(); ok {
		t.Fatal("deposed pusher still serves its range")
	}
	if got := stores[0].StepDowns.Load(); got != 1 {
		t.Fatalf("StepDowns = %d, want 1", got)
	}
	if rings[0].State() != ring.StateFree {
		t.Fatalf("deposed peer ring state = %s, want FREE", rings[0].State())
	}
}

// Replica reads refuse to serve for a deposed primary's chain: once a holder
// has seen a strictly higher epoch asserted over the interval, a fallback
// read stamped with the old primary's epoch fails with ErrStaleEpoch instead
// of resurrecting the superseded incarnation's view.
func TestReplicaReadRefusesDeposedChain(t *testing.T) {
	h := newRepHarness(t)
	mgrs, stores, rings := h.bootRing(3, Config{Factor: 2, DisableAutoRefresh: true})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	waitRep(t, 5*time.Second, "successors", func() bool { return len(rings[0].Successors()) >= 2 })
	if err := stores[0].InsertAt(ctx, stores[0].Addr(), datastore.Item{Key: 50}); err != nil {
		t.Fatal(err)
	}
	mgrs[0].RefreshOnce()

	_, epoch0, _ := stores[0].RangeEpoch()
	holder := rings[0].Successors()[0].Addr
	iv := keyspace.ClosedInterval(40, 60)

	// At the primary's current epoch the holder serves.
	items, err := mgrs[0].ReplicaItems(ctx, holder, iv, epoch0)
	if err != nil || len(items) != 1 {
		t.Fatalf("replica read at current epoch = (%v, %v), want the one item", items, err)
	}

	// A higher-epoch incarnation advertises over the same range (the revived
	// successor's refresh); the old chain is now deposed.
	newOwner := rings[0].Successors()[1]
	rng0, _ := stores[0].Range()
	resp, err := h.net.Call(ctx, newOwner.Addr, holder, methodPush, pushMsg{
		From:  newOwner,
		Range: rng0,
		Epoch: epoch0 + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pr, ok := resp.(pushResp); !ok || pr.Deposed {
		t.Fatalf("advert push response = %v", resp)
	}

	if _, err := mgrs[0].ReplicaItems(ctx, holder, iv, epoch0); !errors.Is(err, datastore.ErrStaleEpoch) {
		t.Fatalf("replica read for deposed chain = %v, want ErrStaleEpoch", err)
	}
	// Unfenced reads (no epoch information) still serve.
	if _, err := mgrs[0].ReplicaItems(ctx, holder, iv, 0); err != nil {
		t.Fatalf("unfenced replica read: %v", err)
	}
	holderMgr := h.mgrs[holder]
	if got := holderMgr.StaleChainRefusals.Load(); got != 1 {
		t.Fatalf("StaleChainRefusals = %d, want 1", got)
	}
}

// An epoch collision — two live incarnations claiming overlapping ranges at
// the SAME epoch (a revival whose advert-derived epoch failed to clear a
// bump the suspect never pushed) — must converge instead of coexisting: the
// receiver of the push re-claims strictly above the conflict and deposes the
// pusher, whose StepDown guard then accepts the strictly-higher epoch.
func TestTiedEpochPushResolvesByReclaim(t *testing.T) {
	h := newRepHarness(t)
	mgrs, stores, rings := h.bootRing(2, Config{Factor: 1, DisableAutoRefresh: true})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	waitRep(t, 5*time.Second, "successor", func() bool { return len(rings[0].Successors()) >= 1 })
	if err := stores[0].InsertAt(ctx, stores[0].Addr(), datastore.Item{Key: 50}); err != nil {
		t.Fatal(err)
	}

	// Stage the collision: the successor claims a superset of peer 0's range
	// at peer 0's EXACT epoch (what a revival produces when the suspect's
	// latest bump never reached the revivor's advert table).
	rng0, epoch0, _ := stores[0].RangeEpoch()
	rng1, _ := stores[1].Range()
	stores[1].SetRangeForTesting(keyspace.NewRange(rng0.Lo, rng1.Hi))
	stores[1].SetEpochForTesting(epoch0)

	mgrs[0].RefreshOnce() // tied push → successor re-claims above → Deposed → StepDown

	if got := stores[1].Epoch(); got <= epoch0 {
		t.Fatalf("successor epoch = %d after tie, want > %d (re-claimed above the conflict)", got, epoch0)
	}
	if _, ok := stores[0].Range(); ok {
		t.Fatal("tied pusher still serves: the collision never converged")
	}
	if got := stores[0].StepDowns.Load(); got != 1 {
		t.Fatalf("StepDowns = %d, want 1", got)
	}
}

// A third-party replica holder (one whose own range does not overlap the
// push) still refuses a deposed incarnation's push once a higher-epoch
// advert covers the range: installing it would clobber the winner's fresher
// replicas and resurrect superseded state.
func TestThirdPartyHolderRefusesDeposedPush(t *testing.T) {
	h := newRepHarness(t)
	mgrs, stores, rings := h.bootRing(3, Config{Factor: 2, DisableAutoRefresh: true})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	waitRep(t, 5*time.Second, "successors", func() bool { return len(rings[0].Successors()) >= 2 })
	if err := stores[0].InsertAt(ctx, stores[0].Addr(), datastore.Item{Key: 50}); err != nil {
		t.Fatal(err)
	}
	mgrs[0].RefreshOnce()

	rng0, epoch0, _ := stores[0].RangeEpoch()
	holder := rings[0].Successors()[0].Addr
	winner := rings[0].Successors()[1]

	// The winner's higher-epoch advert reaches the holder with its
	// post-revival item set (key 50 deleted).
	resp, err := h.net.Call(ctx, winner.Addr, holder, methodPush, pushMsg{
		From: winner, Range: rng0, Epoch: epoch0 + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pr := resp.(pushResp); pr.Deposed {
		t.Fatalf("winner's advert refused: %+v", pr)
	}
	if got := h.mgrs[holder].ReplicaCount(); got != 0 {
		t.Fatalf("holder still holds %d replicas after the winner's reconciling push", got)
	}

	// The deposed incarnation's own push (same range, old epoch) must now be
	// refused — not installed — even though the holder's own range does not
	// overlap it.
	resp, err = h.net.Call(ctx, stores[0].Addr(), holder, methodPush, pushMsg{
		From: rings[0].Self(), Range: rng0, Epoch: epoch0,
		Items: []datastore.Item{{Key: 50, Payload: "stale"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	pr := resp.(pushResp)
	if !pr.Deposed || pr.Epoch != epoch0+1 {
		t.Fatalf("deposed push answer = %+v, want Deposed at epoch %d", pr, epoch0+1)
	}
	if got := h.mgrs[holder].ReplicaCount(); got != 0 {
		t.Fatalf("deposed push was installed: holder has %d replicas", got)
	}
}

// The symmetric deposition channel: a push receiver whose own overlapping
// claim is strictly LOWER than a live pusher's yields itself rather than
// deposing the provably-ahead owner — the epochs CAN order this conflict,
// and the lower incarnation is the one that must go.
func TestLowerClaimReceiverYieldsToHigherPush(t *testing.T) {
	h := newRepHarness(t)
	mgrs, stores, rings := h.bootRing(2, Config{Factor: 1, DisableAutoRefresh: true})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	waitRep(t, 5*time.Second, "successor", func() bool { return len(rings[0].Successors()) >= 1 })
	if err := stores[0].InsertAt(ctx, stores[0].Addr(), datastore.Item{Key: 50}); err != nil {
		t.Fatal(err)
	}

	// Stage the conflict: the successor claims a superset of the pusher's
	// range at a strictly LOWER epoch (a stale claimant vs the live,
	// provably-ahead owner).
	rng0, epoch0, _ := stores[0].RangeEpoch()
	stores[0].SetEpochForTesting(epoch0 + 5)
	rng1, _ := stores[1].Range()
	stores[1].SetRangeForTesting(keyspace.NewRange(rng0.Lo, rng1.Hi))
	stores[1].SetEpochForTesting(epoch0 + 1)

	mgrs[0].RefreshOnce() // higher-epoch push reaches the stale claimant

	waitRep(t, 5*time.Second, "stale receiver steps down", func() bool {
		return stores[1].StepDowns.Load() == 1
	})
	if _, ok := stores[0].Range(); !ok {
		t.Fatal("the higher-epoch pusher lost its range")
	}
	if got := stores[0].StepDowns.Load(); got != 0 {
		t.Fatalf("pusher StepDowns = %d, want 0", got)
	}
}
