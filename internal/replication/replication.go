// Package replication implements the Replication Manager of the indexing
// framework in its CFS form (Section 2.3): every peer pushes its Data Store
// items to its k ring successors, so that when a peer fails its successor
// can revive the lost items from the replicas it holds. The paper's
// availability contribution (Section 5.2) is the replicate-to-additional-hop
// rule: before a peer departs in a merge, it pushes both its own items and
// the replicas it holds one extra hop, so its departure never lowers any
// item's replica count (the Figure 17 loss scenario versus the Figure 18
// fix). The naive baseline skips that step.
//
// Replica freshness is maintained by periodic range-scoped reconciliation:
// each push carries the origin's full item set for its range, and the
// receiver drops any replica in that range that the origin no longer holds.
package replication

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/auth"
	"repro/internal/datastore"
	"repro/internal/keyspace"
	"repro/internal/ring"
	"repro/internal/storage"
	"repro/internal/transport"
)

// RPC method names.
const (
	methodPush = "rep.push"
	methodPull = "rep.pull"
	methodScan = "rep.scan"
)

// Config controls replication behaviour.
type Config struct {
	// Factor is k, the number of successors holding a copy of each item
	// (paper default 6, Section 6.1).
	Factor int
	// RefreshPeriod is the replica refresh interval.
	RefreshPeriod time.Duration
	// CallTimeout bounds individual pushes.
	CallTimeout time.Duration
	// Naive disables replicate-to-additional-hop on departure (the baseline
	// of Section 6.2 that loses items in the Figure 17 scenario).
	Naive bool
	// DisableAutoRefresh turns the periodic loop off for deterministic tests.
	DisableAutoRefresh bool
}

func (c Config) withDefaults() Config {
	if c.Factor <= 0 {
		c.Factor = 6
	}
	if c.RefreshPeriod <= 0 {
		c.RefreshPeriod = 40 * time.Millisecond
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 50 * time.Millisecond
	}
	return c
}

// advert is the ownership assertion carried by a replication push: the
// origin last claimed Range at Epoch. The replica manager remembers the
// latest advert per origin; they are what lets a successor revive a failed
// predecessor's range at a provably higher epoch, and what lets a replica
// holder refuse to serve for a deposed primary. RenewedAt is the local
// receive time of the latest push from the origin — the receiver-side lease
// evidence: an origin whose advert has not refreshed within the lease
// duration has stopped proving it still serves, and its successor may treat
// the range as orphaned (datastore.Config.LeaseDuration).
type advert struct {
	Range     keyspace.Range
	Epoch     uint64
	RenewedAt time.Time
}

// Manager is one peer's Replication Manager. It implements
// datastore.Replicator.
type Manager struct {
	// SignAdvert, when set, signs this peer's ownership advert before each
	// push carries it: the signature covers (self address, range, epoch), so a
	// receiver can prove the advert came from the addressed owner and not from
	// a forger asserting a higher epoch in its name. Set before Start.
	SignAdvert func(rng keyspace.Range, epoch uint64) auth.AdvertSig
	// VerifyAdvert, when set, is consulted for every epoch-carrying push
	// before any epoch bookkeeping: a push whose advert signature does not
	// verify under the key pinned for its origin is refused outright — it
	// neither deposes anyone nor installs replicas. Set before Start.
	VerifyAdvert func(owner transport.Addr, rng keyspace.Range, epoch uint64, sig auth.AdvertSig) error
	// OnSigReject, when set, is invoked for every refused push advert
	// (journaling hook; core wires it to history.Log.SigRejected).
	OnSigReject func(owner transport.Addr, rng keyspace.Range, epoch uint64)

	cfg     Config
	net     transport.Transport
	ring    *ring.Peer
	ds      *datastore.Store
	backend storage.Backend // write-ahead engine; never nil (Memory default)

	mu       sync.Mutex
	replicas map[keyspace.Key]datastore.Item
	adverts  map[transport.Addr]advert // latest epoch advert per origin

	// ReplicaServes counts replica-read requests answered by this peer (the
	// read path's availability fallback).
	ReplicaServes atomic.Uint64
	// StaleChainRefusals counts replica reads refused because the believed
	// primary's epoch was superseded by a later advert (fencing on the
	// availability fallback).
	StaleChainRefusals atomic.Uint64
	// SigRejects counts pushes refused because their advert signature failed
	// verification (forged or unsigned ownership assertions).
	SigRejects atomic.Uint64

	kick    chan struct{}
	lifeMu  sync.Mutex // guards started/stopped transitions vs wg
	started bool
	stopped bool
	stopCh  chan struct{}
	wg      sync.WaitGroup
}

// New constructs a Manager and registers its RPC handlers on the peer's mux.
func New(net transport.Transport, mux *transport.Mux, rp *ring.Peer, ds *datastore.Store, cfg Config) *Manager {
	m := &Manager{
		cfg:      cfg.withDefaults(),
		net:      net,
		ring:     rp,
		ds:       ds,
		backend:  storage.NewMemory(),
		replicas: make(map[keyspace.Key]datastore.Item),
		adverts:  make(map[transport.Addr]advert),
		kick:     make(chan struct{}, 1),
		stopCh:   make(chan struct{}),
	}
	mux.Handle(methodPush, m.handlePush)
	mux.Handle(methodPull, m.handlePull)
	mux.Handle(methodScan, m.handleReplicaScan)
	return m
}

// SetBackend replaces the storage engine (default: a fresh storage.Memory).
// The core assembly path points it at the same backend as the Data Store, so
// a peer's held replicas survive a restart alongside its own items. Must be
// called before the peer starts serving.
func (m *Manager) SetBackend(b storage.Backend) {
	if b != nil {
		m.backend = b
	}
}

// RestoreReplicas installs replicas recovered from durable storage and
// re-stamps them into the new run's log (idempotent on replay). Called once
// during recovery, before the manager starts serving.
func (m *Manager) RestoreReplicas(items []datastore.Item) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, it := range items {
		m.replicas[it.Key] = it
		_ = m.backend.Append(storage.Record{Kind: storage.RecReplicaPut, Key: it.Key, Payload: it.Payload})
	}
}

// Start launches the periodic refresh loop (idempotent; no-op after Stop).
func (m *Manager) Start() {
	if m.cfg.DisableAutoRefresh {
		return
	}
	m.lifeMu.Lock()
	defer m.lifeMu.Unlock()
	if m.started || m.stopped {
		return
	}
	m.started = true
	m.wg.Add(1)
	go m.refreshLoop()
}

// Stop halts background work.
func (m *Manager) Stop() {
	m.lifeMu.Lock()
	if !m.stopped {
		m.stopped = true
		close(m.stopCh)
	}
	m.lifeMu.Unlock()
	m.wg.Wait()
}

func (m *Manager) refreshLoop() {
	defer m.wg.Done()
	t := time.NewTicker(m.cfg.RefreshPeriod)
	defer t.Stop()
	for {
		select {
		case <-m.stopCh:
			return
		case <-t.C:
		case <-m.kick:
		}
		m.RefreshOnce()
	}
}

// ItemsChanged implements datastore.Replicator: schedule a refresh soon.
func (m *Manager) ItemsChanged() {
	select {
	case m.kick <- struct{}{}:
	default:
	}
}

// ReplicaCount returns how many replicas this peer currently holds.
func (m *Manager) ReplicaCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.replicas)
}

// HeldReplicas returns a snapshot of the replicas this peer holds.
func (m *Manager) HeldReplicas() []datastore.Item {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]datastore.Item, 0, len(m.replicas))
	for _, it := range m.replicas {
		out = append(out, it)
	}
	return out
}

// pushMsg replicates the origin's full item set for its range; the receiver
// reconciles its replica store within that range. Epoch is the origin's
// ownership epoch for Range — its incarnation's fencing token; 0 marks a
// push that asserts no ownership (the raw held-replica merges of
// BeforeLeave) and is installed without any epoch bookkeeping.
type pushMsg struct {
	From  ring.Node
	Range keyspace.Range
	Epoch uint64
	Items []datastore.Item
	// Sig signs the ownership advert (From.Addr, Range, Epoch) with the
	// origin's identity key. Empty on epoch-0 pushes (they assert nothing) and
	// on clusters running without identities.
	Sig auth.AdvertSig
}

// pushResp acknowledges a push. Deposed tells the pusher its ownership
// incarnation has been superseded: the receiving peer's own range claim
// covers the pushed range at the strictly higher Epoch. The pusher must stop
// serving (datastore.StepDown) — this reply is how a live peer that the
// failure detector wrongly declared dead learns its range was revived out
// from under it.
type pushResp struct {
	Deposed bool
	Epoch   uint64
}

// handlePush installs replicas, dropping stale ones within the pushed range,
// and answers the epoch question: a push from a deposed incarnation is
// refused (and reported as such) instead of being recorded as if the origin
// still owned the range.
func (m *Manager) handlePush(_ transport.Addr, _ string, payload any) (any, error) {
	msg, ok := payload.(pushMsg)
	if !ok {
		return nil, fmt.Errorf("replication: bad push payload %T", payload)
	}
	if msg.Epoch != 0 {
		// Signature check first: an epoch-carrying push is an ownership
		// assertion, and on clusters with identities it must prove the
		// assertion is the origin's own. A push signed under the wrong key (or
		// not at all) is refused before it can depose anyone, install
		// replicas, or even record an advert — a forged higher-epoch push is
		// inert.
		if m.VerifyAdvert != nil {
			if err := m.VerifyAdvert(msg.From.Addr, msg.Range, msg.Epoch, msg.Sig); err != nil {
				m.SigRejects.Add(1)
				if m.OnSigReject != nil {
					m.OnSigReject(msg.From.Addr, msg.Range, msg.Epoch)
				}
				return nil, fmt.Errorf("replication: push advert from %s for %v at epoch %d refused: %w",
					msg.From.Addr, msg.Range, msg.Epoch, err)
			}
		}
		// Deposition check against our own primary claim: overlapping claims
		// by two live peers are a dual-ownership anomaly, and the epochs
		// decide who yields. Strictly higher than the pusher: its
		// incarnation was superseded (we revived its range after a failure
		// verdict) — refuse and tell it. Tied: a collision the comparison
		// cannot order (a revival whose advert-derived epoch failed to
		// clear a bump the suspect never managed to push); re-claim
		// strictly above the conflict so exactly one incarnation survives.
		// Strictly lower: the pusher is the provably-ahead owner and WE are
		// the stale claimant — step down (asynchronously; StepDown drains
		// scans and departs, which must not block the push handler) rather
		// than depose a legitimate higher incarnation.
		if rng, epoch, ok := m.ds.RangeEpoch(); ok && rng.Overlaps(msg.Range) && msg.From.Addr != m.ring.Self().Addr {
			switch {
			case epoch > msg.Epoch:
				return pushResp{Deposed: true, Epoch: epoch}, nil
			case epoch == msg.Epoch:
				if reclaimed := m.ds.ReclaimAbove(msg.Epoch); reclaimed > msg.Epoch {
					return pushResp{Deposed: true, Epoch: reclaimed}, nil
				}
			default:
				go m.ds.StepDown(msg.Epoch)
			}
		}
		// Deposition check against third-party adverts: if a DIFFERENT
		// origin has advertised an overlapping range at a strictly higher
		// epoch, this pusher is deposed even though we are a mere replica
		// holder — installing its push would clobber the winner's fresher
		// replicas and resurrect the superseded incarnation's view.
		m.mu.Lock()
		for from, a := range m.adverts {
			if from != msg.From.Addr && a.Range.Overlaps(msg.Range) && a.Epoch > msg.Epoch {
				epoch := a.Epoch
				m.mu.Unlock()
				return pushResp{Deposed: true, Epoch: epoch}, nil
			}
		}
		m.mu.Unlock()
	}
	keep := make(map[keyspace.Key]bool, len(msg.Items))
	for _, it := range msg.Items {
		keep[it.Key] = true
	}
	m.mu.Lock()
	if msg.Epoch != 0 {
		// Record the origin's advert; adverts from superseded incarnations
		// of the same region are pruned so the table tracks the freshest
		// view of each range's ownership.
		for from, a := range m.adverts {
			if from != msg.From.Addr && a.Range.Overlaps(msg.Range) && a.Epoch < msg.Epoch {
				delete(m.adverts, from)
			}
		}
		if prev, ok := m.adverts[msg.From.Addr]; !ok || msg.Epoch >= prev.Epoch {
			// The receive time doubles as the origin's lease renewal evidence
			// (same-epoch re-pushes refresh it; see AdvertInfo).
			m.adverts[msg.From.Addr] = advert{Range: msg.Range, Epoch: msg.Epoch, RenewedAt: time.Now()}
		}
	}
	for k := range m.replicas {
		if msg.Range.Contains(k) && !keep[k] {
			delete(m.replicas, k)
			// Write-ahead while holding m.mu so the WAL order matches the
			// replica store's; an append error degrades durability only.
			_ = m.backend.Append(storage.Record{Kind: storage.RecReplicaDelete, Key: k})
		}
	}
	for _, it := range msg.Items {
		m.replicas[it.Key] = it
		_ = m.backend.Append(storage.Record{Kind: storage.RecReplicaPut, Key: it.Key, Payload: it.Payload})
	}
	m.mu.Unlock()
	return pushResp{}, nil
}

// signAdvert signs this peer's ownership advert when an identity is wired,
// and returns the empty (absent) signature otherwise.
func (m *Manager) signAdvert(rng keyspace.Range, epoch uint64) auth.AdvertSig {
	if m.SignAdvert == nil {
		return auth.AdvertSig{}
	}
	return m.SignAdvert(rng, epoch)
}

// AdvertInfo implements datastore.Replicator: the latest ownership advert
// this peer received from the origin at addr, plus the local time it
// arrived. The maintenance loop of the origin's successor reads it to decide
// lease expiry: an adjacent predecessor whose advert is older than the lease
// duration has stopped renewing and its range may be adopted.
func (m *Manager) AdvertInfo(addr transport.Addr) (keyspace.Range, uint64, time.Time, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	a, ok := m.adverts[addr]
	return a.Range, a.Epoch, a.RenewedAt, ok
}

// MaxAdvertisedEpoch implements datastore.Replicator: the highest ownership
// epoch any origin has advertised (via pushes) for a range overlapping r.
func (m *Manager) MaxAdvertisedEpoch(r keyspace.Range) uint64 {
	var max uint64
	m.mu.Lock()
	for _, a := range m.adverts {
		if a.Range.Overlaps(r) && a.Epoch > max {
			max = a.Epoch
		}
	}
	m.mu.Unlock()
	return max
}

// pullReq asks a peer for every replica (and own item) it holds in a range;
// used by orphaned peers reconstructing a range they now own.
type pullReq struct{ Range keyspace.Range }

// pullResp carries the pulled items plus the highest ownership epoch the
// answering peer has seen asserted for the range (adverts it holds and its
// own primary claim), so the puller can claim its new incarnation above it.
type pullResp struct {
	Items    []datastore.Item
	MaxEpoch uint64
}

func (m *Manager) handlePull(_ transport.Addr, _ string, payload any) (any, error) {
	req, ok := payload.(pullReq)
	if !ok {
		return nil, fmt.Errorf("replication: bad pull payload %T", payload)
	}
	resp := pullResp{MaxEpoch: m.MaxAdvertisedEpoch(req.Range)}
	m.mu.Lock()
	for k, it := range m.replicas {
		if req.Range.Contains(k) {
			resp.Items = append(resp.Items, it)
		}
	}
	m.mu.Unlock()
	for _, it := range m.ds.LocalItems() {
		if req.Range.Contains(it.Key) {
			resp.Items = append(resp.Items, it)
		}
	}
	if rng, epoch, ok := m.ds.RangeEpoch(); ok && rng.Overlaps(req.Range) && epoch > resp.MaxEpoch {
		resp.MaxEpoch = epoch
	}
	return resp, nil
}

// replicaScanReq asks a peer for every item it can see inside the interval —
// held replicas plus its own Data Store items. It is the read path's
// availability fallback: when a segment's primary owner is unreachable, the
// origin retries the segment against the owner's successors, which hold its
// replicas. The answer is bounded-staleness by construction — a replica
// lags its origin by at most one replication refresh (RefreshPeriod plus a
// push in flight) — so journaled Definition 4 queries never use it; only
// unjournaled operational reads fall back here.
type replicaScanReq struct {
	Iv keyspace.Interval
	// Epoch is the ownership epoch of the primary the requester believes it
	// is falling back from; 0 = unfenced. A replica holder that has seen a
	// strictly higher epoch asserted over the interval refuses with
	// ErrStaleEpoch: the believed primary's whole chain is deposed, and
	// serving its stale replica set would resurrect a superseded
	// incarnation's view.
	Epoch uint64
}

// staleChainEpochLocked reports the highest epoch this peer has seen
// asserted over any part of iv — adverts plus its own primary claim.
// Callers hold m.mu.
func (m *Manager) staleChainEpochLocked(iv keyspace.Interval) uint64 {
	var max uint64
	for _, a := range m.adverts {
		if _, ok := iv.ClipToRange(a.Range); ok && a.Epoch > max {
			max = a.Epoch
		}
	}
	if rng, epoch, ok := m.ds.RangeEpoch(); ok && epoch > max {
		if _, overlaps := iv.ClipToRange(rng); overlaps {
			max = epoch
		}
	}
	return max
}

func (m *Manager) handleReplicaScan(_ transport.Addr, _ string, payload any) (any, error) {
	req, ok := payload.(replicaScanReq)
	if !ok {
		return nil, fmt.Errorf("replication: bad replica scan payload %T", payload)
	}
	if !req.Iv.Valid() {
		return nil, fmt.Errorf("replication: empty replica scan interval %v", req.Iv)
	}
	if req.Epoch != 0 {
		m.mu.Lock()
		seen := m.staleChainEpochLocked(req.Iv)
		m.mu.Unlock()
		if seen > req.Epoch {
			m.StaleChainRefusals.Add(1)
			return nil, fmt.Errorf("%w: replica read for primary epoch %d, epoch %d observed over %v",
				datastore.ErrStaleEpoch, req.Epoch, seen, req.Iv)
		}
	}
	m.ReplicaServes.Add(1)
	seen := make(map[keyspace.Key]datastore.Item)
	m.mu.Lock()
	for k, it := range m.replicas {
		if req.Iv.Contains(k) {
			seen[k] = it
		}
	}
	m.mu.Unlock()
	// Own items win over held replicas: they are this peer's authoritative
	// state for any key it currently serves.
	for _, it := range m.ds.LocalItems() {
		if req.Iv.Contains(it.Key) {
			seen[it.Key] = it
		}
	}
	out := make([]datastore.Item, 0, len(seen))
	for _, it := range seen {
		out = append(out, it)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// ReplicaItems fetches the items in iv visible at the replica holder addr —
// the caller side of the replica-read fallback. epoch stamps the request
// with the believed primary's ownership epoch (0 = unfenced): a holder that
// has seen a higher epoch asserted over the interval refuses with
// ErrStaleEpoch rather than serve for a deposed chain. Responses are
// unbounded on every transport (oversized answers chunk back), so whole
// segments return from one call.
func (m *Manager) ReplicaItems(ctx context.Context, addr transport.Addr, iv keyspace.Interval, epoch uint64) ([]datastore.Item, error) {
	return ClientReplicaItems(ctx, m.net, m.ring.Self().Addr, addr, iv, epoch)
}

// RefreshOnce pushes this peer's items to its first k JOINED successors.
// The k pushes are independent, so they are issued as one pipelined burst
// instead of k sequential round trips: one slow replica no longer stretches
// the whole refresh to k deadlines, and the refresh period stays honest as
// the factor grows. Pushes are bulk calls: a range whose encoding exceeds
// the transport frame size streams across in chunks and commits atomically
// at each replica.
//
// Each push advertises this peer's ownership epoch, and the replies carry
// the verdict: a successor whose own claim covers our range at a strictly
// higher epoch answers Deposed — proof that the failure detector wrongly
// declared us dead and our range was revived while we kept serving. The
// losing incarnation (us) must then step down; this reply path is what
// bounds the dual-claim window to one replication refresh.
func (m *Manager) RefreshOnce() {
	rng, epoch, ok := m.ds.RangeEpoch()
	if !ok {
		return
	}
	items := m.ds.LocalItems()
	self := m.ring.Self()
	succs := m.ring.Successors()
	if len(succs) > m.cfg.Factor {
		succs = succs[:m.cfg.Factor]
	}
	msg := pushMsg{From: self, Range: rng, Epoch: epoch, Items: items, Sig: m.signAdvert(rng, epoch)}
	ctx, cancel := context.WithTimeout(context.Background(), m.cfg.CallTimeout)
	defer cancel()
	pends := make([]*transport.Pending, 0, len(succs))
	for _, succ := range succs {
		pends = append(pends, transport.CallBulkAsync(m.net, ctx, self.Addr, succ.Addr, methodPush, msg))
	}
	var deposedBy uint64
	acked := false
	for _, p := range pends {
		resp, err := p.Result()
		if err != nil {
			continue
		}
		if pr, ok := resp.(pushResp); ok {
			if pr.Deposed {
				if pr.Epoch > deposedBy {
					deposedBy = pr.Epoch
				}
			} else {
				acked = true
			}
		}
	}
	if deposedBy > 0 {
		m.ds.StepDown(deposedBy)
		return
	}
	// Lease renewal is evidence-based: the lease renews only when at least
	// one successor acknowledged this refresh without deposing us — proof the
	// push (and with it our advert/renewal) actually landed somewhere. A peer
	// whose pushes all fail stops renewing and its lease lapses, which is
	// exactly the wedged-owner case leases exist to bound. A single-peer ring
	// (no successors) renews vacuously: there is no one to prove anything to
	// and no one who could adopt.
	if acked || len(succs) == 0 {
		m.ds.RenewLease()
	}
}

// BeforeLeave implements the replicate-to-additional-hop rule (Section 5.2):
// before departing, push our own items to one extra successor (the k+1st)
// and push every replica group we hold one hop further (to our first
// successor), so no item's replica count drops when we vanish. The naive
// baseline does nothing and loses items in the Figure 17 scenario.
func (m *Manager) BeforeLeave(ctx context.Context) error {
	if m.cfg.Naive {
		return nil
	}
	rng, epoch, ok := m.ds.RangeEpoch()
	if !ok {
		return nil
	}
	self := m.ring.Self()
	succs := m.ring.Successors()
	if len(succs) == 0 {
		return nil
	}

	// Own items one extra hop: k+1 successors instead of k. The pushes are
	// independent, so they run as one pipelined burst.
	own := pushMsg{From: self, Range: rng, Epoch: epoch, Items: m.ds.LocalItems(), Sig: m.signAdvert(rng, epoch)}
	limit := m.cfg.Factor + 1
	if limit > len(succs) {
		limit = len(succs)
	}
	pends := make([]*transport.Pending, 0, limit)
	for _, succ := range succs[:limit] {
		pends = append(pends, transport.CallBulkAsync(m.net, ctx, self.Addr, succ.Addr, methodPush, own))
	}

	// Held replicas one extra hop: hand them to our first successor, which
	// sits one hop beyond us in every replica group we belong to. Pushed as
	// a raw merge (no range reconciliation) so they never displace fresher
	// state: use a degenerate point range around each key so stale deletion
	// never spans other origins' data. All of these target the same peer —
	// exactly the case stream multiplexing exists for — so they are
	// pipelined on one connection instead of paying a round trip each.
	for _, it := range m.HeldReplicas() {
		msg := pushMsg{From: self, Range: keyspace.NewRange(it.Key-1, it.Key), Items: []datastore.Item{it}}
		pends = append(pends, transport.CallBulkAsync(m.net, ctx, self.Addr, succs[0].Addr, methodPush, msg))
	}

	var firstErr error
	for _, p := range pends {
		if _, err := p.Result(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Revive implements datastore.Replicator: return held replicas in r, used
// when this peer absorbs a failed predecessor's range.
func (m *Manager) Revive(r keyspace.Range) []datastore.Item {
	var out []datastore.Item
	m.mu.Lock()
	for k, it := range m.replicas {
		if r.Contains(k) {
			out = append(out, it)
		}
	}
	m.mu.Unlock()
	return out
}

// PullRange implements datastore.Replicator: fetch replicas in r from our
// successors (used by orphaned peers that hold nothing locally). The pulls
// fan out concurrently as bulk calls — the answers are whole ranges, so they
// stream back chunked when they outgrow a frame — and the union of whatever
// arrives is the result, together with the highest ownership epoch any
// holder had seen asserted for r (so the puller claims above it).
func (m *Manager) PullRange(ctx context.Context, r keyspace.Range) ([]datastore.Item, uint64) {
	seen := make(map[keyspace.Key]datastore.Item)
	self := m.ring.Self()
	succs := m.ring.Successors()
	pends := make([]*transport.Pending, 0, len(succs))
	for _, succ := range succs {
		pends = append(pends, transport.CallBulkAsync(m.net, ctx, self.Addr, succ.Addr, methodPull, pullReq{Range: r}))
	}
	var maxEpoch uint64
	for _, p := range pends {
		resp, err := p.Result()
		if err != nil {
			continue
		}
		pr, ok := resp.(pullResp)
		if !ok {
			continue
		}
		if pr.MaxEpoch > maxEpoch {
			maxEpoch = pr.MaxEpoch
		}
		for _, it := range pr.Items {
			seen[it.Key] = it
		}
	}
	out := make([]datastore.Item, 0, len(seen))
	for _, it := range seen {
		out = append(out, it)
	}
	return out, maxEpoch
}
