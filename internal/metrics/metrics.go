// Package metrics provides the measurement instruments used by the benchmark
// harness: thread-safe duration recorders with the summary statistics the
// paper's figures report (average elapsed time per operation), plus
// percentiles for robustness analysis, and a small series printer that
// renders a figure as aligned text columns.
package metrics

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultReservoirSize bounds a Recorder's retained samples. Below the bound
// every sample is kept and percentiles are exact; past it the recorder
// switches to uniform reservoir sampling (Vitter's Algorithm R), so an
// open-loop run at a high arrival rate holds a fixed-size sample set instead
// of growing without limit. Count, Mean and Max stay exact at any volume —
// only the percentile estimates come from the reservoir.
const DefaultReservoirSize = 8192

// Recorder accumulates duration samples for one operation type.
type Recorder struct {
	mu      sync.Mutex
	name    string
	limit   int
	samples []time.Duration
	count   uint64        // total observations, including evicted ones
	sum     time.Duration // exact running sum
	max     time.Duration // exact maximum
	rng     *rand.Rand    // reservoir replacement randomness
}

// NewRecorder returns an empty recorder labelled name, bounded to
// DefaultReservoirSize retained samples.
func NewRecorder(name string) *Recorder {
	return NewBoundedRecorder(name, DefaultReservoirSize)
}

// NewBoundedRecorder returns an empty recorder retaining at most limit
// samples (DefaultReservoirSize when limit <= 0). The replacement stream is
// seeded from the label, so a fixed workload yields reproducible summaries.
func NewBoundedRecorder(name string, limit int) *Recorder {
	if limit <= 0 {
		limit = DefaultReservoirSize
	}
	var seed int64 = 1
	for _, c := range name {
		seed = seed*31 + int64(c)
	}
	return &Recorder{name: name, limit: limit, rng: rand.New(rand.NewSource(seed))}
}

// Name returns the recorder's label.
func (r *Recorder) Name() string { return r.name }

// Observe records one sample. Below the reservoir bound the sample is simply
// kept; past it, it replaces a uniformly chosen retained sample with
// probability limit/count (Algorithm R), keeping the reservoir a uniform
// sample of everything observed.
func (r *Recorder) Observe(d time.Duration) {
	r.mu.Lock()
	r.count++
	r.sum += d
	if d > r.max {
		r.max = d
	}
	if len(r.samples) < r.limit {
		r.samples = append(r.samples, d)
	} else if j := r.rng.Int63n(int64(r.count)); j < int64(r.limit) {
		r.samples[j] = d
	}
	r.mu.Unlock()
}

// Time runs fn and records its elapsed duration.
func (r *Recorder) Time(fn func()) {
	start := time.Now()
	fn()
	r.Observe(time.Since(start))
}

// Count returns the number of samples observed (not merely retained).
func (r *Recorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return int(r.count)
}

// Summary holds the statistics of a sample set. Count, Mean and Max are
// exact; the percentiles are exact up to the reservoir bound and uniform
// estimates past it.
type Summary struct {
	Name  string
	Count int
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	P999  time.Duration
	Max   time.Duration
}

// Summarize computes the recorder's summary statistics. An empty recorder
// yields a zero-valued summary.
func (r *Recorder) Summarize() Summary {
	r.mu.Lock()
	samples := make([]time.Duration, len(r.samples))
	copy(samples, r.samples)
	count, sum, max := r.count, r.sum, r.max
	r.mu.Unlock()

	s := Summary{Name: r.name, Count: int(count)}
	if len(samples) == 0 {
		return s
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	s.Mean = sum / time.Duration(count)
	s.P50 = percentile(samples, 0.50)
	s.P95 = percentile(samples, 0.95)
	s.P99 = percentile(samples, 0.99)
	s.P999 = percentile(samples, 0.999)
	s.Max = max
	return s
}

// percentile returns the q-quantile of sorted samples (nearest-rank).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Reset discards all samples and statistics.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.samples = r.samples[:0]
	r.count, r.sum, r.max = 0, 0, 0
	r.mu.Unlock()
}

// Counter is a thread-safe event counter.
type Counter struct {
	mu sync.Mutex
	n  uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta to the counter.
func (c *Counter) Add(delta uint64) {
	c.mu.Lock()
	c.n += delta
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Series is one line of a figure: a label and a y value per x point.
type Series struct {
	Label  string             `json:"label"`
	Points map[string]float64 `json:"points"` // x label -> y value
}

// Figure renders a paper figure as a text table: one row per x value, one
// column per series, in the given x order.
type Figure struct {
	Title  string   `json:"title"`
	XLabel string   `json:"x_label"`
	YLabel string   `json:"y_label"`
	XOrder []string `json:"x_order"`
	Series []Series `json:"series"`
}

// AddPoint records y for series label at x, creating the series if needed.
func (f *Figure) AddPoint(series, x string, y float64) {
	for i := range f.Series {
		if f.Series[i].Label == series {
			f.Series[i].Points[x] = y
			return
		}
	}
	f.Series = append(f.Series, Series{Label: series, Points: map[string]float64{x: y}})
}

// Render formats the figure as aligned text columns.
func (f *Figure) Render() string {
	xw := len(f.XLabel)
	for _, x := range f.XOrder {
		if len(x) > xw {
			xw = len(x)
		}
	}
	colw := 12
	for _, s := range f.Series {
		if len(s.Label)+2 > colw {
			colw = len(s.Label) + 2
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", f.Title)
	fmt.Fprintf(&b, "# y: %s\n", f.YLabel)
	fmt.Fprintf(&b, "%-*s", xw+2, f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%*s", colw, s.Label)
	}
	b.WriteByte('\n')
	for _, x := range f.XOrder {
		fmt.Fprintf(&b, "%-*s", xw+2, x)
		for _, s := range f.Series {
			if y, ok := s.Points[x]; ok {
				fmt.Fprintf(&b, "%*.4f", colw, y)
			} else {
				fmt.Fprintf(&b, "%*s", colw, "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
