package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecorderSummary(t *testing.T) {
	r := NewRecorder("op")
	for i := 1; i <= 100; i++ {
		r.Observe(time.Duration(i) * time.Millisecond)
	}
	s := r.Summarize()
	if s.Count != 100 {
		t.Errorf("Count = %d", s.Count)
	}
	if s.Mean != 50500*time.Microsecond {
		t.Errorf("Mean = %v, want 50.5ms", s.Mean)
	}
	if s.P50 != 50*time.Millisecond {
		t.Errorf("P50 = %v, want 50ms", s.P50)
	}
	if s.P95 != 95*time.Millisecond {
		t.Errorf("P95 = %v, want 95ms", s.P95)
	}
	if s.Max != 100*time.Millisecond {
		t.Errorf("Max = %v, want 100ms", s.Max)
	}
}

// Below the reservoir bound percentiles are exact, including the new tail
// quantiles.
func TestRecorderTailPercentilesExact(t *testing.T) {
	r := NewRecorder("op")
	for i := 1; i <= 1000; i++ {
		r.Observe(time.Duration(i) * time.Millisecond)
	}
	s := r.Summarize()
	if s.P99 != 990*time.Millisecond {
		t.Errorf("P99 = %v, want 990ms", s.P99)
	}
	if s.P999 != 999*time.Millisecond {
		t.Errorf("P999 = %v, want 999ms", s.P999)
	}
}

// Past the bound the recorder must stop growing: retained samples stay at
// the limit while Count, Mean and Max remain exact, and the reservoir's
// percentile estimates stay inside the observed distribution.
func TestRecorderReservoirBoundsMemory(t *testing.T) {
	const limit = 64
	r := NewBoundedRecorder("op", limit)
	const n = 100_000
	for i := 1; i <= n; i++ {
		r.Observe(time.Duration(i) * time.Microsecond)
	}
	r.mu.Lock()
	retained := len(r.samples)
	capSamples := cap(r.samples)
	r.mu.Unlock()
	if retained != limit {
		t.Fatalf("retained %d samples, want exactly %d", retained, limit)
	}
	if capSamples > 2*limit {
		t.Fatalf("samples capacity %d grew past the bound %d", capSamples, limit)
	}
	s := r.Summarize()
	if s.Count != n {
		t.Errorf("Count = %d, want %d (exact despite sampling)", s.Count, n)
	}
	if s.Max != n*time.Microsecond {
		t.Errorf("Max = %v, want %v (exact despite sampling)", s.Max, n*time.Microsecond)
	}
	wantMean := time.Duration(int64(n) * (n + 1) / 2 * int64(time.Microsecond) / n)
	if s.Mean != wantMean {
		t.Errorf("Mean = %v, want %v (exact despite sampling)", s.Mean, wantMean)
	}
	// The reservoir is a uniform sample: its median estimate must land well
	// inside the middle of the uniform distribution.
	if s.P50 < n/10*time.Microsecond || s.P50 > 9*n/10*time.Microsecond {
		t.Errorf("reservoir P50 = %v, implausible for uniform 1..%d us", s.P50, n)
	}
}

// A fixed label seeds the reservoir deterministically: two recorders fed the
// same stream summarize identically.
func TestRecorderReservoirDeterministic(t *testing.T) {
	a := NewBoundedRecorder("same", 32)
	b := NewBoundedRecorder("same", 32)
	for i := 0; i < 10_000; i++ {
		d := time.Duration(i%997) * time.Microsecond
		a.Observe(d)
		b.Observe(d)
	}
	sa, sb := a.Summarize(), b.Summarize()
	if sa != sb {
		t.Errorf("same-label recorders diverged:\n%+v\n%+v", sa, sb)
	}
}

func TestRecorderEmpty(t *testing.T) {
	s := NewRecorder("empty").Summarize()
	if s.Count != 0 || s.Mean != 0 || s.Max != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestRecorderSingleSample(t *testing.T) {
	r := NewRecorder("one")
	r.Observe(7 * time.Millisecond)
	s := r.Summarize()
	if s.Mean != 7*time.Millisecond || s.P50 != 7*time.Millisecond || s.P95 != 7*time.Millisecond {
		t.Errorf("single-sample summary = %+v", s)
	}
}

func TestRecorderReset(t *testing.T) {
	r := NewRecorder("op")
	r.Observe(time.Second)
	r.Reset()
	if r.Count() != 0 {
		t.Error("Reset did not clear samples")
	}
}

func TestRecorderTime(t *testing.T) {
	r := NewRecorder("op")
	r.Time(func() { time.Sleep(2 * time.Millisecond) })
	if s := r.Summarize(); s.Mean < 2*time.Millisecond {
		t.Errorf("timed duration %v too short", s.Mean)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder("op")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if r.Count() != 800 {
		t.Errorf("Count = %d, want 800", r.Count())
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 4000 {
		t.Errorf("Value = %d, want 4000", c.Value())
	}
}

func TestFigureRender(t *testing.T) {
	f := Figure{
		Title:  "Fig test",
		XLabel: "x",
		YLabel: "time (s)",
		XOrder: []string{"2", "4", "8"},
	}
	f.AddPoint("pepper", "2", 0.1)
	f.AddPoint("pepper", "4", 0.2)
	f.AddPoint("naive", "2", 0.05)
	out := f.Render()
	if !strings.Contains(out, "Fig test") || !strings.Contains(out, "pepper") {
		t.Errorf("render missing content:\n%s", out)
	}
	if !strings.Contains(out, "0.1000") {
		t.Errorf("render missing values:\n%s", out)
	}
	// x=8 has no points: dash for both series.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "8") || !strings.Contains(last, "-") {
		t.Errorf("missing-point rendering wrong: %q", last)
	}
}

func TestFigureAddPointUpdatesExisting(t *testing.T) {
	var f Figure
	f.AddPoint("s", "1", 1.0)
	f.AddPoint("s", "1", 2.0)
	if len(f.Series) != 1 {
		t.Fatalf("series duplicated: %d", len(f.Series))
	}
	if f.Series[0].Points["1"] != 2.0 {
		t.Errorf("point not updated: %v", f.Series[0].Points)
	}
}
