// Package ops defines the operational probe contract of a running pepperd
// process: the request a thin RPC client (pepperd -probe, the CI smoke
// scripts) sends, and the status object the process answers with.
//
// The json tags of ProbeStatus are the machine-readable schema of
// `pepperd -probe -json`, which scripts parse. That makes them an external
// contract, versioned explicitly: SchemaVersion is bumped on any rename,
// removal or semantic change of an existing field (adding fields is
// compatible and does not bump it), and every consumer asserts the version
// it was written against, so a drifted script fails loudly on the version
// check instead of silently reading zero values out of renamed fields.
//
// The wire encoding between probe and process is gob and does not depend on
// the json tags.
package ops

import (
	"repro/internal/keyspace"
	"repro/internal/transport"
)

// SchemaVersion identifies the ProbeStatus JSON schema. History:
//
//	1 — initial versioned schema (adds schema_version itself, the durable
//	    storage fields backend/wal_records/wal_bytes/snapshots, and the
//	    recovery fields recovered/recovered_items to the PR-6 layout).
const SchemaVersion = 1

// ProbeRequest asks a standalone process to report its state. With Query set
// the process also evaluates a range query over [Lo, Hi] from its own peer;
// Journal additionally records that query in the process's correctness
// journal (polls during failure recovery stay unjournaled — this journal
// never learns of remote failures, so a journaled poll observing the
// transient gap would read as a phantom violation). Audit runs the
// Definition 4 checker over every journaled query of the process, and
// LeaseAudit additionally runs the lease-exclusivity checker
// (history.CheckLeases) over the same journal.
//
// LoadItems, when positive, has the probed process insert that many fresh
// items through its normal insert path, placed in the largest key gap of its
// own range so the loaded interval contains nothing else; the process
// answers with the exact interval it used (LoadedLo/LoadedHi), which a
// follow-up exact-count query probe can then audit. The CI cluster smoke
// uses it to prove the cluster still absorbs writes — and still splits —
// after the bootstrap process is killed.
type ProbeRequest struct {
	Query      bool
	Lo, Hi     keyspace.Key
	Journal    bool
	Audit      bool
	LeaseAudit bool
	LoadItems  int
}

// ProbeStatus reports one process's observable state.
type ProbeStatus struct {
	SchemaVersion int          `json:"schema_version"`
	State         string       `json:"state"` // ring lifecycle state
	Val           keyspace.Key `json:"val"`
	HasRange      bool         `json:"has_range"`
	RangeLo       keyspace.Key `json:"range_lo"`
	RangeHi       keyspace.Key `json:"range_hi"`
	Items         int          `json:"items"`
	Replicas      int          `json:"replicas"`
	FreePool      int          `json:"free_pool"`
	RejoinErr     string       `json:"rejoin_err,omitempty"`
	QueryCount    int          `json:"query_count"` // -1 when no query ran
	QueryErr      string       `json:"query_err,omitempty"`
	Violations    int          `json:"violations"` // -1 unless Audit was requested

	// Read-path counters: the owner-lookup cache of this process's router
	// (hits/misses/evictions/invalidations and current entry count) and the
	// number of scan segments served from a replica instead of the primary.
	CacheHits          uint64 `json:"cache_hits"`
	CacheMisses        uint64 `json:"cache_misses"`
	CacheEvictions     uint64 `json:"cache_evictions"`
	CacheInvalidations uint64 `json:"cache_invalidations"`
	CacheEntries       int    `json:"cache_entries"`
	ReplicaReads       uint64 `json:"replica_reads"`

	// Ownership-epoch state: the current range's epoch (0 when not serving),
	// the number of requests this peer rejected with ErrStaleEpoch, replica
	// reads it refused for a deposed chain, and depositions it underwent.
	Epoch              uint64 `json:"epoch"`
	StaleEpochRejects  uint64 `json:"stale_epoch_rejects"`
	StaleChainRefusals uint64 `json:"stale_chain_refusals"`
	StepDowns          uint64 `json:"step_downs"`

	// Durable storage state: which backend the peer runs on ("memory" or
	// "disk"), its WAL counters, and — when the process restarted from a
	// durable claim — the recovery outcome.
	Backend        string `json:"backend"`
	WALRecords     uint64 `json:"wal_records"`
	WALBytes       int64  `json:"wal_bytes"`
	Snapshots      uint64 `json:"snapshots"`
	Recovered      bool   `json:"recovered"`
	RecoveredItems int    `json:"recovered_items"`

	// Lease state of the peer's current range claim: whether leases are
	// enabled at all (-lease > 0), how long ago the lease was last renewed
	// (milliseconds; -1 when disabled or not serving), whether the local
	// clock already considers it expired (a serving peer whose refreshes are
	// failing — the precursor to a neighbor adopting the range), how many
	// expired-lease adoptions this peer has performed, and the lease-audit
	// verdict (-1 unless LeaseAudit was requested).
	LeaseEnabled    bool   `json:"lease_enabled"`
	LeaseAgeMs      int64  `json:"lease_age_ms"`
	LeaseExpired    bool   `json:"lease_expired"`
	LeaseAdoptions  uint64 `json:"lease_adoptions"`
	LeaseViolations int    `json:"lease_violations"`

	// Wire-trust state: whether this process requires the cluster-secret
	// handshake on every connection, how many connections its transport
	// failed at the handshake (either side), how many received ownership adverts
	// it rejected for a bad signature (replication pushes plus gossiped range
	// adverts), and how many bulk transfers its transport resumed from the
	// receiver's high-water chunk mark after a connection loss.
	AuthEnabled      bool   `json:"auth_enabled"`
	HandshakeRejects uint64 `json:"handshake_rejects"`
	SigRejects       uint64 `json:"sig_rejects"`
	StreamResumes    uint64 `json:"stream_resumes"`

	// Gossip directory state: distinct members known, free-and-untaken
	// directory entries, and anti-entropy rounds initiated. All zero when
	// gossip is disabled (-gossip-interval 0).
	GossipMembers int    `json:"gossip_members"`
	GossipFree    int    `json:"gossip_free"`
	GossipRounds  uint64 `json:"gossip_rounds"`

	// Outcome of a LoadItems request: the closed key interval the loaded
	// items were placed in (both zero when no load ran).
	LoadedLo keyspace.Key `json:"loaded_lo"`
	LoadedHi keyspace.Key `json:"loaded_hi"`
}

func init() {
	transport.RegisterMessage(ProbeRequest{})
	transport.RegisterMessage(ProbeStatus{})
}
