package ring

import "repro/internal/transport"

// Every ring protocol payload and response is registered with the wire
// codec, so the messages survive a real network hop (and simnet's
// StrictSerialization round trip).
func init() {
	transport.RegisterMessage(Node{})
	transport.RegisterMessage(Entry{})
	transport.RegisterMessage([]Entry(nil))
	transport.RegisterMessage(stabilizeReq{})
	transport.RegisterMessage(stabilizeResp{})
	transport.RegisterMessage(joinAckMsg{})
	transport.RegisterMessage(joinedMsg{})
	transport.RegisterMessage(pingResp{})
}
