// Package ring implements the Fault Tolerant Ring of the indexing framework
// (Section 2.2) with the paper's PEPPER correctness and availability
// protocols, alongside the naive baselines it is evaluated against:
//
//   - Chord-style successor lists refreshed by periodic stabilization, with
//     failure detection by pinging the first successor (Section 2.3,
//     appendix Algorithms 14–18).
//   - PEPPER insertSucc (Section 4.3.1, Algorithms 1–2 and appendix 8–11):
//     a joining peer starts in the JOINING state; the pointer to it
//     propagates backwards through predecessors piggybacked on stabilization
//     until the farthest predecessor that needs the pointer acknowledges,
//     and only then does the peer transition to JOINED. This yields
//     consistent successor pointers (Theorem 1, Definition 5).
//   - PEPPER leave (Section 5.1, appendix Algorithms 12–13): a leaving peer
//     enters the LEAVING state; predecessors that point at it lengthen their
//     successor lists by one (they keep the LEAVING entry in front of the
//     fresh entries copied from its successor), and the peer departs only
//     after the farthest such predecessor acknowledges, so a single failure
//     can never disconnect the ring (the Figure 14 scenario).
//   - Naive insertSucc and naive leave, which skip the protocols entirely,
//     used as the baselines of Figures 19, 20 and 22 and to demonstrate the
//     inconsistency and availability-loss scenarios of Sections 4.2.1/5.1.
//
// Higher layers (the Data Store) attach through Callbacks; the ring raises
// the framework's events (INSERT/INSERTED, new-successor, predecessor
// change) without knowing anything about items or ranges, exactly the
// encapsulation the paper argues for in Section 3.
package ring

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/keyspace"
	"repro/internal/transport"
)

// Node identifies a ring participant: its network address (physical id) and
// its current value in the peer-value domain PV. The value determines the
// peer's position on the ring; a split may lower a peer's value, so Node
// values in cached entries can be stale while addresses never are. Nodes are
// compared by address.
type Node struct {
	Addr transport.Addr
	Val  keyspace.Key
}

// IsZero reports whether the node is unset.
func (n Node) IsZero() bool { return n.Addr == "" }

func (n Node) String() string {
	if n.IsZero() {
		return "<none>"
	}
	return fmt.Sprintf("%s(%d)", n.Addr, n.Val)
}

// EntryState is the state a successor-list entry attributes to a peer.
type EntryState uint8

// Successor-list entry states (the paper's stateList values plus LEAVING).
const (
	EntryJoined EntryState = iota
	EntryJoining
	EntryLeaving
)

func (s EntryState) String() string {
	switch s {
	case EntryJoined:
		return "JOINED"
	case EntryJoining:
		return "JOINING"
	case EntryLeaving:
		return "LEAVING"
	default:
		return fmt.Sprintf("EntryState(%d)", uint8(s))
	}
}

// Entry is one successor-list slot: a peer, the state we attribute to it and
// the stabilized flag (STAB/NOTSTAB in appendix Algorithm 17): whether we
// have contacted this peer as our successor since it entered the slot.
type Entry struct {
	Node       Node
	State      EntryState
	Stabilized bool
}

// PeerState is the lifecycle state of the local peer (appendix Section 11.2).
type PeerState uint8

// Peer lifecycle states.
const (
	StateFree PeerState = iota
	StateJoining
	StateJoined
	StateInserting
	StateLeaving
)

func (s PeerState) String() string {
	switch s {
	case StateFree:
		return "FREE"
	case StateJoining:
		return "JOINING"
	case StateJoined:
		return "JOINED"
	case StateInserting:
		return "INSERTING"
	case StateLeaving:
		return "LEAVING"
	default:
		return fmt.Sprintf("PeerState(%d)", uint8(s))
	}
}

// Errors reported by ring operations.
var (
	ErrBusy      = errors.New("ring: peer is busy with another membership operation")
	ErrNotJoined = errors.New("ring: peer is not in the JOINED state")
	ErrNotReady  = errors.New("ring: peer not ready (JOINING)")
	ErrTimeout   = errors.New("ring: protocol acknowledgment timed out")
	ErrDeparted  = errors.New("ring: peer has departed")
)

// Callbacks connect the ring to higher layers. All callbacks are optional
// (nil fields are skipped) and are invoked without ring locks held.
//
// These events are also the ownership-epoch bump sites of the Data Store:
// every membership change the ring raises becomes a new ownership
// incarnation above it (PrepareJoinData/OnJoined carry a split's bumped
// epoch in the opaque payload; OnPredChanged with predFailed set triggers
// failure revival, whose claim must strictly supersede everything the
// failed predecessor ever advertised). The ring itself stays range-agnostic
// — exactly the Section 3 encapsulation — but its failure detector is the
// component whose false positives the epochs exist to fence: a suspicion
// raised against a live peer revives its range at a higher epoch, and the
// deposed incarnation later steps down instead of splitting the range's
// history in two (see ARCHITECTURE.md, "Ownership epochs").
type Callbacks struct {
	// PrepareJoinData is the framework's INSERT event, raised on the
	// inserting peer when the joining peer is about to transition to JOINED
	// (Algorithm 10 lines 20–23). The Data Store returns the payload to hand
	// to the new peer — for a split, the carved-off range and items.
	PrepareJoinData func(joining Node) any
	// OnJoined is the INSERTED event, raised on the joining peer once it is
	// JOINED, with the inserter's payload (Algorithm 11).
	OnJoined func(self Node, pred Node, data any)
	// OnPredChanged is raised when stabilization accepts a new predecessor
	// (the INFOFROMPRED path). prev is the previously accepted predecessor;
	// predFailed reports whether prev was detected dead, which is the
	// trigger for failure revival in the replication manager.
	OnPredChanged func(newPred, prev Node, predFailed bool)
	// OnNewSuccessor is the NEWSUCCEVENT: the first stabilized JOINED
	// successor changed.
	OnNewSuccessor func(succ Node)
}

// Config controls ring behaviour.
type Config struct {
	// SuccListLen is the successor list length d (default 4, the paper's
	// experimental default in Section 6.1).
	SuccListLen int
	// StabPeriod is the ring stabilization period (paper default 4 s,
	// scaled; see EXPERIMENTS.md).
	StabPeriod time.Duration
	// PingPeriod is the successor failure-detection period; defaults to
	// StabPeriod.
	PingPeriod time.Duration
	// CallTimeout bounds individual protocol RPCs.
	CallTimeout time.Duration
	// AckTimeout bounds how long insertSucc/leave wait for their protocol
	// acknowledgment before failing; defaults to 20×StabPeriod.
	AckTimeout time.Duration
	// Naive selects the baseline insertSucc and leave implementations that
	// skip the PEPPER protocols (Section 6.2).
	Naive bool
	// NoProactive disables the proactive predecessor-contact optimization of
	// Section 4.3.1, leaving acknowledgment propagation to the periodic
	// stabilization alone. Used for the ablation benchmarks and for
	// deterministic protocol tests.
	NoProactive bool
	// DisableAutoStabilize turns off the periodic loops so tests can drive
	// stabilization step by step.
	DisableAutoStabilize bool
}

func (c Config) withDefaults() Config {
	if c.SuccListLen <= 0 {
		c.SuccListLen = 4
	}
	if c.StabPeriod <= 0 {
		c.StabPeriod = 40 * time.Millisecond
	}
	if c.PingPeriod <= 0 {
		c.PingPeriod = c.StabPeriod
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = c.StabPeriod
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 20 * c.StabPeriod
	}
	return c
}

// Peer is one ring participant. Construct with NewPeer, then either
// InitRing (first peer) or have an existing peer InsertSucc it.
type Peer struct {
	net  transport.Transport
	cfg  Config
	cb   Callbacks
	addr transport.Addr // immutable identity, safe to read without mu

	mu          sync.Mutex
	self        Node
	state       PeerState
	succ        []Entry
	pred        Node
	lastNewSucc Node
	joinAck     chan Node // receives the joining node's identity on ack
	leaveAck    chan struct{}
	departed    bool

	lifeMu  sync.Mutex // guards started/stopped transitions vs wg
	started bool
	stopped bool
	stopCh  chan struct{}
	wg      sync.WaitGroup

	// stabMu serializes stabilization rounds (periodic and proactive).
	stabMu sync.Mutex
}

// NewPeer constructs a peer in the FREE state and registers its protocol
// handlers on mux. The peer does not participate in any ring until InitRing
// or a join completes.
func NewPeer(net transport.Transport, mux *transport.Mux, cfg Config, self Node, cb Callbacks) *Peer {
	p := &Peer{
		net:    net,
		cfg:    cfg.withDefaults(),
		cb:     cb,
		addr:   self.Addr,
		self:   self,
		state:  StateFree,
		stopCh: make(chan struct{}),
	}
	mux.Handle(methodStabilize, p.handleStabilize)
	mux.Handle(methodPing, p.handlePing)
	mux.Handle(methodJoinAck, p.handleJoinAck)
	mux.Handle(methodJoined, p.handleJoined)
	mux.Handle(methodLeaveAck, p.handleLeaveAck)
	mux.Handle(methodStabNow, p.handleStabNow)
	return p
}

// Self returns the peer's current identity (address and value).
func (p *Peer) Self() Node {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.self
}

// SetVal updates the peer's ring value. A Data Store split lowers the
// splitting peer's value to the split point; successor relationships are
// unaffected (the new peer takes over the old value and the range above the
// split point).
func (p *Peer) SetVal(v keyspace.Key) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.self.Val = v
}

// State returns the peer's lifecycle state.
func (p *Peer) State() PeerState {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state
}

// Pred returns the last accepted predecessor.
func (p *Peer) Pred() Node {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pred
}

// SuccessorList returns a copy of the successor list.
func (p *Peer) SuccessorList() []Entry {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Entry, len(p.succ))
	copy(out, p.succ)
	return out
}

// Successors returns the JOINED successors in list order, the candidates for
// forwarding and replication.
func (p *Peer) Successors() []Node {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []Node
	for _, e := range p.succ {
		if e.State == EntryJoined {
			out = append(out, e.Node)
		}
	}
	return out
}

// FirstStabilizedSuccessor implements getSucc (appendix Algorithm 21): the
// first JOINED entry, returned only if its stabilized flag is set; otherwise
// ok is false and higher layers must wait for stabilization.
func (p *Peer) FirstStabilizedSuccessor() (Node, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, e := range p.succ {
		switch e.State {
		case EntryJoining:
			// Not serving yet; skip.
		case EntryJoined, EntryLeaving:
			// A LEAVING peer remains a valid forwarding target until it
			// departs (it still owns its range until the merge transfer).
			if e.Stabilized {
				return e.Node, true
			}
			return Node{}, false
		}
	}
	return Node{}, false
}

// InitRing makes this peer the first (and only) member of a new ring
// (appendix Algorithm 8). Its successor is itself, represented by an empty
// successor list, and it owns the whole value space.
func (p *Peer) InitRing() error {
	p.mu.Lock()
	if p.state != StateFree {
		p.mu.Unlock()
		return fmt.Errorf("%w: state %s", ErrBusy, p.state)
	}
	p.state = StateJoined
	p.succ = nil
	p.pred = p.self
	self := p.self
	p.mu.Unlock()
	if p.cb.OnJoined != nil {
		p.cb.OnJoined(self, self, nil)
	}
	p.start()
	return nil
}

// AdoptSuccessor makes this FREE peer JOINED with succ seeded as its first
// successor — the recovery re-entry path. A peer restarted from durable
// storage resumes its last ownership incarnation but has lost its ring
// neighbours; seeding a remembered contact (its bootstrap) gives the
// replication manager a push target immediately, so the recovered claim is
// either re-integrated by stabilization or — if a successor revived the
// range while the process was down — deposed through the normal push-conflict
// fencing within one refresh. The entry starts unstabilized; stabilization
// contacts it like any other fresh successor.
func (p *Peer) AdoptSuccessor(succ Node) error {
	p.mu.Lock()
	if p.state != StateFree {
		p.mu.Unlock()
		return fmt.Errorf("%w: state %s", ErrBusy, p.state)
	}
	p.state = StateJoined
	p.succ = []Entry{{Node: succ, State: EntryJoined}}
	p.pred = p.self
	self := p.self
	p.mu.Unlock()
	if p.cb.OnJoined != nil {
		p.cb.OnJoined(self, self, nil)
	}
	p.start()
	return nil
}

// start launches the periodic loops once the peer is part of a ring
// (idempotent; a no-op after Stop, so a join completing during teardown
// cannot race the shutdown).
func (p *Peer) start() {
	if p.cfg.DisableAutoStabilize {
		return
	}
	p.lifeMu.Lock()
	defer p.lifeMu.Unlock()
	if p.started || p.stopped {
		return
	}
	p.started = true
	p.wg.Add(2)
	go p.stabilizeLoop()
	go p.pingLoop()
}

// Stop terminates the peer's background loops without any protocol; used for
// teardown. It does not mark the peer failed on the network.
func (p *Peer) Stop() {
	p.lifeMu.Lock()
	if !p.stopped {
		p.stopped = true
		close(p.stopCh)
	}
	p.lifeMu.Unlock()
	p.wg.Wait()
}

func (p *Peer) stabilizeLoop() {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.StabPeriod)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			p.StabilizeOnce()
		case <-p.stopCh:
			return
		}
	}
}

func (p *Peer) pingLoop() {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.PingPeriod)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			p.PingOnce()
		case <-p.stopCh:
			return
		}
	}
}
