package ring

import (
	"fmt"
	"sort"
)

// CheckConsistency verifies Definition 5 (Consistent Successor Pointers)
// against a snapshot of peers: for every live JOINED peer p, the trimmed
// copy of p's successor list — keeping only pointers to live JOINED peers —
// must satisfy succ(p) = trimList[0] and succ(trimList[i]) = trimList[i+1];
// i.e. no live JOINED peer may be "skipped" between consecutive entries.
//
// The induced ring's successor function follows from peer values: with the
// order-preserving identity map, the successor of a live JOINED peer is the
// next live JOINED peer clockwise by value (values are unique).
//
// It returns nil when the snapshot is consistent. The naive insertSucc is
// expected to fail this check transiently (the Section 4.2.1 scenario);
// PEPPER must never fail it.
func CheckConsistency(peers []*Peer) error {
	type snap struct {
		node Node
		list []Entry
	}
	// Definition 5 is a property of one instant of the history, so the
	// snapshot must be atomic: lock every peer (in address order — no other
	// code path holds two peer locks, so this cannot deadlock), copy, then
	// release. A torn snapshot would flag transitions that never coexisted.
	sorted := make([]*Peer, len(peers))
	copy(sorted, peers)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].addr < sorted[j].addr })
	for _, p := range sorted {
		p.mu.Lock()
	}
	var live []snap
	liveSet := make(map[string]Node)
	for _, p := range sorted {
		if p.departed || p.state == StateFree || p.state == StateJoining {
			continue
		}
		// INSERTING and LEAVING peers are JOINED members of the induced ring.
		s := snap{node: p.self, list: make([]Entry, len(p.succ))}
		copy(s.list, p.succ)
		live = append(live, s)
		liveSet[string(s.node.Addr)] = s.node
	}
	for _, p := range sorted {
		p.mu.Unlock()
	}
	if len(live) <= 1 {
		return nil
	}

	// Induced successor function: next live peer clockwise by value.
	ordered := make([]Node, 0, len(live))
	for _, s := range live {
		ordered = append(ordered, s.node)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Val < ordered[j].Val })
	succOf := make(map[string]Node, len(ordered))
	for i, n := range ordered {
		succOf[string(n.Addr)] = ordered[(i+1)%len(ordered)]
	}

	for _, s := range live {
		// trimList: only pointers to live peers in the (globally) JOINED
		// state (Section 4.3.1.1). The entry's own state label may lag the
		// target's actual state — the definition trims by the peer's state,
		// so membership in the live set is what matters. Peers still in the
		// JOINING state are not in the live set and are exempt.
		var trim []Node
		for _, e := range s.list {
			if n, ok := liveSet[string(e.Node.Addr)]; ok {
				trim = append(trim, n)
			}
		}
		if len(trim) == 0 {
			return fmt.Errorf("ring: %s has no live successors", s.node)
		}
		if want := succOf[string(s.node.Addr)]; trim[0].Addr != want.Addr {
			return fmt.Errorf("ring: %s trimList[0] = %s, want succ = %s", s.node, trim[0], want)
		}
		for i := 0; i+1 < len(trim); i++ {
			if want := succOf[string(trim[i].Addr)]; trim[i+1].Addr != want.Addr {
				return fmt.Errorf("ring: %s trimList[%d→%d] = %s→%s skips %s",
					s.node, i, i+1, trim[i], trim[i+1], want)
			}
		}
	}
	return nil
}

// RingOrder returns the live JOINED peers of the snapshot sorted clockwise
// by value — the induced ring — for tests and tools.
func RingOrder(peers []*Peer) []Node {
	var out []Node
	for _, p := range peers {
		p.mu.Lock()
		if !p.departed && (p.state == StateJoined || p.state == StateInserting || p.state == StateLeaving) {
			out = append(out, p.self)
		}
		p.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Val < out[j].Val })
	return out
}
