package ring

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/keyspace"
	"repro/internal/simnet"
)

// newBareRingPeer builds a peer without network wiring, for pure-function
// property tests on list maintenance.
func newBareRingPeer(d int, addr string, val uint64) *Peer {
	return &Peer{
		cfg:  Config{SuccListLen: d}.withDefaults(),
		addr: simnet.Addr(addr),
		self: Node{Addr: simnet.Addr(addr), Val: keyspace.Key(val)},
	}
}

// Property: normalizeLocked never keeps duplicates, never keeps self, never
// exceeds d JOINED entries, preserves relative order, and reports wrapped
// exactly when self appeared in the input before the cut.
func TestNormalizeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 3000; trial++ {
		d := rng.Intn(6) + 2
		p := newBareRingPeer(d, "self", 0)
		n := rng.Intn(12)
		in := make([]Entry, 0, n)
		selfAt := -1
		for i := 0; i < n; i++ {
			var addr string
			if rng.Intn(8) == 0 {
				addr = "self"
				if selfAt < 0 {
					selfAt = i
				}
			} else {
				addr = fmt.Sprintf("p%d", rng.Intn(8))
			}
			in = append(in, Entry{
				Node:  Node{Addr: simnet.Addr(addr), Val: keyspace.Key(rng.Intn(100))},
				State: EntryState(rng.Intn(3)),
			})
		}
		inCopy := make([]Entry, len(in))
		copy(inCopy, in)

		p.mu.Lock()
		out, wrapped := p.normalizeLocked(in)
		p.mu.Unlock()

		seen := make(map[simnet.Addr]bool)
		joined := 0
		for _, e := range out {
			if e.Node.Addr == "self" {
				t.Fatalf("trial %d: self retained: %v", trial, out)
			}
			if seen[e.Node.Addr] {
				t.Fatalf("trial %d: duplicate %s: %v", trial, e.Node.Addr, out)
			}
			seen[e.Node.Addr] = true
			if e.State == EntryJoined {
				joined++
			}
		}
		if joined > d {
			t.Fatalf("trial %d: %d JOINED entries exceed d=%d: %v", trial, joined, d, out)
		}
		// Order preservation: out must be a subsequence of the input.
		j := 0
		for _, e := range inCopy {
			if j < len(out) && out[j].Node.Addr == e.Node.Addr && out[j].State == e.State {
				j++
			}
		}
		if j != len(out) {
			t.Fatalf("trial %d: output is not an input subsequence\nin:  %v\nout: %v", trial, inCopy, out)
		}
		// wrapped implies self appeared in the input; the converse only
		// holds when self was not cut away by the JOINED cap first.
		if wrapped && selfAt < 0 {
			t.Fatalf("trial %d: wrapped without self in input", trial)
		}
	}
}

// Property: betweenOnRing matches linear interval logic when no wrap occurs
// and is consistent under rotation of all three points.
func TestBetweenOnRingProperties(t *testing.T) {
	f := func(v, lo, hi, rot keyspace.Key) bool {
		want := betweenOnRing(v, lo, hi)
		got := betweenOnRing(v+rot, lo+rot, hi+rot) // rotation invariance
		return want == got
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
	// Linear agreement when lo < hi.
	g := func(vRaw, loRaw, hiRaw uint16) bool {
		v, lo, hi := keyspace.Key(vRaw), keyspace.Key(loRaw), keyspace.Key(hiRaw)
		if lo >= hi {
			return true
		}
		want := lo < v && v < hi
		return betweenOnRing(v, lo, hi) == want
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// Property: appendWrapIfEmpty adds self exactly when the list has no JOINED
// entry, and never otherwise.
func TestAppendWrapIfEmptyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(6)
		in := make([]Entry, 0, n)
		hasJoined := false
		for i := 0; i < n; i++ {
			st := EntryState(rng.Intn(3))
			if st == EntryJoined {
				hasJoined = true
			}
			in = append(in, Entry{Node: Node{Addr: simnet.Addr(fmt.Sprintf("p%d", i))}, State: st})
		}
		self := Node{Addr: "me"}
		out := appendWrapIfEmpty(in, self)
		if hasJoined {
			if len(out) != n {
				t.Fatalf("trial %d: wrap appended despite JOINED entry", trial)
			}
		} else {
			if len(out) != n+1 || out[n].Node.Addr != "me" {
				t.Fatalf("trial %d: wrap not appended to JOINED-free list", trial)
			}
		}
	}
}
