package ring

import (
	"context"
	"fmt"
	"time"

	"repro/internal/keyspace"
	"repro/internal/transport"
)

// RPC method names.
const (
	methodStabilize = "ring.stabilize"
	methodPing      = "ring.ping"
	methodJoinAck   = "ring.joinAck"
	methodJoined    = "ring.joined"
	methodLeaveAck  = "ring.leaveAck"
	methodStabNow   = "ring.stabNow"
)

// stabilizeReq is sent by a peer to its first live successor each round.
type stabilizeReq struct {
	From Node // the contacting predecessor's current identity
}

// stabilizeResp carries the successor's identity, lifecycle state and
// successor list back to the contacting predecessor (Algorithm 18). Pred is
// the responder's current predecessor, used for Chord's rectification: if
// the responder knows a predecessor that lies between the contacting peer
// and itself, the contacting peer's successor pointer is too far and must
// step back — without this, a transiently lost entry could leave two peers
// in a self-reinforcing sub-ring view that forward list copying never heals.
type stabilizeResp struct {
	Node  Node
	State PeerState // StateJoined or StateLeaving
	List  []Entry
	Pred  Node
}

// joinAckMsg tells an inserting peer that its JOINING successor is known to
// every predecessor that needs it (Algorithm 2 lines 12–14).
type joinAckMsg struct {
	Joining Node // the JOINING peer the ack is about
}

// joinedMsg tells a JOINING peer it is now part of the ring (Algorithm 11).
type joinedMsg struct {
	Self Node // the joining peer's identity as recorded by the inserter
	Pred Node // the inserting peer (the new peer's predecessor)
	List []Entry
	Data any // higher-layer payload from PrepareJoinData (the INSERT event)
}

// ctx returns a context bounded by the peer's RPC timeout.
func (p *Peer) ctx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), p.cfg.CallTimeout)
}

// --- Stabilization -------------------------------------------------------

// StabilizeOnce runs one ring stabilization round (appendix Algorithm 16):
// contact the first live non-LEAVING JOINED successor, adopt its list, and
// run the PEPPER join/leave acknowledgment rules.
func (p *Peer) StabilizeOnce() {
	p.stabMu.Lock()
	defer p.stabMu.Unlock()

	p.mu.Lock()
	if p.departed || (p.state != StateJoined && p.state != StateInserting && p.state != StateLeaving) {
		// LEAVING peers keep stabilizing so their own view stays fresh for
		// the final data hand-off, but do not propagate join/leave acks.
		p.mu.Unlock()
		return
	}
	self := p.self
	// Choose the stabilization target: skip our own JOINING child (index 0
	// while INSERTING), JOINING peers (they do not respond) and LEAVING
	// peers (Algorithm 16 lines 3–7).
	target, ok := p.firstUsableSuccLocked()
	p.mu.Unlock()
	if !ok {
		return // alone on the ring, or no usable successor yet
	}

	ctx, cancel := p.ctx()
	resp, err := p.call(ctx, target.Addr, methodStabilize, stabilizeReq{From: self})
	cancel()
	if err != nil {
		return // ping loop handles failed successors
	}
	sr, ok := resp.(stabilizeResp)
	if !ok {
		return
	}
	p.adoptSuccessorList(target, sr)
}

// adoptSuccessorList merges the target successor's response into our list
// (appendix Algorithm 17) and applies the PEPPER acknowledgment rules.
func (p *Peer) adoptSuccessorList(target Node, sr stabilizeResp) {
	p.mu.Lock()
	if p.departed {
		p.mu.Unlock()
		return
	}
	// Staleness guard: if the peer we contacted is no longer our first
	// usable successor (an insertion completed while the round was in
	// flight), adopting its list would clobber the closer successor — and
	// since list entries only propagate forward along the ring, a skipped
	// successor could never be re-learned. Discard the round.
	if cur, ok := p.firstUsableSuccLocked(); !ok || cur.Addr != target.Addr {
		p.mu.Unlock()
		return
	}

	head := Entry{Node: sr.Node, State: EntryJoined, Stabilized: true}
	if sr.State == StateLeaving {
		head.State = EntryLeaving
	}

	var list []Entry
	// Keep our own JOINING child in front while INSERTING (Algorithm 17
	// lines 2–4).
	if p.state == StateInserting && len(p.succ) > 0 && p.succ[0].State == EntryJoining {
		list = append(list, p.succ[0])
	}
	// Keep LEAVING entries positioned before the target: this is the
	// successor-list lengthening that preserves availability (Section 5.1,
	// Algorithm 17 line 1).
	for _, e := range p.succ {
		if e.Node.Addr == target.Addr {
			break
		}
		if e.State == EntryLeaving {
			list = append(list, e)
		}
	}
	list = append(list, head)
	for _, e := range sr.List {
		// Fresh entries start NOTSTAB (Algorithm 17 line 12).
		list = append(list, Entry{Node: e.Node, State: e.State, Stabilized: false})
	}

	list, wrapped := p.normalizeLocked(list)

	// PEPPER acknowledgment rules, derived from Algorithm 16 lines 30–42 and
	// Algorithm 2 lines 9–14, generalized to concurrent membership changes
	// and to rings smaller than the list length.
	//
	// A predecessor q "needs" the pointer to a JOINING peer e when q's list
	// holds e's inserter followed by at least one further JOINED entry —
	// otherwise q could skip e (Definition 5). Since lists hold at most d
	// JOINED entries and the pointer propagates strictly backwards along the
	// chain of JOINED predecessors, the farthest predecessor that needs e is
	// the one whose list has exactly ONE JOINED entry after e. We may only
	// trust that distance measurement when our view is complete: either the
	// list is saturated (d JOINED entries — the cap proves nothing was
	// missing in between) or it wrapped at self (we see the whole ring). In
	// a wrapped list, zero JOINED entries after e also means we are the
	// farthest predecessor (ring-of-two case).
	//
	// The join ack goes to the entry preceding e — always e's inserter, even
	// if our state label for it is stale. The leave ack goes to the LEAVING
	// peer itself, which keeps its entry (that retained entry is the
	// successor-list lengthening of Section 5.1). Entries beyond the d-th
	// JOINED entry were already culled by normalization, which is the
	// "beyond the horizon" drop of Algorithm 17.
	fullHorizon := p.countJoinedLocked(list) >= p.cfg.SuccListLen
	var ackJoinTo, ackJoinAbout Node
	var ackLeaveTo Node
	joinedAfter := 0
	for i := len(list) - 1; i >= 0; i-- {
		e := list[i]
		if e.State == EntryJoined {
			joinedAfter++
			continue
		}
		farthest := (joinedAfter == 1 && (fullHorizon || wrapped)) || (joinedAfter == 0 && wrapped)
		if !farthest {
			continue
		}
		switch e.State {
		case EntryJoining:
			if i > 0 {
				ackJoinTo = list[i-1].Node
				ackJoinAbout = e.Node
			}
		case EntryLeaving:
			ackLeaveTo = e.Node
		}
	}

	// Chord rectification candidate: the target knows a predecessor that —
	// per the value it reported — lies strictly between us and it, meaning
	// our successor pointer may have skipped that peer. The reported value
	// can be stale (ring values move during splits), and acting on a stale
	// value can drag our pointer backwards, so verification against the
	// peer's CURRENT value happens asynchronously before anything changes.
	var rectify Node
	if pr := sr.Pred; !pr.IsZero() && pr.Addr != p.self.Addr &&
		betweenOnRing(pr.Val, p.self.Val, target.Val) && !containsAddr(list, pr.Addr) {
		rectify = pr
	}

	p.succ = list
	p.raiseNewSuccLocked()
	self := p.self
	p.mu.Unlock()

	if !rectify.IsZero() {
		go p.verifyAndRectify(rectify.Addr)
	}
	if !ackJoinTo.IsZero() {
		p.net.Send(self.Addr, ackJoinTo.Addr, methodJoinAck, joinAckMsg{Joining: ackJoinAbout})
	}
	if !ackLeaveTo.IsZero() {
		p.net.Send(self.Addr, ackLeaveTo.Addr, methodLeaveAck, nil)
	}
}

// normalizeLocked dedupes the list by address (keeping the first, freshest
// occurrence), truncates at self (entries past ourselves wrap the ring and
// are redundant), and caps the number of JOINED entries at the configured
// successor list length (Algorithm 17 lines 5–9). wrapped reports whether
// the list was truncated at self, i.e. it covers every other peer we know
// of on the ring. Callers hold p.mu.
func (p *Peer) normalizeLocked(list []Entry) (out []Entry, wrapped bool) {
	seen := make(map[transport.Addr]bool, len(list))
	out = list[:0]
	for _, e := range list {
		if e.Node.Addr == p.self.Addr {
			wrapped = true
			break
		}
		if seen[e.Node.Addr] {
			continue
		}
		seen[e.Node.Addr] = true
		out = append(out, e)
	}
	// Cap JOINED entries at d; drop everything after the d-th JOINED entry.
	joined := 0
	for i, e := range out {
		if e.State != EntryJoined {
			continue
		}
		joined++
		if joined == p.cfg.SuccListLen {
			out = out[:i+1]
			break
		}
	}
	return out, wrapped
}

// firstUsableSuccLocked returns the stabilization target: the first JOINED
// entry, skipping our own JOINING child while INSERTING. Callers hold p.mu.
func (p *Peer) firstUsableSuccLocked() (Node, bool) {
	inserting := p.state == StateInserting
	for i, e := range p.succ {
		if inserting && i == 0 && e.State == EntryJoining {
			continue
		}
		if e.State == EntryJoined {
			return e.Node, true
		}
	}
	return Node{}, false
}

// containsAddr reports whether list holds an entry for addr.
func containsAddr(list []Entry, addr transport.Addr) bool {
	for _, e := range list {
		if e.Node.Addr == addr {
			return true
		}
	}
	return false
}

func (p *Peer) countJoinedLocked(list []Entry) int {
	n := 0
	for _, e := range list {
		if e.State == EntryJoined {
			n++
		}
	}
	return n
}

// raiseNewSuccLocked fires OnNewSuccessor when the first stabilized usable
// successor changed. Callers hold p.mu; the callback runs asynchronously.
func (p *Peer) raiseNewSuccLocked() {
	var first Node
	for _, e := range p.succ {
		if e.State == EntryJoining {
			continue
		}
		if e.Stabilized {
			first = e.Node
		}
		break
	}
	if first.IsZero() || first.Addr == p.lastNewSucc.Addr {
		return
	}
	p.lastNewSucc = first
	if cb := p.cb.OnNewSuccessor; cb != nil {
		go cb(first)
	}
}

// handleStabilize answers a predecessor's stabilization request
// (appendix Algorithm 18). JOINING peers do not respond.
func (p *Peer) handleStabilize(_ transport.Addr, _ string, payload any) (any, error) {
	req, ok := payload.(stabilizeReq)
	if !ok {
		return nil, fmt.Errorf("ring: bad stabilize payload %T", payload)
	}
	p.mu.Lock()
	if p.departed {
		p.mu.Unlock()
		return nil, ErrDeparted
	}
	switch p.state {
	case StateJoined, StateInserting, StateLeaving:
	default:
		p.mu.Unlock()
		return nil, ErrNotReady
	}
	prev := p.pred
	self := p.self
	p.mu.Unlock()

	// Predecessor acceptance. Accept req.From as our predecessor when it is
	// the same peer refreshing, when it sits between our current predecessor
	// and us (a closer peer — someone joined in between), or when our current
	// predecessor is dead (its successor-of-successor reconnecting after a
	// failure; verified by ping so that the stale-contact scenario of
	// Figure 9 cannot shrink or grow anyone's responsibility incorrectly).
	accepted := false
	predFailed := false
	switch {
	case prev.IsZero() || prev.Addr == self.Addr || prev.Addr == req.From.Addr:
		accepted = true
	case req.From.Val == prev.Val:
		// A split handed our boundary value to a new peer: the new holder of
		// the value is our predecessor now; no range movement is implied.
		accepted = true
	case betweenOnRing(req.From.Val, prev.Val, self.Val):
		accepted = true
	default:
		// req.From is behind our current predecessor; only accept if the
		// current predecessor is gone.
		if !p.pingNode(prev.Addr) {
			accepted = true
			predFailed = true
		}
	}
	if accepted && (prev.Addr != req.From.Addr || prev.Val != req.From.Val) {
		p.mu.Lock()
		// Re-check under lock: another contact may have won the race.
		if p.pred.Addr == prev.Addr {
			p.pred = req.From
			p.mu.Unlock()
			if cb := p.cb.OnPredChanged; cb != nil {
				cb(req.From, prev, predFailed)
			}
		} else {
			p.mu.Unlock()
		}
	}

	p.mu.Lock()
	resp := stabilizeResp{Node: p.self, State: StateJoined, List: make([]Entry, len(p.succ)), Pred: p.pred}
	if p.state == StateLeaving {
		resp.State = StateLeaving
	}
	copy(resp.List, p.succ)
	p.mu.Unlock()
	return resp, nil
}

// betweenOnRing reports whether v lies strictly between lo and hi clockwise.
func betweenOnRing(v, lo, hi keyspace.Key) bool {
	if lo == hi {
		return v != lo
	}
	return keyspace.Between(v, lo, hi) && v != hi
}

// pingNode synchronously checks liveness of a peer.
func (p *Peer) pingNode(addr transport.Addr) bool {
	ctx, cancel := p.ctx()
	defer cancel()
	_, err := p.call(ctx, addr, methodPing, nil)
	return err == nil
}

// pingResp reports the pinged peer's current identity and lifecycle state.
type pingResp struct {
	Node  Node
	State PeerState
}

// handlePing answers liveness checks in every state except after departure.
func (p *Peer) handlePing(_ transport.Addr, _ string, _ any) (any, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.departed {
		return nil, ErrDeparted
	}
	return pingResp{Node: p.self, State: p.state}, nil
}

// verifyAndRectify completes a Chord rectification: fetch the candidate's
// current identity and, if its CURRENT value still places it strictly
// between us and our current first successor (and it is serving), adopt it
// as our new first successor.
func (p *Peer) verifyAndRectify(addr transport.Addr) {
	ctx, cancel := p.ctx()
	resp, err := p.call(ctx, addr, methodPing, nil)
	cancel()
	if err != nil {
		return
	}
	pr, ok := resp.(pingResp)
	if !ok || pr.State != StateJoined && pr.State != StateInserting {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.departed || containsAddr(p.succ, pr.Node.Addr) {
		return
	}
	cur, haveSucc := p.firstUsableSuccLocked()
	if haveSucc && !betweenOnRing(pr.Node.Val, p.self.Val, cur.Val) {
		return
	}
	if !haveSucc && len(p.succ) > 0 {
		return // unresolved JOINING/LEAVING entries in front; do not meddle
	}
	p.succ = append([]Entry{{Node: pr.Node, State: EntryJoined}}, p.succ...)
}

// call wraps a network call from this peer.
func (p *Peer) call(ctx context.Context, to transport.Addr, method string, payload any) (any, error) {
	p.mu.Lock()
	from := p.self.Addr
	p.mu.Unlock()
	return p.net.Call(ctx, from, to, method, payload)
}

// --- Failure detection ----------------------------------------------------

// PingOnce runs one round of successor failure detection (appendix
// Algorithm 14): ping the first JOINED successor; if it is gone, remove it
// along with the JOINING entries that followed it — their sponsor died
// before the protocol completed, so their joins are aborted. A LEAVING
// first entry is also pinged and dropped once it departs.
//
// Deviation from Algorithm 14, which *promotes* a live orphaned JOINING
// peer to JOINED: in this implementation the Data Store hand-off happens at
// acknowledgment time, so an orphan holds no range and no items, while the
// dead inserter's successor concurrently revives the failed range from its
// replicas (Section 5.2). Promoting the orphan would make two peers claim
// overlapping responsibility; dropping it keeps recovery single-owner, and
// the orphan peer simply never joins (it can be pooled again as free).
func (p *Peer) PingOnce() {
	p.mu.Lock()
	if p.departed || (p.state != StateJoined && p.state != StateInserting && p.state != StateLeaving) {
		p.mu.Unlock()
		return
	}
	inserting := p.state == StateInserting
	type probe struct {
		idx int
		n   Node
		st  EntryState
	}
	var first *probe
	for i, e := range p.succ {
		if inserting && i == 0 {
			continue
		}
		if e.State == EntryJoined || e.State == EntryLeaving {
			first = &probe{idx: i, n: e.Node, st: e.State}
			break
		}
	}
	p.mu.Unlock()
	if first == nil {
		return
	}
	if p.pingNode(first.n.Addr) {
		return
	}

	// The successor is gone. Remove it together with the JOINING entries
	// directly following it (its children, whose joins are now aborted).
	p.mu.Lock()
	idx := -1
	for i, e := range p.succ {
		if e.Node.Addr == first.n.Addr && e.State == first.st {
			idx = i
			break
		}
	}
	if idx < 0 {
		p.mu.Unlock()
		return
	}
	end := idx + 1
	for end < len(p.succ) && p.succ[end].State == EntryJoining {
		end++
	}
	p.succ = append(p.succ[:idx], p.succ[end:]...)
	p.raiseNewSuccLocked()
	p.mu.Unlock()
}

// --- PEPPER insertSucc ----------------------------------------------------

// InsertSucc inserts newNode as this peer's immediate successor, running the
// PEPPER protocol (Algorithms 1–2) unless the ring is configured naive.
// The call blocks until the new peer is JOINED (ack received and the
// join payload delivered) or ctx/AckTimeout expires.
func (p *Peer) InsertSucc(ctx context.Context, newNode Node) error {
	if p.cfg.Naive {
		return p.naiveInsertSucc(ctx, newNode)
	}

	p.mu.Lock()
	if p.departed {
		p.mu.Unlock()
		return ErrDeparted
	}
	if p.state != StateJoined {
		st := p.state
		p.mu.Unlock()
		return fmt.Errorf("%w: state %s", ErrBusy, st)
	}
	p.state = StateInserting
	p.succ = append([]Entry{{Node: newNode, State: EntryJoining}}, p.succ...)
	ack := make(chan Node, 1)
	p.joinAck = ack
	soloRing := p.countJoinedLocked(p.succ) == 0
	pred := p.pred
	self := p.self
	p.mu.Unlock()

	if soloRing {
		// Ring of one: there are no other predecessors to inform; the
		// insertion is trivially consistent (appendix base case).
		return p.completeJoin(ctx, newNode)
	}

	// Optimization from Section 4.3.1: proactively ask our predecessor to
	// stabilize now instead of waiting out the stabilization period.
	if !p.cfg.NoProactive && !pred.IsZero() && pred.Addr != self.Addr {
		p.net.Send(self.Addr, pred.Addr, methodStabNow, nil)
	}

	deadline := time.NewTimer(p.cfg.AckTimeout)
	defer deadline.Stop()
	select {
	case <-ack:
		return p.completeJoin(ctx, newNode)
	case <-ctx.Done():
		p.abortInsert(newNode)
		return ctx.Err()
	case <-deadline.C:
		p.abortInsert(newNode)
		return fmt.Errorf("%w: insertSucc(%s)", ErrTimeout, newNode)
	}
}

// completeJoin transitions the JOINING successor to JOINED: update local
// state, gather the higher-layer payload (INSERT event) and deliver the
// joined message (Algorithm 10 lines 13–25, Algorithm 11).
func (p *Peer) completeJoin(ctx context.Context, newNode Node) error {
	p.mu.Lock()
	if len(p.succ) == 0 || p.succ[0].Node.Addr != newNode.Addr || p.succ[0].State != EntryJoining {
		p.mu.Unlock()
		return fmt.Errorf("ring: join state lost for %s", newNode)
	}
	p.succ[0].State = EntryJoined
	// Our successor changed: every entry must be re-stabilized before it is
	// used for forwarding (Algorithm 10 line 16).
	for i := range p.succ {
		p.succ[i].Stabilized = false
	}
	p.state = StateJoined
	// The new peer's successor list: everything after it in ours. Only when
	// that holds no JOINED peer at all (a ring of two) do we add ourselves
	// as its successor — we are its predecessor, so in any larger ring an
	// entry for us would be a bogus long-range pointer.
	list := make([]Entry, len(p.succ)-1, len(p.succ))
	copy(list, p.succ[1:])
	list = appendWrapIfEmpty(list, p.self)
	self := p.self
	p.mu.Unlock()

	var data any
	if p.cb.PrepareJoinData != nil {
		data = p.cb.PrepareJoinData(newNode)
	}
	// The joined message carries the Data Store hand-off (the INSERT event's
	// carved-off items), so it is a bulk call: a split moving more items than
	// fit one transport frame streams them across in chunks, and the joining
	// peer installs the range atomically at commit.
	_, err := transport.CallBulk(p.net, ctx, self.Addr, newNode.Addr, methodJoined, joinedMsg{
		Self: newNode,
		Pred: self,
		List: list,
		Data: data,
	})
	if err != nil {
		// The new peer died before completing its join; drop it.
		p.mu.Lock()
		if len(p.succ) > 0 && p.succ[0].Node.Addr == newNode.Addr {
			p.succ = p.succ[1:]
		}
		p.mu.Unlock()
		return fmt.Errorf("ring: joined delivery to %s failed: %v", newNode, err)
	}
	// Stabilize immediately so the new successor becomes usable (STAB) fast.
	if !p.cfg.DisableAutoStabilize {
		go p.StabilizeOnce()
	}
	return nil
}

// appendWrapIfEmpty adds self as the final successor only when the list
// holds no JOINED peer: the ring-of-two bootstrap, where the inserter is the
// new peer's sole successor.
func appendWrapIfEmpty(list []Entry, self Node) []Entry {
	for _, e := range list {
		if e.State == EntryJoined {
			return list
		}
	}
	return append(list, Entry{Node: self, State: EntryJoined})
}

// abortInsert rolls back a timed-out insertion.
func (p *Peer) abortInsert(newNode Node) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.succ) > 0 && p.succ[0].Node.Addr == newNode.Addr && p.succ[0].State == EntryJoining {
		p.succ = p.succ[1:]
	}
	if p.state == StateInserting {
		p.state = StateJoined
	}
	p.joinAck = nil
}

// naiveInsertSucc is the baseline (Section 6.2): the joining peer simply
// becomes the successor with no propagation protocol; stale predecessors can
// skip over it, producing the incorrect results of Section 4.2.1.
func (p *Peer) naiveInsertSucc(ctx context.Context, newNode Node) error {
	p.mu.Lock()
	if p.departed {
		p.mu.Unlock()
		return ErrDeparted
	}
	if p.state != StateJoined {
		st := p.state
		p.mu.Unlock()
		return fmt.Errorf("%w: state %s", ErrBusy, st)
	}
	list := make([]Entry, len(p.succ), len(p.succ)+1)
	copy(list, p.succ)
	list = appendWrapIfEmpty(list, p.self)
	p.succ = append([]Entry{{Node: newNode, State: EntryJoined}}, p.succ...)
	p.succ, _ = p.normalizeLocked(p.succ)
	for i := range p.succ {
		p.succ[i].Stabilized = false
	}
	self := p.self
	p.mu.Unlock()

	var data any
	if p.cb.PrepareJoinData != nil {
		data = p.cb.PrepareJoinData(newNode)
	}
	_, err := transport.CallBulk(p.net, ctx, self.Addr, newNode.Addr, methodJoined, joinedMsg{
		Self: newNode, Pred: self, List: list, Data: data,
	})
	if err != nil {
		p.mu.Lock()
		if len(p.succ) > 0 && p.succ[0].Node.Addr == newNode.Addr {
			p.succ = p.succ[1:]
		}
		p.mu.Unlock()
		return err
	}
	if !p.cfg.DisableAutoStabilize {
		go p.StabilizeOnce()
	}
	return nil
}

// handleJoinAck processes the acknowledgment that completes a PEPPER insert
// (received by the inserting peer from the farthest relevant predecessor).
func (p *Peer) handleJoinAck(_ transport.Addr, _ string, payload any) (any, error) {
	msg, ok := payload.(joinAckMsg)
	if !ok {
		return nil, fmt.Errorf("ring: bad joinAck payload %T", payload)
	}
	p.mu.Lock()
	ch := p.joinAck
	pending := p.state == StateInserting && len(p.succ) > 0 &&
		p.succ[0].State == EntryJoining && p.succ[0].Node.Addr == msg.Joining.Addr
	if pending {
		p.joinAck = nil
	}
	p.mu.Unlock()
	if pending && ch != nil {
		select {
		case ch <- msg.Joining:
		default:
		}
	}
	return nil, nil
}

// handleJoined installs ring state on the joining peer (Algorithm 11) and
// raises the INSERTED event to higher layers.
func (p *Peer) handleJoined(_ transport.Addr, _ string, payload any) (any, error) {
	msg, ok := payload.(joinedMsg)
	if !ok {
		return nil, fmt.Errorf("ring: bad joined payload %T", payload)
	}
	p.mu.Lock()
	if p.departed {
		p.mu.Unlock()
		return nil, ErrDeparted
	}
	if p.state != StateFree && p.state != StateJoining {
		// Duplicate promotion (e.g. orphan adoption racing the inserter).
		p.mu.Unlock()
		return true, nil
	}
	p.state = StateJoined
	p.self = msg.Self
	p.pred = msg.Pred
	p.succ, _ = p.normalizeLocked(append([]Entry(nil), msg.List...))
	for i := range p.succ {
		p.succ[i].Stabilized = false
	}
	self := p.self
	p.mu.Unlock()

	if p.cb.OnJoined != nil {
		p.cb.OnJoined(self, msg.Pred, msg.Data)
	}
	p.start()
	if !p.cfg.DisableAutoStabilize {
		go p.StabilizeOnce()
	}
	return true, nil
}

// handleStabNow triggers an immediate stabilization round (the proactive
// contact optimization), cascading to our own predecessor while the join or
// leave being expedited is still unresolved in our list.
func (p *Peer) handleStabNow(_ transport.Addr, _ string, _ any) (any, error) {
	go func() {
		p.StabilizeOnce()
		p.mu.Lock()
		unresolved := false
		for _, e := range p.succ {
			if e.State == EntryJoining || e.State == EntryLeaving {
				unresolved = true
				break
			}
		}
		pred := p.pred
		self := p.self
		p.mu.Unlock()
		if unresolved && !pred.IsZero() && pred.Addr != self.Addr {
			p.net.Send(self.Addr, pred.Addr, methodStabNow, nil)
		}
	}()
	return nil, nil
}

// --- PEPPER leave ---------------------------------------------------------

// Leave executes the graceful departure protocol (Section 5.1): enter the
// LEAVING state, let predecessors lengthen their successor lists via
// stabilization, and return once the farthest predecessor acknowledges. The
// caller then transfers its Data Store state and calls Depart. With Naive
// configured, Leave returns immediately (the baseline simply leaves).
func (p *Peer) Leave(ctx context.Context) error {
	p.mu.Lock()
	if p.departed {
		p.mu.Unlock()
		return ErrDeparted
	}
	if p.state != StateJoined {
		st := p.state
		p.mu.Unlock()
		return fmt.Errorf("%w: state %s", ErrBusy, st)
	}
	if p.cfg.Naive {
		p.state = StateLeaving
		p.mu.Unlock()
		return nil
	}
	p.state = StateLeaving
	ack := make(chan struct{}, 1)
	p.leaveAck = ack
	pred := p.pred
	self := p.self
	p.mu.Unlock()

	// Solo ring: no predecessors to inform.
	if pred.IsZero() || pred.Addr == self.Addr {
		return nil
	}

	// Proactively trigger stabilization at the predecessor (same
	// optimization as insertSucc).
	if !p.cfg.NoProactive {
		p.net.Send(self.Addr, pred.Addr, methodStabNow, nil)
	}

	deadline := time.NewTimer(p.cfg.AckTimeout)
	defer deadline.Stop()
	select {
	case <-ack:
		return nil
	case <-ctx.Done():
		p.revertLeave()
		return ctx.Err()
	case <-deadline.C:
		p.revertLeave()
		return fmt.Errorf("%w: leave(%s)", ErrTimeout, self)
	}
}

// revertLeave returns a timed-out leaver to JOINED.
func (p *Peer) revertLeave() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.state == StateLeaving {
		p.state = StateJoined
	}
	p.leaveAck = nil
}

// handleLeaveAck signals the leaving peer that it may depart.
func (p *Peer) handleLeaveAck(_ transport.Addr, _ string, _ any) (any, error) {
	p.mu.Lock()
	ch := p.leaveAck
	p.leaveAck = nil
	p.mu.Unlock()
	if ch != nil {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	return nil, nil
}

// Depart removes the peer from the network: it stops answering all traffic
// (pings from predecessors will now prune it) and halts its loops. After
// Depart the peer object is defunct; a new Peer must be constructed to
// rejoin (free peers re-enter through the Data Store's free pool).
func (p *Peer) Depart() {
	p.mu.Lock()
	p.departed = true
	p.state = StateFree
	addr := p.self.Addr
	p.mu.Unlock()
	transport.Deregister(p.net, addr)
	p.Stop()
}
