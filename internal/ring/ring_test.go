package ring

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/keyspace"
	"repro/internal/simnet"
)

// testCluster wires peers to one simnet for ring-layer tests.
type testCluster struct {
	t     *testing.T
	net   *simnet.Network
	cfg   Config
	mu    sync.Mutex
	peers map[simnet.Addr]*Peer
}

func fastRingConfig() Config {
	return Config{
		SuccListLen: 4,
		StabPeriod:  4 * time.Millisecond,
		PingPeriod:  4 * time.Millisecond,
		CallTimeout: 30 * time.Millisecond,
		AckTimeout:  2 * time.Second,
	}
}

func newTestCluster(t *testing.T, cfg Config) *testCluster {
	t.Helper()
	nc := simnet.Config{DeadCallDelay: time.Millisecond, Seed: 1}
	return &testCluster{
		t:     t,
		net:   simnet.New(nc),
		cfg:   cfg,
		peers: make(map[simnet.Addr]*Peer),
	}
}

func (tc *testCluster) addPeer(addr string, val uint64) *Peer {
	tc.t.Helper()
	mux := simnet.NewMux()
	p := NewPeer(tc.net, mux, tc.cfg, Node{Addr: simnet.Addr(addr), Val: keyspace.Key(val)}, Callbacks{})
	if err := tc.net.Register(simnet.Addr(addr), mux.Dispatch); err != nil {
		tc.t.Fatal(err)
	}
	tc.mu.Lock()
	tc.peers[simnet.Addr(addr)] = p
	tc.mu.Unlock()
	tc.t.Cleanup(p.Stop)
	return p
}

func (tc *testCluster) addPeerCB(addr string, val uint64, cb Callbacks) *Peer {
	tc.t.Helper()
	mux := simnet.NewMux()
	p := NewPeer(tc.net, mux, tc.cfg, Node{Addr: simnet.Addr(addr), Val: keyspace.Key(val)}, cb)
	if err := tc.net.Register(simnet.Addr(addr), mux.Dispatch); err != nil {
		tc.t.Fatal(err)
	}
	tc.mu.Lock()
	tc.peers[simnet.Addr(addr)] = p
	tc.mu.Unlock()
	tc.t.Cleanup(p.Stop)
	return p
}

// predByValue returns the JOINED peer that would precede a new peer with
// value v on the ring, or nil if none is ready.
func (tc *testCluster) predByValue(v keyspace.Key) *Peer {
	order := RingOrder(tc.all())
	var best Node
	for _, n := range order {
		if n.Val < v && (best.IsZero() || n.Val > best.Val) {
			best = n
		}
	}
	if best.IsZero() && len(order) > 0 {
		// v is below every peer: its predecessor is the largest value (wrap).
		best = order[len(order)-1]
	}
	if best.IsZero() {
		return nil
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	p := tc.peers[best.Addr]
	if p != nil && p.State() == StateJoined {
		return p
	}
	return nil
}

func (tc *testCluster) all() []*Peer {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	out := make([]*Peer, 0, len(tc.peers))
	for _, p := range tc.peers {
		out = append(out, p)
	}
	return out
}

// buildRing creates and joins n peers with evenly spaced values, returning
// them in ring (value) order. The first peer inits the ring; each next peer
// is inserted as the successor of the peer before it by value.
func (tc *testCluster) buildRing(n int) []*Peer {
	tc.t.Helper()
	peers := make([]*Peer, n)
	for i := 0; i < n; i++ {
		peers[i] = tc.addPeer(fmt.Sprintf("p%d", i), uint64(i+1)*100)
	}
	if err := peers[0].InitRing(); err != nil {
		tc.t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 1; i < n; i++ {
		if err := peers[i-1].InsertSucc(ctx, peers[i].Self()); err != nil {
			tc.t.Fatalf("insert peer %d: %v", i, err)
		}
	}
	return peers
}

func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func waitConsistent(t *testing.T, peers []*Peer) {
	t.Helper()
	var last error
	waitUntil(t, 5*time.Second, "ring consistency", func() bool {
		last = CheckConsistency(peers)
		return last == nil
	})
	if last != nil {
		t.Fatal(last)
	}
}

func TestInitRingSolo(t *testing.T) {
	tc := newTestCluster(t, fastRingConfig())
	p := tc.addPeer("a", 100)
	if err := p.InitRing(); err != nil {
		t.Fatal(err)
	}
	if p.State() != StateJoined {
		t.Errorf("state = %s, want JOINED", p.State())
	}
	if p.Pred().Addr != "a" {
		t.Errorf("solo pred = %v, want self", p.Pred())
	}
	if len(p.Successors()) != 0 {
		t.Errorf("solo peer should have no successor entries, got %v", p.Successors())
	}
	if err := p.InitRing(); err == nil {
		t.Error("second InitRing must fail")
	}
}

func TestInsertIntoSoloRing(t *testing.T) {
	tc := newTestCluster(t, fastRingConfig())
	a := tc.addPeer("a", 100)
	b := tc.addPeer("b", 200)
	if err := a.InitRing(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := a.InsertSucc(ctx, b.Self()); err != nil {
		t.Fatal(err)
	}
	if b.State() != StateJoined {
		t.Errorf("b state = %s, want JOINED", b.State())
	}
	succs := a.Successors()
	if len(succs) != 1 || succs[0].Addr != "b" {
		t.Errorf("a successors = %v, want [b]", succs)
	}
	succs = b.Successors()
	if len(succs) != 1 || succs[0].Addr != "a" {
		t.Errorf("b successors = %v, want [a]", succs)
	}
	if b.Pred().Addr != "a" {
		t.Errorf("b pred = %v, want a", b.Pred())
	}
	waitConsistent(t, tc.all())
}

func TestBuildRingOfEight(t *testing.T) {
	tc := newTestCluster(t, fastRingConfig())
	peers := tc.buildRing(8)
	waitConsistent(t, peers)
	// After enough stabilization every peer should know d JOINED successors.
	waitUntil(t, 5*time.Second, "full successor lists", func() bool {
		for _, p := range peers {
			if len(p.Successors()) < tc.cfg.SuccListLen {
				return false
			}
		}
		return true
	})
	// Successor lists must converge to ring order (entry state labels can
	// lag the global state briefly, so poll).
	order := RingOrder(peers)
	pos := make(map[simnet.Addr]int)
	for i, n := range order {
		pos[n.Addr] = i
	}
	inOrder := func() bool {
		for _, p := range peers {
			self := pos[p.Self().Addr]
			succs := p.Successors()
			if len(succs) < tc.cfg.SuccListLen {
				return false
			}
			for off, s := range succs {
				if want := order[(self+1+off)%len(order)].Addr; s.Addr != want {
					return false
				}
			}
		}
		return true
	}
	waitUntil(t, 5*time.Second, "successor lists in ring order", inOrder)
}

func TestPredTracking(t *testing.T) {
	tc := newTestCluster(t, fastRingConfig())
	peers := tc.buildRing(5)
	waitConsistent(t, peers)
	order := RingOrder(peers)
	byAddr := make(map[simnet.Addr]*Peer)
	for _, p := range peers {
		byAddr[p.Self().Addr] = p
	}
	waitUntil(t, 5*time.Second, "predecessor pointers", func() bool {
		for i, n := range order {
			pred := order[(i+len(order)-1)%len(order)]
			if byAddr[n.Addr].Pred().Addr != pred.Addr {
				return false
			}
		}
		return true
	})
}

// Theorem 1: with PEPPER insertSucc, successor pointers stay consistent at
// every instant while peers join concurrently in disjoint neighbourhoods
// (insertions more than d positions apart, which is what Data Store splits
// produce — a split only involves one peer and its local successors).
func TestConsistencyDuringConcurrentInserts(t *testing.T) {
	cfg := fastRingConfig()
	cfg.SuccListLen = 2
	tc := newTestCluster(t, cfg)
	peers := tc.buildRing(12)
	waitConsistent(t, peers)

	stop := make(chan struct{})
	violations := make(chan error, 1)
	var checker sync.WaitGroup
	checker.Add(1)
	go func() {
		defer checker.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := CheckConsistency(tc.all()); err != nil {
				select {
				case violations <- err:
				default:
				}
				return
			}
		}
	}()

	// Concurrent inserts at positions 0, 3, 6, 9: neighbourhoods (inserter
	// plus d-1 predecessors) are disjoint for d=2.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for w, pos := range []int{0, 3, 6, 9} {
		wg.Add(1)
		go func(w, pos int) {
			defer wg.Done()
			inserter := peers[pos]
			p := tc.addPeer(fmt.Sprintf("n%d", w), uint64(pos+1)*100+50)
			if err := inserter.InsertSucc(ctx, p.Self()); err != nil {
				t.Errorf("insert n%d: %v", w, err)
			}
		}(w, pos)
	}
	wg.Wait()
	close(stop)
	checker.Wait()
	select {
	case err := <-violations:
		for _, p := range tc.all() {
			p.mu.Lock()
			t.Logf("%s state=%s list=%v", p.self, p.state, p.succ)
			p.mu.Unlock()
		}
		t.Fatalf("consistency violated during inserts: %v", err)
	default:
	}
	waitConsistent(t, tc.all())
}

// Heavy churn in overlapping neighbourhoods: transient views may briefly lag
// while the ring grows (the scan layer masks these windows by validating
// continuation points), but the ring must converge to consistency and every
// insert must complete.
func TestEventualConsistencyUnderHeavyChurn(t *testing.T) {
	tc := newTestCluster(t, fastRingConfig())
	peers := tc.buildRing(8)
	waitConsistent(t, peers)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// One new value per gap: concurrent joins overlap in successor
			// list neighbourhoods (d=4 spans half the base ring) but never
			// race within the same gap — matching what Data Store splits
			// produce, where a new value always comes from inside the
			// splitting peer's own range.
			val := uint64(w+1)*100 + 10
			p := tc.addPeer(fmt.Sprintf("n%d", w), val)
			// Insert at the value-correct predecessor; re-resolve on every
			// retry since a concurrent join may have changed it.
			for {
				inserter := tc.predByValue(keyspace.Key(val))
				if inserter == nil {
					time.Sleep(time.Millisecond)
					continue
				}
				err := inserter.InsertSucc(ctx, p.Self())
				if err == nil {
					return
				}
				if errors.Is(err, ErrBusy) || errors.Is(err, ErrTimeout) {
					time.Sleep(time.Millisecond)
					continue
				}
				t.Errorf("insert n%d: %v", w, err)
				return
			}
		}(w)
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	var last error
	for time.Now().Before(deadline) {
		if last = CheckConsistency(tc.all()); last == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if last != nil {
		for _, p := range tc.all() {
			p.mu.Lock()
			t.Logf("%s state=%s pred=%s list=%v", p.self, p.state, p.pred, p.succ)
			p.mu.Unlock()
		}
		t.Fatalf("ring never converged: %v", last)
	}
	if got := len(RingOrder(tc.all())); got != 16 {
		t.Errorf("ring has %d members, want 16", got)
	}
}

// Section 4.2.1: the naive insertSucc leaves distant predecessors pointing
// past the new peer — the checker must flag it until stabilization runs.
func TestNaiveInsertBreaksConsistency(t *testing.T) {
	cfg := fastRingConfig()
	cfg.Naive = true
	cfg.SuccListLen = 2
	cfg.DisableAutoStabilize = true
	tc := newTestCluster(t, cfg)

	a := tc.addPeer("a", 100)
	b := tc.addPeer("b", 200)
	c := tc.addPeer("c", 300)
	if err := a.InitRing(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := a.InsertSucc(ctx, b.Self()); err != nil {
		t.Fatal(err)
	}
	if err := b.InsertSucc(ctx, c.Self()); err != nil {
		t.Fatal(err)
	}
	// Manual stabilization until everyone has full lists.
	for i := 0; i < 4; i++ {
		a.StabilizeOnce()
		b.StabilizeOnce()
		c.StabilizeOnce()
	}
	if err := CheckConsistency(tc.all()); err != nil {
		t.Fatalf("base ring inconsistent: %v", err)
	}

	// Insert x between a and b. Naive: x is JOINED instantly, but c still
	// has [a, b] and skips x.
	x := tc.addPeer("x", 150)
	if err := a.InsertSucc(ctx, x.Self()); err != nil {
		t.Fatal(err)
	}
	if err := CheckConsistency(tc.all()); err == nil {
		t.Fatal("naive insert should leave the ring transiently inconsistent (Section 4.2.1)")
	}
	// Stabilization repairs it.
	for i := 0; i < 4; i++ {
		a.StabilizeOnce()
		b.StabilizeOnce()
		c.StabilizeOnce()
		x.StabilizeOnce()
	}
	if err := CheckConsistency(tc.all()); err != nil {
		t.Fatalf("ring should converge after stabilization: %v", err)
	}
}

// The PEPPER insert ack must wait for propagation to the farthest relevant
// predecessor; with periodic stabilization disabled and the proactive
// optimization off, the insert completes only after manual rounds.
func TestPepperAckRequiresPropagation(t *testing.T) {
	cfg := fastRingConfig()
	cfg.SuccListLen = 3
	cfg.DisableAutoStabilize = true
	cfg.NoProactive = true
	tc := newTestCluster(t, cfg)

	peers := make([]*Peer, 5)
	for i := range peers {
		peers[i] = tc.addPeer(fmt.Sprintf("p%d", i), uint64(i+1)*100)
	}
	if err := peers[0].InitRing(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for i := 1; i < 5; i++ {
		done := make(chan error, 1)
		go func() { done <- peers[i-1].InsertSucc(ctx, peers[i].Self()) }()
		// Drive stabilization until the join completes.
		for {
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
			default:
				for _, p := range peers[:i] {
					p.StabilizeOnce()
				}
				time.Sleep(time.Millisecond)
				continue
			}
			break
		}
	}
	for i := 0; i < 6; i++ {
		for _, p := range peers {
			p.StabilizeOnce()
		}
	}
	if err := CheckConsistency(peers); err != nil {
		t.Fatalf("ring inconsistent after build: %v", err)
	}

	// Insert x as successor of p2 (value 350). The ack must not arrive until
	// the farthest predecessor (p0, distance d-1=2 back from p2) has seen x.
	x := tc.addPeer("x", 350)
	done := make(chan error, 1)
	go func() { done <- peers[2].InsertSucc(ctx, x.Self()) }()
	time.Sleep(20 * time.Millisecond)
	select {
	case err := <-done:
		t.Fatalf("insert completed with no stabilization at all: %v", err)
	default:
	}
	// One round at the direct predecessor p1 is not enough for d=3 with a
	// full horizon: p1 sees x mid-list, not at penultimate position.
	peers[1].StabilizeOnce()
	time.Sleep(20 * time.Millisecond)
	select {
	case err := <-done:
		t.Fatalf("insert completed after only the direct predecessor stabilized: %v", err)
	default:
	}
	if x.State() == StateJoined {
		t.Fatal("x must still be JOINING")
	}
	// Now p0 stabilizes and sees x at the penultimate position -> ack.
	peers[0].StabilizeOnce()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("insert did not complete after propagation reached the farthest predecessor")
	}
	waitUntil(t, time.Second, "x joined", func() bool { return x.State() == StateJoined })
	if err := CheckConsistency(tc.all()); err != nil {
		t.Fatalf("ring inconsistent after PEPPER insert: %v", err)
	}
}

func TestInsertBusyOnConcurrentInsertAtSamePeer(t *testing.T) {
	cfg := fastRingConfig()
	cfg.DisableAutoStabilize = true
	cfg.NoProactive = true
	tc := newTestCluster(t, cfg)
	a := tc.addPeer("a", 100)
	b := tc.addPeer("b", 200)
	c := tc.addPeer("c", 300)
	if err := a.InitRing(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := a.InsertSucc(ctx, c.Self()); err != nil {
		t.Fatal(err)
	}
	// Let the one-shot post-join stabilizations settle so no stray round can
	// ack the next insert early.
	time.Sleep(50 * time.Millisecond)
	// Start a slow PEPPER insert (needs stabilization, which is manual).
	done := make(chan error, 1)
	go func() { done <- a.InsertSucc(ctx, b.Self()) }()
	waitUntil(t, time.Second, "insert to start", func() bool { return a.State() == StateInserting })
	d := tc.addPeer("d", 400)
	if err := a.InsertSucc(ctx, d.Self()); !errors.Is(err, ErrBusy) {
		t.Errorf("concurrent insert = %v, want ErrBusy", err)
	}
	c.StabilizeOnce() // lets the pending insert finish (ring of 2: c acks)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestInsertUnreachableNewPeer(t *testing.T) {
	tc := newTestCluster(t, fastRingConfig())
	a := tc.addPeer("a", 100)
	if err := a.InitRing(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	ghost := Node{Addr: "ghost", Val: 200}
	if err := a.InsertSucc(ctx, ghost); err == nil {
		t.Fatal("inserting an unreachable peer must fail")
	}
	if a.State() != StateJoined {
		t.Errorf("a state = %s, want JOINED after failed insert", a.State())
	}
	if len(a.Successors()) != 0 {
		t.Errorf("ghost left in successor list: %v", a.SuccessorList())
	}
}

func TestFailureDetectionReconnects(t *testing.T) {
	tc := newTestCluster(t, fastRingConfig())
	peers := tc.buildRing(6)
	waitConsistent(t, peers)

	victim := peers[3]
	tc.net.Kill(victim.Self().Addr)
	victim.Stop()

	remaining := make([]*Peer, 0, 5)
	for _, p := range peers {
		if p != victim {
			remaining = append(remaining, p)
		}
	}
	waitConsistent(t, remaining)
	// peers[2] must now point at peers[4].
	waitUntil(t, 5*time.Second, "reconnect", func() bool {
		s := peers[2].Successors()
		return len(s) > 0 && s[0].Addr == peers[4].Self().Addr
	})
}

func TestPredFailureRaisesCallback(t *testing.T) {
	cfg := fastRingConfig()
	tc := newTestCluster(t, cfg)

	var mu sync.Mutex
	var failedEvents []Node

	peers := make([]*Peer, 4)
	for i := range peers {
		i := i
		cb := Callbacks{
			OnPredChanged: func(newPred, prev Node, predFailed bool) {
				if predFailed {
					mu.Lock()
					failedEvents = append(failedEvents, newPred)
					mu.Unlock()
				}
			},
		}
		peers[i] = tc.addPeerCB(fmt.Sprintf("p%d", i), uint64(i+1)*100, cb)
	}
	if err := peers[0].InitRing(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 1; i < 4; i++ {
		if err := peers[i-1].InsertSucc(ctx, peers[i].Self()); err != nil {
			t.Fatal(err)
		}
	}
	waitConsistent(t, peers)
	// Give predecessor pointers a moment to settle everywhere.
	waitUntil(t, 5*time.Second, "pred settled", func() bool {
		return peers[2].Pred().Addr == peers[1].Self().Addr
	})

	tc.net.Kill(peers[1].Self().Addr)
	peers[1].Stop()

	// peers[2] must eventually accept peers[0] as predecessor with the
	// failure flag set.
	waitUntil(t, 15*time.Second, "failure revival callback", func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, n := range failedEvents {
			if n.Addr == peers[0].Self().Addr {
				return true
			}
		}
		return false
	})
}

// The Figure 9 guard: a stale predecessor contact (from a peer further back
// than the live current predecessor) must not be accepted.
func TestStaleContactRejected(t *testing.T) {
	tc := newTestCluster(t, fastRingConfig())
	peers := tc.buildRing(3) // a(100) b(200) c(300)
	waitConsistent(t, peers)
	waitUntil(t, 5*time.Second, "pred settled", func() bool {
		return peers[2].Pred().Addr == peers[1].Self().Addr
	})
	// Simulate a stale stabilization contact from peers[0] to peers[2]
	// while peers[1] is alive between them.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_, err := tc.net.Call(ctx, peers[0].Self().Addr, peers[2].Self().Addr,
		methodStabilize, stabilizeReq{From: peers[0].Self()})
	if err != nil {
		t.Fatal(err)
	}
	if got := peers[2].Pred().Addr; got != peers[1].Self().Addr {
		t.Errorf("stale contact accepted: pred = %s, want %s", got, peers[1].Self().Addr)
	}
}

// Section 5.1 / Figure 14: naive leave plus a single failure disconnects a
// d=2 ring; PEPPER leave survives the same schedule.
func TestLeaveAvailability(t *testing.T) {
	run := func(naive bool) error {
		cfg := fastRingConfig()
		cfg.SuccListLen = 2
		cfg.Naive = naive
		tc := newTestCluster(t, cfg)
		peers := tc.buildRing(5)
		waitConsistent(t, peers)
		waitUntil(t, 5*time.Second, "full lists", func() bool {
			for _, p := range peers {
				if len(p.Successors()) < 2 {
					return false
				}
			}
			return true
		})

		// peers[2] leaves; then its old successor peers[3] fails at once.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := peers[2].Leave(ctx); err != nil {
			return fmt.Errorf("leave: %v", err)
		}
		peers[2].Depart()
		tc.net.Kill(peers[3].Self().Addr)
		peers[3].Stop()

		remaining := []*Peer{peers[0], peers[1], peers[4]}
		deadline := time.Now().Add(2 * time.Second)
		var last error
		for time.Now().Before(deadline) {
			last = CheckConsistency(remaining)
			if last == nil {
				// Also require peers[1] to have found a live successor.
				if s := peers[1].Successors(); len(s) > 0 && tc.net.Alive(s[0].Addr) {
					return nil
				}
				last = fmt.Errorf("peers[1] has no live successor: %v", peers[1].SuccessorList())
			}
			time.Sleep(5 * time.Millisecond)
		}
		if !naive {
			for _, p := range remaining {
				p.mu.Lock()
				t.Logf("PEPPER leave debug: %s state=%s pred=%s list=%v", p.self, p.state, p.pred, p.succ)
				p.mu.Unlock()
			}
		}
		return last
	}

	if err := run(false); err != nil {
		t.Errorf("PEPPER leave failed to preserve availability: %v", err)
	}
	if err := run(true); err == nil {
		t.Error("naive leave unexpectedly survived leave+failure with d=2 (Figure 14 scenario)")
	}
}

// A leaving peer's predecessor lengthens its successor list by one while the
// LEAVING entry is present (Section 5.1, Figure 15).
func TestLeaveLengthensPredecessorList(t *testing.T) {
	cfg := fastRingConfig()
	cfg.SuccListLen = 2
	tc := newTestCluster(t, cfg)
	peers := tc.buildRing(5)
	waitConsistent(t, peers)
	waitUntil(t, 5*time.Second, "full lists", func() bool {
		for _, p := range peers {
			if len(p.Successors()) < 2 {
				return false
			}
		}
		return true
	})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := peers[2].Leave(ctx); err != nil {
		t.Fatal(err)
	}
	// After the ack, the predecessor peers[1] must hold the LEAVING entry
	// plus d JOINED entries.
	waitUntil(t, 2*time.Second, "lengthened list at predecessor", func() bool {
		list := peers[1].SuccessorList()
		var leaving, joined int
		for _, e := range list {
			switch e.State {
			case EntryLeaving:
				leaving++
			case EntryJoined:
				joined++
			}
		}
		return leaving == 1 && joined >= 2
	})
	peers[2].Depart()
	remaining := []*Peer{peers[0], peers[1], peers[3], peers[4]}
	waitConsistent(t, remaining)
}

func TestLeaveSolo(t *testing.T) {
	tc := newTestCluster(t, fastRingConfig())
	a := tc.addPeer("a", 100)
	if err := a.InitRing(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := a.Leave(ctx); err != nil {
		t.Fatalf("solo leave: %v", err)
	}
	a.Depart()
	if a.State() != StateFree {
		t.Errorf("state after depart = %s", a.State())
	}
}

func TestLeaveWhileBusy(t *testing.T) {
	cfg := fastRingConfig()
	cfg.DisableAutoStabilize = true
	cfg.NoProactive = true
	tc := newTestCluster(t, cfg)
	a := tc.addPeer("a", 100)
	b := tc.addPeer("b", 200)
	if err := a.InitRing(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := a.InsertSucc(ctx, b.Self()); err != nil {
		t.Fatal(err)
	}
	// Let the one-shot post-join stabilizations settle so no stray round can
	// ack the next insert early.
	time.Sleep(50 * time.Millisecond)
	c := tc.addPeer("c", 300)
	done := make(chan error, 1)
	go func() { done <- a.InsertSucc(ctx, c.Self()) }()
	waitUntil(t, time.Second, "inserting", func() bool { return a.State() == StateInserting })
	lctx, lcancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer lcancel()
	if err := a.Leave(lctx); !errors.Is(err, ErrBusy) {
		t.Errorf("leave while inserting = %v, want ErrBusy", err)
	}
	b.StabilizeOnce()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// An inserter that dies mid-protocol leaves its JOINING child orphaned; the
// predecessor's ping loop drops the orphan along with the corpse (see the
// PingOnce doc for why this deviates from Algorithm 14's promotion) and the
// ring reconnects around both.
func TestOrphanAbortedOnInserterDeath(t *testing.T) {
	cfg := fastRingConfig()
	cfg.SuccListLen = 3
	cfg.DisableAutoStabilize = true
	cfg.NoProactive = true
	cfg.AckTimeout = 10 * time.Second
	tc := newTestCluster(t, cfg)

	peers := make([]*Peer, 5)
	for i := range peers {
		peers[i] = tc.addPeer(fmt.Sprintf("p%d", i), uint64(i+1)*100)
	}
	if err := peers[0].InitRing(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for i := 1; i < 5; i++ {
		done := make(chan error, 1)
		go func() { done <- peers[i-1].InsertSucc(ctx, peers[i].Self()) }()
		for {
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("insert %d: %v", i, err)
				}
			default:
				for _, p := range peers[:i] {
					p.StabilizeOnce()
				}
				continue
			}
			break
		}
	}
	for i := 0; i < 6; i++ {
		for _, p := range peers {
			p.StabilizeOnce()
		}
	}

	// p2 starts inserting x, then dies before the ack can fire.
	x := tc.addPeer("x", 350)
	insertErr := make(chan error, 1)
	go func() { insertErr <- peers[2].InsertSucc(ctx, x.Self()) }()
	// One stabilization at p1 propagates the JOINING entry into p1's list.
	waitUntil(t, time.Second, "inserting state", func() bool { return peers[2].State() == StateInserting })
	peers[1].StabilizeOnce()
	hasJoining := func(p *Peer) bool {
		for _, e := range p.SuccessorList() {
			if e.State == EntryJoining && e.Node.Addr == "x" {
				return true
			}
		}
		return false
	}
	if !hasJoining(peers[1]) {
		t.Fatal("p1 did not pick up the JOINING entry")
	}
	tc.net.Kill(peers[2].Self().Addr)
	peers[2].Stop()

	// p1's ping loop removes the dead p2 and the orphaned JOINING x with it.
	waitUntil(t, 5*time.Second, "orphan dropped", func() bool {
		peers[1].PingOnce()
		if !hasJoining(peers[1]) {
			s := peers[1].Successors()
			return len(s) > 0 && s[0].Addr == peers[3].Self().Addr
		}
		return false
	})
	if x.State() == StateJoined {
		t.Fatal("orphan must not be promoted")
	}
	// Ring must converge without p2 and without x.
	survivors := []*Peer{peers[0], peers[1], peers[3], peers[4]}
	for i := 0; i < 8; i++ {
		for _, p := range survivors {
			p.StabilizeOnce()
			p.PingOnce()
		}
	}
	if err := CheckConsistency(survivors); err != nil {
		t.Fatalf("ring inconsistent after orphan drop: %v", err)
	}
}

func TestSetValAndRingOrder(t *testing.T) {
	tc := newTestCluster(t, fastRingConfig())
	peers := tc.buildRing(3)
	waitConsistent(t, peers)
	// A split lowers the splitting peer's value; ring order must follow.
	peers[1].SetVal(150)
	order := RingOrder(peers)
	if order[1].Addr != peers[1].Self().Addr || order[1].Val != 150 {
		t.Errorf("ring order after SetVal = %v", order)
	}
}

func TestFirstStabilizedSuccessorGating(t *testing.T) {
	cfg := fastRingConfig()
	cfg.DisableAutoStabilize = true
	cfg.NoProactive = true
	tc := newTestCluster(t, cfg)
	a := tc.addPeer("a", 100)
	b := tc.addPeer("b", 200)
	if err := a.InitRing(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := a.InsertSucc(ctx, b.Self()); err != nil {
		t.Fatal(err)
	}
	// Right after the join, a has not stabilized with b yet: getSucc gates.
	if _, ok := a.FirstStabilizedSuccessor(); ok {
		t.Error("successor should not be stabilized immediately after join")
	}
	a.StabilizeOnce()
	if s, ok := a.FirstStabilizedSuccessor(); !ok || s.Addr != "b" {
		t.Errorf("after stabilization getSucc = %v,%v, want b", s, ok)
	}
}

func TestDepartStopsTraffic(t *testing.T) {
	tc := newTestCluster(t, fastRingConfig())
	peers := tc.buildRing(3)
	waitConsistent(t, peers)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := peers[1].Leave(ctx); err != nil {
		t.Fatal(err)
	}
	peers[1].Depart()
	if _, err := tc.net.Call(ctx, "", peers[1].Self().Addr, methodPing, nil); err == nil {
		t.Error("departed peer must not answer")
	}
	waitConsistent(t, []*Peer{peers[0], peers[2]})
}
