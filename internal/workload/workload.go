// Package workload generates the load patterns of the paper's evaluation
// (Section 6.1): peers added at a fixed rate, items inserted at a fixed
// rate, peers killed at a configurable failure rate (failure mode,
// Section 6.3.4), plus key and query-span generators — uniform, sequential
// and Zipf-skewed keys (range indices exist precisely because hashing cannot
// serve skewed range workloads, Section 2.3).
package workload

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/keyspace"
)

// KeyGen produces search key values.
type KeyGen interface {
	Next() keyspace.Key
}

// UniformKeys draws keys uniformly from [Lo, Hi].
type UniformKeys struct {
	mu  sync.Mutex
	rng *rand.Rand
	lo  uint64
	hi  uint64
}

// NewUniformKeys returns a uniform generator over [lo, hi].
func NewUniformKeys(seed int64, lo, hi uint64) *UniformKeys {
	return &UniformKeys{rng: rand.New(rand.NewSource(seed)), lo: lo, hi: hi}
}

// Next implements KeyGen.
func (u *UniformKeys) Next() keyspace.Key {
	u.mu.Lock()
	defer u.mu.Unlock()
	return keyspace.Key(u.lo + u.rng.Uint64()%(u.hi-u.lo+1))
}

// SequentialKeys produces lo, lo+step, lo+2·step, … — the append-heavy
// pattern (e.g. timestamps) that makes order-preserving indices skew.
type SequentialKeys struct {
	mu   sync.Mutex
	next uint64
	step uint64
}

// NewSequentialKeys returns a sequential generator.
func NewSequentialKeys(start, step uint64) *SequentialKeys {
	return &SequentialKeys{next: start, step: step}
}

// Next implements KeyGen.
func (s *SequentialKeys) Next() keyspace.Key {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := s.next
	s.next += s.step
	return keyspace.Key(k)
}

// ZipfKeys draws keys with Zipf-skewed popularity over buckets of the key
// space, modelling the skewed insertions that force splits and merges.
type ZipfKeys struct {
	mu      sync.Mutex
	rng     *rand.Rand
	zipf    *rand.Zipf
	lo      uint64
	bucket  uint64
	buckets uint64
}

// NewZipfKeys returns a Zipf generator: keys fall into `buckets` equal-width
// buckets over [lo, hi], with bucket popularity following Zipf(s).
func NewZipfKeys(seed int64, lo, hi uint64, buckets uint64, s float64) *ZipfKeys {
	if s <= 1 {
		s = 1.1
	}
	rng := rand.New(rand.NewSource(seed))
	return &ZipfKeys{
		rng:     rng,
		zipf:    rand.NewZipf(rng, s, 1, buckets-1),
		lo:      lo,
		bucket:  (hi - lo + 1) / buckets,
		buckets: buckets,
	}
}

// Next implements KeyGen.
func (z *ZipfKeys) Next() keyspace.Key {
	z.mu.Lock()
	defer z.mu.Unlock()
	b := z.zipf.Uint64()
	off := z.rng.Uint64() % z.bucket
	return keyspace.Key(z.lo + b*z.bucket + off)
}

// SpanGen produces query intervals of a controlled width.
type SpanGen struct {
	mu   sync.Mutex
	rng  *rand.Rand
	lo   uint64
	hi   uint64
	span uint64
}

// NewSpanGen returns a generator of closed intervals of the given span whose
// lower bounds are uniform over [lo, hi-span].
func NewSpanGen(seed int64, lo, hi, span uint64) *SpanGen {
	return &SpanGen{rng: rand.New(rand.NewSource(seed)), lo: lo, hi: hi, span: span}
}

// Next returns the next query interval.
func (g *SpanGen) Next() keyspace.Interval {
	g.mu.Lock()
	defer g.mu.Unlock()
	width := g.hi - g.lo - g.span
	lb := g.lo
	if width > 0 {
		lb += g.rng.Uint64() % width
	}
	return keyspace.ClosedInterval(keyspace.Key(lb), keyspace.Key(lb+g.span))
}

// Pacer emits ticks at the paper's workload rates under time scaling: a rate
// expressed in events per paper-second becomes events per scaled interval.
type Pacer struct {
	interval time.Duration
}

// NewPacer returns a pacer firing `perPaperSecond` times per paper second,
// where one paper second lasts `scale` of real time.
func NewPacer(perPaperSecond float64, scale time.Duration) *Pacer {
	if perPaperSecond <= 0 {
		return &Pacer{interval: time.Duration(math.MaxInt64)}
	}
	return &Pacer{interval: time.Duration(float64(scale) / perPaperSecond)}
}

// Interval returns the real-time interval between events.
func (p *Pacer) Interval() time.Duration { return p.interval }

// Run invokes fn on every tick until ctx is done or fn returns false.
func (p *Pacer) Run(ctx context.Context, fn func() bool) {
	if p.interval == time.Duration(math.MaxInt64) {
		<-ctx.Done()
		return
	}
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if !fn() {
				return
			}
		}
	}
}

// FailureInjector kills one target per tick at the configured rate.
type FailureInjector struct {
	rng *rand.Rand
	mu  sync.Mutex
}

// NewFailureInjector returns an injector with its own randomness.
func NewFailureInjector(seed int64) *FailureInjector {
	return &FailureInjector{rng: rand.New(rand.NewSource(seed))}
}

// Pick selects an index in [0, n).
func (f *FailureInjector) Pick(n int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.Intn(n)
}
