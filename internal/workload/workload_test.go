package workload

import (
	"context"
	"testing"
	"time"

	"repro/internal/keyspace"
)

func TestUniformKeysInRange(t *testing.T) {
	g := NewUniformKeys(1, 100, 200)
	for i := 0; i < 1000; i++ {
		k := g.Next()
		if k < 100 || k > 200 {
			t.Fatalf("key %d out of [100,200]", k)
		}
	}
}

func TestSequentialKeys(t *testing.T) {
	g := NewSequentialKeys(10, 5)
	for i := 0; i < 10; i++ {
		want := keyspace.Key(10 + i*5)
		if got := g.Next(); got != want {
			t.Fatalf("step %d: got %d want %d", i, got, want)
		}
	}
}

func TestZipfKeysSkewed(t *testing.T) {
	g := NewZipfKeys(1, 0, 1_000_000, 100, 1.5)
	counts := make(map[uint64]int)
	for i := 0; i < 5000; i++ {
		k := uint64(g.Next())
		if k >= 1_000_001 {
			t.Fatalf("key %d out of range", k)
		}
		counts[k/10_000]++
	}
	// The hottest bucket must dominate a uniform share by a wide margin.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 5000/100*5 {
		t.Errorf("hottest bucket has %d of 5000 samples; distribution not skewed", max)
	}
}

func TestSpanGen(t *testing.T) {
	g := NewSpanGen(1, 0, 10_000, 500)
	for i := 0; i < 200; i++ {
		iv := g.Next()
		if !iv.Valid() {
			t.Fatalf("invalid interval %v", iv)
		}
		if uint64(iv.Ub-iv.Lb) != 500 {
			t.Fatalf("span = %d, want 500", iv.Ub-iv.Lb)
		}
		if uint64(iv.Ub) > 10_500 {
			t.Fatalf("interval %v exceeds domain", iv)
		}
	}
}

func TestPacerRate(t *testing.T) {
	// 2 events per paper second at 10ms scale = one event every 5ms.
	p := NewPacer(2, 10*time.Millisecond)
	if p.Interval() != 5*time.Millisecond {
		t.Fatalf("interval = %v, want 5ms", p.Interval())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	n := 0
	p.Run(ctx, func() bool {
		n++
		return n < 100
	})
	if n < 5 || n > 20 {
		t.Errorf("ticks in 60ms = %d, want ~12", n)
	}
}

func TestPacerZeroRateBlocks(t *testing.T) {
	p := NewPacer(0, time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	fired := false
	p.Run(ctx, func() bool { fired = true; return true })
	if fired {
		t.Error("zero-rate pacer must never fire")
	}
}

func TestFailureInjectorBounds(t *testing.T) {
	f := NewFailureInjector(1)
	for i := 0; i < 100; i++ {
		if idx := f.Pick(7); idx < 0 || idx >= 7 {
			t.Fatalf("Pick out of bounds: %d", idx)
		}
	}
}
