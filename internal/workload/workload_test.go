package workload

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/keyspace"
)

func TestUniformKeysInRange(t *testing.T) {
	g := NewUniformKeys(1, 100, 200)
	for i := 0; i < 1000; i++ {
		k := g.Next()
		if k < 100 || k > 200 {
			t.Fatalf("key %d out of [100,200]", k)
		}
	}
}

func TestSequentialKeys(t *testing.T) {
	g := NewSequentialKeys(10, 5)
	for i := 0; i < 10; i++ {
		want := keyspace.Key(10 + i*5)
		if got := g.Next(); got != want {
			t.Fatalf("step %d: got %d want %d", i, got, want)
		}
	}
}

func TestZipfKeysSkewed(t *testing.T) {
	g := NewZipfKeys(1, 0, 1_000_000, 100, 1.5)
	counts := make(map[uint64]int)
	for i := 0; i < 5000; i++ {
		k := uint64(g.Next())
		if k >= 1_000_001 {
			t.Fatalf("key %d out of range", k)
		}
		counts[k/10_000]++
	}
	// The hottest bucket must dominate a uniform share by a wide margin.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 5000/100*5 {
		t.Errorf("hottest bucket has %d of 5000 samples; distribution not skewed", max)
	}
}

func TestSpanGen(t *testing.T) {
	g := NewSpanGen(1, 0, 10_000, 500)
	for i := 0; i < 200; i++ {
		iv := g.Next()
		if !iv.Valid() {
			t.Fatalf("invalid interval %v", iv)
		}
		if uint64(iv.Ub-iv.Lb) != 500 {
			t.Fatalf("span = %d, want 500", iv.Ub-iv.Lb)
		}
		if uint64(iv.Ub) > 10_500 {
			t.Fatalf("interval %v exceeds domain", iv)
		}
	}
}

func TestPacerRate(t *testing.T) {
	// 2 events per paper second at 10ms scale = one event every 5ms.
	p := NewPacer(2, 10*time.Millisecond)
	if p.Interval() != 5*time.Millisecond {
		t.Fatalf("interval = %v, want 5ms", p.Interval())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	n := 0
	p.Run(ctx, func() bool {
		n++
		return n < 100
	})
	if n < 5 || n > 20 {
		t.Errorf("ticks in 60ms = %d, want ~12", n)
	}
}

func TestPacerZeroRateBlocks(t *testing.T) {
	p := NewPacer(0, time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	fired := false
	p.Run(ctx, func() bool { fired = true; return true })
	if fired {
		t.Error("zero-rate pacer must never fire")
	}
}

func TestFailureInjectorBounds(t *testing.T) {
	f := NewFailureInjector(1)
	for i := 0; i < 100; i++ {
		if idx := f.Pick(7); idx < 0 || idx >= 7 {
			t.Fatalf("Pick out of bounds: %d", idx)
		}
	}
}

// The Zipf generator is pinned to its exact output for a fixed seed: the
// loadgen's reproducibility story (same -seed, same workload) depends on
// the sequence never drifting across refactors or Go releases of our own
// code. A failure here means previously published benchmark figures are no
// longer reproducible and must be regenerated.
func TestZipfKeysGoldenSequence(t *testing.T) {
	g := NewZipfKeys(42, 0, 1_000_000, 100, 1.5)
	want := []keyspace.Key{
		22219, 4009, 427261, 16, 29992, 4849, 20781, 5852,
		1250, 5307, 163098, 49275, 17, 7660, 11041, 20590,
	}
	for i, w := range want {
		if got := g.Next(); got != w {
			t.Fatalf("sample %d = %d, want %d (fixed-seed sequence drifted)", i, got, w)
		}
	}
}

// Poisson inter-arrival delays are likewise pinned for a fixed seed, and
// must average out near 1/rate.
func TestPoissonGoldenAndMean(t *testing.T) {
	p := NewPoisson(42, 1000)
	want := []time.Duration{495738, 130547, 153233, 338446, 115964, 1055658, 859015, 148633}
	for i, w := range want {
		if got := p.NextDelay(); got != w {
			t.Fatalf("delay %d = %d, want %d (fixed-seed sequence drifted)", i, got, w)
		}
	}
	var sum time.Duration
	const n = 20_000
	for i := 0; i < n; i++ {
		sum += p.NextDelay()
	}
	mean := sum / n
	if mean < 800*time.Microsecond || mean > 1200*time.Microsecond {
		t.Fatalf("mean inter-arrival = %v, want ~1ms for a 1000/s rate", mean)
	}
}

// The operation mix respects its weights (within sampling noise) and is
// pinned for a fixed seed.
func TestMixWeightsAndGolden(t *testing.T) {
	m := NewMix(42, 2, 1, 7)
	want := []OpKind{
		OpQuery, OpQuery, OpQuery, OpInsert, OpQuery, OpQuery, OpQuery, OpQuery,
		OpQuery, OpQuery, OpQuery, OpQuery, OpQuery, OpQuery, OpDelete, OpQuery,
	}
	for i, w := range want {
		if got := m.Next(); got != w {
			t.Fatalf("op %d = %v, want %v (fixed-seed sequence drifted)", i, got, w)
		}
	}
	counts := map[OpKind]int{}
	const n = 10_000
	for i := 0; i < n; i++ {
		counts[m.Next()]++
	}
	if q := counts[OpQuery]; q < n*6/10 || q > n*8/10 {
		t.Fatalf("query share = %d/%d, want ~70%%", q, n)
	}
	if in := counts[OpInsert]; in < n*1/10 || in > n*3/10 {
		t.Fatalf("insert share = %d/%d, want ~20%%", in, n)
	}

	if NewMix(1, 0, 0, 0).Next() != OpQuery {
		t.Fatal("all-zero mix must degenerate to queries")
	}
}

// Every generator the loadgen shares across its many in-flight operations
// must be safe under concurrent draws (run with -race in CI).
func TestGeneratorsConcurrencySafe(t *testing.T) {
	uni := NewUniformKeys(3, 0, 1_000_000)
	zipf := NewZipfKeys(3, 0, 1_000_000, 100, 1.5)
	seq := NewSequentialKeys(0, 1)
	span := NewSpanGen(3, 0, 1_000_000, 500)
	pois := NewPoisson(3, 100)
	mix := NewMix(3, 1, 1, 2)
	inj := NewFailureInjector(3)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				uni.Next()
				zipf.Next()
				seq.Next()
				span.Next()
				pois.NextDelay()
				mix.Next()
				inj.Pick(5)
			}
		}()
	}
	wg.Wait()
}
