package workload

import (
	"math/rand"
	"sync"
	"time"
)

// Open-loop load generation: arrivals follow a Poisson process at a fixed
// rate, independent of how fast the system answers. A slow response makes
// requests QUEUE — observed as tail latency — instead of slowing the arrival
// process, which is what distinguishes an open-loop harness from the
// closed-loop "N workers in a tight call loop" shape that coordinated-omits
// exactly the latencies one is trying to measure.

// Poisson generates exponentially distributed inter-arrival delays for a
// fixed arrival rate. Safe for concurrent use; deterministic for a fixed
// seed when drawn from a single goroutine.
type Poisson struct {
	mu   sync.Mutex
	rng  *rand.Rand
	mean float64 // mean inter-arrival time in seconds
}

// NewPoisson returns an arrival process at `perSecond` arrivals per second.
func NewPoisson(seed int64, perSecond float64) *Poisson {
	if perSecond <= 0 {
		perSecond = 1
	}
	return &Poisson{rng: rand.New(rand.NewSource(seed)), mean: 1 / perSecond}
}

// NextDelay draws the delay until the next arrival.
func (p *Poisson) NextDelay() time.Duration {
	p.mu.Lock()
	d := p.rng.ExpFloat64() * p.mean
	p.mu.Unlock()
	return time.Duration(d * float64(time.Second))
}

// OpKind is one operation type of the mixed workload.
type OpKind int

// The mixed workload's operation types.
const (
	OpInsert OpKind = iota
	OpDelete
	OpQuery
)

// String names the operation type.
func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	case OpQuery:
		return "query"
	}
	return "unknown"
}

// Mix draws operation types with configured integer weights. Safe for
// concurrent use; deterministic for a fixed seed when drawn from a single
// goroutine.
type Mix struct {
	mu      sync.Mutex
	rng     *rand.Rand
	weights [3]int
	total   int
}

// NewMix returns a weighted chooser over insert/delete/query. Negative
// weights count as zero; an all-zero mix degenerates to queries only.
func NewMix(seed int64, insert, del, query int) *Mix {
	m := &Mix{rng: rand.New(rand.NewSource(seed))}
	for i, w := range []int{insert, del, query} {
		if w < 0 {
			w = 0
		}
		m.weights[i] = w
		m.total += w
	}
	if m.total == 0 {
		m.weights[OpQuery] = 1
		m.total = 1
	}
	return m
}

// Next draws the next operation type.
func (m *Mix) Next() OpKind {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.rng.Intn(m.total)
	for k, w := range m.weights {
		if n < w {
			return OpKind(k)
		}
		n -= w
	}
	return OpQuery
}
