package gossip

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/keyspace"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// testCluster assembles n agents over one simulated network, each seeded
// with the previous agent as its only known member (a line topology: gossip
// must discover the rest).
func testCluster(t *testing.T, n int, netCfg simnet.Config) (*simnet.Network, []*Agent) {
	t.Helper()
	net := simnet.New(netCfg)
	t.Cleanup(func() { _ = net.Close() })
	agents := make([]*Agent, n)
	for i := 0; i < n; i++ {
		addr := transport.Addr(fmt.Sprintf("g%d", i+1))
		mux := simnet.NewMux()
		agents[i] = New(net, mux, addr, Config{Fanout: 2, CallTimeout: 200 * time.Millisecond, Seed: int64(i + 1)})
		if err := net.Register(addr, mux.Dispatch); err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			agents[i].AddMember(transport.Addr(fmt.Sprintf("g%d", i)))
		}
	}
	return net, agents
}

func runRounds(agents []*Agent, rounds int) {
	ctx := context.Background()
	for r := 0; r < rounds; r++ {
		for _, a := range agents {
			a.RunRound(ctx)
		}
	}
}

// Directory convergence after a partition heals: two halves of the cluster
// diverge under a PartitionFault cut (free entries and membership spread
// only within each half), then agree within a bounded number of rounds once
// the cut is removed — including healing the suspicions the halves formed
// of each other.
func TestDirectoryConvergesAfterPartitionHeals(t *testing.T) {
	var cut atomic.Bool
	side := func(a transport.Addr) int {
		// g1..g3 on side 0, g4..g6 on side 1.
		if a == "g1" || a == "g2" || a == "g3" {
			return 0
		}
		return 1
	}
	cfg := simnet.Config{
		MinLatency:          50 * time.Microsecond,
		MaxLatency:          200 * time.Microsecond,
		DeadCallDelay:       time.Millisecond,
		Seed:                7,
		StrictSerialization: true,
		PartitionFault: func(from, to simnet.Addr) bool {
			return cut.Load() && side(from) != side(to)
		},
	}
	_, agents := testCluster(t, 6, cfg)

	// Let the line topology converge once so both future halves are
	// internally connected, then cut the cluster in half.
	runRounds(agents, 8)
	cut.Store(true)

	// Each side learns a new free peer while partitioned; neither fact can
	// cross the cut.
	agents[0].MarkFree("g2")
	agents[3].MarkFree("g5")
	runRounds(agents, 8)
	if snap := agents[0].Snapshot(); snap.Free["g5"].Version != 0 {
		t.Fatal("free entry for g5 crossed the partition")
	}
	if snap := agents[3].Snapshot(); snap.Free["g2"].Version != 0 {
		t.Fatal("free entry for g2 crossed the partition")
	}

	// Heal and gossip. Every agent must reach the same directory: all six
	// members, both free entries, and no standing suspicion of anyone.
	cut.Store(false)
	deadline := time.Now().Add(10 * time.Second)
	for {
		runRounds(agents, suspectProbePeriod)
		agreed := true
		for _, a := range agents {
			snap := a.Snapshot()
			if len(snap.Members) != 6 ||
				snap.Free["g2"].Version == 0 || snap.Free["g2"].Taken ||
				snap.Free["g5"].Version == 0 || snap.Free["g5"].Taken {
				agreed = false
				break
			}
			for addr, s := range snap.Suspects {
				if s.Suspected {
					t.Logf("agent still suspects %s", addr)
					agreed = false
				}
			}
		}
		if agreed {
			break
		}
		if time.Now().After(deadline) {
			for i, a := range agents {
				t.Logf("agent %d: %+v", i+1, a.Snapshot())
			}
			t.Fatal("directories did not converge after the partition healed")
		}
	}
}

// The versioned free-entry merge: a taken mark out-gossips a stale free
// observation, and TakeFree never hands out a peer the directory knows is
// taken, suspected, or serving a range.
func TestTakeFreeRespectsDirectoryState(t *testing.T) {
	net := simnet.New(simnet.Config{DeadCallDelay: time.Millisecond, Seed: 3})
	defer net.Close()
	mux := simnet.NewMux()
	a := New(net, mux, "self", Config{})
	if err := net.Register("self", mux.Dispatch); err != nil {
		t.Fatal(err)
	}

	a.MarkFree("free-1")
	a.MarkFree("taken-1")
	a.MarkTaken("taken-1")
	a.MarkFree("owner-1")
	a.merge(Directory{
		Ranges:  map[transport.Addr]RangeAd{"owner-1": {Range: keyspace.Range{Lo: 0, Hi: 10}, Epoch: 1}},
		Members: map[transport.Addr]bool{"owner-1": true},
	})
	a.MarkFree("sus-1")
	a.setSuspected("sus-1", true)

	addr, ok := a.TakeFree(nil)
	if !ok || addr != "free-1" {
		t.Fatalf("TakeFree = %v %v, want free-1", addr, ok)
	}
	if _, ok := a.TakeFree(nil); ok {
		t.Fatal("TakeFree handed out a taken, suspected or range-owning peer")
	}
	// The take is visible (and versioned) in the directory.
	if e := a.Snapshot().Free["free-1"]; !e.Taken {
		t.Fatalf("taken mark not recorded: %+v", e)
	}
}

// A remote range advert entering the directory fires ObserveAdvert exactly
// once per improvement, never for this peer's own advert.
func TestObserveAdvertFiresOnImprovement(t *testing.T) {
	net := simnet.New(simnet.Config{DeadCallDelay: time.Millisecond, Seed: 3})
	defer net.Close()
	mux := simnet.NewMux()
	a := New(net, mux, "self", Config{})
	var calls []string
	a.ObserveAdvert = func(owner transport.Addr, rng keyspace.Range, epoch uint64) {
		calls = append(calls, fmt.Sprintf("%s@%d", owner, epoch))
	}

	in := Directory{Ranges: map[transport.Addr]RangeAd{
		"other": {Range: keyspace.Range{Lo: 0, Hi: 10}, Epoch: 2},
		"self":  {Range: keyspace.Range{Lo: 10, Hi: 20}, Epoch: 9},
	}}
	a.merge(in)
	a.merge(in) // same epoch again: no improvement, no hook
	a.merge(Directory{Ranges: map[transport.Addr]RangeAd{
		"other": {Range: keyspace.Range{Lo: 0, Hi: 10}, Epoch: 3},
	}})
	want := []string{"other@2", "other@3"}
	if len(calls) != len(want) || calls[0] != want[0] || calls[1] != want[1] {
		t.Fatalf("ObserveAdvert calls = %v, want %v", calls, want)
	}
}
