// Package gossip runs the decentralized membership directory of the system:
// periodic anti-entropy rounds that spread, peer to peer, everything a split
// or an audit needs to know about the rest of the cluster — which peers are
// free, the latest advertised (range, epoch) per owner, and liveness
// suspicions — so that no single process (in particular the bootstrap) is a
// required intermediary for membership changes.
//
// The paper's Data Store assumes a free-peer pool that splits draw from
// (Section 2.3) but leaves its realization open; the seed deployment
// centralized it on the bootstrap process, which made the bootstrap a single
// point of failure for growth: kill it and no other peer could ever split.
// This package removes that asymmetry. Every peer runs an Agent; each round
// the Agent picks a few known members at random and performs a push-pull
// exchange — it sends its whole directory, the receiver merges and answers
// with its own merged state, and the caller merges the reply. Entries carry
// versions (free/suspicion flags) or epochs (range adverts), so merge is
// order-free and idempotent: higher version wins, and the directory at every
// peer converges to the same state within O(log n) rounds of the last update
// under standard epidemic-dissemination behaviour.
//
// The directory is deliberately advisory. Correctness never depends on it:
// range adverts feed Store.ObserveRemoteClaim, which only ever *steps down*
// a stale owner (the epoch fence stays the authority), and a free-peer entry
// that turns out stale just costs a failed split insert, which releases the
// address back to the pool. What the directory buys is availability — any
// peer can resolve a free peer for its split locally, from gossip, or from a
// legacy bootstrap pool, in that order (see core.Standalone.Acquire).
package gossip

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/auth"
	"repro/internal/keyspace"
	"repro/internal/transport"
)

// methodExchange is the single RPC of the protocol: a push-pull directory
// exchange. The payload and the response are both full directory snapshots.
const methodExchange = "gossip.exchange"

// FreeEntry is the directory's knowledge of one announced free peer. Version
// orders conflicting observations (higher wins); at equal versions Taken
// wins, so a peer drawn into the ring is never resurrected as free by a
// slower replica of the same fact.
type FreeEntry struct {
	Version uint64
	Taken   bool
}

// RangeAd is the latest ownership advert known for one peer: the range it
// claimed and the epoch of the claim. Adverts merge by higher epoch — the
// same monotonic order the epoch fence enforces on the data path. Sig, when
// present, signs (owner, range, epoch) with the owner's identity key; on
// clusters with identities a receiver verifies it before the advert may enter
// its directory or reach ObserveAdvert, so a forged higher-epoch advert
// cannot ride gossip to depose the real owner.
type RangeAd struct {
	Range keyspace.Range
	Epoch uint64
	Sig   auth.AdvertSig
}

// SuspectEntry is the directory's liveness suspicion of one peer, versioned
// like FreeEntry (higher version wins; at equal versions Suspected wins).
type SuspectEntry struct {
	Version   uint64
	Suspected bool
}

// Directory is the gossiped membership state. All maps are keyed by the
// peer's transport address (its identity). A Directory is a value that
// crosses the wire whole; Agent holds the authoritative local copy and
// merges remote ones into it.
type Directory struct {
	Free     map[transport.Addr]FreeEntry
	Ranges   map[transport.Addr]RangeAd
	Suspects map[transport.Addr]SuspectEntry
	Members  map[transport.Addr]bool
}

// exchangeMsg carries one side of a push-pull exchange.
type exchangeMsg struct {
	From transport.Addr
	Dir  Directory
}

func init() {
	transport.RegisterMessage(exchangeMsg{})
}

func newDirectory() Directory {
	return Directory{
		Free:     make(map[transport.Addr]FreeEntry),
		Ranges:   make(map[transport.Addr]RangeAd),
		Suspects: make(map[transport.Addr]SuspectEntry),
		Members:  make(map[transport.Addr]bool),
	}
}

// clone deep-copies the directory (the wire snapshot must not alias the
// maps the Agent keeps mutating).
func (d Directory) clone() Directory {
	out := newDirectory()
	for a, e := range d.Free {
		out.Free[a] = e
	}
	for a, r := range d.Ranges {
		out.Ranges[a] = r
	}
	for a, s := range d.Suspects {
		out.Suspects[a] = s
	}
	for a := range d.Members {
		out.Members[a] = true
	}
	return out
}

// Config tunes one Agent.
type Config struct {
	// Interval between anti-entropy rounds; zero or negative disables the
	// background loop (RunRound still works, which is how tests drive
	// deterministic rounds).
	Interval time.Duration
	// Fanout is how many members each round exchanges with. Default 2.
	Fanout int
	// CallTimeout bounds one exchange RPC. Default 2s.
	CallTimeout time.Duration
	// Seed drives peer selection; default 1.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Fanout <= 0 {
		c.Fanout = 2
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 2 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Agent is one peer's gossip participant: it serves exchanges on the peer's
// mux and (when Interval > 0 and Start is called) initiates its own rounds.
// All methods are safe for concurrent use.
type Agent struct {
	// SelfAdvert, when set, is consulted at the start of every round to
	// republish this peer's own claim into the directory: it reports the
	// currently owned range, its epoch, and whether the peer is serving at
	// all. Set before Start.
	SelfAdvert func() (keyspace.Range, uint64, bool)
	// ObserveAdvert, when set, is invoked (without internal locks held) for
	// every remote range advert that enters or improves in the directory.
	// core wires it to Store.ObserveRemoteClaim, which steps the local peer
	// down if the advert proves its own claim stale. Set before Start.
	ObserveAdvert func(owner transport.Addr, rng keyspace.Range, epoch uint64)
	// SignAdvert, when set, signs this peer's own range advert each time
	// republishSelf re-injects it, so the claim gossips with proof of origin.
	// Set before Start.
	SignAdvert func(rng keyspace.Range, epoch uint64) auth.AdvertSig
	// VerifyAd, when set, is consulted for every merged advert that would
	// enter or improve in the directory: an advert whose signature does not
	// verify under the key pinned for its claimed owner is dropped — it never
	// installs, never reaches ObserveAdvert, and never gossips onward from
	// this peer. Set before Start.
	VerifyAd func(owner transport.Addr, ad RangeAd) error
	// OnSigReject, when set, is invoked (without internal locks held) for
	// every advert dropped by VerifyAd (journaling hook).
	OnSigReject func(owner transport.Addr, ad RangeAd)

	tr   transport.Transport
	self transport.Addr
	cfg  Config

	mu  sync.Mutex
	dir Directory

	rngMu sync.Mutex
	rng   *rand.Rand

	rounds     atomic.Uint64
	sigRejects atomic.Uint64

	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// New creates an Agent for the peer at self and installs its exchange
// handler on mux. The agent knows only itself until members are added
// (AddMember, MarkFree) or gossip brings them in.
func New(tr transport.Transport, mux *transport.Mux, self transport.Addr, cfg Config) *Agent {
	cfg = cfg.withDefaults()
	a := &Agent{
		tr:     tr,
		self:   self,
		cfg:    cfg,
		dir:    newDirectory(),
		rng:    rand.New(rand.NewSource(cfg.Seed ^ int64(len(self))*7919)),
		stopCh: make(chan struct{}),
	}
	a.dir.Members[self] = true
	mux.Handle(methodExchange, a.handleExchange)
	return a
}

// Start launches the periodic round loop. A no-op when Interval <= 0.
func (a *Agent) Start() {
	if a.cfg.Interval <= 0 {
		return
	}
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		t := time.NewTicker(a.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-a.stopCh:
				return
			case <-t.C:
				ctx, cancel := context.WithTimeout(context.Background(), a.cfg.CallTimeout)
				a.RunRound(ctx)
				cancel()
			}
		}
	}()
}

// Stop halts the round loop (idempotent). The exchange handler keeps
// serving; a stopped agent still answers, it just stops initiating.
func (a *Agent) Stop() {
	a.stopOnce.Do(func() { close(a.stopCh) })
	a.wg.Wait()
}

// Rounds reports how many anti-entropy rounds this agent has initiated.
func (a *Agent) Rounds() uint64 { return a.rounds.Load() }

// SigRejects reports how many merged adverts were dropped because their
// signature failed verification.
func (a *Agent) SigRejects() uint64 { return a.sigRejects.Load() }

// RunRound performs one anti-entropy round: republish the local claim, pick
// up to Fanout unsuspected members, and push-pull the directory with each.
// An unreachable target is marked suspected (versioned, so the suspicion
// gossips); a target that answers is cleared. Exported so tests drive
// convergence deterministically.
func (a *Agent) RunRound(ctx context.Context) {
	a.rounds.Add(1)
	a.republishSelf()

	targets := a.pickTargets()
	for _, to := range targets {
		snap := a.snapshot()
		callCtx, cancel := context.WithTimeout(ctx, a.cfg.CallTimeout)
		resp, err := a.tr.Call(callCtx, a.self, to, methodExchange, exchangeMsg{From: a.self, Dir: snap})
		cancel()
		if err != nil {
			a.setSuspected(to, true)
			continue
		}
		a.setSuspected(to, false)
		if msg, ok := resp.(exchangeMsg); ok {
			a.merge(msg.Dir)
		}
	}
}

// handleExchange serves the receiving side: merge the pushed state, note the
// caller as a live member, and answer with the merged directory.
func (a *Agent) handleExchange(from transport.Addr, _ string, payload any) (any, error) {
	msg, ok := payload.(exchangeMsg)
	if !ok {
		return nil, fmt.Errorf("gossip: bad exchange payload %T", payload)
	}
	sender := msg.From
	if sender == "" {
		sender = from
	}
	a.merge(msg.Dir)
	a.mu.Lock()
	a.dir.Members[sender] = true
	a.mu.Unlock()
	// Hearing from a peer directly is the strongest liveness signal there
	// is; clear any standing suspicion of it.
	a.setSuspected(sender, false)
	return exchangeMsg{From: a.self, Dir: a.snapshot()}, nil
}

// republishSelf refreshes this peer's own range advert in the directory, so
// every round re-injects the locally authoritative claim even if a stale
// merge briefly shadowed it.
func (a *Agent) republishSelf() {
	if a.SelfAdvert == nil {
		return
	}
	rng, epoch, has := a.SelfAdvert()
	if !has {
		return
	}
	ad := RangeAd{Range: rng, Epoch: epoch}
	if a.SignAdvert != nil {
		ad.Sig = a.SignAdvert(rng, epoch)
	}
	a.mu.Lock()
	if cur, ok := a.dir.Ranges[a.self]; !ok || epoch >= cur.Epoch {
		a.dir.Ranges[a.self] = ad
	}
	a.dir.Members[a.self] = true
	a.mu.Unlock()
}

// suspectProbePeriod is how often (in rounds) a suspected member is probed
// anyway: without the periodic probe a suspicion would be permanent — two
// halves of a healed partition would each keep skipping the other forever.
// Probing rarely keeps the per-round cost of genuinely dead peers (one
// timed-out call) amortized.
const suspectProbePeriod = 4

// pickTargets selects up to Fanout random unsuspected members, plus — every
// suspectProbePeriod rounds — one random suspected member, so suspicions
// heal when the peer turns out to be reachable again.
func (a *Agent) pickTargets() []transport.Addr {
	round := a.rounds.Load()
	a.mu.Lock()
	var cands, suspects []transport.Addr
	for m := range a.dir.Members {
		if m == a.self {
			continue
		}
		if s, ok := a.dir.Suspects[m]; ok && s.Suspected {
			suspects = append(suspects, m)
			continue
		}
		cands = append(cands, m)
	}
	a.mu.Unlock()
	a.rngMu.Lock()
	a.rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	var probe transport.Addr
	if len(suspects) > 0 && round%suspectProbePeriod == 0 {
		probe = suspects[a.rng.Intn(len(suspects))]
	}
	a.rngMu.Unlock()
	if len(cands) > a.cfg.Fanout {
		cands = cands[:a.cfg.Fanout]
	}
	if probe != "" {
		cands = append(cands, probe)
	}
	return cands
}

// snapshot returns a deep copy of the directory for the wire.
func (a *Agent) snapshot() Directory {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dir.clone()
}

// merge folds a remote directory into the local one under the versioned
// merge rules (order-free, idempotent), then fires ObserveAdvert for every
// foreign range advert that entered or improved.
func (a *Agent) merge(in Directory) {
	type obs struct {
		owner transport.Addr
		ad    RangeAd
	}
	var observed, rejected []obs

	a.mu.Lock()
	for addr, e := range in.Free {
		cur, ok := a.dir.Free[addr]
		if !ok || e.Version > cur.Version || (e.Version == cur.Version && e.Taken && !cur.Taken) {
			a.dir.Free[addr] = e
		}
		a.dir.Members[addr] = true
	}
	for owner, ad := range in.Ranges {
		cur, ok := a.dir.Ranges[owner]
		if !ok || ad.Epoch > cur.Epoch {
			// Verify before install: a forged advert must not improve the
			// directory, trigger a step-down, or gossip onward from here. The
			// owner is not even recorded as a member on its say-so.
			if a.VerifyAd != nil {
				if err := a.VerifyAd(owner, ad); err != nil {
					a.sigRejects.Add(1)
					rejected = append(rejected, obs{owner: owner, ad: ad})
					continue
				}
			}
			a.dir.Ranges[owner] = ad
			if owner != a.self {
				observed = append(observed, obs{owner: owner, ad: ad})
			}
		}
		a.dir.Members[owner] = true
	}
	for addr, s := range in.Suspects {
		cur, ok := a.dir.Suspects[addr]
		if !ok || s.Version > cur.Version || (s.Version == cur.Version && s.Suspected && !cur.Suspected) {
			a.dir.Suspects[addr] = s
		}
	}
	for m := range in.Members {
		a.dir.Members[m] = true
	}
	hook := a.ObserveAdvert
	a.mu.Unlock()

	if hook != nil {
		for _, o := range observed {
			hook(o.owner, o.ad.Range, o.ad.Epoch)
		}
	}
	if a.OnSigReject != nil {
		for _, o := range rejected {
			a.OnSigReject(o.owner, o.ad)
		}
	}
}

// setSuspected flips a peer's suspicion flag, bumping the version so the
// newer observation wins everywhere it gossips to. A no-op when the flag
// already has the desired value (no version churn from repeated agreement).
func (a *Agent) setSuspected(addr transport.Addr, suspected bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	cur := a.dir.Suspects[addr]
	if cur.Suspected == suspected && (cur.Version > 0 || !suspected) {
		return
	}
	a.dir.Suspects[addr] = SuspectEntry{Version: cur.Version + 1, Suspected: suspected}
}

// AddMember seeds a known member (e.g. the bootstrap contact a free peer
// announced to), giving the first rounds someone to talk to.
func (a *Agent) AddMember(addr transport.Addr) {
	if addr == "" || addr == a.self {
		return
	}
	a.mu.Lock()
	a.dir.Members[addr] = true
	a.mu.Unlock()
}

// MarkFree records addr as an available free peer (version-bumped, so the
// fresh observation out-gossips any stale taken flag).
func (a *Agent) MarkFree(addr transport.Addr) {
	a.mu.Lock()
	defer a.mu.Unlock()
	cur := a.dir.Free[addr]
	if cur.Version > 0 && !cur.Taken {
		return
	}
	a.dir.Free[addr] = FreeEntry{Version: cur.Version + 1, Taken: false}
	a.dir.Members[addr] = true
}

// MarkTaken records addr as drawn out of the free pool.
func (a *Agent) MarkTaken(addr transport.Addr) {
	a.mu.Lock()
	defer a.mu.Unlock()
	cur := a.dir.Free[addr]
	if cur.Version > 0 && cur.Taken {
		return
	}
	a.dir.Free[addr] = FreeEntry{Version: cur.Version + 1, Taken: true}
}

// TakeFree resolves a free peer from the gossiped directory for a split:
// the first known-free address that is not this peer, not suspected, not
// advertising a range, and not excluded by the caller. The taken mark is
// applied locally and spreads by gossip; two concurrent takers of the same
// address are possible (gossip is eventually consistent) and harmless — the
// split insert of the loser fails and releases the address. Reports ok=false
// when the directory knows no eligible free peer.
func (a *Agent) TakeFree(exclude func(transport.Addr) bool) (transport.Addr, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for addr, e := range a.dir.Free {
		if e.Taken || addr == a.self {
			continue
		}
		if s, ok := a.dir.Suspects[addr]; ok && s.Suspected {
			continue
		}
		if _, owns := a.dir.Ranges[addr]; owns {
			continue
		}
		if exclude != nil && exclude(addr) {
			continue
		}
		a.dir.Free[addr] = FreeEntry{Version: e.Version + 1, Taken: true}
		return addr, true
	}
	return "", false
}

// FreeCount reports how many directory entries are currently free-and-
// untaken (eligibility filters of TakeFree not applied).
func (a *Agent) FreeCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for addr, e := range a.dir.Free {
		if e.Taken {
			continue
		}
		if _, owns := a.dir.Ranges[addr]; owns {
			continue
		}
		n++
	}
	return n
}

// OwnsRange reports whether the directory has seen a range advert from addr.
// An address that ever served a range never legitimately returns to the free
// pool — a merged-away peer rejoins under a fresh identity — so free-peer
// resolution uses this to discard stale pool entries for peers that have
// since joined the ring elsewhere.
func (a *Agent) OwnsRange(addr transport.Addr) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, ok := a.dir.Ranges[addr]
	return ok
}

// MemberCount reports how many distinct peers the directory knows of
// (including this one).
func (a *Agent) MemberCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.dir.Members)
}

// Snapshot returns a deep copy of the current directory, for tests and
// operational introspection.
func (a *Agent) Snapshot() Directory { return a.snapshot() }
