package gossip

import (
	"sync"
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/keyspace"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// A forged range advert — a higher epoch claimed in another owner's name,
// signed by a key other than the one pinned for that owner — must not enter
// the directory, must not reach ObserveAdvert (no step-down), and must not
// gossip onward. Genuine adverts keep flowing around the rejects.
func TestForgedGossipAdvertRejected(t *testing.T) {
	_, agents := testCluster(t, 2, simnet.Config{DeadCallDelay: time.Millisecond, Seed: 11})
	owner, verifier := agents[0], agents[1]
	ownerAddr := owner.self

	ownerID, err := auth.NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	forger, err := auth.NewIdentity()
	if err != nil {
		t.Fatal(err)
	}

	rng := keyspace.NewRange(100, 200)
	owner.SelfAdvert = func() (keyspace.Range, uint64, bool) { return rng, 5, true }
	owner.SignAdvert = func(r keyspace.Range, epoch uint64) auth.AdvertSig {
		return ownerID.SignAdvert(string(ownerAddr), r.Lo, r.Hi, epoch)
	}

	kr := auth.NewKeyring()
	kr.Pin(string(ownerAddr), ownerID.Public())
	verifier.VerifyAd = func(o transport.Addr, ad RangeAd) error {
		return kr.VerifyAdvert(string(o), ad.Range.Lo, ad.Range.Hi, ad.Epoch, ad.Sig)
	}
	var mu sync.Mutex
	var rejected []RangeAd
	verifier.OnSigReject = func(o transport.Addr, ad RangeAd) {
		mu.Lock()
		defer mu.Unlock()
		if o != ownerAddr {
			t.Errorf("reject hook fired for owner %s, want %s", o, ownerAddr)
		}
		rejected = append(rejected, ad)
	}
	var observed []uint64
	verifier.ObserveAdvert = func(o transport.Addr, r keyspace.Range, epoch uint64) {
		mu.Lock()
		defer mu.Unlock()
		observed = append(observed, epoch)
	}

	// The genuine signed advert gossips in.
	runRounds(agents, 4)
	if got := verifier.Snapshot().Ranges[ownerAddr]; got.Epoch != 5 {
		t.Fatalf("genuine advert not installed: epoch = %d, want 5", got.Epoch)
	}

	// A forged higher-epoch advert in the owner's name arrives in an
	// exchange; so does an unsigned one. Neither may improve the directory.
	forgedDir := newDirectory()
	forgedDir.Ranges[ownerAddr] = RangeAd{
		Range: rng, Epoch: 9,
		Sig: forger.SignAdvert(string(ownerAddr), rng.Lo, rng.Hi, 9),
	}
	verifier.merge(forgedDir)
	unsignedDir := newDirectory()
	unsignedDir.Ranges[ownerAddr] = RangeAd{Range: rng, Epoch: 10}
	verifier.merge(unsignedDir)

	if got := verifier.Snapshot().Ranges[ownerAddr]; got.Epoch != 5 {
		t.Fatalf("directory epoch = %d after forgeries, want still 5", got.Epoch)
	}
	if got := verifier.SigRejects(); got != 2 {
		t.Fatalf("SigRejects = %d, want 2", got)
	}
	mu.Lock()
	if len(rejected) != 2 || rejected[0].Epoch != 9 || rejected[1].Epoch != 10 {
		t.Fatalf("reject hook saw %+v, want epochs 9 and 10", rejected)
	}
	for _, epoch := range observed {
		if epoch > 5 {
			t.Fatalf("ObserveAdvert fired for forged epoch %d: a step-down could follow", epoch)
		}
	}
	mu.Unlock()

	// A genuinely signed higher epoch still improves the directory: the
	// rejects did not wedge the owner's entry.
	genuineDir := newDirectory()
	genuineDir.Ranges[ownerAddr] = RangeAd{
		Range: rng, Epoch: 6,
		Sig: ownerID.SignAdvert(string(ownerAddr), rng.Lo, rng.Hi, 6),
	}
	verifier.merge(genuineDir)
	if got := verifier.Snapshot().Ranges[ownerAddr]; got.Epoch != 6 {
		t.Fatalf("directory epoch = %d after genuine bump, want 6", got.Epoch)
	}
}
