package history

import (
	"fmt"

	"repro/internal/keyspace"
)

// Lease audit: a checker over the lease lifecycle events of a journal.
//
// A lease is the time bound on an ownership incarnation: the claim's grant
// starts it, the owner's replication refresh renews it, and a neighbor that
// observes the renewal lapse past the lease duration may declare it expired
// and adopt the range. The safety property leases must keep — on top of the
// epoch monotonicity CheckClaims proves — is exclusivity in journal order:
//
//	no two peers ever hold unexpired leases covering the same key.
//
// CheckLeases replays the journal and verifies exactly that. A grant that
// overlaps another peer's live lease is legal only when the journal already
// voided that lease (LeaseExpired, LeaseReleased, PeerFailed) or announced
// the transfer (a pending LeaseHandoff from the live holder to the grantee
// covering the overlap). Anything else is a dual-lease window — two peers
// both entitled to serve the same keys at once — which is precisely what the
// lease protocol exists to prevent.

// LeaseViolation describes one failure of the lease audit.
type LeaseViolation struct {
	Seq    Seq
	Peer   string
	Reason string
}

func (v LeaseViolation) String() string {
	return fmt.Sprintf("seq %d peer %s: %s", v.Seq, v.Peer, v.Reason)
}

// lease is one peer's latest granted lease during replay.
type lease struct {
	Range keyspace.Range
	Epoch uint64
	Live  bool // voided by expiry/release/failure when false
}

// handoff is one announced-but-not-yet-granted lease transfer.
type handoff struct {
	Giver     string
	Recipient string
	Range     keyspace.Range
}

// CheckLeases verifies lease exclusivity over the journal: replayed in
// sequence order, no LeaseGranted may overlap another peer's live lease
// unless the journal justified the overlap first (the holder's lease was
// voided, or a pending handoff from the holder to the grantee covers the
// granted range). Renewals of a voided lease are void themselves — ignored
// rather than flagged, since a lapsed owner's refresh racing its adoption is
// the expected execution, not a protocol failure — and a same-peer re-grant
// supersedes that peer's previous lease (shrinks at splits/redistributes,
// extensions at merges/revivals). Journals with no lease events trivially
// pass, so unleased configurations stay auditable by the epoch checks alone.
func CheckLeases(events []Event) []LeaseViolation {
	latest := make(map[string]lease)
	var pending []handoff
	var out []LeaseViolation

	// consumeHandoff finds and removes a pending handoff giver->recipient
	// covering the giver's entire live lease (transfers always hand the whole
	// leased region off in one announcement); reports whether one existed.
	consumeHandoff := func(giver, recipient string, leased keyspace.Range) bool {
		for i, h := range pending {
			if h.Giver == giver && h.Recipient == recipient && covers(h.Range, leased) {
				pending = append(pending[:i], pending[i+1:]...)
				return true
			}
		}
		return false
	}
	// dropHandoffsFrom removes pending handoffs announced by giver: a
	// re-grant by the giver (a restored failed merge) withdraws them.
	dropHandoffsFrom := func(giver string) {
		kept := pending[:0]
		for _, h := range pending {
			if h.Giver != giver {
				kept = append(kept, h)
			}
		}
		pending = kept
	}

	for _, ev := range events {
		switch ev.Kind {
		case PeerFailed:
			if l, ok := latest[ev.Peer]; ok {
				l.Live = false
				latest[ev.Peer] = l
			}
		case LeaseGranted:
			r := keyspace.Range{Lo: ev.Lo, Hi: ev.Hi}
			for peer, l := range latest {
				if peer == ev.Peer || !l.Live || !l.Range.Overlaps(r) {
					continue
				}
				// The overlapped holder's lease must have been transferred:
				// a pending handoff to the grantee covering the holder's
				// leased range voids that lease at this point.
				if consumeHandoff(peer, ev.Peer, l.Range) {
					l.Live = false
					latest[peer] = l
					continue
				}
				out = append(out, LeaseViolation{
					Seq:  ev.Seq,
					Peer: ev.Peer,
					Reason: fmt.Sprintf("lease grant of %s at epoch %d overlaps the unexpired lease of %s held by %s at epoch %d",
						r, ev.Epoch, l.Range, peer, l.Epoch),
				})
			}
			dropHandoffsFrom(ev.Peer)
			latest[ev.Peer] = lease{Range: r, Epoch: ev.Epoch, Live: true}
		case LeaseRenewed:
			// Renewals carry no state this replay needs: a live lease stays
			// live, and a renewal from a voided or superseded incarnation is
			// void rather than a violation — a lapsed owner's refresh racing
			// its own adoption is the expected execution, not a failure.
		case LeaseExpired:
			// ev.Peer is the lapsed holder; ev.From the adopter; ev.Epoch the
			// highest epoch the adopter observed the holder advertise (0 =
			// unknown). Only an incarnation at or below the observed epoch is
			// voided — a holder that re-claimed past it in the meantime keeps
			// its newer lease, and the adopter's overlapping grant is then
			// correctly flagged against it.
			if l, ok := latest[ev.Peer]; ok && (ev.Epoch == 0 || l.Epoch <= ev.Epoch) {
				l.Live = false
				latest[ev.Peer] = l
			}
		case LeaseReleased:
			if l, ok := latest[ev.Peer]; ok && l.Epoch == ev.Epoch {
				l.Live = false
				latest[ev.Peer] = l
			}
		case LeaseHandoff:
			pending = append(pending, handoff{Giver: ev.Peer, Recipient: ev.From, Range: keyspace.Range{Lo: ev.Lo, Hi: ev.Hi}})
		}
	}
	return out
}

// covers reports whether the handed-off range h covers all of r — the
// single-handoff full-coverage rule: every transfer site hands the entire
// leased region off in one announcement. Both are contiguous (Lo, Hi] arcs
// on the ring, so h ⊇ r exactly when h contains both of r's endpoints and is
// at least as long (the length test rules out r wrapping through h's gap).
func covers(h, r keyspace.Range) bool {
	if h.IsFull() {
		return true
	}
	return h.Contains(firstOf(r)) && h.Contains(r.Hi) && r.Size() <= h.Size()
}

// firstOf returns the smallest ring position strictly above r.Lo — the first
// key r contains.
func firstOf(r keyspace.Range) keyspace.Key { return r.Lo + 1 }

// CheckLeases runs the lease audit over this journal's events.
func (l *Log) CheckLeases() []LeaseViolation {
	return CheckLeases(l.Events())
}
