package history

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/keyspace"
)

func k(v uint64) keyspace.Key { return keyspace.Key(v) }

func TestLivenessAddRemove(t *testing.T) {
	l := NewLog()
	l.Added("p1", k(10))
	mid := l.Now()
	l.Removed("p1", k(10))
	after := l.Now()

	lv := BuildLiveness(l.Events())
	if !lv.LiveAtSomePoint(k(10), 0, mid) {
		t.Error("item should be live before removal")
	}
	if lv.LiveAtSomePoint(k(10), after, after) {
		t.Error("item should not be live after removal")
	}
	if lv.LiveThroughout(k(10), 0, after) {
		t.Error("item is not live throughout an interval spanning its removal")
	}
}

func TestLivenessMoveIsAtomic(t *testing.T) {
	l := NewLog()
	l.Added("p1", k(10))
	start := l.Now()
	l.Moved("p1", "p2", k(10))
	end := l.Now()

	lv := BuildLiveness(l.Events())
	if !lv.LiveThroughout(k(10), start, end) {
		t.Error("a moved item must stay live across the move")
	}
}

func TestLivenessDoubleAddSinglePresence(t *testing.T) {
	l := NewLog()
	l.Added("p1", k(10))
	l.Added("p1", k(10)) // idempotent re-add at the same peer
	l.Removed("p1", k(10))
	after := l.Now()
	lv := BuildLiveness(l.Events())
	if lv.LiveAtSomePoint(k(10), after, after) {
		t.Error("one remove must end liveness even after duplicate adds at a peer")
	}
}

func TestLivenessTwoHolders(t *testing.T) {
	// An item held (incorrectly, but journal must cope) by two peers stays
	// live until both drop it.
	l := NewLog()
	l.Added("p1", k(10))
	l.Added("p2", k(10))
	l.Removed("p1", k(10))
	mid := l.Now()
	l.Removed("p2", k(10))
	after := l.Now()
	lv := BuildLiveness(l.Events())
	if !lv.LiveAtSomePoint(k(10), mid, mid) {
		t.Error("item held by p2 should still be live")
	}
	if lv.LiveAtSomePoint(k(10), after, after) {
		t.Error("item should be dead after both removals")
	}
}

func TestLivenessPeerFailure(t *testing.T) {
	l := NewLog()
	l.Added("p1", k(1))
	l.Added("p1", k(2))
	l.Added("p2", k(3))
	l.Failed("p1")
	after := l.Now()
	lv := BuildLiveness(l.Events())
	if lv.LiveAtSomePoint(k(1), after, after) || lv.LiveAtSomePoint(k(2), after, after) {
		t.Error("items on the failed peer must stop being live")
	}
	if !lv.LiveAtSomePoint(k(3), after, after) {
		t.Error("items on other peers must remain live")
	}
}

func TestLivenessRevivalAfterFailure(t *testing.T) {
	l := NewLog()
	l.Added("p1", k(1))
	l.Failed("p1")
	gap := l.Now()
	l.Added("p2", k(1)) // replication revives the item
	end := l.Now()
	lv := BuildLiveness(l.Events())
	if lv.LiveAtSomePoint(k(1), gap, gap) {
		t.Error("item is dead in the failure gap")
	}
	if !lv.LiveAtSomePoint(k(1), end, end) {
		t.Error("revived item must be live again")
	}
	if lv.LiveThroughout(k(1), 0, end) {
		t.Error("item with a failure gap is not live throughout")
	}
}

func TestCheckQueryResultHappyPath(t *testing.T) {
	l := NewLog()
	l.Added("p1", k(5))
	l.Added("p2", k(15))
	l.Added("p2", k(25))
	iv := keyspace.ClosedInterval(0, 20)
	id, start := l.BeginQuery(iv)
	l.EndQuery(id, iv, start, []keyspace.Key{k(5), k(15)})

	if v := l.CheckAllQueries(); len(v) != 0 {
		t.Errorf("unexpected violations: %v", v)
	}
}

func TestCheckQueryResultMissingItem(t *testing.T) {
	l := NewLog()
	l.Added("p1", k(5))
	l.Added("p2", k(15))
	iv := keyspace.ClosedInterval(0, 20)
	id, start := l.BeginQuery(iv)
	l.EndQuery(id, iv, start, []keyspace.Key{k(5)}) // missed 15

	v := l.CheckAllQueries()
	if len(v) != 1 {
		t.Fatalf("want 1 violation, got %v", v)
	}
	if v[0].Key != k(15) {
		t.Errorf("violation key = %d, want 15", v[0].Key)
	}
}

func TestCheckQueryResultPhantomItem(t *testing.T) {
	l := NewLog()
	l.Added("p1", k(5))
	iv := keyspace.ClosedInterval(0, 20)
	id, start := l.BeginQuery(iv)
	l.EndQuery(id, iv, start, []keyspace.Key{k(5), k(7)}) // 7 never existed

	v := l.CheckAllQueries()
	if len(v) != 1 {
		t.Fatalf("want 1 violation, got %v", v)
	}
	if v[0].Key != k(7) {
		t.Errorf("violation key = %d, want 7", v[0].Key)
	}
}

func TestCheckQueryResultPredicateViolation(t *testing.T) {
	l := NewLog()
	l.Added("p1", k(50))
	iv := keyspace.ClosedInterval(0, 20)
	id, start := l.BeginQuery(iv)
	l.EndQuery(id, iv, start, []keyspace.Key{k(50)})
	v := l.CheckAllQueries()
	if len(v) != 1 {
		t.Fatalf("want 1 violation, got %v", v)
	}
}

func TestCheckQueryResultConcurrentDeleteTolerated(t *testing.T) {
	// An item deleted midway through the query may legitimately be absent
	// from the result (it was not live throughout) or present (it was live
	// at some point). Both outcomes must pass.
	for _, include := range []bool{true, false} {
		l := NewLog()
		l.Added("p1", k(5))
		iv := keyspace.ClosedInterval(0, 20)
		id, start := l.BeginQuery(iv)
		l.Removed("p1", k(5))
		var res []keyspace.Key
		if include {
			res = []keyspace.Key{k(5)}
		}
		l.EndQuery(id, iv, start, res)
		if v := l.CheckAllQueries(); len(v) != 0 {
			t.Errorf("include=%v: unexpected violations %v", include, v)
		}
	}
}

func TestCheckQueryResultInsertDuringQueryTolerated(t *testing.T) {
	// An item inserted mid-query may be present or absent.
	for _, include := range []bool{true, false} {
		l := NewLog()
		iv := keyspace.ClosedInterval(0, 20)
		id, start := l.BeginQuery(iv)
		l.Added("p1", k(9))
		var res []keyspace.Key
		if include {
			res = []keyspace.Key{k(9)}
		}
		l.EndQuery(id, iv, start, res)
		if v := l.CheckAllQueries(); len(v) != 0 {
			t.Errorf("include=%v: unexpected violations %v", include, v)
		}
	}
}

func TestCheckQueryDuplicateResult(t *testing.T) {
	l := NewLog()
	l.Added("p1", k(5))
	iv := keyspace.ClosedInterval(0, 20)
	id, start := l.BeginQuery(iv)
	l.EndQuery(id, iv, start, []keyspace.Key{k(5), k(5)})
	v := l.CheckAllQueries()
	if len(v) != 1 {
		t.Fatalf("want duplicate violation, got %v", v)
	}
}

func TestCheckScanCoverExact(t *testing.T) {
	iv := keyspace.ClosedInterval(10, 30)
	pieces := []ScanPiece{
		{Peer: "a", Interval: keyspace.ClosedInterval(10, 15)},
		{Peer: "b", Interval: keyspace.Interval{Lb: 15, Ub: 22, LbOpen: true}},
		{Peer: "c", Interval: keyspace.Interval{Lb: 22, Ub: 30, LbOpen: true}},
	}
	if err := CheckScanCover(iv, pieces); err != nil {
		t.Errorf("exact cover rejected: %v", err)
	}
}

func TestCheckScanCoverUnordered(t *testing.T) {
	iv := keyspace.ClosedInterval(10, 30)
	pieces := []ScanPiece{
		{Peer: "c", Interval: keyspace.Interval{Lb: 22, Ub: 30, LbOpen: true}},
		{Peer: "a", Interval: keyspace.ClosedInterval(10, 15)},
		{Peer: "b", Interval: keyspace.Interval{Lb: 15, Ub: 22, LbOpen: true}},
	}
	if err := CheckScanCover(iv, pieces); err != nil {
		t.Errorf("cover order should not matter: %v", err)
	}
}

func TestCheckScanCoverGap(t *testing.T) {
	iv := keyspace.ClosedInterval(10, 30)
	pieces := []ScanPiece{
		{Peer: "a", Interval: keyspace.ClosedInterval(10, 15)},
		{Peer: "c", Interval: keyspace.ClosedInterval(20, 30)},
	}
	if err := CheckScanCover(iv, pieces); err == nil {
		t.Error("gap must be detected")
	}
}

func TestCheckScanCoverOverlap(t *testing.T) {
	iv := keyspace.ClosedInterval(10, 30)
	pieces := []ScanPiece{
		{Peer: "a", Interval: keyspace.ClosedInterval(10, 20)},
		{Peer: "b", Interval: keyspace.ClosedInterval(18, 30)},
	}
	if err := CheckScanCover(iv, pieces); err == nil {
		t.Error("overlap must be detected")
	}
}

func TestCheckScanCoverShort(t *testing.T) {
	iv := keyspace.ClosedInterval(10, 30)
	pieces := []ScanPiece{{Peer: "a", Interval: keyspace.ClosedInterval(10, 25)}}
	if err := CheckScanCover(iv, pieces); err == nil {
		t.Error("short cover must be detected")
	}
}

func TestCheckScanCoverOvershoot(t *testing.T) {
	iv := keyspace.ClosedInterval(10, 30)
	pieces := []ScanPiece{{Peer: "a", Interval: keyspace.ClosedInterval(10, 35)}}
	if err := CheckScanCover(iv, pieces); err == nil {
		t.Error("overshooting cover must be detected")
	}
}

func TestCheckScanCoverEmpty(t *testing.T) {
	if err := CheckScanCover(keyspace.ClosedInterval(1, 2), nil); err == nil {
		t.Error("empty cover must be detected")
	}
}

func TestCheckScanCoverAtMaxKey(t *testing.T) {
	iv := keyspace.ClosedInterval(keyspace.MaxKey-5, keyspace.MaxKey)
	pieces := []ScanPiece{{Peer: "a", Interval: iv}}
	if err := CheckScanCover(iv, pieces); err != nil {
		t.Errorf("cover reaching MaxKey rejected: %v", err)
	}
}

func TestConcurrentJournalSafety(t *testing.T) {
	l := NewLog()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := k(uint64(g*1000 + i))
				peer := fmt.Sprintf("p%d", g)
				l.Added(peer, key)
				if i%3 == 0 {
					l.Removed(peer, key)
				}
			}
		}(g)
	}
	wg.Wait()
	evs := l.Events()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatal("sequence numbers must be strictly increasing in journal order")
		}
	}
	BuildLiveness(evs) // must not panic
}

// Property test: for random add/remove/move schedules, liveness matches a
// straightforward reference simulation probed at random points.
func TestLivenessMatchesReferenceSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		l := NewLog()
		type probe struct {
			seq  Seq
			live map[keyspace.Key]bool
		}
		holders := map[keyspace.Key]map[string]bool{}
		liveNow := func(key keyspace.Key) bool {
			for _, held := range holders[key] {
				if held {
					return true
				}
			}
			return false
		}
		var probes []probe
		peers := []string{"a", "b", "c"}
		for step := 0; step < 300; step++ {
			key := k(uint64(rng.Intn(10)))
			p := peers[rng.Intn(len(peers))]
			switch rng.Intn(5) {
			case 0, 1:
				l.Added(p, key)
				if holders[key] == nil {
					holders[key] = map[string]bool{}
				}
				holders[key][p] = true
			case 2:
				l.Removed(p, key)
				if holders[key] != nil {
					holders[key][p] = false
				}
			case 3:
				q := peers[rng.Intn(len(peers))]
				if q != p {
					l.Moved(p, q, key)
					if holders[key] == nil {
						holders[key] = map[string]bool{}
					}
					holders[key][q] = true
					holders[key][p] = false
				}
			case 4:
				snapshot := map[keyspace.Key]bool{}
				for kk := range holders {
					snapshot[kk] = liveNow(kk)
				}
				probes = append(probes, probe{seq: l.Now(), live: snapshot})
			}
		}
		lv := BuildLiveness(l.Events())
		for _, pr := range probes {
			for key, want := range pr.live {
				got := lv.LiveAtSomePoint(key, pr.seq, pr.seq)
				if got != want {
					t.Fatalf("trial %d: key %d at seq %d: live=%v, reference=%v", trial, key, pr.seq, got, want)
				}
			}
		}
	}
}

// A mutation journaled by a handler that was mid-flight when its peer was
// killed can be sequenced after the PeerFailed event. The item physically
// sits on a dead peer, so it must not read as live — otherwise one unlucky
// kill makes every later query look like it is missing a live item (the
// TestSoakMixedWorkload flake).
func TestLivenessIgnoresEventsOnFailedPeers(t *testing.T) {
	l := NewLog()
	l.Added("p1", 10)
	l.Failed("p1")
	l.Added("p1", 20)       // in-flight insert journaled after the failure
	l.Moved("p2", "p1", 30) // in-flight transfer to the dead peer

	lv := BuildLiveness(l.Events())
	end := l.Now()
	if lv.LiveAtSomePoint(20, 0, end) {
		t.Error("item added on a failed peer reads as live")
	}
	if lv.LiveAtSomePoint(30, 0, end) {
		t.Error("item moved to a failed peer reads as live")
	}
	if lv.LiveThroughout(10, 1, end) {
		t.Error("failure did not end the pre-failure item's liveness")
	}
}

// A failed peer identifier is never reused (fail-stop model), so failure is
// permanent: no sequence of later events revives the peer's holdings.
func TestLivenessFailureIsPermanent(t *testing.T) {
	l := NewLog()
	l.Added("p1", 10)
	l.Failed("p1")
	l.Added("p1", 10)
	l.Removed("p1", 10)
	l.Added("p1", 10)
	lv := BuildLiveness(l.Events())
	if lv.LiveAtSomePoint(10, Seq(3), l.Now()) {
		t.Error("dead peer's post-failure adds read as live")
	}
}
