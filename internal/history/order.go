package history

import "repro/internal/keyspace"

// This file provides the formal-model side of the paper's appendix: a
// history is a set of operations with a happened-before partial order
// (Definition 1); truncated histories contain only operations that happened
// before a given one (Definition 2); projections restrict a history to a
// subset of operations (appendix Definition 2 of Section 10.1). In our
// journal, operations carry [Start, End] sequence intervals, and op1
// happened before op2 exactly when op1's End precedes op2's Start — two
// operations with overlapping intervals are the concurrent ones.

// Op is an operation of a history: an identifier with its sequence interval.
// Instantaneous journal events have Start == End.
type Op struct {
	ID    string
	Start Seq
	End   Seq
}

// HappenedBefore reports a ≤ b in the induced partial order (a finished
// before b started). It is irreflexive for concurrent operations and for an
// operation with itself unless it is instantaneous-and-distinct.
func HappenedBefore(a, b Op) bool { return a.End < b.Start }

// Concurrent reports that neither operation happened before the other.
func Concurrent(a, b Op) bool { return !HappenedBefore(a, b) && !HappenedBefore(b, a) }

// History is a finite history H = (O, ≤) with ≤ induced by the sequence
// intervals of its operations.
type History struct {
	Ops []Op
}

// Truncate returns the truncated history H_o (Definition 2): the operations
// that happened before (or are) o, with the same induced order.
func (h History) Truncate(o Op) History {
	var out []Op
	for _, op := range h.Ops {
		if op == o || HappenedBefore(op, o) {
			out = append(out, op)
		}
	}
	return History{Ops: out}
}

// Project returns the projection of the history onto the operations for
// which keep returns true, preserving the induced order.
func (h History) Project(keep func(Op) bool) History {
	var out []Op
	for _, op := range h.Ops {
		if keep(op) {
			out = append(out, op)
		}
	}
	return History{Ops: out}
}

// Ordered reports whether a and b are ordered with respect to each other in
// the history (appendix Definition 3).
func Ordered(a, b Op) bool { return HappenedBefore(a, b) || HappenedBefore(b, a) }

// OpsOf converts the journal's events into formal operations (each event is
// instantaneous), tagging them by kind, peer and key.
func OpsOf(events []Event) []Op {
	out := make([]Op, len(events))
	for i, ev := range events {
		out[i] = Op{
			ID:    eventID(ev),
			Start: ev.Seq,
			End:   ev.Seq,
		}
	}
	return out
}

func eventID(ev Event) string {
	switch ev.Kind {
	case ItemMoved:
		return ev.Kind.String() + ":" + ev.From + "->" + ev.Peer + ":" + keyString(ev.Key)
	case PeerFailed:
		return ev.Kind.String() + ":" + ev.Peer
	default:
		return ev.Kind.String() + ":" + ev.Peer + ":" + keyString(ev.Key)
	}
}

func keyString(k keyspace.Key) string {
	const digits = "0123456789"
	if k == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for k > 0 {
		i--
		buf[i] = digits[k%10]
		k /= 10
	}
	return string(buf[i:])
}
