package history

import (
	"fmt"

	"repro/internal/keyspace"
)

// Ownership-epoch audit: checkers over the RangeClaimed events of a journal.
//
// Each range of the key space is served by a sequence of ownership
// incarnations — (peer, epoch) pairs — and every incarnation change journals
// a RangeClaimed event. Two invariants make the epoch a usable fencing token
// (the fix for the dual-claim window where the ring's failure detector
// false-positives on a live peer and its successor revives a range the
// original owner still serves):
//
//  1. Per-key epoch monotonicity: a claim covering a key carries a strictly
//     higher epoch than every live claim it overlaps (CheckClaims). This is
//     what lets every layer order two conflicting ownership assertions.
//  2. Single-incarnation attribution: an item add must be performed by the
//     peer holding the highest-epoch claim covering the key — an add by a
//     peer whose claim was already superseded is exactly the phantom the old
//     TestSoakMixedWorkload flake left behind (CheckAddAttribution).
//
// Claims never affect liveness (BuildLiveness ignores them): the journal
// stays a faithful physical record, and these checkers are a second audit on
// top of the Definition 4 one.

// Claim is one journaled ownership incarnation. Recovered marks a claim
// re-entered from durable storage after a restart (see Log.RecoveredClaim).
type Claim struct {
	Seq       Seq
	Peer      string
	Range     keyspace.Range
	Epoch     uint64
	Recovered bool
}

// Claims extracts the RangeClaimed events in sequence order.
func Claims(events []Event) []Claim {
	var out []Claim
	for _, ev := range events {
		if ev.Kind == RangeClaimed {
			out = append(out, Claim{Seq: ev.Seq, Peer: ev.Peer, Range: keyspace.Range{Lo: ev.Lo, Hi: ev.Hi}, Epoch: ev.Epoch, Recovered: ev.Recovered})
		}
	}
	return out
}

// ClaimViolation describes one failure of an epoch-audit check.
type ClaimViolation struct {
	Seq    Seq
	Peer   string
	Key    keyspace.Key // CheckAddAttribution only
	Reason string
}

func (v ClaimViolation) String() string {
	return fmt.Sprintf("seq %d peer %s: %s", v.Seq, v.Peer, v.Reason)
}

// CheckClaims verifies per-key epoch monotonicity: every claim must carry a
// strictly higher epoch than the latest claim of every peer (including its
// own) whose range it overlaps. A claim that fails this could not fence its
// predecessor — a request stamped with the older incarnation's epoch would
// be indistinguishable from a current one.
//
// The check compares against each peer's latest claim only: an old claim
// superseded by the same peer's newer one is no longer live, exactly as the
// route caches treat it. A fail-stopped peer's claim is likewise void from
// its PeerFailed event onward: a revival only needs to supersede what the
// dead peer ever ADVERTISED, so tying a final bump that never left the
// crashed peer is a correct execution, not a fencing failure. (A
// false-positive suspicion journals no PeerFailed — the live suspect's
// claim stays binding, which is the case this checker exists for.)
//
// Recovered claims (Log.RecoveredClaim) are resumptions, not new
// incarnations: they are checked for identity with the peer's last journaled
// claim instead of strict supersession.
func CheckClaims(events []Event) []ClaimViolation {
	latest := make(map[string]Claim)
	var out []ClaimViolation
	for _, ev := range events {
		if ev.Kind == PeerFailed {
			delete(latest, ev.Peer)
			continue
		}
		if ev.Kind != RangeClaimed {
			continue
		}
		c := Claim{Seq: ev.Seq, Peer: ev.Peer, Range: keyspace.Range{Lo: ev.Lo, Hi: ev.Hi}, Epoch: ev.Epoch, Recovered: ev.Recovered}
		if ev.Recovered {
			// A recovery resumes an incarnation rather than minting a new one,
			// so strict supersession does not apply: the legality condition is
			// identity — the recovered claim must be exactly the incarnation
			// this peer last journaled (fresh journals that never saw the
			// original claim accept it as the baseline). Whether a competitor
			// has since claimed a higher epoch is irrelevant here: the epoch
			// order between the two incarnations already exists, and the
			// fencing layers (not this audit) depose the stale one.
			if prev, ok := latest[c.Peer]; ok && (prev.Range != c.Range || prev.Epoch != c.Epoch) {
				out = append(out, ClaimViolation{
					Seq:  c.Seq,
					Peer: c.Peer,
					Reason: fmt.Sprintf("recovered claim of %s at epoch %d does not match the last journaled incarnation %s at epoch %d",
						c.Range, c.Epoch, prev.Range, prev.Epoch),
				})
			}
			latest[c.Peer] = c
			continue
		}
		for _, prev := range latest {
			if !prev.Range.Overlaps(c.Range) {
				continue
			}
			if c.Epoch <= prev.Epoch {
				out = append(out, ClaimViolation{
					Seq:  c.Seq,
					Peer: c.Peer,
					Reason: fmt.Sprintf("claim of %s at epoch %d does not supersede overlapping claim of %s by %s at epoch %d",
						c.Range, c.Epoch, prev.Range, prev.Peer, prev.Epoch),
				})
			}
		}
		latest[c.Peer] = c
	}
	return out
}

// CheckAddAttribution verifies that every ItemAdded was performed under an
// un-superseded ownership incarnation: at the add's sequence point, no OTHER
// peer may hold a claim covering the key with a higher epoch than the
// adder's current claim. An add that fails this landed on a deposed owner —
// the dual-claim phantom. A fail-stopped peer's claim is void from its
// PeerFailed event onward (mirroring BuildLiveness): the successor reviving
// its range — or an orphan adopter serving before its own claim lands —
// must not be flagged against a dead competitor. Journals that never record
// claims (hand-built test layouts) trivially pass: with no competing claim
// there is nothing to fence.
func CheckAddAttribution(events []Event) []ClaimViolation {
	latest := make(map[string]Claim)
	var out []ClaimViolation
	for _, ev := range events {
		switch ev.Kind {
		case RangeClaimed:
			latest[ev.Peer] = Claim{Seq: ev.Seq, Peer: ev.Peer, Range: keyspace.Range{Lo: ev.Lo, Hi: ev.Hi}, Epoch: ev.Epoch}
		case PeerFailed:
			delete(latest, ev.Peer)
		case ItemAdded:
			var own uint64
			if c, ok := latest[ev.Peer]; ok && c.Range.Contains(ev.Key) {
				own = c.Epoch
			}
			for _, c := range latest {
				if c.Peer == ev.Peer || !c.Range.Contains(ev.Key) {
					continue
				}
				if c.Epoch > own {
					out = append(out, ClaimViolation{
						Seq: ev.Seq, Peer: ev.Peer, Key: ev.Key,
						Reason: fmt.Sprintf("add of key %d under epoch %d, but %s claims it at epoch %d — mutation on a deposed owner",
							ev.Key, own, c.Peer, c.Epoch),
					})
				}
			}
		}
	}
	return out
}

// CheckEpochAudit runs both epoch checkers over the journal.
func (l *Log) CheckEpochAudit() []ClaimViolation {
	events := l.Events()
	out := CheckClaims(events)
	return append(out, CheckAddAttribution(events)...)
}
