package history

import (
	"testing"

	"repro/internal/keyspace"
)

// CheckClaims accepts the canonical epoch lifecycles (bootstrap, split,
// merge, revival) and flags a claim that fails to supersede what it
// overlaps.
func TestCheckClaims(t *testing.T) {
	l := NewLog()
	l.Claimed("p1", keyspace.FullRange(0), 1)        // bootstrap
	l.Claimed("p1", keyspace.NewRange(1000, 500), 2) // split: keeps the wrap-around low half
	l.Claimed("p2", keyspace.NewRange(500, 1000), 2) // split: new peer takes the high half
	l.Claimed("p2", keyspace.NewRange(500, 1000), 3) // p2 re-claims (e.g. redistribute shrink)
	l.Claimed("p3", keyspace.NewRange(500, 1000), 4) // p3 revives p2's range above its adverts
	if v := CheckClaims(l.Events()); len(v) != 0 {
		t.Fatalf("clean lifecycle flagged: %v", v)
	}

	// A revival that failed to fence (same epoch as the claim it overlaps).
	l.Claimed("p4", keyspace.NewRange(400, 700), 4)
	v := CheckClaims(l.Events())
	if len(v) != 1 || v[0].Peer != "p4" {
		t.Fatalf("non-superseding claim violations = %v, want one for p4", v)
	}
}

// CheckAddAttribution flags the dual-claim phantom: an add performed by a
// peer whose claim over the key was already superseded by another peer's
// higher-epoch claim.
func TestCheckAddAttribution(t *testing.T) {
	l := NewLog()
	l.Claimed("old", keyspace.NewRange(0, 1000), 3)
	l.Added("old", 100) // fine: un-superseded owner
	l.Claimed("new", keyspace.NewRange(0, 1000), 4)
	l.Added("new", 200) // fine: the superseding owner
	if v := CheckAddAttribution(l.Events()); len(v) != 0 {
		t.Fatalf("clean attribution flagged: %v", v)
	}

	l.Added("old", 300) // the phantom: a deposed incarnation still accepting
	v := CheckAddAttribution(l.Events())
	if len(v) != 1 || v[0].Peer != "old" || v[0].Key != 300 {
		t.Fatalf("attribution violations = %v, want one for old/300", v)
	}

	// Adds outside every claim (hand-built test layouts) never flag.
	l2 := NewLog()
	l2.Added("x", 1)
	if v := CheckAddAttribution(l2.Events()); len(v) != 0 {
		t.Fatalf("claim-free journal flagged: %v", v)
	}
}

// Claims are ignored by the liveness reconstruction: the journal stays a
// faithful physical record and the epoch audit sits on top.
func TestClaimsDoNotAffectLiveness(t *testing.T) {
	l := NewLog()
	l.Claimed("p1", keyspace.FullRange(0), 1)
	l.Added("p1", 10)
	l.Claimed("p2", keyspace.FullRange(0), 2)
	lv := BuildLiveness(l.Events())
	if !lv.LiveAtSomePoint(10, 0, Seq(^uint64(0))) {
		t.Fatal("item vanished because of a claim event")
	}
	// The add predates the supersession and p2's claim fences correctly, so
	// the combined epoch audit is clean.
	if v := l.CheckEpochAudit(); len(v) != 0 {
		t.Fatalf("epoch audit findings: %v", v)
	}
}
